// serve::RequestTrace — the request-level workload model behind the serving
// simulator.
//
// A trace is an ordered list of requests, each with an arrival tick (the
// ServeSession scheduling round at which the request becomes visible), a
// prompt length (prefill tokens), a decode length (tokens generated after
// the first), and a speculation width (query rows verified per decode step;
// 1 = plain autoregressive decode). Traces are durable artifacts with a
// deterministic JSON representation, and the synthetic generators draw every
// random field from common/rng so a (spec, seed) pair always reproduces the
// same trace — the foundation of the serve suites' byte-stable BENCH output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mas::serve {

class ArrivalModel;         // arrival.h — open-loop inter-arrival processes
struct SyntheticTraceSpec;  // below

// One request: arrive at `arrival_tick`, prefill `prompt_len` tokens (which
// produces the first output token), then generate `decode_len` more tokens
// in ceil(decode_len / speculation) decode steps.
struct ServeRequest {
  std::int64_t id = 0;            // dense, unique; FIFO tie-break within a tick
  std::int64_t arrival_tick = 0;  // session scheduling round of first visibility
  std::int64_t prompt_len = 1;    // prefill tokens
  std::int64_t decode_len = 0;    // generated tokens after the first
  std::int64_t speculation = 1;   // query rows per decode step (>1 = speculative)
  std::string tenant = {};        // multi-tenant label; empty = untenanted
  std::string model = {};         // model label; empty = the fleet default

  // Decode steps this request needs: ceil(decode_len / speculation).
  std::int64_t DecodeSteps() const;

  // Throws mas::Error on non-positive prompt/speculation or negative fields.
  void Validate() const;
};

// An ordered request collection. Requests must be sorted by
// (arrival_tick, id) with unique ids — the order IS the admission order.
struct RequestTrace {
  std::string name = "trace";
  std::vector<ServeRequest> requests;

  void Validate() const;

  std::int64_t TotalPromptTokens() const;
  std::int64_t TotalDecodeTokens() const;

  // Deterministic JSON round-trip:
  //   {"version":1,"name":...,"requests":[{"id":...,"arrival_tick":...,
  //    "prompt_len":...,"decode_len":...,"speculation":...},...]}
  // The optional "tenant"/"model" strings are emitted only when non-empty,
  // so untenanted traces serialize exactly as before. FromJson throws
  // mas::Error on malformed documents, an unsupported version, unknown
  // request keys (with the request index + byte offset), or requests that
  // fail Validate().
  std::string ToJson() const;
  static RequestTrace FromJson(const std::string& text);

  // File round-trip. LoadFile throws when the file cannot be read or parsed.
  static RequestTrace LoadFile(const std::string& path);
  void SaveFile(const std::string& path) const;

  // Open-loop generation: arrival ticks come from `model` (see
  // serve/arrival.h; seeded with spec.seed), every other field from the
  // spec's length/speculation ranges (spec.max_arrival_gap is ignored).
  // Deterministic: one (model spec, calibration, trace spec) triple always
  // builds the same trace. Implemented in arrival.cpp.
  static RequestTrace FromArrivalModel(ArrivalModel& model, const SyntheticTraceSpec& spec);
};

// Deterministic synthetic trace generator: all stochastic fields come from
// one common/rng stream seeded with `seed`, so identical specs generate
// identical traces on every platform and run.
struct SyntheticTraceSpec {
  std::string name = "synthetic";
  std::int64_t requests = 8;
  std::uint64_t seed = 1;
  std::int64_t prompt_min = 128;  // uniform prompt length in [min, max]
  std::int64_t prompt_max = 512;
  std::int64_t decode_min = 16;   // uniform decode length in [min, max]
  std::int64_t decode_max = 128;
  std::int64_t max_arrival_gap = 2;  // uniform inter-arrival gap in [0, gap] ticks
  std::int64_t speculation = 1;      // decode width of speculative requests
  double speculative_fraction = 0.0; // Bernoulli share of speculative requests
  // When > 0, tag each request with a tenant "t0".."t<n-1>" drawn uniformly
  // from a salted side stream — the main stream's length/arrival draws are
  // untouched, so tenanted and untenanted specs generate identical shapes.
  std::int64_t tenants = 0;
};
RequestTrace GenerateTrace(const SyntheticTraceSpec& spec);

// Named presets behind the serve bench suites and `mas_serve --trace`:
//   "chat"         — interactive chat: short prompts, medium decode tails
//   "decode_heavy" — long-context, decode-dominated summarization traffic
//   "mixed_sd"     — mixed autoregressive + speculative-decoding traffic
// `requests` overrides the preset's request count when > 0. Unknown names
// throw an Error listing the preset catalog.
SyntheticTraceSpec FindTracePreset(const std::string& name, std::int64_t requests = 0);
std::string TracePresetNames();  // "'chat', 'decode_heavy', 'mixed_sd'"

}  // namespace mas::serve
