#include "serve/fault.h"

#include <cmath>

#include "common/spec.h"
#include "common/status.h"

namespace mas::serve {

namespace {

// Factories reject keys outside their grammar so a typoed `--fault=
// crash:prb=0.1` fails instead of silently running at the default.
void CheckKeys(const FaultSpec& spec, std::initializer_list<const char*> allowed) {
  CheckSpecKeys("fault model '" + spec.kind + "'", spec.params, allowed);
}

double CheckProbability(const FaultSpec& spec, double fallback) {
  const double prob = spec.Param("prob", fallback);
  MAS_CHECK(std::isfinite(prob) && prob >= 0.0 && prob <= 1.0)
      << "fault model '" << spec.kind << "' prob must lie in [0, 1], got " << prob;
  return prob;
}

// Positive integer-valued param (cycles, rounds): rejects fractions so
// `cycles=0.5` fails loudly instead of truncating to zero.
std::int64_t CheckCount(const FaultSpec& spec, const char* key, std::int64_t fallback,
                        std::int64_t min_value) {
  const double v = spec.Param(key, static_cast<double>(fallback));
  MAS_CHECK(std::isfinite(v) && v == std::floor(v) && v >= static_cast<double>(min_value) &&
            v <= 9.2e18)
      << "fault model '" << spec.kind << "' " << key << " must be an integer >= " << min_value
      << ", got " << v;
  return static_cast<std::int64_t>(v);
}

// ------------------------------------------------------------------- stall
//
// At each seeded round the device freezes for a fixed number of cycles with
// probability `prob`: the session clock jumps before the round's sims, so
// every in-flight request's latency absorbs the stall.

class StallFault final : public FaultModel {
 public:
  StallFault(FaultModelInfo info, double prob, std::uint64_t cycles, std::int64_t limit)
      : info_(std::move(info)), prob_(prob), cycles_(cycles), limit_(limit) {}

  const FaultModelInfo& info() const override { return info_; }

  void Draw(const FaultContext& /*ctx*/, Rng& rng, RoundFaults* out) override {
    if (limit_ > 0 && events_ >= limit_) return;
    if (!rng.NextBool(prob_)) return;
    ++events_;
    out->stall_cycles = cycles_;
  }

 private:
  FaultModelInfo info_;
  double prob_;
  std::uint64_t cycles_;
  std::int64_t limit_;  // 0 = unlimited
  std::int64_t events_ = 0;
};

// ------------------------------------------------------------------ derate
//
// Thermal throttle: with probability `prob` a round starts a derate episode
// of `rounds` scheduling rounds during which the device runs at `factor` of
// its nominal frequency. The session reprices each affected sim's cycles as
// ceil(cycles / factor) when advancing the clock (the work — and thus the
// energy — is unchanged; it just takes longer).

class DerateFault final : public FaultModel {
 public:
  DerateFault(FaultModelInfo info, double prob, double factor, std::int64_t rounds,
              std::int64_t limit)
      : info_(std::move(info)), prob_(prob), factor_(factor), rounds_(rounds), limit_(limit) {}

  const FaultModelInfo& info() const override { return info_; }

  void Draw(const FaultContext& /*ctx*/, Rng& rng, RoundFaults* out) override {
    if (remaining_ > 0) {
      --remaining_;
      out->derate_factor = factor_;
      return;
    }
    if (limit_ > 0 && events_ >= limit_) return;
    if (!rng.NextBool(prob_)) return;
    ++events_;
    remaining_ = rounds_ - 1;  // this round is the episode's first
    out->derate_factor = factor_;
  }

 private:
  FaultModelInfo info_;
  double prob_;
  double factor_;
  std::int64_t rounds_;
  std::int64_t limit_;  // 0 = unlimited
  std::int64_t events_ = 0;
  std::int64_t remaining_ = 0;  // rounds left in the active episode
};

// ------------------------------------------------------------------- crash
//
// With probability `prob` per round, one in-flight request that has already
// prefilled (i.e. holds KV state) loses that state: its attempt aborts and
// its prefill cycles are wasted. The victim is the crash_draw-th eligible
// member in batch order — the session owns the mapping so the model stays
// ignorant of request identity. Rounds with no crash-eligible member cannot
// crash (and do not consume the event budget).

class CrashFault final : public FaultModel {
 public:
  CrashFault(FaultModelInfo info, double prob, std::int64_t limit)
      : info_(std::move(info)), prob_(prob), limit_(limit) {}

  const FaultModelInfo& info() const override { return info_; }

  void Draw(const FaultContext& ctx, Rng& rng, RoundFaults* out) override {
    if (ctx.decoding == 0) return;
    if (limit_ > 0 && events_ >= limit_) return;
    if (!rng.NextBool(prob_)) return;
    ++events_;
    out->crash = true;
    out->crash_draw = rng.Next();
  }

 private:
  FaultModelInfo info_;
  double prob_;
  std::int64_t limit_;  // 0 = unlimited
  std::int64_t events_ = 0;
};

}  // namespace

// -------------------------------------------------------------------- spec

FaultSpec FaultSpec::Parse(const std::string& text) {
  ParsedSpec parsed = ParseSpec(text, "--fault", "fault kind");
  FaultSpec spec;
  spec.kind = std::move(parsed.head);
  spec.params = std::move(parsed.params);
  return spec;
}

std::string FaultSpec::ToString() const { return SpecToString(kind, params); }

bool FaultSpec::Has(const std::string& key) const { return SpecHas(params, key); }

double FaultSpec::Param(const std::string& key, double fallback) const {
  return SpecParam(params, key, fallback);
}

// ----------------------------------------------------------------- registry

FaultModelRegistry& FaultModelRegistry::Instance() {
  static FaultModelRegistry* registry = new FaultModelRegistry();
  return *registry;
}

void FaultModelRegistry::Register(FaultModelInfo info, Factory factory) {
  EnsureBuiltins();
  RegisterImpl(std::move(info), std::move(factory));
}

void FaultModelRegistry::RegisterImpl(FaultModelInfo info, Factory factory) {
  MAS_CHECK(!info.name.empty()) << "fault model registration needs a name";
  MAS_CHECK(factory != nullptr) << "fault model '" << info.name << "' needs a factory";
  std::lock_guard<std::mutex> lock(mu_);
  MAS_CHECK(FindEntryLocked(info.name) == nullptr)
      << "fault model '" << info.name << "' is already registered";
  entries_.push_back(Entry{std::move(info), std::move(factory)});
}

std::unique_ptr<FaultModel> FaultModelRegistry::Create(const FaultSpec& spec) const {
  EnsureBuiltins();
  MAS_CHECK(spec.enabled()) << "cannot create a fault model from an empty spec";
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Entry* entry = FindEntryLocked(spec.kind);
    if (entry == nullptr) {
      MAS_FAIL() << "unknown fault model '" << spec.kind
                 << "'; options: " << AvailableNamesLockedUnsafe();
    }
    factory = entry->factory;
  }
  return factory(spec);
}

const FaultModelInfo* FaultModelRegistry::Find(const std::string& name) const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* entry = FindEntryLocked(name);
  return entry == nullptr ? nullptr : &entry->info;
}

std::vector<FaultModelInfo> FaultModelRegistry::List() const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FaultModelInfo> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.info);
  return out;
}

std::string FaultModelRegistry::AvailableNames() const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  return AvailableNamesLockedUnsafe();
}

const FaultModelRegistry::Entry* FaultModelRegistry::FindEntryLocked(
    const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.info.name == name) return &entry;
  }
  return nullptr;
}

void FaultModelRegistry::EnsureBuiltins() const {
  std::call_once(builtins_once_, [] {
    FaultModelRegistry& registry = Instance();
    registry.RegisterImpl(
        FaultModelInfo{"stall",
                       "device freeze: the clock jumps a fixed number of cycles at seeded "
                       "rounds; every in-flight request absorbs the latency",
                       "prob ([0,1] per round, default 0.02), cycles (stall length, default "
                       "250000), limit (max events, 0 = unlimited, default 0)"},
        [](const FaultSpec& spec) {
          CheckKeys(spec, {"prob", "cycles", "limit"});
          const double prob = CheckProbability(spec, 0.02);
          const std::int64_t cycles = CheckCount(spec, "cycles", 250000, 1);
          const std::int64_t limit = CheckCount(spec, "limit", 0, 0);
          return std::unique_ptr<FaultModel>(
              new StallFault(*Instance().Find("stall"), prob,
                             static_cast<std::uint64_t>(cycles), limit));
        });
    registry.RegisterImpl(
        FaultModelInfo{"derate",
                       "thermal throttle: an episode of `rounds` rounds at `factor` of the "
                       "nominal frequency; affected sims reprice to ceil(cycles/factor)",
                       "prob ([0,1] per round, default 0.02), factor ((0,1], default 0.5), "
                       "rounds (episode length, default 8), limit (max episodes, 0 = "
                       "unlimited, default 0)"},
        [](const FaultSpec& spec) {
          CheckKeys(spec, {"prob", "factor", "rounds", "limit"});
          const double prob = CheckProbability(spec, 0.02);
          const double factor = spec.Param("factor", 0.5);
          MAS_CHECK(std::isfinite(factor) && factor > 0.0 && factor <= 1.0)
              << "fault model 'derate' factor must lie in (0, 1], got " << factor;
          const std::int64_t rounds = CheckCount(spec, "rounds", 8, 1);
          const std::int64_t limit = CheckCount(spec, "limit", 0, 0);
          return std::unique_ptr<FaultModel>(
              new DerateFault(*Instance().Find("derate"), prob, factor, rounds, limit));
        });
    registry.RegisterImpl(
        FaultModelInfo{"crash",
                       "KV loss: one in-flight decoding request's attempt aborts and its "
                       "prefill is wasted; recovery requires the retry policy",
                       "prob ([0,1] per round, default 0.01), limit (max events, 0 = "
                       "unlimited, default 0)"},
        [](const FaultSpec& spec) {
          CheckKeys(spec, {"prob", "limit"});
          const double prob = CheckProbability(spec, 0.01);
          const std::int64_t limit = CheckCount(spec, "limit", 0, 0);
          return std::unique_ptr<FaultModel>(
              new CrashFault(*Instance().Find("crash"), prob, limit));
        });
  });
}

std::string FaultModelRegistry::AvailableNamesLockedUnsafe() const {
  std::string out;
  for (const Entry& entry : entries_) {
    if (!out.empty()) out += ", ";
    out += "'" + entry.info.name + "'";
  }
  return out;
}

// ------------------------------------------------------------ round keying

Rng FaultRoundRng(std::uint64_t seed, std::int64_t round) {
  // SplitMix64 finalizer over the round index decorrelates adjacent rounds;
  // XOR folds in the session seed.
  std::uint64_t z = static_cast<std::uint64_t>(round) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return Rng(seed ^ z);
}

}  // namespace mas::serve
