#include "serve/arrival.h"

#include <cmath>

#include "common/spec.h"
#include "common/status.h"

namespace mas::serve {

namespace {

// Arrivals and request lengths draw from decorrelated streams of the same
// seed, so the pinned arrival goldens stay valid whatever the length spec.
constexpr std::uint64_t kLengthStreamSalt = 0x5EEDF00DCAFEB0BAull;

// Exponential deviate with the given mean: -mean * ln(1 - U), U in [0, 1).
// 1 - U lies in (0, 1], so the log is finite and the gap non-negative.
double ExponentialGap(Rng& rng, double mean) { return -mean * std::log1p(-rng.NextDouble()); }

// Factories reject keys outside their grammar so a typoed `--arrival=
// poisson:rte=64` fails instead of silently running at the default rate.
void CheckKeys(const ArrivalSpec& spec, std::initializer_list<const char*> allowed) {
  CheckSpecKeys("arrival model '" + spec.model + "'", spec.params, allowed);
}

// Offered rate in req/s -> mean inter-arrival gap in ticks.
double MeanGapTicks(double rate_per_s, const ArrivalCalibration& calibration) {
  MAS_CHECK(std::isfinite(rate_per_s) && rate_per_s > 0.0)
      << "arrival rate must be positive and finite, got " << rate_per_s;
  return calibration.TicksPerSecond() / rate_per_s;
}

// ------------------------------------------------------------------ poisson

class PoissonArrivals final : public ArrivalModel {
 public:
  PoissonArrivals(ArrivalModelInfo info, double mean_gap_ticks)
      : info_(std::move(info)), mean_gap_ticks_(mean_gap_ticks) {}

  const ArrivalModelInfo& info() const override { return info_; }

  double NextGapTicks(double /*now_ticks*/, Rng& rng) override {
    return ExponentialGap(rng, mean_gap_ticks_);
  }

 private:
  ArrivalModelInfo info_;
  double mean_gap_ticks_;
};

// ------------------------------------------------------------------- bursty
//
// Markov-modulated on/off Poisson process: exponential quiet ("off") phases
// at the base rate alternate with exponential burst ("on") phases at
// rate * burst. A candidate gap that crosses the current phase boundary is
// re-drawn from the boundary at the next phase's rate (memorylessness makes
// the truncation exact).

class BurstyArrivals final : public ArrivalModel {
 public:
  BurstyArrivals(ArrivalModelInfo info, double base_gap_ticks, double burst_gap_ticks,
                 double mean_on_ticks, double mean_off_ticks)
      : info_(std::move(info)),
        base_gap_ticks_(base_gap_ticks),
        burst_gap_ticks_(burst_gap_ticks),
        mean_on_ticks_(mean_on_ticks),
        mean_off_ticks_(mean_off_ticks) {}

  const ArrivalModelInfo& info() const override { return info_; }

  double NextGapTicks(double now_ticks, Rng& rng) override {
    if (!phase_initialized_) {
      phase_initialized_ = true;
      on_ = false;
      phase_end_ticks_ = now_ticks + ExponentialGap(rng, mean_off_ticks_);
    }
    double t = now_ticks;
    double accumulated = 0.0;
    for (;;) {
      const double gap = ExponentialGap(rng, on_ ? burst_gap_ticks_ : base_gap_ticks_);
      if (t + gap <= phase_end_ticks_) return accumulated + gap;
      accumulated += phase_end_ticks_ - t;
      t = phase_end_ticks_;
      on_ = !on_;
      phase_end_ticks_ = t + ExponentialGap(rng, on_ ? mean_on_ticks_ : mean_off_ticks_);
    }
  }

 private:
  ArrivalModelInfo info_;
  double base_gap_ticks_;
  double burst_gap_ticks_;
  double mean_on_ticks_;
  double mean_off_ticks_;
  bool phase_initialized_ = false;
  bool on_ = false;
  double phase_end_ticks_ = 0.0;
};

// ------------------------------------------------------------------ diurnal
//
// Sinusoidally modulated Poisson process, lambda(t) = rate * (1 + depth *
// sin(2*pi*t / period)), sampled exactly by Lewis-Shedler thinning against
// the envelope rate * (1 + depth).

class DiurnalArrivals final : public ArrivalModel {
 public:
  DiurnalArrivals(ArrivalModelInfo info, double rate_per_tick, double depth,
                  double period_ticks)
      : info_(std::move(info)),
        rate_per_tick_(rate_per_tick),
        depth_(depth),
        period_ticks_(period_ticks) {}

  const ArrivalModelInfo& info() const override { return info_; }

  double NextGapTicks(double now_ticks, Rng& rng) override {
    const double envelope = rate_per_tick_ * (1.0 + depth_);
    double t = now_ticks;
    for (;;) {
      t += ExponentialGap(rng, 1.0 / envelope);
      const double lambda =
          rate_per_tick_ * (1.0 + depth_ * std::sin(2.0 * kPi * t / period_ticks_));
      if (rng.NextDouble() * envelope < lambda) return t - now_ticks;
    }
  }

 private:
  static constexpr double kPi = 3.141592653589793238462643383279502884;

  ArrivalModelInfo info_;
  double rate_per_tick_;  // mean arrivals per tick
  double depth_;
  double period_ticks_;
};

}  // namespace

// ------------------------------------------------------------- calibration

void ArrivalCalibration::Validate() const {
  MAS_CHECK(std::isfinite(frequency_ghz) && frequency_ghz > 0.0)
      << "arrival calibration frequency_ghz must be positive, got " << frequency_ghz;
  MAS_CHECK(std::isfinite(cycles_per_tick) && cycles_per_tick > 0.0)
      << "arrival calibration cycles_per_tick must be positive, got " << cycles_per_tick;
}

// ------------------------------------------------------------------- spec

ArrivalSpec ArrivalSpec::Parse(const std::string& text) {
  ParsedSpec parsed = ParseSpec(text, "--arrival", "model name");
  ArrivalSpec spec;
  spec.model = std::move(parsed.head);
  spec.params = std::move(parsed.params);
  return spec;
}

std::string ArrivalSpec::ToString() const { return SpecToString(model, params); }

bool ArrivalSpec::Has(const std::string& key) const { return SpecHas(params, key); }

double ArrivalSpec::Param(const std::string& key, double fallback) const {
  return SpecParam(params, key, fallback);
}

ArrivalSpec ArrivalSpec::With(const std::string& key, double value) const {
  ArrivalSpec out = *this;
  out.params = SpecWith(params, key, value);
  return out;
}

// ----------------------------------------------------------------- registry

ArrivalModelRegistry& ArrivalModelRegistry::Instance() {
  static ArrivalModelRegistry* registry = new ArrivalModelRegistry();
  return *registry;
}

void ArrivalModelRegistry::Register(ArrivalModelInfo info, Factory factory) {
  MAS_CHECK(!info.name.empty()) << "arrival model registration needs a name";
  MAS_CHECK(factory != nullptr) << "arrival model '" << info.name << "' needs a factory";
  std::lock_guard<std::mutex> lock(mu_);
  MAS_CHECK(FindEntryLocked(info.name) == nullptr)
      << "arrival model '" << info.name << "' is already registered";
  entries_.push_back(Entry{std::move(info), std::move(factory)});
}

std::unique_ptr<ArrivalModel> ArrivalModelRegistry::Create(
    const ArrivalSpec& spec, const ArrivalCalibration& calibration) const {
  EnsureBuiltins();
  calibration.Validate();
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Entry* entry = FindEntryLocked(spec.model);
    if (entry == nullptr) {
      MAS_FAIL() << "unknown arrival model '" << spec.model
                 << "'; options: " << AvailableNamesLockedUnsafe();
    }
    factory = entry->factory;
  }
  return factory(spec, calibration);
}

const ArrivalModelInfo* ArrivalModelRegistry::Find(const std::string& name) const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* entry = FindEntryLocked(name);
  return entry == nullptr ? nullptr : &entry->info;
}

std::vector<ArrivalModelInfo> ArrivalModelRegistry::List() const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ArrivalModelInfo> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.info);
  return out;
}

std::string ArrivalModelRegistry::AvailableNames() const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  return AvailableNamesLockedUnsafe();
}

const ArrivalModelRegistry::Entry* ArrivalModelRegistry::FindEntryLocked(
    const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.info.name == name) return &entry;
  }
  return nullptr;
}

void ArrivalModelRegistry::EnsureBuiltins() const {
  std::call_once(builtins_once_, [] {
    ArrivalModelRegistry& registry = Instance();
    registry.Register(
        ArrivalModelInfo{"poisson", "memoryless arrivals at a constant offered rate",
                         "rate (req/s, default 64)"},
        [](const ArrivalSpec& spec, const ArrivalCalibration& calibration) {
          CheckKeys(spec, {"rate"});
          return std::unique_ptr<ArrivalModel>(new PoissonArrivals(
              *Instance().Find("poisson"),
              MeanGapTicks(spec.Param("rate", 64.0), calibration)));
        });
    registry.Register(
        ArrivalModelInfo{"bursty",
                         "Markov-modulated on/off process: exponential quiet phases at the "
                         "base rate, burst phases at rate*burst",
                         "rate (req/s, default 64), burst (multiplier, default 8), on/off "
                         "(mean phase seconds, defaults 0.25/1)"},
        [](const ArrivalSpec& spec, const ArrivalCalibration& calibration) {
          CheckKeys(spec, {"rate", "burst", "on", "off"});
          const double rate = spec.Param("rate", 64.0);
          const double burst = spec.Param("burst", 8.0);
          MAS_CHECK(std::isfinite(burst) && burst >= 1.0)
              << "bursty arrival burst multiplier must be >= 1, got " << burst;
          const double on_s = spec.Param("on", 0.25);
          const double off_s = spec.Param("off", 1.0);
          MAS_CHECK(std::isfinite(on_s) && on_s > 0.0 && std::isfinite(off_s) && off_s > 0.0)
              << "bursty arrival on/off mean phase lengths must be positive, got on=" << on_s
              << " off=" << off_s;
          return std::unique_ptr<ArrivalModel>(new BurstyArrivals(
              *Instance().Find("bursty"), MeanGapTicks(rate, calibration),
              MeanGapTicks(rate * burst, calibration), on_s * calibration.TicksPerSecond(),
              off_s * calibration.TicksPerSecond()));
        });
    registry.Register(
        ArrivalModelInfo{"diurnal",
                         "sinusoidally rate-modulated Poisson process (Lewis-Shedler "
                         "thinning): lambda(t) = rate*(1 + depth*sin(2*pi*t/period))",
                         "rate (req/s, default 64), depth ([0,1), default 0.8), period "
                         "(seconds, default 1)"},
        [](const ArrivalSpec& spec, const ArrivalCalibration& calibration) {
          CheckKeys(spec, {"rate", "depth", "period"});
          const double mean_gap = MeanGapTicks(spec.Param("rate", 64.0), calibration);
          const double depth = spec.Param("depth", 0.8);
          MAS_CHECK(std::isfinite(depth) && depth >= 0.0 && depth < 1.0)
              << "diurnal arrival depth must lie in [0, 1), got " << depth;
          const double period_s = spec.Param("period", 1.0);
          MAS_CHECK(std::isfinite(period_s) && period_s > 0.0)
              << "diurnal arrival period must be positive, got " << period_s;
          return std::unique_ptr<ArrivalModel>(new DiurnalArrivals(
              *Instance().Find("diurnal"), 1.0 / mean_gap, depth,
              period_s * calibration.TicksPerSecond()));
        });
  });
}

std::string ArrivalModelRegistry::AvailableNamesLockedUnsafe() const {
  std::string out;
  for (const Entry& entry : entries_) {
    if (!out.empty()) out += ", ";
    out += "'" + entry.info.name + "'";
  }
  return out;
}

// --------------------------------------------------------------- generation

std::vector<std::int64_t> GenerateArrivalTicks(ArrivalModel& model, std::int64_t n,
                                               std::uint64_t seed) {
  MAS_CHECK(n >= 1) << "arrival generation needs at least one request, got " << n;
  Rng rng(seed);
  std::vector<std::int64_t> ticks;
  ticks.reserve(static_cast<std::size_t>(n));
  double t = 0.0;  // the first request arrives at the stream origin
  for (std::int64_t i = 0; i < n; ++i) {
    if (i > 0) {
      const double gap = model.NextGapTicks(t, rng);
      MAS_CHECK(std::isfinite(gap) && gap >= 0.0)
          << "arrival model '" << model.info().name << "' produced an invalid gap " << gap;
      t += gap;
    }
    // Floor of a non-decreasing stream stays non-decreasing; 2^62 leaves
    // the session's tick arithmetic far from int64 overflow.
    MAS_CHECK(t < 4.6e18) << "arrival stream overflows the tick clock (rate too low?)";
    ticks.push_back(static_cast<std::int64_t>(t));
  }
  return ticks;
}

RequestTrace RequestTrace::FromArrivalModel(ArrivalModel& model,
                                            const SyntheticTraceSpec& spec) {
  // Arrival ticks come from the model; every other field follows the spec's
  // ranges exactly as GenerateTrace draws them, from a salted second stream.
  const std::vector<std::int64_t> ticks = GenerateArrivalTicks(model, spec.requests, spec.seed);
  SyntheticTraceSpec fixed = spec;
  fixed.max_arrival_gap = 0;  // arrivals are the model's business
  fixed.seed = spec.seed ^ kLengthStreamSalt;
  RequestTrace trace = GenerateTrace(fixed);
  trace.name = spec.name;
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    trace.requests[i].arrival_tick = ticks[i];
  }
  trace.Validate();
  return trace;
}

}  // namespace mas::serve
