// serve::ServePlanner — phase-aware plan resolution for request-level
// serving.
//
// A served request needs one prefill plan (N x N self-attention at the
// prompt length) and one decode plan per generated token (N = speculation
// query rows against a growing KV cache). Left unbucketed, a thousand-token
// generation would demand a thousand distinct TuningPlans — a thousand
// tiling searches. ServePlanner instead rounds every context and prompt
// length up to its power-of-two bucket (>= min_context_bucket), the same
// padding real serving runtimes apply to keep compiled-kernel counts
// bounded: thousands of decode steps then share a handful of plans, and a
// warm plan cache (mas::Planner's PlanStore) replays an entire trace with
// ZERO search evaluations.
//
// The simulated shape IS the bucketed shape — a conservative padded upper
// bound, exactly what a bucketed runtime executes. Bucketing semantics are
// part of the serve JSON contract (see README "Serving simulator").
//
// Per-phase methods are independent, because scheduler selection flips
// between phases: MAS's MAC/VEC overlap wins the compute-bound prefill,
// while decode is DMA-bound and any fused dataflow (default: FLAT) suffices.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>

#include "dataflow/workloads.h"
#include "planner/planner.h"
#include "sim/hardware_config.h"

namespace mas::serve {

struct ServePlannerOptions {
  std::string prefill_method = "MAS-Attention";
  std::string decode_method = "FLAT";
  // Smallest context/prompt bucket (power of two). Coarser buckets mean
  // fewer plans but more padding at short contexts.
  std::int64_t min_context_bucket = 64;
  TilingPolicy policy = TilingPolicy::kAutoTile;
  // Heterogeneous phase placement: backend specs (sim/backend.h grammar,
  // e.g. "npu" or "gpu:sms=4") that place a phase's plans and simulations on
  // their own hardware instead of the session's base device. Empty = the
  // base hardware (today's homogeneous behavior, byte-identical). Phase sim
  // cycles are converted to the base clock at the session boundary
  // (ceil(cycles * base_ghz / phase_ghz)); energy and DRAM traffic are
  // clock-free and add directly.
  std::string prefill_backend;
  std::string decode_backend;
};

class ServePlanner {
 public:
  // `planner` carries the plan store (load a plan cache into it to
  // warm-start) and must outlive this object. Throws when the options name
  // an unregistered method or a non-power-of-two bucket.
  ServePlanner(Planner& planner, const sim::HardwareConfig& hw, AttentionGeometry geometry,
               ServePlannerOptions options = {});

  // Rounds `n` up to the enclosing power-of-two bucket (>= min_bucket).
  static std::int64_t Bucket(std::int64_t n, std::int64_t min_bucket);

  // Plan for a prefill of `prompt_len` tokens, resolved at the bucketed
  // prompt length. References stay valid for this object's lifetime.
  const TuningPlan& PrefillPlan(std::int64_t prompt_len);
  // Plan for one decode step of `queries` rows against `context_len` KV
  // entries, resolved at the bucketed context length.
  const TuningPlan& DecodePlan(std::int64_t context_len, std::int64_t queries = 1);
  // As DecodePlan, but resolved under `method` instead of the configured
  // decode method — the adaptive session's pressure-relief path (MAS -> FLAT
  // under TTFT pressure). Memoized separately per method; throws (listing
  // the registry) on an unknown method name.
  const TuningPlan& DecodePlanAs(const std::string& method, std::int64_t context_len,
                                 std::int64_t queries = 1);

  Planner& planner() { return planner_; }
  const sim::HardwareConfig& hw() const { return hw_; }
  // Phase hardware: the resolved prefill/decode backend, or the base
  // hardware when the corresponding option is empty.
  const sim::HardwareConfig& prefill_hw() const { return prefill_hw_; }
  const sim::HardwareConfig& decode_hw() const { return decode_hw_; }
  // Base-clock cycles per phase-clock cycle (exactly 1.0 when the phase
  // backend is unset or runs at the base frequency — callers skip the
  // float round-trip then, keeping homogeneous runs byte-identical).
  double prefill_clock_scale() const { return prefill_clock_scale_; }
  double decode_clock_scale() const { return decode_clock_scale_; }
  // True when prefill and decode resolve to different hardware (by
  // CacheKey) — the session then keeps per-phase engine pools.
  bool split_placement() const { return split_placement_; }
  const AttentionGeometry& geometry() const { return geometry_; }
  const ServePlannerOptions& options() const { return options_; }

  // Distinct (phase, bucket, queries) plans resolved so far — the measure of
  // how much the bucketing compresses a trace's plan demand.
  std::int64_t plan_count() const { return static_cast<std::int64_t>(plans_.size()); }

 private:
  enum class Phase { kPrefill = 0, kDecode = 1 };
  const TuningPlan& Resolve(Phase phase, std::int64_t bucket, std::int64_t queries,
                            const std::string& method);

  Planner& planner_;
  sim::HardwareConfig hw_;
  sim::HardwareConfig prefill_hw_;
  sim::HardwareConfig decode_hw_;
  double prefill_clock_scale_ = 1.0;
  double decode_clock_scale_ = 1.0;
  bool split_placement_ = false;
  AttentionGeometry geometry_;
  ServePlannerOptions options_;
  // Local memo so repeated buckets skip even the planner's store lookup.
  // Values are stable (std::map never invalidates on insert). The method
  // component distinguishes pressure-relief plans (DecodePlanAs) from the
  // per-phase defaults.
  std::map<std::tuple<int, std::int64_t, std::int64_t, std::string>, TuningPlan> plans_;
};

}  // namespace mas::serve
