#include "serve/session.h"

#include <algorithm>
#include <deque>
#include <ostream>

#include "common/json_writer.h"
#include "common/table.h"
#include "runner/thread_pool.h"

namespace mas::serve {

double ServeMetrics::TokensPerSecond(double frequency_ghz) const {
  if (makespan_cycles == 0) return 0.0;
  const double seconds = static_cast<double>(makespan_cycles) / (frequency_ghz * 1e9);
  return static_cast<double>(generated_tokens) / seconds;
}

double ServeMetrics::MakespanMs(double frequency_ghz) const {
  return static_cast<double>(makespan_cycles) / (frequency_ghz * 1e6);
}

void ServeResult::WriteJson(JsonWriter& json, const sim::HardwareConfig& hw) const {
  json.KeyValue("trace", trace_name);
  json.BeginArray("requests");
  for (const RequestMetrics& r : requests) {
    json.BeginObject();
    json.KeyValue("id", r.id);
    json.KeyValue("arrival_tick", r.arrival_tick);
    json.KeyValue("prompt_len", r.prompt_len);
    json.KeyValue("decode_len", r.decode_len);
    json.KeyValue("speculation", r.speculation);
    json.KeyValue("decode_steps", r.decode_steps);
    json.KeyValue("arrival_cycles", r.arrival_cycles);
    json.KeyValue("first_token_cycles", r.first_token_cycles);
    json.KeyValue("finish_cycles", r.finish_cycles);
    json.KeyValue("ttft_cycles", r.TtftCycles());
    json.KeyValue("tpot_cycles", r.TpotCycles());
    json.EndObject();
  }
  json.EndArray();
  json.BeginObject("aggregate");
  json.KeyValue("requests", metrics.requests);
  json.KeyValue("prompt_tokens", metrics.prompt_tokens);
  json.KeyValue("decode_tokens", metrics.decode_tokens);
  json.KeyValue("generated_tokens", metrics.generated_tokens);
  json.KeyValue("steps", metrics.steps);
  json.KeyValue("prefill_sims", metrics.prefill_sims);
  json.KeyValue("decode_sims", metrics.decode_sims);
  json.KeyValue("makespan_cycles", metrics.makespan_cycles);
  json.KeyValue("makespan_ms", metrics.MakespanMs(hw.frequency_ghz));
  json.KeyValue("mean_ttft_cycles", metrics.mean_ttft_cycles);
  json.KeyValue("max_ttft_cycles", metrics.max_ttft_cycles);
  json.KeyValue("mean_tpot_cycles", metrics.mean_tpot_cycles);
  json.KeyValue("tokens_per_second", metrics.TokensPerSecond(hw.frequency_ghz));
  json.KeyValue("total_pj", metrics.energy.total_pj());
  json.KeyValue("dram_pj", metrics.energy.dram_pj);
  json.KeyValue("dram_read_bytes", metrics.dram_read_bytes);
  json.KeyValue("dram_write_bytes", metrics.dram_write_bytes);
  json.EndObject();
}

void PrintReport(std::ostream& out, const ServeResult& result, const sim::HardwareConfig& hw,
                 std::int64_t plan_count) {
  const double to_us = 1.0 / (hw.frequency_ghz * 1e3);
  TextTable table({"req", "arrive", "prompt", "decode", "spec", "TTFT us", "TPOT us"});
  for (const RequestMetrics& r : result.requests) {
    table.AddRow({std::to_string(r.id), std::to_string(r.arrival_tick),
                  std::to_string(r.prompt_len), std::to_string(r.decode_len),
                  std::to_string(r.speculation),
                  FormatFixed(static_cast<double>(r.TtftCycles()) * to_us, 1),
                  FormatFixed(r.TpotCycles() * to_us, 1)});
  }
  out << table.ToString() << "\n";

  const ServeMetrics& m = result.metrics;
  out << "makespan " << FormatFixed(m.MakespanMs(hw.frequency_ghz), 2) << " ms, "
      << FormatFixed(m.TokensPerSecond(hw.frequency_ghz), 0) << " tokens/s, mean TTFT "
      << FormatFixed(m.mean_ttft_cycles * to_us, 1) << " us, mean TPOT "
      << FormatFixed(m.mean_tpot_cycles * to_us, 1) << " us over " << m.requests
      << " requests (" << m.prefill_sims << " prefill + " << m.decode_sims
      << " decode sims, " << plan_count << " distinct plans), energy "
      << FormatFixed(m.energy.total_pj() / 1e9, 3) << " mJ\n";
}

void WriteConfigJson(JsonWriter& json, const sim::HardwareConfig& hw,
                     const AttentionGeometry& geometry, const ServePlannerOptions& options,
                     int max_batch, std::int64_t plan_count) {
  json.KeyValue("hardware", hw.name);
  json.KeyValue("model", geometry.name);
  json.KeyValue("prefill_method", options.prefill_method);
  json.KeyValue("decode_method", options.decode_method);
  json.KeyValue("min_context_bucket", options.min_context_bucket);
  json.KeyValue("max_batch", max_batch);
  json.KeyValue("plan_count", plan_count);
}

ServeSession::ServeSession(ServePlanner& planner, ServeSessionOptions options)
    : planner_(planner), options_(options) {
  MAS_CHECK(options_.max_batch >= 1) << "max_batch must be positive, got "
                                     << options_.max_batch;
}

ServeResult ServeSession::Run(const RequestTrace& trace) {
  trace.Validate();
  const std::size_t n = trace.requests.size();

  // Mutable per-request progress, indexed like trace.requests.
  struct Progress {
    bool prefilled = false;
    std::int64_t decoded = 0;  // decode tokens generated so far
  };
  std::vector<Progress> progress(n);
  std::vector<RequestMetrics> metrics(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ServeRequest& r = trace.requests[i];
    metrics[i].id = r.id;
    metrics[i].arrival_tick = r.arrival_tick;
    metrics[i].prompt_len = r.prompt_len;
    metrics[i].decode_len = r.decode_len;
    metrics[i].speculation = r.speculation;
    metrics[i].decode_steps = r.DecodeSteps();
  }

  ServeResult result;
  result.trace_name = trace.name;
  ServeMetrics& agg = result.metrics;
  agg.requests = static_cast<std::int64_t>(n);
  agg.prompt_tokens = trace.TotalPromptTokens();
  agg.decode_tokens = trace.TotalDecodeTokens();
  // Every request emits its first token at the end of prefill, then
  // decode_len more: generated = requests + sum(decode_len).
  agg.generated_tokens = agg.requests + agg.decode_tokens;

  // One reusable engine per simulation worker: arena capacity persists across
  // the whole trace, so steady-state steps are allocation-free.
  const std::size_t max_workers = runner::EffectiveWorkers(
      static_cast<std::size_t>(options_.max_batch), options_.jobs);
  std::vector<sim::Engine> engines;
  engines.reserve(max_workers);
  for (std::size_t w = 0; w < max_workers; ++w) engines.emplace_back(planner_.hw());

  std::size_t next_arrival = 0;  // first not-yet-visible trace index
  std::deque<std::size_t> waiting;
  std::vector<std::size_t> batch;
  std::uint64_t clock = 0;
  std::size_t finished = 0;
  std::int64_t tick = 0;

  // Per-step scratch, reused across steps.
  std::vector<const TuningPlan*> step_plans;
  std::vector<std::size_t> step_queries;  // decode rows (0 = prefill entry)
  std::vector<sim::SimResult> step_results;

  while (finished < n) {
    // Admit arrivals that became visible at or before this tick.
    while (next_arrival < n && trace.requests[next_arrival].arrival_tick <= tick) {
      metrics[next_arrival].arrival_cycles = clock;
      waiting.push_back(next_arrival);
      ++next_arrival;
    }
    // Fill free batch slots FIFO.
    while (batch.size() < static_cast<std::size_t>(options_.max_batch) && !waiting.empty()) {
      batch.push_back(waiting.front());
      waiting.pop_front();
    }
    if (batch.empty()) {
      // Device idle: jump straight to the next arrival (the clock does not
      // advance — idle cycles are free in this single-device model).
      MAS_CHECK(next_arrival < n) << "serve session stalled with no runnable requests";
      tick = trace.requests[next_arrival].arrival_tick;
      continue;
    }

    // Resolve this step's plans serially in batch order (planner calls are
    // deterministic and dedup through the plan store / local memo).
    step_plans.clear();
    step_queries.clear();
    for (std::size_t idx : batch) {
      const ServeRequest& r = trace.requests[idx];
      const Progress& p = progress[idx];
      if (!p.prefilled) {
        step_plans.push_back(&planner_.PrefillPlan(r.prompt_len));
        step_queries.push_back(0);
      } else {
        const std::int64_t remaining = r.decode_len - p.decoded;
        const std::int64_t queries = std::min(r.speculation, remaining);
        const std::int64_t context = r.prompt_len + p.decoded;
        step_plans.push_back(&planner_.DecodePlan(context, queries));
        step_queries.push_back(static_cast<std::size_t>(queries));
      }
    }

    // Simulate the entries across the workers; each writes its own slot.
    step_results.assign(batch.size(), sim::SimResult{});
    runner::ParallelForWorkers(batch.size(), options_.jobs, [&](std::size_t worker,
                                                                std::size_t i) {
      step_results[i] =
          planner_.planner().Simulate(*step_plans[i], planner_.hw(),
                                      /*record_timeline=*/false, &engines[worker]);
    });

    // Retire the step in batch order on the single-device clock.
    std::vector<std::size_t> still_running;
    still_running.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::size_t idx = batch[i];
      const ServeRequest& r = trace.requests[idx];
      Progress& p = progress[idx];
      const sim::SimResult& sim = step_results[i];
      clock += sim.cycles;
      agg.energy += sim.energy;
      agg.dram_read_bytes += sim.dram_read_bytes;
      agg.dram_write_bytes += sim.dram_write_bytes;
      if (step_queries[i] == 0) {
        ++agg.prefill_sims;
        p.prefilled = true;
        metrics[idx].first_token_cycles = clock;
        if (r.decode_len == 0) {
          metrics[idx].finish_cycles = clock;
          ++finished;
          continue;
        }
      } else {
        ++agg.decode_sims;
        p.decoded += static_cast<std::int64_t>(step_queries[i]);
        if (p.decoded >= r.decode_len) {
          metrics[idx].finish_cycles = clock;
          ++finished;
          continue;
        }
      }
      still_running.push_back(idx);
    }
    batch = std::move(still_running);
    ++agg.steps;
    ++tick;
  }

  agg.makespan_cycles = clock;
  double ttft_sum = 0.0, tpot_sum = 0.0;
  std::int64_t tpot_count = 0;
  for (const RequestMetrics& m : metrics) {
    const double ttft = static_cast<double>(m.TtftCycles());
    ttft_sum += ttft;
    agg.max_ttft_cycles = std::max(agg.max_ttft_cycles, ttft);
    if (m.decode_len > 0) {
      tpot_sum += m.TpotCycles();
      ++tpot_count;
    }
  }
  if (n > 0) agg.mean_ttft_cycles = ttft_sum / static_cast<double>(n);
  if (tpot_count > 0) agg.mean_tpot_cycles = tpot_sum / static_cast<double>(tpot_count);

  result.requests = std::move(metrics);
  return result;
}

}  // namespace mas::serve
