#include "serve/session.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <ostream>
#include <utility>

#include "common/json_writer.h"
#include "common/table.h"
#include "runner/thread_pool.h"
#include "schedulers/registry.h"

namespace mas::serve {

double NearestRankPercentile(std::vector<double> samples, double percentile) {
  MAS_CHECK(!samples.empty()) << "percentile of an empty sample set";
  MAS_CHECK(percentile > 0.0 && percentile <= 100.0)
      << "percentile must lie in (0, 100], got " << percentile;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(percentile / 100.0 * static_cast<double>(n)));
  if (rank < 1) rank = 1;    // percentile > 0 guarantees ceil >= 1, but be safe
  if (rank > n) rank = n;    // guard the p == 100 floating-point edge
  return samples[rank - 1];
}

const char* RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kCompleted: return "completed";
    case RequestOutcome::kShed: return "shed";
    case RequestOutcome::kTimedOut: return "timed_out";
    case RequestOutcome::kCrashed: return "crashed";
  }
  // mas-lint: allow(error-catalog) internal enum exhaustiveness guard, not a name lookup
  MAS_FAIL() << "unknown RequestOutcome " << static_cast<int>(outcome);
}

double ServeMetrics::TokensPerSecond(double frequency_ghz) const {
  if (makespan_cycles == 0) return 0.0;
  const double seconds = static_cast<double>(makespan_cycles) / (frequency_ghz * 1e9);
  return static_cast<double>(generated_tokens) / seconds;
}

double ServeMetrics::GoodputTokensPerSecond(double frequency_ghz) const {
  if (makespan_cycles == 0) return 0.0;
  const double seconds = static_cast<double>(makespan_cycles) / (frequency_ghz * 1e9);
  return static_cast<double>(goodput_tokens) / seconds;
}

double ServeMetrics::MakespanMs(double frequency_ghz) const {
  return static_cast<double>(makespan_cycles) / (frequency_ghz * 1e6);
}

void ServeResult::WriteJson(JsonWriter& json, const sim::HardwareConfig& hw) const {
  // Bumped whenever the layout of this block changes shape (new/renamed
  // keys) so downstream BENCH consumers can detect drift. Version 2 added
  // this field plus the optional per-request tenant/model labels.
  json.KeyValue("schema_version", std::int64_t{2});
  json.KeyValue("trace", trace_name);
  json.BeginArray("requests");
  for (const RequestMetrics& r : requests) {
    json.BeginObject();
    json.KeyValue("id", r.id);
    json.KeyValue("arrival_tick", r.arrival_tick);
    json.KeyValue("prompt_len", r.prompt_len);
    json.KeyValue("decode_len", r.decode_len);
    json.KeyValue("speculation", r.speculation);
    if (!r.tenant.empty()) json.KeyValue("tenant", r.tenant);
    if (!r.model.empty()) json.KeyValue("model", r.model);
    json.KeyValue("decode_steps", r.decode_steps);
    json.KeyValue("arrival_cycles", r.arrival_cycles);
    json.KeyValue("first_token_cycles", r.first_token_cycles);
    json.KeyValue("finish_cycles", r.finish_cycles);
    json.KeyValue("ttft_cycles", r.TtftCycles());
    json.KeyValue("tpot_cycles", r.TpotCycles());
    if (metrics.fault_layer_active) {
      json.KeyValue("outcome", RequestOutcomeName(r.outcome));
      json.KeyValue("retries", r.retries);
    }
    json.EndObject();
  }
  json.EndArray();
  json.BeginObject("aggregate");
  json.KeyValue("requests", metrics.requests);
  json.KeyValue("decode_requests", metrics.decode_requests);
  json.KeyValue("prompt_tokens", metrics.prompt_tokens);
  json.KeyValue("decode_tokens", metrics.decode_tokens);
  json.KeyValue("generated_tokens", metrics.generated_tokens);
  json.KeyValue("steps", metrics.steps);
  json.KeyValue("prefill_sims", metrics.prefill_sims);
  json.KeyValue("decode_sims", metrics.decode_sims);
  json.KeyValue("coalesced_decode_sims", metrics.coalesced_decode_sims);
  json.KeyValue("makespan_cycles", metrics.makespan_cycles);
  json.KeyValue("makespan_ms", metrics.MakespanMs(hw.frequency_ghz));
  json.KeyValue("mean_ttft_cycles", metrics.mean_ttft_cycles);
  json.KeyValue("max_ttft_cycles", metrics.max_ttft_cycles);
  json.KeyValue("p50_ttft_cycles", metrics.p50_ttft_cycles);
  json.KeyValue("p95_ttft_cycles", metrics.p95_ttft_cycles);
  json.KeyValue("p99_ttft_cycles", metrics.p99_ttft_cycles);
  json.KeyValue("mean_tpot_cycles", metrics.mean_tpot_cycles);
  json.KeyValue("max_tpot_cycles", metrics.max_tpot_cycles);
  json.KeyValue("p50_tpot_cycles", metrics.p50_tpot_cycles);
  json.KeyValue("p95_tpot_cycles", metrics.p95_tpot_cycles);
  json.KeyValue("p99_tpot_cycles", metrics.p99_tpot_cycles);
  json.KeyValue("pressure_switch_tick", metrics.pressure_switch_tick);
  json.KeyValue("tokens_per_second", metrics.TokensPerSecond(hw.frequency_ghz));
  json.KeyValue("total_pj", metrics.energy.total_pj());
  json.KeyValue("dram_pj", metrics.energy.dram_pj);
  json.KeyValue("dram_read_bytes", metrics.dram_read_bytes);
  json.KeyValue("dram_write_bytes", metrics.dram_write_bytes);
  // Resilience accounting, present only when the fault/resilience layer is
  // configured — a plain run's JSON stays byte-identical to earlier
  // versions of the schema.
  if (metrics.fault_layer_active) {
    json.KeyValue("completed", metrics.completed);
    json.KeyValue("shed", metrics.shed);
    json.KeyValue("timed_out", metrics.timed_out);
    json.KeyValue("crashed", metrics.crashed);
    json.KeyValue("retries", metrics.retries);
    json.KeyValue("crash_events", metrics.crash_events);
    json.KeyValue("stall_events", metrics.stall_events);
    json.KeyValue("stalled_cycles", metrics.stalled_cycles);
    json.KeyValue("derated_rounds", metrics.derated_rounds);
    json.KeyValue("wasted_prefill_cycles", metrics.wasted_prefill_cycles);
    json.KeyValue("goodput_tokens", metrics.goodput_tokens);
    json.KeyValue("goodput_tokens_per_second", metrics.GoodputTokensPerSecond(hw.frequency_ghz));
  }
  json.EndObject();
}

void PrintReport(std::ostream& out, const ServeResult& result, const sim::HardwareConfig& hw,
                 std::int64_t plan_count) {
  const double to_us = 1.0 / (hw.frequency_ghz * 1e3);
  const ServeMetrics& m = result.metrics;
  std::vector<std::string> columns = {"req",  "arrive",  "prompt", "decode",
                                      "spec", "TTFT us", "TPOT us"};
  if (m.fault_layer_active) columns.push_back("outcome");
  TextTable table(columns);
  for (const RequestMetrics& r : result.requests) {
    std::vector<std::string> row = {std::to_string(r.id), std::to_string(r.arrival_tick),
                                    std::to_string(r.prompt_len), std::to_string(r.decode_len),
                                    std::to_string(r.speculation),
                                    FormatFixed(static_cast<double>(r.TtftCycles()) * to_us, 1),
                                    FormatFixed(r.TpotCycles() * to_us, 1)};
    if (m.fault_layer_active) row.push_back(RequestOutcomeName(r.outcome));
    table.AddRow(row);
  }
  out << table.ToString() << "\n";

  out << "makespan " << FormatFixed(m.MakespanMs(hw.frequency_ghz), 2) << " ms, "
      << FormatFixed(m.TokensPerSecond(hw.frequency_ghz), 0) << " tokens/s, mean TTFT "
      << FormatFixed(m.mean_ttft_cycles * to_us, 1) << " us, mean TPOT "
      << FormatFixed(m.mean_tpot_cycles * to_us, 1) << " us over " << m.requests
      << " requests (" << m.prefill_sims << " prefill + " << m.decode_sims
      << " decode sims, " << plan_count << " distinct plans), energy "
      << FormatFixed(m.energy.total_pj() / 1e9, 3) << " mJ\n";
  if (m.fault_layer_active) {
    out << "resilience: " << FormatFixed(m.GoodputTokensPerSecond(hw.frequency_ghz), 0)
        << " goodput tokens/s (" << m.goodput_tokens << " of " << m.generated_tokens
        << " tokens), " << m.completed << " completed / " << m.shed << " shed / "
        << m.timed_out << " timed out / " << m.crashed << " crashed, " << m.retries
        << " retries, " << m.crash_events << " crash + " << m.stall_events
        << " stall events, " << m.derated_rounds << " derated rounds, "
        << m.wasted_prefill_cycles << " wasted prefill cycles\n";
  }
}

void WriteConfigJson(JsonWriter& json, const sim::HardwareConfig& hw,
                     const AttentionGeometry& geometry, const ServePlannerOptions& options,
                     int max_batch, std::int64_t plan_count) {
  json.KeyValue("hardware", hw.name);
  json.KeyValue("model", geometry.name);
  json.KeyValue("prefill_method", options.prefill_method);
  json.KeyValue("decode_method", options.decode_method);
  // Placement keys appear only when a phase backend is configured, so a
  // homogeneous run's JSON stays byte-identical to earlier schema versions.
  if (!options.prefill_backend.empty()) {
    json.KeyValue("prefill_backend", options.prefill_backend);
  }
  if (!options.decode_backend.empty()) {
    json.KeyValue("decode_backend", options.decode_backend);
  }
  json.KeyValue("min_context_bucket", options.min_context_bucket);
  json.KeyValue("max_batch", max_batch);
  json.KeyValue("plan_count", plan_count);
}

ServeSession::ServeSession(ServePlanner& planner, ServeSessionOptions options)
    : planner_(planner), options_(std::move(options)) {
  MAS_CHECK(options_.max_batch >= 1) << "max_batch must be positive, got "
                                     << options_.max_batch;
  // Fail fast on a malformed pressure policy instead of mid-trace.
  if (options_.pressure.enabled) {
    MAS_CHECK(options_.pressure.ttft_target_cycles > 0.0)
        << "pressure policy requires a positive ttft_target_cycles, got "
        << options_.pressure.ttft_target_cycles;
    MAS_CHECK(options_.pressure.window >= 1)
        << "pressure window must be at least 1, got " << options_.pressure.window;
    MAS_CHECK(SchedulerRegistry::Instance().Find(options_.pressure.relief_method) != nullptr)
        << "unknown relief method '" << options_.pressure.relief_method
        << "'; options: " << SchedulerRegistry::Instance().AvailableNames();
  }
  // Same for the resilience policy and the fault spec: an unknown fault kind
  // or bad param throws here, not after half a trace has been replayed.
  const ResiliencePolicy& res = options_.resilience;
  MAS_CHECK(res.max_retries >= 0) << "max_retries must be >= 0, got " << res.max_retries;
  MAS_CHECK(res.admission_queue_cap >= 0)
      << "admission_queue_cap must be >= 0, got " << res.admission_queue_cap;
  if (res.max_retries > 0) {
    MAS_CHECK(res.retry_backoff_ticks >= 1)
        << "retry_backoff_ticks must be >= 1, got " << res.retry_backoff_ticks;
  }
  if (res.shed_late) {
    MAS_CHECK(res.ttft_deadline_cycles > 0)
        << "shed_late requires a TTFT deadline (it sheds requests whose TTFT "
           "budget is already spent)";
  }
  if (options_.fault.enabled()) {
    (void)FaultModelRegistry::Instance().Create(options_.fault);
  }
}

ServeResult ServeSession::Run(const RequestTrace& trace) {
  trace.Validate();
  const std::size_t n = trace.requests.size();

  // Mutable per-request progress, indexed like trace.requests.
  struct Progress {
    bool prefilled = false;
    std::int64_t decoded = 0;  // decode tokens generated so far
    // Effective cycles this attempt's prefill cost — charged to
    // wasted_prefill_cycles if the attempt crashes or times out.
    std::uint64_t attempt_prefill_cycles = 0;
  };
  std::vector<Progress> progress(n);
  std::vector<RequestMetrics> metrics(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ServeRequest& r = trace.requests[i];
    metrics[i].id = r.id;
    metrics[i].arrival_tick = r.arrival_tick;
    metrics[i].prompt_len = r.prompt_len;
    metrics[i].decode_len = r.decode_len;
    metrics[i].speculation = r.speculation;
    metrics[i].decode_steps = r.DecodeSteps();
    metrics[i].tenant = r.tenant;
    metrics[i].model = r.model;
  }

  ServeResult result;
  result.trace_name = trace.name;
  ServeMetrics& agg = result.metrics;
  agg.requests = static_cast<std::int64_t>(n);
  agg.prompt_tokens = trace.TotalPromptTokens();
  agg.decode_tokens = trace.TotalDecodeTokens();
  // generated_tokens accumulates as sims retire (one per prefill, `queries`
  // per decode step): it measures what the device PRODUCED, so a crashed
  // attempt's re-decoded tokens count here and the goodput gap shows the
  // waste. Without faults every request prefills once and decodes
  // decode_len tokens, so the sum lands exactly at requests + decode_tokens.

  const ResiliencePolicy& res = options_.resilience;
  agg.fault_layer_active = options_.fault.enabled() || res.AnyEnabled();
  std::unique_ptr<FaultModel> fault_model;
  if (options_.fault.enabled()) {
    fault_model = FaultModelRegistry::Instance().Create(options_.fault);
  }

  // One reusable engine per simulation worker: arena capacity persists across
  // the whole trace, so steady-state steps are allocation-free. Under a split
  // placement prefill and decode run on different hardware (engines are bound
  // to a core count at construction), so each phase gets its own pool; the
  // homogeneous path keeps the single pool exactly as before.
  const bool split_placement = planner_.split_placement();
  const std::size_t max_workers = runner::EffectiveWorkers(
      static_cast<std::size_t>(options_.max_batch), options_.jobs);
  std::vector<sim::Engine> engines;
  engines.reserve(max_workers);
  for (std::size_t w = 0; w < max_workers; ++w) engines.emplace_back(planner_.decode_hw());
  std::vector<sim::Engine> prefill_engines;
  if (split_placement) {
    prefill_engines.reserve(max_workers);
    for (std::size_t w = 0; w < max_workers; ++w) {
      prefill_engines.emplace_back(planner_.prefill_hw());
    }
  }

  std::size_t next_arrival = 0;  // first not-yet-visible trace index
  std::deque<std::size_t> waiting;
  std::vector<std::size_t> batch;
  std::uint64_t clock = 0;
  std::size_t finished = 0;
  std::int64_t tick = 0;

  // Crashed requests waiting out their retry backoff, sorted by
  // (eligible_tick, trace index) so re-admission order is deterministic.
  struct PendingRetry {
    std::int64_t eligible_tick = 0;
    std::size_t idx = 0;
  };
  std::vector<PendingRetry> retry_queue;
  const auto retry_before = [](const PendingRetry& a, const PendingRetry& b) {
    if (a.eligible_tick != b.eligible_tick) return a.eligible_tick < b.eligible_tick;
    return a.idx < b.idx;
  };

  const auto shed_request = [&](std::size_t idx) {
    metrics[idx].outcome = RequestOutcome::kShed;
    ++finished;
  };
  const auto total_deadline_passed = [&](std::size_t idx) {
    return res.total_deadline_cycles > 0 &&
           clock > metrics[idx].arrival_cycles + res.total_deadline_cycles;
  };
  const auto ttft_deadline_passed = [&](std::size_t idx) {
    return res.ttft_deadline_cycles > 0 &&
           clock > metrics[idx].arrival_cycles + res.ttft_deadline_cycles;
  };

  // Pressure-policy state: a sliding window of the most recent TTFT samples
  // (pushed as prefills retire) feeding a one-way latch onto the relief
  // decode method.
  const PressurePolicy& pressure = options_.pressure;
  std::deque<double> ttft_window;
  bool relieved = false;

  // Per-step scratch, reused across steps. A step is built in two passes:
  // members (one per in-flight request) first, then the simulations they map
  // onto — distinct objects because coalescing can merge the round's decode
  // members into a single sim.
  struct Member {
    std::size_t idx = 0;       // trace index
    std::int64_t queries = 0;  // decode rows this step (0 = prefill entry)
    std::int64_t context = 0;  // decode KV context (unused for prefill)
    std::size_t sim = 0;       // index into step_plans / step_results
  };
  std::vector<Member> members;
  std::vector<const TuningPlan*> step_plans;
  // Decode members covered, per sim: 0 marks a prefill sim, k >= 1 a decode
  // sim standing in for k members (k > 1 only under coalesce_decode).
  std::vector<std::int64_t> sim_decode_members;
  std::vector<sim::SimResult> step_results;
  std::vector<std::uint64_t> sim_done_clock;
  std::vector<std::uint64_t> sim_effective_cycles;

  while (finished < n) {
    // Admit arrivals that became visible at or before this tick (under the
    // admission cap, an arrival that finds the waiting queue full is shed
    // on the spot — it never costs the device anything).
    while (next_arrival < n && trace.requests[next_arrival].arrival_tick <= tick) {
      metrics[next_arrival].arrival_cycles = clock;
      if (res.admission_queue_cap > 0 &&
          waiting.size() >= static_cast<std::size_t>(res.admission_queue_cap)) {
        shed_request(next_arrival);
      } else {
        waiting.push_back(next_arrival);
      }
      ++next_arrival;
    }
    // Re-admit crash retries that have served their backoff, behind this
    // tick's fresh arrivals. The queue cap applies to them too.
    while (!retry_queue.empty() && retry_queue.front().eligible_tick <= tick) {
      const std::size_t idx = retry_queue.front().idx;
      retry_queue.erase(retry_queue.begin());
      if (res.admission_queue_cap > 0 &&
          waiting.size() >= static_cast<std::size_t>(res.admission_queue_cap)) {
        shed_request(idx);
      } else {
        waiting.push_back(idx);
      }
    }
    // Timeout-kill: a request past its total deadline is dead whether it is
    // decoding or still queued. Killing an in-flight request wastes the
    // attempt's prefill cycles; a queued kill costs nothing.
    if (res.total_deadline_cycles > 0) {
      std::size_t kept = 0;
      for (std::size_t b = 0; b < batch.size(); ++b) {
        const std::size_t idx = batch[b];
        if (total_deadline_passed(idx)) {
          if (progress[idx].prefilled) {
            agg.wasted_prefill_cycles += progress[idx].attempt_prefill_cycles;
          }
          metrics[idx].outcome = RequestOutcome::kTimedOut;
          ++finished;
        } else {
          batch[kept++] = idx;
        }
      }
      batch.resize(kept);
      for (auto it = waiting.begin(); it != waiting.end();) {
        if (total_deadline_passed(*it)) {
          metrics[*it].outcome = RequestOutcome::kTimedOut;
          ++finished;
          it = waiting.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Fill free batch slots FIFO. shed_late rejects a waiting request whose
    // TTFT budget is already spent before it can burn a prefill.
    while (batch.size() < static_cast<std::size_t>(options_.max_batch) && !waiting.empty()) {
      const std::size_t idx = waiting.front();
      waiting.pop_front();
      if (res.shed_late && ttft_deadline_passed(idx)) {
        shed_request(idx);
        continue;
      }
      batch.push_back(idx);
    }
    if (batch.empty()) {
      if (finished >= n) continue;  // everything left ended via shed/kill
      // Device idle: jump straight to the next event — an arrival or a
      // retry becoming eligible (the clock does not advance — idle cycles
      // are free in this single-device model).
      std::int64_t next_tick = -1;
      if (next_arrival < n) next_tick = trace.requests[next_arrival].arrival_tick;
      if (!retry_queue.empty() &&
          (next_tick < 0 || retry_queue.front().eligible_tick < next_tick)) {
        next_tick = retry_queue.front().eligible_tick;
      }
      MAS_CHECK(next_tick >= 0) << "serve session stalled with no runnable requests";
      tick = next_tick;
      continue;
    }

    // Evaluate the pressure policy at round start over the window gathered
    // so far. One-way latch: once the windowed mean TTFT slips past the
    // target, decode plans resolve under the relief method for the rest of
    // the run, and the firing round's index is recorded.
    if (pressure.enabled && !relieved && !ttft_window.empty()) {
      double window_sum = 0.0;
      for (double sample : ttft_window) window_sum += sample;
      if (window_sum / static_cast<double>(ttft_window.size()) > pressure.ttft_target_cycles) {
        relieved = true;
        agg.pressure_switch_tick = agg.steps;
      }
    }

    // Draw this round's faults from the round-keyed stream (the draw only
    // depends on the round index and the session seed, never on thread
    // interleaving), then apply them before the round's sims.
    RoundFaults faults;
    if (fault_model) {
      std::int64_t decoding_members = 0;
      for (std::size_t idx : batch) {
        if (progress[idx].prefilled) ++decoding_members;
      }
      FaultContext fault_ctx;
      fault_ctx.round = agg.steps;
      fault_ctx.in_flight = static_cast<std::int64_t>(batch.size());
      fault_ctx.decoding = decoding_members;
      Rng round_rng = FaultRoundRng(options_.fault_seed, agg.steps);
      fault_model->Draw(fault_ctx, round_rng, &faults);

      if (faults.stall_cycles > 0) {
        // The device freezes before the round's work: every in-flight
        // request's latency absorbs the stall.
        clock += faults.stall_cycles;
        agg.stalled_cycles += faults.stall_cycles;
        ++agg.stall_events;
      }
      if (faults.crash && decoding_members > 0) {
        // The crash_draw-th prefilled member (batch order) loses its KV
        // state: the attempt aborts, its prefill is wasted, and the request
        // either waits out a retry backoff or dies.
        const std::uint64_t target =
            faults.crash_draw % static_cast<std::uint64_t>(decoding_members);
        std::size_t victim_pos = batch.size();
        std::uint64_t seen = 0;
        for (std::size_t b = 0; b < batch.size(); ++b) {
          if (!progress[batch[b]].prefilled) continue;
          if (seen++ == target) {
            victim_pos = b;
            break;
          }
        }
        const std::size_t idx = batch[victim_pos];
        agg.wasted_prefill_cycles += progress[idx].attempt_prefill_cycles;
        ++agg.crash_events;
        batch.erase(batch.begin() + victim_pos);
        if (metrics[idx].retries < res.max_retries) {
          ++metrics[idx].retries;
          progress[idx] = Progress{};
          metrics[idx].first_token_cycles = 0;
          // Exponential backoff in ticks: backoff * 2^(attempt - 1), shift
          // clamped so the arithmetic cannot overflow.
          const std::int64_t shift = std::min<std::int64_t>(metrics[idx].retries - 1, 32);
          const PendingRetry entry{tick + (res.retry_backoff_ticks << shift), idx};
          retry_queue.insert(
              std::upper_bound(retry_queue.begin(), retry_queue.end(), entry, retry_before),
              entry);
        } else {
          metrics[idx].outcome = RequestOutcome::kCrashed;
          ++finished;
        }
        if (batch.empty()) {
          // The crash emptied the round; it still happened (the round index
          // advances so later draws stay aligned).
          ++agg.steps;
          ++tick;
          continue;
        }
      }
    }

    // Pass 1: one member per in-flight request, in batch order.
    members.clear();
    std::int64_t decode_members = 0;
    for (std::size_t idx : batch) {
      const ServeRequest& r = trace.requests[idx];
      const Progress& p = progress[idx];
      Member m;
      m.idx = idx;
      if (p.prefilled) {
        const std::int64_t remaining = r.decode_len - p.decoded;
        m.queries = std::min(r.speculation, remaining);
        m.context = r.prompt_len + p.decoded;
        ++decode_members;
      }
      members.push_back(m);
    }
    const bool coalesce = options_.coalesce_decode && decode_members > 1;

    // Pass 2: map members onto sims and resolve plans serially in batch
    // order (planner calls are deterministic and dedup through the plan
    // store / local memo). Under coalescing, ALL of the round's decode
    // members share one sim positioned at the first decode member's slot:
    // queries = the members' summed rows, context = the widest member's —
    // the shared KV stream is priced once for the whole round.
    step_plans.clear();
    sim_decode_members.clear();
    std::size_t coalesced_sim = members.size();  // sentinel: not yet created
    for (Member& m : members) {
      if (m.queries == 0) {
        m.sim = step_plans.size();
        step_plans.push_back(&planner_.PrefillPlan(trace.requests[m.idx].prompt_len));
        sim_decode_members.push_back(0);
        continue;
      }
      if (!coalesce) {
        m.sim = step_plans.size();
        const TuningPlan& plan =
            relieved ? planner_.DecodePlanAs(pressure.relief_method, m.context, m.queries)
                     : planner_.DecodePlan(m.context, m.queries);
        step_plans.push_back(&plan);
        sim_decode_members.push_back(1);
        continue;
      }
      if (coalesced_sim == members.size()) {
        std::int64_t total_queries = 0;
        std::int64_t max_context = 0;
        for (const Member& other : members) {
          if (other.queries == 0) continue;
          total_queries += other.queries;
          max_context = std::max(max_context, other.context);
        }
        coalesced_sim = step_plans.size();
        const TuningPlan& plan =
            relieved
                ? planner_.DecodePlanAs(pressure.relief_method, max_context, total_queries)
                : planner_.DecodePlan(max_context, total_queries);
        step_plans.push_back(&plan);
        sim_decode_members.push_back(decode_members);
      }
      m.sim = coalesced_sim;
    }

    // Simulate the sims across the workers; each writes its own slot. A sim
    // replays on its phase's hardware (prefill sims are the
    // sim_decode_members == 0 entries).
    step_results.assign(step_plans.size(), sim::SimResult{});
    runner::ParallelForWorkers(step_plans.size(), options_.jobs, [&](std::size_t worker,
                                                                     std::size_t i) {
      const bool is_prefill = sim_decode_members[i] == 0;
      const sim::HardwareConfig& sim_hw =
          is_prefill ? planner_.prefill_hw() : planner_.decode_hw();
      sim::Engine* engine =
          is_prefill && split_placement ? &prefill_engines[worker] : &engines[worker];
      step_results[i] = planner_.planner().Simulate(*step_plans[i], sim_hw,
                                                    /*record_timeline=*/false, engine);
    });

    // The single device executes the round's sims back-to-back in sim order;
    // record each sim's completion clock, then retire members in batch order
    // stamping from their sim's completion. With one sim per member this is
    // byte-identical to advancing the clock per member (the old behavior).
    // Under a derate fault the round runs at a reduced frequency: each sim's
    // cycle count reprices to ceil(cycles / factor) — the work, and thus the
    // energy and DRAM traffic, is unchanged; it just takes longer.
    const bool derated = faults.derate_factor < 1.0;
    if (derated && !step_results.empty()) ++agg.derated_rounds;
    sim_done_clock.assign(step_results.size(), 0);
    sim_effective_cycles.assign(step_results.size(), 0);
    for (std::size_t s = 0; s < step_results.size(); ++s) {
      const sim::SimResult& sim = step_results[s];
      std::uint64_t effective_cycles = sim.cycles;
      // Phase cycles tick on the phase backend's clock; the session clock is
      // the base device's. Convert at the boundary (identity when the phase
      // runs on the base hardware — the scale is exactly 1.0 then and the
      // float round-trip is skipped). Energy and traffic are clock-free.
      const double clock_scale = sim_decode_members[s] == 0
                                     ? planner_.prefill_clock_scale()
                                     : planner_.decode_clock_scale();
      if (clock_scale != 1.0) {
        effective_cycles = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(effective_cycles) * clock_scale));
      }
      if (derated) {
        effective_cycles = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(effective_cycles) / faults.derate_factor));
      }
      clock += effective_cycles;
      sim_done_clock[s] = clock;
      sim_effective_cycles[s] = effective_cycles;
      agg.energy += sim.energy;
      agg.dram_read_bytes += sim.dram_read_bytes;
      agg.dram_write_bytes += sim.dram_write_bytes;
      if (sim_decode_members[s] == 0) {
        ++agg.prefill_sims;
      } else {
        ++agg.decode_sims;
        if (sim_decode_members[s] > 1) ++agg.coalesced_decode_sims;
      }
    }

    std::vector<std::size_t> still_running;
    still_running.reserve(members.size());
    for (const Member& m : members) {
      const std::size_t idx = m.idx;
      const ServeRequest& r = trace.requests[idx];
      Progress& p = progress[idx];
      const std::uint64_t done = sim_done_clock[m.sim];
      if (m.queries == 0) {
        p.prefilled = true;
        p.attempt_prefill_cycles = sim_effective_cycles[m.sim];
        metrics[idx].first_token_cycles = done;
        ++agg.generated_tokens;
        if (pressure.enabled) {
          ttft_window.push_back(static_cast<double>(metrics[idx].TtftCycles()));
          while (ttft_window.size() > static_cast<std::size_t>(pressure.window)) {
            ttft_window.pop_front();
          }
        }
        if (r.decode_len == 0) {
          metrics[idx].finish_cycles = done;
          ++finished;
          continue;
        }
      } else {
        p.decoded += m.queries;
        agg.generated_tokens += m.queries;
        if (p.decoded >= r.decode_len) {
          metrics[idx].finish_cycles = done;
          ++finished;
          continue;
        }
      }
      still_running.push_back(idx);
    }
    batch = std::move(still_running);
    ++agg.steps;
    ++tick;
  }

  agg.makespan_cycles = clock;
  // Latency statistics cover only completed requests — a shed or killed
  // request has no TTFT to sample (without the fault/resilience layer every
  // request completes and this is the full set, exactly as before). The
  // outcome counters, retry total, and goodput derive from the per-request
  // records in one pass.
  std::vector<double> ttft_samples;
  std::vector<double> tpot_samples;
  ttft_samples.reserve(n);
  double ttft_sum = 0.0, tpot_sum = 0.0;
  for (const RequestMetrics& m : metrics) {
    agg.retries += m.retries;
    switch (m.outcome) {
      case RequestOutcome::kShed: ++agg.shed; continue;
      case RequestOutcome::kTimedOut: ++agg.timed_out; continue;
      case RequestOutcome::kCrashed: ++agg.crashed; continue;
      case RequestOutcome::kCompleted: ++agg.completed; break;
    }
    const bool within_ttft = res.ttft_deadline_cycles == 0 ||
                             m.TtftCycles() <= res.ttft_deadline_cycles;
    const bool within_total =
        res.total_deadline_cycles == 0 ||
        m.finish_cycles - m.arrival_cycles <= res.total_deadline_cycles;
    if (within_ttft && within_total) agg.goodput_tokens += 1 + m.decode_len;
    const double ttft = static_cast<double>(m.TtftCycles());
    ttft_samples.push_back(ttft);
    ttft_sum += ttft;
    agg.max_ttft_cycles = std::max(agg.max_ttft_cycles, ttft);
    if (m.decode_len > 0) {
      const double tpot = m.TpotCycles();
      tpot_samples.push_back(tpot);
      tpot_sum += tpot;
      agg.max_tpot_cycles = std::max(agg.max_tpot_cycles, tpot);
    }
  }
  agg.decode_requests = static_cast<std::int64_t>(tpot_samples.size());
  if (!ttft_samples.empty()) {
    agg.mean_ttft_cycles = ttft_sum / static_cast<double>(ttft_samples.size());
    agg.p50_ttft_cycles = NearestRankPercentile(ttft_samples, 50.0);
    agg.p95_ttft_cycles = NearestRankPercentile(ttft_samples, 95.0);
    agg.p99_ttft_cycles = NearestRankPercentile(ttft_samples, 99.0);
  }
  if (!tpot_samples.empty()) {
    agg.mean_tpot_cycles = tpot_sum / static_cast<double>(tpot_samples.size());
    agg.p50_tpot_cycles = NearestRankPercentile(tpot_samples, 50.0);
    agg.p95_tpot_cycles = NearestRankPercentile(tpot_samples, 95.0);
    agg.p99_tpot_cycles = NearestRankPercentile(tpot_samples, 99.0);
  }

  result.requests = std::move(metrics);
  return result;
}

}  // namespace mas::serve
