#include "serve/session.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <ostream>
#include <utility>

#include "common/json_writer.h"
#include "common/table.h"
#include "runner/thread_pool.h"
#include "schedulers/registry.h"

namespace mas::serve {

double NearestRankPercentile(std::vector<double> samples, double percentile) {
  MAS_CHECK(!samples.empty()) << "percentile of an empty sample set";
  MAS_CHECK(percentile > 0.0 && percentile <= 100.0)
      << "percentile must lie in (0, 100], got " << percentile;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(percentile / 100.0 * static_cast<double>(n)));
  if (rank < 1) rank = 1;    // percentile > 0 guarantees ceil >= 1, but be safe
  if (rank > n) rank = n;    // guard the p == 100 floating-point edge
  return samples[rank - 1];
}

double ServeMetrics::TokensPerSecond(double frequency_ghz) const {
  if (makespan_cycles == 0) return 0.0;
  const double seconds = static_cast<double>(makespan_cycles) / (frequency_ghz * 1e9);
  return static_cast<double>(generated_tokens) / seconds;
}

double ServeMetrics::MakespanMs(double frequency_ghz) const {
  return static_cast<double>(makespan_cycles) / (frequency_ghz * 1e6);
}

void ServeResult::WriteJson(JsonWriter& json, const sim::HardwareConfig& hw) const {
  json.KeyValue("trace", trace_name);
  json.BeginArray("requests");
  for (const RequestMetrics& r : requests) {
    json.BeginObject();
    json.KeyValue("id", r.id);
    json.KeyValue("arrival_tick", r.arrival_tick);
    json.KeyValue("prompt_len", r.prompt_len);
    json.KeyValue("decode_len", r.decode_len);
    json.KeyValue("speculation", r.speculation);
    json.KeyValue("decode_steps", r.decode_steps);
    json.KeyValue("arrival_cycles", r.arrival_cycles);
    json.KeyValue("first_token_cycles", r.first_token_cycles);
    json.KeyValue("finish_cycles", r.finish_cycles);
    json.KeyValue("ttft_cycles", r.TtftCycles());
    json.KeyValue("tpot_cycles", r.TpotCycles());
    json.EndObject();
  }
  json.EndArray();
  json.BeginObject("aggregate");
  json.KeyValue("requests", metrics.requests);
  json.KeyValue("decode_requests", metrics.decode_requests);
  json.KeyValue("prompt_tokens", metrics.prompt_tokens);
  json.KeyValue("decode_tokens", metrics.decode_tokens);
  json.KeyValue("generated_tokens", metrics.generated_tokens);
  json.KeyValue("steps", metrics.steps);
  json.KeyValue("prefill_sims", metrics.prefill_sims);
  json.KeyValue("decode_sims", metrics.decode_sims);
  json.KeyValue("coalesced_decode_sims", metrics.coalesced_decode_sims);
  json.KeyValue("makespan_cycles", metrics.makespan_cycles);
  json.KeyValue("makespan_ms", metrics.MakespanMs(hw.frequency_ghz));
  json.KeyValue("mean_ttft_cycles", metrics.mean_ttft_cycles);
  json.KeyValue("max_ttft_cycles", metrics.max_ttft_cycles);
  json.KeyValue("p50_ttft_cycles", metrics.p50_ttft_cycles);
  json.KeyValue("p95_ttft_cycles", metrics.p95_ttft_cycles);
  json.KeyValue("p99_ttft_cycles", metrics.p99_ttft_cycles);
  json.KeyValue("mean_tpot_cycles", metrics.mean_tpot_cycles);
  json.KeyValue("max_tpot_cycles", metrics.max_tpot_cycles);
  json.KeyValue("p50_tpot_cycles", metrics.p50_tpot_cycles);
  json.KeyValue("p95_tpot_cycles", metrics.p95_tpot_cycles);
  json.KeyValue("p99_tpot_cycles", metrics.p99_tpot_cycles);
  json.KeyValue("pressure_switch_tick", metrics.pressure_switch_tick);
  json.KeyValue("tokens_per_second", metrics.TokensPerSecond(hw.frequency_ghz));
  json.KeyValue("total_pj", metrics.energy.total_pj());
  json.KeyValue("dram_pj", metrics.energy.dram_pj);
  json.KeyValue("dram_read_bytes", metrics.dram_read_bytes);
  json.KeyValue("dram_write_bytes", metrics.dram_write_bytes);
  json.EndObject();
}

void PrintReport(std::ostream& out, const ServeResult& result, const sim::HardwareConfig& hw,
                 std::int64_t plan_count) {
  const double to_us = 1.0 / (hw.frequency_ghz * 1e3);
  TextTable table({"req", "arrive", "prompt", "decode", "spec", "TTFT us", "TPOT us"});
  for (const RequestMetrics& r : result.requests) {
    table.AddRow({std::to_string(r.id), std::to_string(r.arrival_tick),
                  std::to_string(r.prompt_len), std::to_string(r.decode_len),
                  std::to_string(r.speculation),
                  FormatFixed(static_cast<double>(r.TtftCycles()) * to_us, 1),
                  FormatFixed(r.TpotCycles() * to_us, 1)});
  }
  out << table.ToString() << "\n";

  const ServeMetrics& m = result.metrics;
  out << "makespan " << FormatFixed(m.MakespanMs(hw.frequency_ghz), 2) << " ms, "
      << FormatFixed(m.TokensPerSecond(hw.frequency_ghz), 0) << " tokens/s, mean TTFT "
      << FormatFixed(m.mean_ttft_cycles * to_us, 1) << " us, mean TPOT "
      << FormatFixed(m.mean_tpot_cycles * to_us, 1) << " us over " << m.requests
      << " requests (" << m.prefill_sims << " prefill + " << m.decode_sims
      << " decode sims, " << plan_count << " distinct plans), energy "
      << FormatFixed(m.energy.total_pj() / 1e9, 3) << " mJ\n";
}

void WriteConfigJson(JsonWriter& json, const sim::HardwareConfig& hw,
                     const AttentionGeometry& geometry, const ServePlannerOptions& options,
                     int max_batch, std::int64_t plan_count) {
  json.KeyValue("hardware", hw.name);
  json.KeyValue("model", geometry.name);
  json.KeyValue("prefill_method", options.prefill_method);
  json.KeyValue("decode_method", options.decode_method);
  json.KeyValue("min_context_bucket", options.min_context_bucket);
  json.KeyValue("max_batch", max_batch);
  json.KeyValue("plan_count", plan_count);
}

ServeSession::ServeSession(ServePlanner& planner, ServeSessionOptions options)
    : planner_(planner), options_(std::move(options)) {
  MAS_CHECK(options_.max_batch >= 1) << "max_batch must be positive, got "
                                     << options_.max_batch;
  // Fail fast on a malformed pressure policy instead of mid-trace.
  if (options_.pressure.enabled) {
    MAS_CHECK(options_.pressure.ttft_target_cycles > 0.0)
        << "pressure policy requires a positive ttft_target_cycles, got "
        << options_.pressure.ttft_target_cycles;
    MAS_CHECK(options_.pressure.window >= 1)
        << "pressure window must be at least 1, got " << options_.pressure.window;
    MAS_CHECK(SchedulerRegistry::Instance().Find(options_.pressure.relief_method) != nullptr)
        << "unknown relief method '" << options_.pressure.relief_method
        << "'; options: " << SchedulerRegistry::Instance().AvailableNames();
  }
}

ServeResult ServeSession::Run(const RequestTrace& trace) {
  trace.Validate();
  const std::size_t n = trace.requests.size();

  // Mutable per-request progress, indexed like trace.requests.
  struct Progress {
    bool prefilled = false;
    std::int64_t decoded = 0;  // decode tokens generated so far
  };
  std::vector<Progress> progress(n);
  std::vector<RequestMetrics> metrics(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ServeRequest& r = trace.requests[i];
    metrics[i].id = r.id;
    metrics[i].arrival_tick = r.arrival_tick;
    metrics[i].prompt_len = r.prompt_len;
    metrics[i].decode_len = r.decode_len;
    metrics[i].speculation = r.speculation;
    metrics[i].decode_steps = r.DecodeSteps();
  }

  ServeResult result;
  result.trace_name = trace.name;
  ServeMetrics& agg = result.metrics;
  agg.requests = static_cast<std::int64_t>(n);
  agg.prompt_tokens = trace.TotalPromptTokens();
  agg.decode_tokens = trace.TotalDecodeTokens();
  // Every request emits its first token at the end of prefill, then
  // decode_len more: generated = requests + sum(decode_len).
  agg.generated_tokens = agg.requests + agg.decode_tokens;

  // One reusable engine per simulation worker: arena capacity persists across
  // the whole trace, so steady-state steps are allocation-free.
  const std::size_t max_workers = runner::EffectiveWorkers(
      static_cast<std::size_t>(options_.max_batch), options_.jobs);
  std::vector<sim::Engine> engines;
  engines.reserve(max_workers);
  for (std::size_t w = 0; w < max_workers; ++w) engines.emplace_back(planner_.hw());

  std::size_t next_arrival = 0;  // first not-yet-visible trace index
  std::deque<std::size_t> waiting;
  std::vector<std::size_t> batch;
  std::uint64_t clock = 0;
  std::size_t finished = 0;
  std::int64_t tick = 0;

  // Pressure-policy state: a sliding window of the most recent TTFT samples
  // (pushed as prefills retire) feeding a one-way latch onto the relief
  // decode method.
  const PressurePolicy& pressure = options_.pressure;
  std::deque<double> ttft_window;
  bool relieved = false;

  // Per-step scratch, reused across steps. A step is built in two passes:
  // members (one per in-flight request) first, then the simulations they map
  // onto — distinct objects because coalescing can merge the round's decode
  // members into a single sim.
  struct Member {
    std::size_t idx = 0;       // trace index
    std::int64_t queries = 0;  // decode rows this step (0 = prefill entry)
    std::int64_t context = 0;  // decode KV context (unused for prefill)
    std::size_t sim = 0;       // index into step_plans / step_results
  };
  std::vector<Member> members;
  std::vector<const TuningPlan*> step_plans;
  // Decode members covered, per sim: 0 marks a prefill sim, k >= 1 a decode
  // sim standing in for k members (k > 1 only under coalesce_decode).
  std::vector<std::int64_t> sim_decode_members;
  std::vector<sim::SimResult> step_results;
  std::vector<std::uint64_t> sim_done_clock;

  while (finished < n) {
    // Admit arrivals that became visible at or before this tick.
    while (next_arrival < n && trace.requests[next_arrival].arrival_tick <= tick) {
      metrics[next_arrival].arrival_cycles = clock;
      waiting.push_back(next_arrival);
      ++next_arrival;
    }
    // Fill free batch slots FIFO.
    while (batch.size() < static_cast<std::size_t>(options_.max_batch) && !waiting.empty()) {
      batch.push_back(waiting.front());
      waiting.pop_front();
    }
    if (batch.empty()) {
      // Device idle: jump straight to the next arrival (the clock does not
      // advance — idle cycles are free in this single-device model).
      MAS_CHECK(next_arrival < n) << "serve session stalled with no runnable requests";
      tick = trace.requests[next_arrival].arrival_tick;
      continue;
    }

    // Evaluate the pressure policy at round start over the window gathered
    // so far. One-way latch: once the windowed mean TTFT slips past the
    // target, decode plans resolve under the relief method for the rest of
    // the run, and the firing round's index is recorded.
    if (pressure.enabled && !relieved && !ttft_window.empty()) {
      double window_sum = 0.0;
      for (double sample : ttft_window) window_sum += sample;
      if (window_sum / static_cast<double>(ttft_window.size()) > pressure.ttft_target_cycles) {
        relieved = true;
        agg.pressure_switch_tick = agg.steps;
      }
    }

    // Pass 1: one member per in-flight request, in batch order.
    members.clear();
    std::int64_t decode_members = 0;
    for (std::size_t idx : batch) {
      const ServeRequest& r = trace.requests[idx];
      const Progress& p = progress[idx];
      Member m;
      m.idx = idx;
      if (p.prefilled) {
        const std::int64_t remaining = r.decode_len - p.decoded;
        m.queries = std::min(r.speculation, remaining);
        m.context = r.prompt_len + p.decoded;
        ++decode_members;
      }
      members.push_back(m);
    }
    const bool coalesce = options_.coalesce_decode && decode_members > 1;

    // Pass 2: map members onto sims and resolve plans serially in batch
    // order (planner calls are deterministic and dedup through the plan
    // store / local memo). Under coalescing, ALL of the round's decode
    // members share one sim positioned at the first decode member's slot:
    // queries = the members' summed rows, context = the widest member's —
    // the shared KV stream is priced once for the whole round.
    step_plans.clear();
    sim_decode_members.clear();
    std::size_t coalesced_sim = members.size();  // sentinel: not yet created
    for (Member& m : members) {
      if (m.queries == 0) {
        m.sim = step_plans.size();
        step_plans.push_back(&planner_.PrefillPlan(trace.requests[m.idx].prompt_len));
        sim_decode_members.push_back(0);
        continue;
      }
      if (!coalesce) {
        m.sim = step_plans.size();
        const TuningPlan& plan =
            relieved ? planner_.DecodePlanAs(pressure.relief_method, m.context, m.queries)
                     : planner_.DecodePlan(m.context, m.queries);
        step_plans.push_back(&plan);
        sim_decode_members.push_back(1);
        continue;
      }
      if (coalesced_sim == members.size()) {
        std::int64_t total_queries = 0;
        std::int64_t max_context = 0;
        for (const Member& other : members) {
          if (other.queries == 0) continue;
          total_queries += other.queries;
          max_context = std::max(max_context, other.context);
        }
        coalesced_sim = step_plans.size();
        const TuningPlan& plan =
            relieved
                ? planner_.DecodePlanAs(pressure.relief_method, max_context, total_queries)
                : planner_.DecodePlan(max_context, total_queries);
        step_plans.push_back(&plan);
        sim_decode_members.push_back(decode_members);
      }
      m.sim = coalesced_sim;
    }

    // Simulate the sims across the workers; each writes its own slot.
    step_results.assign(step_plans.size(), sim::SimResult{});
    runner::ParallelForWorkers(step_plans.size(), options_.jobs, [&](std::size_t worker,
                                                                     std::size_t i) {
      step_results[i] =
          planner_.planner().Simulate(*step_plans[i], planner_.hw(),
                                      /*record_timeline=*/false, &engines[worker]);
    });

    // The single device executes the round's sims back-to-back in sim order;
    // record each sim's completion clock, then retire members in batch order
    // stamping from their sim's completion. With one sim per member this is
    // byte-identical to advancing the clock per member (the old behavior).
    sim_done_clock.assign(step_results.size(), 0);
    for (std::size_t s = 0; s < step_results.size(); ++s) {
      const sim::SimResult& sim = step_results[s];
      clock += sim.cycles;
      sim_done_clock[s] = clock;
      agg.energy += sim.energy;
      agg.dram_read_bytes += sim.dram_read_bytes;
      agg.dram_write_bytes += sim.dram_write_bytes;
      if (sim_decode_members[s] == 0) {
        ++agg.prefill_sims;
      } else {
        ++agg.decode_sims;
        if (sim_decode_members[s] > 1) ++agg.coalesced_decode_sims;
      }
    }

    std::vector<std::size_t> still_running;
    still_running.reserve(members.size());
    for (const Member& m : members) {
      const std::size_t idx = m.idx;
      const ServeRequest& r = trace.requests[idx];
      Progress& p = progress[idx];
      const std::uint64_t done = sim_done_clock[m.sim];
      if (m.queries == 0) {
        p.prefilled = true;
        metrics[idx].first_token_cycles = done;
        if (pressure.enabled) {
          ttft_window.push_back(static_cast<double>(metrics[idx].TtftCycles()));
          while (ttft_window.size() > static_cast<std::size_t>(pressure.window)) {
            ttft_window.pop_front();
          }
        }
        if (r.decode_len == 0) {
          metrics[idx].finish_cycles = done;
          ++finished;
          continue;
        }
      } else {
        p.decoded += m.queries;
        if (p.decoded >= r.decode_len) {
          metrics[idx].finish_cycles = done;
          ++finished;
          continue;
        }
      }
      still_running.push_back(idx);
    }
    batch = std::move(still_running);
    ++agg.steps;
    ++tick;
  }

  agg.makespan_cycles = clock;
  std::vector<double> ttft_samples;
  std::vector<double> tpot_samples;
  ttft_samples.reserve(n);
  double ttft_sum = 0.0, tpot_sum = 0.0;
  for (const RequestMetrics& m : metrics) {
    const double ttft = static_cast<double>(m.TtftCycles());
    ttft_samples.push_back(ttft);
    ttft_sum += ttft;
    agg.max_ttft_cycles = std::max(agg.max_ttft_cycles, ttft);
    if (m.decode_len > 0) {
      const double tpot = m.TpotCycles();
      tpot_samples.push_back(tpot);
      tpot_sum += tpot;
      agg.max_tpot_cycles = std::max(agg.max_tpot_cycles, tpot);
    }
  }
  agg.decode_requests = static_cast<std::int64_t>(tpot_samples.size());
  if (n > 0) {
    agg.mean_ttft_cycles = ttft_sum / static_cast<double>(n);
    agg.p50_ttft_cycles = NearestRankPercentile(ttft_samples, 50.0);
    agg.p95_ttft_cycles = NearestRankPercentile(ttft_samples, 95.0);
    agg.p99_ttft_cycles = NearestRankPercentile(ttft_samples, 99.0);
  }
  if (!tpot_samples.empty()) {
    agg.mean_tpot_cycles = tpot_sum / static_cast<double>(tpot_samples.size());
    agg.p50_tpot_cycles = NearestRankPercentile(tpot_samples, 50.0);
    agg.p95_tpot_cycles = NearestRankPercentile(tpot_samples, 95.0);
    agg.p99_tpot_cycles = NearestRankPercentile(tpot_samples, 99.0);
  }

  result.requests = std::move(metrics);
  return result;
}

}  // namespace mas::serve
