#include "serve/trace.h"

#include <fstream>
#include <set>
#include <sstream>

#include "common/json_reader.h"
#include "common/json_writer.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"

namespace mas::serve {

std::int64_t ServeRequest::DecodeSteps() const {
  return decode_len == 0 ? 0 : CeilDiv(decode_len, speculation);
}

void ServeRequest::Validate() const {
  MAS_CHECK(id >= 0) << "request id must be non-negative, got " << id;
  MAS_CHECK(arrival_tick >= 0) << "request " << id << ": arrival_tick must be non-negative";
  MAS_CHECK(prompt_len >= 1) << "request " << id << ": prompt_len must be positive";
  MAS_CHECK(decode_len >= 0) << "request " << id << ": decode_len must be non-negative";
  MAS_CHECK(speculation >= 1) << "request " << id << ": speculation must be positive";
}

void RequestTrace::Validate() const {
  std::set<std::int64_t> ids;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].Validate();
    MAS_CHECK(ids.insert(requests[i].id).second)
        << "trace '" << name << "' has duplicate request id " << requests[i].id;
    if (i == 0) continue;
    const ServeRequest& prev = requests[i - 1];
    const ServeRequest& cur = requests[i];
    MAS_CHECK(prev.arrival_tick < cur.arrival_tick ||
              (prev.arrival_tick == cur.arrival_tick && prev.id < cur.id))
        << "trace '" << name << "' not sorted by (arrival_tick, id) at index " << i;
  }
}

std::int64_t RequestTrace::TotalPromptTokens() const {
  std::int64_t total = 0;
  for (const ServeRequest& r : requests) total += r.prompt_len;
  return total;
}

std::int64_t RequestTrace::TotalDecodeTokens() const {
  std::int64_t total = 0;
  for (const ServeRequest& r : requests) total += r.decode_len;
  return total;
}

// mas-lint: allow(json-schema-version) input documents carry a strict `version` field pinned by FromJson
std::string RequestTrace::ToJson() const {
  Validate();
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("version", std::int64_t{1});
  w.KeyValue("name", name);
  w.BeginArray("requests");
  for (const ServeRequest& r : requests) {
    w.BeginObject();
    w.KeyValue("id", r.id);
    w.KeyValue("arrival_tick", r.arrival_tick);
    w.KeyValue("prompt_len", r.prompt_len);
    w.KeyValue("decode_len", r.decode_len);
    w.KeyValue("speculation", r.speculation);
    // Optional labels stay absent when empty so pre-tenant traces (and their
    // pinned JSON) serialize byte-for-byte unchanged.
    if (!r.tenant.empty()) w.KeyValue("tenant", r.tenant);
    if (!r.model.empty()) w.KeyValue("model", r.model);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

namespace {

// The JSON reader deliberately does not enforce key uniqueness (RFC 8259
// leaves it open); for traces a duplicate key means one value silently
// shadows another — reject it rather than guess which one was meant.
void CheckUniqueKeys(const json::Value& object, const std::string& where) {
  std::set<std::string> seen;
  for (const auto& [key, value] : object.Members()) {
    MAS_CHECK(seen.insert(key).second)
        << where << " has duplicate key '" << key << "'";
    (void)value;
  }
}

}  // namespace

RequestTrace RequestTrace::FromJson(const std::string& text) {
  const json::Value doc = json::Parse(text);
  MAS_CHECK(doc.is_object()) << "trace document must be a JSON object";
  CheckUniqueKeys(doc, "trace document");
  MAS_CHECK(doc.Get("version").AsInt64() == 1)
      << "unsupported trace version " << doc.Get("version").AsInt64();
  RequestTrace trace;
  trace.name = doc.Get("name").AsString();
  const std::vector<json::Value>& rows = doc.Get("requests").AsArray();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const json::Value& v = rows[i];
    // Re-anchor any per-request failure (wrong type, missing key) to the
    // request's index and its byte offset in the document — in a 10k-request
    // trace file, "JSON value is not a number" alone is useless.
    try {
      MAS_CHECK(v.is_object()) << "must be a JSON object";
      CheckUniqueKeys(v, "request");
      // Reject unknown keys outright: a typoed "decode_length" would
      // otherwise silently run with the default.
      static constexpr const char* kKnownKeys[] = {
          "id", "arrival_tick", "prompt_len", "decode_len", "speculation", "tenant", "model"};
      for (const auto& [key, member] : v.Members()) {
        (void)member;
        bool known = false;
        for (const char* k : kKnownKeys) known = known || key == k;
        MAS_CHECK(known) << "unknown request key '" << key
                         << "' (known: id, arrival_tick, prompt_len, decode_len, "
                            "speculation, tenant, model)";
      }
      ServeRequest r;
      r.id = v.Get("id").AsInt64();
      r.arrival_tick = v.Get("arrival_tick").AsInt64();
      r.prompt_len = v.Get("prompt_len").AsInt64();
      r.decode_len = v.Get("decode_len").AsInt64();
      // Optional for hand-written traces: absent means plain autoregressive.
      if (const json::Value* spec = v.Find("speculation")) r.speculation = spec->AsInt64();
      // Optional multi-tenant labels: absent means untenanted / default model.
      if (const json::Value* tenant = v.Find("tenant")) r.tenant = tenant->AsString();
      if (const json::Value* model = v.Find("model")) r.model = model->AsString();
      trace.requests.push_back(r);
    } catch (const Error& e) {
      MAS_FAIL() << "trace request " << i << " (byte offset " << v.offset()
                 << "): " << e.raw_message();
    }
  }
  trace.Validate();
  return trace;
}

RequestTrace RequestTrace::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MAS_CHECK(in.is_open()) << "cannot open trace file '" << path << "'";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  MAS_CHECK(!in.bad()) << "I/O error reading trace file '" << path << "'";
  try {
    return FromJson(buffer.str());
  } catch (const Error& e) {
    // Name the file: LoadFile callers see paths, not document text.
    MAS_FAIL() << "trace file '" << path << "': " << e.raw_message();
  }
}

void RequestTrace::SaveFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MAS_CHECK(out.is_open()) << "cannot open trace file '" << path << "' for writing";
  out << ToJson() << '\n';
  out.flush();
  MAS_CHECK(out.good()) << "I/O error writing trace file '" << path << "'";
}

RequestTrace GenerateTrace(const SyntheticTraceSpec& spec) {
  MAS_CHECK(spec.requests >= 1) << "trace spec needs at least one request";
  MAS_CHECK(spec.prompt_min >= 1 && spec.prompt_min <= spec.prompt_max)
      << "trace spec prompt range [" << spec.prompt_min << ", " << spec.prompt_max
      << "] invalid";
  MAS_CHECK(spec.decode_min >= 0 && spec.decode_min <= spec.decode_max)
      << "trace spec decode range [" << spec.decode_min << ", " << spec.decode_max
      << "] invalid";
  MAS_CHECK(spec.max_arrival_gap >= 0) << "trace spec arrival gap must be non-negative";
  MAS_CHECK(spec.speculation >= 1) << "trace spec speculation must be positive";
  MAS_CHECK(spec.speculative_fraction >= 0.0 && spec.speculative_fraction <= 1.0)
      << "trace spec speculative_fraction must be in [0, 1]";

  Rng rng(spec.seed);
  RequestTrace trace;
  trace.name = spec.name;
  std::int64_t tick = 0;
  for (std::int64_t i = 0; i < spec.requests; ++i) {
    ServeRequest r;
    r.id = i;
    if (i > 0 && spec.max_arrival_gap > 0) {
      tick += static_cast<std::int64_t>(
          rng.NextBelow(static_cast<std::uint64_t>(spec.max_arrival_gap) + 1));
    }
    r.arrival_tick = tick;
    r.prompt_len = spec.prompt_min +
                   static_cast<std::int64_t>(rng.NextBelow(
                       static_cast<std::uint64_t>(spec.prompt_max - spec.prompt_min) + 1));
    r.decode_len = spec.decode_min +
                   static_cast<std::int64_t>(rng.NextBelow(
                       static_cast<std::uint64_t>(spec.decode_max - spec.decode_min) + 1));
    if (spec.speculative_fraction > 0.0 && rng.NextBool(spec.speculative_fraction)) {
      r.speculation = spec.speculation;
    }
    trace.requests.push_back(r);
  }
  if (spec.tenants > 0) {
    // Tenant labels draw from a salted side stream so tagging a spec does
    // not shift the main stream's length/arrival draws above.
    constexpr std::uint64_t kTenantStreamSalt = 0x7E4A47B10B5E55EDull;
    Rng tenant_rng(spec.seed ^ kTenantStreamSalt);
    for (ServeRequest& r : trace.requests) {
      r.tenant = "t" + std::to_string(
                           tenant_rng.NextBelow(static_cast<std::uint64_t>(spec.tenants)));
    }
  }
  trace.Validate();
  return trace;
}

SyntheticTraceSpec FindTracePreset(const std::string& name, std::int64_t requests) {
  SyntheticTraceSpec spec;
  if (name == "chat") {
    // Interactive chat: short-to-medium prompts, conversational decode tails,
    // bursty arrivals.
    spec.name = "chat";
    spec.requests = 8;
    spec.seed = 0xC4A7;
    spec.prompt_min = 96;
    spec.prompt_max = 768;
    spec.decode_min = 16;
    spec.decode_max = 96;
    spec.max_arrival_gap = 2;
  } else if (name == "decode_heavy") {
    // Long-context summarization: big prompts, long generations — the
    // DMA-bound regime where decode dominates the serving budget.
    spec.name = "decode_heavy";
    spec.requests = 4;
    spec.seed = 0xDECD;
    spec.prompt_min = 1024;
    spec.prompt_max = 3072;
    spec.decode_min = 128;
    spec.decode_max = 256;
    spec.max_arrival_gap = 4;
  } else if (name == "mixed_sd") {
    // Mixed traffic: half the requests verify 4-token speculative drafts per
    // decode step (N = 4 query rows), half decode autoregressively (N = 1).
    spec.name = "mixed_sd";
    spec.requests = 8;
    spec.seed = 0x315D;
    spec.prompt_min = 128;
    spec.prompt_max = 1024;
    spec.decode_min = 32;
    spec.decode_max = 128;
    spec.max_arrival_gap = 3;
    spec.speculation = 4;
    spec.speculative_fraction = 0.5;
  } else {
    MAS_FAIL() << "unknown trace preset '" << name << "'; options: " << TracePresetNames();
  }
  if (requests > 0) spec.requests = requests;
  return spec;
}

std::string TracePresetNames() { return "'chat', 'decode_heavy', 'mixed_sd'"; }

}  // namespace mas::serve
