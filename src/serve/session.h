// serve::ServeSession — trace-driven serving simulation with continuous
// batching.
//
// The session advances in scheduling rounds ("steps"). At the start of each
// step it admits every trace request whose arrival_tick has been reached
// (FIFO, max_batch in-flight); each in-flight request then contributes one
// phase simulation to the step — its prefill if it has not produced a first
// token yet, otherwise one decode step against its current KV context. The
// simulated device is a single accelerator, so a step's entries execute
// back-to-back in batch order and the session clock advances by each
// entry's simulated cycles; a request that finishes frees its slot for the
// next step's admissions (continuous batching).
//
// Timing metrics fall out of the cycle clock:
//   TTFT  = first-token completion - arrival (queueing included),
//   TPOT  = (finish - first token) / decode tokens,
//   tokens/s = generated tokens / (makespan / frequency).
// Tail percentiles (p50/p95/p99 TTFT and TPOT) are exact nearest-rank over
// the full per-request sample vectors — no streaming sketches — so they are
// deterministic regardless of batch completion order. Energy and DRAM
// traffic accumulate from the engine SimResults.
//
// Two optional load-adaptive behaviors (both off by default, both
// byte-deterministic for any `jobs`):
//   * PressurePolicy — a windowed mean over the most recent TTFT samples;
//     when it slips past the target the session latches the decode phase
//     onto the relief method (MAS -> FLAT) for the rest of the run and
//     records the switch tick.
//   * coalesce_decode — a round's concurrent ready decode steps merge into
//     ONE speculative-style N>1 DecodeShape simulation (queries = the
//     members' summed rows, context = the widest member's), so the shared
//     KV stream is priced once per round instead of once per request.
//
// Fault injection + resilience (all off by default; see serve/fault.h for
// the fault grammar): `options.fault` names a seeded fault process drawn
// once per round, and `options.resilience` arms the recovery policies —
// per-request deadlines with timeout-kill, bounded crash retry with
// exponential backoff (the retry re-enters admission and recomputes its
// prefill, charging real cycles and energy), and admission control (a
// queue-depth cap plus deadline-aware shedding). Requests then carry a
// RequestOutcome, and ServeMetrics separates goodput (tokens from requests
// that completed within their deadlines) from raw device throughput.
//
// Determinism: plans resolve serially in batch order through the
// ServePlanner; only the engine simulations fan out across `jobs` workers,
// each writing into its entry's slot, and results aggregate in batch order —
// so the full ServeResult (and its JSON) is byte-identical for any jobs
// value, and a warm plan cache replays a trace with zero search evaluations.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/fault.h"
#include "serve/serve_planner.h"
#include "serve/trace.h"
#include "sim/engine.h"

namespace mas {
class JsonWriter;
}

namespace mas::serve {

// Load-adaptive decode-method switching. When enabled, the session keeps a
// sliding window of the most recent TTFT samples (recorded as prefills
// complete); at the start of each scheduling round, if the windowed mean
// exceeds `ttft_target_cycles`, the decode phase latches onto
// `relief_method` for the remainder of the run (a one-way switch — the
// round index it fires at lands in ServeMetrics::pressure_switch_tick).
struct PressurePolicy {
  bool enabled = false;
  double ttft_target_cycles = 0.0;  // must be > 0 when enabled
  int window = 4;                   // TTFT samples in the estimate (>= 1)
  std::string relief_method = "FLAT";
};

// Recovery policies, all disabled by default. Deadlines are measured on the
// session cycle clock against the request's arrival; a value of 0 means "no
// deadline". Retries apply to crash faults only (a timed-out request is
// dead by definition — retrying it cannot meet a deadline that has already
// passed).
struct ResiliencePolicy {
  // Deadlines, measured from the request's arrival on the cycle clock.
  // The TOTAL deadline timeout-kills: at round start any request — queued
  // or in flight — whose total budget has passed is killed (outcome
  // kTimedOut), and an in-flight kill wastes the attempt's prefill cycles.
  // The TTFT deadline does not kill on its own (a late first token still
  // produces tokens — the classic overload failure is the device burning
  // capacity on already-dead requests): it defines which completions count
  // as goodput, and powers shed_late's early rejection below.
  std::uint64_t ttft_deadline_cycles = 0;   // 0 = no TTFT deadline
  std::uint64_t total_deadline_cycles = 0;  // 0 = no total deadline
  // Crash recovery: a crashed request re-enters admission at most
  // max_retries times, becoming eligible retry_backoff_ticks * 2^(attempt-1)
  // ticks after the crash. With max_retries == 0 a crash is terminal
  // (outcome kCrashed).
  std::int64_t max_retries = 0;
  std::int64_t retry_backoff_ticks = 1;  // >= 1 when max_retries > 0
  // Admission control. admission_queue_cap bounds the waiting queue: an
  // arrival that finds the queue full is shed on the spot (0 = unbounded).
  // shed_late additionally sheds, at batch-fill time, any waiting request
  // whose TTFT deadline has already passed — it could only waste cycles.
  std::int64_t admission_queue_cap = 0;  // 0 = unbounded
  bool shed_late = false;                // requires ttft_deadline_cycles > 0

  // A shed request never starts (first_token_cycles stays 0); a timed-out
  // request may have prefilled before dying. Both count against SLO
  // attainment and neither contributes latency samples or goodput.

  bool AnyEnabled() const {
    return ttft_deadline_cycles > 0 || total_deadline_cycles > 0 || max_retries > 0 ||
           admission_queue_cap > 0 || shed_late;
  }
};

struct ServeSessionOptions {
  int max_batch = 4;  // in-flight request cap (continuous-batching window)
  int jobs = 1;       // worker threads simulating a step's batch entries
  // Merge a round's concurrent ready decode steps into one N>1 DecodeShape
  // simulation (queries summed, context = the widest member's bucket).
  bool coalesce_decode = false;
  PressurePolicy pressure;
  // Fault injection (empty kind = disabled) and the recovery policies.
  // Fault draws come from seeded streams keyed off the round index — never
  // wall clocks — so a (fault, fault_seed) pair replays identically for any
  // jobs value.
  FaultSpec fault;
  std::uint64_t fault_seed = 0xFA17C0DEDEC0DE5Dull;
  ResiliencePolicy resilience;
};

// Terminal state of a request. Only kCompleted requests contribute latency
// samples and goodput; the others exist to be counted against attainment.
enum class RequestOutcome {
  kCompleted = 0,  // produced every token
  kShed,           // rejected at admission (queue cap or deadline-aware)
  kTimedOut,       // killed in flight by a deadline
  kCrashed,        // lost its KV state with no retry budget left
};
const char* RequestOutcomeName(RequestOutcome outcome);

// Per-request outcome. All timestamps are session-clock cycles.
struct RequestMetrics {
  std::int64_t id = 0;
  std::int64_t arrival_tick = 0;
  std::int64_t prompt_len = 0;
  std::int64_t decode_len = 0;
  std::int64_t speculation = 1;
  std::int64_t decode_steps = 0;
  std::string tenant;  // carried through from the trace; empty = untenanted
  std::string model;   // carried through from the trace; empty = default

  std::uint64_t arrival_cycles = 0;      // clock when the request became visible
  std::uint64_t first_token_cycles = 0;  // clock when its prefill completed
  std::uint64_t finish_cycles = 0;       // clock when its last token completed

  RequestOutcome outcome = RequestOutcome::kCompleted;
  std::int64_t retries = 0;  // crash retries consumed (0 without faults)

  // Shed/killed requests never produced a first token; their TTFT is 0, not
  // a uint64 underflow. Only kCompleted requests enter the latency stats.
  std::uint64_t TtftCycles() const {
    if (first_token_cycles < arrival_cycles) return 0;
    return first_token_cycles - arrival_cycles;
  }
  // Cycles per generated token after the first; 0 when decode_len == 0 or
  // the request never got past prefill.
  double TpotCycles() const {
    if (decode_len == 0 || finish_cycles <= first_token_cycles) return 0.0;
    return static_cast<double>(finish_cycles - first_token_cycles) /
           static_cast<double>(decode_len);
  }
};

// Exact nearest-rank percentile, p in (0, 100]: the sample at ascending
// rank ceil(p/100 * n). Sorts a copy, so the result is independent of the
// caller's sample order (completion order never leaks in); throws on an
// empty sample set or an out-of-range percentile.
double NearestRankPercentile(std::vector<double> samples, double percentile);

// Aggregate session outcome. TPOT statistics (mean/max/percentiles) are
// taken over the `decode_requests` requests with decode_len > 0; when a
// trace is entirely prefill-only they are all exactly 0.0, consistently.
// When the fault/resilience layer is active, latency statistics cover only
// the requests that COMPLETED (a shed request has no TTFT), while the
// outcome counters and wasted_prefill_cycles account for everything else.
struct ServeMetrics {
  std::int64_t requests = 0;
  std::int64_t decode_requests = 0;   // completed requests with decode_len > 0
  std::int64_t prompt_tokens = 0;
  std::int64_t decode_tokens = 0;
  std::int64_t generated_tokens = 0;  // tokens the device produced (incl. re-decodes)
  std::int64_t steps = 0;             // scheduling rounds executed
  std::int64_t prefill_sims = 0;      // phase simulations by kind
  std::int64_t decode_sims = 0;
  // Decode simulations that covered more than one request (coalesce_decode).
  std::int64_t coalesced_decode_sims = 0;
  std::uint64_t makespan_cycles = 0;

  // Fault/resilience accounting (all zero — and absent from the JSON — when
  // no fault model and no resilience policy is configured).
  bool fault_layer_active = false;    // any fault model or policy configured
  std::int64_t completed = 0;         // outcome == kCompleted
  std::int64_t shed = 0;              // outcome == kShed
  std::int64_t timed_out = 0;         // outcome == kTimedOut
  std::int64_t crashed = 0;           // outcome == kCrashed (terminal, no budget)
  std::int64_t retries = 0;           // crash retries re-admitted
  std::int64_t crash_events = 0;      // crash faults injected (retried or not)
  std::int64_t stall_events = 0;      // stall faults injected
  std::uint64_t stalled_cycles = 0;   // clock cycles lost to stalls
  std::int64_t derated_rounds = 0;    // rounds run at a derated frequency
  // Prefill cycles spent on attempts that did not survive (crashed or
  // timed out after prefilling) — the work the device did and threw away.
  std::uint64_t wasted_prefill_cycles = 0;
  // Tokens from requests that completed within the session's configured
  // deadlines (all completed requests when no deadline is set). The
  // goodput-vs-throughput gap is exactly the wasted + dead work.
  std::int64_t goodput_tokens = 0;

  double mean_ttft_cycles = 0.0;
  double max_ttft_cycles = 0.0;
  double p50_ttft_cycles = 0.0;  // nearest-rank over all requests
  double p95_ttft_cycles = 0.0;
  double p99_ttft_cycles = 0.0;
  double mean_tpot_cycles = 0.0;  // over requests with decode_len > 0
  double max_tpot_cycles = 0.0;
  double p50_tpot_cycles = 0.0;  // nearest-rank over decode requests
  double p95_tpot_cycles = 0.0;
  double p99_tpot_cycles = 0.0;

  // Round index at which the pressure policy latched the decode phase onto
  // its relief method; -1 when the policy never fired (or is disabled).
  std::int64_t pressure_switch_tick = -1;

  sim::EnergyBreakdown energy;
  std::int64_t dram_read_bytes = 0;
  std::int64_t dram_write_bytes = 0;

  // Derived from the hardware clock: generated tokens per wall second.
  double TokensPerSecond(double frequency_ghz) const;
  // goodput_tokens per wall second — the headline resilience metric.
  double GoodputTokensPerSecond(double frequency_ghz) const;
  double MakespanMs(double frequency_ghz) const;
};

struct ServeResult {
  std::string trace_name;
  std::vector<RequestMetrics> requests;  // in trace (admission) order
  ServeMetrics metrics;

  // Deterministic machine-readable form: per-request rows plus the
  // aggregate block (no wall clocks or thread counts — byte-identical for
  // any jobs value). Emits into an already-open JSON object.
  void WriteJson(JsonWriter& json, const sim::HardwareConfig& hw) const;
};

class ServeSession {
 public:
  explicit ServeSession(ServePlanner& planner, ServeSessionOptions options = {});

  // Plays the trace to completion and returns the metrics. Throws on an
  // invalid trace. Safe to call repeatedly (sessions keep no trace state).
  ServeResult Run(const RequestTrace& trace);

  const ServeSessionOptions& options() const { return options_; }

 private:
  ServePlanner& planner_;
  ServeSessionOptions options_;
};

// Shared reporting between tools/mas_serve and the serve bench suites, so
// the human-readable tables and the JSON schema cannot drift between the
// two drivers.
//
// PrintReport: the per-request TTFT/TPOT table plus a one-line aggregate
// summary (makespan, throughput, latency means, sim/plan counts, energy).
void PrintReport(std::ostream& out, const ServeResult& result, const sim::HardwareConfig& hw,
                 std::int64_t plan_count);
// WriteConfigJson: the configuration header keys (hardware, model, phase
// methods, bucketing, batching, plan count) that precede
// ServeResult::WriteJson in both drivers' JSON documents.
void WriteConfigJson(JsonWriter& json, const sim::HardwareConfig& hw,
                     const AttentionGeometry& geometry, const ServePlannerOptions& options,
                     int max_batch, std::int64_t plan_count);

}  // namespace mas::serve
