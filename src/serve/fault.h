// serve::FaultModel — seeded, byte-deterministic fault injection for the
// serving simulator.
//
// The serve session models a perfect device: no stall, no thermal throttle,
// no lost KV state. Fault models close that gap so the resilience policies
// in ServeSessionOptions (deadlines, retries, load shedding) have something
// real to defend against. A model is drawn ONCE per scheduling round from an
// Rng keyed off the ROUND INDEX (FaultRoundRng), never a wall clock — so a
// (spec, seed) pair replays the identical fault sequence for any --jobs
// value, and a round's draw does not depend on how many draws earlier
// rounds consumed.
//
// Models self-register in the FaultModelRegistry (the same pattern as
// ArrivalModelRegistry) under the `--fault` grammar
//   kind[:key=value[,key=value...]]       e.g.  crash:prob=0.1,limit=4
// Built-ins:
//   stall  — the device freezes for a fixed number of cycles at seeded
//            rounds (every in-flight request eats the latency)
//   derate — thermal throttle: a frequency multiplier over a window of
//            rounds; the session reprices each affected sim's cycles as
//            ceil(cycles / factor) when advancing the clock
//   crash  — one in-flight request loses its KV state mid-decode; its
//            attempt aborts and it must re-prefill (in the baseline the
//            request is lost, with retries it re-enters admission)
// All three take `limit` (max events, 0 = unlimited) so tests can pin an
// exact fault count (e.g. crash:prob=1,limit=1 crashes exactly once).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace mas::serve {

// Parsed `--fault` grammar: "kind[:key=value[,key=value...]]". Values are
// finite doubles; keys may not repeat. Parse() throws mas::Error on
// malformed text; kind/param *semantics* are checked by the registry
// factory at Create() time. A default-constructed spec (empty kind) means
// "no fault injection".
struct FaultSpec {
  std::string kind;  // registry key; empty = fault injection disabled
  std::vector<std::pair<std::string, double>> params;  // grammar order

  static FaultSpec Parse(const std::string& text);
  std::string ToString() const;  // canonical "kind:k=v,..." round-trip

  bool enabled() const { return !kind.empty(); }
  bool Has(const std::string& key) const;
  double Param(const std::string& key, double fallback) const;
};

// Descriptor of one registered fault model.
struct FaultModelInfo {
  std::string name;     // registry key and grammar head, e.g. "stall"
  std::string summary;  // one-line fault description
  std::string params;   // grammar help, e.g. "prob ([0,1], default 0.02)"
};

// What the session sees entering a round — the only inputs a model may
// condition on (anything else would break jobs-independence).
struct FaultContext {
  std::int64_t round = 0;      // scheduling-round index (ServeMetrics::steps)
  std::int64_t in_flight = 0;  // batch occupancy entering the round
  std::int64_t decoding = 0;   // prefilled members (crash-eligible)
};

// One round's injected faults. Defaults mean "nothing happened".
struct RoundFaults {
  std::uint64_t stall_cycles = 0;  // added to the clock before the round's sims
  double derate_factor = 1.0;      // effective-frequency multiplier in (0, 1]
  bool crash = false;              // one crash-eligible request loses its KV
  std::uint64_t crash_draw = 0;    // victim selector (mod the eligible count)
};

// One instantiated fault process. Stateful (the derate window machinery
// lives inside), so create one model per session run.
class FaultModel {
 public:
  virtual ~FaultModel() = default;
  virtual const FaultModelInfo& info() const = 0;
  // Draws this round's faults into `out` (already default-initialized).
  // `rng` is the round-keyed stream from FaultRoundRng — models never seed
  // their own.
  virtual void Draw(const FaultContext& ctx, Rng& rng, RoundFaults* out) = 0;
};

// String-keyed fault-model catalog, mirroring ArrivalModelRegistry.
// Factories validate their spec's params (unknown keys, out-of-range
// probabilities) eagerly.
class FaultModelRegistry {
 public:
  using Factory = std::function<std::unique_ptr<FaultModel>(const FaultSpec&)>;

  static FaultModelRegistry& Instance();

  // Throws when the model name is already taken (the built-ins are
  // materialized first, so registering over "stall" throws immediately
  // rather than failing at the first lookup).
  void Register(FaultModelInfo info, Factory factory);

  // Unknown kinds throw an Error listing the available set; factories throw
  // on invalid params.
  std::unique_ptr<FaultModel> Create(const FaultSpec& spec) const;

  const FaultModelInfo* Find(const std::string& name) const;  // nullptr if unknown
  std::vector<FaultModelInfo> List() const;  // registration order
  std::string AvailableNames() const;        // "'stall', 'derate', 'crash'"

 private:
  struct Entry {
    FaultModelInfo info;
    Factory factory;
  };

  FaultModelRegistry() = default;
  void EnsureBuiltins() const;
  // Register without materializing builtins first — the path the builtin
  // registrations themselves take (calling Register there would re-enter
  // the active call_once and deadlock).
  void RegisterImpl(FaultModelInfo info, Factory factory);
  const Entry* FindEntryLocked(const std::string& name) const;
  std::string AvailableNamesLockedUnsafe() const;

  mutable std::once_flag builtins_once_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // registration order
};

// The round-keyed fault stream: a fresh Rng for round `round` of a session
// seeded with `seed` (SplitMix64 of the round index XORed into the seed).
// Keying per round — instead of one sequential stream — makes a round's
// draws independent of every other round's draw count, which is what lets
// fault models grow extra draws without invalidating unrelated rounds.
Rng FaultRoundRng(std::uint64_t seed, std::int64_t round);

}  // namespace mas::serve
