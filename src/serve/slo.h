// serve::EvaluateSlo / RunLoadSweep — the SLO side of the open-loop story.
//
// An arrival model (serve/arrival.h) makes offered load an input; this
// header makes service-level attainment the output. Targets are quoted in
// microseconds (the unit operators reason in) and converted to cycles
// through the hardware clock; attainment is the fraction of requests whose
// TTFT — and, for requests that decode, TPOT — lands at or under its
// target. For a COMPLETED request an unset target (0) is vacuously met, so
// a TTFT-only SLO works without inventing a TPOT bound; a request that did
// NOT complete (shed, timed out, crashed — see RequestOutcome) meets no
// target, unset or not: it stays in every denominator and never counts as
// ok, so an all-shed run scores 0.0 attainment rather than a vacuous 1.0.
//
// RunLoadSweep replays ONE trace shape (same lengths, same length seed)
// across a ladder of offered rates, re-drawing only the arrival ticks per
// point. Holding the work fixed while sweeping the rate isolates queueing:
// the attainment-vs-load curve bends exactly where the device saturates,
// which is the capacity number the sweep exists to find. Everything is
// deterministic — fixed seeds, nearest-rank percentiles, no wall clocks —
// so the emitted JSON is byte-identical across --jobs and reruns.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/arrival.h"
#include "serve/session.h"
#include "serve/trace.h"
#include "sim/hardware_config.h"

namespace mas {
class JsonWriter;
}

namespace mas::serve {

// Latency targets in wall microseconds; 0 disables that dimension.
struct SloTargets {
  double ttft_us = 0.0;  // time-to-first-token bound, all requests
  double tpot_us = 0.0;  // time-per-output-token bound, decode requests only

  bool HasTtft() const { return ttft_us > 0.0; }
  bool HasTpot() const { return tpot_us > 0.0; }
  void Validate() const;  // throws on negative or non-finite targets
};

// Attainment counts for one ServeResult against one SloTargets. Every
// request — completed or not — lands in the denominators; only completed
// requests can be ok (a shed or killed request met nothing).
struct SloReport {
  std::int64_t requests = 0;
  std::int64_t decode_requests = 0;  // decode_len > 0, any outcome
  std::int64_t ttft_ok = 0;   // completed with TTFT <= target (all completed when unset)
  std::int64_t tpot_ok = 0;   // completed decode requests with TPOT <= target
  std::int64_t joint_ok = 0;  // completed requests meeting every applicable target
  // Tokens (first + decode) from completed requests that met every
  // applicable target — goodput against THESE targets, comparable across
  // sessions whatever their internal deadline policies. Serialized only for
  // results with an active fault/resilience layer (`extended`).
  std::int64_t goodput_tokens = 0;
  bool extended = false;  // result had fault/resilience accounting

  // Fractions in [0, 1]; an empty denominator (empty trace, prefill-only
  // trace) still reports 1.0 — with zero requests there is nothing to miss.
  double TtftAttainment() const;
  double TpotAttainment() const;  // over decode requests
  double JointAttainment() const;
};

// Scores `result` against `targets` on `hw`'s clock (target cycles =
// target_us * frequency_ghz * 1e3). Throws on invalid targets.
SloReport EvaluateSlo(const ServeResult& result, const sim::HardwareConfig& hw,
                      const SloTargets& targets);

// Emits the targets and attainment block into an already-open JSON object
// (key "slo"): targets as given, counts, and the three fractions.
void WriteSloJson(JsonWriter& json, const SloTargets& targets, const SloReport& report);

// Geometric offered-rate ladder: start, start*factor, ... (count points).
// Throws unless start > 0, factor > 1, count >= 1.
std::vector<double> GeometricRates(double start_per_s, double factor, int count);

// One load-sweep configuration: a trace shape, an arrival family, a rate
// ladder, targets, and the session to run each point under.
struct LoadSweepOptions {
  ArrivalSpec arrival;              // base spec; "rate" is overridden per point
  ArrivalCalibration calibration;
  SyntheticTraceSpec shape;         // lengths + seed; arrival ticks replaced
  std::vector<double> rates_per_s;  // offered-load ladder (ascending by convention)
  SloTargets slo;
  ServeSessionOptions session;
};

struct LoadSweepPoint {
  double rate_per_s = 0.0;
  ServeResult result;
  SloReport slo;
};

// Runs one session per rate (in ladder order) against `planner` — shared
// across points, so the plan memo warms over the sweep — and scores each
// against the targets. Throws on an empty or non-positive rate ladder.
std::vector<LoadSweepPoint> RunLoadSweep(ServePlanner& planner, const LoadSweepOptions& options);

}  // namespace mas::serve
