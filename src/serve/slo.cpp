#include "serve/slo.h"

#include <cmath>

#include "common/json_writer.h"
#include "common/status.h"

namespace mas::serve {

namespace {

double Fraction(std::int64_t ok, std::int64_t total) {
  if (total == 0) return 1.0;
  return static_cast<double>(ok) / static_cast<double>(total);
}

}  // namespace

void SloTargets::Validate() const {
  MAS_CHECK(std::isfinite(ttft_us) && ttft_us >= 0.0)
      << "SLO ttft_us must be finite and non-negative, got " << ttft_us;
  MAS_CHECK(std::isfinite(tpot_us) && tpot_us >= 0.0)
      << "SLO tpot_us must be finite and non-negative, got " << tpot_us;
}

double SloReport::TtftAttainment() const { return Fraction(ttft_ok, requests); }
double SloReport::TpotAttainment() const { return Fraction(tpot_ok, decode_requests); }
double SloReport::JointAttainment() const { return Fraction(joint_ok, requests); }

SloReport EvaluateSlo(const ServeResult& result, const sim::HardwareConfig& hw,
                      const SloTargets& targets) {
  targets.Validate();
  const double cycles_per_us = hw.frequency_ghz * 1e3;
  const double ttft_target_cycles = targets.ttft_us * cycles_per_us;
  const double tpot_target_cycles = targets.tpot_us * cycles_per_us;

  SloReport report;
  report.requests = static_cast<std::int64_t>(result.requests.size());
  report.extended = result.metrics.fault_layer_active;
  for (const RequestMetrics& r : result.requests) {
    // A request that did not complete meets no target: it stays in every
    // denominator but can never be ok, so shedding or killing requests
    // degrades attainment instead of vanishing from it.
    if (r.outcome != RequestOutcome::kCompleted) {
      if (r.decode_len > 0) ++report.decode_requests;
      continue;
    }
    const bool ttft_met =
        !targets.HasTtft() || static_cast<double>(r.TtftCycles()) <= ttft_target_cycles;
    bool tpot_met = true;
    if (r.decode_len > 0) {
      ++report.decode_requests;
      tpot_met = !targets.HasTpot() || r.TpotCycles() <= tpot_target_cycles;
      if (tpot_met) ++report.tpot_ok;
    }
    if (ttft_met) ++report.ttft_ok;
    if (ttft_met && tpot_met) {
      ++report.joint_ok;
      report.goodput_tokens += 1 + r.decode_len;
    }
  }
  return report;
}

void WriteSloJson(JsonWriter& json, const SloTargets& targets, const SloReport& report) {
  json.BeginObject("slo");
  json.KeyValue("ttft_target_us", targets.ttft_us);
  json.KeyValue("tpot_target_us", targets.tpot_us);
  json.KeyValue("requests", report.requests);
  json.KeyValue("decode_requests", report.decode_requests);
  json.KeyValue("ttft_ok", report.ttft_ok);
  json.KeyValue("tpot_ok", report.tpot_ok);
  json.KeyValue("joint_ok", report.joint_ok);
  json.KeyValue("ttft_attainment", report.TtftAttainment());
  json.KeyValue("tpot_attainment", report.TpotAttainment());
  json.KeyValue("joint_attainment", report.JointAttainment());
  // Only resilience-aware results carry goodput; a plain run's slo block
  // stays byte-identical to earlier schema versions.
  if (report.extended) json.KeyValue("goodput_tokens", report.goodput_tokens);
  json.EndObject();
}

std::vector<double> GeometricRates(double start_per_s, double factor, int count) {
  MAS_CHECK(std::isfinite(start_per_s) && start_per_s > 0.0)
      << "rate ladder start must be positive and finite, got " << start_per_s;
  MAS_CHECK(std::isfinite(factor) && factor > 1.0)
      << "rate ladder factor must exceed 1, got " << factor;
  MAS_CHECK(count >= 1) << "rate ladder needs at least one point, got " << count;
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(count));
  double rate = start_per_s;
  for (int i = 0; i < count; ++i) {
    MAS_CHECK(std::isfinite(rate)) << "rate ladder overflowed at point " << i;
    rates.push_back(rate);
    rate *= factor;
  }
  return rates;
}

std::vector<LoadSweepPoint> RunLoadSweep(ServePlanner& planner,
                                         const LoadSweepOptions& options) {
  MAS_CHECK(!options.rates_per_s.empty()) << "load sweep needs at least one offered rate";
  options.slo.Validate();

  std::vector<LoadSweepPoint> points;
  points.reserve(options.rates_per_s.size());
  for (const double rate : options.rates_per_s) {
    MAS_CHECK(std::isfinite(rate) && rate > 0.0)
        << "load sweep rate must be positive and finite, got " << rate;
    const ArrivalSpec spec = options.arrival.With("rate", rate);
    const std::unique_ptr<ArrivalModel> model =
        ArrivalModelRegistry::Instance().Create(spec, options.calibration);
    const RequestTrace trace = RequestTrace::FromArrivalModel(*model, options.shape);

    LoadSweepPoint point;
    point.rate_per_s = rate;
    ServeSession session(planner, options.session);
    point.result = session.Run(trace);
    point.slo = EvaluateSlo(point.result, planner.hw(), options.slo);
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace mas::serve
