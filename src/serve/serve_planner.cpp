#include "serve/serve_planner.h"

#include <utility>

#include "schedulers/registry.h"
#include "sim/backend.h"

namespace mas::serve {

namespace {

bool IsPowerOfTwo(std::int64_t v) { return v >= 1 && (v & (v - 1)) == 0; }

}  // namespace

ServePlanner::ServePlanner(Planner& planner, const sim::HardwareConfig& hw,
                           AttentionGeometry geometry, ServePlannerOptions options)
    : planner_(planner), hw_(hw), geometry_(std::move(geometry)), options_(std::move(options)) {
  MAS_CHECK(IsPowerOfTwo(options_.min_context_bucket))
      << "min_context_bucket must be a power of two, got " << options_.min_context_bucket;
  // Fail fast (listing the registry) instead of on the first request.
  MAS_CHECK(SchedulerRegistry::Instance().Find(options_.prefill_method) != nullptr)
      << "unknown prefill method '" << options_.prefill_method
      << "'; options: " << SchedulerRegistry::Instance().AvailableNames();
  MAS_CHECK(SchedulerRegistry::Instance().Find(options_.decode_method) != nullptr)
      << "unknown decode method '" << options_.decode_method
      << "'; options: " << SchedulerRegistry::Instance().AvailableNames();
  // Resolve phase backends eagerly: an unknown backend or bad tunable in a
  // placement spec throws here (listing the registry), not mid-trace. An
  // empty spec keeps the base hardware AND its exact 1.0 clock scale, so
  // homogeneous sessions take the byte-identical legacy path.
  prefill_hw_ = options_.prefill_backend.empty()
                    ? hw_
                    : sim::ResolveBackend(options_.prefill_backend, "--prefill-backend");
  decode_hw_ = options_.decode_backend.empty()
                   ? hw_
                   : sim::ResolveBackend(options_.decode_backend, "--decode-backend");
  if (!options_.prefill_backend.empty()) {
    prefill_clock_scale_ = hw_.frequency_ghz / prefill_hw_.frequency_ghz;
  }
  if (!options_.decode_backend.empty()) {
    decode_clock_scale_ = hw_.frequency_ghz / decode_hw_.frequency_ghz;
  }
  split_placement_ = prefill_hw_.CacheKey() != decode_hw_.CacheKey();
}

std::int64_t ServePlanner::Bucket(std::int64_t n, std::int64_t min_bucket) {
  MAS_CHECK(n >= 1) << "bucketed length must be positive, got " << n;
  MAS_CHECK(IsPowerOfTwo(min_bucket)) << "min_bucket must be a power of two";
  std::int64_t bucket = min_bucket;
  while (bucket < n) {
    MAS_CHECK(bucket <= (INT64_MAX >> 1)) << "context length " << n << " overflows bucketing";
    bucket <<= 1;
  }
  return bucket;
}

const TuningPlan& ServePlanner::PrefillPlan(std::int64_t prompt_len) {
  return Resolve(Phase::kPrefill, Bucket(prompt_len, options_.min_context_bucket), 1,
                 options_.prefill_method);
}

const TuningPlan& ServePlanner::DecodePlan(std::int64_t context_len, std::int64_t queries) {
  MAS_CHECK(queries >= 1) << "decode query count must be positive, got " << queries;
  return Resolve(Phase::kDecode, Bucket(context_len, options_.min_context_bucket), queries,
                 options_.decode_method);
}

const TuningPlan& ServePlanner::DecodePlanAs(const std::string& method,
                                             std::int64_t context_len, std::int64_t queries) {
  MAS_CHECK(queries >= 1) << "decode query count must be positive, got " << queries;
  MAS_CHECK(SchedulerRegistry::Instance().Find(method) != nullptr)
      << "unknown decode method '" << method
      << "'; options: " << SchedulerRegistry::Instance().AvailableNames();
  return Resolve(Phase::kDecode, Bucket(context_len, options_.min_context_bucket), queries,
                 method);
}

const TuningPlan& ServePlanner::Resolve(Phase phase, std::int64_t bucket,
                                        std::int64_t queries, const std::string& method) {
  const auto key = std::make_tuple(static_cast<int>(phase), bucket, queries, method);
  const auto it = plans_.find(key);
  if (it != plans_.end()) return it->second;

  const AttentionShape shape = phase == Phase::kPrefill
                                   ? PrefillShape(geometry_, bucket)
                                   : DecodeShape(geometry_, bucket, queries);
  // Plans resolve against the phase's hardware: the plan-store key includes
  // that hardware's CacheKey, so a prefill-on-NPU plan never aliases the
  // same shape planned for the base device.
  const sim::HardwareConfig& phase_hw = phase == Phase::kPrefill ? prefill_hw_ : decode_hw_;
  TuningPlan plan = planner_.Plan(shape, method, phase_hw, options_.policy);
  return plans_.emplace(key, std::move(plan)).first->second;
}

}  // namespace mas::serve
