// serve::ArrivalModel — open-loop load generation for the serving simulator.
//
// PR 5's traces carry hand-picked arrival ticks, so queueing delay is an
// artifact of the trace rather than a function of offered load. Arrival
// models close that gap: a model is a stochastic inter-arrival process that
// emits gaps in *session ticks*, parameterized in wall-clock requests/sec
// and mapped onto the tick clock by an ArrivalCalibration ("one scheduling
// round nominally represents N device cycles at F GHz"). Sweeping the rate
// then answers the capacity-planning question directly: offered load is an
// input, and SLO attainment (serve/slo.h) is the output.
//
// Models self-register in the ArrivalModelRegistry (the same pattern as
// SchedulerRegistry/SuiteRegistry) under the `--arrival` grammar
//   model[:key=value[,key=value...]]      e.g.  poisson:rate=64
// Built-ins:
//   poisson — memoryless arrivals at a constant rate
//   bursty  — Markov-modulated on/off process (exponential phase lengths;
//             the "on" phase multiplies the base rate)
//   diurnal — sinusoidally rate-modulated Poisson process via thinning
//
// Determinism: every draw comes from a caller-seeded common/rng stream
// (never std::<random> distributions — their output is implementation-
// defined), so a (spec, calibration, seed) triple reproduces the same
// arrival stream on every platform. Fixed-seed prefixes are pinned as
// goldens in tests/golden_arrivals.inc (regenerate: gen_golden_arrivals).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "serve/trace.h"

namespace mas::serve {

// Maps wall-clock rates onto the session's scheduling-tick clock.
struct ArrivalCalibration {
  double frequency_ghz = 3.75;     // device clock the rates are quoted against
  double cycles_per_tick = 1e6;    // device cycles one scheduling round represents
  double TicksPerSecond() const { return frequency_ghz * 1e9 / cycles_per_tick; }
  void Validate() const;  // throws on non-positive or non-finite fields
};

// Parsed `--arrival` grammar: "model[:key=value[,key=value...]]". Values are
// finite doubles; keys may not repeat. Parse() throws mas::Error on
// malformed text; model/param *semantics* are checked by the registry
// factory at Create() time.
struct ArrivalSpec {
  std::string model = "poisson";
  std::vector<std::pair<std::string, double>> params;  // grammar order

  static ArrivalSpec Parse(const std::string& text);
  std::string ToString() const;  // canonical "model:k=v,..." round-trip

  bool Has(const std::string& key) const;
  double Param(const std::string& key, double fallback) const;
  ArrivalSpec With(const std::string& key, double value) const;  // upsert (rate ladders)
};

// Descriptor of one registered arrival model.
struct ArrivalModelInfo {
  std::string name;     // registry key and grammar head, e.g. "poisson"
  std::string summary;  // one-line process description
  std::string params;   // grammar help, e.g. "rate (req/s, default 64)"
};

// One instantiated arrival process. Stateful (bursty phase machinery lives
// inside), so create one model per generated stream.
class ArrivalModel {
 public:
  virtual ~ArrivalModel() = default;
  virtual const ArrivalModelInfo& info() const = 0;
  // Inter-arrival gap in ticks (>= 0, finite) before the next arrival, given
  // the previous arrival's continuous tick time. Consumes draws from `rng`;
  // calling sequentially with the cumulative times reproduces the stream.
  virtual double NextGapTicks(double now_ticks, Rng& rng) = 0;
};

// String-keyed arrival-model catalog, mirroring SchedulerRegistry. Factories
// validate their spec's params (unknown keys, out-of-range rates) eagerly.
class ArrivalModelRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ArrivalModel>(const ArrivalSpec&,
                                                              const ArrivalCalibration&)>;

  static ArrivalModelRegistry& Instance();

  // Throws when the model name is already taken.
  void Register(ArrivalModelInfo info, Factory factory);

  // Unknown model names throw an Error listing the available set; factories
  // throw on invalid params. `calibration` is validated here.
  std::unique_ptr<ArrivalModel> Create(const ArrivalSpec& spec,
                                       const ArrivalCalibration& calibration) const;

  const ArrivalModelInfo* Find(const std::string& name) const;  // nullptr if unknown
  std::vector<ArrivalModelInfo> List() const;  // registration order
  std::string AvailableNames() const;          // "'poisson', 'bursty', 'diurnal'"

 private:
  struct Entry {
    ArrivalModelInfo info;
    Factory factory;
  };

  ArrivalModelRegistry() = default;
  void EnsureBuiltins() const;
  const Entry* FindEntryLocked(const std::string& name) const;
  std::string AvailableNamesLockedUnsafe() const;

  mutable std::once_flag builtins_once_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // registration order
};

// First `n` arrival ticks of `model` drawn from a fresh Rng(seed): the
// cumulative gap stream floored to integer session ticks (non-decreasing).
// RequestTrace::FromArrivalModel uses exactly this stream, so golden pins of
// this function also pin the traces built on it.
std::vector<std::int64_t> GenerateArrivalTicks(ArrivalModel& model, std::int64_t n,
                                               std::uint64_t seed);

}  // namespace mas::serve
