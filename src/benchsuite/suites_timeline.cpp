// Timeline-centric suites: the Fig. 1 dataflow comparison (FLAT's sequential
// stages vs MAS's semi-synchronous MAC/VEC overlap) and the Figs. 2-3
// proactive-overwrite study. Tilings resolve through the shared Planner —
// tuned ones via Plan() (warm under a plan cache), probe tilings via
// PlanFixed() — and schedules replay through Planner::Simulate().
#include <algorithm>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "benchsuite/suite.h"
#include "common/json_writer.h"
#include "common/table.h"
#include "schedulers/impls.h"
#include "trace/trace.h"

namespace mas::bench {

namespace {

// ----------------------------------------------------------------- fig1
// Renders the core-0 portion of a timeline as ASCII Gantt rows, one row per
// resource, bucketing time into `width` columns, with the Fig. 1 glyphs
// (Q = QK^T MatMul, S = softmax, P = PV MatMul, R = overwrite redo).
std::vector<std::pair<std::string, std::string>> GlyphGantt(const sim::SimResult& result,
                                                            int width) {
  const std::uint64_t span = result.cycles;
  std::map<std::string, std::string> rows;
  if (span == 0) return {};
  auto row_key = [](const sim::TimelineEntry& e) {
    return std::string(sim::ResourceKindName(e.resource)) +
           (e.resource == sim::ResourceKind::kDma ? "" : std::to_string(e.core));
  };
  auto glyph = [](const std::string& name) {
    if (name.find("C_ij") != std::string::npos || name.find("C_j") != std::string::npos)
      return 'Q';  // QK^T MatMul
    if (name.find("O_i +=") != std::string::npos) return 'P';  // PV MatMul
    if (name.find("softmax") != std::string::npos || name.find("update") != std::string::npos)
      return 'S';
    if (name.find("redo") != std::string::npos) return 'R';
    return '.';
  };
  for (const auto& e : result.timeline) {
    if (e.core != 0 && e.resource != sim::ResourceKind::kDma) continue;
    auto& row = rows[row_key(e)];
    if (row.empty()) row.assign(static_cast<std::size_t>(width), ' ');
    const auto c0 = static_cast<std::size_t>(e.start * width / span);
    const auto c1 = std::max<std::size_t>(c0 + 1, static_cast<std::size_t>(e.end * width / span));
    for (std::size_t c = c0; c < std::min<std::size_t>(c1, static_cast<std::size_t>(width)); ++c) {
      row[c] = glyph(e.name);
    }
  }
  return {rows.begin(), rows.end()};
}

// Paper Fig. 1: the FLAT vs MAS dataflow comparison, quantified as the
// MAC/VEC overlap share of the makespan.
class Fig1Suite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "fig1", "Fig. 1",
        "FLAT vs MAS dataflow timelines and MAC/VEC overlap (BERT-Small)"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const sim::HardwareConfig& hw = ctx.edge_hw();
    const AttentionShape shape = FindNetwork("BERT-Small").shape;

    out << "=== Fig. 1: Dataflow comparison, FLAT vs MAS-Attention ===\n";
    out << "Workload: " << shape.ToString() << "\n";
    out << "Glyphs: Q = Q_i K^T tile (MAC), S = softmax (VEC), P = P_i V tile (MAC),\n";
    out << "        . = DMA transfer, R = overwrite redo\n\n";

    json.KeyValue("hardware", hw.name);
    json.KeyValue("workload", shape.ToString());
    json.BeginArray("methods");
    for (const char* method : {"FLAT", "MAS-Attention"}) {
      const TuningPlan plan =
          ctx.planner().Plan(shape, method, hw, TilingPolicy::kPaperProtocol);
      const sim::SimResult r = ctx.planner().Simulate(plan, hw, /*record_timeline=*/true);
      const trace::TimelineSummary summary = trace::Summarize(r);
      const double overlap = static_cast<double>(summary.mac_vec_overlap_cycles) /
                             static_cast<double>(summary.makespan);
      out << method << "  (" << plan.tiling.ToString() << ", "
          << FormatFixed(r.cycles / 1e6, 3) << " Mcycles, MAC util "
          << FormatPercent(r.MacUtilization()) << ", MAC/VEC overlap "
          << FormatPercent(overlap) << " of makespan)\n";

      json.BeginObject();
      json.KeyValue("method", method);
      json.KeyValue("tiling", plan.tiling.ToString());
      json.KeyValue("cycles", static_cast<std::int64_t>(r.cycles));
      json.KeyValue("mac_utilization", r.MacUtilization());
      json.KeyValue("mac_vec_overlap_cycles",
                    static_cast<std::int64_t>(summary.mac_vec_overlap_cycles));
      json.KeyValue("mac_vec_overlap_fraction", overlap);
      json.BeginArray("gantt");
      for (const auto& [lane, row] : GlyphGantt(r, 100)) {
        out << "  " << lane << " |" << row << "|\n";
        json.Value(lane + "|" + row + "|");
      }
      json.EndArray();
      json.EndObject();
      out << "\n";
    }
    json.EndArray();

    out << "FLAT idles the MAC unit during softmax (gaps between Q and P spans);\n";
    out << "MAS overlaps softmax with the neighbouring iterations' MatMuls — the\n";
    out << "overlap percentage above is Fig. 1's visual argument, quantified.\n";
  }
};

// ---------------------------------------------------------------- fig23
// Paper Figs. 2-3: the proactive buffer overwrite under L1 pressure —
// which operand is evicted (V during PV, K during QK^T), the halt/reload
// bookkeeping, and the extra DRAM reads relative to FLAT.
class Fig23Suite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "fig23", "Figs. 2-3",
        "proactive buffer overwrite under L1 pressure (eviction + reload accounting)"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    out << "=== Figs. 2-3: Proactive buffer overwrite under L1 pressure ===\n\n";

    TextTable table({"L1 MB", "seq len", "tiling", "overwrites", "V evictions (Fig.2)",
                     "K evictions (Fig.3)", "reload KB", "extra reads vs FLAT", "MAS Mcyc",
                     "FLAT Mcyc"});

    struct Case {
      std::int64_t l1_mb;
      std::int64_t seq;
      std::int64_t embed;
      TilingConfig tiling;
    };
    // Pressure cases are chosen so K/V residency is established (staging +
    // one strip + K + V fits) but the *second* pipeline strip does not —
    // exactly the Figs. 2-3 situation where P_i must overwrite a reloadable
    // operand.
    const Case cases[] = {
        {5, 1024, 64, {1, 1, 256, 1024}},  // ample: no overwrite
        {2, 2048, 64, {1, 1, 192, 256}},   // tight: overwrite fires
        {1, 2048, 64, {1, 1, 96, 256}},    // tighter
        {1, 4096, 32, {1, 1, 48, 512}},    // long sequence (SD-UNet-like)
    };
    json.BeginArray("rows");
    for (const Case& c : cases) {
      sim::HardwareConfig hw = ctx.edge_hw();
      hw.cores.resize(1);  // single core owns the whole budget, like §5.6
      hw.l1_bytes = c.l1_mb * 1024 * 1024;
      const AttentionShape shape{"probe", 1, 1, c.seq, c.embed};

      TuningPlan mas_plan;
      try {
        mas_plan = ctx.planner().PlanFixed(shape, "MAS-Attention", hw, c.tiling);
      } catch (const Error&) {
        out << "skipping infeasible case L1=" << c.l1_mb << "MB seq=" << c.seq << "\n";
        continue;
      }
      const sim::SimResult r = ctx.planner().Simulate(mas_plan, hw);
      const auto profile = MasScheduler::ProfileOverwrites(shape, c.tiling, hw);
      const TuningPlan flat_plan =
          ctx.planner().Plan(shape, "FLAT", hw, TilingPolicy::kPaperProtocol);
      const sim::SimResult flat_r = ctx.planner().Simulate(flat_plan, hw);

      table.AddRow({std::to_string(c.l1_mb), std::to_string(c.seq), c.tiling.ToString(),
                    std::to_string(r.overwrite_events), std::to_string(profile.v_overwrites),
                    std::to_string(profile.k_overwrites),
                    FormatFixed(r.reload_bytes / 1024.0, 1),
                    FormatFixed((r.dram_read_bytes - flat_r.dram_read_bytes) / 1024.0, 1) +
                        " KB",
                    FormatFixed(r.cycles / 1e6, 3), FormatFixed(flat_r.cycles / 1e6, 3)});

      json.BeginObject();
      json.KeyValue("l1_mb", c.l1_mb);
      json.KeyValue("seq_len", c.seq);
      json.KeyValue("embed", c.embed);
      json.KeyValue("tiling", c.tiling.ToString());
      json.KeyValue("overwrite_events", r.overwrite_events);
      json.KeyValue("v_overwrites", profile.v_overwrites);
      json.KeyValue("k_overwrites", profile.k_overwrites);
      json.KeyValue("reload_bytes", r.reload_bytes);
      json.KeyValue("mas_cycles", static_cast<std::int64_t>(r.cycles));
      json.KeyValue("flat_cycles", static_cast<std::int64_t>(flat_r.cycles));
      json.KeyValue("flat_tiling", flat_plan.tiling.ToString());
      json.KeyValue("extra_read_bytes_vs_flat", r.dram_read_bytes - flat_r.dram_read_bytes);
      json.EndObject();
    }
    json.EndArray();

    out << table.ToString() << "\n";
    out << "P_i (softmax output) is never evicted — it exists only on-chip.\n";
    out << "K/V evictions are repaired by DRAM reloads + one redone MAC tile.\n";
  }
};

}  // namespace

void RegisterTimelineSuites() {
  SuiteRegistry& registry = SuiteRegistry::Instance();
  registry.Register(std::make_unique<Fig1Suite>());
  registry.Register(std::make_unique<Fig23Suite>());
}

}  // namespace mas::bench
