// Heterogeneous-placement Pareto suite: {edge, npu, gpu} homogeneous rungs
// plus prefill/decode split placements, all serving ONE Poisson open-loop
// trace on the edge reference clock (src/serve/ heterogeneous phase
// placement). Each rung is a ServeSession whose prefill and decode phases
// resolve against independently registry-resolved backends; cycles are
// converted at the session boundary onto the base (edge) clock so makespans
// and TTFT attainment are comparable across rungs.
//
// The interesting output is the cycles x energy frontier: the compute-bound
// prefill wants the wide, 5 nm GPU backend (cheap exp, many resident
// workgroups) while the DMA-bound decode is happiest on the edge device —
// so at least one split rung dominates a homogeneous rung on both axes.
//
// All plans resolve through the context's shared Planner keyed by the phase
// hardware's CacheKey, so a persisted plan cache replays the whole ladder
// with zero search evaluations and byte-identical
// BENCH_serve_hetero_pareto.json.
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "benchsuite/suite.h"
#include "common/json_writer.h"
#include "common/table.h"
#include "serve/arrival.h"
#include "serve/session.h"
#include "serve/slo.h"
#include "sim/backend.h"

namespace mas::bench {

namespace {

// One ladder rung: a (prefill backend, decode backend) placement. Empty
// specs inherit the base (edge) device, matching ServePlannerOptions.
struct Placement {
  const char* label;
  const char* prefill;  // backend spec or "" for the base hw
  const char* decode;
};

struct RungScore {
  std::uint64_t makespan_cycles = 0;
  double energy_uj = 0.0;
  double attainment = 0.0;
};

// A dominates B on the cycles x energy plane: no worse on both axes,
// strictly better on at least one.
bool Dominates(const RungScore& a, const RungScore& b) {
  if (a.makespan_cycles > b.makespan_cycles || a.energy_uj > b.energy_uj) return false;
  return a.makespan_cycles < b.makespan_cycles || a.energy_uj < b.energy_uj;
}

class ServeHeteroParetoSuite final : public BenchSuite {
 public:
  explicit ServeHeteroParetoSuite(SuiteInfo info) : info_(std::move(info)) {}

  const SuiteInfo& info() const override { return info_; }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const sim::HardwareConfig& hw = ctx.edge_hw();
    const double to_us = 1.0 / (hw.frequency_ghz * 1e3);

    // Homogeneous rungs first (the reference ladder), then the splits that
    // place each phase where its bottleneck resource lives.
    const std::vector<Placement> placements = {
        {"edge", "", ""},
        {"npu", "npu", "npu"},
        {"gpu", "gpu", "gpu"},
        {"npu/edge", "npu", ""},
        {"gpu/edge", "gpu", ""},
        {"gpu/npu", "gpu", "npu"},
    };

    // One trace shared by every rung — the ladder compares placements, not
    // workloads. Prompts are prefill-heavy so the phase split has a real
    // lever; the Poisson rate sits near single-device saturation so faster
    // prefill shows up in TTFT attainment, not just makespan.
    serve::ArrivalCalibration calibration;
    calibration.frequency_ghz = hw.frequency_ghz;
    const serve::ArrivalSpec arrival =
        serve::ArrivalSpec::Parse("poisson").With("rate", kRatePerS);
    const std::unique_ptr<serve::ArrivalModel> model =
        serve::ArrivalModelRegistry::Instance().Create(arrival, calibration);
    serve::SyntheticTraceSpec shape;
    shape.name = "hetero_pareto";
    shape.requests = kRequests;
    shape.seed = 0x4E7E60;
    shape.prompt_min = kPromptMin;
    shape.prompt_max = kPromptMax;
    shape.decode_min = kDecodeMin;
    shape.decode_max = kDecodeMax;
    const serve::RequestTrace trace = serve::RequestTrace::FromArrivalModel(*model, shape);

    serve::SloTargets slo;
    slo.ttft_us = kTtftTargetUs;

    out << "=== Heterogeneous placement Pareto ladder (backend x phase split) ===\n";
    out << "Base device (reference clock):\n" << hw.Describe() << "\n";
    out << "Model: " << Llama3Geometry().name << ", " << kRequests << " requests at "
        << kRatePerS << " req/s Poisson, prompts " << kPromptMin << "-" << kPromptMax
        << ", decode " << kDecodeMin << "-" << kDecodeMax << ", max batch " << kMaxBatch
        << ", SLO: TTFT <= " << kTtftTargetUs << " us\n\n";
    out << "placement  prefill_hw    decode_hw     Mcycles  energy_uJ  attainment  "
           "p99_ttft_us  frontier\n";

    json.KeyValue("schema_version", std::int64_t{1});
    json.KeyValue("base_hw", hw.name);
    json.KeyValue("ttft_target_us", kTtftTargetUs);
    json.KeyValue("rate_per_s", kRatePerS);
    json.KeyValue("requests", static_cast<std::int64_t>(kRequests));

    std::vector<RungScore> scores;
    std::vector<std::string> prefill_names;
    std::vector<std::string> decode_names;
    std::vector<serve::SloReport> reports;
    std::vector<serve::ServeResult> results;
    for (const Placement& placement : placements) {
      serve::ServePlannerOptions planner_options;
      planner_options.prefill_backend = placement.prefill;
      planner_options.decode_backend = placement.decode;
      serve::ServePlanner planner(ctx.planner(), hw, Llama3Geometry(), planner_options);
      serve::ServeSessionOptions session_options;
      session_options.max_batch = kMaxBatch;
      session_options.jobs = ctx.jobs();
      serve::ServeSession session(planner, session_options);
      const serve::ServeResult result = session.Run(trace);
      const serve::SloReport report = serve::EvaluateSlo(result, hw, slo);

      RungScore score;
      score.makespan_cycles = result.metrics.makespan_cycles;
      score.energy_uj = result.metrics.energy.total_pj() * 1e-6;
      score.attainment = report.TtftAttainment();
      scores.push_back(score);
      prefill_names.push_back(planner.prefill_hw().name);
      decode_names.push_back(planner.decode_hw().name);
      reports.push_back(report);
      results.push_back(result);
    }

    // Frontier membership over (makespan cycles, energy): a rung is on the
    // frontier iff no other rung dominates it.
    std::vector<bool> on_frontier(placements.size(), true);
    bool split_dominates_homogeneous = false;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      for (std::size_t j = 0; j < scores.size(); ++j) {
        if (i == j || !Dominates(scores[j], scores[i])) continue;
        on_frontier[i] = false;
        const bool i_homogeneous = std::string(placements[i].prefill) == placements[i].decode;
        const bool j_split = std::string(placements[j].prefill) != placements[j].decode;
        if (j_split && i_homogeneous) split_dominates_homogeneous = true;
      }
    }

    json.BeginArray("rungs");
    for (std::size_t i = 0; i < placements.size(); ++i) {
      const RungScore& score = scores[i];
      const double p99_us = results[i].metrics.p99_ttft_cycles * to_us;
      char line[160];
      std::snprintf(line, sizeof(line), "%-10s %-13s %-13s %-8s %-10s %-11s %-12s %s\n",
                    placements[i].label, prefill_names[i].c_str(), decode_names[i].c_str(),
                    FormatFixed(static_cast<double>(score.makespan_cycles) * 1e-6, 3).c_str(),
                    FormatFixed(score.energy_uj, 1).c_str(),
                    FormatFixed(score.attainment, 3).c_str(), FormatFixed(p99_us, 1).c_str(),
                    on_frontier[i] ? "yes" : "-");
      out << line;

      json.BeginObject();
      json.KeyValue("placement", placements[i].label);
      json.KeyValue("prefill_hw", prefill_names[i]);
      json.KeyValue("decode_hw", decode_names[i]);
      json.KeyValue("split", std::string(placements[i].prefill) != placements[i].decode);
      json.KeyValue("makespan_cycles", static_cast<std::int64_t>(score.makespan_cycles));
      json.KeyValue("makespan_ms", results[i].metrics.MakespanMs(hw.frequency_ghz));
      json.KeyValue("energy_uj", score.energy_uj);
      json.KeyValue("tokens_per_second",
                    results[i].metrics.TokensPerSecond(hw.frequency_ghz));
      json.KeyValue("ttft_ok", reports[i].ttft_ok);
      json.KeyValue("ttft_attainment", score.attainment);
      json.KeyValue("p99_ttft_us", p99_us);
      json.KeyValue("on_frontier", static_cast<bool>(on_frontier[i]));
      json.EndObject();
    }
    json.EndArray();
    json.KeyValue("split_dominates_homogeneous", split_dominates_homogeneous);

    out << "\nThe compute-bound prefill wants the wide 5 nm GPU backend while the\n"
           "DMA-bound decode is happiest on the base device: the split rungs land\n"
           "on the cycles x energy frontier "
        << (split_dominates_homogeneous ? "and dominate a homogeneous rung outright.\n\n"
                                        : "without dominating a homogeneous rung.\n\n");
  }

 private:
  static constexpr double kTtftTargetUs = 6000.0;
  static constexpr double kRatePerS = 48.0;
  static constexpr int kRequests = 12;
  static constexpr int kMaxBatch = 4;
  static constexpr std::int64_t kPromptMin = 192;
  static constexpr std::int64_t kPromptMax = 448;
  static constexpr std::int64_t kDecodeMin = 16;
  static constexpr std::int64_t kDecodeMax = 40;

  SuiteInfo info_;
};

}  // namespace

void RegisterHeteroSuites() {
  SuiteRegistry& registry = SuiteRegistry::Instance();
  registry.Register(std::make_unique<ServeHeteroParetoSuite>(
      SuiteInfo{"serve_hetero_pareto", "heterogeneous placement",
                "{edge, npu, gpu} x homogeneous-vs-split phase placements under Poisson "
                "load: the cross-backend cycles x energy x attainment frontier"}));
}

}  // namespace mas::bench
