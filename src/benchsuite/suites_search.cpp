// Search-quality suites: Fig. 7's GA/MCTS convergence traces and the §5.5
// search-improvement study. Unlike the artifact-table suites, the *search
// itself* is the artifact here, so these run search::RunSearch directly
// (registry strategies on a TilingProblem) instead of the plan store — a
// warm plan cache cannot and should not skip them. Their evaluation spend is
// reported through SuiteContext::AddSearchEvaluations().
#include <algorithm>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "benchsuite/suite.h"
#include "common/json_writer.h"
#include "common/table.h"
#include "schedulers/registry.h"
#include "search/strategy.h"

namespace mas::bench {

namespace {

// ----------------------------------------------------------------- fig7
// Paper Fig. 7: execution cycles versus search iterations for the GA and
// MCTS tiling searches across the methods (FuseMax excluded, as in the
// paper — it used manually selected tilings).
class Fig7Suite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "fig7", "Fig. 7",
        "GA and MCTS search convergence traces (cycles vs evaluations, BERT-Base)"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const sim::HardwareConfig& hw = ctx.edge_hw();
    // The paper converges within ~10K iterations; the default budget is
    // smaller so the whole suite sweep stays quick (--search-budget raises
    // it).
    const std::int64_t budget = ctx.search_budget() > 0 ? ctx.search_budget() : 1500;

    const AttentionShape shape = FindNetwork("BERT-Base & T5-Base").shape;
    out << "=== Fig. 7: Search convergence (cycles vs evaluations), " << shape.ToString()
        << ", budget " << budget << " evaluations ===\n\n";

    json.KeyValue("hardware", hw.name);
    json.KeyValue("workload", shape.ToString());
    json.KeyValue("budget", budget);

    const std::vector<std::string> methods = {"Layer-Wise", "Soft-Pipe", "FLAT", "TileFlow",
                                              "MAS-Attention"};
    TextTable table({"Method", "Algorithm", "evals", "first feasible Mcyc", "final Mcyc",
                     "improvement"});
    json.BeginArray("series");
    for (const std::string& method : methods) {
      const auto sched = SchedulerRegistry::Instance().Create(method);
      // The GA and MCTS strategies through the registry surface, sharing one
      // SearchSpec template (common seed; per-strategy budget knobs).
      for (const char* alg : {"GA", "MCTS"}) {
        search::TilingProblem problem(*sched, shape, hw, ctx.energy_model());
        search::SearchSpec spec;
        spec.seed = 7;
        spec.jobs = ctx.jobs();
        // The budget drives generations/iterations below; disable the
        // spec's common cap so large budgets are never truncated.
        spec.budget = std::numeric_limits<std::int64_t>::max();
        if (std::string(alg) == "GA") {
          spec.strategy = "ga";
          spec.population = 24;
          // At least one generation, so sub-population budgets still search.
          spec.generations = std::max<std::int64_t>(1, budget / spec.population);
        } else {
          spec.strategy = "mcts";
          spec.iterations = budget;
        }
        const search::SearchResult result = search::RunSearch(problem, spec);
        ctx.AddSearchEvaluations(result.evaluations);

        json.BeginObject();
        json.KeyValue("method", method);
        json.KeyValue("algorithm", alg);
        json.KeyValue("evaluations", result.evaluations);
        if (!result.found()) {
          json.KeyValue("found", false);
          json.EndObject();
          table.AddRow({method, alg, std::to_string(result.evaluations), "-", "-", "-"});
          continue;
        }
        const double first = result.trace.front().best_cycles;
        const double final_c = result.best_cycles;
        json.KeyValue("found", true);
        json.KeyValue("best_tiling", result.best.ToString());
        json.KeyValue("first_feasible_cycles", first);
        json.KeyValue("final_cycles", final_c);
        json.BeginArray("trace");
        for (const auto& pt : result.trace) {
          json.BeginObject();
          json.KeyValue("evaluation", pt.evaluation);
          json.KeyValue("best_cycles", pt.best_cycles);
          json.EndObject();
        }
        json.EndArray();
        json.EndObject();

        table.AddRow({method, alg, std::to_string(result.evaluations),
                      FormatFixed(first / 1e6, 3), FormatFixed(final_c / 1e6, 3),
                      FormatSpeedup(first / final_c)});
        // Print the trace series (evaluation, Mcycles) for plotting.
        out << method << " / " << alg << " trace:";
        for (const auto& pt : result.trace) {
          out << " (" << pt.evaluation << ", " << FormatFixed(pt.best_cycles / 1e6, 3) << ")";
        }
        out << "\n";
      }
    }
    json.EndArray();

    out << "\n" << table.ToString() << "\n";
    out << "Paper reference: every method converges within ~10K iterations; e.g.\n";
    out << "BERT-Base MAS improves 64.5x from the first sampled tiling (50.33M -> "
           "0.78M cycles).\n";
  }
};

// ---------------------------------------------------- search_improvement
// Paper §5.5: the cycle improvement delivered by the tiling search — first
// sampled feasible tiling vs the tuned result for MAS on every network.
class SearchImprovementSuite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "search_improvement", "§5.5",
        "tiling-search improvement, first feasible vs tuned MAS tiling per network"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const sim::HardwareConfig& hw = ctx.edge_hw();
    const std::int64_t budget = ctx.search_budget() > 0 ? ctx.search_budget() : 800;

    out << "=== §5.5: Impact of the tiling search (MAS-Attention, MCTS, budget " << budget
        << ") ===\n\n";
    TextTable table({"Network", "first feasible Mcyc", "tuned Mcyc", "improvement",
                     "tuned tiling"});
    json.KeyValue("hardware", hw.name);
    json.KeyValue("budget", budget);

    const auto mas = SchedulerRegistry::Instance().Create("MAS-Attention");
    search::SearchSpec spec;
    spec.strategy = "mcts";
    spec.iterations = budget;
    spec.seed = 11;
    spec.jobs = ctx.jobs();
    // The budget is the iteration count; keep the common cap out of the way.
    spec.budget = std::numeric_limits<std::int64_t>::max();
    json.BeginArray("rows");
    for (const auto& net : Table1Networks()) {
      search::TilingProblem problem(*mas, net.shape, hw, ctx.energy_model());
      const auto result = search::RunSearch(problem, spec);
      ctx.AddSearchEvaluations(result.evaluations);
      json.BeginObject();
      json.KeyValue("network", net.name);
      if (!result.found()) {
        json.KeyValue("found", false);
        json.EndObject();
        table.AddRow({net.name, "-", "-", "-", "-"});
        continue;
      }
      const double first = result.trace.front().best_cycles;
      json.KeyValue("found", true);
      json.KeyValue("first_feasible_cycles", first);
      json.KeyValue("tuned_cycles", result.best_cycles);
      json.KeyValue("improvement", first / result.best_cycles);
      json.KeyValue("tuned_tiling", result.best.ToString());
      json.EndObject();
      table.AddRow({net.name, FormatFixed(first / 1e6, 3),
                    FormatFixed(result.best_cycles / 1e6, 3),
                    FormatSpeedup(first / result.best_cycles), result.best.ToString()});
    }
    json.EndArray();
    out << table.ToString() << "\n";
    out << "Paper reference improvements: 64.5x (BERT-Base class), 16.1x (BERT-Large/\n";
    out << "Small classes), 49.7x/24.5x/24.6x (ViT-B,L,H/14), 66.2x/32.2x/32.8x\n";
    out << "(ViT-B,L,H/16), 32.2x (XLM). Magnitudes depend on how bad the first\n";
    out << "sampled tiling is; the qualitative claim is convergence to >10x better.\n";
  }
};

}  // namespace

void RegisterSearchSuites() {
  SuiteRegistry& registry = SuiteRegistry::Instance();
  registry.Register(std::make_unique<Fig7Suite>());
  registry.Register(std::make_unique<SearchImprovementSuite>());
}

}  // namespace mas::bench
