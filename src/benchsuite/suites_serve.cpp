// Serving-scenario suites: trace-driven request-level simulation (prefill +
// decode continuous batching) on the edge device. These are the first suites
// that exercise scheduler *selection* across phases — MAS for the
// compute-bound prefill, a fused dataflow for the DMA-bound decode — rather
// than one shape at a time.
//
// All plans resolve through the context's shared Planner with power-of-two
// context bucketing, so a persisted plan cache replays every serve suite
// with zero search evaluations and byte-identical BENCH_serve_*.json.
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "benchsuite/suite.h"
#include "common/json_writer.h"
#include "common/table.h"
#include "serve/arrival.h"
#include "serve/fault.h"
#include "serve/session.h"
#include "serve/slo.h"

namespace mas::bench {

namespace {

// Shared implementation: generate the preset trace, serve it, report.
class ServeSuite final : public BenchSuite {
 public:
  ServeSuite(SuiteInfo info, std::string preset, serve::ServePlannerOptions planner_options,
             int max_batch)
      : info_(std::move(info)),
        preset_(std::move(preset)),
        planner_options_(std::move(planner_options)),
        max_batch_(max_batch) {}

  const SuiteInfo& info() const override { return info_; }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const sim::HardwareConfig& hw = ctx.edge_hw();
    const serve::SyntheticTraceSpec spec = serve::FindTracePreset(preset_);
    const serve::RequestTrace trace = serve::GenerateTrace(spec);

    out << "=== Serving scenario '" << preset_ << "' (trace-driven, continuous batching) ===\n";
    out << hw.Describe() << "\n";
    out << "Model: " << Llama3Geometry().name << " (H=" << Llama3Geometry().heads
        << ", E=" << Llama3Geometry().embed << "), prefill " << planner_options_.prefill_method
        << " / decode " << planner_options_.decode_method << ", max batch " << max_batch_
        << ", context buckets pow2 >= " << planner_options_.min_context_bucket << "\n\n";

    serve::ServePlanner planner(ctx.planner(), hw, Llama3Geometry(), planner_options_);
    serve::ServeSessionOptions session_options;
    session_options.max_batch = max_batch_;
    session_options.jobs = ctx.jobs();
    serve::ServeSession session(planner, session_options);
    const serve::ServeResult result = session.Run(trace);

    serve::PrintReport(out, result, hw, planner.plan_count());
    out << "\n";

    serve::WriteConfigJson(json, hw, Llama3Geometry(), planner_options_, max_batch_,
                           planner.plan_count());
    result.WriteJson(json, hw);
  }

 private:
  SuiteInfo info_;
  std::string preset_;
  serve::ServePlannerOptions planner_options_;
  int max_batch_;
};

// SLO-attainment-vs-offered-load curves: one Poisson trace shape replayed
// across a geometric rate ladder, served twice — a baseline session decoding
// under MAS, and an adaptive session with the TTFT pressure policy (MAS ->
// FLAT relief) plus decode coalescing. The interesting output is where each
// curve bends: the baseline's attainment collapses once offered load crosses
// device saturation, the adaptive session holds the SLO one rung further.
class ServeSloSweepSuite final : public BenchSuite {
 public:
  explicit ServeSloSweepSuite(SuiteInfo info) : info_(std::move(info)) {}

  const SuiteInfo& info() const override { return info_; }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const sim::HardwareConfig& hw = ctx.edge_hw();
    const double to_us = 1.0 / (hw.frequency_ghz * 1e3);

    // Baseline decodes under MAS so the pressure policy has a relief switch
    // worth making; prefill keeps the MAS default.
    serve::ServePlannerOptions planner_options;
    planner_options.decode_method = "MAS-Attention";
    serve::ServePlanner planner(ctx.planner(), hw, Llama3Geometry(), planner_options);

    serve::LoadSweepOptions sweep;
    sweep.arrival = serve::ArrivalSpec::Parse("poisson");
    sweep.calibration.frequency_ghz = hw.frequency_ghz;
    sweep.shape.name = "slo_sweep";
    sweep.shape.requests = 12;
    sweep.shape.seed = 0x510E;
    sweep.shape.prompt_min = 192;
    sweep.shape.prompt_max = 448;
    sweep.shape.decode_min = 16;
    sweep.shape.decode_max = 40;
    sweep.rates_per_s = serve::GeometricRates(32.0, 2.0, 5);
    sweep.slo.ttft_us = kTtftTargetUs;
    sweep.slo.tpot_us = kTpotTargetUs;
    sweep.session.max_batch = 4;
    sweep.session.jobs = ctx.jobs();

    out << "=== Serving SLO sweep (Poisson open-loop load, " << sweep.rates_per_s.front()
        << "-" << sweep.rates_per_s.back() << " req/s) ===\n";
    out << hw.Describe() << "\n";
    out << "Model: " << Llama3Geometry().name << ", " << sweep.shape.requests
        << " requests/point, prompts " << sweep.shape.prompt_min << "-"
        << sweep.shape.prompt_max << ", decode " << sweep.shape.decode_min << "-"
        << sweep.shape.decode_max << ", SLO: TTFT <= " << kTtftTargetUs << " us, TPOT <= "
        << kTpotTargetUs << " us\n\n";

    // The config header by hand (WriteConfigJson emits plan_count, which is
    // only known after the sweep; it lands at the end of this document).
    json.KeyValue("hardware", hw.name);
    json.KeyValue("model", Llama3Geometry().name);
    json.KeyValue("prefill_method", planner_options.prefill_method);
    json.KeyValue("decode_method", planner_options.decode_method);
    json.KeyValue("min_context_bucket", planner_options.min_context_bucket);
    json.KeyValue("max_batch", sweep.session.max_batch);
    json.KeyValue("arrival", sweep.arrival.ToString());
    json.KeyValue("cycles_per_tick", sweep.calibration.cycles_per_tick);
    json.KeyValue("ticks_per_second", sweep.calibration.TicksPerSecond());
    json.KeyValue("requests_per_point", sweep.shape.requests);
    json.KeyValue("slo_ttft_us", sweep.slo.ttft_us);
    json.KeyValue("slo_tpot_us", sweep.slo.tpot_us);

    json.BeginArray("variants");
    for (const bool adaptive : {false, true}) {
      serve::LoadSweepOptions options = sweep;
      if (adaptive) {
        options.session.coalesce_decode = true;
        options.session.pressure.enabled = true;
        options.session.pressure.ttft_target_cycles = kPressureTtftUs * hw.frequency_ghz * 1e3;
        options.session.pressure.window = 4;
        options.session.pressure.relief_method = "FLAT";
      }
      const std::vector<serve::LoadSweepPoint> points = serve::RunLoadSweep(planner, options);

      out << (adaptive ? "adaptive (pressure MAS->FLAT + decode coalescing)" : "baseline (MAS decode)")
          << ":\n";
      TextTable table({"req/s", "p50 TTFT us", "p95 TTFT us", "p99 TTFT us", "p99 TPOT us",
                       "TTFT SLO", "joint SLO", "switch@", "coalesced"});
      json.BeginObject();
      json.KeyValue("name", adaptive ? "adaptive" : "baseline");
      json.KeyValue("coalesce_decode", adaptive);
      json.KeyValue("pressure", adaptive);
      json.BeginArray("points");
      for (const serve::LoadSweepPoint& point : points) {
        const serve::ServeMetrics& m = point.result.metrics;
        table.AddRow({FormatFixed(point.rate_per_s, 0),
                      FormatFixed(m.p50_ttft_cycles * to_us, 1),
                      FormatFixed(m.p95_ttft_cycles * to_us, 1),
                      FormatFixed(m.p99_ttft_cycles * to_us, 1),
                      FormatFixed(m.p99_tpot_cycles * to_us, 1),
                      FormatFixed(point.slo.TtftAttainment(), 3),
                      FormatFixed(point.slo.JointAttainment(), 3),
                      std::to_string(m.pressure_switch_tick),
                      std::to_string(m.coalesced_decode_sims)});
        json.BeginObject();
        json.KeyValue("rate_per_s", point.rate_per_s);
        json.KeyValue("requests", m.requests);
        json.KeyValue("decode_requests", m.decode_requests);
        json.KeyValue("steps", m.steps);
        json.KeyValue("decode_sims", m.decode_sims);
        json.KeyValue("coalesced_decode_sims", m.coalesced_decode_sims);
        json.KeyValue("pressure_switch_tick", m.pressure_switch_tick);
        json.KeyValue("makespan_ms", m.MakespanMs(hw.frequency_ghz));
        json.KeyValue("mean_ttft_us", m.mean_ttft_cycles * to_us);
        json.KeyValue("p50_ttft_us", m.p50_ttft_cycles * to_us);
        json.KeyValue("p95_ttft_us", m.p95_ttft_cycles * to_us);
        json.KeyValue("p99_ttft_us", m.p99_ttft_cycles * to_us);
        json.KeyValue("mean_tpot_us", m.mean_tpot_cycles * to_us);
        json.KeyValue("p50_tpot_us", m.p50_tpot_cycles * to_us);
        json.KeyValue("p95_tpot_us", m.p95_tpot_cycles * to_us);
        json.KeyValue("p99_tpot_us", m.p99_tpot_cycles * to_us);
        json.KeyValue("ttft_attainment", point.slo.TtftAttainment());
        json.KeyValue("tpot_attainment", point.slo.TpotAttainment());
        json.KeyValue("joint_attainment", point.slo.JointAttainment());
        json.EndObject();
      }
      json.EndArray();
      json.EndObject();
      out << table.ToString() << "\n";
    }
    json.EndArray();
    json.KeyValue("plan_count", planner.plan_count());
  }

 private:
  // Targets sit between the unloaded and saturated tails of the ladder so
  // the attainment curves actually bend inside the swept range. The pressure
  // policy triggers well below the SLO bound — relief has to fire before the
  // tail breaches the target, not after.
  static constexpr double kTtftTargetUs = 6000.0;
  static constexpr double kTpotTargetUs = 400.0;
  static constexpr double kPressureTtftUs = 2000.0;

  SuiteInfo info_;
};

// Fault ladder × baseline-vs-resilient at one overloaded operating point.
// Each rung injects a seeded fault process (none, stall, derate, crash) into
// the same Poisson-overloaded trace and serves it twice: a baseline session
// with no recovery policies, and a resilient session with deadlines,
// deadline-aware shedding, a bounded admission queue, and crash retries.
// The headline: under overload the resilient session sheds the requests
// that were already dead instead of burning prefill on them, so goodput and
// TTFT attainment RISE even though it serves fewer requests — and the
// wasted_prefill_cycles column prices exactly the work the faults destroyed.
class ServeResilienceSuite final : public BenchSuite {
 public:
  explicit ServeResilienceSuite(SuiteInfo info) : info_(std::move(info)) {}

  const SuiteInfo& info() const override { return info_; }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const sim::HardwareConfig& hw = ctx.edge_hw();
    const double to_us = 1.0 / (hw.frequency_ghz * 1e3);
    const double cycles_per_us = hw.frequency_ghz * 1e3;

    serve::ServePlannerOptions planner_options;
    serve::ServePlanner planner(ctx.planner(), hw, Llama3Geometry(), planner_options);

    // One overloaded operating point, shared by every rung: the same trace
    // (same arrival ticks, same lengths) so the only moving parts are the
    // injected fault and the recovery policies.
    serve::ArrivalCalibration calibration;
    calibration.frequency_ghz = hw.frequency_ghz;
    serve::SyntheticTraceSpec shape;
    shape.name = "resilience";
    shape.requests = 16;
    shape.seed = 0xFA01;
    shape.prompt_min = 192;
    shape.prompt_max = 448;
    shape.decode_min = 16;
    shape.decode_max = 48;
    const serve::ArrivalSpec arrival =
        serve::ArrivalSpec::Parse("poisson").With("rate", kOverloadRatePerS);
    const std::unique_ptr<serve::ArrivalModel> arrival_model =
        serve::ArrivalModelRegistry::Instance().Create(arrival, calibration);
    const serve::RequestTrace trace =
        serve::RequestTrace::FromArrivalModel(*arrival_model, shape);

    serve::SloTargets slo;
    slo.ttft_us = kTtftTargetUs;
    slo.tpot_us = kTpotTargetUs;

    const struct {
      const char* label;
      const char* spec;
    } rungs[] = {
        {"none", ""},
        {"stall", "stall:prob=0.25,cycles=1500000,limit=4"},
        {"derate", "derate:prob=0.2,factor=0.5,rounds=6,limit=3"},
        {"crash", "crash:prob=0.35,limit=5"},
    };

    out << "=== Serving resilience (fault ladder x baseline-vs-resilient, Poisson "
        << kOverloadRatePerS << " req/s overload) ===\n";
    out << hw.Describe() << "\n";
    out << "Model: " << Llama3Geometry().name << ", " << shape.requests
        << " requests/rung, prompts " << shape.prompt_min << "-" << shape.prompt_max
        << ", decode " << shape.decode_min << "-" << shape.decode_max
        << ", SLO: TTFT <= " << kTtftTargetUs << " us, TPOT <= " << kTpotTargetUs
        << " us\nresilient policy: TTFT deadline " << kTtftTargetUs
        << " us + shed-late, total deadline " << kTotalDeadlineUs
        << " us, queue cap " << kQueueCap << ", " << kMaxRetries
        << " crash retries\n\n";

    json.KeyValue("hardware", hw.name);
    json.KeyValue("model", Llama3Geometry().name);
    json.KeyValue("prefill_method", planner_options.prefill_method);
    json.KeyValue("decode_method", planner_options.decode_method);
    json.KeyValue("min_context_bucket", planner_options.min_context_bucket);
    json.KeyValue("max_batch", kMaxBatch);
    json.KeyValue("arrival", arrival.ToString());
    json.KeyValue("requests_per_rung", shape.requests);
    json.KeyValue("slo_ttft_us", slo.ttft_us);
    json.KeyValue("slo_tpot_us", slo.tpot_us);
    json.KeyValue("deadline_ttft_us", kTtftTargetUs);
    json.KeyValue("deadline_total_us", kTotalDeadlineUs);
    json.KeyValue("admission_queue_cap", kQueueCap);
    json.KeyValue("max_retries", kMaxRetries);

    json.BeginArray("faults");
    for (const auto& rung : rungs) {
      json.BeginObject();
      json.KeyValue("fault", rung.spec);
      json.BeginArray("variants");
      out << "fault '" << rung.label << "'"
          << (rung.spec[0] != '\0' ? std::string(" (") + rung.spec + ")" : std::string())
          << ":\n";
      TextTable table({"variant", "done", "shed", "t/o", "crash", "retries",
                       "wasted Mcyc", "p99 TTFT us", "TTFT SLO", "joint SLO",
                       "goodput tok/s"});
      for (const bool resilient : {false, true}) {
        serve::ServeSessionOptions session_options;
        session_options.max_batch = kMaxBatch;
        session_options.jobs = ctx.jobs();
        if (rung.spec[0] != '\0') {
          session_options.fault = serve::FaultSpec::Parse(rung.spec);
        }
        if (resilient) {
          serve::ResiliencePolicy& res = session_options.resilience;
          res.ttft_deadline_cycles =
              static_cast<std::uint64_t>(kTtftTargetUs * cycles_per_us);
          res.total_deadline_cycles =
              static_cast<std::uint64_t>(kTotalDeadlineUs * cycles_per_us);
          res.max_retries = kMaxRetries;
          res.retry_backoff_ticks = 1;
          res.admission_queue_cap = kQueueCap;
          res.shed_late = true;
        }
        serve::ServeSession session(planner, session_options);
        const serve::ServeResult result = session.Run(trace);
        const serve::SloReport report = serve::EvaluateSlo(result, hw, slo);
        const serve::ServeMetrics& m = result.metrics;

        table.AddRow({resilient ? "resilient" : "baseline", std::to_string(m.completed),
                      std::to_string(m.shed), std::to_string(m.timed_out),
                      std::to_string(m.crashed), std::to_string(m.retries),
                      FormatFixed(static_cast<double>(m.wasted_prefill_cycles) / 1e6, 1),
                      FormatFixed(m.p99_ttft_cycles * to_us, 1),
                      FormatFixed(report.TtftAttainment(), 3),
                      FormatFixed(report.JointAttainment(), 3),
                      FormatFixed(static_cast<double>(report.goodput_tokens) /
                                      (static_cast<double>(m.makespan_cycles) /
                                       (hw.frequency_ghz * 1e9)),
                                  0)});

        json.BeginObject();
        json.KeyValue("name", resilient ? "resilient" : "baseline");
        json.KeyValue("requests", m.requests);
        json.KeyValue("completed", m.completed);
        json.KeyValue("shed", m.shed);
        json.KeyValue("timed_out", m.timed_out);
        json.KeyValue("crashed", m.crashed);
        json.KeyValue("retries", m.retries);
        json.KeyValue("crash_events", m.crash_events);
        json.KeyValue("stall_events", m.stall_events);
        json.KeyValue("stalled_cycles", m.stalled_cycles);
        json.KeyValue("derated_rounds", m.derated_rounds);
        json.KeyValue("wasted_prefill_cycles", m.wasted_prefill_cycles);
        json.KeyValue("makespan_ms", m.MakespanMs(hw.frequency_ghz));
        json.KeyValue("p50_ttft_us", m.p50_ttft_cycles * to_us);
        json.KeyValue("p99_ttft_us", m.p99_ttft_cycles * to_us);
        json.KeyValue("p99_tpot_us", m.p99_tpot_cycles * to_us);
        json.KeyValue("tokens_per_second", m.TokensPerSecond(hw.frequency_ghz));
        json.KeyValue("ttft_attainment", report.TtftAttainment());
        json.KeyValue("tpot_attainment", report.TpotAttainment());
        json.KeyValue("joint_attainment", report.JointAttainment());
        json.KeyValue("goodput_tokens", report.goodput_tokens);
        json.EndObject();
      }
      json.EndArray();
      json.EndObject();
      out << table.ToString() << "\n";
    }
    json.EndArray();
    json.KeyValue("plan_count", planner.plan_count());
  }

 private:
  // The rate sits past the device's saturation knee (the serve_slo_sweep
  // curves collapse between 128 and 512 req/s), so the baseline queues
  // unboundedly and the policies have dead weight to shed. Deadline == the
  // scored TTFT target: shedding aligns exactly with what attainment
  // measures.
  static constexpr double kOverloadRatePerS = 384.0;
  static constexpr double kTtftTargetUs = 6000.0;
  // Looser than the sweep's 400 us: at this operating point batch-4 decode
  // prices every token above 1 ms, so a 400 us TPOT bound would zero the
  // joint attainment (and goodput) for every variant and hide the TTFT story.
  static constexpr double kTpotTargetUs = 1250.0;
  static constexpr double kTotalDeadlineUs = 40000.0;
  static constexpr int kMaxBatch = 4;
  static constexpr std::int64_t kQueueCap = 8;
  static constexpr std::int64_t kMaxRetries = 2;

  SuiteInfo info_;
};

}  // namespace

void RegisterServeSuites() {
  SuiteRegistry& registry = SuiteRegistry::Instance();
  serve::ServePlannerOptions defaults;
  registry.Register(std::make_unique<ServeSuite>(
      SuiteInfo{"serve_llm_chat", "serving",
                "interactive chat trace: prefill/decode continuous batching, TTFT/TPOT"},
      "chat", defaults, /*max_batch=*/4));
  registry.Register(std::make_unique<ServeSuite>(
      SuiteInfo{"serve_decode_heavy", "serving",
                "long-context decode-dominated trace: DMA-bound serving regime"},
      "decode_heavy", defaults, /*max_batch=*/2));
  registry.Register(std::make_unique<ServeSuite>(
      SuiteInfo{"serve_mixed_sd", "serving",
                "mixed autoregressive + speculative-decoding trace (N=1 and N=4 steps)"},
      "mixed_sd", defaults, /*max_batch=*/4));
  registry.Register(std::make_unique<ServeSloSweepSuite>(
      SuiteInfo{"serve_slo_sweep", "serving",
                "SLO attainment vs offered load: Poisson rate ladder, baseline vs "
                "adaptive (TTFT pressure MAS->FLAT + decode coalescing)"}));
  registry.Register(std::make_unique<ServeResilienceSuite>(
      SuiteInfo{"serve_resilience", "serving",
                "fault ladder (stall/derate/crash) x baseline-vs-resilient: deadlines, "
                "load shedding, and crash retries under Poisson overload"}));
}

}  // namespace mas::bench
