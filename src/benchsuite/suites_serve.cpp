// Serving-scenario suites: trace-driven request-level simulation (prefill +
// decode continuous batching) on the edge device. These are the first suites
// that exercise scheduler *selection* across phases — MAS for the
// compute-bound prefill, a fused dataflow for the DMA-bound decode — rather
// than one shape at a time.
//
// All plans resolve through the context's shared Planner with power-of-two
// context bucketing, so a persisted plan cache replays every serve suite
// with zero search evaluations and byte-identical BENCH_serve_*.json.
#include <ostream>
#include <string>
#include <vector>

#include "benchsuite/suite.h"
#include "common/json_writer.h"
#include "common/table.h"
#include "serve/session.h"
#include "serve/slo.h"

namespace mas::bench {

namespace {

// Shared implementation: generate the preset trace, serve it, report.
class ServeSuite final : public BenchSuite {
 public:
  ServeSuite(SuiteInfo info, std::string preset, serve::ServePlannerOptions planner_options,
             int max_batch)
      : info_(std::move(info)),
        preset_(std::move(preset)),
        planner_options_(std::move(planner_options)),
        max_batch_(max_batch) {}

  const SuiteInfo& info() const override { return info_; }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const sim::HardwareConfig& hw = ctx.edge_hw();
    const serve::SyntheticTraceSpec spec = serve::FindTracePreset(preset_);
    const serve::RequestTrace trace = serve::GenerateTrace(spec);

    out << "=== Serving scenario '" << preset_ << "' (trace-driven, continuous batching) ===\n";
    out << hw.Describe() << "\n";
    out << "Model: " << Llama3Geometry().name << " (H=" << Llama3Geometry().heads
        << ", E=" << Llama3Geometry().embed << "), prefill " << planner_options_.prefill_method
        << " / decode " << planner_options_.decode_method << ", max batch " << max_batch_
        << ", context buckets pow2 >= " << planner_options_.min_context_bucket << "\n\n";

    serve::ServePlanner planner(ctx.planner(), hw, Llama3Geometry(), planner_options_);
    serve::ServeSessionOptions session_options;
    session_options.max_batch = max_batch_;
    session_options.jobs = ctx.jobs();
    serve::ServeSession session(planner, session_options);
    const serve::ServeResult result = session.Run(trace);

    serve::PrintReport(out, result, hw, planner.plan_count());
    out << "\n";

    serve::WriteConfigJson(json, hw, Llama3Geometry(), planner_options_, max_batch_,
                           planner.plan_count());
    result.WriteJson(json, hw);
  }

 private:
  SuiteInfo info_;
  std::string preset_;
  serve::ServePlannerOptions planner_options_;
  int max_batch_;
};

// SLO-attainment-vs-offered-load curves: one Poisson trace shape replayed
// across a geometric rate ladder, served twice — a baseline session decoding
// under MAS, and an adaptive session with the TTFT pressure policy (MAS ->
// FLAT relief) plus decode coalescing. The interesting output is where each
// curve bends: the baseline's attainment collapses once offered load crosses
// device saturation, the adaptive session holds the SLO one rung further.
class ServeSloSweepSuite final : public BenchSuite {
 public:
  explicit ServeSloSweepSuite(SuiteInfo info) : info_(std::move(info)) {}

  const SuiteInfo& info() const override { return info_; }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const sim::HardwareConfig& hw = ctx.edge_hw();
    const double to_us = 1.0 / (hw.frequency_ghz * 1e3);

    // Baseline decodes under MAS so the pressure policy has a relief switch
    // worth making; prefill keeps the MAS default.
    serve::ServePlannerOptions planner_options;
    planner_options.decode_method = "MAS-Attention";
    serve::ServePlanner planner(ctx.planner(), hw, Llama3Geometry(), planner_options);

    serve::LoadSweepOptions sweep;
    sweep.arrival = serve::ArrivalSpec::Parse("poisson");
    sweep.calibration.frequency_ghz = hw.frequency_ghz;
    sweep.shape.name = "slo_sweep";
    sweep.shape.requests = 12;
    sweep.shape.seed = 0x510E;
    sweep.shape.prompt_min = 192;
    sweep.shape.prompt_max = 448;
    sweep.shape.decode_min = 16;
    sweep.shape.decode_max = 40;
    sweep.rates_per_s = serve::GeometricRates(32.0, 2.0, 5);
    sweep.slo.ttft_us = kTtftTargetUs;
    sweep.slo.tpot_us = kTpotTargetUs;
    sweep.session.max_batch = 4;
    sweep.session.jobs = ctx.jobs();

    out << "=== Serving SLO sweep (Poisson open-loop load, " << sweep.rates_per_s.front()
        << "-" << sweep.rates_per_s.back() << " req/s) ===\n";
    out << hw.Describe() << "\n";
    out << "Model: " << Llama3Geometry().name << ", " << sweep.shape.requests
        << " requests/point, prompts " << sweep.shape.prompt_min << "-"
        << sweep.shape.prompt_max << ", decode " << sweep.shape.decode_min << "-"
        << sweep.shape.decode_max << ", SLO: TTFT <= " << kTtftTargetUs << " us, TPOT <= "
        << kTpotTargetUs << " us\n\n";

    // The config header by hand (WriteConfigJson emits plan_count, which is
    // only known after the sweep; it lands at the end of this document).
    json.KeyValue("hardware", hw.name);
    json.KeyValue("model", Llama3Geometry().name);
    json.KeyValue("prefill_method", planner_options.prefill_method);
    json.KeyValue("decode_method", planner_options.decode_method);
    json.KeyValue("min_context_bucket", planner_options.min_context_bucket);
    json.KeyValue("max_batch", sweep.session.max_batch);
    json.KeyValue("arrival", sweep.arrival.ToString());
    json.KeyValue("cycles_per_tick", sweep.calibration.cycles_per_tick);
    json.KeyValue("ticks_per_second", sweep.calibration.TicksPerSecond());
    json.KeyValue("requests_per_point", sweep.shape.requests);
    json.KeyValue("slo_ttft_us", sweep.slo.ttft_us);
    json.KeyValue("slo_tpot_us", sweep.slo.tpot_us);

    json.BeginArray("variants");
    for (const bool adaptive : {false, true}) {
      serve::LoadSweepOptions options = sweep;
      if (adaptive) {
        options.session.coalesce_decode = true;
        options.session.pressure.enabled = true;
        options.session.pressure.ttft_target_cycles = kPressureTtftUs * hw.frequency_ghz * 1e3;
        options.session.pressure.window = 4;
        options.session.pressure.relief_method = "FLAT";
      }
      const std::vector<serve::LoadSweepPoint> points = serve::RunLoadSweep(planner, options);

      out << (adaptive ? "adaptive (pressure MAS->FLAT + decode coalescing)" : "baseline (MAS decode)")
          << ":\n";
      TextTable table({"req/s", "p50 TTFT us", "p95 TTFT us", "p99 TTFT us", "p99 TPOT us",
                       "TTFT SLO", "joint SLO", "switch@", "coalesced"});
      json.BeginObject();
      json.KeyValue("name", adaptive ? "adaptive" : "baseline");
      json.KeyValue("coalesce_decode", adaptive);
      json.KeyValue("pressure", adaptive);
      json.BeginArray("points");
      for (const serve::LoadSweepPoint& point : points) {
        const serve::ServeMetrics& m = point.result.metrics;
        table.AddRow({FormatFixed(point.rate_per_s, 0),
                      FormatFixed(m.p50_ttft_cycles * to_us, 1),
                      FormatFixed(m.p95_ttft_cycles * to_us, 1),
                      FormatFixed(m.p99_ttft_cycles * to_us, 1),
                      FormatFixed(m.p99_tpot_cycles * to_us, 1),
                      FormatFixed(point.slo.TtftAttainment(), 3),
                      FormatFixed(point.slo.JointAttainment(), 3),
                      std::to_string(m.pressure_switch_tick),
                      std::to_string(m.coalesced_decode_sims)});
        json.BeginObject();
        json.KeyValue("rate_per_s", point.rate_per_s);
        json.KeyValue("requests", m.requests);
        json.KeyValue("decode_requests", m.decode_requests);
        json.KeyValue("steps", m.steps);
        json.KeyValue("decode_sims", m.decode_sims);
        json.KeyValue("coalesced_decode_sims", m.coalesced_decode_sims);
        json.KeyValue("pressure_switch_tick", m.pressure_switch_tick);
        json.KeyValue("makespan_ms", m.MakespanMs(hw.frequency_ghz));
        json.KeyValue("mean_ttft_us", m.mean_ttft_cycles * to_us);
        json.KeyValue("p50_ttft_us", m.p50_ttft_cycles * to_us);
        json.KeyValue("p95_ttft_us", m.p95_ttft_cycles * to_us);
        json.KeyValue("p99_ttft_us", m.p99_ttft_cycles * to_us);
        json.KeyValue("mean_tpot_us", m.mean_tpot_cycles * to_us);
        json.KeyValue("p50_tpot_us", m.p50_tpot_cycles * to_us);
        json.KeyValue("p95_tpot_us", m.p95_tpot_cycles * to_us);
        json.KeyValue("p99_tpot_us", m.p99_tpot_cycles * to_us);
        json.KeyValue("ttft_attainment", point.slo.TtftAttainment());
        json.KeyValue("tpot_attainment", point.slo.TpotAttainment());
        json.KeyValue("joint_attainment", point.slo.JointAttainment());
        json.EndObject();
      }
      json.EndArray();
      json.EndObject();
      out << table.ToString() << "\n";
    }
    json.EndArray();
    json.KeyValue("plan_count", planner.plan_count());
  }

 private:
  // Targets sit between the unloaded and saturated tails of the ladder so
  // the attainment curves actually bend inside the swept range. The pressure
  // policy triggers well below the SLO bound — relief has to fire before the
  // tail breaches the target, not after.
  static constexpr double kTtftTargetUs = 6000.0;
  static constexpr double kTpotTargetUs = 400.0;
  static constexpr double kPressureTtftUs = 2000.0;

  SuiteInfo info_;
};

}  // namespace

void RegisterServeSuites() {
  SuiteRegistry& registry = SuiteRegistry::Instance();
  serve::ServePlannerOptions defaults;
  registry.Register(std::make_unique<ServeSuite>(
      SuiteInfo{"serve_llm_chat", "serving",
                "interactive chat trace: prefill/decode continuous batching, TTFT/TPOT"},
      "chat", defaults, /*max_batch=*/4));
  registry.Register(std::make_unique<ServeSuite>(
      SuiteInfo{"serve_decode_heavy", "serving",
                "long-context decode-dominated trace: DMA-bound serving regime"},
      "decode_heavy", defaults, /*max_batch=*/2));
  registry.Register(std::make_unique<ServeSuite>(
      SuiteInfo{"serve_mixed_sd", "serving",
                "mixed autoregressive + speculative-decoding trace (N=1 and N=4 steps)"},
      "mixed_sd", defaults, /*max_batch=*/4));
  registry.Register(std::make_unique<ServeSloSweepSuite>(
      SuiteInfo{"serve_slo_sweep", "serving",
                "SLO attainment vs offered load: Poisson rate ladder, baseline vs "
                "adaptive (TTFT pressure MAS->FLAT + decode coalescing)"}));
}

}  // namespace mas::bench
