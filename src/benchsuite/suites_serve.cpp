// Serving-scenario suites: trace-driven request-level simulation (prefill +
// decode continuous batching) on the edge device. These are the first suites
// that exercise scheduler *selection* across phases — MAS for the
// compute-bound prefill, a fused dataflow for the DMA-bound decode — rather
// than one shape at a time.
//
// All plans resolve through the context's shared Planner with power-of-two
// context bucketing, so a persisted plan cache replays every serve suite
// with zero search evaluations and byte-identical BENCH_serve_*.json.
#include <ostream>
#include <string>

#include "benchsuite/suite.h"
#include "serve/session.h"

namespace mas::bench {

namespace {

// Shared implementation: generate the preset trace, serve it, report.
class ServeSuite final : public BenchSuite {
 public:
  ServeSuite(SuiteInfo info, std::string preset, serve::ServePlannerOptions planner_options,
             int max_batch)
      : info_(std::move(info)),
        preset_(std::move(preset)),
        planner_options_(std::move(planner_options)),
        max_batch_(max_batch) {}

  const SuiteInfo& info() const override { return info_; }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const sim::HardwareConfig& hw = ctx.edge_hw();
    const serve::SyntheticTraceSpec spec = serve::FindTracePreset(preset_);
    const serve::RequestTrace trace = serve::GenerateTrace(spec);

    out << "=== Serving scenario '" << preset_ << "' (trace-driven, continuous batching) ===\n";
    out << hw.Describe() << "\n";
    out << "Model: " << Llama3Geometry().name << " (H=" << Llama3Geometry().heads
        << ", E=" << Llama3Geometry().embed << "), prefill " << planner_options_.prefill_method
        << " / decode " << planner_options_.decode_method << ", max batch " << max_batch_
        << ", context buckets pow2 >= " << planner_options_.min_context_bucket << "\n\n";

    serve::ServePlanner planner(ctx.planner(), hw, Llama3Geometry(), planner_options_);
    serve::ServeSessionOptions session_options;
    session_options.max_batch = max_batch_;
    session_options.jobs = ctx.jobs();
    serve::ServeSession session(planner, session_options);
    const serve::ServeResult result = session.Run(trace);

    serve::PrintReport(out, result, hw, planner.plan_count());
    out << "\n";

    serve::WriteConfigJson(json, hw, Llama3Geometry(), planner_options_, max_batch_,
                           planner.plan_count());
    result.WriteJson(json, hw);
  }

 private:
  SuiteInfo info_;
  std::string preset_;
  serve::ServePlannerOptions planner_options_;
  int max_batch_;
};

}  // namespace

void RegisterServeSuites() {
  SuiteRegistry& registry = SuiteRegistry::Instance();
  serve::ServePlannerOptions defaults;
  registry.Register(std::make_unique<ServeSuite>(
      SuiteInfo{"serve_llm_chat", "serving",
                "interactive chat trace: prefill/decode continuous batching, TTFT/TPOT"},
      "chat", defaults, /*max_batch=*/4));
  registry.Register(std::make_unique<ServeSuite>(
      SuiteInfo{"serve_decode_heavy", "serving",
                "long-context decode-dominated trace: DMA-bound serving regime"},
      "decode_heavy", defaults, /*max_batch=*/2));
  registry.Register(std::make_unique<ServeSuite>(
      SuiteInfo{"serve_mixed_sd", "serving",
                "mixed autoregressive + speculative-decoding trace (N=1 and N=4 steps)"},
      "mixed_sd", defaults, /*max_batch=*/4));
}

}  // namespace mas::bench
