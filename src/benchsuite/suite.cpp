#include "benchsuite/suite.h"

#include <algorithm>
#include <thread>

#include "common/json_writer.h"
#include "common/status.h"

namespace mas::bench {

namespace {

int ResolveJobs(int jobs) {
  if (jobs > 0) return jobs;
  // mas-lint: allow(concurrency-leak) jobs resolution for --jobs=0; results stay grid-ordered
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

SuiteContext::SuiteContext(int jobs, std::ostream& out, std::int64_t search_budget)
    : edge_hw_(sim::EdgeSimConfig()),
      npu_hw_(sim::DavinciNpuConfig()),
      jobs_(ResolveJobs(jobs)),
      search_budget_(search_budget),
      out_(out),
      runner_(runner::SweepOptions{/*jobs=*/ResolveJobs(jobs), /*cache=*/true}) {}

SuiteRegistry& SuiteRegistry::Instance() {
  static SuiteRegistry* registry = new SuiteRegistry();  // never destroyed
  return *registry;
}

void SuiteRegistry::EnsureBuiltins() const {
  std::call_once(builtins_once_, [] {
    // Each hook lives in its suites' translation unit; calling them here
    // (rather than relying on static initializers) guarantees the archive
    // members are linked and the catalog is complete before the first
    // lookup. Registration order is the --list / --all order: the paper's
    // tables, figures, ablations, then the extension studies.
    RegisterComparisonSuites();
    RegisterTimelineSuites();
    RegisterSearchSuites();
    RegisterAblationSuites();
    RegisterExtensionSuites();
    RegisterServeSuites();
    RegisterFleetSuites();
    RegisterHeteroSuites();
  });
}

void SuiteRegistry::Register(std::unique_ptr<BenchSuite> suite) {
  MAS_CHECK(suite != nullptr) << "null suite registration";
  const SuiteInfo& info = suite->info();
  MAS_CHECK(!info.name.empty()) << "suite registration needs a name";
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& existing : suites_) {
    MAS_CHECK(existing->info().name != info.name)
        << "suite name '" << info.name << "' registered twice";
  }
  suites_.push_back(std::move(suite));
}

const BenchSuite* SuiteRegistry::FindSuiteLocked(const std::string& name) const {
  for (const auto& suite : suites_) {
    if (suite->info().name == name) return suite.get();
  }
  return nullptr;
}

const BenchSuite& SuiteRegistry::Get(const std::string& name) const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  const BenchSuite* suite = FindSuiteLocked(name);
  if (suite == nullptr) {
    MAS_FAIL() << "unknown suite '" << name << "'; options: all, " << AvailableNamesLocked();
  }
  return *suite;
}

const SuiteInfo* SuiteRegistry::Find(const std::string& name) const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  const BenchSuite* suite = FindSuiteLocked(name);
  return suite == nullptr ? nullptr : &suite->info();
}

std::vector<SuiteInfo> SuiteRegistry::List() const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SuiteInfo> out;
  for (const auto& suite : suites_) out.push_back(suite->info());
  return out;
}

std::string SuiteRegistry::AvailableNamesLocked() const {
  std::string names;
  for (const auto& suite : suites_) {
    if (!names.empty()) names += ", ";
    names += "'" + suite->info().name + "'";
  }
  return names;
}

std::string SuiteRegistry::AvailableNames() const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  return AvailableNamesLocked();
}

std::vector<const BenchSuite*> SuiteRegistry::Resolve(const std::string& list) const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const BenchSuite*> selected;
  if (list == "all") {
    for (const auto& suite : suites_) selected.push_back(suite.get());
    return selected;
  }
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string name =
        list.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const BenchSuite* suite = FindSuiteLocked(name);
    if (suite == nullptr) {
      MAS_FAIL() << "unknown suite '" << name << "'; options: all, " << AvailableNamesLocked();
    }
    selected.push_back(suite);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  MAS_CHECK(!selected.empty()) << "empty suite selection";
  return selected;
}

std::vector<report::NetworkComparison> RunTable1Comparison(SuiteContext& ctx,
                                                           const sim::HardwareConfig& hw) {
  return report::RunComparison(Table1Networks(), hw, ctx.runner());
}

void WriteComparisonJson(JsonWriter& json, const std::vector<report::NetworkComparison>& cmps) {
  json.BeginArray("rows");
  for (const auto& cmp : cmps) {
    for (const auto& run : cmp.runs) {
      const sim::SimResult& r = run.sim;
      json.BeginObject();
      json.KeyValue("network", cmp.network.name);
      json.KeyValue("method", std::string(MethodName(run.method)));
      json.KeyValue("tiling", run.tiling.ToString());
      json.KeyValue("cycles", static_cast<std::int64_t>(r.cycles));
      json.KeyValue("dram_pj", r.energy.dram_pj);
      json.KeyValue("l1_pj", r.energy.l1_pj);
      json.KeyValue("l0_pj", r.energy.l0_pj);
      json.KeyValue("mac_pe_pj", r.energy.mac_pe_pj);
      json.KeyValue("vec_pe_pj", r.energy.vec_pe_pj);
      json.KeyValue("total_pj", r.energy.total_pj());
      json.KeyValue("dram_read_bytes", r.dram_read_bytes);
      json.KeyValue("dram_write_bytes", r.dram_write_bytes);
      json.KeyValue("mac_utilization", r.MacUtilization());
      json.KeyValue("overwrite_events", r.overwrite_events);
      json.KeyValue("reload_bytes", r.reload_bytes);
      json.EndObject();
    }
  }
  json.EndArray();
}

void WriteBaselineGeomeans(JsonWriter& json, const std::string& key,
                           const std::vector<report::NetworkComparison>& cmps,
                           double (*metric)(const std::vector<report::NetworkComparison>&,
                                            Method)) {
  json.BeginObject(key);
  for (Method m : AllMethods()) {
    if (m == Method::kMas) continue;
    json.KeyValue(std::string(MethodName(m)), metric(cmps, m));
  }
  json.EndObject();
}

}  // namespace mas::bench
