// The Table-1-grid comparison suites: every artifact here reduces to the
// (12 networks x 6 methods) sweep with offline-tuned tilings, rendered
// through a different report::Build*Table lens. They all ride the shared
// SuiteContext runner, so the grid is evaluated once per hardware preset per
// mas_bench invocation no matter how many of these suites run — and not at
// all when the plan cache is warm and the runner cache has the jobs.
#include <algorithm>
#include <ostream>

#include "benchsuite/suite.h"
#include "common/json_writer.h"
#include "common/math_util.h"
#include "common/table.h"

namespace mas::bench {

namespace {

// --------------------------------------------------------------- table2
// Paper Table 2: execution cycles and MAS speedups across the Table-1
// networks on the simulated edge device (Fig. 4 architecture).
class Table2Suite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "table2", "Table 2",
        "cycles and MAS speedups across the 12 Table-1 networks (edge device)"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    out << "=== Table 2: Cycles and Speedup Comparisons Across Networks ===\n";
    out << ctx.edge_hw().Describe() << "\n";

    const auto cmps = RunTable1Comparison(ctx, ctx.edge_hw());
    out << report::BuildCycleTable(cmps).ToString() << "\n";

    out << "Tuned tilings (B_b, H_h, N_Q, N_KV):\n";
    for (const auto& cmp : cmps) {
      out << "  " << cmp.network.name << ":";
      for (const auto& run : cmp.runs) {
        out << "  " << MethodName(run.method) << "=" << run.tiling.ToString();
      }
      out << "\n";
    }

    out << "\nPaper reference geomeans: 5.09x (Layer-Wise), 2.78x (Soft-Pipe), "
           "1.70x (FLAT), 1.31x (TileFlow), 1.27x (FuseMax)\n";
    out << "Measured geomeans:        ";
    bool first = true;
    for (Method m : AllMethods()) {
      if (m == Method::kMas) continue;
      if (!first) out << ", ";
      first = false;
      out << FormatSpeedup(report::GeomeanSpeedup(cmps, m)) << " (" << MethodName(m) << ")";
    }
    out << "\n";

    json.KeyValue("hardware", ctx.edge_hw().name);
    WriteComparisonJson(json, cmps);
    WriteBaselineGeomeans(json, "geomean_speedup_vs", cmps, &report::GeomeanSpeedup);
  }
};

// --------------------------------------------------------------- table3
// Paper Table 3: energy consumption and MAS savings on the edge device.
class Table3Suite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "table3", "Table 3",
        "energy consumption and MAS savings across the Table-1 networks"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    out << "=== Table 3: Energy Consumption and Savings Across Networks ===\n";
    out << ctx.edge_hw().Describe() << "\n";

    const auto cmps = RunTable1Comparison(ctx, ctx.edge_hw());
    out << report::BuildEnergyTable(cmps).ToString() << "\n";

    out << "Paper reference geomean savings: 52.97% (Layer-Wise), 63.07% (Soft-Pipe), "
           "18.55% (FLAT), 53.16% (TileFlow), -11.94% (FuseMax)\n";
    out << "Measured geomean savings:        ";
    bool first = true;
    for (Method m : AllMethods()) {
      if (m == Method::kMas) continue;
      if (!first) out << ", ";
      first = false;
      out << FormatPercent(report::GeomeanSavings(cmps, m)) << " (" << MethodName(m) << ")";
    }
    out << "\n";

    json.KeyValue("hardware", ctx.edge_hw().name);
    WriteComparisonJson(json, cmps);
    WriteBaselineGeomeans(json, "geomean_savings_vs", cmps, &report::GeomeanSavings);
  }
};

// ----------------------------------------------------------------- fig5
// Paper Fig. 5: normalized execution time on the DaVinci-class NPU for the
// methods the paper deployed there (TileFlow/FuseMax excluded, §5.1).
class Fig5Suite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "fig5", "Fig. 5",
        "normalized execution time on the DaVinci-class NPU stand-in"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    out << "=== Fig. 5: Normalized execution time on the DaVinci-class NPU ===\n";
    out << ctx.npu_hw().Describe() << "\n";

    const std::vector<Method> methods = {Method::kLayerWise, Method::kSoftPipe, Method::kFlat,
                                         Method::kMas};
    const auto cmps = RunTable1Comparison(ctx, ctx.npu_hw());
    out << report::BuildNormalizedTimeTable(cmps, methods).ToString() << "\n";

    out << "Paper reference (real DaVinci NPU): speedups 1.94x-3.50x vs Layer-Wise,\n";
    out << "1.35x-2.87x vs Soft-Pipe, 1.30x-1.76x vs FLAT; geomeans 2.33x / 1.73x / "
           "1.42x.\n";
    out << "Measured geomeans: "
        << FormatSpeedup(report::GeomeanSpeedup(cmps, Method::kLayerWise)) << " / "
        << FormatSpeedup(report::GeomeanSpeedup(cmps, Method::kSoftPipe)) << " / "
        << FormatSpeedup(report::GeomeanSpeedup(cmps, Method::kFlat)) << "\n";

    json.KeyValue("hardware", ctx.npu_hw().name);
    json.BeginArray("rows");
    for (const auto& cmp : cmps) {
      double worst = 0.0;
      for (Method m : methods) {
        worst = std::max(worst, static_cast<double>(cmp.Run(m).sim.cycles));
      }
      for (Method m : methods) {
        const auto& run = cmp.Run(m);
        json.BeginObject();
        json.KeyValue("network", cmp.network.name);
        json.KeyValue("method", std::string(MethodName(m)));
        json.KeyValue("cycles", static_cast<std::int64_t>(run.sim.cycles));
        json.KeyValue("normalized_time", static_cast<double>(run.sim.cycles) / worst);
        json.EndObject();
      }
    }
    json.EndArray();
    json.BeginObject("geomean_speedup_vs");
    for (Method m : methods) {
      if (m == Method::kMas) continue;
      json.KeyValue(std::string(MethodName(m)), report::GeomeanSpeedup(cmps, m));
    }
    json.EndObject();
  }
};

// ----------------------------------------------------------------- fig6
// Paper Fig. 6: per-network per-method energy breakdown across DRAM, L1,
// L0 and the PE arrays, plus the §5.3.3 schedule-invariance check.
class Fig6Suite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "fig6", "Fig. 6",
        "energy breakdown (DRAM / L1 / L0 / PE-MAC / PE-VEC) per network and method"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    out << "=== Fig. 6: Energy breakdown (DRAM / L1 / L0 / PE-MAC / PE-VEC) ===\n";
    out << ctx.edge_hw().Describe() << "\n";

    const auto cmps = RunTable1Comparison(ctx, ctx.edge_hw());
    out << report::BuildEnergyBreakdownTable(cmps).ToString() << "\n";

    // §5.3.3 check printed explicitly: PE energy is schedule-invariant.
    out << "PE-MAC energy spread across methods per network (should be ~0 except MAS "
           "redo tiles):\n";
    json.KeyValue("hardware", ctx.edge_hw().name);
    WriteComparisonJson(json, cmps);
    json.BeginArray("pe_mac_spread");
    for (const auto& cmp : cmps) {
      double lo = 1e300, hi = 0.0;
      for (const auto& run : cmp.runs) {
        lo = std::min(lo, run.sim.energy.mac_pe_pj);
        hi = std::max(hi, run.sim.energy.mac_pe_pj);
      }
      const double spread = (hi - lo) / hi;
      out << "  " << cmp.network.name << ": " << FormatPercent(spread) << "\n";
      json.BeginObject();
      json.KeyValue("network", cmp.network.name);
      json.KeyValue("spread_fraction", spread);
      json.EndObject();
    }
    json.EndArray();
  }
};

// ---------------------------------------------------------- dram_access
// Paper §5.4: DRAM access analysis, MAS vs FLAT (identical writes, read
// inflation where the proactive overwrite reloads K/V).
class DramAccessSuite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "dram_access", "§5.4",
        "DRAM read/write analysis, MAS vs FLAT, across the Table-1 networks"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    out << "=== §5.4: DRAM access analysis (MAS vs FLAT) ===\n\n";
    const auto cmps = RunTable1Comparison(ctx, ctx.edge_hw());
    out << report::BuildDramAccessTable(cmps).ToString() << "\n";

    bool writes_equal = true;
    for (const auto& cmp : cmps) {
      writes_equal &= cmp.Run(Method::kMas).sim.dram_write_bytes ==
                      cmp.Run(Method::kFlat).sim.dram_write_bytes;
    }
    out << "DRAM writes identical across MAS/FLAT for every network: "
        << (writes_equal ? "yes (matches §5.4.1)" : "NO — mismatch!") << "\n";
    out << "Paper read inflation: 1.5x (BERT-Base/Large classes), 1.49x (Llama3 class), "
           "1.0x elsewhere.\n";

    json.KeyValue("hardware", ctx.edge_hw().name);
    json.KeyValue("writes_identical", writes_equal);
    json.BeginArray("rows");
    for (const auto& cmp : cmps) {
      const auto& flat = cmp.Run(Method::kFlat).sim;
      const auto& mas = cmp.Run(Method::kMas).sim;
      json.BeginObject();
      json.KeyValue("network", cmp.network.name);
      json.KeyValue("flat_read_bytes", flat.dram_read_bytes);
      json.KeyValue("mas_read_bytes", mas.dram_read_bytes);
      json.KeyValue("read_ratio", static_cast<double>(mas.dram_read_bytes) /
                                      static_cast<double>(flat.dram_read_bytes));
      json.KeyValue("flat_write_bytes", flat.dram_write_bytes);
      json.KeyValue("mas_write_bytes", mas.dram_write_bytes);
      json.KeyValue("mas_overwrite_events", mas.overwrite_events);
      json.KeyValue("mas_reload_bytes", mas.reload_bytes);
      json.EndObject();
    }
    json.EndArray();
  }
};

}  // namespace

void RegisterComparisonSuites() {
  SuiteRegistry& registry = SuiteRegistry::Instance();
  registry.Register(std::make_unique<Table2Suite>());
  registry.Register(std::make_unique<Table3Suite>());
  registry.Register(std::make_unique<Fig5Suite>());
  registry.Register(std::make_unique<Fig6Suite>());
  registry.Register(std::make_unique<DramAccessSuite>());
}

}  // namespace mas::bench
