// Ablation suites (DESIGN.md): multi-tiered tiling, the proactive
// overwrite, DRAM bandwidth sensitivity, and core-count scaling. Tuned
// baselines resolve through the shared Planner; the hardware sweeps ride the
// SweepRunner grid (multiple hardware variants, deterministic order).
#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

#include "benchsuite/suite.h"
#include "common/json_writer.h"
#include "common/table.h"
#include "schedulers/registry.h"
#include "search/tiling_search.h"

namespace mas::bench {

namespace {

// ------------------------------------------------------- ablation_tiling
// §4.2's multi-tiered tiling: sweep N_Q and N_KV independently around the
// tuned MAS baseline on BERT-Base, plus the forced-uniform comparison.
class AblationTilingSuite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "ablation_tiling", "§4.2 ablation",
        "multi-tiered tiling: independent N_Q / N_KV sweeps around the tuned MAS point"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const sim::HardwareConfig& hw = ctx.edge_hw();
    const sim::EnergyModel& em = ctx.energy_model();
    const AttentionShape shape = FindNetwork("BERT-Base & T5-Base").shape;
    const auto mas = SchedulerRegistry::Instance().Create("MAS-Attention");
    const TilingConfig tuned =
        ctx.planner().Plan(shape, "MAS-Attention", hw, TilingPolicy::kPaperProtocol).tiling;

    out << "=== Ablation: multi-tiered tiling (" << shape.ToString() << ") ===\n";
    out << "Tuned baseline: " << tuned.ToString() << "\n\n";
    json.KeyValue("hardware", hw.name);
    json.KeyValue("workload", shape.ToString());
    json.KeyValue("tuned_tiling", tuned.ToString());

    out << "--- Sweep N_Q (pipeline/softmax row granularity), others tuned ---\n";
    TextTable nq_table({"N_Q", "row blocks", "Mcycles", "MAC util", "overwrites", "peak L1 KB"});
    json.BeginArray("nq_sweep");
    for (std::int64_t nq : {8, 16, 32, 64, 128, 256, 512}) {
      TilingConfig t = tuned;
      t.nq = nq;
      if (!mas->Fits(shape, t, hw)) {
        nq_table.AddRow({std::to_string(nq), "-", "does not fit", "-", "-", "-"});
        continue;
      }
      const auto r = mas->Simulate(shape, t, hw, em);
      nq_table.AddRow({std::to_string(nq), std::to_string(t.RowBlocks(shape)),
                       FormatFixed(r.cycles / 1e6, 3), FormatPercent(r.MacUtilization()),
                       std::to_string(r.overwrite_events),
                       FormatFixed(r.peak_l1_bytes / 1024.0, 0)});
      json.BeginObject();
      json.KeyValue("nq", nq);
      json.KeyValue("cycles", static_cast<std::int64_t>(r.cycles));
      json.KeyValue("mac_utilization", r.MacUtilization());
      json.KeyValue("overwrite_events", r.overwrite_events);
      json.KeyValue("peak_l1_bytes", r.peak_l1_bytes);
      json.EndObject();
    }
    json.EndArray();
    out << nq_table.ToString() << "\n";

    out << "--- Sweep N_KV (MatMul sub-matrix granularity), others tuned ---\n";
    TextTable nkv_table({"N_KV", "kv blocks", "Mcycles", "MAC util", "peak L1 KB"});
    json.BeginArray("nkv_sweep");
    for (std::int64_t nkv : {16, 32, 64, 128, 256, 512}) {
      TilingConfig t = tuned;
      t.nkv = nkv;
      if (!mas->Fits(shape, t, hw)) {
        nkv_table.AddRow({std::to_string(nkv), "-", "does not fit", "-", "-"});
        continue;
      }
      const auto r = mas->Simulate(shape, t, hw, em);
      nkv_table.AddRow({std::to_string(nkv), std::to_string(t.KvBlocks(shape)),
                        FormatFixed(r.cycles / 1e6, 3), FormatPercent(r.MacUtilization()),
                        FormatFixed(r.peak_l1_bytes / 1024.0, 0)});
      json.BeginObject();
      json.KeyValue("nkv", nkv);
      json.KeyValue("cycles", static_cast<std::int64_t>(r.cycles));
      json.KeyValue("mac_utilization", r.MacUtilization());
      json.KeyValue("peak_l1_bytes", r.peak_l1_bytes);
      json.EndObject();
    }
    json.EndArray();
    out << nkv_table.ToString() << "\n";

    out << "--- Uniform tiling (N_Q = N_KV forced equal) vs multi-tiered ---\n";
    TextTable uni({"variant", "tiling", "Mcycles"});
    const auto tuned_r = mas->Simulate(shape, tuned, hw, em);
    uni.AddRow({"multi-tiered (tuned)", tuned.ToString(), FormatFixed(tuned_r.cycles / 1e6, 3)});
    double best_uniform = 0.0;
    TilingConfig best_uniform_t = tuned;
    bool uniform_found = false;
    for (std::int64_t n : {32, 64, 128, 256, 512}) {
      TilingConfig t = tuned;
      t.nq = n;
      t.nkv = n;
      if (!mas->Fits(shape, t, hw)) continue;
      const auto r = mas->Simulate(shape, t, hw, em);
      if (!uniform_found || static_cast<double>(r.cycles) < best_uniform) {
        best_uniform = static_cast<double>(r.cycles);
        best_uniform_t = t;
        uniform_found = true;
      }
    }
    if (uniform_found) {
      uni.AddRow(
          {"best uniform", best_uniform_t.ToString(), FormatFixed(best_uniform / 1e6, 3)});
    } else {
      uni.AddRow({"best uniform", "none fits", "-"});
    }
    out << uni.ToString() << "\n";
    json.KeyValue("tuned_cycles", static_cast<std::int64_t>(tuned_r.cycles));
    json.KeyValue("uniform_tiling_found", uniform_found);
    if (uniform_found) {
      json.KeyValue("best_uniform_tiling", best_uniform_t.ToString());
      json.KeyValue("best_uniform_cycles", best_uniform);
    }
  }
};

// ---------------------------------------------------- ablation_overwrite
// The §4.3 proactive overwrite's value: fixed pressured tiling with the
// overwrite on vs off (MAS (no overwrite) ablation scheduler), and tuned
// MAS vs the best tiling that never triggers the overwrite.
class AblationOverwriteSuite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "ablation_overwrite", "§4.3 ablation",
        "proactive overwrite on/off under L1 pressure + best overwrite-free tiling"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const sim::EnergyModel& em = ctx.energy_model();
    sim::HardwareConfig hw = ctx.edge_hw();
    hw.cores.resize(1);
    hw.l1_bytes = 1 * 1024 * 1024;  // pressure: 1 MB budget

    const AttentionShape shape{"longseq", 1, 2, 2048, 64};
    const auto mas = SchedulerRegistry::Instance().Create("MAS-Attention");

    out << "=== Ablation: proactive overwrite strategy (" << shape.ToString()
        << ", 1 MB L1, 1 core) ===\n\n";
    json.KeyValue("workload", shape.ToString());
    json.KeyValue("l1_bytes", hw.l1_bytes);

    TextTable table({"Variant", "tiling", "Mcycles", "overwrites", "reload KB",
                     "DRAM reads MB", "energy GpJ"});
    json.BeginArray("rows");
    auto add = [&](const std::string& name, const TilingConfig& t, const sim::SimResult& r) {
      table.AddRow({name, t.ToString(), FormatFixed(r.cycles / 1e6, 3),
                    std::to_string(r.overwrite_events), FormatFixed(r.reload_bytes / 1024.0, 1),
                    FormatFixed(r.dram_read_bytes / (1024.0 * 1024.0), 2),
                    FormatFixed(r.energy.total_pj() / 1e9, 3)});
      json.BeginObject();
      json.KeyValue("variant", name);
      json.KeyValue("tiling", t.ToString());
      json.KeyValue("cycles", static_cast<std::int64_t>(r.cycles));
      json.KeyValue("overwrite_events", r.overwrite_events);
      json.KeyValue("reload_bytes", r.reload_bytes);
      json.KeyValue("dram_read_bytes", r.dram_read_bytes);
      json.KeyValue("total_pj", r.energy.total_pj());
      json.EndObject();
    };

    // --- View 1: fixed pressured tiling (strips of 96 rows x 2048 cols). ---
    const TilingConfig pressured{1, 1, 96, 256};
    const auto with_plan = ctx.planner().PlanFixed(shape, "MAS-Attention", hw, pressured);
    const auto no_ow_plan = ctx.planner().PlanFixed(shape, "MAS (no overwrite)", hw, pressured);
    const auto with_fixed = ctx.planner().Simulate(with_plan, hw);
    const auto without_fixed = ctx.planner().Simulate(no_ow_plan, hw);
    add("MAS + overwrite, pressured tiling", pressured, with_fixed);
    add("MAS - overwrite (stalls), same tiling", pressured, without_fixed);

    // --- View 2: searched; overwrite-allowed vs quiet-only tilings. ---
    const TilingConfig tuned =
        ctx.planner().Plan(shape, "MAS-Attention", hw, TilingPolicy::kPaperProtocol).tiling;
    const auto with_tuned = mas->Simulate(shape, tuned, hw, em);
    search::TilingProblem problem(*mas, shape, hw, em);
    TilingConfig best_quiet = tuned;
    double best_quiet_cycles = 0.0;
    bool quiet_found = false;
    std::int64_t quiet_evals = 0;
    for (std::int64_t hh : problem.hh_candidates()) {
      for (std::int64_t nq : problem.nq_candidates()) {
        for (std::int64_t nkv : problem.nkv_candidates()) {
          const TilingConfig t{1, hh, nq, nkv};
          if (!problem.Feasible(t)) continue;
          const auto r = mas->Simulate(shape, t, hw, em);
          ++quiet_evals;
          if (r.overwrite_events == 0 &&
              (!quiet_found || static_cast<double>(r.cycles) < best_quiet_cycles)) {
            best_quiet_cycles = static_cast<double>(r.cycles);
            best_quiet = t;
            quiet_found = true;
          }
        }
      }
    }
    ctx.AddSearchEvaluations(quiet_evals);
    add("MAS + overwrite (tuned)", tuned, with_tuned);
    sim::SimResult quiet;
    if (quiet_found) {
      quiet = mas->Simulate(shape, best_quiet, hw, em);
      add("MAS, best overwrite-free tiling", best_quiet, quiet);
    } else {
      table.AddRow({"MAS, best overwrite-free tiling", "none feasible", "-", "-", "-", "-",
                    "-"});
    }
    json.EndArray();
    out << table.ToString() << "\n";

    const double stall_penalty =
        static_cast<double>(without_fixed.cycles) / static_cast<double>(with_fixed.cycles);
    json.KeyValue("stall_penalty", stall_penalty);
    json.KeyValue("quiet_tiling_found", quiet_found);
    out << "On the pressured tiling, disabling the overwrite costs "
        << FormatSpeedup(stall_penalty)
        << " (the pipeline drains sequentially); the overwrite keeps the overlap\n";
    out << "at the price of " << FormatFixed(with_fixed.reload_bytes / 1024.0, 1)
        << " KB of K/V reloads — the paper's \"unnoticeable\" extra reads.\n";
    if (!quiet_found) {
      out << "Searched view: NO overwrite-free tiling is feasible here — every feasible\n"
          << "configuration needs the proactive overwrite to keep the pipeline going.\n";
    } else {
      json.KeyValue("overwrite_tuned_wins", with_tuned.cycles <= quiet.cycles);
      if (with_tuned.cycles <= quiet.cycles) {
        out << "Searched view: the overwrite-allowed optimum matches or beats the best\n"
            << "overwrite-free tiling (search can also sidestep pressure here).\n";
      } else {
        out << "Searched view: quiet tilings win on this configuration — the search\n"
            << "avoids pressure outright, as the paper's offline tuner also would.\n";
      }
    }
  }
};

// ---------------------------------------------------- ablation_bandwidth
// DRAM bandwidth sensitivity: where each dataflow crosses from memory-bound
// to compute-bound. Rides one SweepRunner grid over five bandwidth variants.
class AblationBandwidthSuite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "ablation_bandwidth", "DESIGN.md ablation",
        "DRAM bandwidth sweep: memory-bound vs compute-bound crossover per dataflow"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const AttentionShape shape = FindNetwork("BERT-Base & T5-Base").shape;
    const std::vector<double> bandwidths = {7.5, 15.0, 30.0, 60.0, 120.0};
    const std::vector<Method> methods = {Method::kLayerWise, Method::kSoftPipe, Method::kFlat,
                                         Method::kMas};

    out << "=== Ablation: DRAM bandwidth sweep (" << shape.ToString() << ") ===\n\n";
    json.KeyValue("workload", shape.ToString());

    runner::SweepGrid grid;
    grid.shapes = {shape};
    grid.methods = methods;
    for (double bw : bandwidths) {
      sim::HardwareConfig hw = ctx.edge_hw();
      hw.dram_gb_per_s = bw;
      grid.hardware.push_back(hw);
    }
    const runner::SweepReport sweep = ctx.runner().Run(grid);

    TextTable table({"BW GB/s", "Layer-Wise Mcyc", "Soft-Pipe Mcyc", "FLAT Mcyc", "MAS Mcyc",
                     "MAS vs FLAT", "MAS vs Layer-Wise"});
    json.BeginArray("rows");
    // Grid order: hardware-major (single shape), methods innermost.
    for (std::size_t b = 0; b < bandwidths.size(); ++b) {
      std::vector<double> cycles;
      json.BeginObject();
      json.KeyValue("dram_gb_per_s", bandwidths[b]);
      for (std::size_t m = 0; m < methods.size(); ++m) {
        const runner::JobResult& r = sweep.results[b * methods.size() + m];
        MAS_CHECK(r.ok()) << "bandwidth sweep failed: " << r.error;
        cycles.push_back(static_cast<double>(r.sim.cycles));
        json.KeyValue(std::string(MethodName(methods[m])) + "_cycles",
                      static_cast<std::int64_t>(r.sim.cycles));
      }
      json.EndObject();
      table.AddRow({FormatFixed(bandwidths[b], 1), FormatFixed(cycles[0] / 1e6, 3),
                    FormatFixed(cycles[1] / 1e6, 3), FormatFixed(cycles[2] / 1e6, 3),
                    FormatFixed(cycles[3] / 1e6, 3), FormatSpeedup(cycles[2] / cycles[3]),
                    FormatSpeedup(cycles[0] / cycles[3])});
    }
    json.EndArray();
    out << table.ToString() << "\n";
    out << "Fused methods saturate early (compute-bound); unfused baselines chase\n";
    out << "bandwidth, so MAS's advantage over Layer-Wise shrinks as BW grows while\n";
    out << "its advantage over FLAT (MAC/VEC overlap) persists at every bandwidth.\n";
  }
};

// -------------------------------------------------------- ablation_cores
// Core-count scaling at fixed L1/bandwidth: does the MAS-vs-FLAT gap
// survive more parallelism, and where does the shared DRAM bus saturate?
class AblationCoresSuite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "ablation_cores", "DESIGN.md ablation",
        "core-count scaling: MAS-vs-FLAT gap and shared-DRAM saturation"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const AttentionShape shape = FindNetwork("BERT-Base & T5-Base").shape;
    const std::vector<int> core_counts = {1, 2, 4, 8};
    const std::vector<Method> methods = {Method::kFlat, Method::kMas};

    out << "=== Ablation: core-count scaling (" << shape.ToString() << ") ===\n\n";
    json.KeyValue("workload", shape.ToString());

    runner::SweepGrid grid;
    grid.shapes = {shape};
    grid.methods = methods;
    for (int cores : core_counts) {
      sim::HardwareConfig hw = ctx.edge_hw();
      const sim::CoreConfig proto = hw.cores.front();
      hw.cores.assign(static_cast<std::size_t>(cores), proto);
      grid.hardware.push_back(hw);
    }
    const runner::SweepReport sweep = ctx.runner().Run(grid);

    TextTable table({"cores", "FLAT Mcyc", "MAS Mcyc", "MAS vs FLAT", "MAS scaling vs 1 core",
                     "MAS DMA busy %"});
    json.BeginArray("rows");
    double mas_1core = 0.0;
    for (std::size_t c = 0; c < core_counts.size(); ++c) {
      const runner::JobResult& flat_r = sweep.results[c * methods.size() + 0];
      const runner::JobResult& mas_r = sweep.results[c * methods.size() + 1];
      MAS_CHECK(flat_r.ok() && mas_r.ok()) << "core sweep failed";
      if (core_counts[c] == 1) mas_1core = static_cast<double>(mas_r.sim.cycles);
      const double dma_busy =
          static_cast<double>(mas_r.sim.BusyCycles(sim::ResourceKind::kDma)) /
          static_cast<double>(mas_r.sim.cycles);
      table.AddRow(
          {std::to_string(core_counts[c]), FormatFixed(flat_r.sim.cycles / 1e6, 3),
           FormatFixed(mas_r.sim.cycles / 1e6, 3),
           FormatSpeedup(static_cast<double>(flat_r.sim.cycles) /
                         static_cast<double>(mas_r.sim.cycles)),
           FormatSpeedup(mas_1core / static_cast<double>(mas_r.sim.cycles)),
           FormatFixed(100.0 * dma_busy, 0)});
      json.BeginObject();
      json.KeyValue("cores", core_counts[c]);
      json.KeyValue("flat_cycles", static_cast<std::int64_t>(flat_r.sim.cycles));
      json.KeyValue("mas_cycles", static_cast<std::int64_t>(mas_r.sim.cycles));
      json.KeyValue("mas_dma_busy_fraction", dma_busy);
      json.EndObject();
    }
    json.EndArray();
    out << table.ToString() << "\n";
    out << "MAS's per-core MAC/VEC overlap is orthogonal to multi-core sharding, so the\n";
    out << "MAS-vs-FLAT gap persists at every core count; the scaling column flattens\n";
    out << "once the shared 30 GB/s DRAM bus saturates (DMA busy % approaching 100).\n";
  }
};

}  // namespace

void RegisterAblationSuites() {
  SuiteRegistry& registry = SuiteRegistry::Instance();
  registry.Register(std::make_unique<AblationTilingSuite>());
  registry.Register(std::make_unique<AblationOverwriteSuite>());
  registry.Register(std::make_unique<AblationBandwidthSuite>());
  registry.Register(std::make_unique<AblationCoresSuite>());
}

}  // namespace mas::bench
