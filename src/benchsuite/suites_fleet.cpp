// Fleet-serving suite: device-count x router-policy ladder under Poisson
// overload (src/fleet/). Every rung shards ONE open-loop trace across the
// fleet under each router policy, then scores fleet-wide TTFT attainment
// from the pooled per-request samples.
//
// The workload is built so the router is the only lever: prompts are small
// and near-uniform (every request's bare prefill is far under the SLO), but
// decode lengths spread 4-64, so a request's true device occupancy — its
// decode rounds at max_batch 1 — varies by an order of magnitude. The fleet
// runs just past per-device capacity, where queues form behind the long
// decodes. Size-blind round_robin keeps feeding a device pinned by a long
// decode and its waiters eat the p99; least_loaded reads the drained
// outstanding-token estimate (drain calibrated to the workload's
// tokens-per-round) and steers arrivals away from the pinned device.
//
// All plans resolve through the context's shared Planner, so a persisted
// plan cache replays the whole ladder with zero search evaluations and
// byte-identical BENCH_serve_fleet.json.
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "benchsuite/suite.h"
#include "common/json_writer.h"
#include "common/table.h"
#include "fleet/fleet.h"
#include "serve/arrival.h"
#include "serve/slo.h"

namespace mas::bench {

namespace {

class ServeFleetSuite final : public BenchSuite {
 public:
  explicit ServeFleetSuite(SuiteInfo info) : info_(std::move(info)) {}

  const SuiteInfo& info() const override { return info_; }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const sim::HardwareConfig& hw = ctx.edge_hw();
    const double to_us = 1.0 / (hw.frequency_ghz * 1e3);

    const std::vector<int> device_rungs = {2, 4, 8};
    const std::vector<std::string> routers = {"round_robin", "least_loaded", "p2c",
                                              "session_affinity"};

    serve::SloTargets slo;
    slo.ttft_us = kTtftTargetUs;

    out << "=== Fleet serving ladder (devices x router, Poisson overload) ===\n";
    out << hw.Describe() << "\n";
    out << "Model: " << Llama3Geometry().name << ", " << kRequestsPerDevice
        << " requests/device at " << kRatePerDeviceS << " req/s/device, prompts "
        << kPromptMin << "-" << kPromptMax << ", decode " << kDecodeMin << "-" << kDecodeMax
        << ", " << kTenants << " tenants, max batch " << kMaxBatch << ", SLO: TTFT <= "
        << kTtftTargetUs << " us\n\n";
    out << "devices  router            ttft_ok  attainment  p99_ttft_us  imbalance\n";

    json.KeyValue("ttft_target_us", kTtftTargetUs);
    json.KeyValue("rate_per_device_s", kRatePerDeviceS);
    json.KeyValue("requests_per_device", static_cast<std::int64_t>(kRequestsPerDevice));
    json.BeginArray("rungs");
    for (const int devices : device_rungs) {
      // One trace per rung, shared by every router — the ladder compares
      // dispatch policies, not workloads. Offered load scales with the
      // fleet so every rung sits in the same per-device overload regime.
      serve::ArrivalCalibration calibration;
      calibration.frequency_ghz = hw.frequency_ghz;
      const serve::ArrivalSpec arrival = serve::ArrivalSpec::Parse("poisson").With(
          "rate", kRatePerDeviceS * static_cast<double>(devices));
      const std::unique_ptr<serve::ArrivalModel> model =
          serve::ArrivalModelRegistry::Instance().Create(arrival, calibration);
      serve::SyntheticTraceSpec shape;
      shape.name = "fleet_overload";
      shape.requests = static_cast<std::int64_t>(kRequestsPerDevice) * devices;
      shape.seed = 0xF1EE7;
      shape.prompt_min = kPromptMin;
      shape.prompt_max = kPromptMax;
      shape.decode_min = kDecodeMin;
      shape.decode_max = kDecodeMax;
      shape.tenants = kTenants;
      const serve::RequestTrace trace = serve::RequestTrace::FromArrivalModel(*model, shape);

      for (const std::string& router : routers) {
        fleet::FleetOptions options;
        options.devices = devices;
        options.jobs = ctx.jobs();
        options.router = fleet::RouterSpec::Parse(router);
        options.session.max_batch = kMaxBatch;
        options.drain_tokens_per_tick = kDrainTokensPerTick;
        fleet::FleetRouter fleet_router(ctx.planner(), options);
        const fleet::FleetResult result = fleet_router.Run(trace);
        const serve::SloReport report = fleet::EvaluateFleetSlo(result, slo);

        const double p99_us = result.metrics.p99_ttft_cycles * to_us;
        char line[160];
        std::snprintf(line, sizeof(line), "%-8d %-17s %lld/%-4lld %-11s %-12s %s\n", devices,
                      router.c_str(), static_cast<long long>(report.ttft_ok),
                      static_cast<long long>(report.requests),
                      FormatFixed(report.TtftAttainment(), 3).c_str(),
                      FormatFixed(p99_us, 1).c_str(),
                      FormatFixed(result.metrics.imbalance, 3).c_str());
        out << line;

        json.BeginObject();
        json.KeyValue("devices", static_cast<std::int64_t>(devices));
        json.KeyValue("router", router);
        json.KeyValue("rate_per_s", kRatePerDeviceS * static_cast<double>(devices));
        json.KeyValue("requests", report.requests);
        json.KeyValue("ttft_ok", report.ttft_ok);
        json.KeyValue("ttft_attainment", report.TtftAttainment());
        json.KeyValue("mean_ttft_us", result.metrics.mean_ttft_cycles * to_us);
        json.KeyValue("p99_ttft_us", p99_us);
        json.KeyValue("makespan_ms", result.metrics.makespan_ms);
        json.KeyValue("tokens_per_second", result.metrics.tokens_per_second);
        json.KeyValue("imbalance", result.metrics.imbalance);
        json.EndObject();
      }
      out << "\n";
    }
    json.EndArray();
    out << "Size-blind round_robin keeps feeding devices pinned by long decodes and\n"
           "pays for it in p99 TTFT; least_loaded reads the drained outstanding-token\n"
           "estimate and steers arrivals away from the deep queues.\n\n";
  }

 private:
  static constexpr double kTtftTargetUs = 6000.0;
  static constexpr double kRatePerDeviceS = 112.0;
  static constexpr int kRequestsPerDevice = 16;
  static constexpr int kMaxBatch = 1;
  static constexpr std::int64_t kPromptMin = 64;
  static constexpr std::int64_t kPromptMax = 96;
  static constexpr std::int64_t kDecodeMin = 4;
  static constexpr std::int64_t kDecodeMax = 64;
  static constexpr std::int64_t kTenants = 4;
  static constexpr std::int64_t kDrainTokensPerTick = 3;

  SuiteInfo info_;
};

}  // namespace

void RegisterFleetSuites() {
  SuiteRegistry& registry = SuiteRegistry::Instance();
  registry.Register(std::make_unique<ServeFleetSuite>(
      SuiteInfo{"serve_fleet", "fleet serving",
                "device-count x router-policy ladder under Poisson overload: fleet-wide "
                "TTFT attainment from pooled samples"}));
}

}  // namespace mas::bench
