// Extension-study suites: rectangular attention (SD-UNet cross-attention +
// KV-cache decode), the sequence-length sweep, the §5.6 maximum-sequence
// analysis, the §5.2.2 SD-UNet end-to-end study, and the training backward
// pass. All tuned tilings resolve through the shared Planner/SweepRunner.
#include <algorithm>
#include <cstdlib>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "benchsuite/suite.h"
#include "common/json_writer.h"
#include "common/math_util.h"
#include "common/table.h"
#include "schedulers/registry.h"
#include "training/backward_scheduler.h"

namespace mas::bench {

namespace {

// ------------------------------------------------------- cross_attention
// Beyond the paper's square self-attention: SD-UNet text-conditioning
// cross-attention (N_kv = 77) and autoregressive decode against a KV cache
// (N = 1), mapping out where the MAS stream pipeline pays off.
class CrossAttentionSuite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "cross_attention", "extension",
        "rectangular attention: SD-UNet cross-attention and KV-cache decode"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    out << "=== Cross-attention & decode extension study ===\n";
    out << ctx.edge_hw().Describe() << "\n";
    json.KeyValue("hardware", ctx.edge_hw().name);

    std::vector<AttentionShape> xattn;
    for (const auto& u : SdUnetCrossAttentionUnits()) xattn.push_back(u.shape);
    RunGroup(ctx, json, "cross_attention",
             "SD-1.5 UNet cross-attention (N_kv = 77 prompt tokens)", xattn);

    std::vector<AttentionShape> decode;
    for (const auto& w : DecodeWorkloads({512, 2048, 8192})) decode.push_back(w.shape);
    RunGroup(ctx, json, "decode", "Llama3-8B-class decode (N = 1 row vs KV cache)", decode);

    out << "Expected shape: cross-attention at high latent resolutions stays compute-\n";
    out << "bound (query side dominates) and MAS keeps most of its Table-2 advantage;\n";
    out << "decode is DMA-bound at every context length, so the fused methods converge\n";
    out << "and only the unfused Layer-Wise baseline still loses (score round trips).\n";
  }

 private:
  static void RunGroup(SuiteContext& ctx, JsonWriter& json, const std::string& key,
                       const std::string& title, const std::vector<AttentionShape>& shapes) {
    std::ostream& out = ctx.out();
    const std::vector<Method> methods = {Method::kLayerWise, Method::kFlat, Method::kFuseMax,
                                         Method::kMas};
    runner::SweepGrid grid;
    grid.shapes = shapes;
    grid.methods = methods;
    grid.hardware = {ctx.edge_hw()};
    const runner::SweepReport sweep = ctx.runner().Run(grid);

    out << "--- " << title << " ---\n";
    TextTable table({"Shape", "Layer-Wise Mcyc", "FLAT Mcyc", "FuseMax Mcyc", "MAS Mcyc",
                     "MAS vs FLAT", "MAC util %", "DMA busy %"});
    json.BeginArray(key);
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      std::vector<std::string> row = {shapes[s].ToString()};
      double flat_cycles = 0.0;
      json.BeginObject();
      json.KeyValue("shape", shapes[s].ToString());
      for (std::size_t m = 0; m < methods.size(); ++m) {
        const runner::JobResult& r = sweep.results[s * methods.size() + m];
        MAS_CHECK(r.ok()) << "extension sweep failed: " << r.error;
        row.push_back(FormatFixed(r.sim.cycles / 1e6, 3));
        json.KeyValue(std::string(MethodName(methods[m])) + "_cycles",
                      static_cast<std::int64_t>(r.sim.cycles));
        if (methods[m] == Method::kFlat) flat_cycles = static_cast<double>(r.sim.cycles);
        if (methods[m] == Method::kMas) {
          const double dma_busy =
              static_cast<double>(r.sim.BusyCycles(sim::ResourceKind::kDma)) /
              static_cast<double>(r.sim.cycles);
          row.push_back(FormatSpeedup(flat_cycles / static_cast<double>(r.sim.cycles)));
          row.push_back(FormatFixed(100.0 * r.sim.MacUtilization(), 0));
          row.push_back(FormatFixed(100.0 * dma_busy, 0));
          json.KeyValue("mas_mac_utilization", r.sim.MacUtilization());
          json.KeyValue("mas_dma_busy_fraction", dma_busy);
        }
      }
      json.EndObject();
      table.AddRow(std::move(row));
    }
    json.EndArray();
    out << table.ToString() << "\n";
  }
};

// ------------------------------------------------------------- seq_sweep
// Sequence-length sweep at BERT-Base-class geometry: the crossover
// structure Table 2's fixed-N rows cannot show. (Cross-thread determinism
// of the runner itself is proven in test_sweep_runner and the CI smoke; the
// suite just rides the shared runner.)
class SeqSweepSuite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "seq_sweep", "extension",
        "sequence-length sweep (H=12, E=64): per-method scaling and crossovers"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    out << "=== Sequence-length sweep (H=12, E=64) on the SweepRunner ===\n";
    out << ctx.edge_hw().Describe() << "\n";
    json.KeyValue("hardware", ctx.edge_hw().name);

    runner::SweepGrid grid;
    grid.methods = AllMethods();
    grid.hardware = {ctx.edge_hw()};
    // MAS_SWEEP_MAX_N trims the sweep for quick runs; clamp so a low or
    // unparsable value still leaves at least the N=128 point.
    // mas-lint: allow(env-discipline) documented opt-in sweep-trim knob, off by default
    const char* env_max = std::getenv("MAS_SWEEP_MAX_N");
    const std::int64_t max_n =
        std::max<std::int64_t>(128, env_max != nullptr ? std::atoll(env_max) : 2048);
    for (std::int64_t n = 128; n <= max_n; n *= 2) {
      grid.shapes.push_back(AttentionShape{"sweep_n" + std::to_string(n), 1, 12, n, 64});
    }
    const runner::SweepReport sweep = ctx.runner().Run(grid);

    out << sweep.SpeedupTable().ToString() << "\n";
    out << "All columns grow O(N^2); the MAS-vs-Layer-Wise gap widens with N (the C/P\n";
    out << "round trips Layer-Wise pays scale with the score matrix), while MAS-vs-FLAT\n";
    out << "stays near its Table-2 level until long sequences shrink the feasible strip\n";
    out << "sizes and the proactive overwrite starts firing.\n";

    json.KeyValue("max_n", max_n);
    json.BeginArray("rows");
    for (std::size_t s = 0; s < grid.shapes.size(); ++s) {
      json.BeginObject();
      json.KeyValue("seq_len", grid.shapes[s].seq_len);
      for (std::size_t m = 0; m < grid.methods.size(); ++m) {
        const runner::JobResult& r = sweep.results[s * grid.methods.size() + m];
        MAS_CHECK(r.ok()) << "sequence sweep failed: " << r.error;
        json.KeyValue(std::string(MethodName(grid.methods[m])) + "_cycles",
                      static_cast<std::int64_t>(r.sim.cycles));
      }
      json.EndObject();
    }
    json.EndArray();
    json.KeyValue("geomean_mas_vs_flat", sweep.GeomeanSpeedup(Method::kMas, Method::kFlat));
    json.KeyValue("geomean_mas_vs_layerwise",
                  sweep.GeomeanSpeedup(Method::kMas, Method::kLayerWise));
  }
};

// --------------------------------------------------------- limits_maxseq
// Paper §5.6: maximum supported FP16 sequence length. Pure feasibility
// analysis (Fits() probes + binary search) — no simulation, no tuning.
class LimitsMaxSeqSuite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "limits_maxseq", "§5.6",
        "maximum supported sequence length in FP16, MAS vs FLAT (row granularity)"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    sim::HardwareConfig hw = ctx.edge_hw();
    hw.cores.resize(1);  // the §5.6 analysis is per-pipeline (one core's budget)

    out << "=== §5.6: Maximum sequence length (FP16, row granularity) ===\n";
    out << hw.Describe() << "\n";

    const auto mas = SchedulerRegistry::Instance().Create("MAS-Attention");
    const auto flat = SchedulerRegistry::Instance().Create("FLAT");

    auto max_seq = [&](const Scheduler& sched) {
      // Probe powers of two, then binary-search the boundary.
      std::int64_t lo = 1, hi = 1;
      const std::int64_t kv_tile = 4096;
      auto fits = [&](std::int64_t n) {
        const AttentionShape shape{"probe", 1, 1, n, 64};
        const TilingConfig tiling{1, 1, 1, std::min<std::int64_t>(kv_tile, n)};
        return sched.Fits(shape, tiling, hw);
      };
      while (fits(hi * 2)) {
        hi *= 2;
        if (hi > (1LL << 24)) break;
      }
      lo = hi;
      std::int64_t step = hi / 2;
      while (step > 0) {
        if (fits(lo + step)) lo += step;
        step /= 2;
      }
      return lo;
    };

    const std::int64_t mas_max = max_seq(*mas);
    const std::int64_t flat_max = max_seq(*flat);
    const double ratio = static_cast<double>(flat_max) / static_cast<double>(mas_max);

    TextTable table({"Method", "max seq (tokens)", "one P_i row at max (MB)", "strips on-chip"});
    table.AddRow({"MAS-Attention", std::to_string(mas_max),
                  FormatFixed(mas_max * 2.0 / (1024 * 1024), 2),
                  "2 (P_i + P_{i-1} or C_{i+1})"});
    table.AddRow({"FLAT", std::to_string(flat_max),
                  FormatFixed(flat_max * 2.0 / (1024 * 1024), 2), "1 (in-place softmax)"});
    out << table.ToString() << "\n";

    out << "FLAT/MAS max-sequence ratio: " << FormatFixed(ratio, 2)
        << " (paper: 2.0 — FLAT ~2M tokens vs MAS ~1M on the 5 MB device)\n";

    json.KeyValue("l1_bytes", hw.l1_bytes);
    json.KeyValue("mas_max_seq", mas_max);
    json.KeyValue("flat_max_seq", flat_max);
    json.KeyValue("flat_over_mas_ratio", ratio);
  }
};

// ----------------------------------------------------------- sd_unet_e2e
// Paper §5.2.2: the reduced SD-1.5 UNet end-to-end study on the NPU-class
// device. Attention units sweep on the shared runner; the non-attention
// remainder is modeled as a fixed cycle budget calibrated so attention is
// ~20% of Layer-Wise end-to-end inference.
class SdUnetE2eSuite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "sd_unet_e2e", "§5.2.2",
        "SD-1.5 reduced-UNet end-to-end study on the NPU-class device"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    std::ostream& out = ctx.out();
    const sim::HardwareConfig& hw = ctx.npu_hw();
    out << "=== §5.2.2: SD-1.5 reduced UNet end-to-end on the NPU-class device ===\n\n";
    json.KeyValue("hardware", hw.name);

    const auto units = SdUnetAttentionUnits();
    const std::vector<Method> methods = {Method::kLayerWise, Method::kSoftPipe, Method::kFlat,
                                         Method::kMas};
    runner::SweepGrid grid;
    for (const auto& unit : units) grid.shapes.push_back(unit.shape);
    grid.methods = methods;
    grid.hardware = {hw};
    const runner::SweepReport sweep = ctx.runner().Run(grid);

    TextTable per_unit({"Attention unit", "count", "Layer-Wise Mcyc", "Soft-Pipe Mcyc",
                        "FLAT Mcyc", "MAS Mcyc", "MAS vs Layer-Wise"});
    std::map<Method, double> totals;
    double largest_lw = 0.0, largest_mas = 0.0;
    json.BeginArray("units");
    for (std::size_t u = 0; u < units.size(); ++u) {
      std::vector<double> cycles;
      json.BeginObject();
      json.KeyValue("unit", units[u].shape.name);
      json.KeyValue("count", units[u].count);
      for (std::size_t m = 0; m < methods.size(); ++m) {
        const runner::JobResult& r = sweep.results[u * methods.size() + m];
        MAS_CHECK(r.ok()) << "SD-UNet sweep failed: " << r.error;
        const double c = static_cast<double>(r.sim.cycles);
        cycles.push_back(c);
        totals[methods[m]] += c * units[u].count;
        json.KeyValue(std::string(MethodName(methods[m])) + "_cycles",
                      static_cast<std::int64_t>(r.sim.cycles));
      }
      json.EndObject();
      const double reduction = 1.0 - cycles.back() / cycles.front();
      per_unit.AddRow({units[u].shape.name, std::to_string(units[u].count),
                       FormatFixed(cycles[0] / 1e6, 3), FormatFixed(cycles[1] / 1e6, 3),
                       FormatFixed(cycles[2] / 1e6, 3), FormatFixed(cycles[3] / 1e6, 3),
                       FormatPercent(reduction) + " faster"});
      if (units[u].shape.seq_len == 4096) {
        largest_lw = cycles.front();
        largest_mas = cycles.back();
      }
    }
    json.EndArray();
    out << per_unit.ToString() << "\n";

    // End-to-end model: attention (Layer-Wise) is ~20% of UNet inference.
    const double attention_lw = totals[Method::kLayerWise];
    const double non_attention = attention_lw * 4.0;
    TextTable e2e({"Method", "attention Mcyc", "end-to-end Mcyc", "e2e reduction vs Layer-Wise"});
    json.BeginArray("end_to_end");
    for (Method m : methods) {
      const double att = totals[m];
      const double total = att + non_attention;
      const double reduction = 1.0 - total / (attention_lw + non_attention);
      e2e.AddRow({MethodName(m), FormatFixed(att / 1e6, 3), FormatFixed(total / 1e6, 3),
                  FormatPercent(reduction)});
      json.BeginObject();
      json.KeyValue("method", std::string(MethodName(m)));
      json.KeyValue("attention_cycles", att);
      json.KeyValue("e2e_cycles", total);
      json.KeyValue("e2e_reduction_vs_layerwise", reduction);
      json.EndObject();
    }
    json.EndArray();
    out << e2e.ToString() << "\n";

    const double largest_reduction = 1.0 - largest_mas / largest_lw;
    json.KeyValue("largest_unit_reduction", largest_reduction);
    out << "Largest unit (H=2, N=4096, E=64): MAS reduces runtime by "
        << FormatPercent(largest_reduction) << " vs Layer-Wise (paper: 29.4%).\n";
    out << "Paper end-to-end reduction: ~6% (attention is a minority of UNet time).\n";
  }
};

// ----------------------------------------------------- training_backward
// Paper §6 future work: the attention backward pass, sequential vs
// MAS-style stream pipeline, across the Table-1 networks.
class TrainingBackwardSuite final : public BenchSuite {
 public:
  const SuiteInfo& info() const override {
    static const SuiteInfo kInfo{
        "training_backward", "§6 extension",
        "attention backward pass: sequential vs stream-pipelined dataflow"};
    return kInfo;
  }

  void Run(SuiteContext& ctx, JsonWriter& json) const override {
    using training::BackwardMethod;
    std::ostream& out = ctx.out();
    const sim::HardwareConfig& hw = ctx.edge_hw();
    const sim::EnergyModel& em = ctx.energy_model();

    out << "=== Training extension: attention backward pass, sequential vs stream ===\n";
    out << hw.Describe() << "\n";
    json.KeyValue("hardware", hw.name);

    const auto seq = training::MakeBackwardScheduler(BackwardMethod::kSequential);
    const auto stream = training::MakeBackwardScheduler(BackwardMethod::kStream);

    TextTable table({"Network", "fwd MAS Mcyc", "bwd seq Mcyc", "bwd stream Mcyc",
                     "stream speedup", "bwd/fwd ratio", "bwd energy GpJ"});
    std::vector<double> speedups;
    json.BeginArray("rows");
    for (const auto& net : Table1Networks()) {
      // The forward tiling comes from the shared Planner (warm under a plan
      // cache); backward shares the tiling family and halves N_Q until the
      // heavier stream footprint fits.
      const TuningPlan fwd_plan =
          ctx.planner().Plan(net.shape, "MAS-Attention", hw, TilingPolicy::kPaperProtocol);
      const sim::SimResult fwd_r = ctx.planner().Simulate(fwd_plan, hw);

      TilingConfig bwd_tiling = fwd_plan.tiling;
      if (!stream->Fits(net.shape, bwd_tiling, hw)) {
        bwd_tiling.nq = std::max<std::int64_t>(1, bwd_tiling.nq / 2);
        while (!stream->Fits(net.shape, bwd_tiling, hw) && bwd_tiling.nq > 1) {
          bwd_tiling.nq /= 2;
        }
      }
      const auto seq_r = seq->Simulate(net.shape, bwd_tiling, hw, em);
      const auto stream_r = stream->Simulate(net.shape, bwd_tiling, hw, em);
      const double speedup =
          static_cast<double>(seq_r.cycles) / static_cast<double>(stream_r.cycles);
      speedups.push_back(speedup);
      table.AddRow({net.name, FormatFixed(fwd_r.cycles / 1e6, 3),
                    FormatFixed(seq_r.cycles / 1e6, 3), FormatFixed(stream_r.cycles / 1e6, 3),
                    FormatSpeedup(speedup),
                    FormatFixed(static_cast<double>(stream_r.cycles) /
                                    static_cast<double>(fwd_r.cycles),
                                2),
                    FormatFixed(stream_r.energy.total_pj() / 1e9, 3)});
      json.BeginObject();
      json.KeyValue("network", net.name);
      json.KeyValue("backward_tiling", bwd_tiling.ToString());
      json.KeyValue("forward_mas_cycles", static_cast<std::int64_t>(fwd_r.cycles));
      json.KeyValue("backward_sequential_cycles", static_cast<std::int64_t>(seq_r.cycles));
      json.KeyValue("backward_stream_cycles", static_cast<std::int64_t>(stream_r.cycles));
      json.KeyValue("backward_stream_total_pj", stream_r.energy.total_pj());
      json.EndObject();
    }
    json.EndArray();
    const double geomean = GeoMean(speedups);
    json.KeyValue("geomean_stream_speedup", geomean);
    table.AddRule();
    table.AddRow({"Geometric Mean", "-", "-", "-", FormatSpeedup(geomean), "-", "-"});
    out << table.ToString() << "\n";
    out << "Backward carries ~2.5x the forward MAC work (5 vs 2 MatMuls per block), so\n";
    out << "the VEC stages are easier to hide: expect a smaller but still consistent\n";
    out << "stream-over-sequential win, and a bwd/fwd cycle ratio between 2x and 3x.\n";
  }
};

}  // namespace

void RegisterExtensionSuites() {
  SuiteRegistry& registry = SuiteRegistry::Instance();
  registry.Register(std::make_unique<CrossAttentionSuite>());
  registry.Register(std::make_unique<SeqSweepSuite>());
  registry.Register(std::make_unique<LimitsMaxSeqSuite>());
  registry.Register(std::make_unique<SdUnetE2eSuite>());
  registry.Register(std::make_unique<TrainingBackwardSuite>());
}

}  // namespace mas::bench
