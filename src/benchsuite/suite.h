// benchsuite: the registry-driven paper-artifact benchmark suites behind the
// mas_bench driver.
//
// Every figure/table the paper's evidence rests on (Fig. 1/5/6/7, Tables
// 2-3, the ablations and extension studies) is one named BenchSuite
// registered in the SuiteRegistry — the same self-registration pattern as
// SchedulerRegistry/StrategyRegistry, so adding the next workload is a ~50
// line registration in its own translation unit instead of a new binary.
//
// Suites share one SuiteContext: the hardware presets, a thread-pooled
// runner::SweepRunner whose mas::Planner carries the plan store, the worker
// count, and the human-readable output stream. Because every tuned tiling
// resolves through that shared Planner, (a) identical jobs across suites
// dedup to cache hits within one mas_bench invocation and (b) a persisted
// plan cache (--plan-cache) makes the whole paper-artifact sweep warm: the
// second run performs zero search evaluations and emits byte-identical
// BENCH_<suite>.json files.
//
// Output contract: Run() prints the paper-style tables/commentary to
// ctx.out() and writes machine-readable fields into the provided JsonWriter,
// which is positioned inside the BENCH_<name>.json envelope object the
// driver owns. JSON bytes must be deterministic — no wall clocks, hostnames,
// or thread counts; those belong on the text stream.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "report/harness.h"
#include "runner/sweep_runner.h"

namespace mas {
class JsonWriter;
}

namespace mas::bench {

// Descriptor of one registered suite.
struct SuiteInfo {
  std::string name;      // registry key and output stem, e.g. "table2"
  std::string artifact;  // paper artifact label, e.g. "Table 2"
  std::string summary;   // one-line description for --list
};

// Shared run state handed to every suite.
class SuiteContext {
 public:
  // `jobs` <= 0 selects the hardware concurrency. `search_budget` overrides
  // the convergence suites' default evaluation budgets (0 = per-suite
  // default); the artifact-table suites ignore it.
  SuiteContext(int jobs, std::ostream& out, std::int64_t search_budget = 0);

  // The paper's two devices: the Fig. 4 simulated edge chip and the
  // DaVinci-class NPU stand-in (§5.1).
  const sim::HardwareConfig& edge_hw() const { return edge_hw_; }
  const sim::HardwareConfig& npu_hw() const { return npu_hw_; }

  // The shared evaluation stack. planner() is runner().planner(): load a
  // plan cache into planner().store() before running suites to warm-start.
  runner::SweepRunner& runner() { return runner_; }
  Planner& planner() { return runner_.planner(); }
  const sim::EnergyModel& energy_model() const { return runner_.planner().energy_model(); }

  int jobs() const { return jobs_; }
  std::int64_t search_budget() const { return search_budget_; }
  std::ostream& out() { return out_; }

  // Simulator evaluations spent OUTSIDE the shared planner (the convergence
  // suites drive search::RunSearch directly — their searches are the
  // artifact, so they re-run even under a warm plan cache). The driver adds
  // this to the planner's counter when reporting.
  void AddSearchEvaluations(std::int64_t n) { extra_search_evaluations_ += n; }
  std::int64_t extra_search_evaluations() const { return extra_search_evaluations_; }

 private:
  sim::HardwareConfig edge_hw_;
  sim::HardwareConfig npu_hw_;
  int jobs_;
  std::int64_t search_budget_;
  std::ostream& out_;
  runner::SweepRunner runner_;
  std::int64_t extra_search_evaluations_ = 0;
};

class BenchSuite {
 public:
  virtual ~BenchSuite() = default;
  virtual const SuiteInfo& info() const = 0;
  // Runs the suite: paper-style tables to ctx.out(), machine-readable fields
  // into `json` (already inside the envelope object; see file comment).
  virtual void Run(SuiteContext& ctx, JsonWriter& json) const = 0;
};

// String-keyed suite catalog, mirroring SchedulerRegistry. Suites are
// stateless singletons owned by the registry for the process lifetime.
class SuiteRegistry {
 public:
  static SuiteRegistry& Instance();

  // Throws when the suite's name is already taken.
  void Register(std::unique_ptr<BenchSuite> suite);

  // Unknown names throw an Error listing the available set.
  const BenchSuite& Get(const std::string& name) const;
  const SuiteInfo* Find(const std::string& name) const;  // nullptr if unknown

  std::vector<SuiteInfo> List() const;  // registration (= paper artifact) order
  std::string AvailableNames() const;   // "'table2', 'table3', ..."

  // Parses "name[,name...]" or "all" into suite instances, preserving the
  // caller's order ("all" = registration order). Throws on unknown names or
  // an empty selection.
  std::vector<const BenchSuite*> Resolve(const std::string& list) const;

 private:
  SuiteRegistry() = default;
  void EnsureBuiltins() const;
  const BenchSuite* FindSuiteLocked(const std::string& name) const;
  std::string AvailableNamesLocked() const;

  mutable std::once_flag builtins_once_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<BenchSuite>> suites_;  // registration order
};

// ---------------------------------------------------------------------------
// Helpers shared by the suite implementations.
// ---------------------------------------------------------------------------

// Runs the Table-1 (network x AllMethods) comparison grid on the context's
// shared runner (paper tiling protocol; results dedup across suites).
std::vector<report::NetworkComparison> RunTable1Comparison(SuiteContext& ctx,
                                                           const sim::HardwareConfig& hw);

// Emits the comparison grid as "rows": [{network, method, tiling, cycles,
// energy breakdown, DRAM traffic, overwrite bookkeeping}, ...].
void WriteComparisonJson(JsonWriter& json, const std::vector<report::NetworkComparison>& cmps);

// Emits {"<method name>": value, ...} under `key` for every non-MAS method.
void WriteBaselineGeomeans(JsonWriter& json, const std::string& key,
                           const std::vector<report::NetworkComparison>& cmps,
                           double (*metric)(const std::vector<report::NetworkComparison>&,
                                            Method));

// Registration hooks, one per suite translation unit (called by
// EnsureBuiltins in artifact order).
void RegisterComparisonSuites();  // table2, table3, fig5, fig6, dram_access
void RegisterTimelineSuites();    // fig1, fig23
void RegisterSearchSuites();      // fig7, search_improvement
void RegisterAblationSuites();    // ablation_{tiling,overwrite,bandwidth,cores}
void RegisterExtensionSuites();   // cross_attention, seq_sweep, limits_maxseq,
                                  // sd_unet_e2e, training_backward
void RegisterServeSuites();       // serve_llm_chat, serve_decode_heavy,
                                  // serve_mixed_sd, serve_slo_sweep
void RegisterFleetSuites();       // serve_fleet
void RegisterHeteroSuites();      // serve_hetero_pareto

}  // namespace mas::bench
