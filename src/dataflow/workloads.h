// Workload definitions: the paper's Table 1 networks plus the §5.2.2
// Stable-Diffusion-1.5 UNet attention suite.
#pragma once

#include <string>
#include <vector>

#include "dataflow/attention_shape.h"

namespace mas {

// A named network whose attention layer we evaluate (Table 1 row).
struct NetworkWorkload {
  std::string name;       // e.g. "BERT-Base & T5-Base"
  AttentionShape shape;   // the attention layer instance (B=1)
  std::int64_t hidden = 0;  // hidden size (H * E head split per Table 1)
};

// All 12 Table-1 rows in paper order.
std::vector<NetworkWorkload> Table1Networks();

// Looks a network up by (exact) name; throws if absent.
NetworkWorkload FindNetwork(const std::string& name);

// One attention unit of the reduced SD-1.5 UNet (§5.2.2) plus the share of
// end-to-end latency it represents.
struct UNetAttentionUnit {
  AttentionShape shape;
  int count = 1;  // identical units at this resolution
};

// The reduced Stable Diffusion 1.5 UNet attention inventory: 15 attention
// units across the UNet's resolution levels; the largest has H=2, N=4096,
// E=64 per §5.2.2. Shapes follow SD-1.5's self-attention blocks at
// 64x64 / 32x32 / 16x16 / 8x8 latent resolutions.
std::vector<UNetAttentionUnit> SdUnetAttentionUnits();

// The matching *cross*-attention inventory: each transformer block of the
// SD-1.5 UNet pairs its self-attention with a text-conditioning
// cross-attention whose key/value length is the CLIP prompt length
// (N_kv = 77). These are extremely K/V-light, query-heavy layers — the
// opposite corner of the tiling space from Table 1's square workloads.
std::vector<UNetAttentionUnit> SdUnetCrossAttentionUnits();

// Per-model attention geometry (head count and per-head embedding) for
// request-level serving, where one model produces many shapes: an N x N
// prefill per request plus one N_kv-growing decode step per generated token.
struct AttentionGeometry {
  std::string name = "model";
  std::int64_t heads = 1;
  std::int64_t embed = 1;
};

// Llama3-8B-class head layout (H=32, E=128) — the repo's serving default.
AttentionGeometry Llama3Geometry();
// BERT-Base-class layout (H=12, E=64) — small enough for fast tests.
AttentionGeometry BertBaseGeometry();

// Prefill phase of one request: N = prompt_len self-attention (square score
// matrix, the regime where MAS's MAC/VEC overlap wins).
AttentionShape PrefillShape(const AttentionGeometry& geometry, std::int64_t prompt_len);

// Decode phase of one request: `queries` new tokens (1 = autoregressive,
// >1 = speculative-decoding verification) against a KV cache of context_len
// entries. Arithmetic intensity collapses to O(queries) MACs per K/V byte,
// so decode is DMA-bound and scheduler selection flips relative to prefill.
AttentionShape DecodeShape(const AttentionGeometry& geometry, std::int64_t context_len,
                           std::int64_t queries = 1);

// Autoregressive-decode attention workloads (one new token against a KV
// cache): N = 1 query row, N_kv = context length. The paper's stream
// pipeline degenerates here (a single softmax row per head), making decode
// the natural stress test for the scheduler-selection logic in examples.
// Returns DecodeShape(Llama3Geometry(), ctx) for the given context lengths.
std::vector<NetworkWorkload> DecodeWorkloads(const std::vector<std::int64_t>& context_lengths);

}  // namespace mas
