// Attention workload shapes and tiling configurations.
//
// An AttentionShape is the (B, H, N, E) problem instance of paper Eq. 1-3; a
// TilingConfig carries the four tiling factors of the multi-tiered scheme
// (§4.2): B_b, H_h (batch/head block), N_Q (query-row block / row
// granularity for softmax) and N_KV (sub-matrix granularity along the
// key/value sequence dimension for the two MatMuls).
#pragma once

#include <cstdint>
#include <string>

#include "common/math_util.h"
#include "common/status.h"

namespace mas {

// One attention layer instance: Q ∈ R^{B x H x N x E}, K, V ∈ R^{B x H x Nkv x E}.
//
// `kv_len == 0` (the default) means self-attention: key/value length equals
// the query length. A positive `kv_len` models cross-attention (e.g. the SD
// UNet's text-conditioning layers, N_kv = 77) and autoregressive decode
// (N = 1 query row against an N_kv-entry KV cache).
struct AttentionShape {
  std::string name = "attention";
  std::int64_t batch = 1;   // B
  std::int64_t heads = 1;   // H
  std::int64_t seq_len = 1; // N: query sequence length
  std::int64_t embed = 1;   // E (per-head embedding)
  std::int64_t kv_len = 0;  // N_kv: key/value length; 0 = same as seq_len

  // Key/value sequence length (resolves the self-attention default).
  std::int64_t kv() const { return kv_len > 0 ? kv_len : seq_len; }

  void Validate() const {
    MAS_CHECK(batch >= 1 && heads >= 1 && seq_len >= 1 && embed >= 1 && kv_len >= 0)
        << "invalid attention shape " << ToString();
  }

  // Total multiply-accumulates of the two MatMuls (QK^T and PV).
  std::int64_t TotalMacs() const { return 2 * batch * heads * seq_len * kv() * embed; }
  // Total elements of the score matrix C = QK^T (softmax workload size).
  std::int64_t ScoreElements() const { return batch * heads * seq_len * kv(); }
  // Bytes of a query-side operand tensor (Q or O) at `element_bytes` precision.
  std::int64_t OperandBytes(std::int64_t element_bytes) const {
    return batch * heads * seq_len * embed * element_bytes;
  }
  // Bytes of a key/value-side operand tensor (K or V).
  std::int64_t KvOperandBytes(std::int64_t element_bytes) const {
    return batch * heads * kv() * embed * element_bytes;
  }

  std::string ToString() const {
    std::string out = name + "(B=" + std::to_string(batch) + ",H=" + std::to_string(heads) +
                      ",N=" + std::to_string(seq_len) + ",E=" + std::to_string(embed);
    if (kv_len > 0) out += ",Nkv=" + std::to_string(kv_len);
    return out + ")";
  }
};

// Tiling factors of the multi-tiered scheme. All factors are clamped against
// the shape when iterating, so non-divisor factors are legal (the last block
// is short).
struct TilingConfig {
  std::int64_t bb = 1;    // B_b: batch block
  std::int64_t hh = 1;    // H_h: head block
  std::int64_t nq = 1;    // N_Q: query-row block (softmax row granularity)
  std::int64_t nkv = 1;   // N_KV: key/value sequence sub-block

  void Validate(const AttentionShape& s) const {
    MAS_CHECK(bb >= 1 && bb <= s.batch) << "B_b=" << bb << " out of range for " << s.ToString();
    MAS_CHECK(hh >= 1 && hh <= s.heads) << "H_h=" << hh << " out of range for " << s.ToString();
    MAS_CHECK(nq >= 1 && nq <= s.seq_len) << "N_Q=" << nq << " out of range for " << s.ToString();
    MAS_CHECK(nkv >= 1 && nkv <= s.kv())
        << "N_KV=" << nkv << " out of range for " << s.ToString();
  }

  // Number of row-block iterations T_r (Alg. 1 line 2).
  std::int64_t RowBlocks(const AttentionShape& s) const {
    return CeilDiv(s.batch, bb) * CeilDiv(s.heads, hh) * CeilDiv(s.seq_len, nq);
  }
  // Number of key/value sub-blocks T_c (Alg. 2/4 line 3).
  std::int64_t KvBlocks(const AttentionShape& s) const { return CeilDiv(s.kv(), nkv); }

  std::string ToString() const {
    return "tiling(Bb=" + std::to_string(bb) + ",Hh=" + std::to_string(hh) +
           ",Nq=" + std::to_string(nq) + ",Nkv=" + std::to_string(nkv) + ")";
  }

  bool operator==(const TilingConfig& o) const {
    return bb == o.bb && hh == o.hh && nq == o.nq && nkv == o.nkv;
  }
  bool operator!=(const TilingConfig& o) const { return !(*this == o); }
};

}  // namespace mas
