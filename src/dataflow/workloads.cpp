#include "dataflow/workloads.h"

#include "common/status.h"

namespace mas {

std::vector<NetworkWorkload> Table1Networks() {
  // Columns per Table 1: #Heads, #Seq, Hidden size, Emb_{K,V}. Batch 1
  // (single inference request, the paper's edge scenario).
  auto mk = [](std::string name, std::int64_t heads, std::int64_t seq, std::int64_t hidden,
               std::int64_t emb) {
    NetworkWorkload w;
    w.name = name;
    w.shape = AttentionShape{std::move(name), 1, heads, seq, emb};
    w.hidden = hidden;
    return w;
  };
  return {
      mk("BERT-Base & T5-Base", 12, 512, 768, 64),
      mk("BERT-Large & T5-Large", 16, 512, 1024, 64),
      mk("BERT-Small", 8, 512, 512, 64),
      mk("Llama3-8B & T5-3B (T5-XL)", 32, 512, 4096, 128),
      mk("T5-Mini & T5-Small", 8, 512, 256, 32),
      mk("ViT-B/14", 12, 196, 768, 64),
      mk("ViT-L/14", 16, 196, 1024, 64),
      mk("ViT-H/14", 16, 196, 1280, 80),
      mk("ViT-B/16", 12, 256, 768, 64),
      mk("ViT-L/16", 16, 256, 1024, 64),
      mk("ViT-H/16", 16, 256, 1280, 80),
      mk("XLM", 8, 512, 1024, 128),
  };
}

NetworkWorkload FindNetwork(const std::string& name) {
  for (const auto& w : Table1Networks()) {
    if (w.name == name) return w;
  }
  std::string options;
  for (const auto& w : Table1Networks()) {
    if (!options.empty()) options += ", ";
    options += "'" + w.name + "'";
  }
  MAS_FAIL() << "unknown network '" << name << "'; options: " << options;
}

std::vector<UNetAttentionUnit> SdUnetAttentionUnits() {
  // Reduced SD-1.5 UNet (§5.2.2): 15 attention units across the latent
  // resolution pyramid; the largest units run at 64x64 latents (N = 4096)
  // with 2 heads and E = 64.
  auto shape = [](std::string name, std::int64_t heads, std::int64_t seq,
                  std::int64_t emb) {
    return AttentionShape{std::move(name), 1, heads, seq, emb};
  };
  return {
      {shape("sd_unet_attn_64x64", 2, 4096, 64), 2},   // down0 + up3
      {shape("sd_unet_attn_32x32", 4, 1024, 64), 4},   // down1 x2 + up2 x2
      {shape("sd_unet_attn_16x16", 8, 256, 64), 5},    // down2 x2 + up1 x3
      {shape("sd_unet_attn_8x8", 8, 64, 64), 4},       // down3 + mid + up0 x2
  };
}

std::vector<UNetAttentionUnit> SdUnetCrossAttentionUnits() {
  // Same resolution pyramid as the self-attention inventory, but the K/V
  // operands come from the CLIP text encoder: N_kv = 77 prompt tokens.
  auto shape = [](std::string name, std::int64_t heads, std::int64_t seq, std::int64_t emb) {
    return AttentionShape{std::move(name), 1, heads, seq, emb, /*kv_len=*/77};
  };
  return {
      {shape("sd_unet_xattn_64x64", 2, 4096, 64), 2},
      {shape("sd_unet_xattn_32x32", 4, 1024, 64), 4},
      {shape("sd_unet_xattn_16x16", 8, 256, 64), 5},
      {shape("sd_unet_xattn_8x8", 8, 64, 64), 4},
  };
}

AttentionGeometry Llama3Geometry() { return AttentionGeometry{"llama3_8b", 32, 128}; }

AttentionGeometry BertBaseGeometry() { return AttentionGeometry{"bert_base", 12, 64}; }

AttentionShape PrefillShape(const AttentionGeometry& geometry, std::int64_t prompt_len) {
  MAS_CHECK(prompt_len >= 1) << "prompt length must be positive, got " << prompt_len;
  AttentionShape shape{geometry.name + "_prefill_n" + std::to_string(prompt_len), 1,
                       geometry.heads, prompt_len, geometry.embed};
  shape.Validate();
  return shape;
}

AttentionShape DecodeShape(const AttentionGeometry& geometry, std::int64_t context_len,
                           std::int64_t queries) {
  MAS_CHECK(context_len >= 1) << "context length must be positive, got " << context_len;
  MAS_CHECK(queries >= 1) << "decode query count must be positive, got " << queries;
  std::string name = geometry.name + "_decode_ctx" + std::to_string(context_len);
  if (queries > 1) name += "_q" + std::to_string(queries);
  AttentionShape shape{std::move(name), 1, geometry.heads, /*seq_len=*/queries,
                       geometry.embed, /*kv_len=*/context_len};
  shape.Validate();
  return shape;
}

std::vector<NetworkWorkload> DecodeWorkloads(const std::vector<std::int64_t>& context_lengths) {
  std::vector<NetworkWorkload> workloads;
  for (std::int64_t ctx : context_lengths) {
    NetworkWorkload w;
    w.name = "llama3-decode-ctx" + std::to_string(ctx);
    w.shape = DecodeShape(Llama3Geometry(), ctx);
    w.shape.name = w.name;  // keep the historical display name
    w.hidden = 4096;
    workloads.push_back(std::move(w));
  }
  return workloads;
}

}  // namespace mas
