// Minimal JSON reader: the parsing twin of common/json_writer.h.
//
// Parse() turns a complete RFC 8259 document into a small immutable DOM
// (json::Value). It exists for the artifacts this repo itself emits —
// persisted tuning plans, bench JSON — so it favors strictness over
// leniency: malformed, truncated, or trailing-garbage input throws
// mas::Error with the byte offset, and all structural errors (mismatched
// brackets, bad escapes, duplicate-free keys are NOT enforced) are detected
// rather than papered over.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mas::json {

class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() = default;  // null

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kInt || type_ == Type::kDouble; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw mas::Error on a type mismatch.
  bool AsBool() const;
  // Integral access: kInt directly, or a kDouble holding an exactly
  // representable integer (JSON writers may emit either form).
  std::int64_t AsInt64() const;
  double AsDouble() const;  // any number
  const std::string& AsString() const;
  const std::vector<Value>& AsArray() const;

  // Object access. Members preserve document order.
  const std::vector<std::pair<std::string, Value>>& Members() const;
  const Value* Find(const std::string& key) const;  // nullptr when absent
  const Value& Get(const std::string& key) const;   // throws when absent

  // Byte offset in the parsed document where this value started, for error
  // messages that point at the offending spot in a large file; -1 for
  // programmatically constructed values.
  std::int64_t offset() const { return offset_; }
  void SetOffset(std::int64_t offset) { offset_ = offset; }

  // Construction (used by the parser; handy for tests).
  static Value Null() { return Value(); }
  static Value Bool(bool v);
  static Value Int(std::int64_t v);
  static Value Double(double v);
  static Value String(std::string v);
  static Value Array(std::vector<Value> items);
  static Value Object(std::vector<std::pair<std::string, Value>> members);

 private:
  Type type_ = Type::kNull;
  std::int64_t offset_ = -1;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

// Parses a complete JSON document (exactly one top-level value, surrounded
// only by whitespace). Throws mas::Error on malformed input.
Value Parse(const std::string& text);

}  // namespace mas::json
