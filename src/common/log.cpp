#include "common/log.h"

#include <atomic>
#include <cstring>
#include <iostream>

namespace mas {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load() && level != LogLevel::kOff), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace detail
}  // namespace mas
