// Error handling for the MAS-Attention library.
//
// The library is exception-based (per C++ Core Guidelines E.2): invariant
// violations and invalid arguments throw mas::Error, which carries a
// formatted message plus the source location of the check that fired.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mas {

// C++17-compatible stand-in for std::source_location (C++20), built on the
// compiler intrinsics GCC/Clang expose in all standard modes.
class SourceLocation {
 public:
  static SourceLocation current(const char* file = __builtin_FILE(),
                                std::uint32_t line = __builtin_LINE()) {
    SourceLocation loc;
    loc.file_ = file;
    loc.line_ = line;
    return loc;
  }

  const char* file_name() const noexcept { return file_; }
  std::uint32_t line() const noexcept { return line_; }

 private:
  const char* file_ = "";
  std::uint32_t line_ = 0;
};

// Library-wide exception type. Thrown by MAS_CHECK / MAS_THROW on broken
// preconditions, invalid configurations, or internal invariant violations.
class Error : public std::runtime_error {
 public:
  Error(std::string message, SourceLocation loc)
      : std::runtime_error(Format(message, loc)), raw_message_(std::move(message)) {}

  // Message without the source-location prefix (useful in tests).
  const std::string& raw_message() const noexcept { return raw_message_; }

 private:
  static std::string Format(const std::string& message, SourceLocation loc) {
    std::ostringstream os;
    os << loc.file_name() << ":" << loc.line() << ": " << message;
    return os.str();
  }

  std::string raw_message_;
};

namespace detail {

// Stream-composable message builder so checks can write
// `MAS_CHECK(x > 0) << "x was " << x;`.
class CheckFailure {
 public:
  explicit CheckFailure(const char* condition, SourceLocation loc)
      : loc_(loc) {
    stream_ << "check failed: " << condition;
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckFailure() noexcept(false) { throw Error(stream_.str(), loc_); }

 private:
  std::ostringstream stream_;
  SourceLocation loc_;
};

}  // namespace detail
}  // namespace mas

// Precondition / invariant check. On failure throws mas::Error. Additional
// context may be streamed: MAS_CHECK(a == b) << " a=" << a << " b=" << b;
#define MAS_CHECK(cond)                                                      \
  if (cond) {                                                                \
  } else                                                                     \
    ::mas::detail::CheckFailure(#cond " ", SourceLocation::current())

// Unconditional failure with a streamed message.
#define MAS_FAIL() ::mas::detail::CheckFailure("failure", SourceLocation::current())
