// Error handling for the MAS-Attention library.
//
// The library is exception-based (per C++ Core Guidelines E.2): invariant
// violations and invalid arguments throw mas::Error, which carries a
// formatted message plus the source location of the check that fired.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mas {

// Library-wide exception type. Thrown by MAS_CHECK / MAS_THROW on broken
// preconditions, invalid configurations, or internal invariant violations.
class Error : public std::runtime_error {
 public:
  Error(std::string message, std::source_location loc)
      : std::runtime_error(Format(message, loc)), raw_message_(std::move(message)) {}

  // Message without the source-location prefix (useful in tests).
  const std::string& raw_message() const noexcept { return raw_message_; }

 private:
  static std::string Format(const std::string& message, std::source_location loc) {
    std::ostringstream os;
    os << loc.file_name() << ":" << loc.line() << ": " << message;
    return os.str();
  }

  std::string raw_message_;
};

namespace detail {

// Stream-composable message builder so checks can write
// `MAS_CHECK(x > 0) << "x was " << x;`.
class CheckFailure {
 public:
  explicit CheckFailure(const char* condition, std::source_location loc)
      : loc_(loc) {
    stream_ << "check failed: " << condition;
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckFailure() noexcept(false) { throw Error(stream_.str(), loc_); }

 private:
  std::ostringstream stream_;
  std::source_location loc_;
};

}  // namespace detail
}  // namespace mas

// Precondition / invariant check. On failure throws mas::Error. Additional
// context may be streamed: MAS_CHECK(a == b) << " a=" << a << " b=" << b;
#define MAS_CHECK(cond)                                                      \
  if (cond) {                                                                \
  } else                                                                     \
    ::mas::detail::CheckFailure(#cond " ", std::source_location::current())

// Unconditional failure with a streamed message.
#define MAS_FAIL() ::mas::detail::CheckFailure("failure", std::source_location::current())
