// Minimal leveled logging to stderr.
//
// The searches and the simulator can emit a lot of diagnostics; benches run
// quiet by default and tests can raise verbosity for debugging.
#pragma once

#include <sstream>
#include <string>

namespace mas {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace mas

#define MAS_LOG(level) ::mas::detail::LogMessage(::mas::LogLevel::level, __FILE__, __LINE__)
