// The shared `kind[:key=value[,key=value...]]` spec grammar behind the
// `--arrival`, `--fault`, and `--router` flags.
//
// Each flag wraps the parsed form in its own typed spec struct (ArrivalSpec,
// FaultSpec, RouterSpec) so call sites keep domain vocabulary, but the
// grammar itself — head token, comma-separated key=value params, finite
// double values, no repeated keys — lives here exactly once. Parse errors
// carry the flag name and the offending spec text; key *semantics* (which
// params a kind accepts, value ranges) stay with the registry factories,
// which use CheckSpecKeys for the common unknown-key rejection.
#pragma once

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace mas {

// Ordered key=value params exactly as they appeared in the grammar.
using SpecParams = std::vector<std::pair<std::string, double>>;

// One parsed spec: "head" or "head:key=value[,key=value...]".
struct ParsedSpec {
  std::string head;
  SpecParams params;
};

// Parses `text` against the grammar. `flag` names the CLI flag for error
// text (e.g. "--arrival"); `head_noun` names the head's role (e.g.
// "model name", "fault kind"). Throws mas::Error on empty text, a missing
// head, an empty or malformed param list, repeated keys, or non-finite
// values.
ParsedSpec ParseSpec(const std::string& text, const std::string& flag,
                     const std::string& head_noun);

// Canonical "head:k=v,..." round-trip (shortest-round-trip doubles, the
// same formatting JSON output uses).
std::string SpecToString(const std::string& head, const SpecParams& params);

// Linear param lookup — spec param lists are tiny.
bool SpecHas(const SpecParams& params, const std::string& key);
double SpecParam(const SpecParams& params, const std::string& key, double fallback);

// Copy of `params` with `key` set to `value` (replacing in place when
// present, appending otherwise).
SpecParams SpecWith(const SpecParams& params, const std::string& key, double value);

// Rejects keys outside `allowed` so a typoed `poisson:rte=64` fails instead
// of silently running at the default. `what` names the owner for the error,
// e.g. "arrival model 'poisson'".
void CheckSpecKeys(const std::string& what, const SpecParams& params,
                   std::initializer_list<const char*> allowed);

}  // namespace mas
