#include "common/json_writer.h"

#include <cstdio>
#include <cstdlib>

namespace mas {

void AppendJsonDouble(std::string& out, double v) {
  // JSON has no NaN/Inf; encode them as null (the conventional fallback).
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Shortest round-trip output: %.15g is enough for most values; widen to 16
  // and 17 significant digits (17 = max_digits10, always exact) only when
  // strtod() of the shorter form does not reproduce the bit pattern. This
  // keeps "0.1" as "0.1" instead of %.17g's "0.10000000000000001" while
  // still distinguishing adjacent doubles %.12g silently merged.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    const double parsed = std::strtod(buf, nullptr);
    if (parsed == v && std::signbit(parsed) == std::signbit(v)) break;
  }
  out += buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace mas
