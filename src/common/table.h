// Plain-text table and CSV rendering for the bench harnesses.
//
// Every bench binary regenerates one of the paper's tables/figures as rows of
// text; this helper keeps column alignment and CSV escaping in one place.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mas {

// A rectangular table of strings with a header row. Rows may be added with
// heterogeneous cell producers via AddRow; rendering right-pads columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Appends one row. Must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> cells);

  // Convenience: a separator row rendered as dashes.
  void AddRule();

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  // Render as an aligned monospace table.
  std::string ToString() const;

  // Render as RFC-4180-style CSV (quotes cells containing , " or newline).
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector marks a rule
};

// Formats a double with `digits` decimal places.
std::string FormatFixed(double value, int digits);

// Formats a speedup as e.g. "2.75x".
std::string FormatSpeedup(double value);

// Formats a fraction as a percentage, e.g. 0.5403 -> "54.03%".
std::string FormatPercent(double fraction, int digits = 2);

// Writes `text` to `path`, throwing mas::Error on I/O failure.
void WriteFile(const std::string& path, const std::string& text);

}  // namespace mas
