#include "common/rng.h"

#include <cmath>

#include "common/status.h"

namespace mas {

namespace {
constexpr double kPi = 3.141592653589793238462643383279502884;
}  // namespace
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the 256-bit state from splitmix64 so similar seeds diverge fast.
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  MAS_CHECK(bound > 0) << "NextBelow requires a positive bound";
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // = 2^64 mod bound
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int Rng::NextInt(int lo, int hi) {
  MAS_CHECK(lo <= hi) << "NextInt range inverted: [" << lo << ", " << hi << "]";
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] so the log is finite.
  const double u1 = 1.0 - NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * kPi * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * kPi * u2);
}

std::size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    MAS_CHECK(w >= 0.0) << "negative weight " << w;
    total += w;
  }
  MAS_CHECK(total > 0.0) << "NextWeighted requires at least one positive weight";
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on the last entry
}

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = NextBelow(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace mas
