#include "common/json_reader.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/status.h"

namespace mas::json {

bool Value::AsBool() const {
  MAS_CHECK(type_ == Type::kBool) << "JSON value is not a bool";
  return bool_;
}

std::int64_t Value::AsInt64() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) {
    // Range-check before the cast: float-to-int conversion of an
    // out-of-range value is undefined behavior. The bounds are exact
    // doubles (-2^63 and 2^63); the upper compare is strict because 2^63
    // itself does not fit.
    MAS_CHECK(double_ >= -9223372036854775808.0 && double_ < 9223372036854775808.0)
        << "JSON number " << double_ << " is out of int64 range";
    const std::int64_t as_int = static_cast<std::int64_t>(double_);
    MAS_CHECK(static_cast<double>(as_int) == double_)
        << "JSON number " << double_ << " is not an exact integer";
    return as_int;
  }
  MAS_FAIL() << "JSON value is not a number";
}

double Value::AsDouble() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  MAS_CHECK(type_ == Type::kDouble) << "JSON value is not a number";
  return double_;
}

const std::string& Value::AsString() const {
  MAS_CHECK(type_ == Type::kString) << "JSON value is not a string";
  return string_;
}

const std::vector<Value>& Value::AsArray() const {
  MAS_CHECK(type_ == Type::kArray) << "JSON value is not an array";
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::Members() const {
  MAS_CHECK(type_ == Type::kObject) << "JSON value is not an object";
  return object_;
}

const Value* Value::Find(const std::string& key) const {
  MAS_CHECK(type_ == Type::kObject) << "JSON value is not an object";
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::Get(const std::string& key) const {
  const Value* v = Find(key);
  MAS_CHECK(v != nullptr) << "JSON object has no key '" << key << "'";
  return *v;
}

Value Value::Bool(bool v) {
  Value out;
  out.type_ = Type::kBool;
  out.bool_ = v;
  return out;
}

Value Value::Int(std::int64_t v) {
  Value out;
  out.type_ = Type::kInt;
  out.int_ = v;
  return out;
}

Value Value::Double(double v) {
  Value out;
  out.type_ = Type::kDouble;
  out.double_ = v;
  return out;
}

Value Value::String(std::string v) {
  Value out;
  out.type_ = Type::kString;
  out.string_ = std::move(v);
  return out;
}

Value Value::Array(std::vector<Value> items) {
  Value out;
  out.type_ = Type::kArray;
  out.array_ = std::move(items);
  return out;
}

Value Value::Object(std::vector<std::pair<std::string, Value>> members) {
  Value out;
  out.type_ = Type::kObject;
  out.object_ = std::move(members);
  return out;
}

namespace {

// Recursive-descent parser over the raw bytes. Positions in error messages
// are 0-based byte offsets into the document.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value ParseDocument() {
    Value v = ParseValue(/*depth=*/0);
    SkipWhitespace();
    MAS_CHECK(pos_ == text_.size())
        << "trailing garbage after JSON document at offset " << pos_;
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void Fail(const std::string& what) const {
    MAS_FAIL() << "JSON parse error at offset " << pos_ << ": " << what;
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const {
    if (AtEnd()) Fail("unexpected end of input");
    return text_[pos_];
  }
  char Take() {
    const char c = Peek();
    ++pos_;
    return c;
  }
  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "', got '" + Peek() + "'");
    ++pos_;
  }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void ExpectLiteral(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (AtEnd() || text_[pos_] != *p) Fail(std::string("bad literal (expected ") + literal + ")");
      ++pos_;
    }
  }

  Value ParseValue(int depth) {
    if (depth > kMaxDepth) Fail("nesting too deep");
    SkipWhitespace();
    // Stamp each value with the byte offset it started at, so consumers
    // (e.g. trace loading) can point error messages into the document.
    const std::size_t start = pos_;
    Value v = ParseValueDispatch(depth);
    v.SetOffset(static_cast<std::int64_t>(start));
    return v;
  }

  Value ParseValueDispatch(int depth) {
    const char c = Peek();
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': return Value::String(ParseString());
      case 't': ExpectLiteral("true"); return Value::Bool(true);
      case 'f': ExpectLiteral("false"); return Value::Bool(false);
      case 'n': ExpectLiteral("null"); return Value::Null();
      default: return ParseNumber();
    }
  }

  Value ParseObject(int depth) {
    Expect('{');
    std::vector<std::pair<std::string, Value>> members;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return Value::Object(std::move(members));
    }
    for (;;) {
      SkipWhitespace();
      if (Peek() != '"') Fail("expected object key string");
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      members.emplace_back(std::move(key), ParseValue(depth + 1));
      SkipWhitespace();
      const char sep = Take();
      if (sep == '}') break;
      if (sep != ',') {
        --pos_;
        Fail("expected ',' or '}' in object");
      }
    }
    return Value::Object(std::move(members));
  }

  Value ParseArray(int depth) {
    Expect('[');
    std::vector<Value> items;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return Value::Array(std::move(items));
    }
    for (;;) {
      items.push_back(ParseValue(depth + 1));
      SkipWhitespace();
      const char sep = Take();
      if (sep == ']') break;
      if (sep != ',') {
        --pos_;
        Fail("expected ',' or ']' in array");
      }
    }
    return Value::Array(std::move(items));
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      const char c = Take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = Take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = Take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              --pos_;
              Fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two separately encoded units; the writer never emits
          // them for this repo's ASCII artifacts).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          --pos_;
          Fail(std::string("bad escape '\\") + esc + "'");
      }
    }
  }

  Value ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      Fail("bad number");
    }
    bool integral = true;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (!AtEnd() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        Fail("bad number (no digits after '.')");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (!AtEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (!AtEnd() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        Fail("bad number (no exponent digits)");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Value::Int(static_cast<std::int64_t>(v));
      }
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(d)) Fail("bad number '" + token + "'");
    return Value::Double(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Parse(const std::string& text) { return Parser(text).ParseDocument(); }

}  // namespace mas::json
