#include "common/table.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/status.h"

namespace mas {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  MAS_CHECK(!header_.empty()) << "table needs at least one column";
}

void TextTable::AddRow(std::vector<std::string> cells) {
  MAS_CHECK(cells.size() == header_.size())
      << "row has " << cells.size() << " cells, expected " << header_.size();
  rows_.push_back(std::move(cells));
}

void TextTable::AddRule() { rows_.emplace_back(); }

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << "\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c], '-');
      if (c + 1 < widths.size()) os << "  ";
    }
    os << "\n";
  };

  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  return os.str();
}

std::string TextTable::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << escape(row[c]);
      if (c + 1 < row.size()) os << ",";
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) emit(row);
  }
  return os.str();
}

std::string FormatFixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string FormatSpeedup(double value) { return FormatFixed(value, 2) + "x"; }

std::string FormatPercent(double fraction, int digits) {
  return FormatFixed(fraction * 100.0, digits) + "%";
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  MAS_CHECK(out.good()) << "cannot open " << path << " for writing";
  out << text;
  MAS_CHECK(out.good()) << "write to " << path << " failed";
}

}  // namespace mas
