// Software IEEE 754 binary16 ("half") type.
//
// The paper's §5.6 capacity analysis and the edge datapath assume FP16
// operands; this header provides a portable storage type with exact
// round-trip conversion semantics (round-to-nearest-even on narrowing),
// so simulator byte accounting and functional golden checks agree on
// element sizes regardless of host hardware support.
#pragma once

#include <cstdint>

namespace mas {

// IEEE binary16 value held as its 16-bit pattern. Arithmetic is performed by
// widening to float; assignment narrows with round-to-nearest-even. This is a
// storage/interchange type, not a fast math type.
class Fp16 {
 public:
  constexpr Fp16() = default;
  Fp16(float value) : bits_(FromFloat(value)) {}

  // Reinterpret a raw bit pattern as an Fp16.
  static constexpr Fp16 FromBits(std::uint16_t bits) {
    Fp16 h;
    h.bits_ = bits;
    return h;
  }

  std::uint16_t bits() const { return bits_; }
  float ToFloat() const { return ToFloatImpl(bits_); }
  operator float() const { return ToFloat(); }

  Fp16& operator+=(Fp16 rhs) { return *this = Fp16(ToFloat() + rhs.ToFloat()); }
  Fp16& operator-=(Fp16 rhs) { return *this = Fp16(ToFloat() - rhs.ToFloat()); }
  Fp16& operator*=(Fp16 rhs) { return *this = Fp16(ToFloat() * rhs.ToFloat()); }
  Fp16& operator/=(Fp16 rhs) { return *this = Fp16(ToFloat() / rhs.ToFloat()); }

  friend bool operator==(Fp16 a, Fp16 b) { return a.ToFloat() == b.ToFloat(); }
  friend bool operator!=(Fp16 a, Fp16 b) { return !(a == b); }
  friend bool operator<(Fp16 a, Fp16 b) { return a.ToFloat() < b.ToFloat(); }

  bool IsNan() const;
  bool IsInf() const;

 private:
  static std::uint16_t FromFloat(float value);
  static float ToFloatImpl(std::uint16_t bits);

  std::uint16_t bits_ = 0;
};

inline Fp16 operator+(Fp16 a, Fp16 b) { return Fp16(a.ToFloat() + b.ToFloat()); }
inline Fp16 operator-(Fp16 a, Fp16 b) { return Fp16(a.ToFloat() - b.ToFloat()); }
inline Fp16 operator*(Fp16 a, Fp16 b) { return Fp16(a.ToFloat() * b.ToFloat()); }
inline Fp16 operator/(Fp16 a, Fp16 b) { return Fp16(a.ToFloat() / b.ToFloat()); }

}  // namespace mas
