// Minimal streaming JSON writer.
//
// Emits syntactically valid JSON without building a document tree: callers
// open objects/arrays and write keyed or plain values; commas and quoting are
// handled by the writer. Used by the trace exporters (Chrome trace format)
// and the mas_run CLI's --format=json output. Writing is append-only and
// single-pass, which keeps the exporters O(tasks) with no intermediate DOM.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mas {

// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
std::string JsonEscape(const std::string& s);

// Appends the shortest decimal representation of `v` that strtod() parses
// back to exactly `v` (sign of zero included). Non-finite values append
// "null" — JSON has no NaN/Inf. Read-modify-write cycles of JSON artifacts
// (plan caches, bench reports) therefore never perturb stored doubles.
void AppendJsonDouble(std::string& out, double v);

class JsonWriter {
 public:
  JsonWriter() = default;

  // --- structure ---
  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('{'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close('['); }

  // Keyed variants for use inside objects.
  JsonWriter& BeginObject(const std::string& key) { return KeyThen(key).Open('{'); }
  JsonWriter& BeginArray(const std::string& key) { return KeyThen(key).Open('['); }

  // --- values ---
  JsonWriter& Value(const std::string& v) {
    Separate();
    out_ += '"';
    out_ += JsonEscape(v);
    out_ += '"';
    return *this;
  }
  JsonWriter& Value(const char* v) { return Value(std::string(v)); }
  JsonWriter& Value(bool v) {
    Separate();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& Value(std::int64_t v) {
    Separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(std::uint64_t v) {
    Separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(int v) { return Value(static_cast<std::int64_t>(v)); }
  JsonWriter& Value(double v) {
    Separate();
    AppendJsonDouble(out_, v);
    return *this;
  }

  template <typename T>
  JsonWriter& KeyValue(const std::string& key, T&& v) {
    KeyThen(key);
    return Value(std::forward<T>(v));
  }

  // Finishes and returns the document. All containers must be closed.
  std::string Take() {
    MAS_CHECK(depth_.empty()) << "unbalanced JSON: " << depth_.size() << " open containers";
    return std::move(out_);
  }

  const std::string& Peek() const { return out_; }

 private:
  JsonWriter& Open(char c) {
    Separate();
    out_ += c;
    depth_.push_back(c);
    fresh_ = true;
    return *this;
  }
  JsonWriter& Close(char open) {
    MAS_CHECK(!depth_.empty() && depth_.back() == open)
        << "mismatched JSON close for '" << open << "'";
    depth_.pop_back();
    out_ += open == '{' ? '}' : ']';
    fresh_ = false;
    return *this;
  }
  JsonWriter& KeyThen(const std::string& key) {
    MAS_CHECK(!depth_.empty() && depth_.back() == '{') << "key outside object: " << key;
    Separate();
    out_ += '"';
    out_ += JsonEscape(key);
    out_ += "\":";
    pending_key_ = true;
    return *this;
  }
  void Separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;  // value follows its key directly
    }
    if (!fresh_ && !depth_.empty()) out_ += ',';
    fresh_ = false;
  }

  std::string out_;
  std::vector<char> depth_;
  bool fresh_ = true;        // no element yet in the current container
  bool pending_key_ = false; // a key was just written; next value attaches
};

}  // namespace mas
