// Deterministic random number generation.
//
// All stochastic components (tensor initialization for golden checks, the
// genetic-algorithm and MCTS tiling searches) draw from this generator so
// that every test, bench, and example is reproducible from a fixed seed.
#pragma once

#include <cstdint>
#include <vector>

namespace mas {

// xoshiro256** by Blackman & Vigna: small, fast, and statistically strong
// enough for workload generation and search heuristics.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Uniform 64-bit value.
  std::uint64_t Next();

  // Uniform in [0, bound). Requires bound > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform float in [lo, hi).
  float NextFloat(float lo, float hi);

  // Bernoulli trial with probability p of true.
  bool NextBool(double p = 0.5);

  // Standard normal via Box-Muller (cached pair).
  double NextGaussian();

  // Pick an index weighted by non-negative weights (at least one positive).
  std::size_t NextWeighted(const std::vector<double>& weights);

  // Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> Permutation(std::size_t n);

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mas
