// Small arithmetic helpers shared across the simulator and schedulers.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace mas {

// Ceiling division for non-negative integers. Requires b > 0.
template <typename T>
constexpr T CeilDiv(T a, T b) {
  return (a + b - 1) / b;
}

// Round `a` up to the next multiple of `b`. Requires b > 0.
template <typename T>
constexpr T RoundUp(T a, T b) {
  return CeilDiv(a, b) * b;
}

// Geometric mean of positive values; empty input -> 0.
inline double GeoMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    MAS_CHECK(v > 0.0) << "GeoMean requires positive values, got " << v;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

// All divisors of n in ascending order. Requires n >= 1.
inline std::vector<std::int64_t> Divisors(std::int64_t n) {
  MAS_CHECK(n >= 1) << "Divisors requires n >= 1, got " << n;
  std::vector<std::int64_t> small, large;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      small.push_back(d);
      if (d != n / d) large.push_back(n / d);
    }
  }
  for (auto it = large.rbegin(); it != large.rend(); ++it) small.push_back(*it);
  return small;
}

// Candidate tile sizes for a dimension of extent n: every divisor plus the
// powers of two <= n (deduplicated, ascending). Non-divisor tile sizes are
// legal — the last tile is simply smaller — and the paper's search space
// includes them.
inline std::vector<std::int64_t> TileCandidates(std::int64_t n) {
  std::vector<std::int64_t> cands = Divisors(n);
  for (std::int64_t p = 1; p <= n; p *= 2) {
    cands.push_back(p);
    if (p > (INT64_MAX / 2)) break;
  }
  std::sort(cands.begin(), cands.end());
  cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
  return cands;
}

}  // namespace mas
