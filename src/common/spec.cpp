#include "common/spec.h"

#include <set>

#include "cli/args.h"
#include "common/json_writer.h"
#include "common/status.h"

namespace mas {

ParsedSpec ParseSpec(const std::string& text, const std::string& flag,
                     const std::string& head_noun) {
  MAS_CHECK(!text.empty()) << "empty " << flag << " spec (grammar: kind[:key=value,...])";
  ParsedSpec spec;
  const std::size_t colon = text.find(':');
  spec.head = text.substr(0, colon);
  MAS_CHECK(!spec.head.empty()) << flag << " spec '" << text << "' has no " << head_noun;
  if (colon == std::string::npos) return spec;

  std::set<std::string> seen;
  std::size_t pos = colon + 1;
  MAS_CHECK(pos < text.size()) << flag << " spec '" << text << "' has an empty param list";
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string item =
        text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const std::size_t eq = item.find('=');
    MAS_CHECK(eq != std::string::npos && eq > 0 && eq + 1 < item.size())
        << flag << " param '" << item << "' is not key=value (spec '" << text << "')";
    const std::string key = item.substr(0, eq);
    MAS_CHECK(seen.insert(key).second)
        << flag << " spec '" << text << "' repeats param '" << key << "'";
    spec.params.emplace_back(
        key, cli::ParseFiniteDouble(item.substr(eq + 1), flag + " param '" + key + "'"));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return spec;
}

std::string SpecToString(const std::string& head, const SpecParams& params) {
  std::string out = head;
  for (std::size_t i = 0; i < params.size(); ++i) {
    out += i == 0 ? ":" : ",";
    out += params[i].first;
    out += '=';
    AppendJsonDouble(out, params[i].second);
  }
  return out;
}

bool SpecHas(const SpecParams& params, const std::string& key) {
  for (const auto& [k, v] : params) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

double SpecParam(const SpecParams& params, const std::string& key, double fallback) {
  for (const auto& [k, v] : params) {
    if (k == key) return v;
  }
  return fallback;
}

SpecParams SpecWith(const SpecParams& params, const std::string& key, double value) {
  SpecParams out = params;
  for (auto& [k, v] : out) {
    if (k == key) {
      v = value;
      return out;
    }
  }
  out.emplace_back(key, value);
  return out;
}

void CheckSpecKeys(const std::string& what, const SpecParams& params,
                   std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : params) {
    (void)value;
    bool known = false;
    for (const char* a : allowed) known = known || key == a;
    if (!known) {
      std::string list;
      for (const char* a : allowed) {
        if (!list.empty()) list += ", ";
        list += a;
      }
      MAS_FAIL() << what << " does not take param '" << key << "' (params: " << list << ")";
    }
  }
}

}  // namespace mas
