#include "common/fp16.h"

#include <cstring>

namespace mas {
namespace {

constexpr std::uint32_t kF32SignMask = 0x80000000u;
constexpr int kF32ExpBias = 127;
constexpr int kF16ExpBias = 15;

// memcpy-based bit casts (std::bit_cast is C++20).
std::uint32_t BitsOf(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}
float FloatOf(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

}  // namespace

bool Fp16::IsNan() const {
  return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
}

bool Fp16::IsInf() const {
  return (bits_ & 0x7FFFu) == 0x7C00u;
}

std::uint16_t Fp16::FromFloat(float value) {
  const std::uint32_t f = BitsOf(value);
  const std::uint16_t sign = static_cast<std::uint16_t>((f & kF32SignMask) >> 16);
  const std::uint32_t abs = f & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {
    // Inf or NaN. Preserve NaN-ness by forcing a nonzero mantissa.
    const std::uint16_t mant = (abs > 0x7F800000u) ? 0x0200u : 0x0000u;
    return static_cast<std::uint16_t>(sign | 0x7C00u | mant);
  }

  const int exp32 = static_cast<int>(abs >> 23) - kF32ExpBias;
  std::uint32_t mant32 = abs & 0x007FFFFFu;

  if (exp32 > 15) {
    // Overflows fp16 range -> infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  if (exp32 >= -14) {
    // Normal fp16. Round mantissa 23 -> 10 bits, round-to-nearest-even.
    std::uint32_t mant = mant32 >> 13;
    const std::uint32_t rem = mant32 & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (mant & 1u))) {
      ++mant;
    }
    std::uint32_t result = (static_cast<std::uint32_t>(exp32 + kF16ExpBias) << 10) + mant;
    // Mantissa carry may bump the exponent (and may legitimately reach inf).
    return static_cast<std::uint16_t>(sign | result);
  }

  if (exp32 >= -24) {
    // Subnormal fp16: implicit leading 1 joins the mantissa, then shift.
    mant32 |= 0x00800000u;
    // Value = mant32 * 2^(exp32-23); fp16 subnormal = mant16 * 2^-24,
    // so mant16 = mant32 >> (-exp32 - 1), with shift in [14, 23].
    const int shift = -exp32 - 1;
    std::uint32_t mant = mant32 >> shift;
    const std::uint32_t rem = mant32 & ((1u << shift) - 1);
    const std::uint32_t half = 1u << (shift - 1);
    if (rem > half || (rem == half && (mant & 1u))) {
      ++mant;
    }
    return static_cast<std::uint16_t>(sign | mant);
  }

  // Underflows to signed zero.
  return sign;
}

float Fp16::ToFloatImpl(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1Fu;
  const std::uint32_t mant = bits & 0x03FFu;

  if (exp == 0x1Fu) {  // inf / nan
    return FloatOf(sign | 0x7F800000u | (mant << 13));
  }
  if (exp == 0) {
    if (mant == 0) return FloatOf(sign);  // signed zero
    // Subnormal: normalize by shifting the mantissa up.
    int e = -1;
    std::uint32_t m = mant;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x0400u) == 0);
    const std::uint32_t exp32 = static_cast<std::uint32_t>(kF32ExpBias - kF16ExpBias - e);
    return FloatOf(sign | (exp32 << 23) | ((m & 0x03FFu) << 13));
  }
  const std::uint32_t exp32 = exp + (kF32ExpBias - kF16ExpBias);
  return FloatOf(sign | (exp32 << 23) | (mant << 13));
}

}  // namespace mas
