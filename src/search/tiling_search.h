// Offline tiling-factor search (paper §4.2, Fig. 7).
//
// The multi-tiered tiling scheme exposes four factors (B_b, H_h, N_Q, N_KV);
// the search evaluates candidate configurations against the simulator
// (Timeloop's role in the paper) and returns the best-latency feasible
// configuration. Three strategies are provided, as in the paper:
//   * GridSearch    — exhaustive over the candidate lattice (used for the
//                     DaVinci NPU's structured memory model);
//   * GeneticSearch — population-based refinement (GA);
//   * MctsSearch    — Monte Carlo Tree Search with UCB over the sequential
//                     factor choices.
// Every strategy records a convergence trace (best cycles vs evaluations)
// which the Fig. 7 bench replots.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "dataflow/attention_shape.h"
#include "schedulers/scheduler.h"
#include "sim/energy_model.h"
#include "sim/hardware_config.h"

namespace mas::search {

// Objective wrapper: evaluates tilings for one (scheduler, shape, hardware)
// triple, with memoization and infeasibility pruning.
class TilingProblem {
 public:
  TilingProblem(const Scheduler& scheduler, const AttentionShape& shape,
                const sim::HardwareConfig& hw, const sim::EnergyModel& em);

  // Candidate values per factor (divisors plus powers of two, §4.2's
  // "distinct tiling search spaces").
  const std::vector<std::int64_t>& bb_candidates() const { return bb_; }
  const std::vector<std::int64_t>& hh_candidates() const { return hh_; }
  const std::vector<std::int64_t>& nq_candidates() const { return nq_; }
  const std::vector<std::int64_t>& nkv_candidates() const { return nkv_; }

  // Simulated cycles for `tiling`; +inf when infeasible (fails the
  // scheduler's Fits() or exceeds the task-graph budget). Memoized.
  double Evaluate(const TilingConfig& tiling);

  // Full simulation of a (feasible) tiling.
  sim::SimResult Simulate(const TilingConfig& tiling) const;

  bool Feasible(const TilingConfig& tiling) const;

  std::int64_t evaluations() const { return evaluations_; }
  const AttentionShape& shape() const { return shape_; }
  const Scheduler& scheduler() const { return scheduler_; }

  static constexpr double kInfeasible = std::numeric_limits<double>::infinity();

 private:
  const Scheduler& scheduler_;
  AttentionShape shape_;
  const sim::HardwareConfig& hw_;
  const sim::EnergyModel& em_;
  std::vector<std::int64_t> bb_, hh_, nq_, nkv_;
  std::unordered_map<std::uint64_t, double> cache_;
  std::int64_t evaluations_ = 0;
};

// One point of the Fig. 7 convergence trace.
struct TraceEntry {
  std::int64_t evaluation;  // cumulative simulator evaluations
  double best_cycles;       // incumbent at that point
};

struct SearchResult {
  TilingConfig best;
  double best_cycles = TilingProblem::kInfeasible;
  std::int64_t evaluations = 0;
  std::vector<TraceEntry> trace;

  bool found() const { return best_cycles != TilingProblem::kInfeasible; }
};

struct GridOptions {
  std::int64_t max_evaluations = 100000;
  bool coarse = false;  // restrict to a small power-of-two lattice (fast)
  // Per-dimension lattice sizes used when `coarse` is set (geometric samples
  // across [1, extent], endpoints always kept).
  int coarse_keep_bb = 3;
  int coarse_keep_hh = 5;
  int coarse_keep_nq = 8;
  int coarse_keep_nkv = 8;
};
SearchResult GridSearch(TilingProblem& problem, const GridOptions& options = {});

struct GaOptions {
  std::int64_t population = 24;
  std::int64_t generations = 40;
  double crossover_rate = 0.8;
  double mutation_rate = 0.25;
  std::int64_t tournament = 3;
  std::int64_t elite = 2;
  std::uint64_t seed = 1;
};
SearchResult GeneticSearch(TilingProblem& problem, const GaOptions& options = {});

struct MctsOptions {
  std::int64_t iterations = 1000;
  double exploration = 1.2;  // UCB exploration constant
  std::uint64_t seed = 1;
};
SearchResult MctsSearch(TilingProblem& problem, const MctsOptions& options = {});

// Fast good-enough tiling: coarse grid over a power-of-two lattice. Used by
// benches and examples as the default offline-tuned configuration.
TilingConfig AutoTile(const Scheduler& scheduler, const AttentionShape& shape,
                      const sim::HardwareConfig& hw, const sim::EnergyModel& em);

}  // namespace mas::search
