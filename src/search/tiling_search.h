// Offline tiling-factor search (paper §4.2, Fig. 7).
//
// The multi-tiered tiling scheme exposes four factors (B_b, H_h, N_Q, N_KV);
// the search evaluates candidate configurations against the simulator
// (Timeloop's role in the paper) and returns the best-latency feasible
// configuration. Three strategies are provided, as in the paper — "grid"
// (exhaustive over the candidate lattice, used for the DaVinci NPU's
// structured memory model), "ga" (population-based refinement), and "mcts"
// (UCB tree search over the sequential factor choices). They live behind
// the search::Strategy interface and StrategyRegistry in search/strategy.h;
// the GridSearch/GeneticSearch/MctsSearch free functions below are compat
// wrappers over one SearchSpec and return byte-identical SearchResults.
// Every strategy records a convergence trace (best cycles vs evaluations)
// which the Fig. 7 bench replots.
//
// All three strategies batch their simulator calls across the thread pool
// when `jobs > 1` (grid cells, GA generations, speculative MCTS leaves); the
// reductions replay in the serial order, so a SearchResult — best, trace,
// evaluation counts — is byte-identical for any thread count.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dataflow/attention_shape.h"
#include "schedulers/scheduler.h"
#include "sim/energy_model.h"
#include "sim/hardware_config.h"

namespace mas::search {

// Objective wrapper: evaluates tilings for one (scheduler, shape, hardware)
// triple, with memoization and infeasibility pruning.
//
// Threading contract: the public API is driven by ONE orchestrating thread
// (the search loop). Parallelism is internal — EvaluateBatch/Prefetch fan
// simulator calls out to worker threads, each with its own engine, and the
// workers never touch the memo cache or the evaluations() counter. The
// cache is sharded + locked so those internals stay safe if a future caller
// overlaps Prefetch with cache reads, not to make Evaluate() itself
// concurrently callable.
class TilingProblem {
 public:
  TilingProblem(const Scheduler& scheduler, const AttentionShape& shape,
                const sim::HardwareConfig& hw, const sim::EnergyModel& em);

  // Candidate values per factor (divisors plus powers of two, §4.2's
  // "distinct tiling search spaces").
  const std::vector<std::int64_t>& bb_candidates() const { return bb_; }
  const std::vector<std::int64_t>& hh_candidates() const { return hh_; }
  const std::vector<std::int64_t>& nq_candidates() const { return nq_; }
  const std::vector<std::int64_t>& nkv_candidates() const { return nkv_; }

  // Simulated cycles for `tiling`; +inf when infeasible (fails the
  // scheduler's Fits() or exceeds the task-graph budget). Memoized in a
  // sharded, collision-free cache keyed by the full tiling tuple.
  double Evaluate(const TilingConfig& tiling);

  // Evaluates a batch of tilings using up to `jobs` worker threads, filling
  // `cycles[i]` for `tilings[i]`. Results — including the evaluations()
  // counter — are byte-identical to calling Evaluate() serially in order:
  // unique uncached tilings are simulated in parallel (each worker owns a
  // reusable engine), then the memo replay runs in the serial order.
  void EvaluateBatch(const std::vector<TilingConfig>& tilings, std::vector<double>& cycles,
                     int jobs);

  // Speculatively warms the cache with `tilings` (parallel, up to `jobs`
  // workers) WITHOUT advancing evaluations(): a later Evaluate() that hits a
  // speculative entry promotes it and counts it then, exactly as if it had
  // simulated on the spot. Lets MCTS prefetch predicted rollout leaves while
  // staying byte-identical to the serial search.
  void Prefetch(const TilingConfig* tilings, std::size_t count, int jobs);

  // Reads the cached cycles for `tiling` (speculative or not) without
  // promoting or counting anything. Returns false when not cached.
  bool PeekCycles(const TilingConfig& tiling, double* cycles) const;

  // Full simulation of a (feasible) tiling.
  sim::SimResult Simulate(const TilingConfig& tiling) const;

  bool Feasible(const TilingConfig& tiling) const;

  std::int64_t evaluations() const { return evaluations_; }
  const AttentionShape& shape() const { return shape_; }
  const Scheduler& scheduler() const { return scheduler_; }

  // Evaluate via the seed path instead: a fresh engine per simulation running
  // the polling reference scheduler, no arena reuse. Produces identical
  // results; exists so bench_engine_micro (and tests) can compare the
  // event-driven fast path against the seed baseline in-process.
  void set_reference_mode(bool on) { reference_mode_ = on; }

  static constexpr double kInfeasible = std::numeric_limits<double>::infinity();

 private:
  // Collision-free cache key: the full tiling tuple (the seed packed the four
  // factors into 16-bit lanes of one u64, which silently collided — and could
  // return a wrong cached cycle count — once any extent reached 65536).
  struct TilingKey {
    std::int64_t bb, hh, nq, nkv;
    bool operator==(const TilingKey& o) const {
      return bb == o.bb && hh == o.hh && nq == o.nq && nkv == o.nkv;
    }
  };
  struct TilingKeyHash {
    std::size_t operator()(const TilingKey& k) const;
  };
  struct CacheEntry {
    double cycles = kInfeasible;
    bool speculative = false;  // prefetched; not yet counted in evaluations_
  };
  struct CacheShard {
    mutable std::mutex mu;
    std::unordered_map<TilingKey, CacheEntry, TilingKeyHash> map;
  };
  static constexpr std::size_t kCacheShards = 16;

  static TilingKey KeyOf(const TilingConfig& t) { return {t.bb, t.hh, t.nq, t.nkv}; }
  CacheShard& ShardFor(const TilingKey& key) const;
  // Simulated cycles (or kInfeasible), reusing `engine` across calls.
  double Measure(const TilingConfig& tiling, sim::Engine* engine) const;
  void EnsureWorkerEngines(std::size_t workers);

  const Scheduler& scheduler_;
  AttentionShape shape_;
  // Stored by value: callers routinely pass temporaries (a HardwareConfig
  // built inline at the call site), which silently dangled when these were
  // const references.
  sim::HardwareConfig hw_;
  sim::EnergyModel em_;
  std::vector<std::int64_t> bb_, hh_, nq_, nkv_;
  mutable std::array<CacheShard, kCacheShards> cache_;
  // One reusable engine per worker (index 0 doubles as the serial engine).
  std::vector<std::unique_ptr<sim::Engine>> engines_;
  std::int64_t evaluations_ = 0;
  bool reference_mode_ = false;
};

// One point of the Fig. 7 convergence trace.
struct TraceEntry {
  std::int64_t evaluation;  // cumulative simulator evaluations
  double best_cycles;       // incumbent at that point
};

struct SearchResult {
  TilingConfig best;
  double best_cycles = TilingProblem::kInfeasible;
  std::int64_t evaluations = 0;
  std::vector<TraceEntry> trace;

  bool found() const { return best_cycles != TilingProblem::kInfeasible; }
};

// ---------------------------------------------------------------------------
// Compat wrappers. The per-strategy option structs below predate
// search::SearchSpec (strategy.h) and forward to the registered strategies;
// results are byte-identical to building the equivalent SearchSpec and
// calling RunSearch(). New code should use SearchSpec directly.
// ---------------------------------------------------------------------------

struct GridOptions {
  std::int64_t max_evaluations = 100000;
  bool coarse = false;  // restrict to a small power-of-two lattice (fast)
  // Per-dimension lattice sizes used when `coarse` is set (geometric samples
  // across [1, extent], endpoints always kept).
  int coarse_keep_bb = 3;
  int coarse_keep_hh = 5;
  int coarse_keep_nq = 8;
  int coarse_keep_nkv = 8;
  // Simulator worker threads; results are identical for any value.
  int jobs = 1;
};
SearchResult GridSearch(TilingProblem& problem, const GridOptions& options = {});

struct GaOptions {
  std::int64_t population = 24;
  std::int64_t generations = 40;
  double crossover_rate = 0.8;
  double mutation_rate = 0.25;
  std::int64_t tournament = 3;
  std::int64_t elite = 2;
  std::uint64_t seed = 1;
  // Simulator worker threads (one generation's offspring evaluate as a
  // batch); results are identical for any value.
  int jobs = 1;
};
SearchResult GeneticSearch(TilingProblem& problem, const GaOptions& options = {});

struct MctsOptions {
  std::int64_t iterations = 1000;
  double exploration = 1.2;  // UCB exploration constant
  std::uint64_t seed = 1;
  // Simulator worker threads. Parallelism is speculative (predicted rollout
  // leaves are prefetched into the evaluation cache on a cloned tree); the
  // authoritative search replays serially, so results are identical for any
  // value.
  int jobs = 1;
};
SearchResult MctsSearch(TilingProblem& problem, const MctsOptions& options = {});

// Fast good-enough tiling: coarse grid over a power-of-two lattice. Used by
// benches and examples as the default offline-tuned configuration. `jobs`
// parallelizes the grid evaluation; the chosen tiling is identical for any
// thread count.
TilingConfig AutoTile(const Scheduler& scheduler, const AttentionShape& shape,
                      const sim::HardwareConfig& hw, const sim::EnergyModel& em,
                      int jobs = 1);

}  // namespace mas::search
