#include "search/strategy.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>

#include "common/rng.h"
#include "common/status.h"

namespace mas::search {

namespace {

// Restricted power-of-two lattice for the coarse grid: at most `keep` values
// sampled geometrically across [1, extent] (both endpoints always kept).
// Sampling the whole range matters: on memory-tight configurations the
// feasible region sits at *small* tile sizes, so keeping only the largest
// powers of two would leave nothing between 1 and the first feasible value.
std::vector<std::int64_t> CoarseLattice(std::int64_t extent, int keep) {
  std::vector<std::int64_t> all = {extent};
  for (std::int64_t v = 1; v < extent; v *= 2) all.push_back(v);
  std::sort(all.begin(), all.end());
  if (static_cast<int>(all.size()) <= keep || keep < 2) return all;
  std::vector<std::int64_t> values;
  const double step = static_cast<double>(all.size() - 1) / (keep - 1);
  for (int i = 0; i < keep; ++i) {
    values.push_back(all[static_cast<std::size_t>(std::llround(i * step))]);
  }
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

void RecordTrace(SearchResult& result, std::int64_t evaluation, double cycles) {
  if (cycles < result.best_cycles) {
    result.best_cycles = cycles;
    result.trace.push_back({evaluation, cycles});
  }
}

// ------------------------------------------------------------------- grid

class GridStrategy final : public Strategy {
 public:
  const StrategyInfo& info() const override {
    static const StrategyInfo kInfo{
        "grid", "exhaustive (or coarse power-of-two) scan of the candidate lattice"};
    return kInfo;
  }

  SearchResult Run(TilingProblem& problem, const SearchSpec& spec) const override {
    SearchResult result;
    const auto bbs = spec.coarse
                         ? CoarseLattice(problem.shape().batch, spec.coarse_keep_bb)
                         : problem.bb_candidates();
    const auto hhs = spec.coarse
                         ? CoarseLattice(problem.shape().heads, spec.coarse_keep_hh)
                         : problem.hh_candidates();
    const auto nqs = spec.coarse
                         ? CoarseLattice(problem.shape().seq_len, spec.coarse_keep_nq)
                         : problem.nq_candidates();
    const auto nkvs = spec.coarse
                          ? CoarseLattice(problem.shape().kv(), spec.coarse_keep_nkv)
                          : problem.nkv_candidates();

    // Enumerate the scan up front (bounded by the evaluation budget — an
    // exhausted budget terminates the WHOLE scan, not just the innermost
    // loop), then evaluate as one batch and reduce in grid order.
    std::vector<TilingConfig> cells;
    const std::int64_t budget = std::max<std::int64_t>(spec.budget, 0);
    for (std::int64_t bb : bbs) {
      for (std::int64_t hh : hhs) {
        for (std::int64_t nq : nqs) {
          for (std::int64_t nkv : nkvs) {
            if (static_cast<std::int64_t>(cells.size()) >= budget) goto scan_done;
            cells.push_back(TilingConfig{bb, hh, nq, nkv});
          }
        }
      }
    }
  scan_done:
    std::vector<double> cycles;
    problem.EvaluateBatch(cells, cycles, spec.jobs);

    std::int64_t evals = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      ++evals;
      if (cycles[i] < result.best_cycles) result.best = cells[i];
      RecordTrace(result, evals, cycles[i]);
    }
    result.evaluations = evals;
    return result;
  }
};

// --------------------------------------------------------------------- ga

class GaStrategy final : public Strategy {
 public:
  const StrategyInfo& info() const override {
    static const StrategyInfo kInfo{
        "ga", "genetic algorithm: tournament selection, crossover, mutation, elitism"};
    return kInfo;
  }

  SearchResult Run(TilingProblem& problem, const SearchSpec& spec) const override {
    MAS_CHECK(spec.population >= 4) << "GA population too small";
    Rng rng(spec.seed);
    const std::vector<const std::vector<std::int64_t>*> spaces = {
        &problem.bb_candidates(), &problem.hh_candidates(), &problem.nq_candidates(),
        &problem.nkv_candidates()};

    using Genome = std::array<std::size_t, 4>;
    auto decode = [&](const Genome& g) {
      return TilingConfig{(*spaces[0])[g[0]], (*spaces[1])[g[1]], (*spaces[2])[g[2]],
                          (*spaces[3])[g[3]]};
    };
    auto random_genome = [&]() {
      Genome g;
      for (std::size_t d = 0; d < 4; ++d) {
        g[d] = static_cast<std::size_t>(rng.NextBelow(spaces[d]->size()));
      }
      return g;
    };

    SearchResult result;
    std::int64_t evals = 0;
    // Evaluates a cohort of genomes as one parallel batch, then replays the
    // best/trace reduction in cohort order — the same sequence of Evaluate()
    // calls the serial loop made (genome creation never reads fitness
    // results within a generation, so batching does not disturb the rng
    // stream).
    std::vector<TilingConfig> batch_tilings;
    std::vector<double> batch_cycles;
    auto evaluate_cohort = [&](const std::vector<Genome>& cohort) {
      batch_tilings.clear();
      for (const Genome& g : cohort) batch_tilings.push_back(decode(g));
      problem.EvaluateBatch(batch_tilings, batch_cycles, spec.jobs);
      std::vector<double> scores(cohort.size());
      for (std::size_t i = 0; i < cohort.size(); ++i) {
        ++evals;
        if (batch_cycles[i] < result.best_cycles) result.best = batch_tilings[i];
        RecordTrace(result, evals, batch_cycles[i]);
        scores[i] = batch_cycles[i];
      }
      return scores;
    };

    std::vector<Genome> population;
    for (std::int64_t i = 0; i < spec.population; ++i) {
      population.push_back(random_genome());
    }
    std::vector<double> scores = evaluate_cohort(population);

    auto tournament_pick = [&]() -> const Genome& {
      std::size_t best = static_cast<std::size_t>(rng.NextBelow(population.size()));
      for (std::int64_t t = 1; t < spec.tournament; ++t) {
        const std::size_t cand = static_cast<std::size_t>(rng.NextBelow(population.size()));
        if (scores[cand] < scores[best]) best = cand;
      }
      return population[best];
    };

    for (std::int64_t gen = 0; gen < spec.generations; ++gen) {
      // Common-budget cap, checked at cohort granularity so the evaluation
      // stream stays identical to the uncapped run up to the cut.
      if (evals >= spec.budget) break;
      // Elitism: carry the best genomes over unchanged.
      std::vector<std::size_t> order(population.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });
      std::vector<Genome> next;
      std::vector<double> next_scores;
      for (std::int64_t e = 0;
           e < spec.elite && e < static_cast<std::int64_t>(order.size()); ++e) {
        next.push_back(population[order[static_cast<std::size_t>(e)]]);
        next_scores.push_back(scores[order[static_cast<std::size_t>(e)]]);
      }
      // Create the whole offspring cohort first (pure rng work against the
      // *previous* generation's scores), then evaluate it as one batch.
      std::vector<Genome> offspring;
      while (static_cast<std::int64_t>(next.size() + offspring.size()) < spec.population) {
        Genome child = tournament_pick();
        if (rng.NextBool(spec.crossover_rate)) {
          const Genome& other = tournament_pick();
          for (std::size_t d = 0; d < 4; ++d) {
            if (rng.NextBool()) child[d] = other[d];
          }
        }
        for (std::size_t d = 0; d < 4; ++d) {
          if (rng.NextBool(spec.mutation_rate)) {
            child[d] = static_cast<std::size_t>(rng.NextBelow(spaces[d]->size()));
          }
        }
        offspring.push_back(child);
      }
      std::vector<double> offspring_scores = evaluate_cohort(offspring);
      for (std::size_t i = 0; i < offspring.size(); ++i) {
        next.push_back(offspring[i]);
        next_scores.push_back(offspring_scores[i]);
      }
      population = std::move(next);
      scores = std::move(next_scores);
    }
    result.evaluations = evals;
    return result;
  }
};

// ------------------------------------------------------------------- mcts

// MCTS over the sequential factor decisions hh -> nq -> nkv -> bb. Each tree
// node fixes a prefix of factors; leaves are complete tilings. Rollouts
// complete the prefix uniformly at random; rewards are 1/cycles.
struct MctsNode {
  std::vector<std::int64_t> child_visits;
  std::vector<double> child_value;  // mean reward
  std::vector<std::unique_ptr<MctsNode>> children;
  std::int64_t visits = 0;
};

std::unique_ptr<MctsNode> CloneTree(const MctsNode& node) {
  auto copy = std::make_unique<MctsNode>();
  copy->child_visits = node.child_visits;
  copy->child_value = node.child_value;
  copy->visits = node.visits;
  copy->children.resize(node.children.size());
  for (std::size_t c = 0; c < node.children.size(); ++c) {
    if (node.children[c]) copy->children[c] = CloneTree(*node.children[c]);
  }
  return copy;
}

using Spaces = std::vector<const std::vector<std::int64_t>*>;

// Selection + expansion down the four decision levels (UCB1; unvisited
// children first, random among them). Mutates the tree only by expanding
// empty child slots.
std::array<std::size_t, 4> SelectLeaf(MctsNode& root, Rng& rng, const Spaces& spaces,
                                      double exploration) {
  std::array<std::size_t, 4> choice{};
  MctsNode* node = &root;
  for (std::size_t depth = 0; depth < 4; ++depth) {
    const std::size_t width = spaces[depth]->size();
    if (node->children.empty()) {
      node->children.resize(width);
      node->child_visits.assign(width, 0);
      node->child_value.assign(width, 0.0);
    }
    std::vector<std::size_t> unvisited;
    for (std::size_t c = 0; c < width; ++c) {
      if (node->child_visits[c] == 0) unvisited.push_back(c);
    }
    std::size_t pick;
    if (!unvisited.empty()) {
      pick = unvisited[rng.NextBelow(unvisited.size())];
    } else {
      double best_ucb = -1.0;
      pick = 0;
      for (std::size_t c = 0; c < width; ++c) {
        const double exploit = node->child_value[c];
        const double explore =
            exploration * std::sqrt(std::log(static_cast<double>(node->visits) + 1.0) /
                                    static_cast<double>(node->child_visits[c]));
        if (exploit + explore > best_ucb) {
          best_ucb = exploit + explore;
          pick = c;
        }
      }
    }
    choice[depth] = pick;
    if (!node->children[pick]) node->children[pick] = std::make_unique<MctsNode>();
    node = node->children[pick].get();
  }
  return choice;
}

void Backprop(MctsNode& root, const std::array<std::size_t, 4>& choice, double reward) {
  MctsNode* cur = &root;
  cur->visits += 1;
  for (std::size_t depth = 0; depth < 4; ++depth) {
    const std::size_t c = choice[depth];
    cur->child_visits[c] += 1;
    cur->child_value[c] +=
        (reward - cur->child_value[c]) / static_cast<double>(cur->child_visits[c]);
    cur = cur->children[c].get();
    cur->visits += 1;
  }
}

class MctsStrategy final : public Strategy {
 public:
  const StrategyInfo& info() const override {
    static const StrategyInfo kInfo{
        "mcts", "Monte Carlo Tree Search with UCB over the sequential factor choices"};
    return kInfo;
  }

  SearchResult Run(TilingProblem& problem, const SearchSpec& spec) const override {
    Rng rng(spec.seed);
    const Spaces spaces = {&problem.hh_candidates(), &problem.nq_candidates(),
                           &problem.nkv_candidates(), &problem.bb_candidates()};
    auto decode = [&](const std::array<std::size_t, 4>& g) {
      return TilingConfig{(*spaces[3])[g[3]], (*spaces[0])[g[0]], (*spaces[1])[g[1]],
                          (*spaces[2])[g[2]]};
    };

    SearchResult result;
    std::int64_t evals = 0;
    auto reward_of = [&](const std::array<std::size_t, 4>& g) {
      const TilingConfig tiling = decode(g);
      const double cycles = problem.Evaluate(tiling);
      ++evals;
      if (cycles < result.best_cycles) result.best = tiling;
      RecordTrace(result, evals, cycles);
      if (cycles == TilingProblem::kInfeasible) return 0.0;
      return 1e6 / cycles;
    };

    MctsNode root;
    // Common-budget cap: each iteration is one Evaluate() call.
    const std::int64_t iterations = std::min(spec.iterations, spec.budget);
    const std::int64_t wave = spec.jobs > 1 ? spec.jobs : 1;
    std::vector<TilingConfig> leaves;
    std::int64_t iter = 0;
    while (iter < iterations) {
      const std::int64_t batch = std::min(wave, iterations - iter);
      if (batch > 1) {
        // Speculation: predict the next `batch` rollout leaves on a clone of
        // the tree (seeded with a copy of the rng, so the first prediction
        // is exact) and prefetch their simulations in parallel. Unknown
        // leaves backpropagate a zero reward on the clone — a virtual loss
        // that steers later predictions away, for diversity. The
        // authoritative iterations below replay serially against the warmed
        // cache.
        std::unique_ptr<MctsNode> scout = CloneTree(root);
        Rng scout_rng = rng;
        leaves.clear();
        for (std::int64_t j = 0; j < batch; ++j) {
          const std::array<std::size_t, 4> choice =
              SelectLeaf(*scout, scout_rng, spaces, spec.exploration);
          const TilingConfig tiling = decode(choice);
          leaves.push_back(tiling);
          double predicted = 0.0;
          double cached;
          if (problem.PeekCycles(tiling, &cached) && cached != TilingProblem::kInfeasible) {
            predicted = 1e6 / cached;
          }
          Backprop(*scout, choice, predicted);
        }
        problem.Prefetch(leaves.data(), leaves.size(), spec.jobs);
      }
      for (std::int64_t j = 0; j < batch; ++j) {
        const std::array<std::size_t, 4> choice =
            SelectLeaf(root, rng, spaces, spec.exploration);
        Backprop(root, choice, reward_of(choice));
      }
      iter += batch;
    }
    result.evaluations = evals;
    return result;
  }
};

}  // namespace

SearchSpec SearchSpec::AutoTileDefault(int jobs) {
  SearchSpec spec;
  spec.strategy = "grid";
  spec.coarse = true;
  spec.jobs = jobs;
  return spec;
}

std::string SearchSpec::IdentityKey() const {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "spec:" << strategy << ",b=" << budget << ",seed=" << seed;
  if (strategy == "grid") {
    os << ",coarse=" << coarse << ',' << coarse_keep_bb << ',' << coarse_keep_hh << ','
       << coarse_keep_nq << ',' << coarse_keep_nkv;
  } else if (strategy == "ga") {
    os << ",pop=" << population << ",gen=" << generations << ",cx=" << crossover_rate
       << ",mut=" << mutation_rate << ",tour=" << tournament << ",elite=" << elite;
  } else if (strategy == "mcts") {
    os << ",iter=" << iterations << ",explore=" << exploration;
  } else {
    // Unknown (user-registered) strategy: include every knob conservatively.
    os << ",coarse=" << coarse << ',' << coarse_keep_bb << ',' << coarse_keep_hh << ','
       << coarse_keep_nq << ',' << coarse_keep_nkv << ",pop=" << population
       << ",gen=" << generations << ",cx=" << crossover_rate << ",mut=" << mutation_rate
       << ",tour=" << tournament << ",elite=" << elite << ",iter=" << iterations
       << ",explore=" << exploration;
  }
  return os.str();
}

StrategyRegistry& StrategyRegistry::Instance() {
  static StrategyRegistry* registry = new StrategyRegistry();  // never destroyed
  return *registry;
}

void StrategyRegistry::EnsureBuiltins() const {
  std::call_once(builtins_once_, [this] {
    auto& self = const_cast<StrategyRegistry&>(*this);
    self.Register({"grid", GridStrategy().info().summary},
                  [] { return std::make_unique<GridStrategy>(); });
    self.Register({"ga", GaStrategy().info().summary},
                  [] { return std::make_unique<GaStrategy>(); });
    self.Register({"mcts", MctsStrategy().info().summary},
                  [] { return std::make_unique<MctsStrategy>(); });
  });
}

void StrategyRegistry::Register(StrategyInfo info, Factory factory) {
  MAS_CHECK(!info.name.empty()) << "strategy registration needs a name";
  MAS_CHECK(factory != nullptr) << "strategy '" << info.name << "' registered without factory";
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    MAS_CHECK(e.info.name != info.name)
        << "strategy name '" << info.name << "' registered twice";
  }
  entries_.push_back(Entry{std::move(info), std::move(factory), nullptr});
}

StrategyRegistry::Entry* StrategyRegistry::FindEntryLocked(const std::string& name) const {
  for (Entry& e : entries_) {
    if (e.info.name == name) return &e;
  }
  return nullptr;
}

const Strategy& StrategyRegistry::Get(const std::string& name) const {
  EnsureBuiltins();
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry* e = FindEntryLocked(name);
    if (e != nullptr) {
      if (e->instance == nullptr) e->instance = e->factory();
      return *e->instance;
    }
  }
  MAS_FAIL() << "unknown search strategy '" << name << "'; options: " << AvailableNames();
}

const StrategyInfo* StrategyRegistry::Find(const std::string& name) const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = FindEntryLocked(name);
  return e == nullptr ? nullptr : &e->info;
}

std::vector<StrategyInfo> StrategyRegistry::List() const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StrategyInfo> out;
  for (const Entry& e : entries_) out.push_back(e.info);
  return out;
}

std::string StrategyRegistry::AvailableNames() const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  std::string names;
  for (const Entry& e : entries_) {
    if (!names.empty()) names += ", ";
    names += "'" + e.info.name + "'";
  }
  return names;
}

SearchResult RunSearch(TilingProblem& problem, const SearchSpec& spec) {
  return StrategyRegistry::Instance().Get(spec.strategy).Run(problem, spec);
}

}  // namespace mas::search
