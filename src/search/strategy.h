// search::Strategy — the pluggable search surface behind the offline tuning
// phase (paper §4.2).
//
// Grid / GA / MCTS used to be three unrelated free functions with
// copy-pasted option structs; they are now registry-selectable strategies
// ("grid", "ga", "mcts") behind one SearchSpec. The legacy free functions in
// tiling_search.h remain as compat wrappers and return byte-identical
// SearchResults.
//
// SearchSpec carries the fields every strategy honors (budget / seed / jobs)
// plus per-strategy knobs; a strategy reads only its own section. Strategies
// are stateless (all run state lives in locals and the TilingProblem), so
// the registry hands out shared singleton instances.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "search/tiling_search.h"

namespace mas::search {

// One spec for every search strategy.
struct SearchSpec {
  std::string strategy = "grid";

  // --- common: honored by every strategy ---
  // Hard cap on simulator evaluations. Grid truncates its scan to this many
  // cells; GA stops issuing cohorts and MCTS stops iterating once the count
  // is reached (checked at cohort / iteration granularity).
  std::int64_t budget = 100000;
  std::uint64_t seed = 1;  // rng seed for the stochastic strategies
  // Simulator worker threads; every strategy is byte-identical for any value
  // (parallelism is batch prefetch + serial memo replay).
  int jobs = 1;

  // --- "grid" ---
  bool coarse = false;  // restrict to a small power-of-two lattice (fast)
  // Per-dimension lattice sizes used when `coarse` is set (geometric samples
  // across [1, extent], endpoints always kept).
  int coarse_keep_bb = 3;
  int coarse_keep_hh = 5;
  int coarse_keep_nq = 8;
  int coarse_keep_nkv = 8;

  // --- "ga" ---
  std::int64_t population = 24;
  std::int64_t generations = 40;
  double crossover_rate = 0.8;
  double mutation_rate = 0.25;
  std::int64_t tournament = 3;
  std::int64_t elite = 2;

  // --- "mcts" ---
  std::int64_t iterations = 1000;
  double exploration = 1.2;  // UCB exploration constant

  // The spec AutoTile() runs: the coarse power-of-two grid with default
  // keeps — the repo's "offline-tuned" default configuration.
  static SearchSpec AutoTileDefault(int jobs = 1);

  // Stable fingerprint of every field that can change this spec's search
  // outcome (`jobs` excluded: results are identical for any value; inactive
  // strategies' knobs excluded for the built-in names). The planner appends
  // it to plan keys so plans tuned under different specs never alias in a
  // plan store — a warm cache cannot silently override a newly requested
  // strategy or budget.
  std::string IdentityKey() const;
};

struct StrategyInfo {
  std::string name;     // registry key, e.g. "grid"
  std::string summary;  // one-line description for --list output
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual const StrategyInfo& info() const = 0;
  // Runs the search. Must drive all simulator calls through `problem` so
  // memoization, evaluation counting, and the jobs-independence guarantee
  // hold (see TilingProblem's threading contract).
  virtual SearchResult Run(TilingProblem& problem, const SearchSpec& spec) const = 0;
};

// String-keyed strategy catalog, mirroring SchedulerRegistry. Strategies are
// stateless; Get() returns a process-lifetime singleton instance.
class StrategyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Strategy>()>;

  static StrategyRegistry& Instance();

  // Throws when the name is already taken.
  void Register(StrategyInfo info, Factory factory);

  // Unknown names throw an Error listing the available set.
  const Strategy& Get(const std::string& name) const;
  const StrategyInfo* Find(const std::string& name) const;  // nullptr if unknown

  std::vector<StrategyInfo> List() const;  // registration order
  std::string AvailableNames() const;      // "'grid', 'ga', 'mcts'"

 private:
  struct Entry {
    StrategyInfo info;
    Factory factory;
    std::unique_ptr<Strategy> instance;  // created lazily by Get()
  };

  StrategyRegistry() = default;
  void EnsureBuiltins() const;
  Entry* FindEntryLocked(const std::string& name) const;

  mutable std::once_flag builtins_once_;
  mutable std::mutex mu_;
  mutable std::deque<Entry> entries_;  // deque: Get() references stay stable
};

// Looks spec.strategy up in the registry and runs it on `problem`.
SearchResult RunSearch(TilingProblem& problem, const SearchSpec& spec);

}  // namespace mas::search
