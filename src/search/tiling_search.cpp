#include "search/tiling_search.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <unordered_set>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "runner/thread_pool.h"
#include "sim/engine.h"

namespace mas::search {

namespace {

// Prune tilings whose task graphs would be absurdly fine-grained: they are
// never latency-optimal (per-tile setup dominates) and would blow up search
// time. This mirrors the paper's bounded search budgets.
constexpr std::int64_t kMaxTasks = 150000;

std::int64_t EstimatedTasks(const AttentionShape& shape, const TilingConfig& tiling) {
  return tiling.RowBlocks(shape) * (2 * tiling.KvBlocks(shape) + 6);
}

// Restricted power-of-two lattice for coarse/grid search: at most `keep`
// values sampled geometrically across [1, extent] (both endpoints always
// kept). Sampling the whole range matters: on memory-tight configurations
// the feasible region sits at *small* tile sizes, so keeping only the
// largest powers of two would leave nothing between 1 and the first
// feasible value.
std::vector<std::int64_t> CoarseLattice(std::int64_t extent, int keep) {
  std::vector<std::int64_t> all = {extent};
  for (std::int64_t v = 1; v < extent; v *= 2) all.push_back(v);
  std::sort(all.begin(), all.end());
  if (static_cast<int>(all.size()) <= keep || keep < 2) return all;
  std::vector<std::int64_t> values;
  const double step = static_cast<double>(all.size() - 1) / (keep - 1);
  for (int i = 0; i < keep; ++i) {
    values.push_back(all[static_cast<std::size_t>(std::llround(i * step))]);
  }
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

void RecordTrace(SearchResult& result, std::int64_t evaluation, double cycles) {
  if (cycles < result.best_cycles) {
    result.best_cycles = cycles;
    result.trace.push_back({evaluation, cycles});
  }
}

}  // namespace

std::size_t TilingProblem::TilingKeyHash::operator()(const TilingKey& k) const {
  // splitmix64-style mixing of the four full-width factors; unlike the seed's
  // shifted-XOR packing this backs a key that compares all four fields, so a
  // hash collision can never return the wrong entry.
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= (v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2));
    h *= 0xFF51AFD7ED558CCDull;
    return h ^ (h >> 33);
  };
  std::uint64_t h = 0x2545F4914F6CDD1Dull;
  h = mix(h, static_cast<std::uint64_t>(k.bb));
  h = mix(h, static_cast<std::uint64_t>(k.hh));
  h = mix(h, static_cast<std::uint64_t>(k.nq));
  h = mix(h, static_cast<std::uint64_t>(k.nkv));
  return static_cast<std::size_t>(h);
}

TilingProblem::TilingProblem(const Scheduler& scheduler, const AttentionShape& shape,
                             const sim::HardwareConfig& hw, const sim::EnergyModel& em)
    : scheduler_(scheduler), shape_(shape), hw_(hw), em_(em) {
  shape.Validate();
  bb_ = TileCandidates(shape.batch);
  hh_ = TileCandidates(shape.heads);
  nq_ = TileCandidates(shape.seq_len);
  nkv_ = TileCandidates(shape.kv());
}

TilingProblem::CacheShard& TilingProblem::ShardFor(const TilingKey& key) const {
  return cache_[TilingKeyHash{}(key) % kCacheShards];
}

bool TilingProblem::Feasible(const TilingConfig& tiling) const {
  if (EstimatedTasks(shape_, tiling) > kMaxTasks) return false;
  return scheduler_.Fits(shape_, tiling, hw_);
}

double TilingProblem::Measure(const TilingConfig& tiling, sim::Engine* engine) const {
  if (!Feasible(tiling)) return kInfeasible;
  if (reference_mode_) {
    // Seed-path evaluation: a fresh engine per simulation (no arena reuse)
    // running the polling reference scheduler. Used as the baseline side of
    // bench_engine_micro; results are identical to the fast path.
    sim::Engine fresh(hw_);
    fresh.set_use_reference_scheduler(true);
    return static_cast<double>(
        scheduler_.Simulate(shape_, tiling, hw_, em_, /*record_timeline=*/false, &fresh)
            .cycles);
  }
  return static_cast<double>(
      scheduler_.Simulate(shape_, tiling, hw_, em_, /*record_timeline=*/false, engine)
          .cycles);
}

void TilingProblem::EnsureWorkerEngines(std::size_t workers) {
  if (reference_mode_) return;  // reference Measure() builds fresh engines
  while (engines_.size() < std::max<std::size_t>(workers, 1)) {
    engines_.push_back(std::make_unique<sim::Engine>(hw_));
  }
}

double TilingProblem::Evaluate(const TilingConfig& tiling) {
  const TilingKey key = KeyOf(tiling);
  CacheShard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Promote a prefetched entry: it is observed — and therefore counted —
      // here, exactly where the serial search would have simulated it.
      if (it->second.speculative) {
        it->second.speculative = false;
        if (it->second.cycles != kInfeasible) ++evaluations_;
      }
      return it->second.cycles;
    }
  }
  EnsureWorkerEngines(1);
  const double cycles =
      Measure(tiling, reference_mode_ ? nullptr : engines_[0].get());
  if (cycles != kInfeasible) ++evaluations_;
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map.emplace(key, CacheEntry{cycles, false});
  return cycles;
}

bool TilingProblem::PeekCycles(const TilingConfig& tiling, double* cycles) const {
  const TilingKey key = KeyOf(tiling);
  CacheShard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  *cycles = it->second.cycles;
  return true;
}

void TilingProblem::Prefetch(const TilingConfig* tilings, std::size_t count, int jobs) {
  if (jobs <= 1) return;  // nothing to overlap; Evaluate() will do the work
  // Unique, uncached work items in first-occurrence order.
  std::vector<TilingConfig> work;
  {
    std::unordered_set<TilingKey, TilingKeyHash> seen;
    for (std::size_t i = 0; i < count; ++i) {
      const TilingKey key = KeyOf(tilings[i]);
      if (!seen.insert(key).second) continue;
      CacheShard& shard = ShardFor(key);
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.map.count(key)) continue;
      work.push_back(tilings[i]);
    }
  }
  if (work.empty()) return;
  EnsureWorkerEngines(runner::EffectiveWorkers(work.size(), jobs));
  std::vector<double> measured(work.size(), kInfeasible);
  runner::ParallelForWorkers(work.size(), jobs, [&](std::size_t worker, std::size_t i) {
    measured[i] = Measure(
        work[i], reference_mode_ || worker >= engines_.size() ? nullptr
                                                              : engines_[worker].get());
  });
  for (std::size_t i = 0; i < work.size(); ++i) {
    const TilingKey key = KeyOf(work[i]);
    CacheShard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.emplace(key, CacheEntry{measured[i], /*speculative=*/true});
  }
}

void TilingProblem::EvaluateBatch(const std::vector<TilingConfig>& tilings,
                                  std::vector<double>& cycles, int jobs) {
  Prefetch(tilings.data(), tilings.size(), jobs);
  // Serial memo replay: Evaluate() remains the single source of truth for the
  // evaluations() counter, so batch results match the serial loop exactly.
  cycles.resize(tilings.size());
  for (std::size_t i = 0; i < tilings.size(); ++i) cycles[i] = Evaluate(tilings[i]);
}

sim::SimResult TilingProblem::Simulate(const TilingConfig& tiling) const {
  return scheduler_.Simulate(shape_, tiling, hw_, em_);
}

SearchResult GridSearch(TilingProblem& problem, const GridOptions& options) {
  SearchResult result;
  const auto bbs = options.coarse
                       ? CoarseLattice(problem.shape().batch, options.coarse_keep_bb)
                       : problem.bb_candidates();
  const auto hhs = options.coarse
                       ? CoarseLattice(problem.shape().heads, options.coarse_keep_hh)
                       : problem.hh_candidates();
  const auto nqs = options.coarse
                       ? CoarseLattice(problem.shape().seq_len, options.coarse_keep_nq)
                       : problem.nq_candidates();
  const auto nkvs = options.coarse
                        ? CoarseLattice(problem.shape().kv(), options.coarse_keep_nkv)
                        : problem.nkv_candidates();

  // Enumerate the scan up front (bounded by the evaluation budget — an
  // exhausted budget terminates the WHOLE scan, not just the innermost
  // loop), then evaluate as one batch and reduce in grid order.
  std::vector<TilingConfig> cells;
  const std::int64_t budget = std::max<std::int64_t>(options.max_evaluations, 0);
  for (std::int64_t bb : bbs) {
    for (std::int64_t hh : hhs) {
      for (std::int64_t nq : nqs) {
        for (std::int64_t nkv : nkvs) {
          if (static_cast<std::int64_t>(cells.size()) >= budget) goto scan_done;
          cells.push_back(TilingConfig{bb, hh, nq, nkv});
        }
      }
    }
  }
scan_done:
  std::vector<double> cycles;
  problem.EvaluateBatch(cells, cycles, options.jobs);

  std::int64_t evals = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ++evals;
    if (cycles[i] < result.best_cycles) result.best = cells[i];
    RecordTrace(result, evals, cycles[i]);
  }
  result.evaluations = evals;
  return result;
}

SearchResult GeneticSearch(TilingProblem& problem, const GaOptions& options) {
  MAS_CHECK(options.population >= 4) << "GA population too small";
  Rng rng(options.seed);
  const std::vector<const std::vector<std::int64_t>*> spaces = {
      &problem.bb_candidates(), &problem.hh_candidates(), &problem.nq_candidates(),
      &problem.nkv_candidates()};

  using Genome = std::array<std::size_t, 4>;
  auto decode = [&](const Genome& g) {
    return TilingConfig{(*spaces[0])[g[0]], (*spaces[1])[g[1]], (*spaces[2])[g[2]],
                        (*spaces[3])[g[3]]};
  };
  auto random_genome = [&]() {
    Genome g;
    for (std::size_t d = 0; d < 4; ++d) {
      g[d] = static_cast<std::size_t>(rng.NextBelow(spaces[d]->size()));
    }
    return g;
  };

  SearchResult result;
  std::int64_t evals = 0;
  // Evaluates a cohort of genomes as one parallel batch, then replays the
  // best/trace reduction in cohort order — the same sequence of Evaluate()
  // calls the serial loop made (genome creation never reads fitness results
  // within a generation, so batching does not disturb the rng stream).
  std::vector<TilingConfig> batch_tilings;
  std::vector<double> batch_cycles;
  auto evaluate_cohort = [&](const std::vector<Genome>& cohort) {
    batch_tilings.clear();
    for (const Genome& g : cohort) batch_tilings.push_back(decode(g));
    problem.EvaluateBatch(batch_tilings, batch_cycles, options.jobs);
    std::vector<double> scores(cohort.size());
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      ++evals;
      if (batch_cycles[i] < result.best_cycles) result.best = batch_tilings[i];
      RecordTrace(result, evals, batch_cycles[i]);
      scores[i] = batch_cycles[i];
    }
    return scores;
  };

  std::vector<Genome> population;
  for (std::int64_t i = 0; i < options.population; ++i) {
    population.push_back(random_genome());
  }
  std::vector<double> scores = evaluate_cohort(population);

  auto tournament_pick = [&]() -> const Genome& {
    std::size_t best = static_cast<std::size_t>(rng.NextBelow(population.size()));
    for (std::int64_t t = 1; t < options.tournament; ++t) {
      const std::size_t cand = static_cast<std::size_t>(rng.NextBelow(population.size()));
      if (scores[cand] < scores[best]) best = cand;
    }
    return population[best];
  };

  for (std::int64_t gen = 0; gen < options.generations; ++gen) {
    // Elitism: carry the best genomes over unchanged.
    std::vector<std::size_t> order(population.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });
    std::vector<Genome> next;
    std::vector<double> next_scores;
    for (std::int64_t e = 0; e < options.elite && e < static_cast<std::int64_t>(order.size());
         ++e) {
      next.push_back(population[order[static_cast<std::size_t>(e)]]);
      next_scores.push_back(scores[order[static_cast<std::size_t>(e)]]);
    }
    // Create the whole offspring cohort first (pure rng work against the
    // *previous* generation's scores), then evaluate it as one batch.
    std::vector<Genome> offspring;
    while (static_cast<std::int64_t>(next.size() + offspring.size()) < options.population) {
      Genome child = tournament_pick();
      if (rng.NextBool(options.crossover_rate)) {
        const Genome& other = tournament_pick();
        for (std::size_t d = 0; d < 4; ++d) {
          if (rng.NextBool()) child[d] = other[d];
        }
      }
      for (std::size_t d = 0; d < 4; ++d) {
        if (rng.NextBool(options.mutation_rate)) {
          child[d] = static_cast<std::size_t>(rng.NextBelow(spaces[d]->size()));
        }
      }
      offspring.push_back(child);
    }
    std::vector<double> offspring_scores = evaluate_cohort(offspring);
    for (std::size_t i = 0; i < offspring.size(); ++i) {
      next.push_back(offspring[i]);
      next_scores.push_back(offspring_scores[i]);
    }
    population = std::move(next);
    scores = std::move(next_scores);
  }
  result.evaluations = evals;
  return result;
}

namespace {

// MCTS over the sequential factor decisions hh -> nq -> nkv -> bb. Each tree
// node fixes a prefix of factors; leaves are complete tilings. Rollouts
// complete the prefix uniformly at random; rewards are 1/cycles.
struct MctsNode {
  std::vector<std::int64_t> child_visits;
  std::vector<double> child_value;  // mean reward
  std::vector<std::unique_ptr<MctsNode>> children;
  std::int64_t visits = 0;
};

std::unique_ptr<MctsNode> CloneTree(const MctsNode& node) {
  auto copy = std::make_unique<MctsNode>();
  copy->child_visits = node.child_visits;
  copy->child_value = node.child_value;
  copy->visits = node.visits;
  copy->children.resize(node.children.size());
  for (std::size_t c = 0; c < node.children.size(); ++c) {
    if (node.children[c]) copy->children[c] = CloneTree(*node.children[c]);
  }
  return copy;
}

using Spaces = std::vector<const std::vector<std::int64_t>*>;

// Selection + expansion down the four decision levels (UCB1; unvisited
// children first, random among them). Mutates the tree only by expanding
// empty child slots.
std::array<std::size_t, 4> SelectLeaf(MctsNode& root, Rng& rng, const Spaces& spaces,
                                      double exploration) {
  std::array<std::size_t, 4> choice{};
  MctsNode* node = &root;
  for (std::size_t depth = 0; depth < 4; ++depth) {
    const std::size_t width = spaces[depth]->size();
    if (node->children.empty()) {
      node->children.resize(width);
      node->child_visits.assign(width, 0);
      node->child_value.assign(width, 0.0);
    }
    std::vector<std::size_t> unvisited;
    for (std::size_t c = 0; c < width; ++c) {
      if (node->child_visits[c] == 0) unvisited.push_back(c);
    }
    std::size_t pick;
    if (!unvisited.empty()) {
      pick = unvisited[rng.NextBelow(unvisited.size())];
    } else {
      double best_ucb = -1.0;
      pick = 0;
      for (std::size_t c = 0; c < width; ++c) {
        const double exploit = node->child_value[c];
        const double explore =
            exploration * std::sqrt(std::log(static_cast<double>(node->visits) + 1.0) /
                                    static_cast<double>(node->child_visits[c]));
        if (exploit + explore > best_ucb) {
          best_ucb = exploit + explore;
          pick = c;
        }
      }
    }
    choice[depth] = pick;
    if (!node->children[pick]) node->children[pick] = std::make_unique<MctsNode>();
    node = node->children[pick].get();
  }
  return choice;
}

void Backprop(MctsNode& root, const std::array<std::size_t, 4>& choice, double reward) {
  MctsNode* cur = &root;
  cur->visits += 1;
  for (std::size_t depth = 0; depth < 4; ++depth) {
    const std::size_t c = choice[depth];
    cur->child_visits[c] += 1;
    cur->child_value[c] +=
        (reward - cur->child_value[c]) / static_cast<double>(cur->child_visits[c]);
    cur = cur->children[c].get();
    cur->visits += 1;
  }
}

}  // namespace

SearchResult MctsSearch(TilingProblem& problem, const MctsOptions& options) {
  Rng rng(options.seed);
  const Spaces spaces = {&problem.hh_candidates(), &problem.nq_candidates(),
                         &problem.nkv_candidates(), &problem.bb_candidates()};
  auto decode = [&](const std::array<std::size_t, 4>& g) {
    return TilingConfig{(*spaces[3])[g[3]], (*spaces[0])[g[0]], (*spaces[1])[g[1]],
                        (*spaces[2])[g[2]]};
  };

  SearchResult result;
  std::int64_t evals = 0;
  auto reward_of = [&](const std::array<std::size_t, 4>& g) {
    const TilingConfig tiling = decode(g);
    const double cycles = problem.Evaluate(tiling);
    ++evals;
    if (cycles < result.best_cycles) result.best = tiling;
    RecordTrace(result, evals, cycles);
    if (cycles == TilingProblem::kInfeasible) return 0.0;
    return 1e6 / cycles;
  };

  MctsNode root;
  const std::int64_t wave = options.jobs > 1 ? options.jobs : 1;
  std::vector<TilingConfig> leaves;
  std::int64_t iter = 0;
  while (iter < options.iterations) {
    const std::int64_t batch = std::min(wave, options.iterations - iter);
    if (batch > 1) {
      // Speculation: predict the next `batch` rollout leaves on a clone of
      // the tree (seeded with a copy of the rng, so the first prediction is
      // exact) and prefetch their simulations in parallel. Unknown leaves
      // backpropagate a zero reward on the clone — a virtual loss that
      // steers later predictions away, for diversity. The authoritative
      // iterations below replay serially against the warmed cache.
      std::unique_ptr<MctsNode> scout = CloneTree(root);
      Rng scout_rng = rng;
      leaves.clear();
      for (std::int64_t j = 0; j < batch; ++j) {
        const std::array<std::size_t, 4> choice =
            SelectLeaf(*scout, scout_rng, spaces, options.exploration);
        const TilingConfig tiling = decode(choice);
        leaves.push_back(tiling);
        double predicted = 0.0;
        double cached;
        if (problem.PeekCycles(tiling, &cached) && cached != TilingProblem::kInfeasible) {
          predicted = 1e6 / cached;
        }
        Backprop(*scout, choice, predicted);
      }
      problem.Prefetch(leaves.data(), leaves.size(), options.jobs);
    }
    for (std::int64_t j = 0; j < batch; ++j) {
      const std::array<std::size_t, 4> choice =
          SelectLeaf(root, rng, spaces, options.exploration);
      Backprop(root, choice, reward_of(choice));
    }
    iter += batch;
  }
  result.evaluations = evals;
  return result;
}

TilingConfig AutoTile(const Scheduler& scheduler, const AttentionShape& shape,
                      const sim::HardwareConfig& hw, const sim::EnergyModel& em, int jobs) {
  TilingProblem problem(scheduler, shape, hw, em);
  GridOptions options;
  options.coarse = true;
  options.jobs = jobs;
  const SearchResult result = GridSearch(problem, options);
  MAS_CHECK(result.found()) << "no feasible tiling for " << scheduler.name() << " on "
                            << shape.ToString();
  return result.best;
}

}  // namespace mas::search
