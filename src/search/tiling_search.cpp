#include "search/tiling_search.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"

namespace mas::search {

namespace {

// Prune tilings whose task graphs would be absurdly fine-grained: they are
// never latency-optimal (per-tile setup dominates) and would blow up search
// time. This mirrors the paper's bounded search budgets.
constexpr std::int64_t kMaxTasks = 150000;

std::int64_t EstimatedTasks(const AttentionShape& shape, const TilingConfig& tiling) {
  return tiling.RowBlocks(shape) * (2 * tiling.KvBlocks(shape) + 6);
}

std::uint64_t Key(const TilingConfig& t) {
  return (static_cast<std::uint64_t>(t.bb) << 48) ^ (static_cast<std::uint64_t>(t.hh) << 32) ^
         (static_cast<std::uint64_t>(t.nq) << 16) ^ static_cast<std::uint64_t>(t.nkv);
}

// Restricted power-of-two lattice for coarse/grid search: at most `keep`
// values sampled geometrically across [1, extent] (both endpoints always
// kept). Sampling the whole range matters: on memory-tight configurations
// the feasible region sits at *small* tile sizes, so keeping only the
// largest powers of two would leave nothing between 1 and the first
// feasible value.
std::vector<std::int64_t> CoarseLattice(std::int64_t extent, int keep) {
  std::vector<std::int64_t> all = {extent};
  for (std::int64_t v = 1; v < extent; v *= 2) all.push_back(v);
  std::sort(all.begin(), all.end());
  if (static_cast<int>(all.size()) <= keep || keep < 2) return all;
  std::vector<std::int64_t> values;
  const double step = static_cast<double>(all.size() - 1) / (keep - 1);
  for (int i = 0; i < keep; ++i) {
    values.push_back(all[static_cast<std::size_t>(std::llround(i * step))]);
  }
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

void RecordTrace(SearchResult& result, std::int64_t evaluation, double cycles) {
  if (cycles < result.best_cycles) {
    result.best_cycles = cycles;
    result.trace.push_back({evaluation, cycles});
  }
}

}  // namespace

TilingProblem::TilingProblem(const Scheduler& scheduler, const AttentionShape& shape,
                             const sim::HardwareConfig& hw, const sim::EnergyModel& em)
    : scheduler_(scheduler), shape_(shape), hw_(hw), em_(em) {
  shape.Validate();
  bb_ = TileCandidates(shape.batch);
  hh_ = TileCandidates(shape.heads);
  nq_ = TileCandidates(shape.seq_len);
  nkv_ = TileCandidates(shape.kv());
}

bool TilingProblem::Feasible(const TilingConfig& tiling) const {
  if (EstimatedTasks(shape_, tiling) > kMaxTasks) return false;
  return scheduler_.Fits(shape_, tiling, hw_);
}

double TilingProblem::Evaluate(const TilingConfig& tiling) {
  const std::uint64_t key = Key(tiling);
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  double cycles = kInfeasible;
  if (Feasible(tiling)) {
    ++evaluations_;
    cycles = static_cast<double>(scheduler_.Simulate(shape_, tiling, hw_, em_).cycles);
  }
  cache_.emplace(key, cycles);
  return cycles;
}

sim::SimResult TilingProblem::Simulate(const TilingConfig& tiling) const {
  return scheduler_.Simulate(shape_, tiling, hw_, em_);
}

SearchResult GridSearch(TilingProblem& problem, const GridOptions& options) {
  SearchResult result;
  const auto bbs = options.coarse
                       ? CoarseLattice(problem.shape().batch, options.coarse_keep_bb)
                       : problem.bb_candidates();
  const auto hhs = options.coarse
                       ? CoarseLattice(problem.shape().heads, options.coarse_keep_hh)
                       : problem.hh_candidates();
  const auto nqs = options.coarse
                       ? CoarseLattice(problem.shape().seq_len, options.coarse_keep_nq)
                       : problem.nq_candidates();
  const auto nkvs = options.coarse
                        ? CoarseLattice(problem.shape().kv(), options.coarse_keep_nkv)
                        : problem.nkv_candidates();
  std::int64_t evals = 0;
  for (std::int64_t bb : bbs) {
    for (std::int64_t hh : hhs) {
      for (std::int64_t nq : nqs) {
        for (std::int64_t nkv : nkvs) {
          if (evals >= options.max_evaluations) break;
          const TilingConfig tiling{bb, hh, nq, nkv};
          const double cycles = problem.Evaluate(tiling);
          ++evals;
          if (cycles < result.best_cycles) {
            result.best = tiling;
          }
          RecordTrace(result, evals, cycles);
        }
      }
    }
  }
  result.evaluations = evals;
  return result;
}

SearchResult GeneticSearch(TilingProblem& problem, const GaOptions& options) {
  MAS_CHECK(options.population >= 4) << "GA population too small";
  Rng rng(options.seed);
  const std::vector<const std::vector<std::int64_t>*> spaces = {
      &problem.bb_candidates(), &problem.hh_candidates(), &problem.nq_candidates(),
      &problem.nkv_candidates()};

  using Genome = std::array<std::size_t, 4>;
  auto decode = [&](const Genome& g) {
    return TilingConfig{(*spaces[0])[g[0]], (*spaces[1])[g[1]], (*spaces[2])[g[2]],
                        (*spaces[3])[g[3]]};
  };
  auto random_genome = [&]() {
    Genome g;
    for (std::size_t d = 0; d < 4; ++d) {
      g[d] = static_cast<std::size_t>(rng.NextBelow(spaces[d]->size()));
    }
    return g;
  };

  SearchResult result;
  std::int64_t evals = 0;
  auto fitness = [&](const Genome& g) {
    const TilingConfig tiling = decode(g);
    const double cycles = problem.Evaluate(tiling);
    ++evals;
    if (cycles < result.best_cycles) result.best = tiling;
    RecordTrace(result, evals, cycles);
    return cycles;
  };

  std::vector<Genome> population;
  std::vector<double> scores;
  for (std::int64_t i = 0; i < options.population; ++i) {
    population.push_back(random_genome());
    scores.push_back(fitness(population.back()));
  }

  auto tournament_pick = [&]() -> const Genome& {
    std::size_t best = static_cast<std::size_t>(rng.NextBelow(population.size()));
    for (std::int64_t t = 1; t < options.tournament; ++t) {
      const std::size_t cand = static_cast<std::size_t>(rng.NextBelow(population.size()));
      if (scores[cand] < scores[best]) best = cand;
    }
    return population[best];
  };

  for (std::int64_t gen = 0; gen < options.generations; ++gen) {
    // Elitism: carry the best genomes over unchanged.
    std::vector<std::size_t> order(population.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });
    std::vector<Genome> next;
    std::vector<double> next_scores;
    for (std::int64_t e = 0; e < options.elite && e < static_cast<std::int64_t>(order.size());
         ++e) {
      next.push_back(population[order[static_cast<std::size_t>(e)]]);
      next_scores.push_back(scores[order[static_cast<std::size_t>(e)]]);
    }
    while (static_cast<std::int64_t>(next.size()) < options.population) {
      Genome child = tournament_pick();
      if (rng.NextBool(options.crossover_rate)) {
        const Genome& other = tournament_pick();
        for (std::size_t d = 0; d < 4; ++d) {
          if (rng.NextBool()) child[d] = other[d];
        }
      }
      for (std::size_t d = 0; d < 4; ++d) {
        if (rng.NextBool(options.mutation_rate)) {
          child[d] = static_cast<std::size_t>(rng.NextBelow(spaces[d]->size()));
        }
      }
      next.push_back(child);
      next_scores.push_back(fitness(child));
    }
    population = std::move(next);
    scores = std::move(next_scores);
  }
  result.evaluations = evals;
  return result;
}

namespace {

// MCTS over the sequential factor decisions hh -> nq -> nkv -> bb. Each tree
// node fixes a prefix of factors; leaves are complete tilings. Rollouts
// complete the prefix uniformly at random; rewards are 1/cycles.
struct MctsNode {
  std::vector<std::int64_t> child_visits;
  std::vector<double> child_value;  // mean reward
  std::vector<std::unique_ptr<MctsNode>> children;
  std::int64_t visits = 0;
};

}  // namespace

SearchResult MctsSearch(TilingProblem& problem, const MctsOptions& options) {
  Rng rng(options.seed);
  const std::vector<const std::vector<std::int64_t>*> spaces = {
      &problem.hh_candidates(), &problem.nq_candidates(), &problem.nkv_candidates(),
      &problem.bb_candidates()};
  auto decode = [&](const std::array<std::size_t, 4>& g) {
    return TilingConfig{(*spaces[3])[g[3]], (*spaces[0])[g[0]], (*spaces[1])[g[1]],
                        (*spaces[2])[g[2]]};
  };

  SearchResult result;
  std::int64_t evals = 0;
  auto reward_of = [&](const std::array<std::size_t, 4>& g) {
    const TilingConfig tiling = decode(g);
    const double cycles = problem.Evaluate(tiling);
    ++evals;
    if (cycles < result.best_cycles) result.best = tiling;
    RecordTrace(result, evals, cycles);
    if (cycles == TilingProblem::kInfeasible) return 0.0;
    return 1e6 / cycles;
  };

  MctsNode root;
  for (std::int64_t iter = 0; iter < options.iterations; ++iter) {
    // Selection + expansion down the four decision levels.
    std::array<std::size_t, 4> choice{};
    MctsNode* node = &root;
    std::vector<MctsNode*> path = {node};
    for (std::size_t depth = 0; depth < 4; ++depth) {
      const std::size_t width = spaces[depth]->size();
      if (node->children.empty()) {
        node->children.resize(width);
        node->child_visits.assign(width, 0);
        node->child_value.assign(width, 0.0);
      }
      // UCB1 pick; unvisited children first (random among them).
      std::vector<std::size_t> unvisited;
      for (std::size_t c = 0; c < width; ++c) {
        if (node->child_visits[c] == 0) unvisited.push_back(c);
      }
      std::size_t pick;
      if (!unvisited.empty()) {
        pick = unvisited[rng.NextBelow(unvisited.size())];
      } else {
        double best_ucb = -1.0;
        pick = 0;
        for (std::size_t c = 0; c < width; ++c) {
          const double exploit = node->child_value[c];
          const double explore =
              options.exploration *
              std::sqrt(std::log(static_cast<double>(node->visits) + 1.0) /
                        static_cast<double>(node->child_visits[c]));
          if (exploit + explore > best_ucb) {
            best_ucb = exploit + explore;
            pick = c;
          }
        }
      }
      choice[depth] = pick;
      if (!node->children[pick]) node->children[pick] = std::make_unique<MctsNode>();
      node = node->children[pick].get();
      path.push_back(node);
    }
    const double reward = reward_of(choice);
    // Backpropagate along the path.
    MctsNode* cur = &root;
    cur->visits += 1;
    for (std::size_t depth = 0; depth < 4; ++depth) {
      const std::size_t c = choice[depth];
      cur->child_visits[c] += 1;
      cur->child_value[c] +=
          (reward - cur->child_value[c]) / static_cast<double>(cur->child_visits[c]);
      cur = cur->children[c].get();
      cur->visits += 1;
    }
  }
  result.evaluations = evals;
  return result;
}

TilingConfig AutoTile(const Scheduler& scheduler, const AttentionShape& shape,
                      const sim::HardwareConfig& hw, const sim::EnergyModel& em) {
  TilingProblem problem(scheduler, shape, hw, em);
  GridOptions options;
  options.coarse = true;
  const SearchResult result = GridSearch(problem, options);
  MAS_CHECK(result.found()) << "no feasible tiling for " << scheduler.name() << " on "
                            << shape.ToString();
  return result.best;
}

}  // namespace mas::search
