#include "search/tiling_search.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_set>

#include "common/math_util.h"
#include "common/status.h"
#include "runner/thread_pool.h"
#include "search/strategy.h"
#include "sim/engine.h"

namespace mas::search {

namespace {

// Prune tilings whose task graphs would be absurdly fine-grained: they are
// never latency-optimal (per-tile setup dominates) and would blow up search
// time. This mirrors the paper's bounded search budgets.
constexpr std::int64_t kMaxTasks = 150000;

std::int64_t EstimatedTasks(const AttentionShape& shape, const TilingConfig& tiling) {
  return tiling.RowBlocks(shape) * (2 * tiling.KvBlocks(shape) + 6);
}

}  // namespace

std::size_t TilingProblem::TilingKeyHash::operator()(const TilingKey& k) const {
  // splitmix64-style mixing of the four full-width factors; unlike the seed's
  // shifted-XOR packing this backs a key that compares all four fields, so a
  // hash collision can never return the wrong entry.
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= (v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2));
    h *= 0xFF51AFD7ED558CCDull;
    return h ^ (h >> 33);
  };
  std::uint64_t h = 0x2545F4914F6CDD1Dull;
  h = mix(h, static_cast<std::uint64_t>(k.bb));
  h = mix(h, static_cast<std::uint64_t>(k.hh));
  h = mix(h, static_cast<std::uint64_t>(k.nq));
  h = mix(h, static_cast<std::uint64_t>(k.nkv));
  return static_cast<std::size_t>(h);
}

TilingProblem::TilingProblem(const Scheduler& scheduler, const AttentionShape& shape,
                             const sim::HardwareConfig& hw, const sim::EnergyModel& em)
    : scheduler_(scheduler), shape_(shape), hw_(hw), em_(em) {
  shape.Validate();
  bb_ = TileCandidates(shape.batch);
  hh_ = TileCandidates(shape.heads);
  nq_ = TileCandidates(shape.seq_len);
  nkv_ = TileCandidates(shape.kv());
}

TilingProblem::CacheShard& TilingProblem::ShardFor(const TilingKey& key) const {
  return cache_[TilingKeyHash{}(key) % kCacheShards];
}

bool TilingProblem::Feasible(const TilingConfig& tiling) const {
  if (EstimatedTasks(shape_, tiling) > kMaxTasks) return false;
  return scheduler_.Fits(shape_, tiling, hw_);
}

double TilingProblem::Measure(const TilingConfig& tiling, sim::Engine* engine) const {
  if (!Feasible(tiling)) return kInfeasible;
  if (reference_mode_) {
    // Seed-path evaluation: a fresh engine per simulation (no arena reuse)
    // running the polling reference scheduler. Used as the baseline side of
    // bench_engine_micro; results are identical to the fast path.
    sim::Engine fresh(hw_);
    fresh.set_use_reference_scheduler(true);
    return static_cast<double>(
        scheduler_.Simulate(shape_, tiling, hw_, em_, /*record_timeline=*/false, &fresh)
            .cycles);
  }
  return static_cast<double>(
      scheduler_.Simulate(shape_, tiling, hw_, em_, /*record_timeline=*/false, engine)
          .cycles);
}

void TilingProblem::EnsureWorkerEngines(std::size_t workers) {
  if (reference_mode_) return;  // reference Measure() builds fresh engines
  while (engines_.size() < std::max<std::size_t>(workers, 1)) {
    engines_.push_back(std::make_unique<sim::Engine>(hw_));
  }
}

double TilingProblem::Evaluate(const TilingConfig& tiling) {
  const TilingKey key = KeyOf(tiling);
  CacheShard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Promote a prefetched entry: it is observed — and therefore counted —
      // here, exactly where the serial search would have simulated it.
      if (it->second.speculative) {
        it->second.speculative = false;
        if (it->second.cycles != kInfeasible) ++evaluations_;
      }
      return it->second.cycles;
    }
  }
  EnsureWorkerEngines(1);
  const double cycles =
      Measure(tiling, reference_mode_ ? nullptr : engines_[0].get());
  if (cycles != kInfeasible) ++evaluations_;
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map.emplace(key, CacheEntry{cycles, false});
  return cycles;
}

bool TilingProblem::PeekCycles(const TilingConfig& tiling, double* cycles) const {
  const TilingKey key = KeyOf(tiling);
  CacheShard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  *cycles = it->second.cycles;
  return true;
}

void TilingProblem::Prefetch(const TilingConfig* tilings, std::size_t count, int jobs) {
  if (jobs <= 1) return;  // nothing to overlap; Evaluate() will do the work
  // Unique, uncached work items in first-occurrence order.
  std::vector<TilingConfig> work;
  {
    std::unordered_set<TilingKey, TilingKeyHash> seen;
    for (std::size_t i = 0; i < count; ++i) {
      const TilingKey key = KeyOf(tilings[i]);
      if (!seen.insert(key).second) continue;
      CacheShard& shard = ShardFor(key);
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.map.count(key)) continue;
      work.push_back(tilings[i]);
    }
  }
  if (work.empty()) return;
  EnsureWorkerEngines(runner::EffectiveWorkers(work.size(), jobs));
  std::vector<double> measured(work.size(), kInfeasible);
  runner::ParallelForWorkers(work.size(), jobs, [&](std::size_t worker, std::size_t i) {
    measured[i] = Measure(
        work[i], reference_mode_ || worker >= engines_.size() ? nullptr
                                                              : engines_[worker].get());
  });
  for (std::size_t i = 0; i < work.size(); ++i) {
    const TilingKey key = KeyOf(work[i]);
    CacheShard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.emplace(key, CacheEntry{measured[i], /*speculative=*/true});
  }
}

void TilingProblem::EvaluateBatch(const std::vector<TilingConfig>& tilings,
                                  std::vector<double>& cycles, int jobs) {
  Prefetch(tilings.data(), tilings.size(), jobs);
  // Serial memo replay: Evaluate() remains the single source of truth for the
  // evaluations() counter, so batch results match the serial loop exactly.
  cycles.resize(tilings.size());
  for (std::size_t i = 0; i < tilings.size(); ++i) cycles[i] = Evaluate(tilings[i]);
}

sim::SimResult TilingProblem::Simulate(const TilingConfig& tiling) const {
  return scheduler_.Simulate(shape_, tiling, hw_, em_);
}

// --------------------------------------------------------------------------
// Compat wrappers over the registered strategies (see strategy.h). Each
// forwards its options into the equivalent SearchSpec; the wrapped run is
// byte-identical to the pre-registry free function.
// --------------------------------------------------------------------------

SearchResult GridSearch(TilingProblem& problem, const GridOptions& options) {
  SearchSpec spec;
  spec.strategy = "grid";
  spec.budget = options.max_evaluations;
  spec.jobs = options.jobs;
  spec.coarse = options.coarse;
  spec.coarse_keep_bb = options.coarse_keep_bb;
  spec.coarse_keep_hh = options.coarse_keep_hh;
  spec.coarse_keep_nq = options.coarse_keep_nq;
  spec.coarse_keep_nkv = options.coarse_keep_nkv;
  return RunSearch(problem, spec);
}

SearchResult GeneticSearch(TilingProblem& problem, const GaOptions& options) {
  SearchSpec spec;
  spec.strategy = "ga";
  // GaOptions had no evaluation cap; disable the common budget so the run
  // stays byte-identical however large population x generations grows.
  spec.budget = std::numeric_limits<std::int64_t>::max();
  spec.seed = options.seed;
  spec.jobs = options.jobs;
  spec.population = options.population;
  spec.generations = options.generations;
  spec.crossover_rate = options.crossover_rate;
  spec.mutation_rate = options.mutation_rate;
  spec.tournament = options.tournament;
  spec.elite = options.elite;
  return RunSearch(problem, spec);
}

SearchResult MctsSearch(TilingProblem& problem, const MctsOptions& options) {
  SearchSpec spec;
  spec.strategy = "mcts";
  spec.budget = std::numeric_limits<std::int64_t>::max();  // as GaOptions above
  spec.seed = options.seed;
  spec.jobs = options.jobs;
  spec.iterations = options.iterations;
  spec.exploration = options.exploration;
  return RunSearch(problem, spec);
}

TilingConfig AutoTile(const Scheduler& scheduler, const AttentionShape& shape,
                      const sim::HardwareConfig& hw, const sim::EnergyModel& em, int jobs) {
  TilingProblem problem(scheduler, shape, hw, em);
  const SearchResult result = RunSearch(problem, SearchSpec::AutoTileDefault(jobs));
  MAS_CHECK(result.found()) << "no feasible tiling for " << scheduler.name() << " on "
                            << shape.ToString();
  return result.best;
}

}  // namespace mas::search
