// Shared `--list-backends` presentation for mas_run / mas_serve / mas_fleet:
// walks sim::BackendRegistry and prints the catalog (name, family, summary),
// each backend's spec grammar with tunable defaults, and the default
// config's full Describe() so per-core fields (MAC/VEC setup, workgroup
// residency, shared memory) are visible without building a config by hand.
#pragma once

#include <iosfwd>

namespace mas::cli {

void PrintBackendCatalog(std::ostream& out);

}  // namespace mas::cli
