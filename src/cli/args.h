// Tiny declarative command-line flag parser for the tools/ binaries.
//
// Flags are registered with a name, help text, and a default; Parse()
// consumes `--name=value` / `--name value` / bare `--bool-flag` forms and
// leaves positional arguments available. Unknown flags are an error (tools
// should not silently ignore typos), and so is giving the same flag twice
// with CONFLICTING values — in a long copy-pasted command line, silent
// last-wins hides which of the two the tool actually used. Identical
// repeats pass, and a flag can opt into last-wins via AllowRepetition. No
// global state — each tool builds its own ArgParser.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace mas::cli {

class ArgParser {
 public:
  explicit ArgParser(std::string program_description)
      : description_(std::move(program_description)) {}

  // Registration. The returned pointer stays valid for the parser's lifetime
  // and is filled during Parse().
  std::string* AddString(const std::string& name, const std::string& default_value,
                         const std::string& help);
  std::int64_t* AddInt(const std::string& name, std::int64_t default_value,
                       const std::string& help);
  double* AddDouble(const std::string& name, double default_value, const std::string& help);
  bool* AddBool(const std::string& name, bool default_value, const std::string& help);

  // Opts a registered flag into repetition: when given more than once the
  // last occurrence wins instead of conflicting values being an error.
  // Throws when `name` was never registered.
  void AllowRepetition(const std::string& name);

  // Parses argv. Returns false (after printing usage) when --help was given;
  // throws mas::Error on malformed or unknown flags.
  bool Parse(int argc, const char* const* argv);

  // Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  // Usage text assembled from the registrations.
  std::string Usage(const std::string& program_name) const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };
  struct Flag {
    std::string name;
    std::string help;
    Kind kind;
    std::string default_text;
    bool repeatable = false;               // AllowRepetition opt-in
    std::optional<std::string> seen_text;  // first occurrence this Parse()
    // Exactly one is used, per kind.
    std::unique_ptr<std::string> string_value;
    std::unique_ptr<std::int64_t> int_value;
    std::unique_ptr<double> double_value;
    std::unique_ptr<bool> bool_value;
  };

  Flag* Find(const std::string& name);
  void Assign(Flag& flag, const std::string& text);

  std::string description_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

// Strict positive-integer parser for positional arguments (the examples'
// `[max_context]`-style operands): full-string strtoll with the errno/ERANGE
// protocol, so garbage ("12abc", "") and overflowing text throw mas::Error
// naming `what` instead of silently parsing to 0 or saturating. The result
// additionally must lie in [1, max_value].
std::int64_t ParsePositiveInt64(const std::string& text, const std::string& what,
                                std::int64_t max_value = INT64_MAX);

// Strict finite-double parser for grammar values (e.g. the --arrival spec's
// key=value params): full-string strtod with the errno/ERANGE overflow
// protocol. Empty text, trailing garbage, overflow to ±HUGE_VAL, and
// inf/nan literals throw mas::Error naming `what`; subnormals pass.
double ParseFiniteDouble(const std::string& text, const std::string& what);

// Parses the sweep sequence grammar used by flags like --seq:
//   "512"            -> {512}
//   "128,256,512"    -> explicit comma list
//   "128:1024"       -> geometric range with the default *2 step
//   "128:4096:*2"    -> geometric range: start, start*2, ... while <= end
//   "128:640:+128"   -> arithmetic range: start, start+128, ... while <= end
// The end point is inclusive when the step lands on it exactly. Throws
// mas::Error on malformed text, non-positive values, or steps that do not
// advance (*1, +0).
std::vector<std::int64_t> ParseInt64Sequence(const std::string& text);

}  // namespace mas::cli
