#include "cli/args.h"

#include <cstdlib>
#include <memory>

namespace mas::cli {

namespace {

bool LooksLikeFlag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

std::string* ArgParser::AddString(const std::string& name, const std::string& default_value,
                                  const std::string& help) {
  MAS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  Flag flag;
  flag.name = name;
  flag.help = help;
  flag.kind = Kind::kString;
  flag.default_text = default_value.empty() ? "\"\"" : default_value;
  flag.string_value = std::make_unique<std::string>(default_value);
  flags_.push_back(std::move(flag));
  return flags_.back().string_value.get();
}

std::int64_t* ArgParser::AddInt(const std::string& name, std::int64_t default_value,
                                const std::string& help) {
  MAS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  Flag flag;
  flag.name = name;
  flag.help = help;
  flag.kind = Kind::kInt;
  flag.default_text = std::to_string(default_value);
  flag.int_value = std::make_unique<std::int64_t>(default_value);
  flags_.push_back(std::move(flag));
  return flags_.back().int_value.get();
}

double* ArgParser::AddDouble(const std::string& name, double default_value,
                             const std::string& help) {
  MAS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  Flag flag;
  flag.name = name;
  flag.help = help;
  flag.kind = Kind::kDouble;
  flag.default_text = std::to_string(default_value);
  flag.double_value = std::make_unique<double>(default_value);
  flags_.push_back(std::move(flag));
  return flags_.back().double_value.get();
}

bool* ArgParser::AddBool(const std::string& name, bool default_value, const std::string& help) {
  MAS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  Flag flag;
  flag.name = name;
  flag.help = help;
  flag.kind = Kind::kBool;
  flag.default_text = default_value ? "true" : "false";
  flag.bool_value = std::make_unique<bool>(default_value);
  flags_.push_back(std::move(flag));
  return flags_.back().bool_value.get();
}

ArgParser::Flag* ArgParser::Find(const std::string& name) {
  for (Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

void ArgParser::Assign(Flag& flag, const std::string& text) {
  switch (flag.kind) {
    case Kind::kString:
      *flag.string_value = text;
      return;
    case Kind::kInt: {
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      MAS_CHECK(end != nullptr && *end == '\0' && !text.empty())
          << "--" << flag.name << " expects an integer, got '" << text << "'";
      *flag.int_value = v;
      return;
    }
    case Kind::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      MAS_CHECK(end != nullptr && *end == '\0' && !text.empty())
          << "--" << flag.name << " expects a number, got '" << text << "'";
      *flag.double_value = v;
      return;
    }
    case Kind::kBool:
      if (text == "true" || text == "1") {
        *flag.bool_value = true;
      } else if (text == "false" || text == "0") {
        *flag.bool_value = false;
      } else {
        MAS_FAIL() << "--" << flag.name << " expects true/false, got '" << text << "'";
      }
      return;
  }
}

bool ArgParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (!LooksLikeFlag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::size_t eq = arg.find('=');
    const std::string name = arg.substr(2, eq == std::string::npos ? std::string::npos : eq - 2);
    Flag* flag = Find(name);
    MAS_CHECK(flag != nullptr) << "unknown flag --" << name << " (see --help)";
    if (eq != std::string::npos) {
      Assign(*flag, arg.substr(eq + 1));
    } else if (flag->kind == Kind::kBool) {
      *flag->bool_value = true;  // bare --flag sets a boolean
    } else {
      MAS_CHECK(i + 1 < argc) << "--" << name << " expects a value";
      Assign(*flag, argv[++i]);
    }
  }
  return true;
}

std::string ArgParser::Usage(const std::string& program_name) const {
  std::string out = description_ + "\n\nusage: " + program_name + " [flags]\n\nflags:\n";
  for (const Flag& flag : flags_) {
    std::string line = "  --" + flag.name;
    if (line.size() < 26) line.resize(26, ' ');
    out += line + flag.help + " (default: " + flag.default_text + ")\n";
  }
  out += "  --help                  print this message\n";
  return out;
}

}  // namespace mas::cli
