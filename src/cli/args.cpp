#include "cli/args.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <memory>

namespace mas::cli {

namespace {

bool LooksLikeFlag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

std::string* ArgParser::AddString(const std::string& name, const std::string& default_value,
                                  const std::string& help) {
  MAS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  Flag flag;
  flag.name = name;
  flag.help = help;
  flag.kind = Kind::kString;
  flag.default_text = default_value.empty() ? "\"\"" : default_value;
  flag.string_value = std::make_unique<std::string>(default_value);
  flags_.push_back(std::move(flag));
  return flags_.back().string_value.get();
}

std::int64_t* ArgParser::AddInt(const std::string& name, std::int64_t default_value,
                                const std::string& help) {
  MAS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  Flag flag;
  flag.name = name;
  flag.help = help;
  flag.kind = Kind::kInt;
  flag.default_text = std::to_string(default_value);
  flag.int_value = std::make_unique<std::int64_t>(default_value);
  flags_.push_back(std::move(flag));
  return flags_.back().int_value.get();
}

double* ArgParser::AddDouble(const std::string& name, double default_value,
                             const std::string& help) {
  MAS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  Flag flag;
  flag.name = name;
  flag.help = help;
  flag.kind = Kind::kDouble;
  flag.default_text = std::to_string(default_value);
  flag.double_value = std::make_unique<double>(default_value);
  flags_.push_back(std::move(flag));
  return flags_.back().double_value.get();
}

bool* ArgParser::AddBool(const std::string& name, bool default_value, const std::string& help) {
  MAS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  Flag flag;
  flag.name = name;
  flag.help = help;
  flag.kind = Kind::kBool;
  flag.default_text = default_value ? "true" : "false";
  flag.bool_value = std::make_unique<bool>(default_value);
  flags_.push_back(std::move(flag));
  return flags_.back().bool_value.get();
}

void ArgParser::AllowRepetition(const std::string& name) {
  Flag* flag = Find(name);
  MAS_CHECK(flag != nullptr) << "AllowRepetition on unregistered flag --" << name;
  flag->repeatable = true;
}

ArgParser::Flag* ArgParser::Find(const std::string& name) {
  for (Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

void ArgParser::Assign(Flag& flag, const std::string& text) {
  switch (flag.kind) {
    case Kind::kString:
      *flag.string_value = text;
      return;
    case Kind::kInt: {
      char* end = nullptr;
      errno = 0;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      MAS_CHECK(!text.empty() && end != nullptr && *end == '\0')
          << "--" << flag.name << " expects an integer, got '" << text << "'";
      MAS_CHECK(errno != ERANGE) << "--" << flag.name << " out of range: '" << text << "'";
      *flag.int_value = v;
      return;
    }
    case Kind::kDouble: {
      char* end = nullptr;
      errno = 0;
      const double v = std::strtod(text.c_str(), &end);
      MAS_CHECK(!text.empty() && end != nullptr && *end == '\0')
          << "--" << flag.name << " expects a number, got '" << text << "'";
      // ERANGE covers both overflow (result clamped to ±HUGE_VAL) and
      // gradual underflow to a subnormal. Only overflow loses the value —
      // subnormals parse to their correct nearest double and must pass.
      MAS_CHECK(errno != ERANGE || (v > -HUGE_VAL && v < HUGE_VAL))
          << "--" << flag.name << " out of range: '" << text << "'";
      *flag.double_value = v;
      return;
    }
    case Kind::kBool:
      if (text == "true" || text == "1") {
        *flag.bool_value = true;
      } else if (text == "false" || text == "0") {
        *flag.bool_value = false;
      } else {
        MAS_FAIL() << "--" << flag.name << " expects true/false, got '" << text << "'";
      }
      return;
  }
}

bool ArgParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (!LooksLikeFlag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::size_t eq = arg.find('=');
    const std::string name = arg.substr(2, eq == std::string::npos ? std::string::npos : eq - 2);
    Flag* flag = Find(name);
    if (flag == nullptr) {
      std::string available;
      for (const Flag& f : flags_) {
        if (!available.empty()) available += ", ";
        available += "--" + f.name;
      }
      MAS_FAIL() << "unknown flag --" << name << "; options: " << available
                 << " (see --help)";
    }
    std::string text;
    if (eq != std::string::npos) {
      text = arg.substr(eq + 1);
    } else if (flag->kind == Kind::kBool) {
      text = "true";  // bare --flag sets a boolean
    } else {
      MAS_CHECK(i + 1 < argc) << "--" << name << " expects a value";
      text = argv[++i];
    }
    // A repeated flag with a DIFFERENT value is ambiguous — refuse to pick
    // one silently. Identical repeats and opted-in flags pass (last wins).
    if (flag->seen_text.has_value() && !flag->repeatable) {
      MAS_CHECK(*flag->seen_text == text)
          << "--" << name << " given twice with conflicting values '" << *flag->seen_text
          << "' and '" << text << "'";
    }
    flag->seen_text = text;
    Assign(*flag, text);
  }
  return true;
}

std::int64_t ParsePositiveInt64(const std::string& text, const std::string& what,
                                std::int64_t max_value) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  MAS_CHECK(!text.empty() && end != nullptr && *end == '\0')
      << what << " expects an integer, got '" << text << "'";
  MAS_CHECK(errno != ERANGE) << what << " out of range: '" << text << "'";
  MAS_CHECK(v > 0) << what << " expects a positive value, got " << v;
  MAS_CHECK(v <= max_value) << what << " must be at most " << max_value << ", got " << v;
  return v;
}

double ParseFiniteDouble(const std::string& text, const std::string& what) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  MAS_CHECK(!text.empty() && end != nullptr && *end == '\0')
      << what << " expects a number, got '" << text << "'";
  // ERANGE covers overflow (clamped to ±HUGE_VAL) and gradual underflow to a
  // subnormal; only overflow loses the value. Explicit inf/nan literals parse
  // without ERANGE, so reject non-finite results outright.
  MAS_CHECK(errno != ERANGE || (v > -HUGE_VAL && v < HUGE_VAL))
      << what << " out of range: '" << text << "'";
  MAS_CHECK(std::isfinite(v)) << what << " must be finite, got '" << text << "'";
  return v;
}

namespace {

std::int64_t ParsePositiveInt(const std::string& text, const std::string& what) {
  return ParsePositiveInt64(text, what);
}

}  // namespace

std::vector<std::int64_t> ParseInt64Sequence(const std::string& text) {
  MAS_CHECK(!text.empty()) << "empty sequence";

  // Comma list (also covers the single-value case).
  if (text.find(':') == std::string::npos) {
    std::vector<std::int64_t> values;
    std::size_t pos = 0;
    while (pos <= text.size()) {
      const std::size_t comma = text.find(',', pos);
      const std::string item =
          text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
      values.push_back(ParsePositiveInt(item, "sequence element"));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    return values;
  }

  // start:end[:*k | :+k] range.
  const std::size_t c1 = text.find(':');
  const std::size_t c2 = text.find(':', c1 + 1);
  const std::string start_text = text.substr(0, c1);
  const std::string end_text =
      text.substr(c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);
  const std::string step_text = c2 == std::string::npos ? "*2" : text.substr(c2 + 1);

  const std::int64_t start = ParsePositiveInt(start_text, "range start");
  const std::int64_t end = ParsePositiveInt(end_text, "range end");
  MAS_CHECK(start <= end) << "range start " << start << " exceeds end " << end;
  MAS_CHECK(step_text.size() >= 2 && (step_text[0] == '*' || step_text[0] == '+'))
      << "range step must be *K or +K, got '" << step_text << "'";
  const std::int64_t k = ParsePositiveInt(step_text.substr(1), "range step");

  // Overflow-safe stepping: advance only while the next value provably fits
  // under `end` (v <= end/k  <=>  v*k <= end for positive int64s).
  std::vector<std::int64_t> values;
  if (step_text[0] == '*') {
    MAS_CHECK(k >= 2) << "geometric step *" << k << " does not advance";
    for (std::int64_t v = start;;) {
      values.push_back(v);
      if (v > end / k) break;
      v *= k;
    }
  } else {
    for (std::int64_t v = start;;) {
      values.push_back(v);
      if (v > end - k) break;
      v += k;
    }
  }
  return values;
}

std::string ArgParser::Usage(const std::string& program_name) const {
  std::string out = description_ + "\n\nusage: " + program_name + " [flags]\n\nflags:\n";
  for (const Flag& flag : flags_) {
    std::string line = "  --" + flag.name;
    if (line.size() < 26) line.resize(26, ' ');
    out += line + flag.help + " (default: " + flag.default_text + ")\n";
  }
  out += "  --help                  print this message\n";
  return out;
}

}  // namespace mas::cli
