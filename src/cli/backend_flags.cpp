#include "cli/backend_flags.h"

#include <ostream>

#include "common/table.h"
#include "sim/backend.h"

namespace mas::cli {

void PrintBackendCatalog(std::ostream& out) {
  sim::BackendRegistry& registry = sim::BackendRegistry::Instance();
  TextTable table({"Backend", "family", "summary"});
  for (const sim::BackendInfo& info : registry.List()) {
    table.AddRow({info.name, info.family, info.summary});
  }
  out << table.ToString();

  out << "\nSpec grammar: backend[:key=value,...] — tunables with their defaults:\n";
  for (const sim::BackendInfo& info : registry.List()) {
    out << "  " << SpecToString(info.name, info.tunables) << "\n";
  }

  out << "\nDefault configurations:\n";
  for (const sim::BackendInfo& info : registry.List()) {
    sim::BackendSpec spec;
    spec.backend = info.name;
    out << registry.Create(spec).Describe();
  }
}

}  // namespace mas::cli
