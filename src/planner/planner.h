// mas::Planner — the session facade over the paper's two-phase workflow.
//
// Phase 1 (offline, §4.2): Plan() resolves a (shape, method, hardware,
// policy) request to a durable TuningPlan. The method is a string key into
// the SchedulerRegistry; the tiling comes from the strategy named in
// PlannerOptions::spec (StrategyRegistry) — unless the plan store already
// holds a plan for the identical request, in which case the stored plan is
// returned with ZERO new search evaluations (warm start).
//
// Phase 2 (online): Simulate() plays a plan's tiling on the event engine and
// returns the bit-exact SimResult — identical to calling the scheduler
// directly with the same tiling.
//
// Plans are durable artifacts: PlanStore round-trips through JSON
// (common/json_writer + common/json_reader), so `mas_run
// --plan-cache=plans.json` persists tuning across processes instead of
// re-running the search in every binary.
//
// Thread-safety: one Planner may be shared by worker threads (the sweep
// runner does). Plan()/PlanFixed()/counters are mutex-guarded; searches for
// distinct keys run concurrently outside the lock. store() hands out the
// unguarded PlanStore — call Load/Save from single-threaded setup/teardown
// phases only.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "dataflow/attention_shape.h"
#include "schedulers/scheduler.h"
#include "search/strategy.h"
#include "sim/energy_model.h"
#include "sim/engine.h"
#include "sim/hardware_config.h"

namespace mas {

class JsonWriter;
namespace json {
class Value;
}

// How a plan picks its tiling when none is fixed. (Historically
// runner::TilingPolicy; the runner keeps a compat alias.)
enum class TilingPolicy {
  kAutoTile = 0,       // the configured search strategy for every method
  kPaperProtocol = 1,  // as kAutoTile, except FuseMax uses the paper's §5.5
                       // manual array-native tiling (table/harness behavior)
};

// Stable identity of a plan request: method name, shape dims (display name
// excluded), the full hardware parameter set, and the tiling request
// (policy, or a fixed tiling). Shared by the plan store and the sweep
// runner's result cache, so the two layers agree on what "the same job" is.
std::string PlanKey(const std::string& method, const AttentionShape& shape,
                    const sim::HardwareConfig& hw, TilingPolicy policy);
std::string PlanKey(const std::string& method, const AttentionShape& shape,
                    const sim::HardwareConfig& hw, const TilingConfig& fixed_tiling);

// One offline tuning decision, durable across processes.
struct TuningPlan {
  std::string method;    // canonical scheduler name (registry key)
  AttentionShape shape;  // problem instance (name kept for display)
  std::string hardware;  // hardware display name (identity lives in `key`)
  std::string key;       // PlanKey() of the originating request

  TilingConfig tiling;            // resolved tiling
  double predicted_cycles = 0.0;  // simulated cycles of `tiling` at plan time

  // Search provenance.
  std::string strategy;  // "grid" / "ga" / "mcts" / "manual" / "fixed"
  std::uint64_t seed = 0;
  std::int64_t evaluations = 0;  // simulator evaluations the search spent

  // Serialization. WriteJson emits one JSON object into `w`; FromJson
  // rebuilds a plan and throws mas::Error on missing fields, type
  // mismatches, or invalid values.
  void WriteJson(JsonWriter& w) const;
  static TuningPlan FromJson(const json::Value& v);
};

// Keyed collection of plans with a deterministic JSON representation
// (entries sorted by key; identical stores serialize to identical bytes).
class PlanStore {
 public:
  const TuningPlan* Find(const std::string& key) const;
  void Put(TuningPlan plan);  // upserts by plan.key
  std::size_t size() const { return plans_.size(); }
  bool empty() const { return plans_.empty(); }
  void Clear() { plans_.clear(); }

  // {"version":1,"plans":[...]} — see README "Plan-cache file format".
  std::string ToJson() const;
  // Throws mas::Error on malformed JSON, an unsupported version, or
  // mismatched plan objects.
  static PlanStore FromJson(const std::string& text);

  // File round-trip. LoadFile merges the file's plans into this store and
  // returns false (without modifying anything) when the file cannot be
  // opened (e.g. it does not exist yet); read errors and parse failures
  // throw. SaveFile writes ToJson() plus a trailing newline.
  bool LoadFile(const std::string& path);
  void SaveFile(const std::string& path) const;

 private:
  std::map<std::string, TuningPlan> plans_;
};

struct PlannerOptions {
  // Strategy + knobs used on a plan-store miss. The default reproduces
  // search::AutoTile (coarse power-of-two grid), so plans match the legacy
  // per-call tuning bit-for-bit.
  search::SearchSpec spec = search::SearchSpec::AutoTileDefault();
};

class Planner {
 public:
  explicit Planner(sim::EnergyModel energy_model = {}, PlannerOptions options = {});

  // Offline phase: resolve (shape, method, hw, policy) to a TuningPlan.
  // Store hit: returns the stored plan, zero search evaluations. Miss: runs
  // the configured strategy, records the plan, and counts its evaluations
  // in search_evaluations(). Throws when the method is unknown (listing the
  // registry) or no feasible tiling exists.
  TuningPlan Plan(const AttentionShape& shape, const std::string& method,
                  const sim::HardwareConfig& hw,
                  TilingPolicy policy = TilingPolicy::kAutoTile);
  // Compat overload for the Method enum.
  TuningPlan Plan(const AttentionShape& shape, Method method, const sim::HardwareConfig& hw,
                  TilingPolicy policy = TilingPolicy::kAutoTile);

  // As Plan(), but with a caller-chosen tiling: validates it, checks the
  // dataflow's Fits(), and records provenance "fixed" (no search).
  TuningPlan PlanFixed(const AttentionShape& shape, const std::string& method,
                       const sim::HardwareConfig& hw, const TilingConfig& tiling);
  TuningPlan PlanFixed(const AttentionShape& shape, Method method,
                       const sim::HardwareConfig& hw, const TilingConfig& tiling);

  // Online phase: plays the plan's schedule. Bit-identical to calling the
  // scheduler's Simulate() with the same tiling/hardware.
  sim::SimResult Simulate(const TuningPlan& plan, const sim::HardwareConfig& hw,
                          bool record_timeline = false, sim::Engine* engine = nullptr) const;

  // The durable plan collection (load before / save after a run; unguarded).
  PlanStore& store() { return store_; }
  const PlanStore& store() const { return store_; }

  // Session counters (monotonic since construction).
  std::int64_t search_evaluations() const;  // simulator evals spent in searches
  std::int64_t plans_tuned() const;         // store misses that ran a search
  std::int64_t plans_reused() const;        // store hits

  const PlannerOptions& options() const { return options_; }
  const sim::EnergyModel& energy_model() const { return energy_model_; }

 private:
  TuningPlan PlanImpl(const AttentionShape& shape, const std::string& method,
                      const sim::HardwareConfig& hw, TilingPolicy policy);

  sim::EnergyModel energy_model_;
  PlannerOptions options_;
  PlanStore store_;
  mutable std::mutex mu_;
  std::int64_t search_evaluations_ = 0;
  std::int64_t plans_tuned_ = 0;
  std::int64_t plans_reused_ = 0;
};

}  // namespace mas
