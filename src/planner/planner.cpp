#include "planner/planner.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/json_reader.h"
#include "common/json_writer.h"
#include "common/status.h"
#include "schedulers/registry.h"

namespace mas {

namespace {

void AppendRequestPrefix(std::ostringstream& os, const std::string& method,
                         const AttentionShape& shape, const sim::HardwareConfig& hw) {
  // Shape display name is excluded: two differently named shapes with the
  // same dimensions plan (and simulate) identically.
  os << "m:" << method << "|s:" << shape.batch << ',' << shape.heads << ','
     << shape.seq_len << ',' << shape.embed << ',' << shape.kv_len << '|' << hw.CacheKey();
}

}  // namespace

std::string PlanKey(const std::string& method, const AttentionShape& shape,
                    const sim::HardwareConfig& hw, TilingPolicy policy) {
  std::ostringstream os;
  AppendRequestPrefix(os, method, shape, hw);
  os << "|p:" << static_cast<int>(policy);
  return os.str();
}

std::string PlanKey(const std::string& method, const AttentionShape& shape,
                    const sim::HardwareConfig& hw, const TilingConfig& fixed_tiling) {
  std::ostringstream os;
  AppendRequestPrefix(os, method, shape, hw);
  os << "|t:" << fixed_tiling.bb << ',' << fixed_tiling.hh << ',' << fixed_tiling.nq << ','
     << fixed_tiling.nkv;
  return os.str();
}

// ----------------------------------------------------------------- TuningPlan

void TuningPlan::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.KeyValue("key", key);
  w.KeyValue("method", method);
  w.BeginObject("shape");
  w.KeyValue("name", shape.name);
  w.KeyValue("batch", shape.batch);
  w.KeyValue("heads", shape.heads);
  w.KeyValue("seq_len", shape.seq_len);
  w.KeyValue("embed", shape.embed);
  // Raw kv_len (0 = self-attention), unlike report JSON's resolved kv():
  // the plan must round-trip the request exactly.
  w.KeyValue("kv_len", shape.kv_len);
  w.EndObject();
  w.KeyValue("hardware", hardware);
  w.BeginObject("tiling");
  w.KeyValue("bb", tiling.bb);
  w.KeyValue("hh", tiling.hh);
  w.KeyValue("nq", tiling.nq);
  w.KeyValue("nkv", tiling.nkv);
  w.EndObject();
  w.KeyValue("predicted_cycles", predicted_cycles);
  w.BeginObject("search");
  w.KeyValue("strategy", strategy);
  w.KeyValue("seed", static_cast<std::uint64_t>(seed));
  w.KeyValue("evaluations", evaluations);
  w.EndObject();
  w.EndObject();
}

TuningPlan TuningPlan::FromJson(const json::Value& v) {
  MAS_CHECK(v.is_object()) << "tuning plan JSON is not an object";
  TuningPlan plan;
  plan.key = v.Get("key").AsString();
  MAS_CHECK(!plan.key.empty()) << "tuning plan has an empty key";
  plan.method = v.Get("method").AsString();

  const json::Value& shape = v.Get("shape");
  plan.shape.name = shape.Get("name").AsString();
  plan.shape.batch = shape.Get("batch").AsInt64();
  plan.shape.heads = shape.Get("heads").AsInt64();
  plan.shape.seq_len = shape.Get("seq_len").AsInt64();
  plan.shape.embed = shape.Get("embed").AsInt64();
  plan.shape.kv_len = shape.Get("kv_len").AsInt64();
  plan.shape.Validate();

  plan.hardware = v.Get("hardware").AsString();

  const json::Value& tiling = v.Get("tiling");
  plan.tiling.bb = tiling.Get("bb").AsInt64();
  plan.tiling.hh = tiling.Get("hh").AsInt64();
  plan.tiling.nq = tiling.Get("nq").AsInt64();
  plan.tiling.nkv = tiling.Get("nkv").AsInt64();
  plan.tiling.Validate(plan.shape);

  plan.predicted_cycles = v.Get("predicted_cycles").AsDouble();

  const json::Value& search = v.Get("search");
  plan.strategy = search.Get("strategy").AsString();
  plan.seed = static_cast<std::uint64_t>(search.Get("seed").AsInt64());
  plan.evaluations = search.Get("evaluations").AsInt64();
  MAS_CHECK(plan.evaluations >= 0) << "tuning plan has negative evaluations";

  // Cross-check the key against the fields it encodes (the hardware segment
  // cannot be recomputed from the plan — only its name is stored — but the
  // method/shape prefix and a fixed plan's tiling suffix can): a merged or
  // hand-edited store whose key and payload disagree must fail at load, not
  // serve wrong-shape plans at lookup.
  {
    std::ostringstream prefix;
    prefix << "m:" << plan.method << "|s:" << plan.shape.batch << ',' << plan.shape.heads
           << ',' << plan.shape.seq_len << ',' << plan.shape.embed << ','
           << plan.shape.kv_len << '|';
    MAS_CHECK(plan.key.compare(0, prefix.str().size(), prefix.str()) == 0)
        << "tuning plan key does not match its method/shape fields: " << plan.key;
    if (plan.strategy == "fixed") {
      std::ostringstream suffix;
      suffix << "|t:" << plan.tiling.bb << ',' << plan.tiling.hh << ',' << plan.tiling.nq
             << ',' << plan.tiling.nkv;
      const std::string want = suffix.str();
      MAS_CHECK(plan.key.size() >= want.size() &&
                plan.key.compare(plan.key.size() - want.size(), want.size(), want) == 0)
          << "fixed tuning plan key does not match its tiling: " << plan.key;
    }
  }
  return plan;
}

// ------------------------------------------------------------------ PlanStore

const TuningPlan* PlanStore::Find(const std::string& key) const {
  auto it = plans_.find(key);
  return it == plans_.end() ? nullptr : &it->second;
}

void PlanStore::Put(TuningPlan plan) {
  MAS_CHECK(!plan.key.empty()) << "cannot store a tuning plan without a key";
  plans_[plan.key] = std::move(plan);
}

std::string PlanStore::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("version", 1);
  w.BeginArray("plans");
  // std::map iterates in key order: identical stores → identical bytes.
  for (const auto& [key, plan] : plans_) plan.WriteJson(w);
  w.EndArray();
  w.EndObject();
  return w.Take();
}

PlanStore PlanStore::FromJson(const std::string& text) {
  const json::Value doc = json::Parse(text);
  MAS_CHECK(doc.is_object()) << "plan store JSON is not an object";
  const std::int64_t version = doc.Get("version").AsInt64();
  MAS_CHECK(version == 1) << "unsupported plan store version " << version;
  PlanStore store;
  for (const json::Value& entry : doc.Get("plans").AsArray()) {
    store.Put(TuningPlan::FromJson(entry));
  }
  return store;
}

bool PlanStore::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;  // missing (or unreadable) file: no-op
  std::ostringstream buffer;
  buffer << in.rdbuf();
  MAS_CHECK(!in.bad()) << "I/O error reading plan cache '" << path << "'";
  PlanStore loaded = FromJson(buffer.str());
  for (auto& [key, plan] : loaded.plans_) plans_[key] = std::move(plan);
  return true;
}

void PlanStore::SaveFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MAS_CHECK(out.is_open()) << "cannot open plan cache '" << path << "' for writing";
  out << ToJson() << '\n';
  out.flush();
  MAS_CHECK(out.good()) << "I/O error writing plan cache '" << path << "'";
}

// -------------------------------------------------------------------- Planner

Planner::Planner(sim::EnergyModel energy_model, PlannerOptions options)
    : energy_model_(energy_model), options_(std::move(options)) {}

TuningPlan Planner::Plan(const AttentionShape& shape, const std::string& method,
                         const sim::HardwareConfig& hw, TilingPolicy policy) {
  return PlanImpl(shape, method, hw, policy);
}

TuningPlan Planner::Plan(const AttentionShape& shape, Method method,
                         const sim::HardwareConfig& hw, TilingPolicy policy) {
  return PlanImpl(shape, SchedulerRegistry::Instance().Info(method).name, hw, policy);
}

TuningPlan Planner::PlanImpl(const AttentionShape& shape, const std::string& method,
                             const sim::HardwareConfig& hw, TilingPolicy policy) {
  shape.Validate();
  SchedulerRegistry& registry = SchedulerRegistry::Instance();
  const SchedulerInfo* info = registry.Find(method);
  if (info == nullptr) {
    MAS_FAIL() << "unknown method '" << method
               << "'; options: " << registry.AvailableNames();
  }
  // The search spec is part of the plan's identity: a store warmed with
  // grid-tuned plans must not silently satisfy a request for (say) an MCTS
  // tuning with a different budget — those retune under their own key.
  const std::string key =
      PlanKey(info->name, shape, hw, policy) + '|' + options_.spec.IdentityKey();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const TuningPlan* hit = store_.Find(key)) {
      ++plans_reused_;
      return *hit;
    }
  }

  const auto sched = registry.Create(info->method);
  TuningPlan plan;
  plan.method = info->name;
  plan.shape = shape;
  plan.hardware = hw.name;
  plan.key = key;

  if (policy == TilingPolicy::kPaperProtocol && info->method == Method::kFuseMax) {
    // The paper's §5.5 FuseMax protocol: manually selected array-native
    // tiles (PE-mesh granularity) rather than a searched configuration;
    // falls back to the configured search when the manual mapping cannot
    // fit.
    const auto& cc = hw.cores.front();
    const TilingConfig manual{1, 1, std::min(cc.mac_rows, shape.seq_len),
                              std::min(cc.mac_cols, shape.kv())};
    if (sched->Fits(shape, manual, hw)) {
      plan.tiling = manual;
      plan.strategy = "manual";
      plan.predicted_cycles =
          static_cast<double>(sched->Simulate(shape, manual, hw, energy_model_).cycles);
    }
  }
  if (plan.strategy.empty()) {
    search::TilingProblem problem(*sched, shape, hw, energy_model_);
    const search::SearchResult result = search::RunSearch(problem, options_.spec);
    MAS_CHECK(result.found()) << "no feasible tiling for " << sched->name() << " on "
                              << shape.ToString();
    plan.tiling = result.best;
    plan.predicted_cycles = result.best_cycles;
    plan.strategy = options_.spec.strategy;
    plan.seed = options_.spec.seed;
    plan.evaluations = result.evaluations;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (const TuningPlan* hit = store_.Find(key)) {
    // Lost a race with a concurrent Plan() for the same key: keep the stored
    // plan as the single durable truth.
    ++plans_reused_;
    return *hit;
  }
  search_evaluations_ += plan.evaluations;
  ++plans_tuned_;
  store_.Put(plan);
  return plan;
}

TuningPlan Planner::PlanFixed(const AttentionShape& shape, const std::string& method,
                              const sim::HardwareConfig& hw, const TilingConfig& tiling) {
  shape.Validate();
  SchedulerRegistry& registry = SchedulerRegistry::Instance();
  const SchedulerInfo* info = registry.Find(method);
  if (info == nullptr) {
    MAS_FAIL() << "unknown method '" << method
               << "'; options: " << registry.AvailableNames();
  }
  tiling.Validate(shape);
  const std::string key = PlanKey(info->name, shape, hw, tiling);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const TuningPlan* hit = store_.Find(key)) {
      ++plans_reused_;
      return *hit;
    }
  }

  const auto sched = registry.Create(info->method);
  MAS_CHECK(sched->Fits(shape, tiling, hw))
      << tiling.ToString() << " does not fit for " << sched->name() << " on "
      << shape.ToString();
  TuningPlan plan;
  plan.method = info->name;
  plan.shape = shape;
  plan.hardware = hw.name;
  plan.key = key;
  plan.tiling = tiling;
  plan.strategy = "fixed";
  // One up-front simulate fills predicted_cycles (the searched path gets it
  // free from the search); callers that immediately Simulate() the plan pay
  // it once more, but the plan — and the price — is store-amortized.
  plan.predicted_cycles =
      static_cast<double>(sched->Simulate(shape, tiling, hw, energy_model_).cycles);

  std::lock_guard<std::mutex> lock(mu_);
  if (const TuningPlan* hit = store_.Find(key)) {
    ++plans_reused_;
    return *hit;
  }
  ++plans_tuned_;
  store_.Put(plan);
  return plan;
}

TuningPlan Planner::PlanFixed(const AttentionShape& shape, Method method,
                              const sim::HardwareConfig& hw, const TilingConfig& tiling) {
  return PlanFixed(shape, SchedulerRegistry::Instance().Info(method).name, hw, tiling);
}

sim::SimResult Planner::Simulate(const TuningPlan& plan, const sim::HardwareConfig& hw,
                                 bool record_timeline, sim::Engine* engine) const {
  const auto sched = SchedulerRegistry::Instance().Create(plan.method);
  return sched->Simulate(plan.shape, plan.tiling, hw, energy_model_, record_timeline,
                         engine);
}

std::int64_t Planner::search_evaluations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return search_evaluations_;
}

std::int64_t Planner::plans_tuned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_tuned_;
}

std::int64_t Planner::plans_reused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_reused_;
}

}  // namespace mas
