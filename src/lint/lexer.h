// A minimal C++ tokenizer for the mas_lint rule battery.
//
// This is deliberately not a compiler front end: rules need identifier
// streams with line numbers, string-literal contents, and the comment text
// that carries `// mas-lint: allow(...)` suppressions. Preprocessor lines
// tokenize like ordinary code (`#` is a punctuator), comments never reach
// the token stream, and string/char literals arrive as single tokens whose
// text is the *uninterpreted* body (escapes preserved, quotes stripped) so
// rules can substring-match message text deterministically.
#pragma once

#include <string>
#include <vector>

namespace mas::lint {

enum class TokenKind {
  kIdentifier,  // [A-Za-z_][A-Za-z0-9_]*  (keywords included)
  kNumber,      // pp-number, lenient: 0x1F, 1e-9, 2'000, 1.5f, ...
  kString,      // "..."  or  R"tag(...)tag"  — text is the body
  kChar,        // '...' — text is the body
  kPunct,       // one character, except the two-char tokens "::" and "->"
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

// One comment, with the comment markers stripped. A block comment spanning
// several lines is recorded once at its opening line.
struct Comment {
  int line = 0;
  std::string text;
};

struct TokenStream {
  std::vector<Token> tokens;
  std::vector<Comment> comments;  // in source order
};

// Tokenizes `text`. Never throws: unterminated literals/comments tokenize
// to end-of-file (lint must degrade gracefully on code that gcc rejects).
TokenStream Tokenize(const std::string& text);

}  // namespace mas::lint
