// The builtin mas_lint rule battery. Each rule encodes one project
// invariant that the dynamic determinism tests (jobs-1/2/8 byte-equality,
// golden pins, warm-cache replays) can only catch after the fact; these
// matchers catch the pattern at diff time.
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace mas::lint {
namespace {

const std::vector<Token>* Toks(const FileContext& ctx) { return &ctx.tokens->tokens; }

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool PathContains(const FileContext& ctx, const char* fragment) {
  return ctx.file->path.find(fragment) != std::string::npos;
}

// True when token i is an identifier from `names` used as a *free or
// std-qualified* call: `time(`, `std::time(` — but not `x.time(`,
// `x->time(`, or `SomeClass::time(`.
bool IsBannedCall(const std::vector<Token>& toks, std::size_t i,
                  const std::set<std::string>& names) {
  if (toks[i].kind != TokenKind::kIdentifier || names.count(toks[i].text) == 0) return false;
  if (i + 1 >= toks.size() || toks[i + 1].text != "(") return false;
  if (i == 0) return true;
  const std::string& prev = toks[i - 1].text;
  if (prev == "." || prev == "->") return false;
  if (prev == "::") return i >= 2 && IsIdent(toks[i - 2], "std");
  return true;
}

void Report(const FileContext& ctx, int line, const std::string& rule,
            const std::string& message, std::vector<LintFinding>* out) {
  out->push_back(LintFinding{ctx.file->path, line, rule, message});
}

// ------------------------------------------------------------ no-wallclock
// Simulated time is the only clock: wall-clock reads anywhere near a
// serialized path make output machine- and load-dependent. The few
// legitimate timing sites (stderr wall-clock stats) carry annotations.
class NoWallclockRule : public LintRule {
 public:
  const LintRuleInfo& info() const override {
    static const LintRuleInfo kInfo{
        "no-wallclock",
        "wall-clock reads (std::chrono clocks, time(), clock()) are banned outside "
        "annotated timing sites; simulated output must be machine-independent"};
    return kInfo;
  }

  void Check(const FileContext& ctx, std::vector<LintFinding>* out) const override {
    static const std::set<std::string> kClockIdents = {
        "steady_clock",  "system_clock",  "high_resolution_clock", "gettimeofday",
        "clock_gettime", "timespec_get",  "__DATE__",              "__TIME__",
        "__TIMESTAMP__"};
    static const std::set<std::string> kClockCalls = {"time",   "clock",  "localtime",
                                                      "gmtime", "mktime", "difftime"};
    const auto& toks = *Toks(ctx);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      if (kClockIdents.count(toks[i].text) != 0) {
        Report(ctx, toks[i].line, info().name,
               "wall-clock source '" + toks[i].text + "' — use the simulated clock, or "
               "annotate a stderr-only timing site",
               out);
      } else if (IsBannedCall(toks, i, kClockCalls)) {
        Report(ctx, toks[i].line, info().name,
               "wall-clock call '" + toks[i].text + "()' — use the simulated clock, or "
               "annotate a stderr-only timing site",
               out);
      }
    }
  }
};

// --------------------------------------------------------- rng-discipline
// All randomness flows through common/rng (xoshiro256**, explicit seeds) so
// every draw replays byte-identically. Platform RNGs have unspecified
// per-libc streams, and std::random_device is nondeterministic by design.
class RngDisciplineRule : public LintRule {
 public:
  const LintRuleInfo& info() const override {
    static const LintRuleInfo kInfo{
        "rng-discipline",
        "rand()/srand(), std::random_device, and raw standard engines (mt19937, ...) are "
        "banned outside common/rng; draw from mas::Rng with an explicit seed"};
    return kInfo;
  }

  void Check(const FileContext& ctx, std::vector<LintFinding>* out) const override {
    if (PathContains(ctx, "common/rng")) return;  // the one sanctioned home
    static const std::set<std::string> kEngineIdents = {
        "random_device", "mt19937",  "mt19937_64", "minstd_rand", "minstd_rand0",
        "default_random_engine", "knuth_b", "ranlux24", "ranlux48"};
    static const std::set<std::string> kRandCalls = {"rand",    "srand",   "rand_r",
                                                     "drand48", "lrand48", "mrand48",
                                                     "random",  "srandom"};
    const auto& toks = *Toks(ctx);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      if (kEngineIdents.count(toks[i].text) != 0) {
        Report(ctx, toks[i].line, info().name,
               "platform RNG '" + toks[i].text + "' — all randomness must flow through "
               "mas::Rng (common/rng) with an explicit seed",
               out);
      } else if (IsBannedCall(toks, i, kRandCalls)) {
        Report(ctx, toks[i].line, info().name,
               "platform RNG call '" + toks[i].text + "()' — all randomness must flow "
               "through mas::Rng (common/rng) with an explicit seed",
               out);
      }
    }
  }
};

// ----------------------------------------------------- unordered-iteration
// Hash-table iteration order is implementation-defined, so any loop over an
// unordered container that can reach serialization, metrics, or error text
// is a latent nondeterminism bug. Names are collected from the file and its
// sibling header/source, so a .cpp iterating a member declared in its .h is
// caught. Lookups (find/count/emplace) are untouched; only iteration flags.
class UnorderedIterationRule : public LintRule {
 public:
  const LintRuleInfo& info() const override {
    static const LintRuleInfo kInfo{
        "unordered-iteration",
        "range-for / begin() iteration over unordered_map/unordered_set is flagged; "
        "iterate a sorted copy or annotate why order cannot reach output"};
    return kInfo;
  }

  void Check(const FileContext& ctx, std::vector<LintFinding>* out) const override {
    const auto& toks = *Toks(ctx);
    const std::set<std::string>& names = *ctx.unordered_names;
    if (names.empty()) return;
    static const std::set<std::string> kBeginCalls = {"begin", "cbegin", "rbegin", "crbegin"};

    for (std::size_t i = 0; i < toks.size(); ++i) {
      // Range-for whose range expression mentions an unordered name.
      if (IsIdent(toks[i], "for") && i + 1 < toks.size() && toks[i + 1].text == "(") {
        int depth = 1;
        std::size_t colon = 0;
        for (std::size_t j = i + 2; j < toks.size() && depth > 0; ++j) {
          const std::string& t = toks[j].text;
          if (toks[j].kind != TokenKind::kPunct) continue;
          if (t == "(") ++depth;
          if (t == ")") --depth;
          if (t == ";" && depth == 1) break;  // classic for loop, no range
          if (t == ":" && depth == 1) {
            colon = j;
            break;
          }
        }
        if (colon != 0) {
          depth = 1;
          for (std::size_t j = colon + 1; j < toks.size() && depth > 0; ++j) {
            const std::string& t = toks[j].text;
            if (toks[j].kind == TokenKind::kPunct) {
              if (t == "(") ++depth;
              if (t == ")" && --depth == 0) break;
            } else if (toks[j].kind == TokenKind::kIdentifier && names.count(t) != 0) {
              Report(ctx, toks[i].line, info().name,
                     "range-for over unordered container '" + t +
                         "' — iteration order is nondeterministic; iterate a sorted copy "
                         "or annotate why order cannot reach output",
                     out);
              break;
            }
          }
        }
        continue;
      }
      // Explicit iterator walk: name.begin() / name->cbegin() / ...
      if (toks[i].kind == TokenKind::kIdentifier && names.count(toks[i].text) != 0 &&
          i + 3 < toks.size() && (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
          toks[i + 2].kind == TokenKind::kIdentifier &&
          kBeginCalls.count(toks[i + 2].text) != 0 && toks[i + 3].text == "(") {
        Report(ctx, toks[i].line, info().name,
               "iterator over unordered container '" + toks[i].text +
                   "' — iteration order is nondeterministic; iterate a sorted copy or "
                   "annotate why order cannot reach output",
               out);
      }
    }
  }
};

// ------------------------------------------------------- concurrency-leak
// hardware_concurrency() may only feed --jobs resolution (how much work to
// run at once), never anything serialized — output must be byte-identical
// on a 1-core laptop and a 128-core server.
class ConcurrencyLeakRule : public LintRule {
 public:
  const LintRuleInfo& info() const override {
    static const LintRuleInfo kInfo{
        "concurrency-leak",
        "hardware_concurrency() is restricted to annotated jobs-resolution sites; thread "
        "counts must never shape serialized output"};
    return kInfo;
  }

  void Check(const FileContext& ctx, std::vector<LintFinding>* out) const override {
    const auto& toks = *Toks(ctx);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (IsIdent(toks[i], "hardware_concurrency")) {
        Report(ctx, toks[i].line, info().name,
               "hardware_concurrency() outside an annotated jobs-resolution site — thread "
               "counts must never shape serialized output",
               out);
      }
    }
  }
};

// ---------------------------------------------------- json-schema-version
// The serve/fleet report documents are consumed downstream (dashboards,
// diffing, the bench suites); PR 8 versioned them. Any top-level emitter in
// those subsystems — by convention a function named WriteJson or ToJson —
// must stamp schema_version so consumers can detect layout changes.
class JsonSchemaVersionRule : public LintRule {
 public:
  const LintRuleInfo& info() const override {
    static const LintRuleInfo kInfo{
        "json-schema-version",
        "serve/fleet top-level JSON emitters (WriteJson/ToJson definitions) must write "
        "a schema_version field"};
    return kInfo;
  }

  void Check(const FileContext& ctx, std::vector<LintFinding>* out) const override {
    if (!PathContains(ctx, "src/serve/") && !PathContains(ctx, "src/fleet/")) return;
    const auto& toks = *Toks(ctx);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!IsIdent(toks[i], "WriteJson") && !IsIdent(toks[i], "ToJson")) continue;
      if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
      // Find the parameter list's closing paren.
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        if (toks[j].kind != TokenKind::kPunct) continue;
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")" && --depth == 0) break;
      }
      if (j >= toks.size()) continue;
      ++j;
      while (j < toks.size() && toks[j].kind == TokenKind::kIdentifier &&
             (toks[j].text == "const" || toks[j].text == "noexcept" ||
              toks[j].text == "override" || toks[j].text == "final")) {
        ++j;
      }
      if (j >= toks.size() || toks[j].text != "{") continue;  // declaration or call
      // Scan the body for a "schema_version" string literal.
      depth = 0;
      bool versioned = false;
      for (; j < toks.size(); ++j) {
        if (toks[j].kind == TokenKind::kString &&
            toks[j].text.find("schema_version") != std::string::npos) {
          versioned = true;
        }
        if (toks[j].kind != TokenKind::kPunct) continue;
        if (toks[j].text == "{") ++depth;
        if (toks[j].text == "}" && --depth == 0) break;
      }
      if (!versioned) {
        Report(ctx, toks[i].line, info().name,
               "JSON emitter '" + toks[i].text +
                   "' writes no schema_version — serve/fleet documents are versioned so "
                   "consumers can detect layout changes",
               out);
      }
    }
  }
};

// ----------------------------------------------------------- error-catalog
// A lookup failure that only echoes the bad name strands the user; every
// registry in this codebase throws "unknown X '<name>'; options: <catalog>".
// This rule keeps that contract: an error statement whose text says
// "unknown" must also list what *is* available.
class ErrorCatalogRule : public LintRule {
 public:
  const LintRuleInfo& info() const override {
    static const LintRuleInfo kInfo{
        "error-catalog",
        "error statements saying 'unknown ...' must list the available catalog "
        "(options:/known:/Available...) so lookup failures are self-servicing"};
    return kInfo;
  }

  void Check(const FileContext& ctx, std::vector<LintFinding>* out) const override {
    const auto& toks = *Toks(ctx);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const bool starts_error = IsIdent(toks[i], "MAS_FAIL") || IsIdent(toks[i], "MAS_CHECK") ||
                                IsIdent(toks[i], "throw");
      if (!starts_error) continue;
      bool says_unknown = false;
      bool lists_catalog = false;
      std::size_t j = i;
      for (; j < toks.size(); ++j) {
        const Token& t = toks[j];
        if (t.kind == TokenKind::kPunct && t.text == ";") break;
        if (t.kind == TokenKind::kString) {
          if (t.text.find("unknown") != std::string::npos ||
              t.text.find("Unknown") != std::string::npos) {
            says_unknown = true;
          }
          if (t.text.find("options") != std::string::npos ||
              t.text.find("known:") != std::string::npos ||
              t.text.find("available") != std::string::npos) {
            lists_catalog = true;
          }
        }
        if (t.kind == TokenKind::kIdentifier &&
            t.text.find("Available") != std::string::npos) {
          lists_catalog = true;
        }
      }
      if (says_unknown && !lists_catalog) {
        Report(ctx, toks[i].line, info().name,
               "'unknown ...' error without the available catalog — list the options "
               "(the registry AvailableNames() idiom) or annotate an internal invariant",
               out);
      }
      i = j;  // resume after the statement
    }
  }
};

// ---------------------------------------------------------- env-discipline
// Environment variables and subprocesses are invisible inputs: a run that
// depends on them is not reproducible from its command line. Deliberate
// opt-in knobs carry annotations; nothing may read the environment quietly.
class EnvDisciplineRule : public LintRule {
 public:
  const LintRuleInfo& info() const override {
    static const LintRuleInfo kInfo{
        "env-discipline",
        "getenv()/setenv()/system() are banned outside annotated opt-in sites; runs must "
        "be reproducible from their command line alone"};
    return kInfo;
  }

  void Check(const FileContext& ctx, std::vector<LintFinding>* out) const override {
    static const std::set<std::string> kEnvCalls = {"getenv", "secure_getenv", "setenv",
                                                    "unsetenv", "putenv", "system"};
    const auto& toks = *Toks(ctx);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (IsBannedCall(toks, i, kEnvCalls)) {
        Report(ctx, toks[i].line, info().name,
               "environment/process escape '" + toks[i].text +
                   "()' — runs must be reproducible from the command line; annotate "
                   "deliberate opt-in knobs",
               out);
      }
    }
  }
};

// ------------------------------------------------------ suppression-hygiene
// The suppression system itself is auditable: a directive that is
// malformed, names an unknown rule, or omits its reason is a finding (and
// never silences anything).
class SuppressionHygieneRule : public LintRule {
 public:
  const LintRuleInfo& info() const override {
    static const LintRuleInfo kInfo{
        "suppression-hygiene",
        "mas-lint suppression directives must be well-formed, name registered rules, and "
        "state a reason"};
    return kInfo;
  }

  void Check(const FileContext& ctx, std::vector<LintFinding>* out) const override {
    for (const Suppression& sup : ParseSuppressions(*ctx.tokens)) {
      if (sup.malformed) {
        Report(ctx, sup.line, info().name, "malformed mas-lint directive: " + sup.problem,
               out);
        continue;
      }
      for (const std::string& rule : sup.rules) {
        if (LintRuleRegistry::Instance().Find(rule) == nullptr) {
          Report(ctx, sup.line, info().name,
                 "allow() names unknown rule '" + rule +
                     "'; options: " + LintRuleRegistry::Instance().AvailableNames(),
                 out);
        }
      }
    }
  }
};

}  // namespace

namespace detail {

void RegisterBuiltins(LintRuleRegistry& registry) {
  registry.RegisterImpl(std::make_unique<NoWallclockRule>());
  registry.RegisterImpl(std::make_unique<RngDisciplineRule>());
  registry.RegisterImpl(std::make_unique<UnorderedIterationRule>());
  registry.RegisterImpl(std::make_unique<ConcurrencyLeakRule>());
  registry.RegisterImpl(std::make_unique<JsonSchemaVersionRule>());
  registry.RegisterImpl(std::make_unique<ErrorCatalogRule>());
  registry.RegisterImpl(std::make_unique<EnvDisciplineRule>());
  registry.RegisterImpl(std::make_unique<SuppressionHygieneRule>());
}

}  // namespace detail

}  // namespace mas::lint
