// mas_lint — the project's determinism & concurrency static-analysis pass.
//
// Every subsystem since PR 1 stakes its correctness on one invariant: output
// is byte-identical for any --jobs value, any seed replay, and any rerun.
// The dynamic tests enforce that per run; this pass enforces the *patterns*
// that keep it true at diff time: no wall clocks or thread counts near
// serialized output, all randomness through common/rng, no iteration over
// unordered containers on output paths, versioned report JSON, and registry
// errors that list their catalog.
//
// Rules self-register in the LintRuleRegistry (the scheduler/strategy/
// suite/arrival/fault/router registry idiom): `mas_lint --list` catalogs
// them, unknown rule names throw listing the catalog. Analysis is a
// tokenizer plus per-rule matchers (lint/lexer.h) — no libclang, no
// compiler dependency, so the gate runs in milliseconds on the whole tree.
//
// Suppression is explicit and auditable, never silent:
//   * inline, on the finding's line or the line directly above:
//       // mas-lint: allow(<rule>[,<rule>...]) <reason>
//     The directive must start its comment, and the reason is mandatory; a
//     malformed or reason-less directive does not suppress and is itself a
//     finding (rule `suppression-hygiene`).
//   * a checked-in allowlist file (tools/lint_allow.txt), one entry per
//     line: `<rule> <path-suffix> <reason>`.
// Output is deterministic `file:line: rule: message`, sorted; any finding
// exits nonzero, so CI can gate on `mas_lint src tools tests`.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace mas::lint {

// One source file handed to the linter. `path` is used for rule scoping
// (e.g. json-schema-version applies under src/serve/ and src/fleet/), for
// allowlist suffix matching, and verbatim in findings — callers should pass
// repo-relative paths with '/' separators.
struct SourceFile {
  std::string path;
  std::string text;
};

struct LintFinding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct LintRuleInfo {
  std::string name;     // registry key, e.g. "no-wallclock"
  std::string summary;  // one-line invariant description for --list
};

// A parsed `mas-lint:` comment directive. Malformed directives never
// suppress; the suppression-hygiene rule reports them instead.
struct Suppression {
  int line = 0;
  std::vector<std::string> rules;  // names inside allow(...)
  std::string reason;
  bool malformed = false;
  std::string problem;  // why it is malformed (empty otherwise)
};

// Extracts every `mas-lint:` directive from a token stream's comments.
std::vector<Suppression> ParseSuppressions(const TokenStream& stream);

// What one rule sees for one file. `unordered_names` is the set of
// identifiers declared with an unordered container type in this file or in
// its sibling header/source (foo.cpp <-> foo.h), collected in a pre-pass so
// a .cpp iterating a member declared in its header is still caught.
struct FileContext {
  const SourceFile* file = nullptr;
  const TokenStream* tokens = nullptr;
  const std::set<std::string>* unordered_names = nullptr;
};

// One registered rule. Rules are stateless matchers: Check() appends
// findings for `ctx` (suppressions are applied by RunLint afterwards, so a
// rule never needs to know about them).
class LintRule {
 public:
  virtual ~LintRule() = default;
  virtual const LintRuleInfo& info() const = 0;
  virtual void Check(const FileContext& ctx, std::vector<LintFinding>* out) const = 0;
};

class LintRuleRegistry;

namespace detail {
// Defined in lint/rules.cpp: materializes the builtin rule battery. Called
// exactly once from inside the registry's call_once, so it must register
// through RegisterImpl (calling Register would re-enter the active
// call_once and deadlock — the RouterPolicyRegistry idiom).
void RegisterBuiltins(LintRuleRegistry& registry);
}  // namespace detail

// String-keyed rule catalog, mirroring RouterPolicyRegistry.
class LintRuleRegistry {
 public:
  static LintRuleRegistry& Instance();

  // Throws when the rule name is already taken (builtins are materialized
  // first, so registering over "no-wallclock" throws immediately).
  void Register(std::unique_ptr<LintRule> rule);

  // Unknown names throw an Error listing the available catalog.
  const LintRule* Resolve(const std::string& name) const;

  const LintRuleInfo* Find(const std::string& name) const;  // nullptr if unknown
  std::vector<LintRuleInfo> List() const;                   // registration order
  std::string AvailableNames() const;  // "'error-catalog', 'no-wallclock', ..."

 private:
  friend void detail::RegisterBuiltins(LintRuleRegistry& registry);

  LintRuleRegistry() = default;
  void EnsureBuiltins() const;
  void RegisterImpl(std::unique_ptr<LintRule> rule);

  mutable std::once_flag builtins_once_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<LintRule>> rules_;  // registration order
};

// One checked-in allowlist entry: findings of `rule` in any file whose
// normalized path ends with `path_suffix` are suppressed. The reason is
// mandatory — the allowlist is an audit trail, not an off switch.
struct AllowlistEntry {
  std::string rule;
  std::string path_suffix;
  std::string reason;
};

// Parses allowlist text (`<rule> <path-suffix> <reason>` per line; blank
// lines and `#` comments ignored). Throws mas::Error on malformed lines,
// missing reasons, or unknown rule names (listing the catalog);
// `source_name` labels the error.
std::vector<AllowlistEntry> ParseAllowlist(const std::string& text,
                                           const std::string& source_name);

struct LintOptions {
  // Rule names to run; empty = every registered rule. Unknown names throw
  // listing the catalog. Rules always execute in registration order.
  std::vector<std::string> rules;
  std::vector<AllowlistEntry> allowlist;
};

struct LintReport {
  std::vector<LintFinding> findings;  // post-suppression, sorted, deduped
  std::int64_t files_scanned = 0;
  std::int64_t suppressed = 0;  // findings silenced inline or via allowlist
};

// Runs the selected rules over `files`. Deterministic: findings are sorted
// by (file, line, rule, message) regardless of input file order.
LintReport RunLint(const std::vector<SourceFile>& files, const LintOptions& options);

// Renders findings as `file:line: rule: message` lines (one per finding,
// trailing newline after each) — the byte-stable CLI output.
std::string FormatFindings(const std::vector<LintFinding>& findings);

}  // namespace mas::lint
