#include "lint/lexer.h"

#include <cctype>

namespace mas::lint {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

}  // namespace

TokenStream Tokenize(const std::string& text) {
  TokenStream out;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k) {
      if (text[i] == '\n') ++line;
      ++i;
    }
  };

  while (i < n) {
    const char c = text[i];

    if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v' ||
        c == '\\') {  // stray line-continuations tokenize as whitespace
      advance(1);
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const int start_line = line;
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      out.comments.push_back(Comment{start_line, text.substr(i + 2, end - i - 2)});
      advance(end - i);
      continue;
    }

    // Block comment (recorded at its opening line).
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      std::size_t end = text.find("*/", i + 2);
      const std::size_t body_end = end == std::string::npos ? n : end;
      out.comments.push_back(Comment{start_line, text.substr(i + 2, body_end - i - 2)});
      advance((end == std::string::npos ? n : end + 2) - i);
      continue;
    }

    // Raw string literal: R"tag( ... )tag".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      const int start_line = line;
      std::size_t open = text.find('(', i + 2);
      if (open != std::string::npos) {
        const std::string tag = text.substr(i + 2, open - i - 2);
        const std::string closer = ")" + tag + "\"";
        std::size_t close = text.find(closer, open + 1);
        const std::size_t body_end = close == std::string::npos ? n : close;
        out.tokens.push_back(
            Token{TokenKind::kString, text.substr(open + 1, body_end - open - 1), start_line});
        advance((close == std::string::npos ? n : close + closer.size()) - i);
        continue;
      }
    }

    // String / char literal (escape-aware, uninterpreted body).
    if (c == '"' || c == '\'') {
      const int start_line = line;
      std::size_t j = i + 1;
      while (j < n && text[j] != c) {
        if (text[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      out.tokens.push_back(Token{c == '"' ? TokenKind::kString : TokenKind::kChar,
                                 text.substr(i + 1, j - i - 1), start_line});
      advance((j < n ? j + 1 : n) - i);
      continue;
    }

    if (IsIdentStart(c)) {
      std::size_t j = i + 1;
      while (j < n && IsIdentChar(text[j])) ++j;
      out.tokens.push_back(Token{TokenKind::kIdentifier, text.substr(i, j - i), line});
      advance(j - i);
      continue;
    }

    // pp-number: digits plus identifier chars, dots, digit separators, and
    // signed exponents. Lenient on purpose — lint only needs to skip them.
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(text[i + 1]))) {
      std::size_t j = i + 1;
      while (j < n) {
        const char d = text[j];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (text[j - 1] == 'e' || text[j - 1] == 'E' || text[j - 1] == 'p' ||
                    text[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      out.tokens.push_back(Token{TokenKind::kNumber, text.substr(i, j - i), line});
      advance(j - i);
      continue;
    }

    // Punctuation. "::" and "->" matter to rules (qualified names, member
    // access); everything else is single-char.
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      out.tokens.push_back(Token{TokenKind::kPunct, "::", line});
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      out.tokens.push_back(Token{TokenKind::kPunct, "->", line});
      advance(2);
      continue;
    }
    out.tokens.push_back(Token{TokenKind::kPunct, std::string(1, c), line});
    advance(1);
  }

  return out;
}

}  // namespace mas::lint
