#include "lint/lint.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "common/status.h"

namespace mas::lint {

namespace {

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Identifiers declared with an unordered container type in one token
// stream: after `unordered_map< ... >` (or _set/_multimap/_multiset), the
// next identifier past cv/ref/pointer decoration is taken as the declared
// name. Type aliases (`using Foo = std::unordered_map<...>`) are not
// tracked — annotate iteration over aliased containers at the use site.
std::set<std::string> CollectUnorderedNames(const TokenStream& stream) {
  static const std::set<std::string> kUnorderedTypes = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  std::set<std::string> names;
  const auto& toks = stream.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier || kUnorderedTypes.count(toks[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") continue;
    // Skip the balanced template argument list; '>' only closes at paren
    // depth 0 so function types inside arguments do not derail the scan.
    int angle = 0;
    int paren = 0;
    for (; j < toks.size(); ++j) {
      const std::string& t = toks[j].text;
      if (toks[j].kind != TokenKind::kPunct) continue;
      if (t == "(") ++paren;
      if (t == ")") --paren;
      if (paren != 0) continue;
      if (t == "<") ++angle;
      if (t == ">" && --angle == 0) break;
    }
    if (j >= toks.size()) continue;
    ++j;  // past '>'
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            (toks[j].kind == TokenKind::kIdentifier && toks[j].text == "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
      // `unordered_map<...> Foo(` declares a function, not a container.
      if (j + 1 < toks.size() && toks[j + 1].text == "(") continue;
      names.insert(toks[j].text);
    }
  }
  return names;
}

// Sibling translation unit of `path`: foo.cpp <-> foo.h, so member
// containers declared in a header are known when linting its .cpp.
std::vector<std::string> SiblingPaths(const std::string& path) {
  auto swap_ext = [&](const std::string& from, const std::string& to) -> std::string {
    if (!EndsWith(path, from)) return "";
    return path.substr(0, path.size() - from.size()) + to;
  };
  std::vector<std::string> out;
  for (const auto& [from, to] : std::initializer_list<std::pair<const char*, const char*>>{
           {".cpp", ".h"}, {".cc", ".h"}, {".h", ".cpp"}, {".h", ".cc"}, {".hpp", ".cpp"}}) {
    std::string s = swap_ext(from, to);
    if (!s.empty()) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

std::vector<Suppression> ParseSuppressions(const TokenStream& stream) {
  std::vector<Suppression> out;
  for (const Comment& comment : stream.comments) {
    // A directive must *start* its comment (`// mas-lint: ...`); prose that
    // merely mentions the grammar mid-sentence is not a directive.
    const std::string trimmed = Trim(comment.text);
    if (trimmed.compare(0, 8, "mas-lint") != 0) continue;
    Suppression sup;
    sup.line = comment.line;
    const std::string body = Trim(trimmed.substr(8));
    auto malformed = [&](const std::string& why) {
      sup.malformed = true;
      sup.problem = why;
      out.push_back(sup);
    };
    if (body.empty() || body[0] != ':') {
      malformed("expected ':' after 'mas-lint'");
      continue;
    }
    const std::string directive = Trim(body.substr(1));
    if (directive.compare(0, 6, "allow(") != 0) {
      malformed("expected 'allow(<rule>[,<rule>...]) <reason>'");
      continue;
    }
    const std::size_t close = directive.find(')', 6);
    if (close == std::string::npos) {
      malformed("unterminated allow( — missing ')'");
      continue;
    }
    std::stringstream rules(directive.substr(6, close - 6));
    std::string name;
    while (std::getline(rules, name, ',')) {
      name = Trim(name);
      if (!name.empty()) sup.rules.push_back(name);
    }
    if (sup.rules.empty()) {
      malformed("allow() names no rules");
      continue;
    }
    sup.reason = Trim(directive.substr(close + 1));
    if (sup.reason.empty()) {
      malformed("suppression must state a reason after allow(...)");
      continue;
    }
    out.push_back(std::move(sup));
  }
  return out;
}

LintRuleRegistry& LintRuleRegistry::Instance() {
  static LintRuleRegistry* instance = new LintRuleRegistry();
  return *instance;
}

void LintRuleRegistry::EnsureBuiltins() const {
  std::call_once(builtins_once_,
                 [this] { detail::RegisterBuiltins(const_cast<LintRuleRegistry&>(*this)); });
}

void LintRuleRegistry::Register(std::unique_ptr<LintRule> rule) {
  EnsureBuiltins();
  RegisterImpl(std::move(rule));
}

void LintRuleRegistry::RegisterImpl(std::unique_ptr<LintRule> rule) {
  MAS_CHECK(rule != nullptr) << "cannot register a null lint rule";
  const std::string& name = rule->info().name;
  MAS_CHECK(!name.empty()) << "lint rule name must be non-empty";
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& existing : rules_) {
    MAS_CHECK(existing->info().name != name)
        << "lint rule '" << name << "' is already registered";
  }
  rules_.push_back(std::move(rule));
}

const LintRule* LintRuleRegistry::Resolve(const std::string& name) const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& rule : rules_) {
    if (rule->info().name == name) return rule.get();
  }
  std::string available;
  for (const auto& rule : rules_) {
    if (!available.empty()) available += ", ";
    available += "'" + rule->info().name + "'";
  }
  MAS_FAIL() << "unknown lint rule '" << name << "'; options: " << available;
}

const LintRuleInfo* LintRuleRegistry::Find(const std::string& name) const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& rule : rules_) {
    if (rule->info().name == name) return &rule->info();
  }
  return nullptr;
}

std::vector<LintRuleInfo> LintRuleRegistry::List() const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LintRuleInfo> out;
  out.reserve(rules_.size());
  for (const auto& rule : rules_) out.push_back(rule->info());
  return out;
}

std::string LintRuleRegistry::AvailableNames() const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  std::string available;
  for (const auto& rule : rules_) {
    if (!available.empty()) available += ", ";
    available += "'" + rule->info().name + "'";
  }
  return available;
}

std::vector<AllowlistEntry> ParseAllowlist(const std::string& text,
                                           const std::string& source_name) {
  std::vector<AllowlistEntry> out;
  std::stringstream lines(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(lines, raw)) {
    ++line_no;
    const std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    std::stringstream fields(line);
    AllowlistEntry entry;
    fields >> entry.rule >> entry.path_suffix;
    std::getline(fields, entry.reason);
    entry.reason = Trim(entry.reason);
    MAS_CHECK(!entry.rule.empty() && !entry.path_suffix.empty() && !entry.reason.empty())
        << source_name << ":" << line_no
        << ": allowlist entries are '<rule> <path-suffix> <reason>', got '" << line << "'";
    // Unknown rule names throw listing the catalog.
    (void)LintRuleRegistry::Instance().Resolve(entry.rule);
    out.push_back(std::move(entry));
  }
  return out;
}

LintReport RunLint(const std::vector<SourceFile>& files, const LintOptions& options) {
  LintRuleRegistry& registry = LintRuleRegistry::Instance();

  // Resolve the rule set up front (unknown names throw listing the
  // catalog), then run in registration order regardless of request order.
  std::vector<const LintRule*> rules;
  if (options.rules.empty()) {
    for (const LintRuleInfo& info : registry.List()) rules.push_back(registry.Resolve(info.name));
  } else {
    std::set<std::string> wanted;
    for (const std::string& name : options.rules) {
      (void)registry.Resolve(name);
      wanted.insert(name);
    }
    for (const LintRuleInfo& info : registry.List()) {
      if (wanted.count(info.name)) rules.push_back(registry.Resolve(info.name));
    }
  }
  for (const AllowlistEntry& entry : options.allowlist) {
    (void)registry.Resolve(entry.rule);  // hand-built lists validate too
  }

  struct Prepared {
    const SourceFile* file;
    TokenStream stream;
    std::set<std::string> own_names;
    std::vector<Suppression> suppressions;
  };
  std::vector<Prepared> prepared;
  prepared.reserve(files.size());
  std::map<std::string, std::size_t> by_path;
  for (const SourceFile& file : files) {
    Prepared p;
    p.file = &file;
    p.stream = Tokenize(file.text);
    p.own_names = CollectUnorderedNames(p.stream);
    p.suppressions = ParseSuppressions(p.stream);
    by_path.emplace(file.path, prepared.size());
    prepared.push_back(std::move(p));
  }

  LintReport report;
  report.files_scanned = static_cast<std::int64_t>(prepared.size());

  for (const Prepared& p : prepared) {
    std::set<std::string> names = p.own_names;
    for (const std::string& sibling : SiblingPaths(p.file->path)) {
      auto it = by_path.find(sibling);
      if (it == by_path.end()) continue;
      const std::set<std::string>& more = prepared[it->second].own_names;
      names.insert(more.begin(), more.end());
    }

    FileContext ctx;
    ctx.file = p.file;
    ctx.tokens = &p.stream;
    ctx.unordered_names = &names;

    std::vector<LintFinding> raw;
    for (const LintRule* rule : rules) rule->Check(ctx, &raw);

    for (LintFinding& finding : raw) {
      bool suppressed = false;
      for (const Suppression& sup : p.suppressions) {
        if (sup.malformed) continue;  // malformed directives never silence
        if (sup.line != finding.line && sup.line != finding.line - 1) continue;
        if (std::find(sup.rules.begin(), sup.rules.end(), finding.rule) != sup.rules.end()) {
          suppressed = true;
          break;
        }
      }
      if (!suppressed) {
        for (const AllowlistEntry& entry : options.allowlist) {
          if (entry.rule == finding.rule && EndsWith(finding.file, entry.path_suffix)) {
            suppressed = true;
            break;
          }
        }
      }
      if (suppressed) {
        ++report.suppressed;
      } else {
        report.findings.push_back(std::move(finding));
      }
    }
  }

  auto key = [](const LintFinding& f) { return std::tie(f.file, f.line, f.rule, f.message); };
  std::sort(report.findings.begin(), report.findings.end(),
            [&](const LintFinding& a, const LintFinding& b) { return key(a) < key(b); });
  report.findings.erase(
      std::unique(report.findings.begin(), report.findings.end(),
                  [&](const LintFinding& a, const LintFinding& b) { return key(a) == key(b); }),
      report.findings.end());
  return report;
}

std::string FormatFindings(const std::vector<LintFinding>& findings) {
  std::ostringstream os;
  for (const LintFinding& f : findings) {
    os << f.file << ":" << f.line << ": " << f.rule << ": " << f.message << "\n";
  }
  return os.str();
}

}  // namespace mas::lint
