// Evaluation harness shared by the bench binaries: runs every (network,
// method) pair with offline-tuned tilings and assembles the paper's tables.
#pragma once

#include <string>
#include <vector>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "sim/energy_model.h"
#include "sim/hardware_config.h"

namespace mas::runner {
class SweepRunner;
}

namespace mas::report {

// One (network, method) evaluation with its tuned tiling.
struct MethodRun {
  Method method;
  TilingConfig tiling;
  sim::SimResult sim;
};

struct NetworkComparison {
  NetworkWorkload network;
  std::vector<MethodRun> runs;  // in AllMethods() order

  const MethodRun& Run(Method m) const;
};

// Tunes (coarse grid per §4.2 — the benches that study search quality use
// the full GA/MCTS searches) and simulates every method on every network.
// Evaluations run on the Planner-backed runner::SweepRunner (registry
// schedulers, strategy search, plan store); `jobs` > 1 spreads the
// (network x method) grid across that many worker threads. Results are
// identical for any thread count.
std::vector<NetworkComparison> RunComparison(const std::vector<NetworkWorkload>& networks,
                                             const sim::HardwareConfig& hw,
                                             const sim::EnergyModel& em, int jobs = 1);

// As above, but on a caller-owned runner: its planner (plan store, search
// spec, energy model) and result cache are shared, so repeated comparisons
// across benchmark suites dedup to cache hits and warm plan caches skip the
// searches entirely. The bench-suite subsystem runs on this overload.
std::vector<NetworkComparison> RunComparison(const std::vector<NetworkWorkload>& networks,
                                             const sim::HardwareConfig& hw,
                                             runner::SweepRunner& sweep_runner);

// Table 2: cycles (1e6) per method and MAS-vs-others speedups + geomeans.
TextTable BuildCycleTable(const std::vector<NetworkComparison>& comparisons);

// Table 3: energy (1e9 pJ) per method and MAS-vs-others savings + geomeans.
TextTable BuildEnergyTable(const std::vector<NetworkComparison>& comparisons);

// Fig. 6: per-network per-method energy breakdown (DRAM / L1 / L0 / PE-MAC /
// PE-VEC) in 1e9 pJ.
TextTable BuildEnergyBreakdownTable(const std::vector<NetworkComparison>& comparisons);

// Fig. 5-style normalized execution time (normalized to the slowest method
// per network) for a subset of methods.
TextTable BuildNormalizedTimeTable(const std::vector<NetworkComparison>& comparisons,
                                   const std::vector<Method>& methods);

// §5.4: DRAM read/write bytes, MAS vs FLAT.
TextTable BuildDramAccessTable(const std::vector<NetworkComparison>& comparisons);

// Geomean of MAS speedup versus `baseline` across the comparisons.
double GeomeanSpeedup(const std::vector<NetworkComparison>& comparisons, Method baseline);

// Geomean of MAS energy savings fraction versus `baseline`.
double GeomeanSavings(const std::vector<NetworkComparison>& comparisons, Method baseline);

}  // namespace mas::report
