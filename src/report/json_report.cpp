#include "report/json_report.h"

#include "common/json_writer.h"

namespace mas::report {

void WriteShapeJson(JsonWriter& w, const AttentionShape& shape) {
  w.BeginObject("shape");
  w.KeyValue("name", shape.name);
  w.KeyValue("batch", shape.batch);
  w.KeyValue("heads", shape.heads);
  w.KeyValue("seq_len", shape.seq_len);
  w.KeyValue("embed", shape.embed);
  w.KeyValue("kv_len", shape.kv());
  w.KeyValue("total_macs", shape.TotalMacs());
  w.EndObject();
}

void WriteRunBodyJson(JsonWriter& w, Method method, const TilingConfig& tiling,
                      const sim::HardwareConfig& hw, const sim::SimResult& r) {
  w.KeyValue("method", std::string(MethodName(method)));
  w.BeginObject("tiling");
  w.KeyValue("bb", tiling.bb);
  w.KeyValue("hh", tiling.hh);
  w.KeyValue("nq", tiling.nq);
  w.KeyValue("nkv", tiling.nkv);
  w.EndObject();
  w.KeyValue("cycles", static_cast<std::uint64_t>(r.cycles));
  w.KeyValue("latency_ms", static_cast<double>(r.cycles) / (hw.frequency_ghz * 1e6));
  w.BeginObject("energy_pj");
  w.KeyValue("dram", r.energy.dram_pj);
  w.KeyValue("l1", r.energy.l1_pj);
  w.KeyValue("l0", r.energy.l0_pj);
  w.KeyValue("mac_pe", r.energy.mac_pe_pj);
  w.KeyValue("vec_pe", r.energy.vec_pe_pj);
  w.KeyValue("total", r.energy.total_pj());
  w.EndObject();
  w.KeyValue("dram_read_bytes", r.dram_read_bytes);
  w.KeyValue("dram_write_bytes", r.dram_write_bytes);
  w.KeyValue("peak_l1_bytes", r.peak_l1_bytes);
  w.KeyValue("mac_utilization", r.MacUtilization());
  w.KeyValue("overwrite_events", r.overwrite_events);
  w.KeyValue("reload_bytes", r.reload_bytes);
  w.BeginArray("resources");
  for (const auto& res : r.resources) {
    w.BeginObject();
    w.KeyValue("name", res.name);
    w.KeyValue("busy_cycles", static_cast<std::uint64_t>(res.busy_cycles));
    w.KeyValue("tasks", static_cast<std::uint64_t>(res.task_count));
    w.EndObject();
  }
  w.EndArray();
}

std::string RunJson(const AttentionShape& shape, Method method, const TilingConfig& tiling,
                    const sim::HardwareConfig& hw, const sim::SimResult& result) {
  JsonWriter w;
  w.BeginObject();
  WriteShapeJson(w, shape);
  w.KeyValue("hardware", hw.name);
  WriteRunBodyJson(w, method, tiling, hw, result);
  w.EndObject();
  return w.Take();
}

std::string RunsJson(const AttentionShape& shape, const sim::HardwareConfig& hw,
                     const std::vector<NamedRun>& runs) {
  JsonWriter w;
  w.BeginObject();
  WriteShapeJson(w, shape);
  w.KeyValue("hardware", hw.name);
  w.BeginArray("runs");
  for (const NamedRun& run : runs) {
    w.BeginObject();
    WriteRunBodyJson(w, run.method, run.tiling, hw, run.result);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

}  // namespace mas::report
