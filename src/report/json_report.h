// JSON serialization of simulation outcomes for machine consumption
// (the mas_run CLI's --format=json, CI dashboards, notebooks).
#pragma once

#include <string>
#include <vector>

#include "dataflow/attention_shape.h"
#include "schedulers/scheduler.h"
#include "sim/engine.h"
#include "sim/hardware_config.h"

namespace mas {
class JsonWriter;
}

namespace mas::report {

// Streaming building blocks, exposed so other report producers (the sweep
// runner, future service frontends) emit byte-compatible objects.
//
// Writes the "shape" object field of a run document.
void WriteShapeJson(JsonWriter& w, const AttentionShape& shape);
// Writes the body fields of one run (method, tiling, cycles, latency, energy
// breakdown, DRAM traffic, utilization, overwrite statistics) into the
// currently open object.
void WriteRunBodyJson(JsonWriter& w, Method method, const TilingConfig& tiling,
                      const sim::HardwareConfig& hw, const sim::SimResult& r);

// One simulated run as a JSON object (shape, method, tiling, hardware name,
// cycles, latency, energy breakdown, DRAM traffic, utilization, overwrite
// statistics).
std::string RunJson(const AttentionShape& shape, Method method, const TilingConfig& tiling,
                    const sim::HardwareConfig& hw, const sim::SimResult& result);

// An array of runs (e.g. all methods on one shape) as a JSON document.
struct NamedRun {
  Method method;
  TilingConfig tiling;
  sim::SimResult result;
};
std::string RunsJson(const AttentionShape& shape, const sim::HardwareConfig& hw,
                     const std::vector<NamedRun>& runs);

}  // namespace mas::report
