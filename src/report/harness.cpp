#include "report/harness.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/status.h"
#include "runner/sweep_runner.h"

namespace mas::report {

namespace {

double Mega(double v) { return v / 1e6; }
double Giga(double v) { return v / 1e9; }

}  // namespace

const MethodRun& NetworkComparison::Run(Method m) const {
  for (const auto& run : runs) {
    if (run.method == m) return run;
  }
  MAS_FAIL() << "method " << MethodName(m) << " missing for " << network.name;
}

std::vector<NetworkComparison> RunComparison(const std::vector<NetworkWorkload>& networks,
                                             const sim::HardwareConfig& hw,
                                             const sim::EnergyModel& em, int jobs) {
  runner::SweepOptions options;
  options.jobs = jobs;
  runner::SweepRunner sweep_runner(options, em);
  return RunComparison(networks, hw, sweep_runner);
}

std::vector<NetworkComparison> RunComparison(const std::vector<NetworkWorkload>& networks,
                                             const sim::HardwareConfig& hw,
                                             runner::SweepRunner& sweep_runner) {
  // The (network x method) grid runs on the Planner-backed sweep runner
  // under the paper's tiling protocol (the default search strategy
  // everywhere except FuseMax's §5.5 manual array-native tiling). Grid
  // order is shape-major with methods innermost, so the flat result list
  // maps back onto per-network AllMethods() rows.
  runner::SweepGrid grid;
  for (const NetworkWorkload& net : networks) grid.shapes.push_back(net.shape);
  grid.methods = AllMethods();
  grid.hardware = {hw};
  grid.policy = runner::TilingPolicy::kPaperProtocol;

  const runner::SweepReport report = sweep_runner.Run(grid);

  std::vector<NetworkComparison> comparisons;
  std::size_t i = 0;
  for (const NetworkWorkload& net : networks) {
    NetworkComparison cmp;
    cmp.network = net;
    for (Method m : AllMethods()) {
      const runner::JobResult& r = report.results[i++];
      MAS_CHECK(r.job.method == m && r.ok())
          << "sweep failed for " << MethodName(m) << " on " << net.name << ": " << r.error;
      cmp.runs.push_back(MethodRun{m, r.tiling, r.sim});
    }
    comparisons.push_back(std::move(cmp));
  }
  return comparisons;
}

TextTable BuildCycleTable(const std::vector<NetworkComparison>& comparisons) {
  std::vector<std::string> header = {"Network"};
  for (Method m : AllMethods()) header.push_back(std::string(MethodName(m)) + " Mcyc");
  for (Method m : AllMethods()) {
    if (m != Method::kMas) header.push_back("vs " + std::string(MethodName(m)));
  }
  TextTable table(header);

  std::vector<std::vector<double>> speedups(AllMethods().size());
  for (const auto& cmp : comparisons) {
    const double mas_cycles = static_cast<double>(cmp.Run(Method::kMas).sim.cycles);
    std::vector<std::string> row = {cmp.network.name};
    for (Method m : AllMethods()) {
      row.push_back(FormatFixed(Mega(static_cast<double>(cmp.Run(m).sim.cycles)), 3));
    }
    std::size_t mi = 0;
    for (Method m : AllMethods()) {
      if (m == Method::kMas) {
        ++mi;
        continue;
      }
      const double speedup = static_cast<double>(cmp.Run(m).sim.cycles) / mas_cycles;
      speedups[mi].push_back(speedup);
      row.push_back(FormatSpeedup(speedup));
      ++mi;
    }
    table.AddRow(std::move(row));
  }

  table.AddRule();
  std::vector<std::string> geo_row = {"Geometric Mean"};
  for (std::size_t i = 0; i < AllMethods().size(); ++i) geo_row.push_back("-");
  for (std::size_t mi = 0; mi < AllMethods().size(); ++mi) {
    if (AllMethods()[mi] == Method::kMas) continue;
    geo_row.push_back(FormatSpeedup(GeoMean(speedups[mi])));
  }
  table.AddRow(std::move(geo_row));
  return table;
}

TextTable BuildEnergyTable(const std::vector<NetworkComparison>& comparisons) {
  std::vector<std::string> header = {"Network"};
  for (Method m : AllMethods()) header.push_back(std::string(MethodName(m)) + " GpJ");
  for (Method m : AllMethods()) {
    if (m != Method::kMas) header.push_back("sav vs " + std::string(MethodName(m)));
  }
  TextTable table(header);

  std::vector<std::vector<double>> ratios(AllMethods().size());
  for (const auto& cmp : comparisons) {
    const double mas_energy = cmp.Run(Method::kMas).sim.energy.total_pj();
    std::vector<std::string> row = {cmp.network.name};
    for (Method m : AllMethods()) {
      row.push_back(FormatFixed(Giga(cmp.Run(m).sim.energy.total_pj()), 3));
    }
    std::size_t mi = 0;
    for (Method m : AllMethods()) {
      if (m == Method::kMas) {
        ++mi;
        continue;
      }
      const double other = cmp.Run(m).sim.energy.total_pj();
      const double savings = 1.0 - mas_energy / other;
      ratios[mi].push_back(other / mas_energy);  // geomean on ratios, like the paper
      row.push_back(FormatPercent(savings));
      ++mi;
    }
    table.AddRow(std::move(row));
  }

  table.AddRule();
  std::vector<std::string> geo_row = {"Geometric Mean"};
  for (std::size_t i = 0; i < AllMethods().size(); ++i) geo_row.push_back("-");
  for (std::size_t mi = 0; mi < AllMethods().size(); ++mi) {
    if (AllMethods()[mi] == Method::kMas) continue;
    geo_row.push_back(FormatPercent(1.0 - 1.0 / GeoMean(ratios[mi])));
  }
  table.AddRow(std::move(geo_row));
  return table;
}

TextTable BuildEnergyBreakdownTable(const std::vector<NetworkComparison>& comparisons) {
  TextTable table({"Network", "Method", "DRAM GpJ", "L1 GpJ", "L0 GpJ", "PE-MAC GpJ",
                   "PE-VEC GpJ", "Total GpJ"});
  for (const auto& cmp : comparisons) {
    for (const auto& run : cmp.runs) {
      const auto& e = run.sim.energy;
      table.AddRow({cmp.network.name, MethodName(run.method), FormatFixed(Giga(e.dram_pj), 3),
                    FormatFixed(Giga(e.l1_pj), 3), FormatFixed(Giga(e.l0_pj), 3),
                    FormatFixed(Giga(e.mac_pe_pj), 3), FormatFixed(Giga(e.vec_pe_pj), 3),
                    FormatFixed(Giga(e.total_pj()), 3)});
    }
    table.AddRule();
  }
  return table;
}

TextTable BuildNormalizedTimeTable(const std::vector<NetworkComparison>& comparisons,
                                   const std::vector<Method>& methods) {
  std::vector<std::string> header = {"Network"};
  for (Method m : methods) header.push_back(MethodName(m));
  for (Method m : methods) {
    if (m != Method::kMas) header.push_back("MAS speedup vs " + std::string(MethodName(m)));
  }
  TextTable table(header);
  std::vector<std::vector<double>> speedups(methods.size());
  for (const auto& cmp : comparisons) {
    double worst = 0.0;
    for (Method m : methods) {
      worst = std::max(worst, static_cast<double>(cmp.Run(m).sim.cycles));
    }
    std::vector<std::string> row = {cmp.network.name};
    for (Method m : methods) {
      row.push_back(FormatFixed(static_cast<double>(cmp.Run(m).sim.cycles) / worst, 3));
    }
    const double mas_cycles = static_cast<double>(cmp.Run(Method::kMas).sim.cycles);
    for (std::size_t mi = 0; mi < methods.size(); ++mi) {
      if (methods[mi] == Method::kMas) continue;
      const double speedup = static_cast<double>(cmp.Run(methods[mi]).sim.cycles) / mas_cycles;
      speedups[mi].push_back(speedup);
      row.push_back(FormatSpeedup(speedup));
    }
    table.AddRow(std::move(row));
  }
  table.AddRule();
  std::vector<std::string> geo_row = {"Geometric Mean"};
  for (std::size_t i = 0; i < methods.size(); ++i) geo_row.push_back("-");
  for (std::size_t mi = 0; mi < methods.size(); ++mi) {
    if (methods[mi] == Method::kMas) continue;
    geo_row.push_back(FormatSpeedup(GeoMean(speedups[mi])));
  }
  table.AddRow(std::move(geo_row));
  return table;
}

TextTable BuildDramAccessTable(const std::vector<NetworkComparison>& comparisons) {
  TextTable table({"Network", "FLAT reads MB", "MAS reads MB", "read ratio", "FLAT writes MB",
                   "MAS writes MB", "write ratio", "MAS overwrites", "MAS reload KB"});
  for (const auto& cmp : comparisons) {
    const auto& flat = cmp.Run(Method::kFlat).sim;
    const auto& mas = cmp.Run(Method::kMas).sim;
    const double mb = 1024.0 * 1024.0;
    table.AddRow({cmp.network.name, FormatFixed(flat.dram_read_bytes / mb, 2),
                  FormatFixed(mas.dram_read_bytes / mb, 2),
                  FormatFixed(static_cast<double>(mas.dram_read_bytes) /
                                  static_cast<double>(flat.dram_read_bytes),
                              2),
                  FormatFixed(flat.dram_write_bytes / mb, 2),
                  FormatFixed(mas.dram_write_bytes / mb, 2),
                  FormatFixed(static_cast<double>(mas.dram_write_bytes) /
                                  static_cast<double>(flat.dram_write_bytes),
                              2),
                  std::to_string(mas.overwrite_events),
                  FormatFixed(mas.reload_bytes / 1024.0, 1)});
  }
  return table;
}

double GeomeanSpeedup(const std::vector<NetworkComparison>& comparisons, Method baseline) {
  std::vector<double> values;
  for (const auto& cmp : comparisons) {
    values.push_back(static_cast<double>(cmp.Run(baseline).sim.cycles) /
                     static_cast<double>(cmp.Run(Method::kMas).sim.cycles));
  }
  return GeoMean(values);
}

double GeomeanSavings(const std::vector<NetworkComparison>& comparisons, Method baseline) {
  std::vector<double> ratios;
  for (const auto& cmp : comparisons) {
    ratios.push_back(cmp.Run(baseline).sim.energy.total_pj() /
                     cmp.Run(Method::kMas).sim.energy.total_pj());
  }
  return 1.0 - 1.0 / GeoMean(ratios);
}

}  // namespace mas::report
