// Timeline export and inspection for simulated schedules.
//
// A SimResult recorded with `record_timeline = true` carries per-task
// (resource, core, start, end) entries. This module turns that raw stream
// into the three artifacts a performance engineer actually reads:
//
//  * AsciiGantt      — a terminal Gantt chart, one lane per resource (the
//                      Fig. 1 dataflow comparison renders with this);
//  * ChromeTraceJson — the Chrome tracing / Perfetto "trace event" format
//                      (load in chrome://tracing or ui.perfetto.dev);
//  * TimelineCsv     — flat CSV for ad-hoc analysis;
//
// plus Summarize(), which reduces the timeline to per-resource busy/idle/
// utilization statistics and the pipeline-bubble figure the paper's Fig. 1
// argument is about (MAC idle while VEC busy, and vice versa).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace mas::trace {

struct GanttOptions {
  int width = 100;            // chart columns (time bins)
  bool show_names = true;     // print a legend of task names per lane
  std::uint64_t from = 0;     // clip window start (cycles)
  std::uint64_t to = 0;       // clip window end; 0 = makespan
};

// Renders the timeline as one fixed-width lane per resource. Each column is
// a time bin; a column shows '#' when the resource is busy for more than
// half the bin, '+' when partially busy, '.' when idle. Requires a recorded
// timeline (throws otherwise).
std::string AsciiGantt(const sim::SimResult& result, const GanttOptions& options = {});

// Chrome trace-event JSON ("X" complete events, microsecond timestamps
// derived from `frequency_ghz`). One tid per resource, pid 0.
std::string ChromeTraceJson(const sim::SimResult& result, double frequency_ghz);

// Flat CSV: name,resource,core,start_cycle,end_cycle,duration.
std::string TimelineCsv(const sim::SimResult& result);

// Per-resource reduction of the timeline.
struct LaneSummary {
  std::string resource;       // "MAC", "VEC", "DMA"
  int core = 0;
  std::uint64_t busy_cycles = 0;
  std::uint64_t task_count = 0;
  std::uint64_t first_start = 0;
  std::uint64_t last_end = 0;
  double utilization = 0.0;   // busy / makespan
};

struct TimelineSummary {
  std::uint64_t makespan = 0;
  std::vector<LaneSummary> lanes;
  // Cycles during which at least one MAC unit and at least one VEC unit are
  // *both* busy — the semi-synchronous overlap MAS-Attention creates and the
  // sequential baselines lack (Fig. 1's visual argument, quantified).
  std::uint64_t mac_vec_overlap_cycles = 0;

  std::string ToString() const;
};

// Reduces a recorded timeline. Requires a recorded timeline.
TimelineSummary Summarize(const sim::SimResult& result);

// Writes `content` to `path` (truncating); throws on I/O failure. Small
// convenience shared by the CLI and examples.
void WriteFile(const std::string& path, const std::string& content);

}  // namespace mas::trace
