#include "trace/trace.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <utility>

#include "common/json_writer.h"
#include "common/status.h"

namespace mas::trace {

namespace {

// Stable lane key: resources ordered DMA, then MAC/VEC interleaved per core.
struct LaneKey {
  sim::ResourceKind kind;
  int core;
  bool operator<(const LaneKey& o) const {
    if (core != o.core) return core < o.core;
    return static_cast<int>(kind) < static_cast<int>(o.kind);
  }
};

std::string LaneName(const LaneKey& key) {
  std::string name = sim::ResourceKindName(key.kind);
  if (key.kind != sim::ResourceKind::kDma) name += std::to_string(key.core);
  return name;
}

std::map<LaneKey, std::vector<const sim::TimelineEntry*>> GroupLanes(
    const sim::SimResult& result) {
  MAS_CHECK(!result.timeline.empty())
      << "timeline empty — simulate with record_timeline = true";
  std::map<LaneKey, std::vector<const sim::TimelineEntry*>> lanes;
  for (const auto& entry : result.timeline) {
    const int core = entry.resource == sim::ResourceKind::kDma ? -1 : entry.core;
    lanes[{entry.resource, core}].push_back(&entry);
  }
  return lanes;
}

// Sums, over [from, to), the cycles covered by at least one interval.
std::uint64_t CoveredCycles(std::vector<std::pair<std::uint64_t, std::uint64_t>> spans) {
  std::sort(spans.begin(), spans.end());
  std::uint64_t covered = 0, cursor = 0;
  for (const auto& [s, e] : spans) {
    const std::uint64_t start = std::max(s, cursor);
    if (e > start) {
      covered += e - start;
      cursor = e;
    }
  }
  return covered;
}

}  // namespace

std::string AsciiGantt(const sim::SimResult& result, const GanttOptions& options) {
  MAS_CHECK(options.width >= 10) << "Gantt width too small: " << options.width;
  const auto lanes = GroupLanes(result);
  const std::uint64_t t0 = options.from;
  const std::uint64_t t1 = options.to > 0 ? options.to : result.cycles;
  MAS_CHECK(t1 > t0) << "empty Gantt window [" << t0 << "," << t1 << ")";
  const double bin = static_cast<double>(t1 - t0) / options.width;

  std::string out;
  out += "cycles [" + std::to_string(t0) + ", " + std::to_string(t1) + "), " +
         std::to_string(static_cast<std::int64_t>(bin)) + " cycles/column\n";
  for (const auto& [key, entries] : lanes) {
    // Busy fraction per column.
    std::vector<double> busy(static_cast<std::size_t>(options.width), 0.0);
    for (const auto* e : entries) {
      const std::uint64_t s = std::max(e->start, t0);
      const std::uint64_t t = std::min(e->end, t1);
      if (t <= s) continue;
      const double c0 = (s - t0) / bin;
      const double c1 = (t - t0) / bin;
      for (int c = static_cast<int>(c0); c < options.width && c <= static_cast<int>(c1); ++c) {
        const double lo = std::max(c0, static_cast<double>(c));
        const double hi = std::min(c1, static_cast<double>(c + 1));
        if (hi > lo) busy[static_cast<std::size_t>(c)] += hi - lo;
      }
    }
    std::string lane = LaneName(key);
    lane.resize(6, ' ');
    lane += '|';
    for (double f : busy) lane += f > 0.5 ? '#' : (f > 0.0 ? '+' : '.');
    lane += '|';
    out += lane + "\n";
  }
  if (options.show_names) {
    // Legend: first occurrence of each distinct task name per lane.
    out += "tasks:";
    std::vector<std::string> seen;
    for (const auto& entry : result.timeline) {
      if (entry.name.empty()) continue;
      if (std::find(seen.begin(), seen.end(), entry.name) != seen.end()) continue;
      seen.push_back(entry.name);
      out += " [" + entry.name + "]";
      if (seen.size() >= 12) {
        out += " ...";
        break;
      }
    }
    out += "\n";
  }
  return out;
}

std::string ChromeTraceJson(const sim::SimResult& result, double frequency_ghz) {
  MAS_CHECK(frequency_ghz > 0) << "frequency must be positive";
  MAS_CHECK(!result.timeline.empty())
      << "timeline empty — simulate with record_timeline = true";
  // Cycles -> microseconds: us = cycles / (GHz * 1e3).
  const double us_per_cycle = 1.0 / (frequency_ghz * 1e3);

  // Assign a stable tid per lane.
  const auto lanes = GroupLanes(result);
  std::map<std::string, int> tid;
  int next_tid = 1;
  JsonWriter w;
  w.BeginObject();
  w.BeginArray("traceEvents");
  // Thread-name metadata so viewers label the lanes.
  for (const auto& [key, entries] : lanes) {
    (void)entries;
    const std::string name = LaneName(key);
    tid[name] = next_tid++;
    w.BeginObject();
    w.KeyValue("name", "thread_name");
    w.KeyValue("ph", "M");
    w.KeyValue("pid", 0);
    w.KeyValue("tid", tid[name]);
    w.BeginObject("args");
    w.KeyValue("name", name);
    w.EndObject();
    w.EndObject();
  }
  for (const auto& entry : result.timeline) {
    const int core = entry.resource == sim::ResourceKind::kDma ? -1 : entry.core;
    const std::string lane = LaneName({entry.resource, core});
    w.BeginObject();
    w.KeyValue("name", entry.name.empty() ? lane : entry.name);
    w.KeyValue("cat", std::string(sim::ResourceKindName(entry.resource)));
    w.KeyValue("ph", "X");
    w.KeyValue("ts", static_cast<double>(entry.start) * us_per_cycle);
    w.KeyValue("dur", static_cast<double>(entry.end - entry.start) * us_per_cycle);
    w.KeyValue("pid", 0);
    w.KeyValue("tid", tid[lane]);
    w.EndObject();
  }
  w.EndArray();
  w.KeyValue("displayTimeUnit", "ns");
  w.EndObject();
  return w.Take();
}

std::string TimelineCsv(const sim::SimResult& result) {
  MAS_CHECK(!result.timeline.empty())
      << "timeline empty — simulate with record_timeline = true";
  std::string out = "name,resource,core,start_cycle,end_cycle,duration\n";
  for (const auto& e : result.timeline) {
    std::string name = e.name;
    for (char& c : name) {
      if (c == ',') c = ';';  // keep the CSV single-quoted-free
    }
    out += name + ',' + sim::ResourceKindName(e.resource) + ',' + std::to_string(e.core) +
           ',' + std::to_string(e.start) + ',' + std::to_string(e.end) + ',' +
           std::to_string(e.end - e.start) + '\n';
  }
  return out;
}

TimelineSummary Summarize(const sim::SimResult& result) {
  const auto lanes = GroupLanes(result);
  TimelineSummary summary;
  summary.makespan = result.cycles;

  std::vector<std::pair<std::uint64_t, std::uint64_t>> mac_spans, vec_spans;
  for (const auto& [key, entries] : lanes) {
    LaneSummary lane;
    lane.resource = sim::ResourceKindName(key.kind);
    lane.core = std::max(key.core, 0);
    lane.first_start = entries.front()->start;
    for (const auto* e : entries) {
      lane.busy_cycles += e->end - e->start;
      ++lane.task_count;
      lane.first_start = std::min(lane.first_start, e->start);
      lane.last_end = std::max(lane.last_end, e->end);
      if (key.kind == sim::ResourceKind::kMac) mac_spans.push_back({e->start, e->end});
      if (key.kind == sim::ResourceKind::kVec) vec_spans.push_back({e->start, e->end});
    }
    lane.utilization = summary.makespan > 0
                           ? static_cast<double>(lane.busy_cycles) / summary.makespan
                           : 0.0;
    summary.lanes.push_back(std::move(lane));
  }

  // MAC/VEC overlap: cycles covered by both kinds. Computed as
  // covered(MAC) + covered(VEC) - covered(MAC ∪ VEC).
  const std::uint64_t mac_cov = CoveredCycles(mac_spans);
  const std::uint64_t vec_cov = CoveredCycles(vec_spans);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> both = mac_spans;
  both.insert(both.end(), vec_spans.begin(), vec_spans.end());
  const std::uint64_t union_cov = CoveredCycles(std::move(both));
  summary.mac_vec_overlap_cycles = mac_cov + vec_cov - union_cov;
  return summary;
}

std::string TimelineSummary::ToString() const {
  std::string out = "makespan: " + std::to_string(makespan) + " cycles\n";
  for (const auto& lane : lanes) {
    std::string name = lane.resource + std::to_string(lane.core);
    if (lane.resource == "DMA") name = lane.resource;
    name.resize(6, ' ');
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s busy %10llu cyc (%5.1f%%)  tasks %6llu  span [%llu, %llu)\n",
                  name.c_str(), static_cast<unsigned long long>(lane.busy_cycles),
                  100.0 * lane.utilization, static_cast<unsigned long long>(lane.task_count),
                  static_cast<unsigned long long>(lane.first_start),
                  static_cast<unsigned long long>(lane.last_end));
    out += buf;
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "MAC/VEC overlap: %llu cycles (%.1f%% of makespan)\n",
                static_cast<unsigned long long>(mac_vec_overlap_cycles),
                makespan > 0 ? 100.0 * static_cast<double>(mac_vec_overlap_cycles) /
                                   static_cast<double>(makespan)
                             : 0.0);
  out += buf;
  return out;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MAS_CHECK(out.good()) << "cannot open '" << path << "' for writing";
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  MAS_CHECK(out.good()) << "write to '" << path << "' failed";
}

}  // namespace mas::trace
