// Dense 4-D tensor used throughout the functional attention kernels.
//
// Attention operands in the paper are Q, K, V ∈ R^{B×H×N×E}; every tensor in
// this library is logically 4-D (batch, head, rows, cols) with row-major
// contiguous storage. The class owns its storage; `Slice` returns copies of
// sub-blocks (tile extraction mirrors DMA loads in the simulator, which also
// copy), keeping aliasing out of the functional twins entirely.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/fp16.h"
#include "common/status.h"

namespace mas {

// Shape of a 4-D tensor: (b, h, n, e) = (batch, heads, rows, cols).
struct Shape4 {
  std::int64_t b = 1;
  std::int64_t h = 1;
  std::int64_t n = 1;
  std::int64_t e = 1;

  std::int64_t elements() const { return b * h * n * e; }
  bool operator==(const Shape4& o) const {
    return b == o.b && h == o.h && n == o.n && e == o.e;
  }
  bool operator!=(const Shape4& o) const { return !(*this == o); }
};

template <typename T>
class Tensor {
 public:
  Tensor() : Tensor(Shape4{}) {}
  explicit Tensor(Shape4 shape) : shape_(shape) {
    MAS_CHECK(shape.b >= 1 && shape.h >= 1 && shape.n >= 1 && shape.e >= 1)
        << "invalid shape (" << shape.b << "," << shape.h << "," << shape.n << "," << shape.e
        << ")";
    data_.assign(static_cast<std::size_t>(shape.elements()), T{});
  }
  Tensor(std::int64_t b, std::int64_t h, std::int64_t n, std::int64_t e)
      : Tensor(Shape4{b, h, n, e}) {}

  const Shape4& shape() const { return shape_; }
  std::int64_t elements() const { return shape_.elements(); }

  T& at(std::int64_t b, std::int64_t h, std::int64_t n, std::int64_t e) {
    return data_[Index(b, h, n, e)];
  }
  const T& at(std::int64_t b, std::int64_t h, std::int64_t n, std::int64_t e) const {
    return data_[Index(b, h, n, e)];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void Fill(T value) { data_.assign(data_.size(), value); }

  // Copies the sub-block [b0,b0+bl) × [h0,h0+hl) × [n0,n0+nl) × [e0,e0+el).
  Tensor Slice(std::int64_t b0, std::int64_t bl, std::int64_t h0, std::int64_t hl,
               std::int64_t n0, std::int64_t nl, std::int64_t e0, std::int64_t el) const {
    MAS_CHECK(b0 >= 0 && h0 >= 0 && n0 >= 0 && e0 >= 0) << "negative slice origin";
    MAS_CHECK(bl >= 1 && hl >= 1 && nl >= 1 && el >= 1) << "empty slice";
    MAS_CHECK(b0 + bl <= shape_.b && h0 + hl <= shape_.h && n0 + nl <= shape_.n &&
              e0 + el <= shape_.e)
        << "slice out of bounds";
    Tensor out(bl, hl, nl, el);
    for (std::int64_t b = 0; b < bl; ++b)
      for (std::int64_t h = 0; h < hl; ++h)
        for (std::int64_t n = 0; n < nl; ++n)
          for (std::int64_t e = 0; e < el; ++e)
            out.at(b, h, n, e) = at(b0 + b, h0 + h, n0 + n, e0 + e);
    return out;
  }

  // Writes `block` into this tensor at the given origin (inverse of Slice).
  void Place(const Tensor& block, std::int64_t b0, std::int64_t h0, std::int64_t n0,
             std::int64_t e0) {
    const Shape4& s = block.shape();
    MAS_CHECK(b0 + s.b <= shape_.b && h0 + s.h <= shape_.h && n0 + s.n <= shape_.n &&
              e0 + s.e <= shape_.e)
        << "Place out of bounds";
    for (std::int64_t b = 0; b < s.b; ++b)
      for (std::int64_t h = 0; h < s.h; ++h)
        for (std::int64_t n = 0; n < s.n; ++n)
          for (std::int64_t e = 0; e < s.e; ++e)
            at(b0 + b, h0 + h, n0 + n, e0 + e) = block.at(b, h, n, e);
  }

 private:
  std::size_t Index(std::int64_t b, std::int64_t h, std::int64_t n, std::int64_t e) const {
    MAS_CHECK(b >= 0 && b < shape_.b && h >= 0 && h < shape_.h && n >= 0 && n < shape_.n &&
              e >= 0 && e < shape_.e)
        << "index (" << b << "," << h << "," << n << "," << e << ") out of bounds";
    return static_cast<std::size_t>(((b * shape_.h + h) * shape_.n + n) * shape_.e + e);
  }

  Shape4 shape_;
  std::vector<T> data_;
};

using TensorF = Tensor<float>;
using TensorH = Tensor<Fp16>;

// Fills `t` with uniform values in [lo, hi) from `rng`.
template <typename T, typename RngT>
void FillUniform(Tensor<T>& t, RngT& rng, float lo = -1.0f, float hi = 1.0f) {
  for (std::int64_t i = 0; i < t.elements(); ++i) {
    t.data()[i] = T(rng.NextFloat(lo, hi));
  }
}

// Maximum absolute elementwise difference; shapes must match.
template <typename T>
double MaxAbsDiff(const Tensor<T>& a, const Tensor<T>& b) {
  MAS_CHECK(a.shape() == b.shape()) << "shape mismatch in MaxAbsDiff";
  double worst = 0.0;
  for (std::int64_t i = 0; i < a.elements(); ++i) {
    const double d = std::abs(static_cast<double>(static_cast<float>(a.data()[i])) -
                              static_cast<double>(static_cast<float>(b.data()[i])));
    worst = std::max(worst, d);
  }
  return worst;
}

}  // namespace mas
