#include "fleet/fleet.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/json_writer.h"
#include "common/status.h"
#include "runner/thread_pool.h"

namespace mas::fleet {

namespace {

// The router's (and the tenant scheduler's) size estimate for one request:
// its prefill tokens plus every token it will generate.
std::int64_t RequestTokens(const serve::ServeRequest& r) {
  return r.prompt_len + r.decode_len + 1;
}

// SplitMix64 finalizer folding `salt` into `seed` — decorrelates per-device
// fault streams derived from one --fault-seed value.
std::uint64_t SaltSeed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = salt + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return seed ^ z;
}

// Dispatch order: the trace's admission order, permuted WITHIN each arrival
// tick by the tenant policy. Ticks never interleave — a tenant policy
// cannot admit a request before it arrives.
std::vector<std::size_t> DispatchOrder(const serve::RequestTrace& trace,
                                       const TenantPolicySpec& policy) {
  const std::size_t n = trace.requests.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  if (!policy.enabled()) return order;

  // Weighted-fair state persists across tick groups: tokens charged to each
  // tenant so far, scaled by its weight into a virtual finish time.
  std::map<std::string, double> charged;

  std::size_t group_start = 0;
  while (group_start < n) {
    std::size_t group_end = group_start + 1;
    while (group_end < n && trace.requests[order[group_end]].arrival_tick ==
                                trace.requests[order[group_start]].arrival_tick) {
      ++group_end;
    }
    if (policy.kind == "priority") {
      // Higher level first; ids (unique) break ties, so the sort is total
      // and stability is irrelevant.
      std::sort(order.begin() + static_cast<std::ptrdiff_t>(group_start),
                order.begin() + static_cast<std::ptrdiff_t>(group_end),
                [&](std::size_t a, std::size_t b) {
                  const serve::ServeRequest& ra = trace.requests[a];
                  const serve::ServeRequest& rb = trace.requests[b];
                  const double la = SpecParam(policy.params, ra.tenant, 0.0);
                  const double lb = SpecParam(policy.params, rb.tenant, 0.0);
                  if (la != lb) return la > lb;
                  return ra.id < rb.id;
                });
    } else {  // weighted
      // WFQ over the tick group: per-tenant FIFO queues; repeatedly dispatch
      // the head whose virtual finish time (charged + tokens) / weight is
      // smallest, ties to the lexicographically smaller tenant.
      std::map<std::string, std::vector<std::size_t>> queues;
      for (std::size_t k = group_start; k < group_end; ++k) {
        queues[trace.requests[order[k]].tenant].push_back(order[k]);
      }
      std::map<std::string, std::size_t> next;
      for (std::size_t k = group_start; k < group_end; ++k) {
        const std::string* best_tenant = nullptr;
        double best_finish = 0.0;
        for (const auto& [tenant, queue] : queues) {
          const std::size_t at = next[tenant];
          if (at >= queue.size()) continue;
          const double weight = SpecParam(policy.params, tenant, 1.0);
          const double finish =
              (charged[tenant] + static_cast<double>(RequestTokens(
                                     trace.requests[queue[at]]))) /
              weight;
          if (best_tenant == nullptr || finish < best_finish) {
            best_tenant = &tenant;
            best_finish = finish;
          }
        }
        const std::size_t picked = queues[*best_tenant][next[*best_tenant]];
        ++next[*best_tenant];
        charged[*best_tenant] +=
            static_cast<double>(RequestTokens(trace.requests[picked]));
        order[k] = picked;
      }
    }
    group_start = group_end;
  }
  return order;
}

}  // namespace

// -------------------------------------------------------------- tenant spec

TenantPolicySpec TenantPolicySpec::Parse(const std::string& text) {
  TenantPolicySpec spec;
  if (text.empty()) return spec;  // no tenant policy
  ParsedSpec parsed = ParseSpec(text, "--tenants", "policy kind");
  spec.kind = std::move(parsed.head);
  spec.params = std::move(parsed.params);
  spec.Validate();
  return spec;
}

std::string TenantPolicySpec::ToString() const { return SpecToString(kind, params); }

void TenantPolicySpec::Validate() const {
  if (!enabled()) return;
  MAS_CHECK(kind == "weighted" || kind == "priority")
      << "unknown tenant policy '" << kind << "'; options: 'weighted', 'priority'";
  if (kind == "weighted") {
    for (const auto& [tenant, weight] : params) {
      MAS_CHECK(std::isfinite(weight) && weight > 0.0)
          << "tenant policy weight for '" << tenant << "' must be positive, got " << weight;
    }
  }
}

// ------------------------------------------------------------- fleet router

FleetRouter::FleetRouter(Planner& planner, FleetOptions options)
    : planner_(planner), options_(std::move(options)) {
  MAS_CHECK(options_.devices >= 1)
      << "fleet needs at least one device, got " << options_.devices;
  MAS_CHECK(options_.jobs >= 0) << "fleet jobs must be non-negative, got " << options_.jobs;
  MAS_CHECK(options_.drain_tokens_per_tick >= 0)
      << "drain_tokens_per_tick must be non-negative, got " << options_.drain_tokens_per_tick;
  MAS_CHECK(options_.device_hw.empty() ||
            options_.device_hw.size() == static_cast<std::size_t>(options_.devices))
      << "device_hw must be empty or list exactly " << options_.devices << " devices, got "
      << options_.device_hw.size();
  options_.tenants.Validate();
  // Validate the router spec eagerly — a typo should fail at construction,
  // not after the trace is half-dispatched. (Policies may be stateful, so
  // Run() creates a fresh one per call.)
  (void)RouterPolicyRegistry::Instance().Create(options_.router);
}

FleetResult FleetRouter::Run(const serve::RequestTrace& trace) {
  trace.Validate();
  const int devices = options_.devices;

  FleetResult result;
  result.trace_name = trace.name;
  result.router = options_.router;
  result.router_seed = options_.router_seed;
  result.drain_tokens_per_tick = options_.drain_tokens_per_tick;
  result.tenants = options_.tenants;

  // Stage 1: admission order (tenant policy applied within ticks).
  const std::vector<std::size_t> order = DispatchOrder(trace, options_.tenants);

  // Stage 2: serial routing walk. Sub-traces renumber ids densely in
  // dispatch order so each device's FIFO matches the router's order; the
  // original ids come back in stage 3.
  std::unique_ptr<RouterPolicy> policy = RouterPolicyRegistry::Instance().Create(options_.router);
  std::vector<std::int64_t> outstanding(static_cast<std::size_t>(devices), 0);
  std::vector<std::int64_t> routed_tokens(static_cast<std::size_t>(devices), 0);
  std::vector<serve::RequestTrace> sub(static_cast<std::size_t>(devices));
  std::vector<std::vector<std::int64_t>> original_ids(static_cast<std::size_t>(devices));
  for (int d = 0; d < devices; ++d) sub[static_cast<std::size_t>(d)].name = trace.name;
  result.assignments.reserve(trace.requests.size());
  std::int64_t drain_tick = 0;  // last arrival tick the estimates were drained to
  for (std::size_t k = 0; k < order.size(); ++k) {
    const serve::ServeRequest& r = trace.requests[order[k]];
    // Devices retire work while the fleet waits for this arrival: decay every
    // outstanding estimate by the elapsed ticks so the load-aware policies
    // see instantaneous queue depth, not lifetime totals. Dispatch order is
    // non-decreasing in arrival_tick (the tenant policy only reorders within
    // a tick group), so the elapsed time is never negative.
    if (options_.drain_tokens_per_tick > 0 && r.arrival_tick > drain_tick) {
      const std::int64_t drained =
          (r.arrival_tick - drain_tick) * options_.drain_tokens_per_tick;
      for (std::int64_t& o : outstanding) o = std::max<std::int64_t>(0, o - drained);
      drain_tick = r.arrival_tick;
    }
    RouteContext ctx;
    ctx.index = static_cast<std::int64_t>(k);
    ctx.request = &r;
    ctx.devices = devices;
    ctx.outstanding_tokens = &outstanding;
    Rng rng = RouterDispatchRng(options_.router_seed, ctx.index);
    const int device = policy->Route(ctx, rng);
    MAS_CHECK(device >= 0 && device < devices)
        << "router policy '" << options_.router.policy << "' returned device " << device
        << " for a fleet of " << devices;
    const std::size_t ds = static_cast<std::size_t>(device);
    outstanding[ds] += RequestTokens(r);
    routed_tokens[ds] += RequestTokens(r);
    serve::ServeRequest routed = r;
    routed.id = static_cast<std::int64_t>(sub[ds].requests.size());
    sub[ds].requests.push_back(routed);
    original_ids[ds].push_back(r.id);
    result.assignments.push_back(RouteAssignment{r.id, r.tenant, device});
  }

  // Stage 3: run every device. The Planner is shared (Plan() is
  // mutex-guarded and deterministic per key); each device gets its own
  // ServePlanner memo — its plan namespace — and a single-threaded session,
  // so the fan-out is free of cross-device nondeterminism.
  result.devices.resize(static_cast<std::size_t>(devices));
  runner::ParallelForWorkers(
      static_cast<std::size_t>(devices), options_.jobs, [&](std::size_t, std::size_t d) {
        DeviceReport& report = result.devices[d];
        report.device = static_cast<int>(d);
        report.hw = options_.device_hw.empty() ? sim::EdgeSimConfig()
                                               : options_.device_hw[d];
        report.routed_requests = static_cast<std::int64_t>(sub[d].requests.size());
        report.routed_tokens = routed_tokens[d];
        if (sub[d].requests.empty()) {
          // An idle device still reports: zeroed metrics, no requests.
          report.result.trace_name = trace.name;
          return;
        }
        serve::ServePlanner device_planner(planner_, report.hw, options_.geometry,
                                           options_.planner);
        serve::ServeSessionOptions session_options = options_.session;
        session_options.jobs = 1;
        session_options.fault_seed =
            SaltSeed(options_.session.fault_seed, static_cast<std::uint64_t>(d));
        serve::ServeSession session(device_planner, session_options);
        report.result = session.Run(sub[d]);
        // Restore the trace's own ids for reporting (rows stay in the
        // device's dispatch order).
        for (std::size_t i = 0; i < report.result.requests.size(); ++i) {
          report.result.requests[i].id = original_ids[d][i];
        }
      });

  // Merge in device order — every reduction below is order-fixed, so the
  // aggregate is identical however the devices were scheduled above.
  FleetMetrics& agg = result.metrics;
  agg.devices = devices;
  std::vector<double> ttft_samples;
  std::vector<double> tpot_samples;
  std::map<std::string, TenantReport> tenants;
  std::map<std::string, std::vector<double>> tenant_ttft;
  std::int64_t max_tokens = 0;
  for (const DeviceReport& device : result.devices) {
    const serve::ServeMetrics& m = device.result.metrics;
    agg.requests += m.requests;
    agg.prompt_tokens += m.prompt_tokens;
    agg.decode_tokens += m.decode_tokens;
    agg.generated_tokens += m.generated_tokens;
    agg.makespan_cycles = std::max(agg.makespan_cycles, m.makespan_cycles);
    agg.makespan_ms = std::max(agg.makespan_ms, m.MakespanMs(device.hw.frequency_ghz));
    max_tokens = std::max(max_tokens, device.routed_tokens);
    for (const serve::RequestMetrics& r : device.result.requests) {
      TenantReport& tenant = tenants[r.tenant];
      tenant.tenant = r.tenant;
      ++tenant.requests;
      tenant.prompt_tokens += r.prompt_len;
      tenant.decode_tokens += r.decode_len;
      if (r.outcome != serve::RequestOutcome::kCompleted) continue;
      ++agg.completed;
      ++tenant.completed;
      const double ttft = static_cast<double>(r.TtftCycles());
      ttft_samples.push_back(ttft);
      tenant_ttft[r.tenant].push_back(ttft);
      if (r.decode_len > 0) tpot_samples.push_back(r.TpotCycles());
    }
  }
  if (!ttft_samples.empty()) {
    double sum = 0.0;
    for (const double v : ttft_samples) sum += v;
    agg.mean_ttft_cycles = sum / static_cast<double>(ttft_samples.size());
    agg.p50_ttft_cycles = serve::NearestRankPercentile(ttft_samples, 50.0);
    agg.p95_ttft_cycles = serve::NearestRankPercentile(ttft_samples, 95.0);
    agg.p99_ttft_cycles = serve::NearestRankPercentile(ttft_samples, 99.0);
  }
  if (!tpot_samples.empty()) {
    double sum = 0.0;
    for (const double v : tpot_samples) sum += v;
    agg.mean_tpot_cycles = sum / static_cast<double>(tpot_samples.size());
    agg.p50_tpot_cycles = serve::NearestRankPercentile(tpot_samples, 50.0);
    agg.p95_tpot_cycles = serve::NearestRankPercentile(tpot_samples, 95.0);
    agg.p99_tpot_cycles = serve::NearestRankPercentile(tpot_samples, 99.0);
  }
  if (agg.makespan_ms > 0.0) {
    agg.tokens_per_second =
        static_cast<double>(agg.generated_tokens) * 1000.0 / agg.makespan_ms;
  }
  std::int64_t total_tokens = 0;
  for (const std::int64_t t : routed_tokens) total_tokens += t;
  if (total_tokens > 0) {
    const double mean_tokens = static_cast<double>(total_tokens) / devices;
    agg.imbalance = static_cast<double>(max_tokens) / mean_tokens;
  }
  for (auto& [name, tenant] : tenants) {
    const std::vector<double>& samples = tenant_ttft[name];
    if (!samples.empty()) {
      double sum = 0.0;
      for (const double v : samples) sum += v;
      tenant.mean_ttft_cycles = sum / static_cast<double>(samples.size());
      tenant.p99_ttft_cycles = serve::NearestRankPercentile(samples, 99.0);
    }
    result.tenant_reports.push_back(tenant);  // std::map iterates name-sorted
  }
  return result;
}

// --------------------------------------------------------------------- json

void FleetResult::WriteJson(JsonWriter& json) const {
  // Fleet schema version 1 — independent of the per-device serve schema,
  // whose version appears inside each device's "result" block.
  json.KeyValue("schema_version", std::int64_t{1});
  json.KeyValue("trace", trace_name);
  json.KeyValue("router", router.ToString());
  json.KeyValue("router_seed", router_seed);
  json.KeyValue("drain_tokens_per_tick", drain_tokens_per_tick);
  if (tenants.enabled()) json.KeyValue("tenant_policy", tenants.ToString());
  json.BeginArray("assignments");
  for (const RouteAssignment& a : assignments) {
    json.BeginObject();
    json.KeyValue("id", a.id);
    if (!a.tenant.empty()) json.KeyValue("tenant", a.tenant);
    json.KeyValue("device", static_cast<std::int64_t>(a.device));
    json.EndObject();
  }
  json.EndArray();
  json.BeginArray("device_reports");
  for (const DeviceReport& d : devices) {
    json.BeginObject();
    json.KeyValue("device", static_cast<std::int64_t>(d.device));
    json.KeyValue("hardware", d.hw.name);
    json.KeyValue("routed_requests", d.routed_requests);
    json.KeyValue("routed_tokens", d.routed_tokens);
    json.BeginObject("result");
    d.result.WriteJson(json, d.hw);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.BeginArray("tenants");
  for (const TenantReport& t : tenant_reports) {
    json.BeginObject();
    json.KeyValue("tenant", t.tenant);
    json.KeyValue("requests", t.requests);
    json.KeyValue("completed", t.completed);
    json.KeyValue("prompt_tokens", t.prompt_tokens);
    json.KeyValue("decode_tokens", t.decode_tokens);
    json.KeyValue("mean_ttft_cycles", t.mean_ttft_cycles);
    json.KeyValue("p99_ttft_cycles", t.p99_ttft_cycles);
    json.EndObject();
  }
  json.EndArray();
  json.BeginObject("aggregate");
  json.KeyValue("devices", metrics.devices);
  json.KeyValue("requests", metrics.requests);
  json.KeyValue("completed", metrics.completed);
  json.KeyValue("prompt_tokens", metrics.prompt_tokens);
  json.KeyValue("decode_tokens", metrics.decode_tokens);
  json.KeyValue("generated_tokens", metrics.generated_tokens);
  json.KeyValue("makespan_cycles", metrics.makespan_cycles);
  json.KeyValue("makespan_ms", metrics.makespan_ms);
  json.KeyValue("tokens_per_second", metrics.tokens_per_second);
  json.KeyValue("mean_ttft_cycles", metrics.mean_ttft_cycles);
  json.KeyValue("p50_ttft_cycles", metrics.p50_ttft_cycles);
  json.KeyValue("p95_ttft_cycles", metrics.p95_ttft_cycles);
  json.KeyValue("p99_ttft_cycles", metrics.p99_ttft_cycles);
  json.KeyValue("mean_tpot_cycles", metrics.mean_tpot_cycles);
  json.KeyValue("p50_tpot_cycles", metrics.p50_tpot_cycles);
  json.KeyValue("p95_tpot_cycles", metrics.p95_tpot_cycles);
  json.KeyValue("p99_tpot_cycles", metrics.p99_tpot_cycles);
  json.KeyValue("imbalance", metrics.imbalance);
  json.EndObject();
}

// ---------------------------------------------------------------------- slo

serve::SloReport EvaluateFleetSlo(const FleetResult& result,
                                  const serve::SloTargets& targets) {
  serve::SloReport fleet;
  for (const DeviceReport& device : result.devices) {
    const serve::SloReport r = serve::EvaluateSlo(device.result, device.hw, targets);
    fleet.requests += r.requests;
    fleet.decode_requests += r.decode_requests;
    fleet.ttft_ok += r.ttft_ok;
    fleet.tpot_ok += r.tpot_ok;
    fleet.joint_ok += r.joint_ok;
    fleet.goodput_tokens += r.goodput_tokens;
    fleet.extended = fleet.extended || r.extended;
  }
  return fleet;
}

}  // namespace mas::fleet
