#include "fleet/router.h"

#include <cmath>

#include "common/status.h"

namespace mas::fleet {

namespace {

void CheckKeys(const RouterSpec& spec, std::initializer_list<const char*> allowed) {
  CheckSpecKeys("router policy '" + spec.policy + "'", spec.params, allowed);
}

// Integer-valued param: rejects fractions so `salt=0.5` fails loudly
// instead of truncating.
std::int64_t CheckInteger(const RouterSpec& spec, const char* key, std::int64_t fallback) {
  const double v = spec.Param(key, static_cast<double>(fallback));
  MAS_CHECK(std::isfinite(v) && v == std::floor(v) && v >= -9.2e18 && v <= 9.2e18)
      << "router policy '" << spec.policy << "' " << key << " must be an integer, got " << v;
  return static_cast<std::int64_t>(v);
}

// Shared tie-break: the least-loaded device, lowest index first.
int LeastLoadedDevice(const std::vector<std::int64_t>& outstanding) {
  int best = 0;
  for (int d = 1; d < static_cast<int>(outstanding.size()); ++d) {
    if (outstanding[static_cast<std::size_t>(d)] < outstanding[static_cast<std::size_t>(best)]) {
      best = d;
    }
  }
  return best;
}

// -------------------------------------------------------------- round_robin

class RoundRobinPolicy final : public RouterPolicy {
 public:
  explicit RoundRobinPolicy(RouterPolicyInfo info) : info_(std::move(info)) {}

  const RouterPolicyInfo& info() const override { return info_; }

  int Route(const RouteContext& ctx, Rng& /*rng*/) override {
    return static_cast<int>(ctx.index % ctx.devices);
  }

 private:
  RouterPolicyInfo info_;
};

// ------------------------------------------------------------- least_loaded

class LeastLoadedPolicy final : public RouterPolicy {
 public:
  explicit LeastLoadedPolicy(RouterPolicyInfo info) : info_(std::move(info)) {}

  const RouterPolicyInfo& info() const override { return info_; }

  int Route(const RouteContext& ctx, Rng& /*rng*/) override {
    return LeastLoadedDevice(*ctx.outstanding_tokens);
  }

 private:
  RouterPolicyInfo info_;
};

// ---------------------------------------------------------------------- p2c
//
// Power-of-two-choices: two uniform candidate draws, the less-loaded one
// wins. The classic result is that this closes most of the gap to full
// least-loaded while touching only two queue depths — here both are free,
// but the policy is the reference point the fleet suite ladders against.

class P2cPolicy final : public RouterPolicy {
 public:
  explicit P2cPolicy(RouterPolicyInfo info) : info_(std::move(info)) {}

  const RouterPolicyInfo& info() const override { return info_; }

  int Route(const RouteContext& ctx, Rng& rng) override {
    const std::uint64_t n = static_cast<std::uint64_t>(ctx.devices);
    const int a = static_cast<int>(rng.NextBelow(n));
    const int b = static_cast<int>(rng.NextBelow(n));
    const std::vector<std::int64_t>& load = *ctx.outstanding_tokens;
    if (a == b) return a;
    if (load[static_cast<std::size_t>(a)] != load[static_cast<std::size_t>(b)]) {
      return load[static_cast<std::size_t>(a)] < load[static_cast<std::size_t>(b)] ? a : b;
    }
    return a < b ? a : b;
  }

 private:
  RouterPolicyInfo info_;
};

// --------------------------------------------------------- session_affinity

class SessionAffinityPolicy final : public RouterPolicy {
 public:
  SessionAffinityPolicy(RouterPolicyInfo info, std::int64_t salt)
      : info_(std::move(info)), salt_(static_cast<std::uint64_t>(salt)) {}

  const RouterPolicyInfo& info() const override { return info_; }

  int Route(const RouteContext& ctx, Rng& /*rng*/) override {
    // Untenanted requests stick by id instead, which degenerates to an
    // arbitrary-but-stable spread rather than pinning everything to one
    // device.
    const serve::ServeRequest& r = *ctx.request;
    const std::string key = r.tenant.empty() ? "id:" + std::to_string(r.id) : r.tenant;
    std::uint64_t h = StableAffinityHash(key);
    // SplitMix64 finalizer folds the salt in; without it a salt of 1 would
    // just shift the hash by one bucket.
    std::uint64_t z = h ^ (salt_ + 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return static_cast<int>(z % static_cast<std::uint64_t>(ctx.devices));
  }

 private:
  RouterPolicyInfo info_;
  std::uint64_t salt_;
};

}  // namespace

// --------------------------------------------------------------------- spec

RouterSpec RouterSpec::Parse(const std::string& text) {
  ParsedSpec parsed = ParseSpec(text, "--router", "policy name");
  RouterSpec spec;
  spec.policy = std::move(parsed.head);
  spec.params = std::move(parsed.params);
  return spec;
}

std::string RouterSpec::ToString() const { return SpecToString(policy, params); }

bool RouterSpec::Has(const std::string& key) const { return SpecHas(params, key); }

double RouterSpec::Param(const std::string& key, double fallback) const {
  return SpecParam(params, key, fallback);
}

// ----------------------------------------------------------------- registry

RouterPolicyRegistry& RouterPolicyRegistry::Instance() {
  static RouterPolicyRegistry* registry = new RouterPolicyRegistry();
  return *registry;
}

void RouterPolicyRegistry::Register(RouterPolicyInfo info, Factory factory) {
  EnsureBuiltins();
  RegisterImpl(std::move(info), std::move(factory));
}

void RouterPolicyRegistry::RegisterImpl(RouterPolicyInfo info, Factory factory) {
  MAS_CHECK(!info.name.empty()) << "router policy registration needs a name";
  MAS_CHECK(factory != nullptr) << "router policy '" << info.name << "' needs a factory";
  std::lock_guard<std::mutex> lock(mu_);
  MAS_CHECK(FindEntryLocked(info.name) == nullptr)
      << "router policy '" << info.name << "' is already registered";
  entries_.push_back(Entry{std::move(info), std::move(factory)});
}

std::unique_ptr<RouterPolicy> RouterPolicyRegistry::Create(const RouterSpec& spec) const {
  EnsureBuiltins();
  MAS_CHECK(!spec.policy.empty()) << "cannot create a router policy from an empty spec";
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Entry* entry = FindEntryLocked(spec.policy);
    if (entry == nullptr) {
      MAS_FAIL() << "unknown router policy '" << spec.policy
                 << "'; options: " << AvailableNamesLockedUnsafe();
    }
    factory = entry->factory;
  }
  return factory(spec);
}

const RouterPolicyInfo* RouterPolicyRegistry::Find(const std::string& name) const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* entry = FindEntryLocked(name);
  return entry == nullptr ? nullptr : &entry->info;
}

std::vector<RouterPolicyInfo> RouterPolicyRegistry::List() const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RouterPolicyInfo> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.info);
  return out;
}

std::string RouterPolicyRegistry::AvailableNames() const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  return AvailableNamesLockedUnsafe();
}

const RouterPolicyRegistry::Entry* RouterPolicyRegistry::FindEntryLocked(
    const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.info.name == name) return &entry;
  }
  return nullptr;
}

void RouterPolicyRegistry::EnsureBuiltins() const {
  std::call_once(builtins_once_, [] {
    RouterPolicyRegistry& registry = Instance();
    registry.RegisterImpl(
        RouterPolicyInfo{"round_robin",
                         "device = dispatch index mod device count — size-blind, the "
                         "baseline the informed policies are laddered against",
                         "(none)"},
        [](const RouterSpec& spec) {
          CheckKeys(spec, {});
          return std::unique_ptr<RouterPolicy>(
              new RoundRobinPolicy(*Instance().Find("round_robin")));
        });
    registry.RegisterImpl(
        RouterPolicyInfo{"least_loaded",
                         "device with the smallest outstanding-token estimate (prompt + "
                         "decode + 1 per routed request), ties to the lowest index",
                         "(none)"},
        [](const RouterSpec& spec) {
          CheckKeys(spec, {});
          return std::unique_ptr<RouterPolicy>(
              new LeastLoadedPolicy(*Instance().Find("least_loaded")));
        });
    registry.RegisterImpl(
        RouterPolicyInfo{"p2c",
                         "power-of-two-choices: two uniform candidate draws from the "
                         "dispatch-keyed stream, the less-loaded candidate wins",
                         "(none)"},
        [](const RouterSpec& spec) {
          CheckKeys(spec, {});
          return std::unique_ptr<RouterPolicy>(new P2cPolicy(*Instance().Find("p2c")));
        });
    registry.RegisterImpl(
        RouterPolicyInfo{"session_affinity",
                         "tenant-sticky FNV-1a hash (by request id when untenanted): a "
                         "tenant's requests always land on the same device",
                         "salt (integer rehash, default 0)"},
        [](const RouterSpec& spec) {
          CheckKeys(spec, {"salt"});
          const std::int64_t salt = CheckInteger(spec, "salt", 0);
          return std::unique_ptr<RouterPolicy>(
              new SessionAffinityPolicy(*Instance().Find("session_affinity"), salt));
        });
  });
}

std::string RouterPolicyRegistry::AvailableNamesLockedUnsafe() const {
  std::string out;
  for (const Entry& entry : entries_) {
    if (!out.empty()) out += ", ";
    out += "'" + entry.info.name + "'";
  }
  return out;
}

// ---------------------------------------------------------- dispatch keying

Rng RouterDispatchRng(std::uint64_t seed, std::int64_t index) {
  // SplitMix64 finalizer over the dispatch index decorrelates adjacent
  // dispatches; XOR folds in the router seed.
  std::uint64_t z = static_cast<std::uint64_t>(index) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return Rng(seed ^ z);
}

std::uint64_t StableAffinityHash(const std::string& key) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a 64 offset basis
  for (const char c : key) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001B3ull;  // FNV-1a 64 prime
  }
  return h;
}

}  // namespace mas::fleet
