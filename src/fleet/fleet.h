// fleet::FleetRouter — multi-tenant sharded serving across N simulated
// devices.
//
// One ServeSession is the repo's single-device ceiling; the fleet layer is
// the step toward the ROADMAP's "millions of users": a router dispatches a
// RequestTrace across a fleet of independent devices — each with its own
// session clock, its own ServePlanner plan namespace, and an optional
// per-device HardwareConfig — then merges the per-device ServeMetrics into
// fleet-wide aggregates.
//
// The run has three deterministic stages:
//   1. Admission ordering — the trace's (arrival_tick, id) order, optionally
//      reordered *within* each arrival tick by a tenant policy (weighted-
//      fair queuing over the tenants' token shares, or strict priority).
//   2. Routing — a serial walk over the dispatch order asking the
//      RouterPolicy (router.h) for a device per request. Per-device
//      sub-traces renumber ids densely in dispatch order (so admission FIFO
//      inside a device matches the router's order), keeping the original id
//      for reporting.
//   3. Execution — devices fan out across runner::ParallelForWorkers; each
//      device runs its own single-threaded ServeSession against a shared
//      mas::Planner (whose Plan() is mutex-guarded and deterministic per
//      key), so the merged FleetResult — and its JSON — is byte-identical
//      for any --jobs value, and a warm plan cache replays the whole fleet
//      with zero search evaluations.
//
// Fleet-wide p50/p95/p99 TTFT/TPOT are exact nearest-rank percentiles
// recomputed from the POOLED completed-request samples (merged in device
// order), never averages of per-device percentiles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/router.h"
#include "serve/session.h"
#include "serve/slo.h"

namespace mas {
class JsonWriter;
}

namespace mas::fleet {

// Parsed `--tenants` grammar (shared spec grammar; tenant names are the
// keys): an admission-ordering policy applied within each arrival tick.
//   weighted:alice=2,bob=1 — weighted-fair queuing on the outstanding-token
//                            shares; unlisted tenants weigh 1
//   priority:alice=1       — higher level dispatches first; unlisted
//                            tenants are level 0
// A default-constructed spec (empty kind) keeps the trace's own order.
struct TenantPolicySpec {
  std::string kind;   // "weighted", "priority", or empty = FIFO passthrough
  SpecParams params;  // tenant=weight / tenant=level, grammar order

  static TenantPolicySpec Parse(const std::string& text);
  std::string ToString() const;

  bool enabled() const { return !kind.empty(); }
  // Throws on an unknown kind or, for "weighted", a non-positive weight.
  void Validate() const;
};

struct FleetOptions {
  int devices = 2;
  // Worker threads running device sessions (0 = hardware concurrency).
  // Results are byte-identical for any value; each device's own session
  // always runs single-threaded (session.jobs is ignored).
  int jobs = 1;
  RouterSpec router;  // default round_robin
  std::uint64_t router_seed = 0xF1EE7D15BA7C4E5Dull;
  // Tokens each device is assumed to retire per elapsed arrival tick in the
  // routing pre-pass. The outstanding-token estimate the load-aware policies
  // read drains at this rate between dispatches, so it tracks instantaneous
  // queue depth instead of lifetime totals (which would let a burst pile
  // onto the device with the smallest historical share). 0 disables the
  // drain and falls back to cumulative totals.
  std::int64_t drain_tokens_per_tick = 32;
  TenantPolicySpec tenants;
  AttentionGeometry geometry = Llama3Geometry();
  serve::ServePlannerOptions planner;
  // Per-device session template. fault_seed is salted with the device index
  // so devices draw independent fault streams from one flag value.
  serve::ServeSessionOptions session;
  // Optional per-device hardware: empty = every device runs EdgeSimConfig();
  // otherwise exactly `devices` entries, in device order.
  std::vector<sim::HardwareConfig> device_hw;
};

// One routed request, in dispatch order (admission order after the tenant
// policy). `device` is where it ran; `id`/`tenant` are the original trace
// fields.
struct RouteAssignment {
  std::int64_t id = 0;
  std::string tenant;
  int device = 0;
};

// One device's share of the run. `result` holds the full per-request
// metrics with ids restored to the ORIGINAL trace ids.
struct DeviceReport {
  int device = 0;
  sim::HardwareConfig hw;
  std::int64_t routed_requests = 0;
  std::int64_t routed_tokens = 0;  // total tokens (prompt + decode + 1) routed here
  serve::ServeResult result;
};

// Per-tenant rollup over the whole fleet (latency stats over the tenant's
// completed requests, pooled across devices).
struct TenantReport {
  std::string tenant;  // empty = the untenanted bucket
  std::int64_t requests = 0;
  std::int64_t completed = 0;
  std::int64_t prompt_tokens = 0;
  std::int64_t decode_tokens = 0;
  double mean_ttft_cycles = 0.0;
  double p99_ttft_cycles = 0.0;
};

// Fleet-wide aggregate, merged in device order.
struct FleetMetrics {
  std::int64_t devices = 0;
  std::int64_t requests = 0;
  std::int64_t completed = 0;
  std::int64_t prompt_tokens = 0;
  std::int64_t decode_tokens = 0;
  std::int64_t generated_tokens = 0;
  std::uint64_t makespan_cycles = 0;  // max over devices (clocks are per-device)
  double makespan_ms = 0.0;           // max over devices on each device's own clock
  double tokens_per_second = 0.0;     // generated tokens / fleet makespan seconds

  // Exact nearest-rank percentiles over the POOLED completed-request
  // samples (TPOT over completed decode requests).
  double mean_ttft_cycles = 0.0;
  double p50_ttft_cycles = 0.0;
  double p95_ttft_cycles = 0.0;
  double p99_ttft_cycles = 0.0;
  double mean_tpot_cycles = 0.0;
  double p50_tpot_cycles = 0.0;
  double p95_tpot_cycles = 0.0;
  double p99_tpot_cycles = 0.0;

  // Load balance: max over devices of routed tokens divided by the mean
  // (1.0 = perfectly even; 0 routed tokens reports 1.0).
  double imbalance = 1.0;
};

struct FleetResult {
  std::string trace_name;
  RouterSpec router;
  std::uint64_t router_seed = 0;
  std::int64_t drain_tokens_per_tick = 0;  // echoed from FleetOptions
  TenantPolicySpec tenants;
  std::vector<RouteAssignment> assignments;  // dispatch order
  std::vector<DeviceReport> devices;         // device order
  std::vector<TenantReport> tenant_reports;  // sorted by tenant name
  FleetMetrics metrics;

  // Deterministic machine-readable form (no wall clocks or thread counts —
  // byte-identical for any jobs value): config keys, the assignment list,
  // per-device blocks (each embedding its ServeResult JSON), per-tenant
  // rollups, and the fleet aggregate. Emits into an already-open object.
  void WriteJson(JsonWriter& json) const;
};

class FleetRouter {
 public:
  // `planner` carries the shared plan store (load a plan cache into it to
  // warm-start every device) and must outlive this object. Throws on
  // invalid options (device count < 1, unknown router policy or tenant
  // kind, device_hw size mismatch).
  FleetRouter(Planner& planner, FleetOptions options);

  // Dispatches the trace and runs every device to completion.
  FleetResult Run(const serve::RequestTrace& trace);

  const FleetOptions& options() const { return options_; }

 private:
  Planner& planner_;
  FleetOptions options_;
};

// Scores every device's result against `targets` on that device's own
// clock and sums the attainment counts — the fleet-wide SLO report.
serve::SloReport EvaluateFleetSlo(const FleetResult& result, const serve::SloTargets& targets);

}  // namespace mas::fleet
