// fleet::RouterPolicy — deterministic request dispatch across a fleet of
// simulated devices.
//
// The FleetRouter (fleet.h) walks a trace in admission order and asks a
// RouterPolicy, one request at a time, which device should serve it. A
// policy sees only deterministic inputs — the dispatch index, the request
// (including its tenant label), the device count, and the router's
// outstanding-token estimate per device — plus a dispatch-keyed Rng stream
// (RouterDispatchRng, the FaultRoundRng idiom), so a (policy, seed) pair
// replays byte-identically for any --jobs value.
//
// Policies self-register in the RouterPolicyRegistry (the same pattern as
// the scheduler/strategy/arrival/fault registries) under the `--router`
// grammar shared with --arrival/--fault (common/spec.h):
//   policy[:key=value[,key=value...]]      e.g.  session_affinity:salt=7
// Built-ins:
//   round_robin      — device = dispatch index mod device count
//   least_loaded     — device with the smallest outstanding-token estimate
//                      (prompt + decode + 1 per routed request, drained at
//                      FleetOptions::drain_tokens_per_tick between
//                      dispatches), ties to the lowest device index
//   p2c              — power-of-two-choices: two uniform candidate draws
//                      from the dispatch-keyed stream, the less-loaded one
//                      wins (ties to the lower index)
//   session_affinity — tenant-sticky FNV-1a hash (falls back to the request
//                      id when untenanted), optional `salt` rehash
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/spec.h"
#include "serve/trace.h"

namespace mas::fleet {

// Parsed `--router` grammar: "policy[:key=value[,key=value...]]". Values
// are finite doubles; keys may not repeat. Parse() throws mas::Error on
// malformed text; policy/param *semantics* are checked by the registry
// factory at Create() time.
struct RouterSpec {
  std::string policy = "round_robin";  // registry key
  SpecParams params;                   // grammar order

  static RouterSpec Parse(const std::string& text);
  std::string ToString() const;  // canonical "policy:k=v,..." round-trip

  bool Has(const std::string& key) const;
  double Param(const std::string& key, double fallback) const;
};

// Descriptor of one registered router policy.
struct RouterPolicyInfo {
  std::string name;     // registry key and grammar head, e.g. "p2c"
  std::string summary;  // one-line dispatch-rule description
  std::string params;   // grammar help, e.g. "salt (integer, default 0)"
};

// What a policy sees for one dispatch decision — the only inputs it may
// condition on (anything else would break jobs-independence).
struct RouteContext {
  std::int64_t index = 0;                 // dispatch sequence number (0-based)
  const serve::ServeRequest* request = nullptr;
  int devices = 1;
  // Router-maintained per-device load estimate: prompt_len + decode_len + 1
  // charged per routed request, drained toward zero between dispatches at
  // FleetOptions::drain_tokens_per_tick per elapsed arrival tick — an
  // instantaneous queue-depth proxy, not a lifetime total.
  const std::vector<std::int64_t>* outstanding_tokens = nullptr;
};

// One instantiated dispatch rule. Policies may keep state, so create one
// per fleet run.
class RouterPolicy {
 public:
  virtual ~RouterPolicy() = default;
  virtual const RouterPolicyInfo& info() const = 0;
  // Returns the target device in [0, ctx.devices). `rng` is the
  // dispatch-keyed stream from RouterDispatchRng — policies never seed
  // their own.
  virtual int Route(const RouteContext& ctx, Rng& rng) = 0;
};

// String-keyed router-policy catalog, mirroring FaultModelRegistry.
// Factories validate their spec's params (unknown keys, bad values) eagerly.
class RouterPolicyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<RouterPolicy>(const RouterSpec&)>;

  static RouterPolicyRegistry& Instance();

  // Throws when the policy name is already taken (the built-ins are
  // materialized first, so registering over "p2c" throws immediately rather
  // than failing at the first lookup).
  void Register(RouterPolicyInfo info, Factory factory);

  // Unknown policies throw an Error listing the available set; factories
  // throw on invalid params.
  std::unique_ptr<RouterPolicy> Create(const RouterSpec& spec) const;

  const RouterPolicyInfo* Find(const std::string& name) const;  // nullptr if unknown
  std::vector<RouterPolicyInfo> List() const;  // registration order
  std::string AvailableNames() const;          // "'round_robin', 'least_loaded', ..."

 private:
  struct Entry {
    RouterPolicyInfo info;
    Factory factory;
  };

  RouterPolicyRegistry() = default;
  void EnsureBuiltins() const;
  // Register without materializing builtins first — the path the builtin
  // registrations themselves take (calling Register there would re-enter
  // the active call_once and deadlock).
  void RegisterImpl(RouterPolicyInfo info, Factory factory);
  const Entry* FindEntryLocked(const std::string& name) const;
  std::string AvailableNamesLockedUnsafe() const;

  mutable std::once_flag builtins_once_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // registration order
};

// The dispatch-keyed router stream: a fresh Rng for dispatch `index` of a
// fleet seeded with `seed` (SplitMix64 of the index XORed into the seed —
// the FaultRoundRng idiom). Keying per dispatch makes a decision's draws
// independent of every other decision's draw count, so policies can grow
// extra draws without invalidating unrelated dispatches.
Rng RouterDispatchRng(std::uint64_t seed, std::int64_t index);

// FNV-1a 64-bit over `key`, the session_affinity hash. Exposed so tests can
// hand-check sticky placements.
std::uint64_t StableAffinityHash(const std::string& key);

}  // namespace mas::fleet
