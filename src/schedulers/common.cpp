#include "schedulers/common.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/status.h"
#include "kernels/attention_kernels.h"

namespace mas::detail {

std::vector<RowBlock> EnumerateRowBlocks(const AttentionShape& shape,
                                         const TilingConfig& tiling) {
  shape.Validate();
  tiling.Validate(shape);
  std::vector<RowBlock> blocks;
  for (std::int64_t b0 = 0; b0 < shape.batch; b0 += tiling.bb) {
    const std::int64_t bl = std::min(tiling.bb, shape.batch - b0);
    for (std::int64_t h0 = 0; h0 < shape.heads; h0 += tiling.hh) {
      const std::int64_t hl = std::min(tiling.hh, shape.heads - h0);
      for (std::int64_t n0 = 0; n0 < shape.seq_len; n0 += tiling.nq) {
        const std::int64_t nl = std::min(tiling.nq, shape.seq_len - n0);
        blocks.push_back({b0, bl, h0, hl, n0, nl});
      }
    }
  }
  return blocks;
}

std::vector<std::vector<RowBlock>> ShardAcrossCores(const std::vector<RowBlock>& blocks,
                                                    const sim::HardwareConfig& hw) {
  const std::int64_t cores = hw.num_cores();
  std::vector<std::vector<RowBlock>> shards(static_cast<std::size_t>(cores));
  if (blocks.empty()) return shards;

  // Group boundaries: keep a (b,h) group's row blocks contiguous on one core.
  // Assign groups to cores greedily by remaining capacity weight
  // (longest-processing-time style), where a core's weight is its MAC
  // throughput and a group's load is its row count.
  struct Group {
    std::size_t first, last;  // [first, last) into blocks
    std::int64_t load;
  };
  std::vector<Group> groups;
  std::size_t start = 0;
  for (std::size_t idx = 1; idx <= blocks.size(); ++idx) {
    if (idx == blocks.size() || blocks[idx].first_in_group()) {
      std::int64_t load = 0;
      for (std::size_t j = start; j < idx; ++j) {
        load += blocks[j].groups() * blocks[j].rows();
      }
      groups.push_back({start, idx, load});
      start = idx;
    }
  }

  std::vector<double> core_weight(static_cast<std::size_t>(cores));
  std::vector<double> core_load(static_cast<std::size_t>(cores), 0.0);
  for (std::int64_t c = 0; c < cores; ++c) {
    const auto& cc = hw.cores[static_cast<std::size_t>(c)];
    core_weight[static_cast<std::size_t>(c)] =
        static_cast<double>(cc.mac_rows * cc.mac_cols);
  }
  for (const Group& g : groups) {
    // Pick the core with the smallest normalized load.
    std::size_t best = 0;
    double best_score = core_load[0] / core_weight[0];
    for (std::size_t c = 1; c < static_cast<std::size_t>(cores); ++c) {
      const double score = core_load[c] / core_weight[c];
      if (score < best_score) {
        best = c;
        best_score = score;
      }
    }
    for (std::size_t j = g.first; j < g.last; ++j) shards[best].push_back(blocks[j]);
    core_load[best] += static_cast<double>(g.load);
  }
  return shards;
}

std::vector<KvBlock> EnumerateKvBlocks(const AttentionShape& shape,
                                       const TilingConfig& tiling) {
  std::vector<KvBlock> blocks;
  for (std::int64_t n0 = 0; n0 < shape.kv(); n0 += tiling.nkv) {
    blocks.push_back({n0, std::min(tiling.nkv, shape.kv() - n0)});
  }
  return blocks;
}

std::int64_t ActiveCoreCount(const AttentionShape& shape, const TilingConfig& tiling,
                             const sim::HardwareConfig& hw) {
  const std::int64_t groups = CeilDiv(shape.batch, tiling.bb) * CeilDiv(shape.heads, tiling.hh);
  return std::max<std::int64_t>(std::min(hw.num_cores(), groups), 1);
}

std::int64_t PerCoreL1Budget(const AttentionShape& shape, const TilingConfig& tiling,
                             const sim::HardwareConfig& hw) {
  return hw.l1_bytes / ActiveCoreCount(shape, tiling, hw);
}

BlockBytes ComputeBlockBytes(const AttentionShape& shape, const TilingConfig& tiling,
                             const sim::HardwareConfig& hw) {
  const std::int64_t eb = hw.element_bytes;
  const std::int64_t groups = std::min(tiling.bb, shape.batch) * std::min(tiling.hh, shape.heads);
  const std::int64_t rows = std::min(tiling.nq, shape.seq_len);
  BlockBytes bytes;
  bytes.q = groups * rows * shape.embed * eb;
  bytes.c = groups * rows * shape.kv() * eb;
  bytes.o = groups * rows * shape.embed * eb;
  bytes.kv_group = groups * shape.kv() * shape.embed * eb;
  bytes.kv_tile = groups * std::min(tiling.nkv, shape.kv()) * shape.embed * eb;
  return bytes;
}

TensorF ExecuteFusedRowBlocks(const TensorF& q, const TensorF& k, const TensorF& v,
                              const TilingConfig& tiling) {
  const Shape4& s = q.shape();
  const Shape4& skv = k.shape();
  MAS_CHECK(skv.b == s.b && skv.h == s.h && skv.e == s.e) << "Q/K batch/head/embed mismatch";
  MAS_CHECK(v.shape() == skv) << "K/V must share shape";
  AttentionShape shape{"exec", s.b, s.h, s.n, s.e, skv.n == s.n ? 0 : skv.n};
  TensorF o(s);
  for (const RowBlock& rb : EnumerateRowBlocks(shape, tiling)) {
    const TensorF q_i = q.Slice(rb.b0, rb.bl, rb.h0, rb.hl, rb.n0, rb.nl, 0, s.e);
    const TensorF k_i = k.Slice(rb.b0, rb.bl, rb.h0, rb.hl, 0, skv.n, 0, s.e);
    const TensorF v_i = v.Slice(rb.b0, rb.bl, rb.h0, rb.hl, 0, skv.n, 0, s.e);
    const TensorF c_i = TiledQKT(q_i, k_i, tiling.nkv);       // Alg. 2
    const TensorF p_i = TiledSoftmax(c_i);                    // Alg. 3
    const TensorF o_i = TiledPV(p_i, v_i, tiling.nkv);        // Alg. 4
    o.Place(o_i, rb.b0, rb.h0, rb.n0, 0);
  }
  return o;
}

}  // namespace mas::detail
