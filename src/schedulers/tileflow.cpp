// TileFlow-style fused pipeline (paper §5.1 baseline, approximated — the
// original paper does not publish full implementation details).
//
// All three attention operators are fused on-chip and pipelined at sub-tile
// granularity *within* a computation round: the softmax of a key/value
// sub-block starts as soon as that sub-block's scores are computed (online
// partial max/sum), overlapping the MAC and VEC units. A normalization pass
// closes each round and a barrier separates rounds (the tree-based analysis
// synchronizes per fusion level), so — unlike MAS — no cross-round
// MAC/VEC overlap exists. The finer tiling tree also re-materializes
// intermediate sub-tiles through L1, which costs on-chip energy (the paper's
// Fig. 6 shows TileFlow's high L1 energy).
#include <algorithm>

#include "common/math_util.h"
#include "kernels/attention_kernels.h"
#include "schedulers/builder.h"
#include "schedulers/common.h"
#include "schedulers/impls.h"
#include "schedulers/registry.h"

namespace mas {

using detail::KvBlock;
using detail::RowBlock;
using detail::ScheduleBuilder;
using sim::TaskId;

namespace {

std::int64_t WorkingBytes(const detail::BlockBytes& bytes) {
  // One strip (in-place), double-buffered Q/O, plus per-stage sub-tile
  // staging for the pipeline (one extra C sub-tile per stage boundary).
  return 2 * bytes.q + bytes.c + 2 * bytes.o + 2 * bytes.kv_tile;
}

bool CanResideKv(const detail::BlockBytes& bytes, std::int64_t l1_budget) {
  return WorkingBytes(bytes) + 2 * bytes.kv_group <= l1_budget;
}

}  // namespace

bool TileFlowScheduler::Fits(const AttentionShape& shape, const TilingConfig& tiling,
                             const sim::HardwareConfig& hw) const {
  tiling.Validate(shape);
  const detail::BlockBytes bytes = detail::ComputeBlockBytes(shape, tiling, hw);
  return WorkingBytes(bytes) + 4 * bytes.kv_tile <=
         detail::PerCoreL1Budget(shape, tiling, hw);
}

sim::SimResult TileFlowScheduler::Simulate(const AttentionShape& shape,
                                           const TilingConfig& tiling,
                                           const sim::HardwareConfig& hw,
                                           const sim::EnergyModel& em,
                                           bool record_timeline,
                                           sim::Engine* engine) const {
  MAS_CHECK(Fits(shape, tiling, hw)) << "tiling does not fit: " << tiling.ToString();
  ScheduleBuilder b(hw, em, record_timeline, engine);
  const std::int64_t eb = hw.element_bytes;
  const detail::BlockBytes bytes = detail::ComputeBlockBytes(shape, tiling, hw);
  const bool resident = CanResideKv(bytes, detail::PerCoreL1Budget(shape, tiling, hw));
  const auto blocks = detail::EnumerateRowBlocks(shape, tiling);
  const auto shards = detail::ShardAcrossCores(blocks, hw);
  const auto kvs = detail::EnumerateKvBlocks(shape, tiling);

  // Per-element VEC lane cost of the partial (per sub-block) pass: running
  // max update, subtract, exponentiate, partial sum — everything except the
  // final normalization division.
  for (int core = 0; core < static_cast<int>(shards.size()); ++core) {
    const auto& cc = hw.cores[static_cast<std::size_t>(core)];
    const std::int64_t partial_ops =
        cc.vec_cost_max + cc.vec_cost_sub + cc.vec_cost_exp + cc.vec_cost_sum;
    TaskId k_group = sim::kNoTask;
    TaskId v_group = sim::kNoTask;
    TaskId round_barrier = sim::kNoTask;
    std::vector<TaskId> partials;  // reused across row blocks
    for (const RowBlock& rb : shards[static_cast<std::size_t>(core)]) {
      const std::int64_t groups = rb.groups();
      if (resident && rb.first_in_group()) {
        k_group = b.Dma("load K group", core, groups * shape.kv() * shape.embed * eb, true);
        v_group = b.Dma("load V group", core, groups * shape.kv() * shape.embed * eb, true);
      }
      const TaskId q_load = b.Dma("load Q_i", core, groups * rb.rows() * shape.embed * eb, true);

      // Pipelined C sub-block -> partial softmax per sub-block.
      partials.clear();
      for (const KvBlock& kv : kvs) {
        detail::DepList deps = {q_load};
        if (round_barrier != sim::kNoTask) deps.push_back(round_barrier);
        if (resident) {
          deps.push_back(k_group);
        } else {
          deps.push_back(b.Dma("load K_ij", core, groups * kv.nl * shape.embed * eb, true));
        }
        const TaskId mac = b.Mac("C_ij = Q_i K_ij^T", core, groups, rb.rows(), shape.embed,
                                 kv.nl, deps);
        partials.push_back(b.VecElem("partial softmax C_ij", core,
                                     groups * rb.rows() * kv.nl, partial_ops, detail::DepList{mac}));
      }
      // Normalization closes the softmax across the whole strip.
      const TaskId norm = b.VecElem("normalize P_i", core,
                                    groups * rb.rows() * shape.kv(),
                                    cc.vec_cost_div, partials);

      TaskId last_mac = sim::kNoTask;
      for (const KvBlock& kv : kvs) {
        detail::DepList deps = {norm};
        if (resident) {
          deps.push_back(v_group);
        } else {
          deps.push_back(b.Dma("load V_ij", core, groups * kv.nl * shape.embed * eb, true));
        }
        if (last_mac != sim::kNoTask) deps.push_back(last_mac);
        last_mac = b.Mac("O_i += P_ij V_ij", core, groups, rb.rows(), kv.nl, shape.embed,
                         deps);
      }
      const TaskId store =
          b.Dma("store O_i", core, groups * rb.rows() * shape.embed * eb, false, detail::DepList{last_mac});
      // Tree-level barrier: the next round's compute starts only after this
      // round fully drains (no cross-round MAC/VEC overlap).
      round_barrier = store;

      // The tiling tree re-materializes the C/P strip between fusion levels
      // (MatMul -> softmax -> MatMul), costing two extra L1 round trips per
      // strip plus sub-tile staging of the operands.
      const std::int64_t strip = groups * rb.rows() * shape.kv() * eb;
      b.ChargeL1Shuffle(2 * strip + bytes.q + bytes.o);
    }
  }

  const std::int64_t peak =
      WorkingBytes(bytes) + (resident ? 2 * bytes.kv_group : 4 * bytes.kv_tile);
  return b.Finish(peak);
}

TensorF TileFlowScheduler::Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                                   const TilingConfig& tiling) const {
  // Functionally the pipelined partial/normalize softmax is the online
  // (two-pass streaming) decomposition — exact, validated against
  // SoftmaxRows by the kernel tests.
  const Shape4& s = q.shape();
  const std::int64_t nkv_len = k.shape().n;
  AttentionShape shape{"tileflow", s.b, s.h, s.n, s.e, nkv_len == s.n ? 0 : nkv_len};
  TensorF o(s);
  for (const RowBlock& rb : detail::EnumerateRowBlocks(shape, tiling)) {
    const TensorF q_i = q.Slice(rb.b0, rb.bl, rb.h0, rb.hl, rb.n0, rb.nl, 0, s.e);
    const TensorF k_i = k.Slice(rb.b0, rb.bl, rb.h0, rb.hl, 0, nkv_len, 0, s.e);
    const TensorF v_i = v.Slice(rb.b0, rb.bl, rb.h0, rb.hl, 0, nkv_len, 0, s.e);
    const TensorF c_i = TiledQKT(q_i, k_i, tiling.nkv);
    const TensorF p_i = OnlineSoftmaxRows(c_i, tiling.nkv);
    o.Place(TiledPV(p_i, v_i, tiling.nkv), rb.b0, rb.h0, rb.n0, 0);
  }
  return o;
}

void RegisterTileFlowScheduler() {
  SchedulerRegistry::Instance().Register(
      SchedulerInfo{"TileFlow", /*paper_column=*/3, /*is_ablation=*/false,
                    "TileFlow-style fused pipeline with sub-tile tree and per-round barriers", Method::kTileFlow},
      [] { return std::make_unique<TileFlowScheduler>(); });
}

}  // namespace mas
