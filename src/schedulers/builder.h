// ScheduleBuilder: thin emission layer over the engine + cost model.
//
// Scheduler implementations express their dataflow as a sequence of emit
// calls; issue order *is* execution order within each in-order resource
// queue, exactly as on the modeled hardware (DMA descriptor ring, in-order
// MAC/VEC pipelines). Cross-resource synchronization is expressed through
// task dependencies.
//
// Emission is allocation-free on the hot (non-timeline) path: dependency
// lists are passed as sim::DepSpan views (stack-backed sim::DepList at the
// small call sites), names are only interned when the timeline is recorded,
// and the builder can target a caller-owned engine — the tiling search hands
// each worker one engine that is Reset() and refilled per candidate, so the
// thousands of Simulate() calls of an AutoTile reuse one set of arenas.
#pragma once

#include <memory>

#include "common/status.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace mas::detail {

using sim::DepList;
using sim::DepSpan;
using sim::TaskId;

class ScheduleBuilder {
 public:
  // With `reuse == nullptr` the builder owns a fresh engine; otherwise it
  // Reset()s and refills the caller's engine (which must have been built for
  // compatible hardware — same core count).
  ScheduleBuilder(const sim::HardwareConfig& hw, const sim::EnergyModel& em,
                  bool record_timeline, sim::Engine* reuse = nullptr)
      : owned_(reuse ? nullptr : std::make_unique<sim::Engine>(hw, record_timeline)),
        engine_(reuse ? *reuse : *owned_),
        cm_(hw, em),
        record_(record_timeline) {
    if (reuse) {
      MAS_CHECK(reuse->hw().cores.size() == hw.cores.size())
          << "reused engine was built for different hardware";
      reuse->Reset(record_timeline);
    }
  }

  const sim::HardwareConfig& hw() const { return cm_.hw(); }
  const sim::CostModel& cost_model() const { return cm_; }

  // DRAM <-> L1 transfer. Each core owns a DMA descriptor ring; the rings
  // arbitrate round-robin for the single DRAM bus (see Engine::Run), so one
  // core's queued-ahead transfers cannot starve another core's demand loads.
  TaskId Dma(const char* name, int core, std::int64_t bytes, bool is_read,
             DepSpan deps = {}) {
    return Emit(name, sim::ResourceKind::kDma, core, cm_.Dma(bytes, is_read), deps);
  }

  // Batched MatMul tile on `core`'s MAC unit.
  TaskId Mac(const char* name, int core, std::int64_t groups, std::int64_t m, std::int64_t k,
             std::int64_t n, DepSpan deps = {}) {
    return Emit(name, sim::ResourceKind::kMac, core, cm_.MacTile(groups, m, k, n, core),
                deps);
  }

  // Batched softmax tile on `core`'s VEC unit.
  TaskId Vec(const char* name, int core, std::int64_t groups, std::int64_t rows,
             std::int64_t row_len, DepSpan deps = {}, std::int64_t extra_lane_ops = 0) {
    return Emit(name, sim::ResourceKind::kVec, core,
                cm_.VecSoftmax(groups, rows, row_len, core, extra_lane_ops), deps);
  }

  // Generic element-wise pass on `core`'s VEC unit.
  TaskId VecElem(const char* name, int core, std::int64_t elements, std::int64_t ops_per_elem,
                 DepSpan deps = {}) {
    return Emit(name, sim::ResourceKind::kVec, core,
                cm_.VecElementwise(elements, ops_per_elem, core), deps);
  }

  // Charges L1 read+write energy for on-chip data reorganization without
  // occupying a compute resource (TileFlow's inter-stage shuffles).
  void ChargeL1Shuffle(std::int64_t bytes) { extra_energy_ += cm_.L1Shuffle(bytes).energy; }

  // Runs the schedule and merges scheduler-reported statistics.
  sim::SimResult Finish(std::int64_t peak_l1_bytes, std::int64_t overwrite_events = 0,
                        std::int64_t reload_bytes = 0) {
    sim::SimResult result = engine_.Run();
    result.energy += extra_energy_;
    result.peak_l1_bytes = peak_l1_bytes;
    result.overwrite_events = overwrite_events;
    result.reload_bytes = reload_bytes;
    return result;
  }

 private:
  TaskId Emit(const char* name, sim::ResourceKind resource, int core, sim::TaskCost cost,
              DepSpan deps) {
    return engine_.AddTask(resource, core, cost.cycles, deps, cost.energy,
                           cost.dram_read_bytes, cost.dram_write_bytes,
                           record_ ? engine_.InternName(name) : sim::kNoName);
  }

  std::unique_ptr<sim::Engine> owned_;
  sim::Engine& engine_;
  sim::CostModel cm_;
  bool record_;
  sim::EnergyBreakdown extra_energy_;
};

}  // namespace mas::detail
