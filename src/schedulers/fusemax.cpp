// FuseMax (Nayak et al. 2024) scaled down to the edge device (paper §5.1).
//
// Attention is decomposed into an einsum cascade executed in a single fused
// pass with *online* softmax: per key/value sub-block j, the MAC unit
// computes the score block C_j, the VEC unit folds it into running
// (max, sum) statistics and exponentiates, and the MAC unit accumulates the
// weighted-V contribution — with the accumulator rescaled on the VEC unit
// whenever the running max moves. MAC and VEC ping-pong at sub-block
// granularity, overlapping like MAS but with extra vector work (rescales)
// and tighter per-block coupling. No full C/P strip is ever materialized,
// so FuseMax has the smallest on-chip footprint of the fused methods.
#include <algorithm>
#include <limits>

#include "common/math_util.h"
#include "kernels/attention_kernels.h"
#include "schedulers/builder.h"
#include "schedulers/common.h"
#include "schedulers/impls.h"
#include "schedulers/registry.h"

namespace mas {

using detail::KvBlock;
using detail::RowBlock;
using detail::ScheduleBuilder;
using sim::TaskId;

namespace {

std::int64_t BlockStateBytes(const AttentionShape& shape, const TilingConfig& tiling,
                             const sim::HardwareConfig& hw) {
  const std::int64_t eb = hw.element_bytes;
  const std::int64_t groups = std::min(tiling.bb, shape.batch) * std::min(tiling.hh, shape.heads);
  const std::int64_t rows = std::min(tiling.nq, shape.seq_len);
  const std::int64_t nkv = std::min(tiling.nkv, shape.kv());
  const std::int64_t c_blk = groups * rows * nkv * eb;    // one score sub-block
  const std::int64_t stats = 2 * groups * rows * eb;      // running (max, sum)
  return 2 * c_blk + stats;
}

std::int64_t WorkingBytes(const AttentionShape& shape, const TilingConfig& tiling,
                          const sim::HardwareConfig& hw) {
  const detail::BlockBytes bytes = detail::ComputeBlockBytes(shape, tiling, hw);
  return 2 * bytes.q + 2 * bytes.o + BlockStateBytes(shape, tiling, hw);
}

bool CanResideKv(const AttentionShape& shape, const TilingConfig& tiling,
                 const sim::HardwareConfig& hw) {
  const detail::BlockBytes bytes = detail::ComputeBlockBytes(shape, tiling, hw);
  return WorkingBytes(shape, tiling, hw) + 2 * bytes.kv_group <=
         detail::PerCoreL1Budget(shape, tiling, hw);
}

}  // namespace

bool FuseMaxScheduler::Fits(const AttentionShape& shape, const TilingConfig& tiling,
                            const sim::HardwareConfig& hw) const {
  tiling.Validate(shape);
  const detail::BlockBytes bytes = detail::ComputeBlockBytes(shape, tiling, hw);
  return WorkingBytes(shape, tiling, hw) + 4 * bytes.kv_tile <=
         detail::PerCoreL1Budget(shape, tiling, hw);
}

sim::SimResult FuseMaxScheduler::Simulate(const AttentionShape& shape,
                                          const TilingConfig& tiling,
                                          const sim::HardwareConfig& hw,
                                          const sim::EnergyModel& em,
                                          bool record_timeline,
                                          sim::Engine* engine) const {
  MAS_CHECK(Fits(shape, tiling, hw)) << "tiling does not fit: " << tiling.ToString();
  ScheduleBuilder b(hw, em, record_timeline, engine);
  const std::int64_t eb = hw.element_bytes;
  const detail::BlockBytes bytes = detail::ComputeBlockBytes(shape, tiling, hw);
  const bool resident = CanResideKv(shape, tiling, hw);
  const auto blocks = detail::EnumerateRowBlocks(shape, tiling);
  const auto shards = detail::ShardAcrossCores(blocks, hw);
  const auto kvs = detail::EnumerateKvBlocks(shape, tiling);

  for (int core = 0; core < static_cast<int>(shards.size()); ++core) {
    const auto& cc = hw.cores[static_cast<std::size_t>(core)];
    // Online update per element: running-max compare, subtract, exp, sum
    // fold, plus the multiply of the P block into the accumulator path.
    const std::int64_t update_ops =
        cc.vec_cost_max + cc.vec_cost_sub + cc.vec_cost_exp + cc.vec_cost_sum;
    TaskId k_group = sim::kNoTask;
    TaskId v_group = sim::kNoTask;
    std::vector<TaskId> c_macs, updates, pv_macs;  // reused across row blocks
    for (const RowBlock& rb : shards[static_cast<std::size_t>(core)]) {
      const std::int64_t groups = rb.groups();
      if (resident && rb.first_in_group()) {
        k_group = b.Dma("load K group", core, groups * shape.kv() * shape.embed * eb, true);
        v_group = b.Dma("load V group", core, groups * shape.kv() * shape.embed * eb, true);
      }
      const TaskId q_load = b.Dma("load Q_i", core, groups * rb.rows() * shape.embed * eb, true);

      // Einsum cascade: C_j -> online update U_j -> PV_j accumulate, with the
      // MAC unit running C_{j+1} while the VEC unit folds block j (ping-pong
      // scheduling per the FuseMax paper). The in-order MAC queue receives
      // C_0, C_1, PV_0, C_2, PV_1, ... — PV_j waits on U_j.
      c_macs.assign(kvs.size(), sim::kNoTask);
      updates.assign(kvs.size(), sim::kNoTask);
      pv_macs.assign(kvs.size(), sim::kNoTask);
      auto emit_c = [&](std::size_t j) {
        const KvBlock& kv = kvs[j];
        detail::DepList deps = {q_load};
        if (resident) {
          deps.push_back(k_group);
        } else {
          deps.push_back(b.Dma("load K_ij", core, groups * kv.nl * shape.embed * eb, true));
        }
        c_macs[j] = b.Mac("C_j = Q_i K_j^T", core, groups, rb.rows(), shape.embed, kv.nl,
                          deps);
      };
      auto emit_update = [&](std::size_t j) {
        const KvBlock& kv = kvs[j];
        detail::DepList deps = {c_macs[j]};
        if (j > 0) deps.push_back(updates[j - 1]);  // running stats carry
        updates[j] = b.VecElem("online update U_j", core, groups * rb.rows() * kv.nl,
                               update_ops, deps);
        // Accumulator rescale when the running max moves: one multiply-add
        // over the O accumulator per block.
        updates[j] = b.VecElem("rescale O acc", core, groups * rb.rows() * shape.embed, 2,
                               detail::DepList{updates[j]});
      };
      auto emit_pv = [&](std::size_t j) {
        const KvBlock& kv = kvs[j];
        detail::DepList deps = {updates[j]};
        if (resident) {
          deps.push_back(v_group);
        } else {
          deps.push_back(b.Dma("load V_ij", core, groups * kv.nl * shape.embed * eb, true));
        }
        if (j > 0 && pv_macs[j - 1] != sim::kNoTask) deps.push_back(pv_macs[j - 1]);
        pv_macs[j] = b.Mac("O_i += P_j V_j", core, groups, rb.rows(), kv.nl, shape.embed,
                           deps);
      };

      emit_c(0);
      for (std::size_t j = 1; j < kvs.size(); ++j) {
        emit_c(j);
        emit_update(j - 1);
        emit_pv(j - 1);
      }
      emit_update(kvs.size() - 1);
      emit_pv(kvs.size() - 1);

      // Final normalization of the accumulator by the running sum.
      const TaskId norm = b.VecElem("normalize O_i", core, groups * rb.rows() * shape.embed,
                                    cc.vec_cost_div, detail::DepList{pv_macs.back()});
      b.Dma("store O_i", core, groups * rb.rows() * shape.embed * eb, false, detail::DepList{norm});
    }
  }

  const std::int64_t peak = WorkingBytes(shape, tiling, hw) +
                            (resident ? 2 * bytes.kv_group : 4 * bytes.kv_tile);
  return b.Finish(peak);
}

TensorF FuseMaxScheduler::Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                                  const TilingConfig& tiling) const {
  const Shape4& s = q.shape();
  const Shape4& skv = k.shape();
  MAS_CHECK(skv.b == s.b && skv.h == s.h && skv.e == s.e) << "Q/K batch/head/embed mismatch";
  MAS_CHECK(v.shape() == skv) << "K/V must share shape";
  const std::int64_t nkv_len = skv.n;
  AttentionShape shape{"fusemax", s.b, s.h, s.n, s.e, nkv_len == s.n ? 0 : nkv_len};
  TensorF o(s);
  for (const RowBlock& rb : detail::EnumerateRowBlocks(shape, tiling)) {
    const TensorF q_i = q.Slice(rb.b0, rb.bl, rb.h0, rb.hl, rb.n0, rb.nl, 0, s.e);
    // Online-softmax single pass over key/value sub-blocks: running
    // (max, sum) per row, with accumulator rescaling — the einsum cascade.
    TensorF o_i(rb.bl, rb.hl, rb.nl, s.e);
    TensorF run_max(rb.bl, rb.hl, rb.nl, 1);
    TensorF run_sum(rb.bl, rb.hl, rb.nl, 1);
    run_max.Fill(-std::numeric_limits<float>::infinity());
    run_sum.Fill(0.0f);
    for (std::int64_t j0 = 0; j0 < nkv_len; j0 += tiling.nkv) {
      const std::int64_t jl = std::min(tiling.nkv, nkv_len - j0);
      const TensorF k_blk = k.Slice(rb.b0, rb.bl, rb.h0, rb.hl, j0, jl, 0, s.e);
      const TensorF v_blk = v.Slice(rb.b0, rb.bl, rb.h0, rb.hl, j0, jl, 0, s.e);
      const TensorF c_blk = MatMulTransposed(q_i, k_blk);
      for (std::int64_t bb = 0; bb < rb.bl; ++bb)
        for (std::int64_t hh = 0; hh < rb.hl; ++hh)
          for (std::int64_t r = 0; r < rb.nl; ++r) {
            float blk_max = -std::numeric_limits<float>::infinity();
            for (std::int64_t c = 0; c < jl; ++c) {
              blk_max = std::max(blk_max, c_blk.at(bb, hh, r, c));
            }
            const float old_max = run_max.at(bb, hh, r, 0);
            const float new_max = std::max(old_max, blk_max);
            const float rescale = std::exp(old_max - new_max);
            // Rescale accumulator and running sum to the new max.
            for (std::int64_t e = 0; e < s.e; ++e) {
              o_i.at(bb, hh, r, e) *= rescale;
            }
            float blk_sum = 0.0f;
            for (std::int64_t c = 0; c < jl; ++c) {
              const float p = std::exp(c_blk.at(bb, hh, r, c) - new_max);
              blk_sum += p;
              for (std::int64_t e = 0; e < s.e; ++e) {
                o_i.at(bb, hh, r, e) += p * v_blk.at(bb, hh, c, e);
              }
            }
            run_sum.at(bb, hh, r, 0) = run_sum.at(bb, hh, r, 0) * rescale + blk_sum;
            run_max.at(bb, hh, r, 0) = new_max;
          }
    }
    // Final normalization.
    for (std::int64_t bb = 0; bb < rb.bl; ++bb)
      for (std::int64_t hh = 0; hh < rb.hl; ++hh)
        for (std::int64_t r = 0; r < rb.nl; ++r) {
          const float inv = 1.0f / run_sum.at(bb, hh, r, 0);
          for (std::int64_t e = 0; e < s.e; ++e) {
            o_i.at(bb, hh, r, e) *= inv;
          }
        }
    o.Place(o_i, rb.b0, rb.h0, rb.n0, 0);
  }
  return o;
}

void RegisterFuseMaxScheduler() {
  SchedulerRegistry::Instance().Register(
      SchedulerInfo{"FuseMax", /*paper_column=*/4, /*is_ablation=*/false,
                    "FuseMax (Nayak et al. 2024): einsum cascade with online softmax, single pass", Method::kFuseMax},
      [] { return std::make_unique<FuseMaxScheduler>(); });
}

}  // namespace mas
