// Scheduler interface: the six attention dataflows evaluated in the paper.
//
// Each scheduler owns two faithful renditions of its dataflow:
//  * Simulate(): builds the tiled task graph (DMA / MAC / VEC tasks with
//    dependencies reflecting the dataflow's issue order) and plays it on the
//    event-driven engine, returning cycles, energy and DRAM traffic.
//  * Execute(): the functional twin — computes O from real Q, K, V tensors
//    using the same tile decomposition, for the golden-data check (§5.1).
//
// Methods (paper §5.1 baselines + the contribution):
//  kLayerWise — unfused; C and P round-trip through DRAM.
//  kSoftPipe  — QK^T and softmax fused/pipelined; P round-trips through DRAM.
//  kFlat      — FLAT (Kao et al. 2023): fully fused, sequential tiled stages.
//  kTileFlow  — TileFlow-style fused pipeline with sub-tile tree, per-round
//               barriers (approximation per paper §5.1).
//  kFuseMax   — FuseMax (Nayak et al. 2024) scaled to the edge device:
//               einsum cascade with online softmax, single pass.
//  kMas       — MAS-Attention: semi-synchronous MAC/VEC stream processing
//               with multi-tiered tiling and proactive buffer overwrite.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dataflow/attention_shape.h"
#include "sim/cost_model.h"
#include "sim/engine.h"
#include "sim/energy_model.h"
#include "sim/hardware_config.h"
#include "tensor/tensor.h"

namespace mas {

enum class Method {
  kLayerWise = 0,
  kSoftPipe = 1,
  kFlat = 2,
  kTileFlow = 3,
  kFuseMax = 4,
  kMas = 5,
  // Ablation variant, not part of AllMethods()/the paper tables: the MAS
  // stream pipeline with the §4.3 proactive overwrite disabled. Under L1
  // pressure it cannot evict K/V to make room for the second pipeline strip,
  // so the affected rounds serialize (FLAT-order fallback).
  kMasNoOverwrite = 6,
};

// NOTE: the Method enum above survives as a *compat alias*. The source of
// truth for names, paper order, ablation flags, and factories is the
// string-keyed SchedulerRegistry (schedulers/registry.h); everything below
// resolves through it. New code should prefer the registry (and the
// mas::Planner facade in planner/planner.h) over these shims.

const char* MethodName(Method method);

// All methods in the paper's column order (excludes ablation variants such
// as kMasNoOverwrite). Equivalent to SchedulerRegistry::PaperMethods().
std::vector<Method> AllMethods();

// Parses a comma-separated method-name list; "all" expands to AllMethods()
// and the ablation name "MAS (no overwrite)" is accepted. Throws on unknown
// names (listing the registered set) or an empty selection. Shared by
// mas_run and the benches.
std::vector<Method> ParseMethodList(const std::string& text);

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual Method method() const = 0;
  std::string name() const { return MethodName(method()); }

  // Whether `tiling` is feasible for this dataflow on `hw` (on-chip capacity
  // and pipelining constraints). Search uses this to prune the space. For
  // MAS, tilings that need the proactive overwrite are still feasible; only
  // tilings violating the §5.6 pipelining bound are rejected.
  virtual bool Fits(const AttentionShape& shape, const TilingConfig& tiling,
                    const sim::HardwareConfig& hw) const = 0;

  // Simulates the schedule. Requires Fits(...) to hold. When `engine` is
  // non-null it is Reset() and reused (its arena capacity carries across
  // calls — the tiling search's hot path); otherwise a fresh engine is built.
  virtual sim::SimResult Simulate(const AttentionShape& shape, const TilingConfig& tiling,
                                  const sim::HardwareConfig& hw, const sim::EnergyModel& em,
                                  bool record_timeline = false,
                                  sim::Engine* engine = nullptr) const = 0;

  // Functional twin on fp32 tensors. Q,K,V: (B,H,N,E); returns O (B,H,N,E).
  virtual TensorF Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                          const TilingConfig& tiling) const = 0;
};

std::unique_ptr<Scheduler> MakeScheduler(Method method);

// All six schedulers in paper column order.
std::vector<std::unique_ptr<Scheduler>> AllSchedulers();

}  // namespace mas
