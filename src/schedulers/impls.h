// Concrete scheduler classes. Exposed for white-box tests; library users
// should go through MakeScheduler()/AllSchedulers() in scheduler.h.
#pragma once

#include "schedulers/scheduler.h"

namespace mas {

// Unfused baseline: C = QK^T fully materialized in DRAM, then softmax, then
// O = PV — three sequential phases with DRAM round trips for C and P.
class LayerWiseScheduler final : public Scheduler {
 public:
  Method method() const override { return Method::kLayerWise; }
  bool Fits(const AttentionShape&, const TilingConfig&,
            const sim::HardwareConfig&) const override;
  sim::SimResult Simulate(const AttentionShape&, const TilingConfig&,
                          const sim::HardwareConfig&, const sim::EnergyModel&,
                          bool record_timeline, sim::Engine* engine) const override;
  TensorF Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                  const TilingConfig&) const override;
};

// Pipelines QK^T with softmax (C stays on-chip); P round-trips through DRAM;
// O = PV runs as a separate unfused phase.
class SoftPipeScheduler final : public Scheduler {
 public:
  Method method() const override { return Method::kSoftPipe; }
  bool Fits(const AttentionShape&, const TilingConfig&,
            const sim::HardwareConfig&) const override;
  sim::SimResult Simulate(const AttentionShape&, const TilingConfig&,
                          const sim::HardwareConfig&, const sim::EnergyModel&,
                          bool record_timeline, sim::Engine* engine) const override;
  TensorF Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                  const TilingConfig&) const override;
};

// FLAT (Kao et al.): fully fused row-granularity dataflow; tiled stages run
// sequentially (MAC idles during softmax and vice versa), I/O overlaps.
class FlatScheduler final : public Scheduler {
 public:
  Method method() const override { return Method::kFlat; }
  bool Fits(const AttentionShape&, const TilingConfig&,
            const sim::HardwareConfig&) const override;
  sim::SimResult Simulate(const AttentionShape&, const TilingConfig&,
                          const sim::HardwareConfig&, const sim::EnergyModel&,
                          bool record_timeline, sim::Engine* engine) const override;
  TensorF Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                  const TilingConfig&) const override;
};

// TileFlow-style fused pipeline (approximated per paper §5.1): sub-tile
// pipelining overlaps MAC and VEC within a computation round, with a barrier
// between rounds and extra on-chip data movement from the finer tiling tree.
class TileFlowScheduler final : public Scheduler {
 public:
  Method method() const override { return Method::kTileFlow; }
  bool Fits(const AttentionShape&, const TilingConfig&,
            const sim::HardwareConfig&) const override;
  sim::SimResult Simulate(const AttentionShape&, const TilingConfig&,
                          const sim::HardwareConfig&, const sim::EnergyModel&,
                          bool record_timeline, sim::Engine* engine) const override;
  TensorF Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                  const TilingConfig&) const override;
};

// FuseMax scaled to the edge device: einsum cascade with online (two-pass
// streaming) softmax; MAC and VEC ping-pong at key/value-block granularity in
// a single fused pass, with per-block accumulator rescaling on the VEC unit.
class FuseMaxScheduler final : public Scheduler {
 public:
  Method method() const override { return Method::kFuseMax; }
  bool Fits(const AttentionShape&, const TilingConfig&,
            const sim::HardwareConfig&) const override;
  sim::SimResult Simulate(const AttentionShape&, const TilingConfig&,
                          const sim::HardwareConfig&, const sim::EnergyModel&,
                          bool record_timeline, sim::Engine* engine) const override;
  TensorF Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                  const TilingConfig&) const override;
};

// MAS-Attention (the paper's contribution): semi-synchronous stream
// processing per Alg. 1 — MAC issue order C1, C2, [PV_{i-2}, C_i]..., with
// softmax running concurrently on the VEC unit — plus the §4.3 proactive
// buffer overwrite (evict resident K/V to protect P_i, reload + redo after).
class MasScheduler final : public Scheduler {
 public:
  Method method() const override { return Method::kMas; }
  bool Fits(const AttentionShape&, const TilingConfig&,
            const sim::HardwareConfig&) const override;
  sim::SimResult Simulate(const AttentionShape&, const TilingConfig&,
                          const sim::HardwareConfig&, const sim::EnergyModel&,
                          bool record_timeline, sim::Engine* engine) const override;
  TensorF Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                  const TilingConfig&) const override;

  // Statistics from the most recent Simulate() L1 play (exposed for tests and
  // the Fig. 2/3 bench): number of overwrite activations and reloaded bytes
  // are already in SimResult; this reports which operand was chosen.
  struct OverwriteProfile {
    std::int64_t v_overwrites = 0;  // Fig. 2: V evicted while MAC in PV
    std::int64_t k_overwrites = 0;  // Fig. 3: K evicted while MAC in QK^T
  };
  static OverwriteProfile ProfileOverwrites(const AttentionShape&, const TilingConfig&,
                                            const sim::HardwareConfig&);
};

// Ablation: the MAS stream pipeline with the proactive overwrite disabled.
// When the second pipeline strip does not fit next to the protected softmax
// results, the scheduler cannot evict resident K/V — the pipelined rounds
// have to drain one strip at a time, i.e. the dataflow degenerates to FLAT's
// sequential round order for the pressured schedule (modeled whole-schedule:
// if a dry run of the MAS L1 play would trigger any overwrite, the schedule
// is emitted in FLAT order). Not part of AllMethods(); used by the
// mas_bench ablation_overwrite suite and the overwrite tests.
class MasNoOverwriteScheduler final : public Scheduler {
 public:
  Method method() const override { return Method::kMasNoOverwrite; }
  bool Fits(const AttentionShape&, const TilingConfig&,
            const sim::HardwareConfig&) const override;
  sim::SimResult Simulate(const AttentionShape&, const TilingConfig&,
                          const sim::HardwareConfig&, const sim::EnergyModel&,
                          bool record_timeline, sim::Engine* engine) const override;
  TensorF Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                  const TilingConfig&) const override;
};

// Registration hooks: each scheduler's translation unit registers its own
// SchedulerInfo + factory with SchedulerRegistry::Instance(). They are called
// once by SchedulerRegistry::EnsureBuiltins(), which also guarantees the
// archive members are linked (a pure static-initializer scheme could be
// dropped by the archiver when nothing else references the object file).
void RegisterLayerWiseScheduler();
void RegisterSoftPipeScheduler();
void RegisterFlatScheduler();
void RegisterTileFlowScheduler();
void RegisterFuseMaxScheduler();
void RegisterMasScheduler();
void RegisterMasNoOverwriteScheduler();

}  // namespace mas
