// MAS-Attention without the §4.3 proactive buffer overwrite (ablation).
//
// The stream pipeline needs two C/P strips on-chip (the one being softmaxed
// plus the one the MAC unit is filling). The full MAS design frees space for
// the second strip by evicting resident K/V — a reloadable operand — and
// halting/redoing the interrupted MatMul tile. With that mechanism removed,
// a schedule whose working set would have needed the overwrite can only keep
// one strip live at a time: every pressured round must fully drain
// (C_i -> S_i -> PV_i) before the next begins, which is exactly FLAT's
// sequential round order.
//
// The fallback is modeled whole-schedule: a dry run of the MAS L1 play
// decides whether any overwrite would fire; if so the schedule is emitted in
// FLAT order (sequential stages, no MAC/VEC overlap), otherwise the MAS
// pipeline is used unchanged. This slightly overstates the loss when only a
// few rounds are pressured, which makes the ablation's measured benefit of
// the overwrite an upper bound — stated as such in DESIGN.md.
#include "schedulers/common.h"
#include "schedulers/impls.h"
#include "schedulers/registry.h"

namespace mas {

bool MasNoOverwriteScheduler::Fits(const AttentionShape& shape, const TilingConfig& tiling,
                                   const sim::HardwareConfig& hw) const {
  // Same capacity envelope as MAS: the fallback path never needs *more* L1
  // than the pipeline (it holds strictly fewer live strips).
  return MasScheduler().Fits(shape, tiling, hw);
}

sim::SimResult MasNoOverwriteScheduler::Simulate(const AttentionShape& shape,
                                                 const TilingConfig& tiling,
                                                 const sim::HardwareConfig& hw,
                                                 const sim::EnergyModel& em,
                                                 bool record_timeline,
                                                 sim::Engine* engine) const {
  const auto profile = MasScheduler::ProfileOverwrites(shape, tiling, hw);
  if (profile.v_overwrites + profile.k_overwrites == 0) {
    // No pressure: identical to the full MAS pipeline.
    return MasScheduler().Simulate(shape, tiling, hw, em, record_timeline, engine);
  }
  // Pressure without an escape hatch: sequential rounds (FLAT dataflow).
  sim::SimResult result =
      FlatScheduler().Simulate(shape, tiling, hw, em, record_timeline, engine);
  result.overwrite_events = 0;
  result.reload_bytes = 0;
  return result;
}

TensorF MasNoOverwriteScheduler::Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                                         const TilingConfig& tiling) const {
  // Numerically both the pipelined and the drained order compute the same
  // fused row-block decomposition.
  return detail::ExecuteFusedRowBlocks(q, k, v, tiling);
}

void RegisterMasNoOverwriteScheduler() {
  SchedulerRegistry::Instance().Register(
      SchedulerInfo{"MAS (no overwrite)", /*paper_column=*/-1, /*is_ablation=*/true,
                    "ablation: the MAS stream pipeline with the proactive overwrite disabled", Method::kMasNoOverwrite},
      [] { return std::make_unique<MasNoOverwriteScheduler>(); });
}

}  // namespace mas
