// FLAT (Kao et al. 2023), the paper's primary baseline.
//
// Fully fused row-granularity dataflow: per row block i, C_i = Q_i K^T is
// computed on-chip, softmaxed in place, multiplied by V and only O_i is
// written to DRAM — no intermediate round trips. The tiled stages execute
// *sequentially* (the MAC unit idles while the VEC unit softmaxes and vice
// versa); DMA transfers overlap with compute via double buffering. K and V
// stay resident on-chip for a whole (batch, head) group when they fit,
// otherwise they are streamed per sub-block.
#include <algorithm>

#include "common/math_util.h"
#include "schedulers/builder.h"
#include "schedulers/common.h"
#include "schedulers/impls.h"
#include "schedulers/registry.h"

namespace mas {

using detail::KvBlock;
using detail::RowBlock;
using detail::ScheduleBuilder;
using sim::TaskId;

namespace {

// Working set excluding K/V: two Q blocks (double-buffered), one C/P strip
// (softmax is in place: P_i reuses C_i's buffer — this is why FLAT handles
// 2x the sequence length MAS does, paper §5.6), one O block.
std::int64_t WorkingBytes(const detail::BlockBytes& bytes) {
  return 2 * bytes.q + bytes.c + 2 * bytes.o;
}

bool CanResideKv(const detail::BlockBytes& bytes, std::int64_t l1_budget) {
  return WorkingBytes(bytes) + 2 * bytes.kv_group <= l1_budget;
}

}  // namespace

bool FlatScheduler::Fits(const AttentionShape& shape, const TilingConfig& tiling,
                         const sim::HardwareConfig& hw) const {
  tiling.Validate(shape);
  const detail::BlockBytes bytes = detail::ComputeBlockBytes(shape, tiling, hw);
  // Streaming fallback footprint: double-buffered K and V sub-blocks,
  // within this core's share of the L1 (every active core holds its own
  // working set in the shared scratchpad).
  return WorkingBytes(bytes) + 4 * bytes.kv_tile <=
         detail::PerCoreL1Budget(shape, tiling, hw);
}

sim::SimResult FlatScheduler::Simulate(const AttentionShape& shape, const TilingConfig& tiling,
                                       const sim::HardwareConfig& hw,
                                       const sim::EnergyModel& em,
                                       bool record_timeline,
                                       sim::Engine* engine) const {
  MAS_CHECK(Fits(shape, tiling, hw)) << "tiling does not fit: " << tiling.ToString();
  ScheduleBuilder b(hw, em, record_timeline, engine);
  const std::int64_t eb = hw.element_bytes;
  const detail::BlockBytes bytes = detail::ComputeBlockBytes(shape, tiling, hw);
  const bool resident = CanResideKv(bytes, detail::PerCoreL1Budget(shape, tiling, hw));
  const auto blocks = detail::EnumerateRowBlocks(shape, tiling);
  const auto shards = detail::ShardAcrossCores(blocks, hw);
  const auto kvs = detail::EnumerateKvBlocks(shape, tiling);

  std::vector<TaskId> c_macs;  // reused across row blocks (capacity persists)
  for (int core = 0; core < static_cast<int>(shards.size()); ++core) {
    TaskId k_group = sim::kNoTask;
    TaskId v_group = sim::kNoTask;
    for (const RowBlock& rb : shards[static_cast<std::size_t>(core)]) {
      const std::int64_t groups = rb.groups();
      if (resident && rb.first_in_group()) {
        // Establish K/V residency for the new (batch, head) group.
        k_group = b.Dma("load K group", core, groups * shape.kv() * shape.embed * eb, true);
        v_group = b.Dma("load V group", core, groups * shape.kv() * shape.embed * eb, true);
      }
      const TaskId q_load = b.Dma("load Q_i", core, groups * rb.rows() * shape.embed * eb, true);

      // Stage 1: C_i = Q_i K^T on the MAC unit.
      c_macs.clear();
      for (const KvBlock& kv : kvs) {
        detail::DepList deps = {q_load};
        if (resident) {
          deps.push_back(k_group);
        } else {
          deps.push_back(b.Dma("load K_ij", core, groups * kv.nl * shape.embed * eb, true));
        }
        c_macs.push_back(
            b.Mac("C_ij = Q_i K_ij^T", core, groups, rb.rows(), shape.embed, kv.nl, deps));
      }

      // Stage 2: P_i = softmax(C_i) in place on the VEC unit. The following
      // PV MAC tasks depend on it, serializing the stages (FLAT dataflow).
      const TaskId vec =
          b.Vec("P_i = softmax(C_i)", core, groups, rb.rows(), shape.kv(), c_macs);

      // Stage 3: O_i = P_i V accumulated on the MAC unit.
      TaskId last_mac = sim::kNoTask;
      for (const KvBlock& kv : kvs) {
        detail::DepList deps = {vec};
        if (resident) {
          deps.push_back(v_group);
        } else {
          deps.push_back(b.Dma("load V_ij", core, groups * kv.nl * shape.embed * eb, true));
        }
        if (last_mac != sim::kNoTask) deps.push_back(last_mac);
        last_mac = b.Mac("O_i += P_ij V_ij", core, groups, rb.rows(), kv.nl, shape.embed,
                         deps);
      }
      b.Dma("store O_i", core, groups * rb.rows() * shape.embed * eb, false, detail::DepList{last_mac});
    }
  }

  const std::int64_t peak =
      WorkingBytes(bytes) + (resident ? 2 * bytes.kv_group : 4 * bytes.kv_tile);
  return b.Finish(peak);
}

TensorF FlatScheduler::Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                               const TilingConfig& tiling) const {
  return detail::ExecuteFusedRowBlocks(q, k, v, tiling);
}

void RegisterFlatScheduler() {
  SchedulerRegistry::Instance().Register(
      SchedulerInfo{"FLAT", /*paper_column=*/2, /*is_ablation=*/false,
                    "FLAT (Kao et al. 2023): fully fused, sequential tiled stages", Method::kFlat},
      [] { return std::make_unique<FlatScheduler>(); });
}

}  // namespace mas
