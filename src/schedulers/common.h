// Shared machinery for the scheduler implementations: row-block enumeration,
// core sharding, L1 footprint bookkeeping, and the fused functional twin.
#pragma once

#include <cstdint>
#include <vector>

#include "dataflow/attention_shape.h"
#include "sim/cost_model.h"
#include "sim/engine.h"
#include "sim/hardware_config.h"
#include "tensor/tensor.h"

namespace mas::detail {

// One row-block iteration of Alg. 1: a (groups = bl*hl) x rows x E chunk of Q
// (and the matching strip of C, P, O).
struct RowBlock {
  std::int64_t b0 = 0, bl = 1;  // batch origin/extent
  std::int64_t h0 = 0, hl = 1;  // head origin/extent
  std::int64_t n0 = 0, nl = 1;  // query-row origin/extent
  std::int64_t groups() const { return bl * hl; }
  std::int64_t rows() const { return nl; }
  // True when this block starts a new (batch, head) group (n0 == 0), i.e. K/V
  // for the group must be (re)established on-chip.
  bool first_in_group() const { return n0 == 0; }
};

// Enumerates Alg. 1 line 2: T_r row blocks in (batch, head, row) order.
std::vector<RowBlock> EnumerateRowBlocks(const AttentionShape& shape,
                                         const TilingConfig& tiling);

// Splits row blocks across cores proportionally to MAC throughput, keeping
// each (batch, head) group's blocks on one core (K/V residency is per group).
// Returns one block list per core.
std::vector<std::vector<RowBlock>> ShardAcrossCores(const std::vector<RowBlock>& blocks,
                                                    const sim::HardwareConfig& hw);

// One key/value sub-block of Alg. 2/4 line 3.
struct KvBlock {
  std::int64_t n0 = 0, nl = 1;
};
std::vector<KvBlock> EnumerateKvBlocks(const AttentionShape& shape,
                                       const TilingConfig& tiling);

// Number of cores that receive work under `tiling`. Closed form of
// "non-empty shards after ShardAcrossCores(EnumerateRowBlocks(...))": the
// greedy group assignment always prefers an idle core (score 0) over any
// loaded one, and every (batch, head) group produces at least one row block,
// so exactly min(#cores, #groups) cores are active. Kept O(1) because the
// tiling search calls it for every lattice cell via Fits().
std::int64_t ActiveCoreCount(const AttentionShape& shape, const TilingConfig& tiling,
                             const sim::HardwareConfig& hw);

// Equal split of the shared L1 across the cores that actually receive work
// under `tiling` (the paper's L1 is a single shared 5 MB scratchpad; every
// active core holds its own working set in it simultaneously).
std::int64_t PerCoreL1Budget(const AttentionShape& shape, const TilingConfig& tiling,
                             const sim::HardwareConfig& hw);

// Per-row-block on-chip buffer sizes in bytes.
struct BlockBytes {
  std::int64_t q = 0;       // Q_i
  std::int64_t c = 0;       // C_i (= P_i)
  std::int64_t o = 0;       // O_i
  std::int64_t kv_group = 0;  // full K (or V) for the (b,h) group
  std::int64_t kv_tile = 0;   // one K/V sub-block
};
BlockBytes ComputeBlockBytes(const AttentionShape& shape, const TilingConfig& tiling,
                             const sim::HardwareConfig& hw);

// Functional twin shared by every fused scheduler (FLAT / TileFlow / MAS):
// per row block compute C_i (Alg. 2), P_i (Alg. 3), O_i (Alg. 4). All three
// produce numerically identical O; only the hardware schedule differs.
TensorF ExecuteFusedRowBlocks(const TensorF& q, const TensorF& k, const TensorF& v,
                              const TilingConfig& tiling);

}  // namespace mas::detail
