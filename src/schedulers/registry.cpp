#include "schedulers/registry.h"

#include <algorithm>

#include "common/status.h"
#include "schedulers/impls.h"

namespace mas {

SchedulerRegistry& SchedulerRegistry::Instance() {
  static SchedulerRegistry* registry = new SchedulerRegistry();  // never destroyed
  return *registry;
}

void SchedulerRegistry::EnsureBuiltins() const {
  std::call_once(builtins_once_, [] {
    // Each hook lives in its scheduler's translation unit and registers that
    // dataflow; calling them here (rather than relying on static
    // initializers) guarantees the archive members are linked and the
    // catalog is complete before the first lookup.
    RegisterLayerWiseScheduler();
    RegisterSoftPipeScheduler();
    RegisterFlatScheduler();
    RegisterTileFlowScheduler();
    RegisterFuseMaxScheduler();
    RegisterMasScheduler();
    RegisterMasNoOverwriteScheduler();
  });
}

void SchedulerRegistry::Register(SchedulerInfo info, Factory factory) {
  MAS_CHECK(!info.name.empty()) << "scheduler registration needs a name";
  MAS_CHECK(factory != nullptr) << "scheduler '" << info.name << "' registered without factory";
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    MAS_CHECK(e.info.name != info.name)
        << "scheduler name '" << info.name << "' registered twice";
    MAS_CHECK(e.info.method != info.method)
        << "scheduler compat id " << static_cast<int>(info.method)
        << " registered twice ('" << e.info.name << "' and '" << info.name << "')";
  }
  entries_.push_back(Entry{std::move(info), std::move(factory)});
}

const SchedulerRegistry::Entry* SchedulerRegistry::FindEntryLocked(
    const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.info.name == name) return &e;
  }
  return nullptr;
}

const SchedulerRegistry::Entry* SchedulerRegistry::FindEntryLocked(Method method) const {
  for (const Entry& e : entries_) {
    if (e.info.method == method) return &e;
  }
  return nullptr;
}

std::vector<const SchedulerRegistry::Entry*> SchedulerRegistry::OrderedLocked(
    bool include_ablations) const {
  std::vector<const Entry*> ordered;
  for (const Entry& e : entries_) {
    if (e.info.is_ablation && !include_ablations) continue;
    ordered.push_back(&e);
  }
  // Paper columns first (ascending), then ablations / unnumbered entries in
  // registration order.
  std::stable_sort(ordered.begin(), ordered.end(), [](const Entry* a, const Entry* b) {
    const bool a_col = a->info.paper_column >= 0 && !a->info.is_ablation;
    const bool b_col = b->info.paper_column >= 0 && !b->info.is_ablation;
    if (a_col != b_col) return a_col;
    if (a_col && b_col) return a->info.paper_column < b->info.paper_column;
    return false;
  });
  return ordered;
}

const SchedulerInfo* SchedulerRegistry::Find(const std::string& name) const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = FindEntryLocked(name);
  return e == nullptr ? nullptr : &e->info;
}

const SchedulerInfo* SchedulerRegistry::FindByMethod(Method method) const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = FindEntryLocked(method);
  return e == nullptr ? nullptr : &e->info;
}

const SchedulerInfo& SchedulerRegistry::Info(Method method) const {
  const SchedulerInfo* info = FindByMethod(method);
  MAS_CHECK(info != nullptr) << "method id " << static_cast<int>(method)
                             << " is not registered";
  return *info;
}

std::unique_ptr<Scheduler> SchedulerRegistry::Create(const std::string& name) const {
  EnsureBuiltins();
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Entry* e = FindEntryLocked(name);
    if (e != nullptr) factory = e->factory;
  }
  if (factory == nullptr) {
    MAS_FAIL() << "unknown method '" << name << "'; options: " << AvailableNames();
  }
  return factory();
}

std::unique_ptr<Scheduler> SchedulerRegistry::Create(Method method) const {
  EnsureBuiltins();
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Entry* e = FindEntryLocked(method);
    if (e != nullptr) factory = e->factory;
  }
  MAS_CHECK(factory != nullptr) << "method id " << static_cast<int>(method)
                                << " is not registered";
  return factory();
}

Method SchedulerRegistry::Resolve(const std::string& name) const {
  const SchedulerInfo* info = Find(name);
  if (info == nullptr) {
    MAS_FAIL() << "unknown method '" << name << "'; options: all, " << AvailableNames();
  }
  return info->method;
}

std::vector<SchedulerInfo> SchedulerRegistry::List(bool include_ablations) const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SchedulerInfo> out;
  for (const Entry* e : OrderedLocked(include_ablations)) out.push_back(e->info);
  return out;
}

std::vector<Method> SchedulerRegistry::PaperMethods() const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Method> out;
  for (const Entry* e : OrderedLocked(/*include_ablations=*/false)) {
    out.push_back(e->info.method);
  }
  return out;
}

std::string SchedulerRegistry::AvailableNames(bool include_ablations) const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  std::string names;
  for (const Entry* e : OrderedLocked(include_ablations)) {
    if (!names.empty()) names += ", ";
    names += "'" + e->info.name + "'";
  }
  return names;
}

}  // namespace mas
