#include "schedulers/scheduler.h"

#include <sstream>

#include "common/status.h"
#include "schedulers/registry.h"

namespace mas {

// The legacy enum surface is a thin compat veneer over SchedulerRegistry:
// names, paper order, the ablation flag, and the factories all live in the
// per-scheduler registrations.

const char* MethodName(Method method) {
  const SchedulerInfo* info = SchedulerRegistry::Instance().FindByMethod(method);
  return info == nullptr ? "?" : info->name.c_str();
}

std::vector<Method> AllMethods() { return SchedulerRegistry::Instance().PaperMethods(); }

std::vector<Method> ParseMethodList(const std::string& text) {
  SchedulerRegistry& registry = SchedulerRegistry::Instance();
  std::vector<Method> methods;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item == "all") {
      for (Method m : registry.PaperMethods()) methods.push_back(m);
      continue;
    }
    methods.push_back(registry.Resolve(item));  // throws listing the options
  }
  MAS_CHECK(!methods.empty()) << "method list selected no methods";
  return methods;
}

std::unique_ptr<Scheduler> MakeScheduler(Method method) {
  return SchedulerRegistry::Instance().Create(method);
}

std::vector<std::unique_ptr<Scheduler>> AllSchedulers() {
  SchedulerRegistry& registry = SchedulerRegistry::Instance();
  std::vector<std::unique_ptr<Scheduler>> out;
  for (Method m : registry.PaperMethods()) out.push_back(registry.Create(m));
  return out;
}

}  // namespace mas
