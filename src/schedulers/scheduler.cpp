#include "schedulers/scheduler.h"

#include <sstream>

#include "common/status.h"
#include "schedulers/impls.h"

namespace mas {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kLayerWise: return "Layer-Wise";
    case Method::kSoftPipe: return "Soft-Pipe";
    case Method::kFlat: return "FLAT";
    case Method::kTileFlow: return "TileFlow";
    case Method::kFuseMax: return "FuseMax";
    case Method::kMas: return "MAS-Attention";
    case Method::kMasNoOverwrite: return "MAS (no overwrite)";
  }
  return "?";
}

std::vector<Method> AllMethods() {
  return {Method::kLayerWise, Method::kSoftPipe, Method::kFlat,
          Method::kTileFlow,  Method::kFuseMax,  Method::kMas};
}

std::vector<Method> ParseMethodList(const std::string& text) {
  std::vector<Method> methods;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item == "all") {
      for (Method m : AllMethods()) methods.push_back(m);
      continue;
    }
    bool found = false;
    for (Method m : AllMethods()) {
      if (item == MethodName(m)) {
        methods.push_back(m);
        found = true;
        break;
      }
    }
    if (!found && item == MethodName(Method::kMasNoOverwrite)) {
      methods.push_back(Method::kMasNoOverwrite);
      found = true;
    }
    if (!found) {
      std::string options;
      for (Method m : AllMethods()) options += std::string(" '") + MethodName(m) + "'";
      MAS_FAIL() << "unknown method '" << item << "'; options: all" << options;
    }
  }
  MAS_CHECK(!methods.empty()) << "method list selected no methods";
  return methods;
}

std::unique_ptr<Scheduler> MakeScheduler(Method method) {
  switch (method) {
    case Method::kLayerWise: return std::make_unique<LayerWiseScheduler>();
    case Method::kSoftPipe: return std::make_unique<SoftPipeScheduler>();
    case Method::kFlat: return std::make_unique<FlatScheduler>();
    case Method::kTileFlow: return std::make_unique<TileFlowScheduler>();
    case Method::kFuseMax: return std::make_unique<FuseMaxScheduler>();
    case Method::kMas: return std::make_unique<MasScheduler>();
    case Method::kMasNoOverwrite: return std::make_unique<MasNoOverwriteScheduler>();
  }
  MAS_FAIL() << "unknown method";
}

std::vector<std::unique_ptr<Scheduler>> AllSchedulers() {
  std::vector<std::unique_ptr<Scheduler>> out;
  for (Method m : AllMethods()) out.push_back(MakeScheduler(m));
  return out;
}

}  // namespace mas
