// SchedulerRegistry: the string-keyed catalog behind the public scheduling
// API.
//
// Every dataflow registers itself (name, paper-column index, ablation flag,
// one-line summary, compat enum id) together with a factory; lookups are by
// canonical name or by the legacy `Method` enum, which survives purely as a
// compat alias resolved through the registry. The switch-and-enum plumbing
// that used to live in scheduler.cpp (MakeScheduler / AllMethods /
// ParseMethodList) now delegates here, so adding a dataflow is one
// registration in its own translation unit — no central switch to extend.
//
// Thread-safe: registration and lookups may run concurrently (the sweep
// runner creates per-worker schedulers from a thread pool). Descriptor
// references returned by Info()/FindByMethod() stay valid for the process
// lifetime (entries are never erased and live in a stable deque).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "schedulers/scheduler.h"

namespace mas {

// Descriptor of one registered scheduler.
struct SchedulerInfo {
  std::string name;       // canonical paper name, e.g. "FLAT"
  int paper_column = -1;  // 0-based column in the paper's tables; -1 = none
  bool is_ablation = false;  // excluded from AllMethods()/"all" expansions
  std::string summary;       // one-line dataflow description
  Method method = Method::kMas;  // compat enum id
};

class SchedulerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Scheduler>()>;

  static SchedulerRegistry& Instance();

  // Registers a scheduler. Throws when the name or compat enum id is already
  // taken.
  void Register(SchedulerInfo info, Factory factory);

  // Descriptor lookup. Find*() return nullptr when absent; Info() throws for
  // an unregistered enum id.
  const SchedulerInfo* Find(const std::string& name) const;
  const SchedulerInfo* FindByMethod(Method method) const;
  const SchedulerInfo& Info(Method method) const;

  // Factory dispatch. Unknown names throw an Error listing the available set.
  std::unique_ptr<Scheduler> Create(const std::string& name) const;
  std::unique_ptr<Scheduler> Create(Method method) const;

  // Name -> compat enum id; throws (listing the available set) when unknown.
  Method Resolve(const std::string& name) const;

  // Descriptors in paper-column order; ablations follow in registration
  // order when included.
  std::vector<SchedulerInfo> List(bool include_ablations = true) const;

  // Compat enum ids of the non-ablation schedulers in paper-column order
  // (the body of the legacy AllMethods()).
  std::vector<Method> PaperMethods() const;

  // "'Layer-Wise', 'Soft-Pipe', ..." — for error messages and --list-methods.
  std::string AvailableNames(bool include_ablations = true) const;

 private:
  struct Entry {
    SchedulerInfo info;
    Factory factory;
  };

  SchedulerRegistry() = default;
  // Runs the built-in registration hooks exactly once before any lookup, so
  // the catalog is complete regardless of static-initialization order.
  void EnsureBuiltins() const;
  const Entry* FindEntryLocked(const std::string& name) const;
  const Entry* FindEntryLocked(Method method) const;
  std::vector<const Entry*> OrderedLocked(bool include_ablations) const;

  mutable std::once_flag builtins_once_;
  mutable std::mutex mu_;
  std::deque<Entry> entries_;  // deque: descriptor references stay stable
};

}  // namespace mas
