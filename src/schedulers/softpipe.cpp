// Soft-Pipe baseline (paper §5.1): pipelines the first MatMul with softmax.
//
// Phase A fuses C_i = Q_i K^T with P_i = softmax(C_i): C stays on-chip and
// while the VEC unit softmaxes C_i, the MAC unit may compute C_{i+1}. The
// resulting P rows are written back to DRAM. Phase B then computes O = PV
// sequentially (unfused), reloading P.
#include <algorithm>

#include "common/math_util.h"
#include "kernels/attention_kernels.h"
#include "schedulers/builder.h"
#include "schedulers/common.h"
#include "schedulers/impls.h"
#include "schedulers/registry.h"

namespace mas {

using detail::KvBlock;
using detail::RowBlock;
using detail::ScheduleBuilder;
using sim::TaskId;

namespace {

std::int64_t FootprintA(const AttentionShape& shape, const TilingConfig& tiling,
                        const sim::HardwareConfig& hw) {
  const detail::BlockBytes bytes = detail::ComputeBlockBytes(shape, tiling, hw);
  // Two C strips in flight (softmax of i overlapping MatMul of i+1), two Q
  // blocks, streamed K tiles (double-buffered).
  return 2 * bytes.c + 2 * bytes.q + 2 * bytes.kv_tile;
}

std::int64_t FootprintB(const AttentionShape& shape, const TilingConfig& tiling,
                        const sim::HardwareConfig& hw) {
  const detail::BlockBytes bytes = detail::ComputeBlockBytes(shape, tiling, hw);
  return bytes.c + 2 * bytes.kv_tile + 2 * bytes.o;
}

}  // namespace

bool SoftPipeScheduler::Fits(const AttentionShape& shape, const TilingConfig& tiling,
                             const sim::HardwareConfig& hw) const {
  tiling.Validate(shape);
  return std::max(FootprintA(shape, tiling, hw), FootprintB(shape, tiling, hw)) <=
         detail::PerCoreL1Budget(shape, tiling, hw);
}

sim::SimResult SoftPipeScheduler::Simulate(const AttentionShape& shape,
                                           const TilingConfig& tiling,
                                           const sim::HardwareConfig& hw,
                                           const sim::EnergyModel& em,
                                           bool record_timeline,
                                           sim::Engine* engine) const {
  MAS_CHECK(Fits(shape, tiling, hw)) << "tiling does not fit: " << tiling.ToString();
  ScheduleBuilder b(hw, em, record_timeline, engine);
  const std::int64_t eb = hw.element_bytes;
  const auto blocks = detail::EnumerateRowBlocks(shape, tiling);
  const auto shards = detail::ShardAcrossCores(blocks, hw);
  const auto kvs = detail::EnumerateKvBlocks(shape, tiling);

  // --- Phase A: fused, pipelined C_i -> P_i; P stored to DRAM. ---
  // No cross-iteration dependencies between MAC and VEC tasks: the in-order
  // queues let C_{i+1} (MAC) run while P_i (VEC) is computed — the pipeline.
  std::vector<TaskId> phase_a_ends;
  std::vector<TaskId> c_macs;  // reused across row blocks
  for (int core = 0; core < static_cast<int>(shards.size()); ++core) {
    for (const RowBlock& rb : shards[static_cast<std::size_t>(core)]) {
      const std::int64_t groups = rb.groups();
      const TaskId q_load = b.Dma("load Q_i", core, groups * rb.rows() * shape.embed * eb, true);
      c_macs.clear();
      for (const KvBlock& kv : kvs) {
        const TaskId k_load = b.Dma("load K_ij", core, groups * kv.nl * shape.embed * eb, true);
        c_macs.push_back(b.Mac("C_ij = Q_i K_ij^T", core, groups, rb.rows(), shape.embed,
                               kv.nl, detail::DepList{q_load, k_load}));
      }
      const TaskId vec =
          b.Vec("P_i = softmax(C_i)", core, groups, rb.rows(), shape.kv(), c_macs);
      phase_a_ends.push_back(
          b.Dma("store P_i", core, groups * rb.rows() * shape.kv() * eb, false, detail::DepList{vec}));
    }
  }

  // --- Phase B: unfused O = PV after all of P is materialized in DRAM. ---
  const TaskId barrier = b.Dma("barrier P complete", 0, 0, true, phase_a_ends);
  for (int core = 0; core < static_cast<int>(shards.size()); ++core) {
    for (const RowBlock& rb : shards[static_cast<std::size_t>(core)]) {
      const std::int64_t groups = rb.groups();
      const TaskId p_load =
          b.Dma("load P_i", core, groups * rb.rows() * shape.kv() * eb, true, detail::DepList{barrier});
      TaskId last_mac = sim::kNoTask;
      for (const KvBlock& kv : kvs) {
        const TaskId v_load = b.Dma("load V_ij", core, groups * kv.nl * shape.embed * eb, true);
        detail::DepList deps = {p_load, v_load};
        if (last_mac != sim::kNoTask) deps.push_back(last_mac);
        last_mac = b.Mac("O_i += P_ij V_ij", core, groups, rb.rows(), kv.nl, shape.embed,
                         deps);
      }
      b.Dma("store O_i", core, groups * rb.rows() * shape.embed * eb, false, detail::DepList{last_mac});
    }
  }

  return b.Finish(std::max(FootprintA(shape, tiling, hw), FootprintB(shape, tiling, hw)));
}

TensorF SoftPipeScheduler::Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                                   const TilingConfig& tiling) const {
  const Shape4& s = q.shape();
  const std::int64_t nkv_len = k.shape().n;
  AttentionShape shape{"softpipe", s.b, s.h, s.n, s.e, nkv_len == s.n ? 0 : nkv_len};
  // Phase A: per row block, fused C_i -> P_i; P kept (models the DRAM copy).
  TensorF p(Shape4{s.b, s.h, s.n, nkv_len});
  for (const RowBlock& rb : detail::EnumerateRowBlocks(shape, tiling)) {
    const TensorF q_i = q.Slice(rb.b0, rb.bl, rb.h0, rb.hl, rb.n0, rb.nl, 0, s.e);
    const TensorF k_i = k.Slice(rb.b0, rb.bl, rb.h0, rb.hl, 0, nkv_len, 0, s.e);
    const TensorF c_i = TiledQKT(q_i, k_i, tiling.nkv);
    p.Place(TiledSoftmax(c_i), rb.b0, rb.h0, rb.n0, 0);
  }
  // Phase B: O = PV per row block.
  TensorF o(s);
  for (const RowBlock& rb : detail::EnumerateRowBlocks(shape, tiling)) {
    const TensorF p_i = p.Slice(rb.b0, rb.bl, rb.h0, rb.hl, rb.n0, rb.nl, 0, nkv_len);
    const TensorF v_i = v.Slice(rb.b0, rb.bl, rb.h0, rb.hl, 0, nkv_len, 0, s.e);
    o.Place(TiledPV(p_i, v_i, tiling.nkv), rb.b0, rb.h0, rb.n0, 0);
  }
  return o;
}

void RegisterSoftPipeScheduler() {
  SchedulerRegistry::Instance().Register(
      SchedulerInfo{"Soft-Pipe", /*paper_column=*/1, /*is_ablation=*/false,
                    "QK^T and softmax fused/pipelined; P round-trips through DRAM", Method::kSoftPipe},
      [] { return std::make_unique<SoftPipeScheduler>(); });
}

}  // namespace mas
