// MAS-Attention (paper §4): semi-synchronous MAC/VEC stream processing.
//
// The MAC issue order follows Algorithm 1 exactly:
//
//     C_1 ; [C_2 || S_1] ; { [PV_{i-2} || S_{i-1}] ; C_i }_{i=3..Tr} ;
//     [PV_{Tr-1} || S_Tr] ; PV_Tr
//
// where S_i = softmax(C_i) runs on the VEC unit concurrently with the MAC
// unit's PV / QK^T tiles of neighbouring iterations. Within a round, data
// dependencies are honored (S_i needs C_i; PV_i needs S_i; C_i waits for
// PV_{i-2} per Alg. 1 line 16 — enforced by the in-order MAC queue).
// Softmax is computed in place (P_i reuses C_i's buffer), so the on-chip
// working set holds at most two C/P strips — the §5.6 pipelining bound that
// halves MAS's maximum sequence length relative to FLAT.
//
// Proactive buffer overwrite (§4.3, Figs. 2-3): K/V are kept resident
// per (batch, head) group when possible. When the strip for C_i cannot be
// allocated while P_{i-1} must be protected (softmax results exist only
// on-chip and are irrecoverable), the scheduler overwrites a *reloadable*
// operand instead: the V matrix if the MAC unit is amid P_{i-2}V (Fig. 2),
// else the K matrix (Fig. 3). The halted MatMul resumes after the softmax
// completes: the overwritten matrix is reloaded from DRAM (extra reads,
// §5.4) and the interrupted tile is recomputed.
#include <algorithm>
#include <deque>
#include <string>

#include "common/math_util.h"
#include "schedulers/builder.h"
#include "schedulers/common.h"
#include "schedulers/impls.h"
#include "schedulers/registry.h"
#include "sim/l1_tracker.h"

namespace mas {

using detail::KvBlock;
using detail::RowBlock;
using detail::ScheduleBuilder;
using sim::TaskId;

namespace {

// Static staging excluding K/V and the C/P strips: double-buffered Q and O.
std::int64_t StagingBytes(const detail::BlockBytes& bytes) {
  return 2 * bytes.q + 2 * bytes.o;
}

// §5.6 pipelining bound: two C/P strips plus staging plus streamed K/V
// sub-blocks must fit; K/V group residency is optional (overwritable).
std::int64_t MinFootprint(const detail::BlockBytes& bytes) {
  return StagingBytes(bytes) + 2 * bytes.c + 4 * bytes.kv_tile;
}

// Statistics shared between Simulate() and ProfileOverwrites().
struct PlayStats {
  std::int64_t peak_l1 = 0;
  std::int64_t overwrites = 0;
  std::int64_t v_overwrites = 0;
  std::int64_t k_overwrites = 0;
  std::int64_t reload_bytes = 0;
};

// Per-core emission of the Alg. 1 pipeline. When `builder` is null the
// pipeline is only *played* against the L1 tracker (used by
// ProfileOverwrites and Fits-adjacent analysis) without emitting tasks.
class MasPipeline {
 public:
  MasPipeline(ScheduleBuilder* builder, const AttentionShape& shape,
              const TilingConfig& tiling, const sim::HardwareConfig& hw, int core,
              std::int64_t l1_budget, const std::vector<RowBlock>& blocks)
      : b_(builder),
        shape_(shape),
        tiling_(tiling),
        hw_(hw),
        core_(core),
        tracker_(l1_budget),
        blocks_(blocks),
        kvs_(detail::EnumerateKvBlocks(shape, tiling)),
        bytes_(detail::ComputeBlockBytes(shape, tiling, hw)) {
    tracker_.Alloc("staging", StagingBytes(bytes_));
    // Residency is attempted when K+V for a group fit next to one strip
    // (the optimistic, FLAT-like bound); the second pipeline strip is what
    // the proactive overwrite later fights for.
    try_resident_ = StagingBytes(bytes_) + bytes_.c + 2 * bytes_.kv_group <= l1_budget;
  }

  PlayStats Run() {
    const std::int64_t tr = static_cast<std::int64_t>(blocks_.size());
    if (tr == 0) return Collect();
    EmitC(0);
    if (tr >= 2) {
      EmitC(1);
      EmitVec(0);
      for (std::int64_t i = 2; i < tr; ++i) {
        EmitPV(i - 2);
        EmitVec(i - 1);
        EmitC(i);
      }
      EmitPV(tr - 2);
      EmitVec(tr - 1);
      EmitPV(tr - 1);
    } else {
      EmitVec(0);
      EmitPV(0);
    }
    return Collect();
  }

 private:
  struct GroupState {
    std::int64_t key = -1;       // (b0 << 32) | h0 of the group
    TaskId k_dep = sim::kNoTask;  // load/reload task the K consumer depends on
    TaskId v_dep = sim::kNoTask;
    bool k_live = false;  // resident in L1
    bool v_live = false;
    bool k_streaming = false;  // demoted to per-tile streaming
    bool v_streaming = false;
    // Overwritten by a P_i under pressure (§4.3); the operand is reloaded
    // from DRAM and becomes resident again once the strip transient passes
    // (the paper: "the MAC unit can resume ... by reloading either the V or
    // K matrix from DRAM"). Distinct from `*_streaming`, which is the
    // fallback when residency never fits at all.
    bool k_evicted = false;
    bool v_evicted = false;
  };

  struct IterState {
    std::vector<TaskId> c_macs;
    TaskId vec = sim::kNoTask;
    std::string cbuf;
    std::size_t group;  // index into groups_
  };

  std::int64_t GroupKey(const RowBlock& rb) const {
    return (rb.b0 << 20) | rb.h0;
  }

  PlayStats Collect() {
    stats_.peak_l1 = tracker_.peak();
    return stats_;
  }

  // --- emission helpers (no-ops on the builder when only playing) ---
  TaskId Dma(const char* name, std::int64_t bytes, bool read, sim::DepSpan deps = {}) {
    return b_ ? b_->Dma(name, core_, bytes, read, deps) : sim::kNoTask;
  }
  TaskId Mac(const char* name, std::int64_t groups, std::int64_t m, std::int64_t k,
             std::int64_t n, sim::DepSpan deps = {}) {
    return b_ ? b_->Mac(name, core_, groups, m, k, n, deps) : sim::kNoTask;
  }
  TaskId Vec(const char* name, std::int64_t groups, std::int64_t rows, std::int64_t row_len,
             sim::DepSpan deps = {}) {
    return b_ ? b_->Vec(name, core_, groups, rows, row_len, deps) : sim::kNoTask;
  }

  // Ensures streamed-tile staging exists (counted once).
  void EnsureStreamStaging() {
    if (!tracker_.IsLive("kv_stream")) {
      DemoteForSpace(4 * bytes_.kv_tile);
      tracker_.Alloc("kv_stream", 4 * bytes_.kv_tile);
    }
  }

  // Quiet demotion: evicts resident K/V buffers (newest group first) until
  // `need` bytes fit. Used at group transitions where nothing is in flight
  // yet, so no halt/reload bookkeeping is required — subsequent consumers
  // simply stream their tiles. Returns false if space cannot be made.
  bool DemoteForSpace(std::int64_t need) {
    while (!tracker_.CanFit(need)) {
      bool evicted = false;
      for (std::size_t g = groups_.size(); g-- > 0 && !evicted;) {
        GroupState& gs = groups_[g];
        if (gs.v_live) {
          tracker_.Free(VName(g));
          gs.v_live = false;
          gs.v_streaming = true;
          evicted = true;
        } else if (gs.k_live) {
          tracker_.Free(KName(g));
          gs.k_live = false;
          gs.k_streaming = true;
          evicted = true;
        }
      }
      if (!evicted) return false;
    }
    return true;
  }

  // Establishes (or reuses) group state for block i; loads resident K/V.
  std::size_t EnterGroup(const RowBlock& rb) {
    const std::int64_t key = GroupKey(rb);
    if (!groups_.empty() && groups_.back().key == key) return groups_.size() - 1;

    GroupState g;
    g.key = key;
    const std::int64_t kv_bytes = rb.groups() * shape_.kv() * shape_.embed *
                                  hw_.element_bytes;
    // Previous group's K is no longer needed for QK^T once we move on.
    if (!groups_.empty()) {
      GroupState& prev = groups_.back();
      if (prev.k_live) {
        tracker_.Free(KName(groups_.size() - 1));
        prev.k_live = false;
      }
    }
    if (try_resident_ && tracker_.CanFit(2 * kv_bytes)) {
      tracker_.Alloc(KName(groups_.size()), kv_bytes);
      tracker_.Alloc(VName(groups_.size()), kv_bytes);
      g.k_live = g.v_live = true;
      g.k_dep = Dma("load K group", kv_bytes, true);
      g.v_dep = Dma("load V group", kv_bytes, true);
    } else {
      g.k_streaming = g.v_streaming = true;
      EnsureStreamStaging();  // demotes older residency quietly if needed
    }
    groups_.push_back(g);
    return groups_.size() - 1;
  }

  std::string KName(std::size_t g) const { return "K." + std::to_string(g); }
  std::string VName(std::size_t g) const { return "V." + std::to_string(g); }
  std::string CName(std::int64_t i) const { return "C." + std::to_string(i); }

  // Frees the C/P strip of iteration `i` (its PV has been issued).
  void ReleaseStrip(std::int64_t i) {
    auto& it = iters_[static_cast<std::size_t>(i)];
    if (!it.cbuf.empty()) {
      tracker_.Free(it.cbuf);
      it.cbuf.clear();
    }
  }

  // Allocates the C_i strip, triggering the proactive overwrite when needed.
  void AllocStrip(std::int64_t i, std::int64_t strip_bytes, bool pv_in_flight,
                  std::size_t pv_group) {
    if (i >= 2) ReleaseStrip(i - 2);
    const TaskId halt_until = (i >= 1) ? iters_[static_cast<std::size_t>(i - 1)].vec
                                       : sim::kNoTask;
    // An operand evicted in an earlier round is reloaded and becomes
    // resident again once it fits ("the MAC unit can resume its process by
    // reloading either the V or K matrix from DRAM", §4.3); while pressure
    // persists it bounces — overwritten again this round and reloaded for
    // its consumers, which is where §5.4.2's extra DRAM reads come from.
    Repromote(halt_until, strip_bytes);

    if (tracker_.CanFit(strip_bytes)) {
      tracker_.Alloc(CName(i), strip_bytes);
      iters_.back().cbuf = CName(i);
      return;
    }

    // Proactive overwrite (§4.3). P_{i-1} (the strip of iteration i-1) must
    // be protected — softmax results exist only on-chip. Overwrite a
    // reloadable operand instead: V if the MAC unit is amid PV (Fig. 2),
    // else K (Fig. 3). The halted MatMul resumes after S_{i-1} completes.
    auto overwrite = [&](bool prefer_v) -> bool {
      for (int attempt = 0; attempt < 2 && !tracker_.CanFit(strip_bytes); ++attempt) {
        const bool take_v = (attempt == 0) ? prefer_v : !prefer_v;
        if (take_v) {
          if (!TakeVictim(/*is_v=*/true, pv_group, halt_until)) continue;
        } else {
          if (!TakeVictim(/*is_v=*/false, iters_.back().group, halt_until)) continue;
        }
      }
      return tracker_.CanFit(strip_bytes);
    };
    if (!overwrite(pv_in_flight)) {
      // Residual pressure (e.g. stale residency from an older group at a
      // transition round): demote quietly to streaming until the strip fits,
      // making sure the streamed-tile staging is accounted for.
      DemoteForSpace(strip_bytes);
      EnsureStreamStaging();
      DemoteForSpace(strip_bytes);
    }
    MAS_CHECK(tracker_.CanFit(strip_bytes))
        << "MAS overwrite could not free enough L1 for " << CName(i) << " ("
        << strip_bytes << " B, " << tracker_.free_bytes() << " free) — Fits() should have "
        << "rejected " << tiling_.ToString();
    tracker_.Alloc(CName(i), strip_bytes);
    iters_.back().cbuf = CName(i);
  }

  // Handles evicted (overwritten) operands of the current group at the start
  // of a round: reloads them from DRAM for this round's consumers. If the
  // operand fits alongside this round's strip it becomes resident again;
  // otherwise it stays in the evicted (bouncing) state, counting a fresh
  // overwrite — the softmax will clobber it again.
  void Repromote(TaskId halt_until, std::int64_t strip_bytes) {
    if (iters_.empty()) return;
    GroupState& gs = groups_[iters_.back().group];
    const std::int64_t kv_bytes = bytes_.kv_group;
    auto handle = [&](bool is_v, bool& evicted, bool& live, TaskId& dep) {
      if (!evicted) return;
      // After the first halt event the schedule *expects* the bounce: the
      // refetch is issued as soon as the bus frees (no softmax dependency —
      // by the time this round's consumers run, the clobbering softmax has
      // long finished), so the extra DRAM reads of §5.4.2 cost bandwidth but
      // stay off the critical path ("unnoticeable" latency impact).
      (void)halt_until;
      dep = Dma(is_v ? "reload V group (overwrite)" : "reload K group (overwrite)", kv_bytes,
                true);
      stats_.reload_bytes += kv_bytes;
      if (tracker_.CanFit(strip_bytes + kv_bytes)) {
        tracker_.Alloc(is_v ? VName(iters_.back().group) : KName(iters_.back().group),
                       kv_bytes);
        live = true;
        evicted = false;
      }
      // Else: still pressured — the operand stays in the bouncing state and
      // this round's softmax output will reuse its space again.
    };
    handle(/*is_v=*/false, gs.k_evicted, gs.k_live, gs.k_dep);
    handle(/*is_v=*/true, gs.v_evicted, gs.v_live, gs.v_dep);
  }

  // Evicts K or V of `g` to protect the softmax output; emits the halt
  // bookkeeping (reload of the interrupted tile + redone MAC tile). The
  // operand enters the evicted state and is reloaded by Repromote() at the
  // next round. Returns false when that operand was not resident.
  bool TakeVictim(bool is_v, std::size_t g, TaskId halt_until) {
    GroupState& gs = groups_[g];
    const bool live = is_v ? gs.v_live : gs.k_live;
    if (!live) return false;
    const std::string name = is_v ? VName(g) : KName(g);
    tracker_.Free(name);
    ++stats_.overwrites;
    if (is_v) {
      ++stats_.v_overwrites;
      gs.v_live = false;
      gs.v_evicted = true;
    } else {
      ++stats_.k_overwrites;
      gs.k_live = false;
      gs.k_evicted = true;
    }
    // The interrupted MatMul redoes one sub-block tile after its operand
    // tile is refetched; the refetch cannot start before the protected
    // softmax finishes ("stop the MAC ... resume after P_i is stored").
    const std::int64_t tile = bytes_.kv_tile;
    sim::DepList reload_deps;
    if (halt_until != sim::kNoTask) reload_deps.push_back(halt_until);
    const TaskId reload = Dma(is_v ? "reload V tile (overwrite)" : "reload K tile (overwrite)",
                              tile, true, reload_deps);
    stats_.reload_bytes += tile;
    if (is_v) {
      gs.v_dep = reload;
    } else {
      gs.k_dep = reload;
    }
    EmitRedoTile(is_v, reload);
    return true;
  }

  // One redone MAC tile after an overwrite (the halted MatMul's repair).
  void EmitRedoTile(bool is_v, TaskId reload) {
    const RowBlock& rb = blocks_[iters_.size() - 1];
    const std::int64_t nkv = std::min(tiling_.nkv, shape_.kv());
    sim::DepList redo_deps;
    if (reload != sim::kNoTask) redo_deps.push_back(reload);
    if (is_v) {
      Mac("redo O tile (overwrite)", rb.groups(), rb.rows(), nkv, shape_.embed, redo_deps);
    } else {
      Mac("redo C tile (overwrite)", rb.groups(), rb.rows(), shape_.embed, nkv, redo_deps);
    }
  }

  void EmitC(std::int64_t i) {
    const RowBlock& rb = blocks_[static_cast<std::size_t>(i)];
    const std::size_t g = EnterGroup(rb);
    IterState iter;
    iter.group = g;
    iters_.push_back(iter);

    const std::int64_t eb = hw_.element_bytes;
    const std::int64_t strip = rb.groups() * rb.rows() * shape_.kv() * eb;
    const bool pv_in_flight = i >= 2;
    const std::size_t pv_group = pv_in_flight
                                     ? iters_[static_cast<std::size_t>(i - 2)].group
                                     : g;
    AllocStrip(i, strip, pv_in_flight, pv_group);

    const TaskId q_load = Dma("load Q_i", rb.groups() * rb.rows() * shape_.embed * eb, true);
    GroupState& gs = groups_[g];
    auto& it = iters_.back();
    for (const KvBlock& kv : kvs_) {
      sim::DepList deps;
      if (q_load != sim::kNoTask) deps.push_back(q_load);
      if (gs.k_streaming) {
        const TaskId k_load =
            Dma("stream K_ij", rb.groups() * kv.nl * shape_.embed * eb, true);
        if (k_load != sim::kNoTask) deps.push_back(k_load);
      } else if (gs.k_dep != sim::kNoTask) {
        deps.push_back(gs.k_dep);
      }
      it.c_macs.push_back(
          Mac("C_ij = Q_i K_ij^T", rb.groups(), rb.rows(), shape_.embed, kv.nl, deps));
    }
  }

  void EmitVec(std::int64_t i) {
    const RowBlock& rb = blocks_[static_cast<std::size_t>(i)];
    auto& it = iters_[static_cast<std::size_t>(i)];
    // When emitting (builder non-null) every C MAC id is valid; when only
    // playing, Vec() ignores the list anyway — no filtering pass needed.
    it.vec = Vec("P_i = softmax(C_i)", rb.groups(), rb.rows(), shape_.kv(), it.c_macs);
  }

  void EmitPV(std::int64_t i) {
    const RowBlock& rb = blocks_[static_cast<std::size_t>(i)];
    auto& it = iters_[static_cast<std::size_t>(i)];
    GroupState& gs = groups_[it.group];
    const std::int64_t eb = hw_.element_bytes;

    TaskId last_mac = sim::kNoTask;
    for (const KvBlock& kv : kvs_) {
      sim::DepList deps;
      if (it.vec != sim::kNoTask) deps.push_back(it.vec);
      if (gs.v_streaming) {
        const TaskId v_load =
            Dma("stream V_ij", rb.groups() * kv.nl * shape_.embed * eb, true);
        if (v_load != sim::kNoTask) deps.push_back(v_load);
      } else if (gs.v_dep != sim::kNoTask) {
        deps.push_back(gs.v_dep);
      }
      if (last_mac != sim::kNoTask) deps.push_back(last_mac);
      last_mac = Mac("O_i += P_ij V_ij", rb.groups(), rb.rows(), kv.nl, shape_.embed, deps);
    }
    if (last_mac != sim::kNoTask) {
      Dma("store O_i", rb.groups() * rb.rows() * shape_.embed * eb, false, sim::DepList{last_mac});
    }

    // If this is the group's final row block, its V residency can be freed.
    const bool last_of_group = (static_cast<std::size_t>(i) + 1 == blocks_.size()) ||
                               (GroupKey(blocks_[static_cast<std::size_t>(i) + 1]) != gs.key);
    if (last_of_group && gs.v_live) {
      tracker_.Free(VName(it.group));
      gs.v_live = false;
    }
    if (last_of_group && gs.k_live) {
      tracker_.Free(KName(it.group));
      gs.k_live = false;
    }
  }

  ScheduleBuilder* b_;
  const AttentionShape& shape_;
  const TilingConfig& tiling_;
  const sim::HardwareConfig& hw_;
  int core_;
  sim::L1Tracker tracker_;
  const std::vector<RowBlock>& blocks_;
  std::vector<KvBlock> kvs_;
  detail::BlockBytes bytes_;
  bool try_resident_ = false;
  std::vector<GroupState> groups_;
  std::vector<IterState> iters_;
  PlayStats stats_;
};

}  // namespace

bool MasScheduler::Fits(const AttentionShape& shape, const TilingConfig& tiling,
                        const sim::HardwareConfig& hw) const {
  tiling.Validate(shape);
  const detail::BlockBytes bytes = detail::ComputeBlockBytes(shape, tiling, hw);
  return MinFootprint(bytes) <= detail::PerCoreL1Budget(shape, tiling, hw);
}

sim::SimResult MasScheduler::Simulate(const AttentionShape& shape, const TilingConfig& tiling,
                                      const sim::HardwareConfig& hw,
                                      const sim::EnergyModel& em,
                                      bool record_timeline,
                                      sim::Engine* engine) const {
  MAS_CHECK(Fits(shape, tiling, hw)) << "tiling does not fit: " << tiling.ToString();
  ScheduleBuilder b(hw, em, record_timeline, engine);
  const auto blocks = detail::EnumerateRowBlocks(shape, tiling);
  const auto shards = detail::ShardAcrossCores(blocks, hw);
  const std::int64_t budget = hw.l1_bytes / detail::ActiveCoreCount(shape, tiling, hw);

  PlayStats total;
  for (int core = 0; core < static_cast<int>(shards.size()); ++core) {
    const auto& shard = shards[static_cast<std::size_t>(core)];
    if (shard.empty()) continue;
    MasPipeline pipeline(&b, shape, tiling, hw, core, budget, shard);
    const PlayStats stats = pipeline.Run();
    total.peak_l1 += stats.peak_l1;
    total.overwrites += stats.overwrites;
    total.reload_bytes += stats.reload_bytes;
  }
  return b.Finish(total.peak_l1, total.overwrites, total.reload_bytes);
}

TensorF MasScheduler::Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                              const TilingConfig& tiling) const {
  // The stream-processing schedule reorders work across iterations but every
  // tile computes the same values; numerically MAS is the fused row-block
  // decomposition of Alg. 2-4 (the golden-data check of §5.1).
  return detail::ExecuteFusedRowBlocks(q, k, v, tiling);
}

MasScheduler::OverwriteProfile MasScheduler::ProfileOverwrites(
    const AttentionShape& shape, const TilingConfig& tiling, const sim::HardwareConfig& hw) {
  const auto blocks = detail::EnumerateRowBlocks(shape, tiling);
  const auto shards = detail::ShardAcrossCores(blocks, hw);
  const std::int64_t budget = hw.l1_bytes / detail::ActiveCoreCount(shape, tiling, hw);
  OverwriteProfile profile;
  for (int core = 0; core < static_cast<int>(shards.size()); ++core) {
    const auto& shard = shards[static_cast<std::size_t>(core)];
    if (shard.empty()) continue;
    MasPipeline pipeline(nullptr, shape, tiling, hw, core, budget, shard);
    const PlayStats stats = pipeline.Run();
    profile.v_overwrites += stats.v_overwrites;
    profile.k_overwrites += stats.k_overwrites;
  }
  return profile;
}

void RegisterMasScheduler() {
  SchedulerRegistry::Instance().Register(
      SchedulerInfo{"MAS-Attention", /*paper_column=*/5, /*is_ablation=*/false,
                    "semi-synchronous MAC/VEC stream processing with proactive buffer overwrite", Method::kMas},
      [] { return std::make_unique<MasScheduler>(); });
}

}  // namespace mas
