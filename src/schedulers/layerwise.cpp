// Layer-Wise baseline (paper §5.1): the unfused attention execution.
//
// Three strictly sequential phases with DRAM round trips for the
// intermediates: (1) C = QK^T streamed tile-by-tile and written to DRAM,
// (2) P = softmax(C) read back, softmaxed, written to DRAM, (3) O = PV read
// back and accumulated. This is the memory-bound workflow the paper uses as
// the unfused reference point.
#include <algorithm>

#include "common/math_util.h"
#include "kernels/attention_kernels.h"
#include "schedulers/builder.h"
#include "schedulers/common.h"
#include "schedulers/impls.h"
#include "schedulers/registry.h"

namespace mas {

using detail::KvBlock;
using detail::RowBlock;
using detail::ScheduleBuilder;
using sim::TaskId;

namespace {

// Per-phase peak L1 footprints (double-buffered streaming).
struct LayerWiseFootprint {
  std::int64_t phase1;  // Q_i + 2x K tile + 2x C tile strip
  std::int64_t phase2;  // 2x C strip (in/out)
  std::int64_t phase3;  // P strip + 2x V tile + O_i
  std::int64_t Peak() const { return std::max({phase1, phase2, phase3}); }
};

LayerWiseFootprint Footprint(const AttentionShape& shape, const TilingConfig& tiling,
                             const sim::HardwareConfig& hw) {
  const detail::BlockBytes bytes = detail::ComputeBlockBytes(shape, tiling, hw);
  const std::int64_t eb = hw.element_bytes;
  const std::int64_t groups = std::min(tiling.bb, shape.batch) * std::min(tiling.hh, shape.heads);
  const std::int64_t rows = std::min(tiling.nq, shape.seq_len);
  const std::int64_t nkv = std::min(tiling.nkv, shape.kv());
  const std::int64_t c_tile = groups * rows * nkv * eb;
  LayerWiseFootprint fp;
  fp.phase1 = 2 * bytes.q + 2 * bytes.kv_tile + 2 * c_tile;
  fp.phase2 = 2 * bytes.c;
  fp.phase3 = bytes.c + 2 * bytes.kv_tile + 2 * bytes.o;
  return fp;
}

}  // namespace

bool LayerWiseScheduler::Fits(const AttentionShape& shape, const TilingConfig& tiling,
                              const sim::HardwareConfig& hw) const {
  tiling.Validate(shape);
  return Footprint(shape, tiling, hw).Peak() <= detail::PerCoreL1Budget(shape, tiling, hw);
}

sim::SimResult LayerWiseScheduler::Simulate(const AttentionShape& shape,
                                            const TilingConfig& tiling,
                                            const sim::HardwareConfig& hw,
                                            const sim::EnergyModel& em,
                                            bool record_timeline,
                                            sim::Engine* engine) const {
  MAS_CHECK(Fits(shape, tiling, hw)) << "tiling does not fit: " << tiling.ToString();
  ScheduleBuilder b(hw, em, record_timeline, engine);
  const std::int64_t eb = hw.element_bytes;
  const auto blocks = detail::EnumerateRowBlocks(shape, tiling);
  const auto shards = detail::ShardAcrossCores(blocks, hw);
  const auto kvs = detail::EnumerateKvBlocks(shape, tiling);

  // --- Phase 1: C = QK^T, streamed through L1, C written to DRAM. ---
  std::vector<TaskId> phase1_ends;
  for (int core = 0; core < static_cast<int>(shards.size()); ++core) {
    for (const RowBlock& rb : shards[static_cast<std::size_t>(core)]) {
      const std::int64_t groups = rb.groups();
      const TaskId q_load = b.Dma("load Q_i", core, groups * rb.rows() * shape.embed * eb, true);
      for (const KvBlock& kv : kvs) {
        const TaskId k_load = b.Dma("load K_ij", core, groups * kv.nl * shape.embed * eb, true);
        const TaskId mac =
            b.Mac("C_ij = Q_i K_ij^T", core, groups, rb.rows(), shape.embed, kv.nl,
                  detail::DepList{q_load, k_load});
        const TaskId store = b.Dma("store C_ij", core, groups * rb.rows() * kv.nl * eb, false, detail::DepList{mac});
        phase1_ends.push_back(store);
      }
    }
  }

  // --- Phase 2: P = softmax(C), row strips round-trip through DRAM. ---
  // A zero-byte DMA task acts as the inter-phase barrier (layer-wise
  // execution starts an operator only after the previous one fully finished).
  const TaskId barrier1 = b.Dma("barrier C complete", 0, 0, true, phase1_ends);
  std::vector<TaskId> phase2_ends;
  for (int core = 0; core < static_cast<int>(shards.size()); ++core) {
    for (const RowBlock& rb : shards[static_cast<std::size_t>(core)]) {
      const std::int64_t strip = rb.groups() * rb.rows() * shape.kv() * eb;
      const TaskId c_load = b.Dma("load C_i", core, strip, true, detail::DepList{barrier1});
      const TaskId vec =
          b.Vec("P_i = softmax(C_i)", core, rb.groups(), rb.rows(), shape.kv(), detail::DepList{c_load});
      phase2_ends.push_back(b.Dma("store P_i", core, strip, false, detail::DepList{vec}));
    }
  }

  // --- Phase 3: O = PV, P read back, O accumulated and stored. ---
  const TaskId barrier2 = b.Dma("barrier P complete", 0, 0, true, phase2_ends);
  for (int core = 0; core < static_cast<int>(shards.size()); ++core) {
    for (const RowBlock& rb : shards[static_cast<std::size_t>(core)]) {
      const std::int64_t groups = rb.groups();
      const TaskId p_load =
          b.Dma("load P_i", core, groups * rb.rows() * shape.kv() * eb, true, detail::DepList{barrier2});
      TaskId last_mac = sim::kNoTask;
      for (const KvBlock& kv : kvs) {
        const TaskId v_load = b.Dma("load V_ij", core, groups * kv.nl * shape.embed * eb, true);
        detail::DepList deps = {p_load, v_load};
        if (last_mac != sim::kNoTask) deps.push_back(last_mac);
        last_mac = b.Mac("O_i += P_ij V_ij", core, groups, rb.rows(), kv.nl, shape.embed,
                         deps);
      }
      b.Dma("store O_i", core, groups * rb.rows() * shape.embed * eb, false, detail::DepList{last_mac});
    }
  }

  return b.Finish(Footprint(shape, tiling, hw).Peak());
}

TensorF LayerWiseScheduler::Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                                    const TilingConfig& tiling) const {
  (void)tiling;  // the unfused path is tiling-independent numerically
  const TensorF c = MatMulTransposed(q, k);
  const TensorF p = SoftmaxRows(c);
  return MatMul(p, v);
}

void RegisterLayerWiseScheduler() {
  SchedulerRegistry::Instance().Register(
      SchedulerInfo{"Layer-Wise", /*paper_column=*/0, /*is_ablation=*/false,
                    "unfused baseline: C and P round-trip through DRAM", Method::kLayerWise},
      [] { return std::make_unique<LayerWiseScheduler>(); });
}

}  // namespace mas
