#include "kernels/attention_kernels.h"

#include <cmath>
#include <limits>

#include "common/math_util.h"

namespace mas {

TensorF MatMulTransposed(const TensorF& a, const TensorF& bt) {
  const Shape4& sa = a.shape();
  const Shape4& sb = bt.shape();
  MAS_CHECK(sa.b == sb.b && sa.h == sb.h) << "batch/head mismatch";
  MAS_CHECK(sa.e == sb.e) << "inner-dim mismatch: " << sa.e << " vs " << sb.e;
  TensorF c(sa.b, sa.h, sa.n, sb.n);
  for (std::int64_t b = 0; b < sa.b; ++b)
    for (std::int64_t h = 0; h < sa.h; ++h)
      for (std::int64_t m = 0; m < sa.n; ++m)
        for (std::int64_t n = 0; n < sb.n; ++n) {
          float acc = 0.0f;
          for (std::int64_t k = 0; k < sa.e; ++k) {
            acc += a.at(b, h, m, k) * bt.at(b, h, n, k);
          }
          c.at(b, h, m, n) = acc;
        }
  return c;
}

TensorF MatMul(const TensorF& a, const TensorF& b) {
  const Shape4& sa = a.shape();
  const Shape4& sb = b.shape();
  MAS_CHECK(sa.b == sb.b && sa.h == sb.h) << "batch/head mismatch";
  MAS_CHECK(sa.e == sb.n) << "inner-dim mismatch: " << sa.e << " vs " << sb.n;
  TensorF c(sa.b, sa.h, sa.n, sb.e);
  for (std::int64_t bb = 0; bb < sa.b; ++bb)
    for (std::int64_t h = 0; h < sa.h; ++h)
      for (std::int64_t m = 0; m < sa.n; ++m)
        for (std::int64_t n = 0; n < sb.e; ++n) {
          float acc = 0.0f;
          for (std::int64_t k = 0; k < sa.e; ++k) {
            acc += a.at(bb, h, m, k) * b.at(bb, h, k, n);
          }
          c.at(bb, h, m, n) = acc;
        }
  return c;
}

TensorF SoftmaxRows(const TensorF& c) {
  const Shape4& s = c.shape();
  TensorF p(s);
  for (std::int64_t b = 0; b < s.b; ++b)
    for (std::int64_t h = 0; h < s.h; ++h)
      for (std::int64_t m = 0; m < s.n; ++m) {
        float row_max = -std::numeric_limits<float>::infinity();
        for (std::int64_t n = 0; n < s.e; ++n) {
          row_max = std::max(row_max, c.at(b, h, m, n));
        }
        float sum = 0.0f;
        for (std::int64_t n = 0; n < s.e; ++n) {
          const float e = std::exp(c.at(b, h, m, n) - row_max);
          p.at(b, h, m, n) = e;
          sum += e;
        }
        for (std::int64_t n = 0; n < s.e; ++n) {
          p.at(b, h, m, n) /= sum;
        }
      }
  return p;
}

TensorF ReferenceAttention(const TensorF& q, const TensorF& k, const TensorF& v, float scale) {
  TensorF c = MatMulTransposed(q, k);
  if (scale != 1.0f) {
    for (std::int64_t i = 0; i < c.elements(); ++i) c.data()[i] *= scale;
  }
  const TensorF p = SoftmaxRows(c);
  return MatMul(p, v);
}

TensorF TiledQKT(const TensorF& q_i, const TensorF& k_i, std::int64_t n_kv) {
  const Shape4& sq = q_i.shape();
  const Shape4& sk = k_i.shape();
  MAS_CHECK(n_kv >= 1) << "n_kv must be positive";
  MAS_CHECK(sq.b == sk.b && sq.h == sk.h && sq.e == sk.e) << "Q/K shape mismatch";
  TensorF c(sq.b, sq.h, sq.n, sk.n);
  // Stream K in blocks of n_kv rows (Alg. 2 line 6-9): each block produces the
  // corresponding column strip of C_i.
  for (std::int64_t j0 = 0; j0 < sk.n; j0 += n_kv) {
    const std::int64_t jl = std::min(n_kv, sk.n - j0);
    const TensorF k_blk = k_i.Slice(0, sk.b, 0, sk.h, j0, jl, 0, sk.e);
    const TensorF c_blk = MatMulTransposed(q_i, k_blk);
    c.Place(c_blk, 0, 0, 0, j0);
  }
  return c;
}

TensorF TiledSoftmax(const TensorF& c_i) {
  const Shape4& s = c_i.shape();
  TensorF p(s);
  // Alg. 3: T_l = N_Q row blocks of height 1, softmaxed independently.
  for (std::int64_t r = 0; r < s.n; ++r) {
    const TensorF row = c_i.Slice(0, s.b, 0, s.h, r, 1, 0, s.e);
    p.Place(SoftmaxRows(row), 0, 0, r, 0);
  }
  return p;
}

TensorF TiledPV(const TensorF& p_i, const TensorF& v_i, std::int64_t n_kv) {
  const Shape4& sp = p_i.shape();
  const Shape4& sv = v_i.shape();
  MAS_CHECK(n_kv >= 1) << "n_kv must be positive";
  MAS_CHECK(sp.b == sv.b && sp.h == sv.h) << "P/V batch mismatch";
  MAS_CHECK(sp.e == sv.n) << "P cols " << sp.e << " != V rows " << sv.n;
  TensorF o(sp.b, sp.h, sp.n, sv.e);
  // Alg. 4: accumulate O_i += P_{i,j} V_{i,j} over key/value blocks.
  for (std::int64_t j0 = 0; j0 < sv.n; j0 += n_kv) {
    const std::int64_t jl = std::min(n_kv, sv.n - j0);
    const TensorF p_blk = p_i.Slice(0, sp.b, 0, sp.h, 0, sp.n, j0, jl);
    const TensorF v_blk = v_i.Slice(0, sv.b, 0, sv.h, j0, jl, 0, sv.e);
    const TensorF partial = MatMul(p_blk, v_blk);
    for (std::int64_t b = 0; b < sp.b; ++b)
      for (std::int64_t h = 0; h < sp.h; ++h)
        for (std::int64_t m = 0; m < sp.n; ++m)
          for (std::int64_t e = 0; e < sv.e; ++e)
            o.at(b, h, m, e) += partial.at(b, h, m, e);
  }
  return o;
}

TensorF OnlineSoftmaxRows(const TensorF& c, std::int64_t block) {
  const Shape4& s = c.shape();
  MAS_CHECK(block >= 1) << "block must be positive";
  TensorF p(s);
  for (std::int64_t b = 0; b < s.b; ++b)
    for (std::int64_t h = 0; h < s.h; ++h)
      for (std::int64_t m = 0; m < s.n; ++m) {
        // Pass 1: running max + rescaled running sum over blocks (the FuseMax
        // einsum decomposition keeps (max, sum) as streaming state).
        float run_max = -std::numeric_limits<float>::infinity();
        float run_sum = 0.0f;
        for (std::int64_t j0 = 0; j0 < s.e; j0 += block) {
          const std::int64_t jl = std::min(block, s.e - j0);
          float blk_max = -std::numeric_limits<float>::infinity();
          for (std::int64_t j = 0; j < jl; ++j) {
            blk_max = std::max(blk_max, c.at(b, h, m, j0 + j));
          }
          const float new_max = std::max(run_max, blk_max);
          float blk_sum = 0.0f;
          for (std::int64_t j = 0; j < jl; ++j) {
            blk_sum += std::exp(c.at(b, h, m, j0 + j) - new_max);
          }
          run_sum = run_sum * std::exp(run_max - new_max) + blk_sum;
          run_max = new_max;
        }
        // Pass 2: normalize with the final (max, sum).
        for (std::int64_t j = 0; j < s.e; ++j) {
          p.at(b, h, m, j) = std::exp(c.at(b, h, m, j) - run_max) / run_sum;
        }
      }
  return p;
}

}  // namespace mas
