// Functional attention numerics.
//
// These kernels are the "golden data check" layer (paper §5.1): every
// scheduler has a functional twin that performs the same tile decomposition
// on real tensors and must reproduce `ReferenceAttention` bit-for-bit in the
// tile ordering sense (exact attention — no approximation is permitted).
#pragma once

#include "tensor/tensor.h"

namespace mas {

// C = A · Bᵀ over the last two dims, batched over (b, h).
// A: (B,H,M,K), Bt: (B,H,N,K) -> C: (B,H,M,N).
TensorF MatMulTransposed(const TensorF& a, const TensorF& bt);

// C = A · B over the last two dims, batched over (b, h).
// A: (B,H,M,K), B: (B,H,K,N) -> C: (B,H,M,N).
TensorF MatMul(const TensorF& a, const TensorF& b);

// Numerically-stable row-wise softmax over the last dim (paper Eq. 2):
// subtract the row max, exponentiate, normalize.
TensorF SoftmaxRows(const TensorF& c);

// Reference exact attention O = softmax(QKᵀ)V (paper Eq. 1-3).
// Q: (B,H,Nq,E), K: (B,H,Nk,E), V: (B,H,Nk,E) -> O: (B,H,Nq,E).
// `scale` multiplies QKᵀ before softmax (1/sqrt(E) in transformer use;
// the paper's workloads treat attention as given Q,K,V so scale defaults 1).
TensorF ReferenceAttention(const TensorF& q, const TensorF& k, const TensorF& v,
                           float scale = 1.0f);

// --- Tiled building blocks mirroring the paper's Algorithms 2-4. ---

// Algorithm 2: produce C_i = Q_i Kᵀ by streaming K in blocks of `n_kv` rows.
// Functionally identical to MatMulTransposed(q_i, k); the blocked traversal
// matches the DMA/compute order the simulator charges for.
TensorF TiledQKT(const TensorF& q_i, const TensorF& k_i, std::int64_t n_kv);

// Algorithm 3: row-granularity softmax of C_i (processes one row at a time).
TensorF TiledSoftmax(const TensorF& c_i);

// Algorithm 4: produce O_i = P_i V by streaming V in blocks of `n_kv` rows and
// accumulating partial products.
TensorF TiledPV(const TensorF& p_i, const TensorF& v_i, std::int64_t n_kv);

// Two-pass online softmax row update used by the FuseMax functional twin
// (max/sum running reduction then normalization), validating that the
// einsum-decomposed softmax matches SoftmaxRows.
TensorF OnlineSoftmaxRows(const TensorF& c, std::int64_t block);

}  // namespace mas
