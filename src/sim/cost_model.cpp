// The cost model is header-only (see cost_model.h): its methods are leaf
// arithmetic on the schedule-emission hot path and are defined inline so the
// schedulers' emit loops can fold them. This translation unit is kept so the
// build graph (and tooling that expects a .cpp per header) stays stable.
#include "sim/cost_model.h"
