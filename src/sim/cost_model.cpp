#include "sim/cost_model.h"

#include <cmath>

#include "common/math_util.h"
#include "common/status.h"

namespace mas::sim {

int Log2Ceil(std::int64_t n) {
  MAS_CHECK(n >= 1) << "Log2Ceil requires n >= 1";
  int bits = 0;
  std::int64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

TaskCost CostModel::MacTile(std::int64_t groups, std::int64_t m, std::int64_t k,
                            std::int64_t n, int core) const {
  MAS_CHECK(groups >= 1 && m >= 1 && k >= 1 && n >= 1)
      << "invalid MAC tile " << groups << "x(" << m << "," << k << "," << n << ")";
  const CoreConfig& cc = hw_->cores.at(static_cast<std::size_t>(core));
  const std::int64_t row_passes = CeilDiv(m, cc.mac_rows);
  const std::int64_t col_passes = CeilDiv(n, cc.mac_cols);

  TaskCost cost;
  // Output-stationary: each (mac_rows x mac_cols) output tile takes k cycles
  // to accumulate; setup charged once per task (weights/systolic fill).
  cost.cycles = static_cast<std::uint64_t>(groups * row_passes * col_passes * k) +
                static_cast<std::uint64_t>(cc.mac_setup_cycles);

  // PE energy counts real MACs only (schedule-invariant, paper §5.3.3).
  const std::int64_t macs = groups * m * k * n;
  cost.energy.mac_pe_pj = em_->MacOps(macs);

  // L1 traffic: A is re-read once per column pass, B once per row pass, the
  // result written once. L0 sees the operand stream into the array plus the
  // result drain.
  const std::int64_t eb = hw_->element_bytes;
  const std::int64_t a_bytes = groups * m * k * eb;
  const std::int64_t b_bytes = groups * k * n * eb;
  const std::int64_t out_bytes = groups * m * n * eb;
  const std::int64_t l1_bytes = a_bytes * col_passes + b_bytes * row_passes + out_bytes;
  cost.energy.l1_pj = em_->L1Traffic(l1_bytes);
  cost.energy.l0_pj = em_->L0Traffic(l1_bytes + out_bytes);
  return cost;
}

TaskCost CostModel::VecSoftmax(std::int64_t groups, std::int64_t rows, std::int64_t row_len,
                               int core, std::int64_t extra_lane_ops_per_elem) const {
  MAS_CHECK(groups >= 1 && rows >= 1 && row_len >= 1)
      << "invalid softmax tile " << groups << "x" << rows << "x" << row_len;
  const CoreConfig& cc = hw_->cores.at(static_cast<std::size_t>(core));
  const std::int64_t chunks = CeilDiv(row_len, cc.vec_lanes);
  const std::int64_t per_elem = cc.SoftmaxLaneCostPerElement() + extra_lane_ops_per_elem;
  // Two tree reductions per row (max and sum) cost log2(lanes) extra cycles.
  const std::int64_t per_row = chunks * per_elem + 2 * Log2Ceil(cc.vec_lanes);

  TaskCost cost;
  cost.cycles = static_cast<std::uint64_t>(groups * rows * per_row) +
                static_cast<std::uint64_t>(cc.vec_setup_cycles);

  const std::int64_t elements = groups * rows * row_len;
  cost.energy.vec_pe_pj = em_->VecLaneOps(elements * per_elem);

  // L1: read C row once, write P row once. L0: each of the four passes
  // streams the row through the register file (read + write).
  const std::int64_t eb = hw_->element_bytes;
  cost.energy.l1_pj = em_->L1Traffic(2 * elements * eb);
  cost.energy.l0_pj = em_->L0Traffic(8 * elements * eb);
  return cost;
}

TaskCost CostModel::VecElementwise(std::int64_t elements, std::int64_t lane_ops_per_elem,
                                   int core) const {
  MAS_CHECK(elements >= 0 && lane_ops_per_elem >= 0) << "invalid elementwise op";
  const CoreConfig& cc = hw_->cores.at(static_cast<std::size_t>(core));
  TaskCost cost;
  if (elements == 0 || lane_ops_per_elem == 0) return cost;
  cost.cycles = static_cast<std::uint64_t>(CeilDiv(elements, cc.vec_lanes) *
                                           lane_ops_per_elem) +
                static_cast<std::uint64_t>(cc.vec_setup_cycles);
  cost.energy.vec_pe_pj = em_->VecLaneOps(elements * lane_ops_per_elem);
  const std::int64_t eb = hw_->element_bytes;
  cost.energy.l1_pj = em_->L1Traffic(2 * elements * eb);
  cost.energy.l0_pj = em_->L0Traffic(2 * elements * eb);
  return cost;
}

TaskCost CostModel::Dma(std::int64_t bytes, bool is_read) const {
  MAS_CHECK(bytes >= 0) << "negative DMA size";
  TaskCost cost;
  if (bytes == 0) return cost;
  const double bpc = hw_->DramBytesPerCycle();
  cost.cycles = static_cast<std::uint64_t>(std::ceil(static_cast<double>(bytes) / bpc)) +
                static_cast<std::uint64_t>(hw_->dma_setup_cycles);
  cost.energy.dram_pj = em_->DramTraffic(bytes);
  cost.energy.l1_pj = em_->L1Traffic(bytes);  // written into / read out of L1
  if (is_read) {
    cost.dram_read_bytes = bytes;
  } else {
    cost.dram_write_bytes = bytes;
  }
  return cost;
}

TaskCost CostModel::L1Shuffle(std::int64_t bytes) const {
  MAS_CHECK(bytes >= 0) << "negative shuffle size";
  TaskCost cost;
  cost.energy.l1_pj = em_->L1Traffic(2 * bytes);  // read + write
  return cost;
}

}  // namespace mas::sim
