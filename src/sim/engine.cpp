#include "sim/engine.h"
#include <deque>
#include <utility>

#include <algorithm>

#include "common/status.h"

namespace mas::sim {

namespace {
constexpr std::size_t kMaxTimelineEntries = 200000;
}

const char* ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kDma: return "DMA";
    case ResourceKind::kMac: return "MAC";
    case ResourceKind::kVec: return "VEC";
  }
  return "?";
}

double SimResult::MacUtilization() const {
  if (cycles == 0) return 0.0;
  std::uint64_t best = 0;
  for (const auto& r : resources) {
    if (r.kind == ResourceKind::kMac) best = std::max(best, r.busy_cycles);
  }
  return static_cast<double>(best) / static_cast<double>(cycles);
}

std::uint64_t SimResult::BusyCycles(ResourceKind kind) const {
  std::uint64_t total = 0;
  for (const auto& r : resources) {
    if (r.kind == kind) total += r.busy_cycles;
  }
  return total;
}

Engine::Engine(const HardwareConfig& hw, bool record_timeline)
    : hw_(hw), record_timeline_(record_timeline) {
  MAS_CHECK(!hw.cores.empty()) << "hardware needs at least one core";
  // Queue 0 is the shared DMA channel; then MAC/VEC per core.
  queues_.push_back({"dma", ResourceKind::kDma, 0, {}, 0, 0, 0, 0});
  for (int c = 0; c < static_cast<int>(hw.cores.size()); ++c) {
    queues_.push_back(
        {"mac" + std::to_string(c), ResourceKind::kMac, c, {}, 0, 0, 0, 0});
    queues_.push_back(
        {"vec" + std::to_string(c), ResourceKind::kVec, c, {}, 0, 0, 0, 0});
  }
}

std::size_t Engine::QueueIndex(ResourceKind kind, int core) const {
  if (kind == ResourceKind::kDma) return 0;
  MAS_CHECK(core >= 0 && core < static_cast<int>(hw_.cores.size()))
      << "core " << core << " out of range";
  const std::size_t base = 1 + static_cast<std::size_t>(core) * 2;
  return kind == ResourceKind::kMac ? base : base + 1;
}

TaskId Engine::AddTask(TaskSpec spec) {
  MAS_CHECK(!ran_) << "cannot add tasks after Run()";
  const TaskId id = static_cast<TaskId>(tasks_.size());
  for (TaskId dep : spec.deps) {
    MAS_CHECK(dep >= 0 && dep < id) << "task " << id << " depends on unknown task " << dep;
  }
  queues_[QueueIndex(spec.resource, spec.core)].tasks.push_back(id);
  tasks_.push_back(std::move(spec));
  return id;
}

SimResult Engine::Run() {
  MAS_CHECK(!ran_) << "Run() may be called once";
  ran_ = true;

  SimResult result;
  std::vector<std::uint64_t> finish(tasks_.size(), 0);
  std::vector<bool> done(tasks_.size(), false);

  std::size_t remaining = tasks_.size();

  auto ready_time = [&](const TaskSpec& t, bool* deps_done) -> std::uint64_t {
    std::uint64_t ready = 0;
    *deps_done = true;
    for (TaskId dep : t.deps) {
      if (!done[dep]) {
        *deps_done = false;
        return 0;
      }
      ready = std::max(ready, finish[dep]);
    }
    return ready;
  };

  auto execute = [&](ResourceQueue& q, TaskId id, std::uint64_t ready) {
    const TaskSpec& t = tasks_[id];
    const std::uint64_t start = std::max(ready, q.free_at);
    const std::uint64_t end = start + t.duration;
    finish[id] = end;
    done[id] = true;
    q.free_at = end;
    q.busy += t.duration;
    ++q.count;
    --remaining;
    result.cycles = std::max(result.cycles, end);
    result.energy += t.energy;
    result.dram_read_bytes += t.dram_read_bytes;
    result.dram_write_bytes += t.dram_write_bytes;
    if (record_timeline_ && result.timeline.size() < kMaxTimelineEntries) {
      result.timeline.push_back({t.name, t.resource, t.core, start, end});
    }
  };

  // Scratch per-core descriptor rings for DMA bus arbitration.
  std::vector<std::deque<std::pair<TaskId, std::uint64_t>>> rings_;

  while (remaining > 0) {
    bool progressed = false;
    for (auto& q : queues_) {
      if (q.kind == ResourceKind::kDma) {
        // The DMA engine has one descriptor ring per core, all arbitrating
        // round-robin for the single DRAM bus: a transfer whose producer has
        // not finished does not block younger, ready transfers, and one
        // core's queued-ahead prefetches cannot starve another core's demand
        // loads (schedulers emit each core's stream back-to-back; strict
        // FIFO would serialize the cores behind the first core's stores).
        // Blocked transfers are kept for the next pass; ready ones are
        // granted the bus per-core FIFO, cores interleaved round-robin.
        rings_.assign(hw_.cores.size(), {});
        std::size_t write = q.next;
        std::size_t ready_count = 0;
        for (std::size_t s = q.next; s < q.tasks.size(); ++s) {
          const TaskId id = q.tasks[s];
          bool deps_done = false;
          const std::uint64_t ready = ready_time(tasks_[id], &deps_done);
          if (!deps_done) {
            q.tasks[write++] = id;
            continue;
          }
          const std::size_t core = static_cast<std::size_t>(
              std::clamp<int>(tasks_[id].core, 0, static_cast<int>(rings_.size()) - 1));
          rings_[core].push_back({id, ready});
          ++ready_count;
        }
        q.tasks.resize(write);
        while (ready_count > 0) {
          for (std::size_t c = 0; c < rings_.size(); ++c) {
            const std::size_t ring = (q.rr + c) % rings_.size();
            if (rings_[ring].empty()) continue;
            const auto [id, ready] = rings_[ring].front();
            rings_[ring].pop_front();
            execute(q, id, ready);
            progressed = true;
            --ready_count;
            q.rr = (ring + 1) % rings_.size();
            break;
          }
        }
      } else {
        // Compute pipelines issue strictly in order, like the real MAC/VEC
        // instruction streams: a blocked head stalls everything behind it.
        while (q.next < q.tasks.size()) {
          const TaskId id = q.tasks[q.next];
          bool deps_done = false;
          const std::uint64_t ready = ready_time(tasks_[id], &deps_done);
          if (!deps_done) break;
          execute(q, id, ready);
          ++q.next;
          progressed = true;
        }
      }
    }
    MAS_CHECK(progressed) << "task graph deadlock: " << remaining
                          << " tasks blocked (cyclic dependency across in-order queues)";
  }

  for (const auto& q : queues_) {
    result.resources.push_back({q.name, q.kind, q.core, q.busy, q.count});
  }
  return result;
}

}  // namespace mas::sim
