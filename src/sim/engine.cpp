#include "sim/engine.h"

#include <algorithm>
#include <utility>

#include "common/status.h"

namespace mas::sim {

namespace {
constexpr std::size_t kMaxTimelineEntries = 200000;
}

const char* ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kDma: return "DMA";
    case ResourceKind::kMac: return "MAC";
    case ResourceKind::kVec: return "VEC";
  }
  return "?";
}

double SimResult::MacUtilization() const {
  if (cycles == 0) return 0.0;
  std::uint64_t best = 0;
  for (const auto& r : resources) {
    if (r.kind == ResourceKind::kMac) best = std::max(best, r.busy_cycles);
  }
  return static_cast<double>(best) / static_cast<double>(cycles);
}

std::uint64_t SimResult::BusyCycles(ResourceKind kind) const {
  std::uint64_t total = 0;
  for (const auto& r : resources) {
    if (r.kind == kind) total += r.busy_cycles;
  }
  return total;
}

Engine::Engine(const HardwareConfig& hw, bool record_timeline)
    : hw_(hw), record_timeline_(record_timeline) {
  MAS_CHECK(!hw.cores.empty()) << "hardware needs at least one core";
  // Queue 0 is the shared DMA channel; then MAC/VEC per core. Names are built
  // once here (and stay) so repeated Run() cycles never rebuild them.
  queues_.push_back({"dma", ResourceKind::kDma, 0, {}, 0, 0, 0, 0, 0});
  for (int c = 0; c < static_cast<int>(hw.cores.size()); ++c) {
    queues_.push_back(
        {"mac" + std::to_string(c), ResourceKind::kMac, c, {}, 0, 0, 0, 0, 0});
    queues_.push_back(
        {"vec" + std::to_string(c), ResourceKind::kVec, c, {}, 0, 0, 0, 0, 0});
  }
  rings_.resize(hw.cores.size());
}

NameId Engine::InternName(std::string_view name) {
  if (!record_timeline_ || name.empty()) return kNoName;
  auto it = name_ids_.find(name);  // transparent: no temporary string
  if (it != name_ids_.end()) return it->second;
  const NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

TaskId Engine::AddTask(const TaskSpec& spec) {
  return AddTask(spec.resource, spec.core, spec.duration, DepSpan(spec.deps), spec.energy,
                 spec.dram_read_bytes, spec.dram_write_bytes, InternName(spec.name));
}

void Engine::Reset() {
  tasks_.clear();
  side_.clear();
  deps_.clear();
  for (auto& q : queues_) {
    q.tasks.clear();
    q.next = 0;
    q.free_at = 0;
    q.busy = 0;
    q.count = 0;
    q.rr = 0;
  }
  ran_ = false;
}

void Engine::Reset(bool record_timeline) {
  record_timeline_ = record_timeline;
  Reset();
}

void Engine::AppendResourceStats(SimResult& result) const {
  result.resources.reserve(queues_.size());
  for (const auto& q : queues_) {
    result.resources.push_back({q.name, q.kind, q.core, q.busy, q.count});
  }
}

void Engine::RecordTimelineEntry(const Task& t, std::uint64_t start, std::uint64_t end,
                                 SimResult& result) const {
  if (result.timeline.size() >= kMaxTimelineEntries) return;
  result.timeline.push_back(
      {t.name == kNoName ? std::string() : names_[static_cast<std::size_t>(t.name)],
       t.resource, t.core, start, end});
}

// Dependency-counter event scheduling. The schedule this computes — and every
// derived statistic — is identical to RunReference()'s: the pass loop below
// visits queues in the same order, and a task becomes visible to its queue in
// exactly the pass where the polling scan would have found its dependencies
// done (a counter hitting zero is the same observation the seed's per-pass
// dependency re-poll made, at O(1) instead of O(deps) per look). What changes
// is the cost: each dependency edge is touched exactly once (when its
// producer finishes), and passes with no ready DMA work skip the descriptor
// scan entirely.
SimResult Engine::Run() {
  if (use_reference_scheduler_) return RunReference();
  return RunEvent();
}

SimResult Engine::RunEvent() {
  MAS_CHECK(!ran_) << "Run() may be called once";
  ran_ = true;
  MAS_CHECK(deps_.size() < UINT32_MAX && tasks_.size() < UINT32_MAX)
      << "task graph too large";

  SimResult result;
  const std::size_t n = tasks_.size();
  state_.assign(n, TaskState{});

  // Successor CSR (counting sort over the dependency arena).
  succ_offset_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Task& t = tasks_[i];
    state_[i].remaining = t.dep_count;
    state_[i].is_dma = t.resource == ResourceKind::kDma ? 1 : 0;
    for (std::uint32_t d = 0; d < t.dep_count; ++d) {
      ++succ_offset_[static_cast<std::size_t>(deps_[t.dep_offset + d]) + 1];
    }
  }
  for (std::size_t i = 1; i <= n; ++i) succ_offset_[i] += succ_offset_[i - 1];
  succ_.resize(deps_.size());
  succ_fill_.assign(succ_offset_.begin(), succ_offset_.end());
  for (std::size_t i = 0; i < n; ++i) {
    const Task& t = tasks_[i];
    for (std::uint32_t d = 0; d < t.dep_count; ++d) {
      succ_[succ_fill_[static_cast<std::size_t>(deps_[t.dep_offset + d])]++] =
          static_cast<std::uint32_t>(i);
    }
  }

  std::size_t remaining = n;
  dma_ready_list_.clear();
  dma_grant_scratch_.clear();
  for (TaskId id : queues_[0].tasks) {
    if (state_[static_cast<std::size_t>(id)].remaining == 0) dma_ready_list_.push_back(id);
  }

  auto execute = [&](ResourceQueue& q, TaskId id, std::uint64_t ready) {
    const Task& t = tasks_[static_cast<std::size_t>(id)];
    const std::uint64_t start = std::max(ready, q.free_at);
    const std::uint64_t end = start + t.duration;
    q.free_at = end;
    q.busy += t.duration;
    ++q.count;
    --remaining;
    result.cycles = std::max(result.cycles, end);
    const TaskPayload& payload = side_[static_cast<std::size_t>(id)];
    result.energy += payload.energy;
    result.dram_read_bytes += payload.dram_read_bytes;
    result.dram_write_bytes += payload.dram_write_bytes;
    if (record_timeline_) RecordTimelineEntry(t, start, end, result);
    // Retire: each dependency edge is processed exactly once, here.
    for (std::size_t s = succ_offset_[static_cast<std::size_t>(id)];
         s < succ_offset_[static_cast<std::size_t>(id) + 1]; ++s) {
      TaskState& st = state_[succ_[s]];
      st.ready_time = std::max(st.ready_time, end);
      if (--st.remaining == 0 && st.is_dma) {
        dma_ready_list_.push_back(static_cast<TaskId>(succ_[s]));
      }
    }
  };

  while (remaining > 0) {
    bool progressed = false;
    for (auto& q : queues_) {
      if (q.kind == ResourceKind::kDma) {
        // The DMA engine has one descriptor ring per core, all arbitrating
        // round-robin for the single DRAM bus: a transfer whose producer has
        // not finished does not block younger, ready transfers, and one
        // core's queued-ahead prefetches cannot starve another core's demand
        // loads (schedulers emit each core's stream back-to-back; strict
        // FIFO would serialize the cores behind the first core's stores).
        // Blocked transfers wait on the ready list (appended the moment
        // their last dependency retires — no rescan); ready ones are granted
        // the bus per-core FIFO, cores interleaved round-robin. Transfers
        // becoming ready during this grant phase wait for the next pass,
        // exactly as under the seed's scan-then-grant order.
        if (dma_ready_list_.empty()) continue;  // nothing to grant
        for (auto& ring : rings_) ring.clear();
        dma_grant_scratch_.swap(dma_ready_list_);
        std::sort(dma_grant_scratch_.begin(), dma_grant_scratch_.end());
        std::size_t ready_count = dma_grant_scratch_.size();
        for (const TaskId id : dma_grant_scratch_) {
          const std::size_t core = static_cast<std::size_t>(
              std::clamp<int>(tasks_[static_cast<std::size_t>(id)].core, 0,
                              static_cast<int>(rings_.size()) - 1));
          rings_[core].entries.push_back(
              {id, state_[static_cast<std::size_t>(id)].ready_time});
        }
        dma_grant_scratch_.clear();
        while (ready_count > 0) {
          for (std::size_t c = 0; c < rings_.size(); ++c) {
            const std::size_t ring = (q.rr + c) % rings_.size();
            if (rings_[ring].empty()) continue;
            const auto [id, ready] = rings_[ring].entries[rings_[ring].head++];
            execute(q, id, ready);
            progressed = true;
            --ready_count;
            q.rr = (ring + 1) % rings_.size();
            break;
          }
        }
      } else {
        // Compute pipelines issue strictly in order, like the real MAC/VEC
        // instruction streams: a blocked head stalls everything behind it.
        while (q.next < q.tasks.size() &&
               state_[static_cast<std::size_t>(q.tasks[q.next])].remaining == 0) {
          const TaskId id = q.tasks[q.next];
          execute(q, id, state_[static_cast<std::size_t>(id)].ready_time);
          ++q.next;
          progressed = true;
        }
      }
    }
    MAS_CHECK(progressed) << "task graph deadlock: " << remaining
                          << " tasks blocked (cyclic dependency across in-order queues)";
  }

  AppendResourceStats(result);
  return result;
}

// The seed's polling scheduler with the seed's storage, preserved as the
// cross-checking oracle for Run() and as the "seed path" baseline of
// bench_engine_micro. The task list is first materialized the way the seed
// engine held it — one TaskSpec per task in a growing AoS vector, each with
// its own heap-allocated dependency list — and the polling loop then
// re-derives readiness from scratch every pass, rebuilding the DMA
// descriptor rings per pass, exactly as the original did. Results are
// identical to Run(); only the cost profile differs.
SimResult Engine::RunReference() {
  MAS_CHECK(!ran_) << "Run() may be called once";
  ran_ = true;

  SimResult result;
  std::vector<TaskSpec> specs;  // deliberately no reserve(): seed growth pattern
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const Task& t = tasks_[i];
    TaskSpec spec;
    spec.resource = t.resource;
    spec.core = t.core;
    spec.duration = t.duration;
    spec.deps.assign(deps_.begin() + static_cast<std::ptrdiff_t>(t.dep_offset),
                     deps_.begin() + static_cast<std::ptrdiff_t>(t.dep_offset) +
                         t.dep_count);
    spec.energy = side_[i].energy;
    spec.dram_read_bytes = side_[i].dram_read_bytes;
    spec.dram_write_bytes = side_[i].dram_write_bytes;
    if (t.name != kNoName) spec.name = names_[static_cast<std::size_t>(t.name)];
    specs.push_back(std::move(spec));
  }

  std::vector<std::uint64_t> finish(specs.size(), 0);
  std::vector<bool> done(specs.size(), false);

  std::size_t remaining = specs.size();

  auto ready_time = [&](const TaskSpec& t, bool* deps_done) -> std::uint64_t {
    std::uint64_t ready = 0;
    *deps_done = true;
    for (TaskId dep : t.deps) {
      if (!done[static_cast<std::size_t>(dep)]) {
        *deps_done = false;
        return 0;
      }
      ready = std::max(ready, finish[static_cast<std::size_t>(dep)]);
    }
    return ready;
  };

  auto execute = [&](ResourceQueue& q, TaskId id, std::uint64_t ready) {
    const TaskSpec& t = specs[static_cast<std::size_t>(id)];
    const std::uint64_t start = std::max(ready, q.free_at);
    const std::uint64_t end = start + t.duration;
    finish[static_cast<std::size_t>(id)] = end;
    done[static_cast<std::size_t>(id)] = true;
    q.free_at = end;
    q.busy += t.duration;
    ++q.count;
    --remaining;
    result.cycles = std::max(result.cycles, end);
    result.energy += t.energy;
    result.dram_read_bytes += t.dram_read_bytes;
    result.dram_write_bytes += t.dram_write_bytes;
    if (record_timeline_ && result.timeline.size() < kMaxTimelineEntries) {
      result.timeline.push_back({t.name, t.resource, static_cast<int>(t.core), start, end});
    }
  };

  // Scratch per-core descriptor rings, reallocated per pass like the seed.
  std::vector<std::vector<std::pair<TaskId, std::uint64_t>>> rings;

  while (remaining > 0) {
    bool progressed = false;
    for (auto& q : queues_) {
      if (q.kind == ResourceKind::kDma) {
        rings.assign(hw_.cores.size(), {});
        std::size_t write = q.next;
        std::size_t ready_count = 0;
        for (std::size_t s = q.next; s < q.tasks.size(); ++s) {
          const TaskId id = q.tasks[s];
          bool deps_done = false;
          const std::uint64_t ready =
              ready_time(specs[static_cast<std::size_t>(id)], &deps_done);
          if (!deps_done) {
            q.tasks[write++] = id;
            continue;
          }
          const std::size_t core = static_cast<std::size_t>(
              std::clamp<int>(specs[static_cast<std::size_t>(id)].core, 0,
                              static_cast<int>(rings.size()) - 1));
          rings[core].push_back({id, ready});
          ++ready_count;
        }
        q.tasks.resize(write);
        std::vector<std::size_t> heads(rings.size(), 0);
        while (ready_count > 0) {
          for (std::size_t c = 0; c < rings.size(); ++c) {
            const std::size_t ring = (q.rr + c) % rings.size();
            if (heads[ring] >= rings[ring].size()) continue;
            const auto [id, ready] = rings[ring][heads[ring]++];
            execute(q, id, ready);
            progressed = true;
            --ready_count;
            q.rr = (ring + 1) % rings.size();
            break;
          }
        }
      } else {
        while (q.next < q.tasks.size()) {
          const TaskId id = q.tasks[q.next];
          bool deps_done = false;
          const std::uint64_t ready =
              ready_time(specs[static_cast<std::size_t>(id)], &deps_done);
          if (!deps_done) break;
          execute(q, id, ready);
          ++q.next;
          progressed = true;
        }
      }
    }
    MAS_CHECK(progressed) << "task graph deadlock: " << remaining
                          << " tasks blocked (cyclic dependency across in-order queues)";
  }

  AppendResourceStats(result);
  return result;
}

}  // namespace mas::sim
