#include "sim/l1_tracker.h"

#include <algorithm>

#include "common/status.h"

namespace mas::sim {

L1Tracker::L1Tracker(std::int64_t capacity_bytes) : capacity_(capacity_bytes) {
  MAS_CHECK(capacity_bytes > 0) << "L1 capacity must be positive";
}

void L1Tracker::Alloc(const std::string& name, std::int64_t bytes) {
  MAS_CHECK(bytes >= 0) << "negative allocation " << bytes << " for " << name;
  MAS_CHECK(live_.count(name) == 0) << "buffer '" << name << "' already live";
  MAS_CHECK(used_ + bytes <= capacity_)
      << "L1 overflow allocating '" << name << "' (" << bytes << " B): " << used_ << "/"
      << capacity_ << " used";
  live_.emplace(name, bytes);
  used_ += bytes;
  peak_ = std::max(peak_, used_);
}

void L1Tracker::Free(const std::string& name) {
  auto it = live_.find(name);
  if (it == live_.end()) {
    std::string live;
    for (const std::string& buf : LiveBuffers()) {
      if (!live.empty()) live += ", ";
      live += "'" + buf + "'";
    }
    MAS_FAIL() << "freeing unknown buffer '" << name
               << "'; known: " << (live.empty() ? "(none live)" : live);
  }
  used_ -= it->second;
  live_.erase(it);
}

bool L1Tracker::FreeIfLive(const std::string& name) {
  auto it = live_.find(name);
  if (it == live_.end()) return false;
  used_ -= it->second;
  live_.erase(it);
  return true;
}

bool L1Tracker::IsLive(const std::string& name) const { return live_.count(name) > 0; }

std::int64_t L1Tracker::SizeOf(const std::string& name) const {
  auto it = live_.find(name);
  return it == live_.end() ? 0 : it->second;
}

std::vector<std::string> L1Tracker::LiveBuffers() const {
  std::vector<std::string> names;
  names.reserve(live_.size());
  // mas-lint: allow(unordered-iteration) collection only; sorted before return
  for (const auto& [name, size] : live_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace mas::sim
