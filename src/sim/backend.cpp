#include "sim/backend.h"

#include <cmath>

#include "common/status.h"

namespace mas::sim {

namespace {

constexpr std::int64_t kKiB = 1024;
constexpr std::int64_t kMiB = 1024 * 1024;
constexpr std::int64_t kGiB = 1024LL * 1024 * 1024;

void CheckKeys(const BackendSpec& spec, std::initializer_list<const char*> allowed) {
  CheckSpecKeys("backend '" + spec.backend + "'", spec.params, allowed);
}

// Integer-valued param: rejects fractions so `cores=2.5` fails loudly
// instead of truncating.
std::int64_t CheckInteger(const BackendSpec& spec, const char* key, std::int64_t fallback) {
  const double v = spec.Param(key, static_cast<double>(fallback));
  MAS_CHECK(std::isfinite(v) && v == std::floor(v) && v >= -9.2e18 && v <= 9.2e18)
      << "backend '" << spec.backend << "' " << key << " must be an integer, got " << v;
  return static_cast<std::int64_t>(v);
}

// Integer param constrained to [lo, hi].
std::int64_t CheckCount(const BackendSpec& spec, const char* key, std::int64_t fallback,
                        std::int64_t lo, std::int64_t hi) {
  const std::int64_t v = CheckInteger(spec, key, fallback);
  MAS_CHECK(v >= lo && v <= hi) << "backend '" << spec.backend << "' " << key
                                << " must be in [" << lo << ", " << hi << "], got " << v;
  return v;
}

double CheckPositive(const BackendSpec& spec, const char* key, double fallback) {
  const double v = spec.Param(key, fallback);
  MAS_CHECK(std::isfinite(v) && v > 0.0)
      << "backend '" << spec.backend << "' " << key << " must be positive, got " << v;
  return v;
}

// ---------------------------------------------------------------------- edge
//
// The paper's Fig. 4 simulated edge device. Defaults reproduce
// EdgeSimConfig() exactly; every tunable feeds a CacheKey() field.

HardwareConfig MakeEdge(const BackendSpec& spec) {
  CheckKeys(spec, {"cores", "freq_ghz", "l1_mb", "dram_gb", "bw_gbps", "dma_setup", "mac",
                   "lanes", "l0_kb"});
  HardwareConfig hw;
  hw.name = "edge_sim";
  hw.technology_nm = 16;
  hw.frequency_ghz = CheckPositive(spec, "freq_ghz", 3.75);
  hw.l1_bytes = CheckCount(spec, "l1_mb", 5, 1, 4096) * kMiB;
  hw.dram_bytes = CheckCount(spec, "dram_gb", 6, 1, 1024) * kGiB;
  hw.dram_gb_per_s = CheckPositive(spec, "bw_gbps", 30.0);
  hw.dma_setup_cycles = CheckCount(spec, "dma_setup", 64, 0, 1 << 20);
  CoreConfig core;
  const std::int64_t mac = CheckCount(spec, "mac", 16, 1, 256);
  core.mac_rows = mac;
  core.mac_cols = mac;
  core.vec_lanes = CheckCount(spec, "lanes", 256, 1, 1 << 16);
  core.l0_bytes = CheckCount(spec, "l0_kb", 64, 1, 1 << 20) * kKiB;
  const std::int64_t cores = CheckCount(spec, "cores", 2, 1, 64);
  for (std::int64_t i = 0; i < cores; ++i) {
    core.name = "core" + std::to_string(i);
    hw.cores.push_back(core);
  }
  return hw;
}

// ----------------------------------------------------------------------- npu
//
// DaVinci-style NPU stand-in (Fig. 5 real-hardware study). Defaults
// reproduce DavinciNpuConfig() exactly.

HardwareConfig MakeNpu(const BackendSpec& spec) {
  CheckKeys(spec, {"lite_cores", "tiny_cores", "freq_ghz", "l1_mb", "dram_gb", "bw_gbps",
                   "dma_setup"});
  HardwareConfig hw;
  hw.name = "davinci_npu";
  hw.technology_nm = 7;
  hw.frequency_ghz = CheckPositive(spec, "freq_ghz", 1.0);
  // Per-core local buffers on DaVinci; we model the union as the shared
  // budget available to a sharded schedule.
  hw.l1_bytes = CheckCount(spec, "l1_mb", 3, 1, 4096) * kMiB;
  hw.dram_bytes = CheckCount(spec, "dram_gb", 8, 1, 1024) * kGiB;
  hw.dram_gb_per_s = CheckPositive(spec, "bw_gbps", 34.0);
  hw.dma_setup_cycles = CheckCount(spec, "dma_setup", 96, 0, 1 << 20);

  const std::int64_t lite_cores = CheckCount(spec, "lite_cores", 2, 0, 64);
  const std::int64_t tiny_cores = CheckCount(spec, "tiny_cores", 1, 0, 64);
  MAS_CHECK(lite_cores + tiny_cores >= 1)
      << "backend 'npu' needs at least one core (lite_cores + tiny_cores >= 1)";
  CoreConfig lite;
  lite.mac_rows = 16;
  lite.mac_cols = 16;
  lite.vec_lanes = 128;
  lite.vec_cost_exp = 40;
  lite.vec_cost_div = 8;
  lite.l0_bytes = 64 * kKiB;
  for (std::int64_t i = 0; i < lite_cores; ++i) {
    lite.name = "ascend_lite" + std::to_string(i);
    hw.cores.push_back(lite);
  }
  CoreConfig tiny = lite;
  tiny.mac_rows = 8;
  tiny.mac_cols = 8;
  tiny.vec_lanes = 64;
  tiny.l0_bytes = 32 * kKiB;
  for (std::int64_t i = 0; i < tiny_cores; ++i) {
    tiny.name = "ascend_tiny" + std::to_string(i);
    hw.cores.push_back(tiny);
  }
  return hw;
}

// ----------------------------------------------------------------------- gpu
//
// SM-array GPU. Each core is one streaming multiprocessor running
// `occupancy` resident workgroups gated by `shmem_kb` of shared memory —
// cost_model.h divides MAC/VEC tile passes across the resident workgroups,
// so occupancy hides per-pass latency the way warp scheduling does. VEC
// issue is warp-wide (lanes = warps x 32) with SFU-assisted exp/div, DRAM
// bandwidth is an order of magnitude above the edge device, and DMA setup
// (kernel-launch + descriptor cost) is correspondingly heavier, penalizing
// fine-grained transfers.

HardwareConfig MakeGpu(const BackendSpec& spec) {
  CheckKeys(spec, {"sms", "shmem_kb", "occupancy", "lanes", "mac", "freq_ghz", "l1_mb",
                   "dram_gb", "bw_gbps", "dma_setup"});
  HardwareConfig hw;
  hw.name = "gpu_sim";
  hw.technology_nm = 5;
  hw.frequency_ghz = CheckPositive(spec, "freq_ghz", 1.35);
  hw.l1_bytes = CheckCount(spec, "l1_mb", 8, 1, 4096) * kMiB;
  hw.dram_bytes = CheckCount(spec, "dram_gb", 16, 1, 1024) * kGiB;
  hw.dram_gb_per_s = CheckPositive(spec, "bw_gbps", 256.0);
  hw.dma_setup_cycles = CheckCount(spec, "dma_setup", 512, 0, 1 << 20);

  CoreConfig sm;
  const std::int64_t mac = CheckCount(spec, "mac", 16, 1, 256);
  sm.mac_rows = mac;
  sm.mac_cols = mac;
  sm.vec_lanes = CheckCount(spec, "lanes", 128, 1, 1 << 16);
  // SFU-assisted transcendentals: exp and div are hardware-approximated
  // rather than microcoded polynomial expansion.
  sm.vec_cost_exp = 8;
  sm.vec_cost_div = 4;
  // Register file per SM.
  sm.l0_bytes = 256 * kKiB;
  sm.concurrent_workgroups = CheckCount(spec, "occupancy", 4, 1, 64);
  sm.shmem_bytes = CheckCount(spec, "shmem_kb", 96, 0, 1 << 20) * kKiB;
  const std::int64_t sms = CheckCount(spec, "sms", 8, 1, 64);
  for (std::int64_t i = 0; i < sms; ++i) {
    sm.name = "sm" + std::to_string(i);
    hw.cores.push_back(sm);
  }
  return hw;
}

}  // namespace

// ---------------------------------------------------------------------- spec

BackendSpec BackendSpec::Parse(const std::string& text, const std::string& flag) {
  ParsedSpec parsed = ParseSpec(text, flag, "backend name");
  BackendSpec spec;
  spec.backend = std::move(parsed.head);
  spec.params = std::move(parsed.params);
  return spec;
}

std::string BackendSpec::ToString() const { return SpecToString(backend, params); }

bool BackendSpec::Has(const std::string& key) const { return SpecHas(params, key); }

double BackendSpec::Param(const std::string& key, double fallback) const {
  return SpecParam(params, key, fallback);
}

// ------------------------------------------------------------------ registry

BackendRegistry& BackendRegistry::Instance() {
  static BackendRegistry* registry = new BackendRegistry();
  return *registry;
}

void BackendRegistry::Register(BackendInfo info, Factory factory) {
  EnsureBuiltins();
  RegisterImpl(std::move(info), std::move(factory));
}

void BackendRegistry::RegisterImpl(BackendInfo info, Factory factory) {
  MAS_CHECK(!info.name.empty()) << "backend registration needs a name";
  MAS_CHECK(factory != nullptr) << "backend '" << info.name << "' needs a factory";
  std::lock_guard<std::mutex> lock(mu_);
  MAS_CHECK(FindEntryLocked(info.name) == nullptr)
      << "backend '" << info.name << "' is already registered";
  entries_.push_back(Entry{std::move(info), std::move(factory)});
}

HardwareConfig BackendRegistry::Create(const BackendSpec& spec) const {
  EnsureBuiltins();
  MAS_CHECK(!spec.backend.empty()) << "cannot create a hardware backend from an empty spec";
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Entry* entry = FindEntryLocked(spec.backend);
    if (entry == nullptr) {
      MAS_FAIL() << "unknown backend '" << spec.backend
                 << "'; options: " << AvailableNamesLockedUnsafe();
    }
    factory = entry->factory;
  }
  return factory(spec);
}

const BackendInfo* BackendRegistry::Find(const std::string& name) const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* entry = FindEntryLocked(name);
  return entry == nullptr ? nullptr : &entry->info;
}

std::vector<BackendInfo> BackendRegistry::List() const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BackendInfo> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.info);
  return out;
}

std::string BackendRegistry::AvailableNames() const {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(mu_);
  return AvailableNamesLockedUnsafe();
}

const BackendRegistry::Entry* BackendRegistry::FindEntryLocked(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.info.name == name) return &entry;
  }
  return nullptr;
}

std::string BackendRegistry::AvailableNamesLockedUnsafe() const {
  std::string names;
  for (const Entry& entry : entries_) {
    if (!names.empty()) names += ", ";
    names += "'" + entry.info.name + "'";
  }
  return names;
}

void BackendRegistry::EnsureBuiltins() const {
  std::call_once(builtins_once_, [] {
    BackendRegistry& registry = Instance();
    registry.RegisterImpl(
        BackendInfo{"edge", "edge",
                    "the paper's Fig. 4 simulated edge device: dual cores with 16x16 MAC "
                    "meshes + 256-lane VEC units, shared 5 MB L1, 6 GB DRAM @ 30 GB/s",
                    SpecParams{{"cores", 2},
                               {"freq_ghz", 3.75},
                               {"l1_mb", 5},
                               {"dram_gb", 6},
                               {"bw_gbps", 30},
                               {"dma_setup", 64},
                               {"mac", 16},
                               {"lanes", 256},
                               {"l0_kb", 64}}},
        MakeEdge);
    registry.RegisterImpl(
        BackendInfo{"npu", "npu",
                    "DaVinci-style NPU stand-in (Fig. 5): 2x Ascend Lite + 1x Ascend Tiny "
                    "cores, 3 MB shared buffer, 8 GB LPDDR @ 34 GB/s",
                    SpecParams{{"lite_cores", 2},
                               {"tiny_cores", 1},
                               {"freq_ghz", 1},
                               {"l1_mb", 3},
                               {"dram_gb", 8},
                               {"bw_gbps", 34},
                               {"dma_setup", 96}}},
        MakeNpu);
    registry.RegisterImpl(
        BackendInfo{"gpu", "gpu",
                    "SM-array GPU: per-SM resident workgroups gated by shared memory, "
                    "warp-wide VEC issue with SFU exp, 256 GB/s DRAM, heavy DMA setup",
                    SpecParams{{"sms", 8},
                               {"shmem_kb", 96},
                               {"occupancy", 4},
                               {"lanes", 128},
                               {"mac", 16},
                               {"freq_ghz", 1.35},
                               {"l1_mb", 8},
                               {"dram_gb", 16},
                               {"bw_gbps", 256},
                               {"dma_setup", 512}}},
        MakeGpu);
  });
}

// ------------------------------------------------------------------- helpers

HardwareConfig ResolveBackend(const std::string& text, const std::string& flag) {
  return BackendRegistry::Instance().Create(BackendSpec::Parse(text, flag));
}

std::vector<HardwareConfig> ResolveBackendList(const std::string& list, int devices,
                                               const std::string& flag) {
  MAS_CHECK(devices >= 1) << flag << " needs at least one device slot, got " << devices;
  std::vector<HardwareConfig> resolved;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t end = list.find(';', start);
    const std::string entry =
        list.substr(start, end == std::string::npos ? std::string::npos : end - start);
    resolved.push_back(ResolveBackend(entry, flag));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  MAS_CHECK(!resolved.empty()) << flag << " needs at least one backend spec";
  std::vector<HardwareConfig> out;
  out.reserve(static_cast<std::size_t>(devices));
  for (int d = 0; d < devices; ++d) {
    out.push_back(resolved[static_cast<std::size_t>(d) % resolved.size()]);
  }
  return out;
}

}  // namespace mas::sim
