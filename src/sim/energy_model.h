// Accelergy-style per-access energy model.
//
// Energy is accumulated in picojoules per component, mirroring the paper's
// Fig. 6 breakdown: Off-Chip (DRAM), On-Chip (L1, L0), and PEs within the MAC
// and VEC units. The constants are 16 nm-class per-access costs; as with the
// cycle model, the claims reproduced are *relative* across schedulers (PE
// energy is schedule-invariant — paper §5.3.3 — while memory energies
// differentiate the dataflows).
#pragma once

#include <cstdint>

namespace mas::sim {

// Per-component energy tallies in picojoules.
struct EnergyBreakdown {
  double dram_pj = 0.0;
  double l1_pj = 0.0;
  double l0_pj = 0.0;
  double mac_pe_pj = 0.0;
  double vec_pe_pj = 0.0;

  double total_pj() const { return dram_pj + l1_pj + l0_pj + mac_pe_pj + vec_pe_pj; }

  EnergyBreakdown& operator+=(const EnergyBreakdown& other) {
    dram_pj += other.dram_pj;
    l1_pj += other.l1_pj;
    l0_pj += other.l0_pj;
    mac_pe_pj += other.mac_pe_pj;
    vec_pe_pj += other.vec_pe_pj;
    return *this;
  }
};

// Per-access energy constants (pJ). Defaults approximate 16 nm SRAM/LPDDR
// figures used by Accelergy-style estimators.
struct EnergyModel {
  double dram_pj_per_byte = 62.5;   // LPDDR access incl. PHY/IO
  double l1_pj_per_byte = 4.0;      // large shared SRAM scratchpad
  double l0_pj_per_byte = 0.5;      // small register file
  double mac_pj_per_op = 1.2;       // one 16-bit multiply-accumulate
  double vec_pj_per_lane_op = 0.35; // one 16-bit vector lane micro-op

  double DramTraffic(std::int64_t bytes) const { return dram_pj_per_byte * bytes; }
  double L1Traffic(std::int64_t bytes) const { return l1_pj_per_byte * bytes; }
  double L0Traffic(std::int64_t bytes) const { return l0_pj_per_byte * bytes; }
  double MacOps(std::int64_t ops) const { return mac_pj_per_op * ops; }
  double VecLaneOps(std::int64_t lane_ops) const { return vec_pj_per_lane_op * lane_ops; }
};

}  // namespace mas::sim
