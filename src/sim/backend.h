// sim::BackendRegistry — string-keyed catalog of hardware backends behind
// the `--hw` / `--device-hw` flags.
//
// Each backend is a descriptor (name, family, summary, tunable keys) plus a
// factory that builds a HardwareConfig from a `backend[:key=value,...]` spec
// parsed through the shared common/spec.h grammar:
//   edge:cores=4,l1_mb=10      npu      gpu:sms=8,shmem_kb=96,occupancy=4
// Factories validate their params eagerly (unknown keys, fractions where an
// integer is required, non-positive counts) and unknown backend names throw
// the catalog in the `; options: ...` house style — the same self-
// registration idiom as the scheduler/strategy/arrival/fault/router
// registries.
//
// Built-ins:
//   edge — the paper's Fig. 4 simulated edge device; EdgeSimConfig() is a
//          thin wrapper over `edge` with no overrides.
//   npu  — the DaVinci-style NPU stand-in (2x Ascend Lite + 1x Ascend
//          Tiny); DavinciNpuConfig() wraps `npu`.
//   gpu  — an SM-array GPU whose cores model workgroup residency: each SM
//          runs `occupancy` concurrent workgroups gated by `shmem_kb` of
//          shared memory (cost_model.h divides tile passes across resident
//          workgroups), with warp-wide VEC issue, SFU-assisted exp, higher
//          DRAM bandwidth but a larger dma_setup_cycles.
//
// Every tunable key feeds a field of HardwareConfig::CacheKey(), so two
// specs that differ in any override never alias in the plan store or the
// sweep-runner cache (test_backend.cpp holds the property test).
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/spec.h"
#include "sim/hardware_config.h"

namespace mas::sim {

// Parsed `--hw` grammar: "backend[:key=value[,key=value...]]". Values are
// finite doubles; keys may not repeat. Parse() throws mas::Error on
// malformed text; backend/param *semantics* are checked by the registry
// factory at Create() time. `flag` names the CLI flag for error text
// ("--hw", "--device-hw").
struct BackendSpec {
  std::string backend = "edge";  // registry key
  SpecParams params;             // grammar order

  static BackendSpec Parse(const std::string& text, const std::string& flag = "--hw");
  std::string ToString() const;  // canonical "backend:k=v,..." round-trip

  bool Has(const std::string& key) const;
  double Param(const std::string& key, double fallback) const;
};

// Descriptor of one registered backend.
struct BackendInfo {
  std::string name;     // registry key and grammar head, e.g. "gpu"
  std::string family;   // cost-model family: "edge", "npu", or "gpu"
  std::string summary;  // one-line platform description
  // Tunable spec keys in grammar-help order with their default values —
  // drives `--list-backends` output and the CacheKey anti-aliasing property
  // test (every key, overridden, must change CacheKey()).
  SpecParams tunables;
};

// String-keyed backend catalog, mirroring RouterPolicyRegistry. Factories
// return a fully-formed HardwareConfig; they validate spec params eagerly.
class BackendRegistry {
 public:
  using Factory = std::function<HardwareConfig(const BackendSpec&)>;

  static BackendRegistry& Instance();

  // Throws when the backend name is already taken (the built-ins are
  // materialized first, so registering over "edge" throws immediately
  // rather than failing at the first lookup).
  void Register(BackendInfo info, Factory factory);

  // Unknown backends throw an Error listing the available set; factories
  // throw on invalid params.
  HardwareConfig Create(const BackendSpec& spec) const;

  const BackendInfo* Find(const std::string& name) const;  // nullptr if unknown
  std::vector<BackendInfo> List() const;  // registration order
  std::string AvailableNames() const;     // "'edge', 'npu', ..."

 private:
  struct Entry {
    BackendInfo info;
    Factory factory;
  };

  BackendRegistry() = default;
  void EnsureBuiltins() const;
  // Register without materializing builtins first — the path the builtin
  // registrations themselves take (calling Register there would re-enter
  // the active call_once and deadlock).
  void RegisterImpl(BackendInfo info, Factory factory);
  const Entry* FindEntryLocked(const std::string& name) const;
  std::string AvailableNamesLockedUnsafe() const;

  mutable std::once_flag builtins_once_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // registration order
};

// Parse + Create in one step: the common tool path for a `--hw` value.
HardwareConfig ResolveBackend(const std::string& text, const std::string& flag = "--hw");

// Resolves a ';'-separated list of backend specs (';' because ',' belongs
// to the spec param grammar) and cycles the entries across `devices` slots:
// "edge;npu" with 4 devices yields edge,npu,edge,npu. Throws on an empty
// list or a malformed entry.
std::vector<HardwareConfig> ResolveBackendList(const std::string& list, int devices,
                                               const std::string& flag = "--device-hw");

}  // namespace mas::sim
