// Tile-level cycle/energy/traffic cost model.
//
// Maps the primitive tile operations of the attention dataflows (MAC tile
// MatMul, VEC tile softmax, DMA transfer) to task durations and energy
// events, given a hardware configuration. This is the Accelergy/Timeloop
// analytical layer of the reproduction: schedulers only reason in tiles; all
// hardware knowledge lives here.
//
// All methods are defined inline: they are leaf arithmetic on the schedule
// emission hot path (one call per task), and inlining them into the
// schedulers' emit loops is worth several percent of a tiling search.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/math_util.h"
#include "common/status.h"
#include "sim/energy_model.h"
#include "sim/hardware_config.h"

namespace mas::sim {

// Duration plus attached energy/traffic for one task.
struct TaskCost {
  std::uint64_t cycles = 0;
  EnergyBreakdown energy;
  std::int64_t dram_read_bytes = 0;
  std::int64_t dram_write_bytes = 0;
};

// Integer log2 ceiling (reduction-tree depth); Log2Ceil(1) == 0.
inline int Log2Ceil(std::int64_t n) {
  MAS_CHECK(n >= 1) << "Log2Ceil requires n >= 1";
  int bits = 0;
  std::int64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

// GPU-family workgroup residency: how many of a task's passes run
// concurrently on one core. `concurrent_workgroups` is the occupancy cap;
// when `shmem_bytes` > 0 it is further gated by how many copies of
// `working_set_bytes` fit in shared memory (never below one resident
// workgroup). Edge/NPU cores keep the defaults (1 workgroup, no shmem), so
// this is the identity there and their cost arithmetic is bit-unchanged.
inline std::int64_t ResidentWorkgroups(const CoreConfig& cc, std::int64_t working_set_bytes) {
  std::int64_t wg = cc.concurrent_workgroups;
  if (cc.shmem_bytes > 0 && working_set_bytes > 0) {
    const std::int64_t fit = cc.shmem_bytes / working_set_bytes;
    wg = fit < wg ? fit : wg;
  }
  return wg < 1 ? 1 : wg;
}

class CostModel {
 public:
  CostModel(const HardwareConfig& hw, const EnergyModel& em) : hw_(&hw), em_(&em) {}

  const HardwareConfig& hw() const { return *hw_; }
  const EnergyModel& em() const { return *em_; }

  // Batched MatMul tile: `groups` independent (m x k) * (k x n) products on
  // core `core`'s output-stationary MAC mesh. Operands are read from L1
  // through L0; the result is written back to L1.
  TaskCost MacTile(std::int64_t groups, std::int64_t m, std::int64_t k, std::int64_t n,
                   int core) const {
    MAS_CHECK(groups >= 1 && m >= 1 && k >= 1 && n >= 1)
        << "invalid MAC tile " << groups << "x(" << m << "," << k << "," << n << ")";
    const CoreConfig& cc = hw_->cores.at(static_cast<std::size_t>(core));
    const std::int64_t row_passes = CeilDiv(m, cc.mac_rows);
    const std::int64_t col_passes = CeilDiv(n, cc.mac_cols);

    TaskCost cost;
    // Output-stationary: each (mac_rows x mac_cols) output tile takes k cycles
    // to accumulate; setup charged once per task (weights/systolic fill).
    // GPU-family cores overlap passes across resident workgroups — one
    // pass's working set is the A-panel + B-panel + output tile it touches —
    // which divides the accumulate time but not the energy (the same MACs
    // and traffic happen either way).
    const std::int64_t eb = hw_->element_bytes;
    const std::int64_t pass_set = (m * k + k * n + m * n) * eb;
    const std::int64_t wg = ResidentWorkgroups(cc, pass_set);
    cost.cycles =
        static_cast<std::uint64_t>(CeilDiv(groups * row_passes * col_passes, wg) * k) +
        static_cast<std::uint64_t>(cc.mac_setup_cycles);

    // PE energy counts real MACs only (schedule-invariant, paper §5.3.3).
    const std::int64_t macs = groups * m * k * n;
    cost.energy.mac_pe_pj = em_->MacOps(macs);

    // L1 traffic: A is re-read once per column pass, B once per row pass, the
    // result written once. L0 sees the operand stream into the array plus the
    // result drain.
    const std::int64_t a_bytes = groups * m * k * eb;
    const std::int64_t b_bytes = groups * k * n * eb;
    const std::int64_t out_bytes = groups * m * n * eb;
    const std::int64_t l1_bytes = a_bytes * col_passes + b_bytes * row_passes + out_bytes;
    cost.energy.l1_pj = em_->L1Traffic(l1_bytes);
    cost.energy.l0_pj = em_->L0Traffic(l1_bytes + out_bytes);
    return cost;
  }

  // Batched row-wise softmax: `groups` x `rows` rows of length `row_len` on
  // core `core`'s VEC unit (max / sub+exp / sum / div passes).
  // `extra_lane_ops_per_elem` models decompositions that do more vector work
  // per element (e.g. FuseMax's online-softmax rescaling).
  TaskCost VecSoftmax(std::int64_t groups, std::int64_t rows, std::int64_t row_len, int core,
                      std::int64_t extra_lane_ops_per_elem = 0) const {
    MAS_CHECK(groups >= 1 && rows >= 1 && row_len >= 1)
        << "invalid softmax tile " << groups << "x" << rows << "x" << row_len;
    const CoreConfig& cc = hw_->cores.at(static_cast<std::size_t>(core));
    const std::int64_t chunks = CeilDiv(row_len, cc.vec_lanes);
    const std::int64_t per_elem = cc.SoftmaxLaneCostPerElement() + extra_lane_ops_per_elem;
    // Two tree reductions per row (max and sum) cost log2(lanes) extra cycles.
    const std::int64_t per_row = chunks * per_elem + 2 * Log2Ceil(cc.vec_lanes);

    TaskCost cost;
    // One row is one workgroup's pass (its shmem working set is the row read
    // + the row written back); resident workgroups process rows concurrently.
    const std::int64_t row_set = 2 * row_len * hw_->element_bytes;
    const std::int64_t wg = ResidentWorkgroups(cc, row_set);
    cost.cycles = static_cast<std::uint64_t>(CeilDiv(groups * rows, wg) * per_row) +
                  static_cast<std::uint64_t>(cc.vec_setup_cycles);

    const std::int64_t elements = groups * rows * row_len;
    cost.energy.vec_pe_pj = em_->VecLaneOps(elements * per_elem);

    // L1: read C row once, write P row once. L0: each of the four passes
    // streams the row through the register file (read + write).
    const std::int64_t eb = hw_->element_bytes;
    cost.energy.l1_pj = em_->L1Traffic(2 * elements * eb);
    cost.energy.l0_pj = em_->L0Traffic(8 * elements * eb);
    return cost;
  }

  // Generic element-wise VEC pass over `elements` values costing
  // `lane_ops_per_elem` lane-cycles each (used for FuseMax accumulator
  // rescales and similar).
  TaskCost VecElementwise(std::int64_t elements, std::int64_t lane_ops_per_elem,
                          int core) const {
    MAS_CHECK(elements >= 0 && lane_ops_per_elem >= 0) << "invalid elementwise op";
    const CoreConfig& cc = hw_->cores.at(static_cast<std::size_t>(core));
    TaskCost cost;
    if (elements == 0 || lane_ops_per_elem == 0) return cost;
    // One lane-wide chunk is one workgroup pass (chunk in + chunk out).
    const std::int64_t chunk_set = 2 * cc.vec_lanes * hw_->element_bytes;
    const std::int64_t wg = ResidentWorkgroups(cc, chunk_set);
    cost.cycles = static_cast<std::uint64_t>(
                      CeilDiv(CeilDiv(elements, cc.vec_lanes), wg) * lane_ops_per_elem) +
                  static_cast<std::uint64_t>(cc.vec_setup_cycles);
    cost.energy.vec_pe_pj = em_->VecLaneOps(elements * lane_ops_per_elem);
    const std::int64_t eb = hw_->element_bytes;
    cost.energy.l1_pj = em_->L1Traffic(2 * elements * eb);
    cost.energy.l0_pj = em_->L0Traffic(2 * elements * eb);
    return cost;
  }

  // DMA transfer of `bytes` between DRAM and L1. `is_read` = DRAM -> L1.
  TaskCost Dma(std::int64_t bytes, bool is_read) const {
    MAS_CHECK(bytes >= 0) << "negative DMA size";
    TaskCost cost;
    if (bytes == 0) return cost;
    const double bpc = hw_->DramBytesPerCycle();
    cost.cycles = static_cast<std::uint64_t>(std::ceil(static_cast<double>(bytes) / bpc)) +
                  static_cast<std::uint64_t>(hw_->dma_setup_cycles);
    cost.energy.dram_pj = em_->DramTraffic(bytes);
    cost.energy.l1_pj = em_->L1Traffic(bytes);  // written into / read out of L1
    if (is_read) {
      cost.dram_read_bytes = bytes;
    } else {
      cost.dram_write_bytes = bytes;
    }
    return cost;
  }

  // Pure L1->L1 data movement charged without occupying the DMA channel
  // (e.g. layout shuffles); returns energy-only cost with zero duration
  // attached to the issuing unit.
  TaskCost L1Shuffle(std::int64_t bytes) const {
    MAS_CHECK(bytes >= 0) << "negative shuffle size";
    TaskCost cost;
    cost.energy.l1_pj = em_->L1Traffic(2 * bytes);  // read + write
    return cost;
  }

 private:
  const HardwareConfig* hw_;
  const EnergyModel* em_;
};

}  // namespace mas::sim
