// Tile-level cycle/energy/traffic cost model.
//
// Maps the primitive tile operations of the attention dataflows (MAC tile
// MatMul, VEC tile softmax, DMA transfer) to task durations and energy
// events, given a hardware configuration. This is the Accelergy/Timeloop
// analytical layer of the reproduction: schedulers only reason in tiles; all
// hardware knowledge lives here.
#pragma once

#include <cstdint>

#include "sim/energy_model.h"
#include "sim/hardware_config.h"

namespace mas::sim {

// Duration plus attached energy/traffic for one task.
struct TaskCost {
  std::uint64_t cycles = 0;
  EnergyBreakdown energy;
  std::int64_t dram_read_bytes = 0;
  std::int64_t dram_write_bytes = 0;
};

class CostModel {
 public:
  CostModel(const HardwareConfig& hw, const EnergyModel& em) : hw_(&hw), em_(&em) {}

  const HardwareConfig& hw() const { return *hw_; }
  const EnergyModel& em() const { return *em_; }

  // Batched MatMul tile: `groups` independent (m x k) * (k x n) products on
  // core `core`'s output-stationary MAC mesh. Operands are read from L1
  // through L0; the result is written back to L1.
  TaskCost MacTile(std::int64_t groups, std::int64_t m, std::int64_t k, std::int64_t n,
                   int core) const;

  // Batched row-wise softmax: `groups` x `rows` rows of length `row_len` on
  // core `core`'s VEC unit (max / sub+exp / sum / div passes).
  // `extra_lane_ops_per_elem` models decompositions that do more vector work
  // per element (e.g. FuseMax's online-softmax rescaling).
  TaskCost VecSoftmax(std::int64_t groups, std::int64_t rows, std::int64_t row_len, int core,
                      std::int64_t extra_lane_ops_per_elem = 0) const;

  // Generic element-wise VEC pass over `elements` values costing
  // `lane_ops_per_elem` lane-cycles each (used for FuseMax accumulator
  // rescales and similar).
  TaskCost VecElementwise(std::int64_t elements, std::int64_t lane_ops_per_elem,
                          int core) const;

  // DMA transfer of `bytes` between DRAM and L1. `is_read` = DRAM -> L1.
  TaskCost Dma(std::int64_t bytes, bool is_read) const;

  // Pure L1->L1 data movement charged without occupying the DMA channel
  // (e.g. layout shuffles); returns energy-only cost with zero duration
  // attached to the issuing unit.
  TaskCost L1Shuffle(std::int64_t bytes) const;

 private:
  const HardwareConfig* hw_;
  const EnergyModel* em_;
};

// Integer log2 ceiling (reduction-tree depth); Log2Ceil(1) == 0.
int Log2Ceil(std::int64_t n);

}  // namespace mas::sim
