// Occupancy tracking for the shared on-chip L1 scratchpad.
//
// Schedulers declare named buffer allocations as they build a task graph; the
// tracker enforces the 5 MB capacity, records the high-water mark, and
// supports the proactive-overwrite decision (paper §4.3, Figs. 2-3): when a
// softmax output P_i cannot be placed, the MAS scheduler asks the tracker to
// evict a reloadable operand (K or V tile) instead.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace mas::sim {

class L1Tracker {
 public:
  explicit L1Tracker(std::int64_t capacity_bytes);

  std::int64_t capacity() const { return capacity_; }
  std::int64_t used() const { return used_; }
  std::int64_t free_bytes() const { return capacity_ - used_; }
  std::int64_t peak() const { return peak_; }

  bool CanFit(std::int64_t bytes) const { return used_ + bytes <= capacity_; }

  // Allocates `bytes` under `name`. Fails (throws) if over capacity or the
  // name is live. Use CanFit first when overflow is an expected outcome.
  void Alloc(const std::string& name, std::int64_t bytes);

  // Releases a live allocation.
  void Free(const std::string& name);

  // Releases if live; returns whether anything was freed.
  bool FreeIfLive(const std::string& name);

  bool IsLive(const std::string& name) const;
  std::int64_t SizeOf(const std::string& name) const;  // 0 when not live

  // Names of live allocations, sorted (hash order must never leak into
  // error text or serialized output).
  std::vector<std::string> LiveBuffers() const;

 private:
  std::int64_t capacity_;
  std::int64_t used_ = 0;
  std::int64_t peak_ = 0;
  std::unordered_map<std::string, std::int64_t> live_;
};

}  // namespace mas::sim
