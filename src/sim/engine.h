// Event-driven execution engine for the simulated accelerators.
//
// Schedulers translate a tiled attention dataflow into a DAG of tasks, each
// bound to one hardware resource (the DMA channel, or a core's MAC or VEC
// unit). Resources execute their tasks in issue order (in-order queues, like
// the real DMA descriptor ring and compute pipelines); a task starts when its
// dependencies have finished and its resource is free. The engine computes
// start/finish cycles for every task; the makespan is the schedule latency.
//
// This plays the role Timeloop played in the paper: evaluating a concrete
// mapping against a fixed architecture. Energy is attached to tasks by the
// cost model and summed into the Fig. 6-style breakdown.
//
// The engine is built for the tiling search's hot loop (thousands of
// Simulate() calls per AutoTile): tasks live in flat arenas (dependencies are
// (offset, count) slices into one shared id arena, names are interned ids
// materialized only when the timeline is recorded), Run() schedules with
// per-task remaining-dependency counters instead of re-polling queues, and
// Reset() lets one engine — and all of its arena capacity — be reused across
// simulations. RunReference() keeps the original O(passes x tasks x deps)
// polling scheduler as a cross-checking oracle; both produce identical
// results (see test_engine_properties.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sim/energy_model.h"
#include "sim/hardware_config.h"

namespace mas::sim {

enum class ResourceKind { kDma = 0, kMac = 1, kVec = 2 };

const char* ResourceKindName(ResourceKind kind);

using TaskId = std::int64_t;
constexpr TaskId kNoTask = -1;

// Interned task-name handle; kNoName when the timeline is not recorded.
using NameId = std::int32_t;
constexpr NameId kNoName = -1;

// Non-owning view over a dependency list; implicitly constructible from the
// common sources so emit sites never copy.
struct DepSpan {
  const TaskId* ids = nullptr;
  std::size_t count = 0;

  DepSpan() = default;
  DepSpan(const TaskId* data, std::size_t n) : ids(data), count(n) {}
  DepSpan(const std::vector<TaskId>& v) : ids(v.data()), count(v.size()) {}  // NOLINT
  // Deliberately NO initializer_list constructor: a span over a braced
  // list's backing array dangles after the declaration statement. Braced
  // call sites use the stack-backed DepList (which owns its storage).

  const TaskId* begin() const { return ids; }
  const TaskId* end() const { return ids + count; }
  std::size_t size() const { return count; }
  bool empty() const { return count == 0; }
};

// Fixed-capacity inline dependency list for the schedulers' per-task lists
// (which are tiny — a producer, an operand load, a pipeline predecessor).
// Never touches the heap; overflow is a programming error.
class DepList {
 public:
  static constexpr std::size_t kCapacity = 8;

  DepList() = default;
  DepList(std::initializer_list<TaskId> list) {
    for (TaskId id : list) push_back(id);
  }

  void push_back(TaskId id) {
    MAS_CHECK(size_ < kCapacity) << "DepList overflow (capacity " << kCapacity << ")";
    ids_[size_++] = id;
  }
  void clear() { size_ = 0; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  operator DepSpan() const { return DepSpan(ids_, size_); }  // NOLINT

 private:
  TaskId ids_[kCapacity];
  std::size_t size_ = 0;
};

// One unit of work bound to a resource. Convenience description for tests and
// ad-hoc graphs; AddTask(TaskSpec) copies it into the engine's arenas. The
// schedulers' hot path uses the arena AddTask overload directly.
struct TaskSpec {
  std::string name;                 // label for timelines (may be empty)
  ResourceKind resource = ResourceKind::kDma;
  int core = 0;                     // ignored for the (shared) DMA channel
  std::uint64_t duration = 0;       // cycles
  std::vector<TaskId> deps;         // tasks that must finish first
  EnergyBreakdown energy;           // energy charged when the task runs
  std::int64_t dram_read_bytes = 0;
  std::int64_t dram_write_bytes = 0;
};

// A scheduled task instance in the timeline.
struct TimelineEntry {
  std::string name;
  ResourceKind resource;
  int core;
  std::uint64_t start;
  std::uint64_t end;
};

// Per-resource busy statistics.
struct ResourceStats {
  std::string name;
  ResourceKind kind;
  int core = 0;
  std::uint64_t busy_cycles = 0;
  std::uint64_t task_count = 0;
};

// Aggregate outcome of one simulated schedule.
struct SimResult {
  std::uint64_t cycles = 0;  // makespan
  EnergyBreakdown energy;
  std::int64_t dram_read_bytes = 0;
  std::int64_t dram_write_bytes = 0;
  std::vector<ResourceStats> resources;
  std::vector<TimelineEntry> timeline;  // populated only when recording

  // Scheduler-reported extras.
  std::int64_t peak_l1_bytes = 0;
  std::int64_t overwrite_events = 0;    // proactive-overwrite activations
  std::int64_t reload_bytes = 0;        // DRAM bytes re-read due to overwrites

  // Fraction of the makespan the busiest MAC unit was active.
  double MacUtilization() const;
  // Total busy cycles across resources of a kind.
  std::uint64_t BusyCycles(ResourceKind kind) const;
};

class Engine {
 public:
  // `record_timeline` keeps per-task start/end entries (bounded); used by the
  // Fig. 1 dataflow-comparison bench.
  explicit Engine(const HardwareConfig& hw, bool record_timeline = false);

  // Interns `name` for timeline labels. Returns kNoName (and stores nothing)
  // when the timeline is not recorded, so the fast path never allocates.
  NameId InternName(std::string_view name);

  // Appends a task to its resource queue. Dependencies must refer to tasks
  // already added (ids are dense, starting at 0). The dependency ids are
  // copied into the engine's flat arena; `deps` may point at stack storage.
  // Defined inline below: this is the emission hot path.
  TaskId AddTask(ResourceKind resource, int core, std::uint64_t duration, DepSpan deps,
                 const EnergyBreakdown& energy = EnergyBreakdown{},
                 std::int64_t dram_read_bytes = 0, std::int64_t dram_write_bytes = 0,
                 NameId name = kNoName);

  // Convenience overload copying a TaskSpec (interns the name when recording).
  TaskId AddTask(const TaskSpec& spec);

  std::int64_t task_count() const { return static_cast<std::int64_t>(tasks_.size()); }

  // Executes all tasks via dependency-counter event scheduling; returns the
  // schedule outcome. May be called once per build (see Reset()).
  SimResult Run();

  // The original polling scheduler (O(passes x tasks x deps)), kept as a
  // cross-checking oracle and as the "seed path" baseline in
  // bench_engine_micro. Produces results identical to Run().
  SimResult RunReference();

  // Discards all tasks (keeping arena/queue capacity and interned names) so
  // the engine can be rebuilt and Run() again. This is what makes a tiling
  // search's thousands of Simulate() calls allocation-free after the first.
  void Reset();
  // As above, also switching the timeline-recording mode.
  void Reset(bool record_timeline);

  bool record_timeline() const { return record_timeline_; }
  const HardwareConfig& hw() const { return hw_; }

  // When set, Run() executes the polling reference scheduler instead of the
  // event-driven one (results are identical; only speed differs). Survives
  // Reset(). Used by bench_engine_micro's "seed path" baseline and by the
  // equivalence tests.
  void set_use_reference_scheduler(bool use) { use_reference_scheduler_ = use; }
  bool use_reference_scheduler() const { return use_reference_scheduler_; }

 private:
  // Arena task record (32 bytes of scheduling state): dependencies live in
  // deps_ as an (offset, count) slice. Energy/DRAM payloads sit in a parallel
  // side arena (side_) so the scheduling loops touch only this record; the
  // payload is read once, when the task executes — keeping the accumulation
  // order (and therefore the floating-point energy sum) bit-identical to the
  // seed engine's.
  struct Task {
    std::uint64_t duration = 0;
    std::size_t dep_offset = 0;
    std::uint32_t dep_count = 0;
    ResourceKind resource = ResourceKind::kDma;
    std::int32_t core = 0;
    NameId name = kNoName;
  };
  struct TaskPayload {
    EnergyBreakdown energy;
    std::int64_t dram_read_bytes = 0;
    std::int64_t dram_write_bytes = 0;
  };

  struct ResourceQueue {
    std::string name;
    ResourceKind kind;
    int core;
    std::vector<TaskId> tasks;
    std::size_t next = 0;          // index of the task at queue head
    std::uint64_t free_at = 0;     // cycle when the resource becomes idle
    std::uint64_t busy = 0;
    std::uint64_t count = 0;
    std::size_t rr = 0;            // round-robin cursor (DMA bus arbitration)
  };

  // Per-core DMA descriptor ring (persistent scratch; see satellite note in
  // engine.cpp — the seed reallocated these every arbitration pass).
  struct Ring {
    std::vector<std::pair<TaskId, std::uint64_t>> entries;  // (task, ready)
    std::size_t head = 0;

    void clear() { entries.clear(); head = 0; }
    bool empty() const { return head >= entries.size(); }
  };

  std::size_t QueueIndex(ResourceKind kind, int core) const;
  void AppendResourceStats(SimResult& result) const;
  void RecordTimelineEntry(const Task& t, std::uint64_t start, std::uint64_t end,
                           SimResult& result) const;

  const HardwareConfig hw_;
  bool record_timeline_;
  std::vector<Task> tasks_;
  std::vector<TaskPayload> side_;     // energy/DRAM payloads, parallel to tasks_
  std::vector<TaskId> deps_;          // flat dependency arena
  std::vector<ResourceQueue> queues_;
  bool ran_ = false;

  // Interned names (kept across Reset()). The transparent comparator lets
  // InternName look up a string_view without materializing a std::string.
  std::vector<std::string> names_;
  std::map<std::string, NameId, std::less<>> name_ids_;

  SimResult RunEvent();

  bool use_reference_scheduler_ = false;

  // Per-task retire state, packed so each dependency-edge retirement touches
  // exactly one cache line: earliest start time, outstanding-dependency
  // count, and whether the task is a DMA transfer (so retirement can feed
  // the DMA ready list without touching the task record).
  struct TaskState {
    std::uint64_t ready_time = 0;
    std::uint32_t remaining = 0;
    std::uint32_t is_dma = 0;
  };

  // Run() scratch, reused across Reset() cycles (32-bit indices: the search
  // caps task graphs far below 2^32 tasks/edges).
  std::vector<TaskState> state_;
  std::vector<std::uint32_t> succ_offset_;  // CSR successor index (size n+1)
  std::vector<std::uint32_t> succ_fill_;
  std::vector<std::uint32_t> succ_;
  std::vector<Ring> rings_;
  // DMA transfers whose dependencies completed but that have not yet been
  // granted the bus. Replaces the seed's per-pass rescan of every blocked
  // descriptor: ids are appended as they become ready and sorted ascending at
  // each grant phase — identical to the pending-order scan, because queue
  // order is AddTask order is id order.
  std::vector<TaskId> dma_ready_list_;
  std::vector<TaskId> dma_grant_scratch_;
};

inline TaskId Engine::AddTask(ResourceKind resource, int core, std::uint64_t duration,
                              DepSpan deps, const EnergyBreakdown& energy,
                              std::int64_t dram_read_bytes, std::int64_t dram_write_bytes,
                              NameId name) {
  MAS_CHECK(!ran_) << "cannot add tasks after Run()";
  const TaskId id = static_cast<TaskId>(tasks_.size());
  for (TaskId dep : deps) {
    // mas-lint: allow(error-catalog) internal graph invariant; task ids are not a catalog
    MAS_CHECK(dep >= 0 && dep < id) << "task " << id << " depends on unknown task " << dep;
  }
  queues_[QueueIndex(resource, core)].tasks.push_back(id);

  Task t;
  t.duration = duration;
  t.dep_offset = deps_.size();
  t.dep_count = static_cast<std::uint32_t>(deps.size());
  t.resource = resource;
  t.core = core;
  t.name = name;
  side_.push_back({energy, dram_read_bytes, dram_write_bytes});
  deps_.insert(deps_.end(), deps.begin(), deps.end());
  tasks_.push_back(t);
  return id;
}

inline std::size_t Engine::QueueIndex(ResourceKind kind, int core) const {
  if (kind == ResourceKind::kDma) return 0;
  MAS_CHECK(core >= 0 && core < static_cast<int>(hw_.cores.size()))
      << "core " << core << " out of range";
  const std::size_t base = 1 + static_cast<std::size_t>(core) * 2;
  return kind == ResourceKind::kMac ? base : base + 1;
}

}  // namespace mas::sim
