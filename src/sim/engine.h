// Event-driven execution engine for the simulated accelerators.
//
// Schedulers translate a tiled attention dataflow into a DAG of tasks, each
// bound to one hardware resource (the DMA channel, or a core's MAC or VEC
// unit). Resources execute their tasks in issue order (in-order queues, like
// the real DMA descriptor ring and compute pipelines); a task starts when its
// dependencies have finished and its resource is free. The engine computes
// start/finish cycles for every task; the makespan is the schedule latency.
//
// This plays the role Timeloop played in the paper: evaluating a concrete
// mapping against a fixed architecture. Energy is attached to tasks by the
// cost model and summed into the Fig. 6-style breakdown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/energy_model.h"
#include "sim/hardware_config.h"

namespace mas::sim {

enum class ResourceKind { kDma = 0, kMac = 1, kVec = 2 };

const char* ResourceKindName(ResourceKind kind);

using TaskId = std::int64_t;
constexpr TaskId kNoTask = -1;

// One unit of work bound to a resource.
struct TaskSpec {
  std::string name;                 // label for timelines (may be empty)
  ResourceKind resource = ResourceKind::kDma;
  int core = 0;                     // ignored for the (shared) DMA channel
  std::uint64_t duration = 0;       // cycles
  std::vector<TaskId> deps;         // tasks that must finish first
  EnergyBreakdown energy;           // energy charged when the task runs
  std::int64_t dram_read_bytes = 0;
  std::int64_t dram_write_bytes = 0;
};

// A scheduled task instance in the timeline.
struct TimelineEntry {
  std::string name;
  ResourceKind resource;
  int core;
  std::uint64_t start;
  std::uint64_t end;
};

// Per-resource busy statistics.
struct ResourceStats {
  std::string name;
  ResourceKind kind;
  int core = 0;
  std::uint64_t busy_cycles = 0;
  std::uint64_t task_count = 0;
};

// Aggregate outcome of one simulated schedule.
struct SimResult {
  std::uint64_t cycles = 0;  // makespan
  EnergyBreakdown energy;
  std::int64_t dram_read_bytes = 0;
  std::int64_t dram_write_bytes = 0;
  std::vector<ResourceStats> resources;
  std::vector<TimelineEntry> timeline;  // populated only when recording

  // Scheduler-reported extras.
  std::int64_t peak_l1_bytes = 0;
  std::int64_t overwrite_events = 0;    // proactive-overwrite activations
  std::int64_t reload_bytes = 0;        // DRAM bytes re-read due to overwrites

  // Fraction of the makespan the busiest MAC unit was active.
  double MacUtilization() const;
  // Total busy cycles across resources of a kind.
  std::uint64_t BusyCycles(ResourceKind kind) const;
};

class Engine {
 public:
  // `record_timeline` keeps per-task start/end entries (bounded); used by the
  // Fig. 1 dataflow-comparison bench.
  explicit Engine(const HardwareConfig& hw, bool record_timeline = false);

  // Appends a task to its resource queue. Dependencies must refer to tasks
  // already added (ids are dense, starting at 0).
  TaskId AddTask(TaskSpec spec);

  std::int64_t task_count() const { return static_cast<std::int64_t>(tasks_.size()); }

  // Executes all tasks; returns the schedule outcome. May be called once.
  SimResult Run();

  const HardwareConfig& hw() const { return hw_; }

 private:
  struct ResourceQueue {
    std::string name;
    ResourceKind kind;
    int core;
    std::vector<TaskId> tasks;
    std::size_t next = 0;          // index of the task at queue head
    std::uint64_t free_at = 0;     // cycle when the resource becomes idle
    std::uint64_t busy = 0;
    std::uint64_t count = 0;
    std::size_t rr = 0;            // round-robin cursor (DMA bus arbitration)
  };

  std::size_t QueueIndex(ResourceKind kind, int core) const;

  const HardwareConfig hw_;
  bool record_timeline_;
  std::vector<TaskSpec> tasks_;
  std::vector<ResourceQueue> queues_;
  bool ran_ = false;
};

}  // namespace mas::sim
