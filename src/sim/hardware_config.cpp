#include "sim/hardware_config.h"

#include <limits>
#include <sstream>

#include "sim/backend.h"

namespace mas::sim {

std::string HardwareConfig::Describe() const {
  std::ostringstream os;
  os << "Architecture: " << name << " (" << technology_nm << " nm, " << frequency_ghz
     << " GHz)\n";
  os << "  DRAM: " << (dram_bytes >> 30) << " GB @ " << dram_gb_per_s << " GB/s ("
     << DramBytesPerCycle() << " B/cycle), DMA setup " << dma_setup_cycles
     << " cycles, " << element_bytes << " B elements\n";
  os << "  L1 (shared): " << (l1_bytes >> 20) << " MB\n";
  for (const auto& core : cores) {
    os << "  Core '" << core.name << "': MAC " << core.mac_rows << "x" << core.mac_cols
       << " PE mesh (setup " << core.mac_setup_cycles << "), VEC " << core.vec_lanes
       << " lanes (setup " << core.vec_setup_cycles << "), L0 " << (core.l0_bytes >> 10)
       << " KB";
    if (core.concurrent_workgroups > 1 || core.shmem_bytes > 0) {
      os << ", " << core.concurrent_workgroups << " resident workgroups";
      if (core.shmem_bytes > 0) os << " gated by " << (core.shmem_bytes >> 10) << " KB shmem";
    }
    os << "\n";
  }
  return os.str();
}

std::string HardwareConfig::CacheKey() const {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "hw:" << frequency_ghz << ',' << l1_bytes << ',' << dram_bytes << ','
     << dram_gb_per_s << ',' << dma_setup_cycles << ',' << element_bytes;
  for (const auto& c : cores) {
    os << ";c:" << c.mac_rows << ',' << c.mac_cols << ',' << c.mac_setup_cycles << ','
       << c.vec_lanes << ',' << c.vec_cost_max << ',' << c.vec_cost_sub << ','
       << c.vec_cost_exp << ',' << c.vec_cost_sum << ',' << c.vec_cost_div << ','
       << c.vec_setup_cycles << ',' << c.l0_bytes << ',' << c.concurrent_workgroups << ','
       << c.shmem_bytes;
  }
  return os.str();
}

HardwareConfig EdgeSimConfig() {
  return BackendRegistry::Instance().Create(BackendSpec{});
}

HardwareConfig DavinciNpuConfig() {
  BackendSpec spec;
  spec.backend = "npu";
  return BackendRegistry::Instance().Create(spec);
}

}  // namespace mas::sim
