#include "sim/hardware_config.h"

#include <limits>
#include <sstream>

namespace mas::sim {

std::string HardwareConfig::Describe() const {
  std::ostringstream os;
  os << "Architecture: " << name << " (" << technology_nm << " nm, " << frequency_ghz
     << " GHz)\n";
  os << "  DRAM: " << (dram_bytes >> 30) << " GB @ " << dram_gb_per_s << " GB/s ("
     << DramBytesPerCycle() << " B/cycle)\n";
  os << "  L1 (shared): " << (l1_bytes >> 20) << " MB\n";
  for (const auto& core : cores) {
    os << "  Core '" << core.name << "': MAC " << core.mac_rows << "x" << core.mac_cols
       << " PE mesh, VEC " << core.vec_lanes << " lanes, L0 " << (core.l0_bytes >> 10)
       << " KB\n";
  }
  return os.str();
}

std::string HardwareConfig::CacheKey() const {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "hw:" << frequency_ghz << ',' << l1_bytes << ',' << dram_bytes << ','
     << dram_gb_per_s << ',' << dma_setup_cycles << ',' << element_bytes;
  for (const auto& c : cores) {
    os << ";c:" << c.mac_rows << ',' << c.mac_cols << ',' << c.mac_setup_cycles << ','
       << c.vec_lanes << ',' << c.vec_cost_max << ',' << c.vec_cost_sub << ','
       << c.vec_cost_exp << ',' << c.vec_cost_sum << ',' << c.vec_cost_div << ','
       << c.vec_setup_cycles << ',' << c.l0_bytes;
  }
  return os.str();
}

HardwareConfig EdgeSimConfig() {
  HardwareConfig hw;
  hw.name = "edge_sim";
  hw.frequency_ghz = 3.75;
  hw.technology_nm = 16;
  hw.l1_bytes = 5 * 1024 * 1024;
  hw.dram_bytes = 6LL * 1024 * 1024 * 1024;
  hw.dram_gb_per_s = 30.0;
  CoreConfig core;
  core.name = "core0";
  hw.cores.push_back(core);
  core.name = "core1";
  hw.cores.push_back(core);
  return hw;
}

HardwareConfig DavinciNpuConfig() {
  HardwareConfig hw;
  hw.name = "davinci_npu";
  hw.frequency_ghz = 1.0;
  hw.technology_nm = 7;
  // Per-core local buffers on DaVinci; we model the union as the shared
  // budget available to a sharded schedule.
  hw.l1_bytes = 3 * 1024 * 1024;
  hw.dram_bytes = 8LL * 1024 * 1024 * 1024;
  hw.dram_gb_per_s = 34.0;
  hw.dma_setup_cycles = 96;

  CoreConfig lite;
  lite.name = "ascend_lite0";
  lite.mac_rows = 16;
  lite.mac_cols = 16;
  lite.vec_lanes = 128;
  lite.vec_cost_exp = 40;
  lite.vec_cost_div = 8;
  lite.l0_bytes = 64 * 1024;
  hw.cores.push_back(lite);
  lite.name = "ascend_lite1";
  hw.cores.push_back(lite);

  CoreConfig tiny = lite;
  tiny.name = "ascend_tiny0";
  tiny.mac_rows = 8;
  tiny.mac_cols = 8;
  tiny.vec_lanes = 64;
  tiny.l0_bytes = 32 * 1024;
  hw.cores.push_back(tiny);
  return hw;
}

}  // namespace mas::sim
