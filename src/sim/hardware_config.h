// Hardware description of the simulated accelerators.
//
// Configs are built by the backend registry in backend.h from
// `backend[:key=value,...]` specs; two legacy presets remain as thin
// wrappers over the registry:
//  * EdgeSimConfig()    — the paper's Fig. 4 custom edge architecture
//    (3.75 GHz, 16 nm, two cores each with a 16x16 MAC mesh + 256-lane VEC
//    unit and an L0 register file, a shared 5 MB L1, 6 GB DRAM @ 30 GB/s).
//  * DavinciNpuConfig() — a DaVinci-style NPU stand-in for the Fig. 5
//    real-hardware study (3 heterogeneous cores: 2x "Ascend Lite" +
//    1x "Ascend Tiny", per-core on-chip buffers, LPDDR-class bandwidth).
// The registry's `gpu` backend adds an SM-array device whose cores carry
// the workgroup/shared-memory residency fields below.
//
// Substitution note (see DESIGN.md §2): the paper evaluates with
// Timeloop/Accelergy/TileFlow and a Huawei MatePad Pro 13.2. We reproduce the
// *parameters* of those platforms; the event-driven engine in engine.h plays
// schedules against them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mas::sim {

// One core's compute complement.
struct CoreConfig {
  std::string name = "core";
  // MAC unit: output-stationary mesh of mac_rows x mac_cols multiply-
  // accumulate PEs; peak throughput = mac_rows*mac_cols MACs/cycle.
  std::int64_t mac_rows = 16;
  std::int64_t mac_cols = 16;
  // Fixed pipeline fill cost charged once per MAC tile task (weight load /
  // systolic fill).
  std::int64_t mac_setup_cycles = 16;
  // VEC unit: SIMD lanes executing element-wise ops.
  std::int64_t vec_lanes = 256;
  // Per-element lane-cycle costs of the softmax primitive ops on the VEC
  // unit. Edge vector units evaluate exp by microcoded polynomial expansion,
  // which dominates the softmax cost and is what makes MatMul/softmax
  // overlap profitable (the paper's core premise).
  std::int64_t vec_cost_max = 1;
  std::int64_t vec_cost_sub = 1;
  std::int64_t vec_cost_exp = 48;
  std::int64_t vec_cost_sum = 1;
  std::int64_t vec_cost_div = 8;
  // Fixed issue cost per VEC tile task.
  std::int64_t vec_setup_cycles = 8;
  // L0 register file feeding the PE arrays, bytes.
  std::int64_t l0_bytes = 64 * 1024;
  // GPU-family residency model (identity at the defaults, so edge/NPU cost
  // arithmetic is untouched): up to `concurrent_workgroups` tile passes
  // execute concurrently on this core, the way warp scheduling hides
  // per-pass latency on an SM. When `shmem_bytes` > 0 the resident count is
  // additionally gated by how many per-pass working sets fit in shared
  // memory (cost_model.h::ResidentWorkgroups); 0 leaves occupancy ungated.
  std::int64_t concurrent_workgroups = 1;
  std::int64_t shmem_bytes = 0;

  // Sum of per-element lane-cycles for one full softmax pass.
  std::int64_t SoftmaxLaneCostPerElement() const {
    return vec_cost_max + vec_cost_sub + vec_cost_exp + vec_cost_sum + vec_cost_div;
  }
};

// Whole-chip description.
struct HardwareConfig {
  std::string name = "edge_sim";
  double frequency_ghz = 3.75;
  int technology_nm = 16;
  std::vector<CoreConfig> cores;

  // Shared on-chip L1 scratchpad (bytes) reachable by all cores' units.
  std::int64_t l1_bytes = 5 * 1024 * 1024;
  // DRAM: capacity and the DMA channel bandwidth between DRAM and L1.
  std::int64_t dram_bytes = 6LL * 1024 * 1024 * 1024;
  double dram_gb_per_s = 30.0;
  // Fixed per-DMA-task issue latency in cycles (descriptor setup, bus
  // arbitration). Penalizes very fine-grained transfers.
  std::int64_t dma_setup_cycles = 64;
  // Element size in bytes for all tensors (fp16 per the paper's §5.6).
  std::int64_t element_bytes = 2;

  // DMA bandwidth expressed in bytes per core-clock cycle.
  double DramBytesPerCycle() const { return dram_gb_per_s / frequency_ghz; }

  std::int64_t num_cores() const { return static_cast<std::int64_t>(cores.size()); }

  // Total MAC throughput across cores, MACs/cycle.
  std::int64_t TotalMacThroughput() const {
    std::int64_t total = 0;
    for (const auto& core : cores) total += core.mac_rows * core.mac_cols;
    return total;
  }

  // Human-readable architecture summary (regenerates Fig. 4's content).
  std::string Describe() const;

  // Stable identity string over every parameter that feeds the cost model
  // (the display name is excluded), so two presets that merely share a name
  // never alias. Doubles are streamed at max_digits10. Shared by the sweep
  // runner's result cache and the planner's plan store.
  std::string CacheKey() const;
};

// The paper's simulated edge device (Fig. 4). Thin wrapper resolving the
// `edge` backend through sim::BackendRegistry (see backend.h) with no
// overrides — new call sites that want tunables should resolve a
// `backend[:key=value,...]` spec via ResolveBackend() instead.
HardwareConfig EdgeSimConfig();

// DaVinci-NPU-like stand-in for the Fig. 5 real-hardware experiments:
// 2x Ascend Lite cores + 1x Ascend Tiny core, per §5.1. Thin wrapper over
// the registry's `npu` backend, like EdgeSimConfig().
HardwareConfig DavinciNpuConfig();

}  // namespace mas::sim
