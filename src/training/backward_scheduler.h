// Backward-pass attention dataflows on the simulated edge accelerator —
// the paper's §6 future-work direction, built on the same engine, cost
// model and tiling machinery as the forward schedulers.
//
// Per query row block i the backward pass executes (recompute style):
//
//   MAC: C_i   = Q_i Kᵀ               (recompute, forward strips don't survive)
//   VEC: P_i   = softmax(C_i)
//   MAC: dP_i  = dO_i Vᵀ              (independent of P_i!)
//   VEC: dC_i  = P_i ∘ (dP_i − rowsum(dP_i ∘ P_i))
//   MAC: dQ_i  = dC_i K
//   MAC: dV   += P_iᵀ dO_i
//   MAC: dK   += dC_iᵀ Q_i
//
// Two schedulers:
//  * kSequential — FLAT-style: the chain runs in order; the MAC unit idles
//    during the two VEC stages and vice versa.
//  * kStream     — MAS-style semi-synchronous pipeline: while the VEC unit
//    softmaxes / backpropagates row block i, the MAC unit runs the
//    independent MatMuls of neighbouring blocks (C_{i+1}, dP_{i+1} and the
//    dQ/dV/dK of block i−1), mirroring Algorithm 1's warm-up / regular /
//    finalize rounds.
//
// The backward pass has five MatMuls per block against two VEC stages, so
// the MAC:VEC work ratio is higher than forward — the stream pipeline still
// wins, but by less; the mas_bench training_backward suite quantifies this.
#pragma once

#include <memory>
#include <string>

#include "dataflow/attention_shape.h"
#include "sim/energy_model.h"
#include "sim/engine.h"
#include "sim/hardware_config.h"
#include "training/backward_kernels.h"

namespace mas::training {

enum class BackwardMethod {
  kSequential = 0,
  kStream = 1,
};

const char* BackwardMethodName(BackwardMethod method);

class BackwardScheduler {
 public:
  virtual ~BackwardScheduler() = default;

  virtual BackwardMethod method() const = 0;
  std::string name() const { return BackwardMethodName(method()); }

  // On-chip feasibility: staging + score strips (2 per in-flight block) +
  // resident-or-streamed K/V + the dK/dV accumulators.
  virtual bool Fits(const AttentionShape& shape, const TilingConfig& tiling,
                    const sim::HardwareConfig& hw) const = 0;

  // Simulates one attention layer's backward pass.
  virtual sim::SimResult Simulate(const AttentionShape& shape, const TilingConfig& tiling,
                                  const sim::HardwareConfig& hw, const sim::EnergyModel& em,
                                  bool record_timeline = false) const = 0;

  // Functional twin (same tile decomposition; golden-checked against
  // ReferenceAttentionBackward).
  AttentionGrads Execute(const TensorF& q, const TensorF& k, const TensorF& v,
                         const TensorF& dout, const TilingConfig& tiling) const;
};

std::unique_ptr<BackwardScheduler> MakeBackwardScheduler(BackwardMethod method);

}  // namespace mas::training
