#include "training/backward_kernels.h"

#include "common/status.h"
#include "kernels/attention_kernels.h"

namespace mas::training {

namespace {

// C += A (elementwise accumulate; shapes must match).
void Accumulate(TensorF& into, const TensorF& from) {
  MAS_CHECK(into.shape() == from.shape()) << "accumulate shape mismatch";
  for (std::int64_t i = 0; i < into.elements(); ++i) {
    into.data()[i] += from.data()[i];
  }
}

// Batched transpose of the last two dims: (B,H,M,N) -> (B,H,N,M).
TensorF TransposeLast2(const TensorF& a) {
  const Shape4& s = a.shape();
  TensorF out(s.b, s.h, s.e, s.n);
  for (std::int64_t b = 0; b < s.b; ++b)
    for (std::int64_t h = 0; h < s.h; ++h)
      for (std::int64_t m = 0; m < s.n; ++m)
        for (std::int64_t n = 0; n < s.e; ++n) out.at(b, h, n, m) = a.at(b, h, m, n);
  return out;
}

}  // namespace

TensorF SoftmaxBackwardRows(const TensorF& p, const TensorF& dp) {
  const Shape4& s = p.shape();
  MAS_CHECK(dp.shape() == s) << "P/dP shape mismatch";
  TensorF dc(s);
  for (std::int64_t b = 0; b < s.b; ++b)
    for (std::int64_t h = 0; h < s.h; ++h)
      for (std::int64_t m = 0; m < s.n; ++m) {
        // rowdot = Σ_k dP_mk * P_mk — the Jacobian's rank-one correction.
        double rowdot = 0.0;
        for (std::int64_t n = 0; n < s.e; ++n) {
          rowdot += static_cast<double>(dp.at(b, h, m, n)) * p.at(b, h, m, n);
        }
        for (std::int64_t n = 0; n < s.e; ++n) {
          dc.at(b, h, m, n) =
              p.at(b, h, m, n) * (dp.at(b, h, m, n) - static_cast<float>(rowdot));
        }
      }
  return dc;
}

AttentionGrads ReferenceAttentionBackward(const TensorF& q, const TensorF& k,
                                          const TensorF& v, const TensorF& dout) {
  const Shape4& sq = q.shape();
  const Shape4& skv = k.shape();
  MAS_CHECK(v.shape() == skv) << "K/V shape mismatch";
  MAS_CHECK(dout.shape() == sq) << "dO must match Q/O shape";

  const TensorF c = MatMulTransposed(q, k);   // (B,H,N,Nkv)
  const TensorF p = SoftmaxRows(c);
  AttentionGrads grads;
  grads.dv = MatMul(TransposeLast2(p), dout);        // Pᵀ dO  : (B,H,Nkv,E)
  const TensorF dp = MatMulTransposed(dout, v);      // dO Vᵀ  : (B,H,N,Nkv)
  const TensorF dc = SoftmaxBackwardRows(p, dp);
  grads.dq = MatMul(dc, k);                          // dC K   : (B,H,N,E)
  grads.dk = MatMul(TransposeLast2(dc), q);          // dCᵀ Q  : (B,H,Nkv,E)
  return grads;
}

AttentionGrads TiledAttentionBackward(const TensorF& q, const TensorF& k, const TensorF& v,
                                      const TensorF& dout, std::int64_t nq_block,
                                      std::int64_t nkv_block) {
  MAS_CHECK(nq_block >= 1 && nkv_block >= 1) << "invalid backward tiling";
  const Shape4& sq = q.shape();
  const Shape4& skv = k.shape();
  MAS_CHECK(v.shape() == skv) << "K/V shape mismatch";
  MAS_CHECK(dout.shape() == sq) << "dO must match Q/O shape";

  AttentionGrads grads;
  grads.dq = TensorF(sq);
  grads.dk = TensorF(skv);
  grads.dv = TensorF(skv);

  for (std::int64_t n0 = 0; n0 < sq.n; n0 += nq_block) {
    const std::int64_t nl = std::min(nq_block, sq.n - n0);
    const TensorF q_i = q.Slice(0, sq.b, 0, sq.h, n0, nl, 0, sq.e);
    const TensorF do_i = dout.Slice(0, sq.b, 0, sq.h, n0, nl, 0, sq.e);
    // Recompute C_i / P_i from Q_i and K (FlashAttention-style backward: the
    // N x Nkv score strips never survive the forward pass on-chip budgets).
    const TensorF c_i = TiledQKT(q_i, k, nkv_block);
    const TensorF p_i = TiledSoftmax(c_i);
    Accumulate(grads.dv, MatMul(TransposeLast2(p_i), do_i));
    const TensorF dp_i = MatMulTransposed(do_i, v);
    const TensorF dc_i = SoftmaxBackwardRows(p_i, dp_i);
    grads.dq.Place(TiledPV(dc_i, k, nkv_block), 0, 0, n0, 0);  // dQ_i = dC_i K
    Accumulate(grads.dk, MatMul(TransposeLast2(dc_i), q_i));
  }
  return grads;
}

double NumericalGradient(const TensorF& q, const TensorF& k, const TensorF& v,
                         const TensorF& seed, int which, std::int64_t b, std::int64_t h,
                         std::int64_t n, std::int64_t e, float epsilon) {
  MAS_CHECK(which >= 0 && which <= 2) << "which must be 0 (Q), 1 (K) or 2 (V)";
  auto loss = [&](const TensorF& qq, const TensorF& kk, const TensorF& vv) {
    const TensorF o = ReferenceAttention(qq, kk, vv);
    MAS_CHECK(o.shape() == seed.shape()) << "seed must match O shape";
    double total = 0.0;
    for (std::int64_t i = 0; i < o.elements(); ++i) {
      total += static_cast<double>(o.data()[i]) * seed.data()[i];
    }
    return total;
  };
  TensorF qp = q, kp = k, vp = v;
  TensorF& target = which == 0 ? qp : which == 1 ? kp : vp;
  const float original = target.at(b, h, n, e);
  target.at(b, h, n, e) = original + epsilon;
  const double up = loss(qp, kp, vp);
  target.at(b, h, n, e) = original - epsilon;
  const double down = loss(qp, kp, vp);
  return (up - down) / (2.0 * epsilon);
}

}  // namespace mas::training
