// Functional numerics for the attention backward pass (paper §6 future
// work: "extend MAS-Attention to support training").
//
// Forward:   C = QKᵀ,  P = softmax(C) row-wise,  O = PV.
// Backward, given dO (the gradient of the loss w.r.t. O):
//   dV = Pᵀ · dO
//   dP = dO · Vᵀ
//   dC = P ∘ (dP − rowsum(dP ∘ P))        (softmax Jacobian, row-wise)
//   dQ = dC · K
//   dK = dCᵀ · Q
//
// On a memory-constrained edge device the N×N matrices C and P cannot be
// kept from the forward pass; like FlashAttention's backward, the schedulers
// in backward_scheduler.h *recompute* C and P per row block from Q and K,
// which these kernels also provide as the reference decomposition.
#pragma once

#include "tensor/tensor.h"

namespace mas::training {

// Gradients of the three attention inputs.
struct AttentionGrads {
  TensorF dq;  // (B,H,N,E)
  TensorF dk;  // (B,H,Nkv,E)
  TensorF dv;  // (B,H,Nkv,E)
};

// Row-wise softmax backward: given P = softmax(C) and dP, returns
// dC = P ∘ (dP − rowsum(dP ∘ P)).
TensorF SoftmaxBackwardRows(const TensorF& p, const TensorF& dp);

// Reference attention backward. Q: (B,H,N,E); K, V: (B,H,Nkv,E);
// dout: (B,H,N,E). Recomputes P internally.
AttentionGrads ReferenceAttentionBackward(const TensorF& q, const TensorF& k,
                                          const TensorF& v, const TensorF& dout);

// Tiled backward over query row blocks (the decomposition both backward
// schedulers execute): per row block, recompute C_i and P_i, then accumulate
// dV += P_iᵀ dO_i, dK += dC_iᵀ Q_i and produce dQ_i = dC_i K.
// Numerically identical to ReferenceAttentionBackward up to accumulation
// order.
AttentionGrads TiledAttentionBackward(const TensorF& q, const TensorF& k, const TensorF& v,
                                      const TensorF& dout, std::int64_t nq_block,
                                      std::int64_t nkv_block);

// Finite-difference gradient of a scalar loss L = sum(O ∘ seed) w.r.t. one
// input element, for gradient checking. `which` selects the tensor: 0 = Q,
// 1 = K, 2 = V.
double NumericalGradient(const TensorF& q, const TensorF& k, const TensorF& v,
                         const TensorF& seed, int which, std::int64_t b, std::int64_t h,
                         std::int64_t n, std::int64_t e, float epsilon = 1e-3f);

}  // namespace mas::training
