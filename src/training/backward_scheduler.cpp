#include "training/backward_scheduler.h"

#include <algorithm>
#include <vector>

#include "common/math_util.h"
#include "schedulers/builder.h"
#include "schedulers/common.h"

namespace mas::training {

using detail::RowBlock;
using detail::ScheduleBuilder;
using sim::TaskId;

const char* BackwardMethodName(BackwardMethod method) {
  switch (method) {
    case BackwardMethod::kSequential: return "Backward-Sequential";
    case BackwardMethod::kStream: return "Backward-Stream";
  }
  return "?";
}

namespace {

// Per-block on-chip footprint pieces (bytes).
struct BackwardBytes {
  std::int64_t q = 0;        // Q_i (dO_i and dQ_i are the same size)
  std::int64_t strip = 0;    // one score-sized strip (C_i/P_i or dP_i/dC_i)
  std::int64_t kv_group = 0; // K (or V, or a dK/dV accumulator) per group
  std::int64_t kv_tile = 0;  // one streamed K/V sub-block
};

BackwardBytes ComputeBytes(const AttentionShape& shape, const TilingConfig& tiling,
                           const sim::HardwareConfig& hw) {
  const detail::BlockBytes fwd = detail::ComputeBlockBytes(shape, tiling, hw);
  BackwardBytes bytes;
  bytes.q = fwd.q;
  bytes.strip = fwd.c;
  bytes.kv_group = fwd.kv_group;
  bytes.kv_tile = fwd.kv_tile;
  return bytes;
}

// Q_i, dO_i, dQ_i (double-buffered) + the dK/dV accumulators, which must
// stay resident for the whole (batch, head) group.
std::int64_t StagingBytes(const BackwardBytes& bytes) {
  return 6 * bytes.q + 2 * bytes.kv_group;
}

// `blocks_in_flight` = 1 for the sequential chain, 2 for the stream pipeline
// (block i's strips coexist with block i±1's). Each in-flight block holds
// two strips: C_i/P_i (softmax in place) and dP_i/dC_i (backward in place).
std::int64_t MinFootprint(const BackwardBytes& bytes, int blocks_in_flight) {
  return StagingBytes(bytes) + blocks_in_flight * 2 * bytes.strip + 4 * bytes.kv_tile;
}

bool CanResideKv(const BackwardBytes& bytes, int blocks_in_flight, std::int64_t budget) {
  return StagingBytes(bytes) + blocks_in_flight * 2 * bytes.strip + 2 * bytes.kv_group <=
         budget;
}

std::int64_t ActiveCores(const std::vector<std::vector<RowBlock>>& shards) {
  std::int64_t active = 0;
  for (const auto& s : shards) {
    if (!s.empty()) ++active;
  }
  return std::max<std::int64_t>(active, 1);
}

// Emits the task graph for one core's shard. The `stream` flag selects the
// MAS-style software pipeline; with it off, every block's chain is fully
// ordered through the in-order queues (FLAT-style).
class BackwardPipeline {
 public:
  BackwardPipeline(ScheduleBuilder& b, const AttentionShape& shape,
                   const TilingConfig& tiling, const sim::HardwareConfig& hw, int core,
                   std::int64_t budget, const std::vector<RowBlock>& blocks, bool stream)
      : b_(b),
        shape_(shape),
        tiling_(tiling),
        hw_(hw),
        core_(core),
        blocks_(blocks),
        stream_(stream),
        bytes_(ComputeBytes(shape, tiling, hw)),
        resident_(CanResideKv(bytes_, stream ? 2 : 1, budget)) {}

  void Run() {
    const std::int64_t tr = static_cast<std::int64_t>(blocks_.size());
    if (tr == 0) return;
    if (!stream_ || tr == 1) {
      for (std::int64_t i = 0; i < tr; ++i) {
        EmitFront(i);
        EmitVecChain(i);
        EmitBack(i);
      }
      FlushGroupStores();
      return;
    }
    // Stream pipeline (Alg. 1 generalized): front half of block i+1 runs on
    // the MAC unit while the VEC unit processes block i; the gradient
    // MatMuls of block i-1 fill the remaining MAC slots.
    EmitFront(0);
    EmitVecChain(0);
    for (std::int64_t i = 1; i < tr; ++i) {
      EmitFront(i);      // MAC: C_i, dP_i — overlaps VEC chain of i-1
      EmitVecChain(i);   // VEC: S_i, dsoftmax_i
      EmitBack(i - 1);   // MAC: dQ/dV/dK of i-1 — overlaps VEC chain of i
    }
    EmitBack(tr - 1);
    FlushGroupStores();
  }

 private:
  struct IterState {
    TaskId c_mac = sim::kNoTask;
    TaskId dp_mac = sim::kNoTask;
    TaskId vec_soft = sim::kNoTask;
    TaskId vec_dsoft = sim::kNoTask;
    TaskId q_load = sim::kNoTask;
    TaskId do_load = sim::kNoTask;
  };

  // Loads for block i and the two front MatMuls (C_i, dP_i).
  void EmitFront(std::int64_t i) {
    const RowBlock& rb = blocks_[static_cast<std::size_t>(i)];
    const std::int64_t eb = hw_.element_bytes;
    const std::int64_t groups = rb.groups();
    if (rb.first_in_group() || k_dep_ == sim::kNoTask) {
      EnterGroup(rb);
    }
    IterState it;
    it.q_load = b_.Dma("load Q_i", core_, groups * rb.rows() * shape_.embed * eb, true);
    it.do_load = b_.Dma("load dO_i", core_, groups * rb.rows() * shape_.embed * eb, true);
    std::vector<TaskId> c_deps = {it.q_load};
    if (k_dep_ != sim::kNoTask) c_deps.push_back(k_dep_);
    it.c_mac = b_.Mac("C_i = Q_i K^T (recompute)", core_, groups, rb.rows(), shape_.embed,
                      shape_.kv(), std::move(c_deps));
    std::vector<TaskId> dp_deps = {it.do_load};
    if (v_dep_ != sim::kNoTask) dp_deps.push_back(v_dep_);
    it.dp_mac = b_.Mac("dP_i = dO_i V^T", core_, groups, rb.rows(), shape_.embed,
                       shape_.kv(), std::move(dp_deps));
    iters_.push_back(it);
  }

  // The two VEC stages of block i. The sequential (FLAT-style) dataflow
  // executes *stages* in order — the VEC stage starts only after the whole
  // front MatMul stage (C_i and dP_i) finished — while the stream dataflow
  // lets the softmax begin as soon as its own producer C_i is done.
  void EmitVecChain(std::int64_t i) {
    const RowBlock& rb = blocks_[static_cast<std::size_t>(i)];
    auto& it = iters_[static_cast<std::size_t>(i)];
    std::vector<TaskId> soft_deps = {it.c_mac};
    if (!stream_) soft_deps.push_back(it.dp_mac);
    it.vec_soft = b_.Vec("P_i = softmax(C_i)", core_, rb.groups(), rb.rows(), shape_.kv(),
                         soft_deps);
    // Softmax backward per element: two multiplies, a subtract and a fused
    // row-sum fold — no exponentials, so it is much lighter than the forward
    // softmax.
    it.vec_dsoft = b_.VecElem("dC_i = P*(dP - rowdot)", core_,
                              rb.groups() * rb.rows() * shape_.kv(), 4,
                              detail::DepList{it.vec_soft, it.dp_mac});
  }

  // The three gradient MatMuls of block i and the dQ_i store.
  void EmitBack(std::int64_t i) {
    const RowBlock& rb = blocks_[static_cast<std::size_t>(i)];
    const std::int64_t eb = hw_.element_bytes;
    const std::int64_t groups = rb.groups();
    auto& it = iters_[static_cast<std::size_t>(i)];

    detail::DepList dq_deps = {it.vec_dsoft};
    if (k_dep_ != sim::kNoTask) dq_deps.push_back(k_dep_);
    const TaskId dq = b_.Mac("dQ_i = dC_i K", core_, groups, rb.rows(), shape_.kv(),
                             shape_.embed, dq_deps);
    b_.Dma("store dQ_i", core_, groups * rb.rows() * shape_.embed * eb, false, detail::DepList{dq});

    // Accumulator updates chain on the previous accumulation of the group.
    detail::DepList dv_deps = {it.vec_soft};
    if (dv_chain_ != sim::kNoTask) dv_deps.push_back(dv_chain_);
    dv_chain_ = b_.Mac("dV += P_i^T dO_i", core_, groups, shape_.kv(), rb.rows(),
                       shape_.embed, dv_deps);
    detail::DepList dk_deps = {it.vec_dsoft};
    if (dk_chain_ != sim::kNoTask) dk_deps.push_back(dk_chain_);
    dk_chain_ = b_.Mac("dK += dC_i^T Q_i", core_, groups, shape_.kv(), rb.rows(),
                       shape_.embed, dk_deps);

    const bool last_of_group =
        static_cast<std::size_t>(i) + 1 == blocks_.size() ||
        blocks_[static_cast<std::size_t>(i) + 1].first_in_group();
    if (last_of_group) pending_group_rows_ = rb;
  }

  // Group transition: write the finished dK/dV accumulators back and load
  // the next group's K and V (resident) or arm streaming.
  void EnterGroup(const RowBlock& rb) {
    FlushGroupStores();
    const std::int64_t eb = hw_.element_bytes;
    const std::int64_t kv_bytes = rb.groups() * shape_.kv() * shape_.embed * eb;
    if (resident_) {
      k_dep_ = b_.Dma("load K group", core_, kv_bytes, true);
      v_dep_ = b_.Dma("load V group", core_, kv_bytes, true);
    } else {
      // Streamed: charge the per-block K/V traffic with the block MatMuls.
      // For simplicity the whole-group bytes are issued as one streaming
      // descriptor per use-site group (the cost model charges identical
      // DRAM traffic; finer interleavings only shift start cycles).
      k_dep_ = b_.Dma("stream K group", core_, kv_bytes, true);
      v_dep_ = b_.Dma("stream V group", core_, kv_bytes, true);
    }
    group_rb_ = rb;
    have_group_ = true;
  }

  void FlushGroupStores() {
    if (!have_group_) return;
    const std::int64_t eb = hw_.element_bytes;
    const std::int64_t kv_bytes = group_rb_.groups() * shape_.kv() * shape_.embed * eb;
    if (dk_chain_ != sim::kNoTask) {
      b_.Dma("store dK group", core_, kv_bytes, false, detail::DepList{dk_chain_});
    }
    if (dv_chain_ != sim::kNoTask) {
      b_.Dma("store dV group", core_, kv_bytes, false, detail::DepList{dv_chain_});
    }
    dk_chain_ = sim::kNoTask;
    dv_chain_ = sim::kNoTask;
  }

  ScheduleBuilder& b_;
  const AttentionShape& shape_;
  const TilingConfig& tiling_;
  const sim::HardwareConfig& hw_;
  int core_;
  const std::vector<RowBlock>& blocks_;
  bool stream_;
  BackwardBytes bytes_;
  bool resident_;
  std::vector<IterState> iters_;
  TaskId k_dep_ = sim::kNoTask;
  TaskId v_dep_ = sim::kNoTask;
  TaskId dk_chain_ = sim::kNoTask;
  TaskId dv_chain_ = sim::kNoTask;
  RowBlock group_rb_;
  RowBlock pending_group_rows_;
  bool have_group_ = false;
};

class BackwardImpl final : public BackwardScheduler {
 public:
  explicit BackwardImpl(BackwardMethod method) : method_(method) {}

  BackwardMethod method() const override { return method_; }

  bool Fits(const AttentionShape& shape, const TilingConfig& tiling,
            const sim::HardwareConfig& hw) const override {
    tiling.Validate(shape);
    const BackwardBytes bytes = ComputeBytes(shape, tiling, hw);
    const auto blocks = detail::EnumerateRowBlocks(shape, tiling);
    const auto shards = detail::ShardAcrossCores(blocks, hw);
    const std::int64_t budget = hw.l1_bytes / ActiveCores(shards);
    return MinFootprint(bytes, method_ == BackwardMethod::kStream ? 2 : 1) <= budget;
  }

  sim::SimResult Simulate(const AttentionShape& shape, const TilingConfig& tiling,
                          const sim::HardwareConfig& hw, const sim::EnergyModel& em,
                          bool record_timeline) const override {
    MAS_CHECK(Fits(shape, tiling, hw))
        << "backward tiling does not fit: " << tiling.ToString();
    ScheduleBuilder b(hw, em, record_timeline);
    const auto blocks = detail::EnumerateRowBlocks(shape, tiling);
    const auto shards = detail::ShardAcrossCores(blocks, hw);
    const std::int64_t budget = hw.l1_bytes / ActiveCores(shards);
    const int in_flight = method_ == BackwardMethod::kStream ? 2 : 1;
    const BackwardBytes bytes = ComputeBytes(shape, tiling, hw);
    for (int core = 0; core < static_cast<int>(shards.size()); ++core) {
      const auto& shard = shards[static_cast<std::size_t>(core)];
      if (shard.empty()) continue;
      BackwardPipeline pipeline(b, shape, tiling, hw, core, budget, shard,
                                method_ == BackwardMethod::kStream);
      pipeline.Run();
    }
    const std::int64_t peak =
        StagingBytes(bytes) + in_flight * 2 * bytes.strip +
        (CanResideKv(bytes, in_flight, budget) ? 2 * bytes.kv_group : 4 * bytes.kv_tile);
    return b.Finish(peak);
  }

 private:
  BackwardMethod method_;
};

}  // namespace

AttentionGrads BackwardScheduler::Execute(const TensorF& q, const TensorF& k,
                                          const TensorF& v, const TensorF& dout,
                                          const TilingConfig& tiling) const {
  // Both dataflows execute the identical tile decomposition; only the
  // hardware schedule differs.
  return TiledAttentionBackward(q, k, v, dout, tiling.nq, tiling.nkv);
}

std::unique_ptr<BackwardScheduler> MakeBackwardScheduler(BackwardMethod method) {
  return std::make_unique<BackwardImpl>(method);
}

}  // namespace mas::training
