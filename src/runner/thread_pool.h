// Minimal parallel-for used by the sweep runner.
//
// ParallelFor(n, jobs, fn) invokes fn(i) for every i in [0, n) across up to
// `jobs` worker threads. Work is handed out through an atomic cursor, so the
// set of indices each worker processes is nondeterministic — callers must
// write results into per-index slots (never append to shared containers) to
// keep the overall outcome independent of the interleaving. Exceptions thrown
// by fn are captured and the first one (by index) is rethrown on the calling
// thread after all workers join, so a failing item cannot leak threads.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace mas::runner {

template <typename Fn>
void ParallelFor(std::size_t n, int jobs, Fn&& fn) {
  if (n == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(n, jobs < 1 ? 1 : static_cast<std::size_t>(jobs));

  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::size_t first_error_index = n;
  std::exception_ptr first_error;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error || i < first_error_index) {
          first_error = std::current_exception();
          first_error_index = i;
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) threads.emplace_back(worker);
  for (auto& thread : threads) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mas::runner
