// Minimal parallel-for used by the sweep runner.
//
// ParallelFor(n, jobs, fn) invokes fn(i) for every i in [0, n) across up to
// `jobs` worker threads. Work is handed out through an atomic cursor, so the
// set of indices each worker processes is nondeterministic — callers must
// write results into per-index slots (never append to shared containers) to
// keep the overall outcome independent of the interleaving. Exceptions thrown
// by fn are captured and the first one (by index) is rethrown on the calling
// thread after all workers join, so a failing item cannot leak threads.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace mas::runner {

// Worker count actually used for (n items, requested jobs): clamped to the
// machine so --jobs=8 on a 2-thread box does not oversubscribe.
// hardware_concurrency() may return 0 ("not computable"); treat that as
// unknown and honor the requested job count. Shared with callers that
// provision per-worker scratch (e.g. the tiling search's engines).
inline std::size_t EffectiveWorkers(std::size_t n, int jobs) {
  // mas-lint: allow(concurrency-leak) jobs resolution: clamps worker fan-out only;
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const std::size_t hardware =
      hw_threads == 0 ? static_cast<std::size_t>(-1) : hw_threads;
  return std::min<std::size_t>(
      {n, jobs < 1 ? std::size_t{1} : static_cast<std::size_t>(jobs), hardware});
}

// As ParallelFor below, but fn receives (worker, i) where `worker` is a dense
// id in [0, workers). Callers use it to hand each worker thread its own
// reusable scratch state (the tiling search gives each worker one
// sim::Engine whose arenas persist across evaluations).
template <typename Fn>
void ParallelForWorkers(std::size_t n, int jobs, Fn&& fn) {
  if (n == 0) return;
  const std::size_t workers = EffectiveWorkers(n, jobs);

  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(std::size_t{0}, i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::size_t first_error_index = n;
  std::exception_ptr first_error;

  auto worker = [&](std::size_t worker_id) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(worker_id, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error || i < first_error_index) {
          first_error = std::current_exception();
          first_error_index = i;
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

template <typename Fn>
void ParallelFor(std::size_t n, int jobs, Fn&& fn) {
  ParallelForWorkers(n, jobs, [&fn](std::size_t, std::size_t i) { fn(i); });
}

}  // namespace mas::runner
