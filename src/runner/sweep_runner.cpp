#include "runner/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "common/json_writer.h"
#include "common/status.h"
#include "report/json_report.h"
#include "runner/thread_pool.h"

namespace mas::runner {

namespace {

// Group identity for cross-method comparisons: one (shape, hardware) point.
std::string GroupKey(const JobResult& r) {
  std::ostringstream os;
  const AttentionShape& s = r.job.shape;
  os << s.name << '|' << s.batch << ',' << s.heads << ',' << s.seq_len << ',' << s.embed
     << ',' << s.kv_len << '|' << r.job.hw.CacheKey();
  return os.str();
}

// Methods in order of first appearance across the report (keeps table/JSON
// column order deterministic and independent of thread count).
std::vector<Method> MethodsInOrder(const std::vector<JobResult>& results) {
  std::vector<Method> methods;
  for (const auto& r : results) {
    if (std::find(methods.begin(), methods.end(), r.job.method) == methods.end()) {
      methods.push_back(r.job.method);
    }
  }
  return methods;
}

// (shape, hardware) groups in order of first appearance, each holding its
// member result indices.
struct Group {
  std::string key;
  std::vector<std::size_t> members;
};

std::vector<Group> GroupsInOrder(const std::vector<JobResult>& results) {
  std::vector<Group> groups;
  std::unordered_map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::string key = GroupKey(results[i]);
    auto [it, inserted] = index.emplace(std::move(key), groups.size());
    if (inserted) {
      groups.push_back(Group{it->first, {i}});
    } else {
      groups[it->second].members.push_back(i);
    }
  }
  return groups;
}

const JobResult* GroupMember(const std::vector<JobResult>& results, const Group& group,
                             Method m) {
  for (std::size_t i : group.members) {
    if (results[i].job.method == m && results[i].ok()) return &results[i];
  }
  return nullptr;
}

// Geomean of target-vs-baseline cycles over precomputed groups (shared by
// GeomeanSpeedup and ToJson so the grouping is built once per document).
double GeomeanFromGroups(const std::vector<JobResult>& results,
                         const std::vector<Group>& groups, Method target,
                         Method baseline) {
  double log_sum = 0.0;
  std::int64_t count = 0;
  for (const Group& group : groups) {
    const JobResult* t = GroupMember(results, group, target);
    const JobResult* b = GroupMember(results, group, baseline);
    if (t == nullptr || b == nullptr || t->sim.cycles == 0) continue;
    log_sum += std::log(static_cast<double>(b->sim.cycles) /
                        static_cast<double>(t->sim.cycles));
    ++count;
  }
  return count == 0 ? 0.0 : std::exp(log_sum / count);
}

}  // namespace

std::string SweepJob::CacheKey() const {
  // The dedup cache and the plan store key the same request the same way
  // (shape display name excluded on both sides). The planner additionally
  // appends its SearchSpec fingerprint to policy-based plan keys; the
  // runner's key omits it because one runner has exactly one spec.
  const std::string name = MethodName(method);
  return tiling.has_value() ? PlanKey(name, shape, hw, *tiling)
                            : PlanKey(name, shape, hw, policy);
}

std::vector<SweepJob> SweepGrid::Jobs() const {
  MAS_CHECK(!shapes.empty()) << "sweep grid has no shapes";
  MAS_CHECK(!methods.empty()) << "sweep grid has no methods";
  MAS_CHECK(!hardware.empty()) << "sweep grid has no hardware configs";
  std::vector<SweepJob> jobs;
  jobs.reserve(shapes.size() * methods.size() * hardware.size());
  for (const AttentionShape& shape : shapes) {
    for (const sim::HardwareConfig& hw : hardware) {
      for (Method method : methods) {
        SweepJob job;
        job.shape = shape;
        job.method = method;
        job.hw = hw;
        job.tiling = tiling;
        job.policy = policy;
        jobs.push_back(std::move(job));
      }
    }
  }
  return jobs;
}

SweepRunner::SweepRunner(SweepOptions options, sim::EnergyModel energy_model,
                         PlannerOptions planner_options)
    : options_(options), planner_(energy_model, std::move(planner_options)) {
  MAS_CHECK(options_.jobs >= 1) << "SweepOptions::jobs must be >= 1, got " << options_.jobs;
}

SweepRunner::CacheEntry SweepRunner::Evaluate(const SweepJob& job) {
  CacheEntry entry;
  try {
    const TuningPlan plan =
        job.tiling.has_value()
            ? planner_.PlanFixed(job.shape, job.method, job.hw, *job.tiling)
            : planner_.Plan(job.shape, job.method, job.hw, job.policy);
    entry.tiling = plan.tiling;
    entry.sim = planner_.Simulate(plan, job.hw);
  } catch (const std::exception& e) {
    entry.error = e.what();
  }
  return entry;
}

SweepReport SweepRunner::Run(const SweepGrid& grid) { return RunJobs(grid.Jobs()); }

SweepReport SweepRunner::RunJobs(const std::vector<SweepJob>& jobs) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t evals_before = planner_.search_evaluations();
  const std::int64_t reused_before = planner_.plans_reused();

  SweepReport report;
  report.results.resize(jobs.size());
  report.stats.total_jobs = static_cast<std::int64_t>(jobs.size());

  // Deduplicate up front (single-threaded) so the execution phase is a plain
  // parallel-for over unique work items; this keeps cache-hit accounting and
  // results independent of worker interleaving.
  std::vector<std::string> keys(jobs.size());
  std::vector<std::size_t> job_to_unique(jobs.size());
  std::vector<std::size_t> unique_jobs;  // representative job index per item
  if (options_.cache) {
    std::unordered_map<std::string, std::size_t> seen;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      keys[i] = jobs[i].CacheKey();
      auto [it, inserted] = seen.emplace(keys[i], unique_jobs.size());
      if (inserted) unique_jobs.push_back(i);
      job_to_unique[i] = it->second;
    }
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      job_to_unique[i] = i;
      unique_jobs.push_back(i);
    }
  }

  // Resolve persistent-cache hits, then execute the remainder concurrently.
  std::vector<CacheEntry> entries(unique_jobs.size());
  std::vector<char> precached(unique_jobs.size(), 0);
  std::vector<std::size_t> to_run;
  for (std::size_t u = 0; u < unique_jobs.size(); ++u) {
    if (options_.cache) {
      auto it = cache_.find(keys[unique_jobs[u]]);
      if (it != cache_.end()) {
        entries[u] = it->second;
        precached[u] = 1;
        continue;
      }
    }
    to_run.push_back(u);
  }

  ParallelFor(to_run.size(), options_.jobs, [&](std::size_t i) {
    const std::size_t u = to_run[i];
    entries[u] = Evaluate(jobs[unique_jobs[u]]);
  });

  if (options_.cache) {
    for (std::size_t u : to_run) cache_[keys[unique_jobs[u]]] = entries[u];
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::size_t u = job_to_unique[i];
    JobResult& r = report.results[i];
    r.job = jobs[i];
    r.tiling = entries[u].tiling;
    r.sim = entries[u].sim;
    r.error = entries[u].error;
    // A job is a cache hit unless it is the representative of a unique item
    // that actually executed this Run().
    r.from_cache = !(unique_jobs[u] == i && !precached[u]);
    if (!r.ok()) ++report.stats.failed_jobs;
    if (r.from_cache) {
      ++report.stats.cache_hits;
    } else {
      ++report.stats.simulated_jobs;
    }
  }

  report.stats.search_evaluations = planner_.search_evaluations() - evals_before;
  report.stats.plans_reused = planner_.plans_reused() - reused_before;
  report.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return report;
}

TextTable SweepReport::ToTable() const {
  TextTable table({"Shape", "HW", "Method", "tiling", "Mcycles", "ms", "energy GpJ",
                   "DRAM MB", "MAC util", "overwrites", "status"});
  for (const JobResult& r : results) {
    if (!r.ok()) {
      table.AddRow({r.job.shape.ToString(), r.job.hw.name, MethodName(r.job.method), "-", "-",
                    "-", "-", "-", "-", "-", "error: " + r.error});
      continue;
    }
    const auto& s = r.sim;
    table.AddRow(
        {r.job.shape.ToString(), r.job.hw.name, MethodName(r.job.method),
         r.tiling.ToString(), FormatFixed(s.cycles / 1e6, 3),
         FormatFixed(s.cycles / (r.job.hw.frequency_ghz * 1e6), 3),
         FormatFixed(s.energy.total_pj() / 1e9, 3),
         FormatFixed((s.dram_read_bytes + s.dram_write_bytes) / (1024.0 * 1024.0), 2),
         FormatPercent(s.MacUtilization()), std::to_string(s.overwrite_events),
         r.from_cache ? "cached" : "ok"});
  }
  return table;
}

TextTable SweepReport::SpeedupTable(Method target) const {
  const std::vector<Method> methods = MethodsInOrder(results);
  std::vector<std::string> header = {"Shape", "HW"};
  for (Method m : methods) header.push_back(std::string(MethodName(m)) + " Mcyc");
  for (Method m : methods) {
    if (m != target) {
      header.push_back(std::string(MethodName(target)) + " vs " + MethodName(m));
    }
  }
  TextTable table(header);

  std::vector<std::vector<double>> speedups(methods.size());
  for (const Group& group : GroupsInOrder(results)) {
    const JobResult* target_run = GroupMember(results, group, target);
    std::vector<std::string> row = {results[group.members.front()].job.shape.ToString(),
                                    results[group.members.front()].job.hw.name};
    for (Method m : methods) {
      const JobResult* run = GroupMember(results, group, m);
      row.push_back(run ? FormatFixed(run->sim.cycles / 1e6, 3) : "-");
    }
    for (std::size_t mi = 0; mi < methods.size(); ++mi) {
      if (methods[mi] == target) continue;
      const JobResult* run = GroupMember(results, group, methods[mi]);
      if (target_run != nullptr && run != nullptr && target_run->sim.cycles > 0) {
        const double speedup = static_cast<double>(run->sim.cycles) /
                               static_cast<double>(target_run->sim.cycles);
        speedups[mi].push_back(speedup);
        row.push_back(FormatSpeedup(speedup));
      } else {
        row.push_back("-");
      }
    }
    table.AddRow(std::move(row));
  }

  table.AddRule();
  std::vector<std::string> geo = {"Geomean", "-"};
  for (std::size_t mi = 0; mi < methods.size(); ++mi) geo.push_back("-");
  for (std::size_t mi = 0; mi < methods.size(); ++mi) {
    if (methods[mi] == target) continue;
    if (speedups[mi].empty()) {
      geo.push_back("-");
      continue;
    }
    double log_sum = 0.0;
    for (double v : speedups[mi]) log_sum += std::log(v);
    geo.push_back(FormatSpeedup(std::exp(log_sum / speedups[mi].size())));
  }
  table.AddRow(std::move(geo));
  return table;
}

double SweepReport::GeomeanSpeedup(Method target, Method baseline) const {
  return GeomeanFromGroups(results, GroupsInOrder(results), target, baseline);
}

std::string SweepReport::ToJson(Method target) const {
  JsonWriter w;
  w.BeginObject();

  w.BeginObject("sweep");
  w.KeyValue("total_jobs", stats.total_jobs);
  w.KeyValue("failed_jobs", stats.failed_jobs);
  w.KeyValue("cache_hits", stats.cache_hits);
  w.KeyValue("simulated_jobs", stats.simulated_jobs);
  // wall_seconds deliberately omitted: the document must be byte-identical
  // across thread counts and machines for the determinism guarantee.
  w.EndObject();

  w.BeginArray("results");
  for (const JobResult& r : results) {
    w.BeginObject();
    report::WriteShapeJson(w, r.job.shape);
    w.KeyValue("hardware", r.job.hw.name);
    if (r.ok()) {
      report::WriteRunBodyJson(w, r.job.method, r.tiling, r.job.hw, r.sim);
      w.KeyValue("from_cache", r.from_cache);
    } else {
      w.KeyValue("method", std::string(MethodName(r.job.method)));
      w.KeyValue("error", r.error);
    }
    w.EndObject();
  }
  w.EndArray();

  const std::vector<Method> methods = MethodsInOrder(results);
  w.BeginObject("summary");
  w.BeginArray("method_totals");
  for (Method m : methods) {
    std::uint64_t cycles = 0;
    sim::EnergyBreakdown energy;
    std::int64_t dram_bytes = 0;
    std::int64_t n = 0;
    for (const JobResult& r : results) {
      if (r.job.method != m || !r.ok()) continue;
      cycles += r.sim.cycles;
      energy += r.sim.energy;
      dram_bytes += r.sim.dram_read_bytes + r.sim.dram_write_bytes;
      ++n;
    }
    w.BeginObject();
    w.KeyValue("method", std::string(MethodName(m)));
    w.KeyValue("jobs", n);
    w.KeyValue("total_cycles", cycles);
    w.KeyValue("total_dram_bytes", dram_bytes);
    w.BeginObject("total_energy_pj");
    w.KeyValue("dram", energy.dram_pj);
    w.KeyValue("l1", energy.l1_pj);
    w.KeyValue("l0", energy.l0_pj);
    w.KeyValue("mac_pe", energy.mac_pe_pj);
    w.KeyValue("vec_pe", energy.vec_pe_pj);
    w.KeyValue("total", energy.total_pj());
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  const bool has_target =
      std::find(methods.begin(), methods.end(), target) != methods.end();
  if (has_target) {
    const std::vector<Group> groups = GroupsInOrder(results);
    w.BeginObject("geomean_speedup");
    w.KeyValue("target", std::string(MethodName(target)));
    w.BeginObject("vs");
    for (Method m : methods) {
      if (m == target) continue;
      const double geomean = GeomeanFromGroups(results, groups, target, m);
      if (geomean > 0.0) w.KeyValue(MethodName(m), geomean);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();
  return w.Take();
}

const JobResult* SweepReport::Find(const std::string& shape_name, Method method,
                                   const std::string& hw_name) const {
  for (const JobResult& r : results) {
    if (r.job.shape.name == shape_name && r.job.method == method &&
        r.job.hw.name == hw_name && r.ok()) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace mas::runner
