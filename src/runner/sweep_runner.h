// SweepRunner: concurrent batch evaluation of attention-dataflow simulations.
//
// The benches and the mas_run CLI all reduce to the same pattern — evaluate a
// grid of (method x shape x hardware) points, each via an offline tiling
// choice plus one Simulate() call — and since the Planner facade landed the
// runner is a thin concurrency layer over it:
//
//  * a declarative SweepGrid expands into a deterministic job list
//    (shape-major, then hardware, then method — the paper's table order);
//  * jobs execute on a pool of worker threads (SweepOptions::jobs), each
//    resolving its tiling through the shared mas::Planner (plan store +
//    registered search strategies) and simulating the resulting plan;
//  * identical jobs are deduplicated through a keyed result cache that also
//    persists across Run() calls on the same runner, so refining a sweep only
//    pays for the new points; the cache key IS the planner's PlanKey(), so
//    the two layers agree on job identity;
//  * results land in per-job slots and are aggregated in grid order, so the
//    report (table or JSON) is byte-identical regardless of thread count.
//
// Warm starts across processes: load a plan file into planner().store()
// before Run() (mas_run's --plan-cache flag does this) and every covered job
// skips its search entirely — SweepStats::search_evaluations drops to zero
// while the report bytes stay identical.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/table.h"
#include "dataflow/attention_shape.h"
#include "planner/planner.h"
#include "schedulers/scheduler.h"
#include "sim/energy_model.h"
#include "sim/hardware_config.h"

namespace mas::runner {

// Compat alias: TilingPolicy moved to planner/planner.h with the facade.
using TilingPolicy = mas::TilingPolicy;

// One (method, shape, hardware) evaluation request.
struct SweepJob {
  AttentionShape shape;
  Method method = Method::kMas;
  sim::HardwareConfig hw;
  std::optional<TilingConfig> tiling;  // fixed tiling; nullopt = policy
  TilingPolicy policy = TilingPolicy::kAutoTile;

  // Stable identity for deduplication: every field that can change the
  // simulation outcome is serialized (shape dims, method, tiling request and
  // the full hardware parameter set — not just its preset name). This is
  // the planner's PlanKey() for the job (the planner's own store keys
  // additionally carry its SearchSpec fingerprint; a runner has one spec,
  // so its dedup key can omit it).
  std::string CacheKey() const;
};

// Declarative cross product. Jobs() expands shapes x hardware x methods in
// deterministic order (shape-major; methods innermost so per-shape method
// groups stay contiguous, mirroring the paper's tables).
struct SweepGrid {
  std::vector<AttentionShape> shapes;
  std::vector<Method> methods;
  std::vector<sim::HardwareConfig> hardware;
  std::optional<TilingConfig> tiling;
  TilingPolicy policy = TilingPolicy::kAutoTile;

  std::vector<SweepJob> Jobs() const;
};

// Outcome of one job. `error` is non-empty when the job failed (e.g. a fixed
// tiling that does not fit); failures are per-job, never abort the sweep.
struct JobResult {
  SweepJob job;
  TilingConfig tiling;   // resolved tiling actually simulated
  sim::SimResult sim;
  bool from_cache = false;
  std::string error;

  bool ok() const { return error.empty(); }
};

struct SweepStats {
  std::int64_t total_jobs = 0;
  std::int64_t simulated_jobs = 0;  // unique (method, shape, hw) evaluations
  std::int64_t cache_hits = 0;      // duplicates served from the result cache
  std::int64_t failed_jobs = 0;
  // Simulator evaluations the planner's searches spent during this Run()
  // (deterministic for any thread count; zero when every job's plan came
  // warm from the plan store).
  std::int64_t search_evaluations = 0;
  // Plans served from the store during this Run() (pre-loaded plan caches
  // and duplicate tiling requests land here).
  std::int64_t plans_reused = 0;
  double wall_seconds = 0.0;
};

struct SweepOptions {
  int jobs = 1;       // worker threads; 1 = fully serial reference mode
  bool cache = true;  // dedup identical jobs and reuse across Run() calls
};

// Aggregated sweep outcome. Results are in grid order; every aggregation
// below iterates that order, so output is deterministic by construction
// (SweepStats' wall clock and planner counters are deliberately excluded
// from ToJson()).
struct SweepReport {
  std::vector<JobResult> results;
  SweepStats stats;

  // Per-job rows: shape, hardware, method, tiling, cycles, latency, energy,
  // DRAM traffic, MAC utilization, overwrites.
  TextTable ToTable() const;

  // Cross-job summary: one row per (shape, hardware) with each method's
  // Mcycles and the speedup of `target` over every other method, plus a
  // geomean footer. Jobs whose method set lacks `target` are skipped.
  TextTable SpeedupTable(Method target = Method::kMas) const;

  // Machine-readable aggregate: per-job rows plus cross-job summaries
  // (per-method cycle/energy totals and geomean speedups vs `target` when it
  // is present). Deterministic: identical grids produce identical bytes
  // regardless of SweepOptions::jobs.
  std::string ToJson(Method target = Method::kMas) const;

  // First successful result matching (shape name, method, hw name), or
  // nullptr.
  const JobResult* Find(const std::string& shape_name, Method method,
                        const std::string& hw_name) const;

  // Geomean of target-vs-baseline cycle speedup across all (shape, hw) groups
  // containing both methods. Returns 0 when no group qualifies.
  double GeomeanSpeedup(Method target, Method baseline) const;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {}, sim::EnergyModel energy_model = {},
                       PlannerOptions planner_options = {});

  // Expands the grid and runs it. Safe to call repeatedly; the result cache
  // carries over between calls (when options.cache is set).
  SweepReport Run(const SweepGrid& grid);

  // Runs an explicit job list (kept in the given order in the report).
  SweepReport RunJobs(const std::vector<SweepJob>& jobs);

  // The shared planning facade: load a plan cache into planner().store()
  // before Run() to warm-start, save it afterwards to persist new tunings.
  Planner& planner() { return planner_; }
  const Planner& planner() const { return planner_; }

  std::int64_t cache_size() const { return static_cast<std::int64_t>(cache_.size()); }
  void ClearCache() { cache_.clear(); }

  const SweepOptions& options() const { return options_; }

 private:
  struct CacheEntry {
    TilingConfig tiling;
    sim::SimResult sim;
    std::string error;
  };

  CacheEntry Evaluate(const SweepJob& job);

  SweepOptions options_;
  Planner planner_;
  std::unordered_map<std::string, CacheEntry> cache_;
};

}  // namespace mas::runner
