// Regenerates paper Figs. 2-3: the proactive buffer overwrite in action.
// Shrinks the on-chip budget / lengthens the sequence until P_i cannot be
// placed, then reports which operand was overwritten (V while the MAC is in
// PV — Fig. 2; K while it is in QK^T — Fig. 3), the halt/reload bookkeeping,
// and the resulting extra DRAM reads.
#include <iostream>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/impls.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

int main() {
  using namespace mas;
  const sim::EnergyModel em;

  std::cout << "=== Figs. 2-3: Proactive buffer overwrite under L1 pressure ===\n\n";

  TextTable table({"L1 MB", "seq len", "tiling", "overwrites", "V evictions (Fig.2)",
                   "K evictions (Fig.3)", "reload KB", "extra reads vs FLAT", "MAS Mcyc",
                   "FLAT Mcyc"});

  const auto mas = MakeScheduler(Method::kMas);
  const auto flat = MakeScheduler(Method::kFlat);

  struct Case {
    std::int64_t l1_mb;
    std::int64_t seq;
    std::int64_t embed;
    TilingConfig tiling;
  };
  // Pressure cases are chosen so K/V residency is established (staging + one
  // strip + K + V fits) but the *second* pipeline strip does not — exactly
  // the Figs. 2-3 situation where P_i must overwrite a reloadable operand.
  const Case cases[] = {
      {5, 1024, 64, {1, 1, 256, 1024}},  // ample: no overwrite
      {2, 2048, 64, {1, 1, 192, 256}},   // tight: overwrite fires
      {1, 2048, 64, {1, 1, 96, 256}},    // tighter
      {1, 4096, 32, {1, 1, 48, 512}},    // long sequence (SD-UNet-like)
  };
  for (const Case& c : cases) {
    sim::HardwareConfig hw = sim::EdgeSimConfig();
    hw.cores.resize(1);  // single core owns the whole budget, like §5.6
    hw.l1_bytes = c.l1_mb * 1024 * 1024;
    const AttentionShape shape{"probe", 1, 1, c.seq, c.embed};
    if (!mas->Fits(shape, c.tiling, hw)) {
      std::cout << "skipping infeasible case L1=" << c.l1_mb << "MB seq=" << c.seq << "\n";
      continue;
    }
    const auto r = mas->Simulate(shape, c.tiling, hw, em);
    const auto profile = MasScheduler::ProfileOverwrites(shape, c.tiling, hw);
    const TilingConfig flat_tiling = search::AutoTile(*flat, shape, hw, em);
    const auto flat_r = flat->Simulate(shape, flat_tiling, hw, em);
    table.AddRow({std::to_string(c.l1_mb), std::to_string(c.seq), c.tiling.ToString(),
                  std::to_string(r.overwrite_events), std::to_string(profile.v_overwrites),
                  std::to_string(profile.k_overwrites),
                  FormatFixed(r.reload_bytes / 1024.0, 1),
                  FormatFixed((r.dram_read_bytes - flat_r.dram_read_bytes) / 1024.0, 1) + " KB",
                  FormatFixed(r.cycles / 1e6, 3), FormatFixed(flat_r.cycles / 1e6, 3)});
  }
  std::cout << table.ToString() << "\n";
  std::cout << "P_i (softmax output) is never evicted — it exists only on-chip.\n";
  std::cout << "K/V evictions are repaired by DRAM reloads + one redone MAC tile.\n";
  return 0;
}
