// Extension study (paper §6 future work): the attention *backward* pass on
// the simulated edge device, sequential vs MAS-style stream-pipelined
// dataflow. Backward runs five MatMuls per row block against two VEC stages
// (forward: two and one), so the MAC:VEC ratio is higher and the pipeline's
// headroom smaller — this bench quantifies how much of the forward-pass win
// carries over to training.
#include <iostream>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"
#include "training/backward_scheduler.h"

int main() {
  using namespace mas;
  using training::BackwardMethod;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;

  std::cout << "=== Training extension: attention backward pass, sequential vs stream ===\n";
  std::cout << hw.Describe() << "\n";

  const auto seq = training::MakeBackwardScheduler(BackwardMethod::kSequential);
  const auto stream = training::MakeBackwardScheduler(BackwardMethod::kStream);
  const auto fwd = MakeScheduler(Method::kMas);

  TextTable table({"Network", "fwd MAS Mcyc", "bwd seq Mcyc", "bwd stream Mcyc",
                   "stream speedup", "bwd/fwd ratio", "bwd energy GpJ"});
  std::vector<double> speedups;
  for (const auto& net : Table1Networks()) {
    const TilingConfig fwd_tiling = search::AutoTile(*fwd, net.shape, hw, em);
    const auto fwd_r = fwd->Simulate(net.shape, fwd_tiling, hw, em);

    // Backward shares the forward tiling family; pick the best feasible
    // candidate for the heavier stream footprint.
    TilingConfig bwd_tiling = fwd_tiling;
    if (!stream->Fits(net.shape, bwd_tiling, hw)) {
      bwd_tiling.nq = std::max<std::int64_t>(1, bwd_tiling.nq / 2);
      while (!stream->Fits(net.shape, bwd_tiling, hw) && bwd_tiling.nq > 1) {
        bwd_tiling.nq /= 2;
      }
    }
    const auto seq_r = seq->Simulate(net.shape, bwd_tiling, hw, em);
    const auto stream_r = stream->Simulate(net.shape, bwd_tiling, hw, em);
    const double speedup =
        static_cast<double>(seq_r.cycles) / static_cast<double>(stream_r.cycles);
    speedups.push_back(speedup);
    table.AddRow({net.name, FormatFixed(fwd_r.cycles / 1e6, 3),
                  FormatFixed(seq_r.cycles / 1e6, 3), FormatFixed(stream_r.cycles / 1e6, 3),
                  FormatSpeedup(speedup),
                  FormatFixed(static_cast<double>(stream_r.cycles) /
                                  static_cast<double>(fwd_r.cycles),
                              2),
                  FormatFixed(stream_r.energy.total_pj() / 1e9, 3)});
  }
  table.AddRule();
  table.AddRow({"Geometric Mean", "-", "-", "-", FormatSpeedup(GeoMean(speedups)), "-", "-"});
  std::cout << table.ToString() << "\n";
  std::cout << "Backward carries ~2.5x the forward MAC work (5 vs 2 MatMuls per block), so\n";
  std::cout << "the VEC stages are easier to hide: expect a smaller but still consistent\n";
  std::cout << "stream-over-sequential win, and a bwd/fwd cycle ratio between 2x and 3x.\n";
  return 0;
}
