// Regenerates paper Fig. 6: the energy-consumption breakdown per network and
// method across Off-Chip (DRAM), On-Chip (L1, L0) memories, and the PEs in
// the MAC and VEC units.
//
// Expected shape vs the paper: Layer-Wise/Soft-Pipe dominated by DRAM energy
// (intermediate round trips); TileFlow heavy on L1; PE energy constant across
// methods for each network (§5.3.3).
#include <iostream>

#include "report/harness.h"
#include "sim/hardware_config.h"

int main() {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;

  std::cout << "=== Fig. 6: Energy breakdown (DRAM / L1 / L0 / PE-MAC / PE-VEC) ===\n";
  std::cout << hw.Describe() << "\n";

  const auto comparisons = report::RunComparison(Table1Networks(), hw, em);
  const TextTable table = report::BuildEnergyBreakdownTable(comparisons);
  std::cout << table.ToString() << "\n";

  // §5.3.3 check printed explicitly: PE energy is schedule-invariant.
  std::cout << "PE-MAC energy spread across methods per network (should be ~0 except MAS "
               "redo tiles):\n";
  for (const auto& cmp : comparisons) {
    double lo = 1e300, hi = 0.0;
    for (const auto& run : cmp.runs) {
      lo = std::min(lo, run.sim.energy.mac_pe_pj);
      hi = std::max(hi, run.sim.energy.mac_pe_pj);
    }
    std::cout << "  " << cmp.network.name << ": " << FormatPercent((hi - lo) / hi) << "\n";
  }
  return 0;
}
