// Ablation (DESIGN.md): value of the proactive overwrite strategy.
//
// Two views, both on an L1-tight single-core configuration (1 MB):
//
//  1. Fixed pressured tiling — a large-strip configuration whose two
//     pipeline strips do not fit next to resident K/V, so the overwrite must
//     fire. Compares (a) full MAS (evict K/V, reload, redo) against (b) MAS
//     with the overwrite disabled (MasNoOverwriteScheduler: pressured
//     schedules drain sequentially in FLAT order — an upper bound on the
//     loss).
//  2. Searched comparison — (a) tuned MAS with overwrite allowed vs (c) the
//     best tiling among those that never trigger the overwrite. This shows
//     whether the overwrite unlocks tilings the quiet search cannot reach.
#include <iostream>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

int main() {
  using namespace mas;
  const sim::EnergyModel em;
  sim::HardwareConfig hw = sim::EdgeSimConfig();
  hw.cores.resize(1);
  hw.l1_bytes = 1 * 1024 * 1024;  // pressure: 1 MB budget

  const AttentionShape shape{"longseq", 1, 2, 2048, 64};
  const auto mas = MakeScheduler(Method::kMas);
  const auto no_ow = MakeScheduler(Method::kMasNoOverwrite);

  std::cout << "=== Ablation: proactive overwrite strategy (" << shape.ToString()
            << ", 1 MB L1, 1 core) ===\n\n";

  TextTable table({"Variant", "tiling", "Mcycles", "overwrites", "reload KB",
                   "DRAM reads MB", "energy GpJ"});
  auto add = [&](const std::string& name, const TilingConfig& t, const sim::SimResult& r) {
    table.AddRow({name, t.ToString(), FormatFixed(r.cycles / 1e6, 3),
                  std::to_string(r.overwrite_events), FormatFixed(r.reload_bytes / 1024.0, 1),
                  FormatFixed(r.dram_read_bytes / (1024.0 * 1024.0), 2),
                  FormatFixed(r.energy.total_pj() / 1e9, 3)});
  };

  // --- View 1: fixed pressured tiling (strips of 96 rows x 2048 cols). ---
  const TilingConfig pressured{1, 1, 96, 256};
  const auto with_fixed = mas->Simulate(shape, pressured, hw, em);
  const auto without_fixed = no_ow->Simulate(shape, pressured, hw, em);
  add("MAS + overwrite, pressured tiling", pressured, with_fixed);
  add("MAS - overwrite (stalls), same tiling", pressured, without_fixed);
  table.AddRule();

  // --- View 2: searched; overwrite-allowed vs quiet-only tilings. ---
  const TilingConfig tuned = search::AutoTile(*mas, shape, hw, em);
  const auto with_tuned = mas->Simulate(shape, tuned, hw, em);
  search::TilingProblem problem(*mas, shape, hw, em);
  TilingConfig best_quiet = tuned;
  double best_quiet_cycles = 1e300;
  for (std::int64_t hh : problem.hh_candidates()) {
    for (std::int64_t nq : problem.nq_candidates()) {
      for (std::int64_t nkv : problem.nkv_candidates()) {
        const TilingConfig t{1, hh, nq, nkv};
        if (!problem.Feasible(t)) continue;
        const auto r = mas->Simulate(shape, t, hw, em);
        if (r.overwrite_events == 0 && static_cast<double>(r.cycles) < best_quiet_cycles) {
          best_quiet_cycles = static_cast<double>(r.cycles);
          best_quiet = t;
        }
      }
    }
  }
  const auto quiet = mas->Simulate(shape, best_quiet, hw, em);
  add("MAS + overwrite (tuned)", tuned, with_tuned);
  add("MAS, best overwrite-free tiling", best_quiet, quiet);
  std::cout << table.ToString() << "\n";

  const double stall_penalty =
      static_cast<double>(without_fixed.cycles) / static_cast<double>(with_fixed.cycles);
  std::cout << "On the pressured tiling, disabling the overwrite costs "
            << FormatSpeedup(stall_penalty)
            << " (the pipeline drains sequentially); the overwrite keeps the overlap\n";
  std::cout << "at the price of " << FormatFixed(with_fixed.reload_bytes / 1024.0, 1)
            << " KB of K/V reloads — the paper's \"unnoticeable\" extra reads.\n";
  if (with_tuned.cycles <= quiet.cycles) {
    std::cout << "Searched view: the overwrite-allowed optimum matches or beats the best\n"
              << "overwrite-free tiling (search can also sidestep pressure here).\n";
  } else {
    std::cout << "Searched view: quiet tilings win on this configuration — the search\n"
              << "avoids pressure outright, as the paper's offline tuner also would.\n";
  }
  return 0;
}
