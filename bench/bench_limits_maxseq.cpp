// Regenerates paper §5.6: maximum supported sequence length in FP16.
// MAS's pipelining keeps two C/P row strips on-chip (P_i together with
// P_{i-1} or C_{i+1}) while FLAT needs only one — so on the 5 MB edge device
// FLAT handles ~2M tokens and MAS ~1M at row granularity.
#include <iostream>

#include "common/table.h"
#include "schedulers/scheduler.h"
#include "sim/hardware_config.h"

int main() {
  using namespace mas;
  sim::HardwareConfig hw = sim::EdgeSimConfig();
  hw.cores.resize(1);  // the §5.6 analysis is per-pipeline (one core's budget)

  std::cout << "=== §5.6: Maximum sequence length (FP16, row granularity) ===\n";
  std::cout << hw.Describe() << "\n";

  const auto mas = MakeScheduler(Method::kMas);
  const auto flat = MakeScheduler(Method::kFlat);

  auto max_seq = [&](const Scheduler& sched) {
    // Probe powers of two, then binary-search the boundary.
    std::int64_t lo = 1, hi = 1;
    const std::int64_t kv_tile = 4096;
    auto fits = [&](std::int64_t n) {
      const AttentionShape shape{"probe", 1, 1, n, 64};
      const TilingConfig tiling{1, 1, 1, std::min<std::int64_t>(kv_tile, n)};
      return sched.Fits(shape, tiling, hw);
    };
    while (fits(hi * 2)) {
      hi *= 2;
      if (hi > (1LL << 24)) break;
    }
    lo = hi;
    std::int64_t step = hi / 2;
    while (step > 0) {
      if (fits(lo + step)) lo += step;
      step /= 2;
    }
    return lo;
  };

  const std::int64_t mas_max = max_seq(*mas);
  const std::int64_t flat_max = max_seq(*flat);

  TextTable table({"Method", "max seq (tokens)", "one P_i row at max (MB)", "strips on-chip"});
  table.AddRow({"MAS-Attention", std::to_string(mas_max),
                FormatFixed(mas_max * 2.0 / (1024 * 1024), 2), "2 (P_i + P_{i-1} or C_{i+1})"});
  table.AddRow({"FLAT", std::to_string(flat_max),
                FormatFixed(flat_max * 2.0 / (1024 * 1024), 2), "1 (in-place softmax)"});
  std::cout << table.ToString() << "\n";

  std::cout << "FLAT/MAS max-sequence ratio: "
            << FormatFixed(static_cast<double>(flat_max) / static_cast<double>(mas_max), 2)
            << " (paper: 2.0 — FLAT ~2M tokens vs MAS ~1M on the 5 MB device)\n";
  return 0;
}
