// Regenerates paper Table 3: energy consumption (1e9 pJ) and MAS-Attention
// energy savings across the twelve Table-1 networks on the simulated edge
// device.
//
// Expected shape vs the paper: large savings vs Layer-Wise / Soft-Pipe /
// TileFlow, small-to-moderate vs FLAT, and mixed sign vs FuseMax (FuseMax
// wins on the long-sequence language models where MAS's proactive overwrite
// pays DRAM reloads; MAS wins on the short-sequence ViTs).
#include <iostream>

#include "report/harness.h"
#include "sim/hardware_config.h"

int main() {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;

  std::cout << "=== Table 3: Energy Consumption and Savings Across Networks ===\n";
  std::cout << hw.Describe() << "\n";

  const auto comparisons = report::RunComparison(Table1Networks(), hw, em);
  const TextTable table = report::BuildEnergyTable(comparisons);
  std::cout << table.ToString() << "\n";

  std::cout << "Paper reference geomean savings: 52.97% (Layer-Wise), 63.07% (Soft-Pipe), "
               "18.55% (FLAT), 53.16% (TileFlow), -11.94% (FuseMax)\n";
  std::cout << "Measured geomean savings:        "
            << FormatPercent(report::GeomeanSavings(comparisons, Method::kLayerWise))
            << " (Layer-Wise), "
            << FormatPercent(report::GeomeanSavings(comparisons, Method::kSoftPipe))
            << " (Soft-Pipe), "
            << FormatPercent(report::GeomeanSavings(comparisons, Method::kFlat))
            << " (FLAT), "
            << FormatPercent(report::GeomeanSavings(comparisons, Method::kTileFlow))
            << " (TileFlow), "
            << FormatPercent(report::GeomeanSavings(comparisons, Method::kFuseMax))
            << " (FuseMax)\n";
  return 0;
}
