// Engine + search microbenchmark: tracks the perf trajectory of the
// simulation core from PR 2 on, and proves the rewrite did not change a
// single output bit.
//
// Two measurements per Table-1 network:
//   * engine micro — build+run wall-clock of one representative schedule
//     (the AutoTile tiling) under (a) the seed path: polling reference
//     scheduler, fresh engine per simulation, and (b) the event path:
//     dependency-counter scheduler on a Reset()-reused arena engine.
//   * AutoTile — full coarse-grid search wall-clock under (a) the serial
//     seed path and (b) the event engine at --jobs workers.
// Both paths must produce byte-identical outputs (cycles, energy breakdown,
// DRAM traffic, chosen tiling); the bench aborts loudly if they diverge.
//
// Emits BENCH_engine.json (see README "Engine benchmark" for the format);
// CI's Release job uploads it as an artifact so the trajectory is recorded
// per commit. No timing assertions — numbers are hardware-dependent.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "cli/args.h"
#include "common/json_writer.h"
#include "common/math_util.h"
#include "common/status.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/engine.h"
#include "sim/hardware_config.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

bool SameResult(const mas::sim::SimResult& a, const mas::sim::SimResult& b) {
  return a.cycles == b.cycles && a.energy.dram_pj == b.energy.dram_pj &&
         a.energy.l1_pj == b.energy.l1_pj && a.energy.l0_pj == b.energy.l0_pj &&
         a.energy.mac_pe_pj == b.energy.mac_pe_pj &&
         a.energy.vec_pe_pj == b.energy.vec_pe_pj &&
         a.dram_read_bytes == b.dram_read_bytes && a.dram_write_bytes == b.dram_write_bytes;
}

struct Row {
  std::string network;
  std::string method;
  std::int64_t tasks = 0;
  // One representative simulate (build + run), seconds.
  double sim_reference_s = 0.0;
  double sim_event_s = 0.0;
  // Full AutoTile search, seconds.
  double autotile_reference_s = 0.0;
  double autotile_serial_s = 0.0;
  double autotile_parallel_s = 0.0;
};

}  // namespace

namespace {

int RunBench(int argc, char** argv) {
  using namespace mas;
  cli::ArgParser args(
      "Engine micro + AutoTile search benchmark (seed path vs event engine). "
      "Emits BENCH_engine.json.");
  std::int64_t* jobs = args.AddInt("jobs", 8, "worker threads for the parallel search");
  bool* quick = args.AddBool("quick", false,
                             "restrict to 3 networks x {MAS, FLAT} (CI smoke)");
  std::string* out_path = args.AddString("out", "BENCH_engine.json", "output JSON path");
  std::string* methods_flag =
      args.AddString("methods", "all", "comma list of methods or 'all'");
  if (!args.Parse(argc, argv)) return 0;

  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;

  std::vector<NetworkWorkload> networks = Table1Networks();
  std::vector<Method> methods;
  if (*quick) {
    networks.resize(3);
    methods = {Method::kMas, Method::kFlat};
  } else {
    methods = ParseMethodList(*methods_flag);  // "all" or a comma list
  }
  MAS_CHECK(!networks.empty() && !methods.empty()) << "nothing selected to benchmark";
  std::cout << "=== Engine microbenchmark: seed path vs event-driven engine ===\n"
            << "networks=" << networks.size() << " methods=" << methods.size()
            << " jobs=" << *jobs
            << " hardware_threads=" << std::thread::hardware_concurrency() << "\n\n";

  std::vector<Row> rows;
  double ref_total = 0.0, serial_total = 0.0, parallel_total = 0.0;
  std::vector<double> autotile_speedups;

  for (const auto& net : networks) {
    for (Method m : methods) {
      const auto sched = MakeScheduler(m);
      Row row;
      row.network = net.name;
      row.method = sched->name();

      // --- Full AutoTile search, seed path (serial, polling, no reuse). ---
      search::TilingProblem ref_problem(*sched, net.shape, hw, em);
      ref_problem.set_reference_mode(true);
      search::GridOptions grid;
      grid.coarse = true;
      auto t0 = Clock::now();
      const search::SearchResult ref_search = search::GridSearch(ref_problem, grid);
      auto t1 = Clock::now();
      row.autotile_reference_s = Seconds(t0, t1);

      // --- Full AutoTile search, event engine, serial. ---
      search::TilingProblem serial_problem(*sched, net.shape, hw, em);
      t0 = Clock::now();
      const search::SearchResult serial_search = search::GridSearch(serial_problem, grid);
      t1 = Clock::now();
      row.autotile_serial_s = Seconds(t0, t1);

      // --- Full AutoTile search, event engine, --jobs workers. ---
      search::TilingProblem parallel_problem(*sched, net.shape, hw, em);
      grid.jobs = static_cast<int>(*jobs);
      t0 = Clock::now();
      const search::SearchResult parallel_search =
          search::GridSearch(parallel_problem, grid);
      t1 = Clock::now();
      row.autotile_parallel_s = Seconds(t0, t1);

      // The three paths must agree bit-for-bit.
      MAS_CHECK(ref_search.best == serial_search.best &&
                ref_search.best == parallel_search.best &&
                ref_search.best_cycles == serial_search.best_cycles &&
                ref_search.best_cycles == parallel_search.best_cycles &&
                ref_search.evaluations == parallel_search.evaluations)
          << "search paths diverged on " << net.name << " / " << sched->name();

      // --- One representative simulate at the tuned tiling. ---
      const TilingConfig tiling = ref_search.best;
      sim::Engine ref_engine(hw);
      ref_engine.set_use_reference_scheduler(true);
      t0 = Clock::now();
      const sim::SimResult ref_sim =
          sched->Simulate(net.shape, tiling, hw, em, false, &ref_engine);
      t1 = Clock::now();
      row.sim_reference_s = Seconds(t0, t1);
      row.tasks = ref_engine.task_count();

      sim::Engine fast_engine(hw);
      sched->Simulate(net.shape, tiling, hw, em, false, &fast_engine);  // warm arenas
      t0 = Clock::now();
      const sim::SimResult fast_sim =
          sched->Simulate(net.shape, tiling, hw, em, false, &fast_engine);
      t1 = Clock::now();
      row.sim_event_s = Seconds(t0, t1);
      MAS_CHECK(SameResult(ref_sim, fast_sim))
          << "engine outputs diverged on " << net.name << " / " << sched->name();

      ref_total += row.autotile_reference_s;
      serial_total += row.autotile_serial_s;
      parallel_total += row.autotile_parallel_s;
      if (row.autotile_parallel_s > 0.0) {
        autotile_speedups.push_back(row.autotile_reference_s / row.autotile_parallel_s);
      }
      std::printf("%-28s %-14s tasks=%-7lld autotile ref=%6.3fs serial=%6.3fs "
                  "jobs%lld=%6.3fs (%.2fx)\n",
                  row.network.c_str(), row.method.c_str(),
                  static_cast<long long>(row.tasks), row.autotile_reference_s,
                  row.autotile_serial_s, static_cast<long long>(*jobs),
                  row.autotile_parallel_s,
                  row.autotile_reference_s / row.autotile_parallel_s);
      rows.push_back(row);
    }
  }

  const double geomean = GeoMean(autotile_speedups);
  std::printf("\nAutoTile totals: reference=%.2fs serial=%.2fs jobs%lld=%.2fs\n",
              ref_total, serial_total, static_cast<long long>(*jobs), parallel_total);
  std::printf("Speedup (seed path -> event engine @ jobs=%lld): total %.2fx, "
              "per-search geomean %.2fx\n",
              static_cast<long long>(*jobs), ref_total / parallel_total, geomean);
  std::printf("All outputs byte-identical across paths.\n");

  JsonWriter json;
  json.BeginObject();
  json.KeyValue("bench", "engine_micro");
  json.KeyValue("hardware", hw.name);
  json.KeyValue("hardware_threads",
                static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  json.KeyValue("jobs", *jobs);
  json.KeyValue("quick", *quick);
  json.KeyValue("autotile_reference_total_s", ref_total);
  json.KeyValue("autotile_serial_total_s", serial_total);
  json.KeyValue("autotile_parallel_total_s", parallel_total);
  json.KeyValue("autotile_speedup_total", ref_total / parallel_total);
  json.KeyValue("autotile_speedup_geomean", geomean);
  json.KeyValue("outputs_identical", true);
  json.BeginArray("rows");
  for (const Row& row : rows) {
    json.BeginObject();
    json.KeyValue("network", row.network);
    json.KeyValue("method", row.method);
    json.KeyValue("tasks", row.tasks);
    json.KeyValue("sim_reference_s", row.sim_reference_s);
    json.KeyValue("sim_event_s", row.sim_event_s);
    json.KeyValue("autotile_reference_s", row.autotile_reference_s);
    json.KeyValue("autotile_serial_s", row.autotile_serial_s);
    json.KeyValue("autotile_parallel_s", row.autotile_parallel_s);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::ofstream out(*out_path);
  MAS_CHECK(out.good()) << "cannot write " << *out_path;
  out << json.Take() << "\n";
  std::cout << "wrote " << *out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return RunBench(argc, argv);
  } catch (const mas::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
