// Regenerates paper Fig. 1: the dataflow comparison between FLAT and
// MAS-Attention. Prints per-resource Gantt rows showing FLAT's sequential
// tiled stages versus MAS's semi-synchronous MAC/VEC overlap.
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"
#include "trace/trace.h"

namespace {

using namespace mas;

// Renders the core-0 portion of a timeline as ASCII Gantt rows, one row per
// resource, bucketing time into `width` columns.
void PrintGantt(const sim::SimResult& result, int width) {
  const std::uint64_t span = result.cycles;
  if (span == 0) return;
  std::map<std::string, std::string> rows;
  auto row_key = [](const sim::TimelineEntry& e) {
    return std::string(sim::ResourceKindName(e.resource)) +
           (e.resource == sim::ResourceKind::kDma ? "" : std::to_string(e.core));
  };
  auto glyph = [](const std::string& name) {
    if (name.find("C_ij") != std::string::npos || name.find("C_j") != std::string::npos)
      return 'Q';  // QK^T MatMul
    if (name.find("O_i +=") != std::string::npos) return 'P';  // PV MatMul
    if (name.find("softmax") != std::string::npos || name.find("update") != std::string::npos)
      return 'S';
    if (name.find("redo") != std::string::npos) return 'R';
    return '.';
  };
  for (const auto& e : result.timeline) {
    if (e.core != 0 && e.resource != sim::ResourceKind::kDma) continue;
    auto& row = rows[row_key(e)];
    if (row.empty()) row.assign(static_cast<std::size_t>(width), ' ');
    const auto c0 = static_cast<std::size_t>(e.start * width / span);
    const auto c1 = std::max<std::size_t>(c0 + 1, static_cast<std::size_t>(e.end * width / span));
    for (std::size_t c = c0; c < std::min<std::size_t>(c1, static_cast<std::size_t>(width)); ++c) {
      row[c] = glyph(e.name);
    }
  }
  for (const auto& [name, row] : rows) {
    std::cout << "  " << name << " |" << row << "|\n";
  }
}

}  // namespace

int main() {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  const AttentionShape shape = FindNetwork("BERT-Small").shape;

  std::cout << "=== Fig. 1: Dataflow comparison, FLAT vs MAS-Attention ===\n";
  std::cout << "Workload: " << shape.ToString() << "\n";
  std::cout << "Glyphs: Q = Q_i K^T tile (MAC), S = softmax (VEC), P = P_i V tile (MAC),\n";
  std::cout << "        . = DMA transfer, R = overwrite redo\n\n";

  for (Method m : {Method::kFlat, Method::kMas}) {
    const auto sched = MakeScheduler(m);
    const TilingConfig tiling = search::AutoTile(*sched, shape, hw, em);
    const auto r = sched->Simulate(shape, tiling, hw, em, /*record_timeline=*/true);
    const auto summary = trace::Summarize(r);
    std::cout << sched->name() << "  (" << tiling.ToString() << ", "
              << FormatFixed(r.cycles / 1e6, 3) << " Mcycles, MAC util "
              << FormatPercent(r.MacUtilization()) << ", MAC/VEC overlap "
              << FormatPercent(static_cast<double>(summary.mac_vec_overlap_cycles) /
                               static_cast<double>(summary.makespan))
              << " of makespan)\n";
    PrintGantt(r, 100);
    std::cout << "\n";
  }

  std::cout << "FLAT idles the MAC unit during softmax (gaps between Q and P spans);\n";
  std::cout << "MAS overlaps softmax with the neighbouring iterations' MatMuls — the\n";
  std::cout << "overlap percentage above is Fig. 1's visual argument, quantified.\n";
  return 0;
}
