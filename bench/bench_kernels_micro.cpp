// Google-benchmark microbenchmarks for the functional kernels and the
// simulator hot paths (the search evaluates thousands of schedules; the
// engine and schedulers must stay fast).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "dataflow/workloads.h"
#include "kernels/attention_kernels.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"
#include "tensor/tensor.h"

namespace {

using namespace mas;

void BM_ReferenceAttention(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  TensorF q(1, 2, n, 32), k(1, 2, n, 32), v(1, 2, n, 32);
  FillUniform(q, rng);
  FillUniform(k, rng);
  FillUniform(v, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReferenceAttention(q, k, v));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 2 * n * n * 32);
}
BENCHMARK(BM_ReferenceAttention)->Arg(32)->Arg(64)->Arg(128);

void BM_TiledSoftmax(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(2);
  TensorF c(1, 2, n, n);
  FillUniform(c, rng, -4.0f, 4.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TiledSoftmax(c));
  }
}
BENCHMARK(BM_TiledSoftmax)->Arg(64)->Arg(256);

void BM_OnlineSoftmax(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(3);
  TensorF c(1, 2, n, n);
  FillUniform(c, rng, -4.0f, 4.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OnlineSoftmaxRows(c, 64));
  }
}
BENCHMARK(BM_OnlineSoftmax)->Arg(64)->Arg(256);

void BM_SimulateScheduler(benchmark::State& state) {
  const Method m = static_cast<Method>(state.range(0));
  const auto sched = MakeScheduler(m);
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  const AttentionShape shape = FindNetwork("BERT-Base & T5-Base").shape;
  const TilingConfig tiling = search::AutoTile(*sched, shape, hw, em);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched->Simulate(shape, tiling, hw, em));
  }
  state.SetLabel(sched->name());
}
BENCHMARK(BM_SimulateScheduler)->DenseRange(0, 5);

void BM_AutoTile(benchmark::State& state) {
  const auto sched = MakeScheduler(Method::kMas);
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  const AttentionShape shape = FindNetwork("ViT-B/16").shape;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search::AutoTile(*sched, shape, hw, em));
  }
}
BENCHMARK(BM_AutoTile);

}  // namespace

BENCHMARK_MAIN();
