// Sequence-length sweep: where each dataflow wins as N grows at fixed
// head/embedding geometry (BERT-Base-class, H=12, E=64). Complements
// Table 2's fixed-N rows with the crossover structure: Layer-Wise's DRAM
// round trips grow O(N^2), the fused methods stay compute-bound until the
// score strips press on L1, and MAS's overlap advantage is roughly
// N-invariant until the §5.6 pipelining bound bites.
#include <iostream>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

int main() {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;

  std::cout << "=== Sequence-length sweep (H=12, E=64) ===\n";
  std::cout << hw.Describe() << "\n";

  const std::vector<Method> methods = {Method::kLayerWise, Method::kFlat, Method::kFuseMax,
                                       Method::kMas};
  TextTable table({"N", "Layer-Wise Mcyc", "FLAT Mcyc", "FuseMax Mcyc", "MAS Mcyc",
                   "MAS vs LW", "MAS vs FLAT", "MAS overwrites"});
  for (std::int64_t n = 128; n <= 8192; n *= 2) {
    AttentionShape shape{"sweep_n" + std::to_string(n), 1, 12, n, 64};
    std::vector<double> mcyc;
    std::int64_t overwrites = 0;
    for (Method m : methods) {
      const auto sched = MakeScheduler(m);
      const TilingConfig tiling = search::AutoTile(*sched, shape, hw, em);
      const auto r = sched->Simulate(shape, tiling, hw, em);
      mcyc.push_back(r.cycles / 1e6);
      if (m == Method::kMas) overwrites = r.overwrite_events;
    }
    table.AddRow({std::to_string(n), FormatFixed(mcyc[0], 3), FormatFixed(mcyc[1], 3),
                  FormatFixed(mcyc[2], 3), FormatFixed(mcyc[3], 3),
                  FormatSpeedup(mcyc[0] / mcyc[3]), FormatSpeedup(mcyc[1] / mcyc[3]),
                  std::to_string(overwrites)});
  }
  std::cout << table.ToString() << "\n";
  std::cout << "All columns grow O(N^2); the MAS-vs-Layer-Wise gap widens with N (the C/P\n";
  std::cout << "round trips Layer-Wise pays scale with the score matrix), while MAS-vs-FLAT\n";
  std::cout << "stays near its Table-2 level until long sequences shrink the feasible strip\n";
  std::cout << "sizes and the proactive overwrite starts firing.\n";
  return 0;
}
