// Sequence-length sweep: where each dataflow wins as N grows at fixed
// head/embedding geometry (BERT-Base-class, H=12, E=64). Complements
// Table 2's fixed-N rows with the crossover structure: Layer-Wise's DRAM
// round trips grow O(N^2), the fused methods stay compute-bound until the
// score strips press on L1, and MAS's overlap advantage is roughly
// N-invariant until the §5.6 pipelining bound bites.
//
// Runs on the SweepRunner and doubles as its determinism/throughput proof:
// the full 6-method x N grid is evaluated serially (--jobs=1 semantics) and
// again on 8 worker threads, the two aggregated JSON documents are compared
// byte-for-byte, and both wall-clock times are printed.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "runner/sweep_runner.h"
#include "schedulers/scheduler.h"
#include "sim/hardware_config.h"

int main() {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();

  std::cout << "=== Sequence-length sweep (H=12, E=64) on the SweepRunner ===\n";
  std::cout << hw.Describe() << "\n";

  runner::SweepGrid grid;
  grid.methods = AllMethods();
  grid.hardware = {hw};
  // MAS_SWEEP_MAX_N trims the sweep for quick runs; clamp so a low or
  // unparsable value still leaves at least the N=128 point.
  const char* env_max = std::getenv("MAS_SWEEP_MAX_N");
  const std::int64_t max_n = std::max<std::int64_t>(128, env_max != nullptr ? std::atoll(env_max) : 2048);
  for (std::int64_t n = 128; n <= max_n; n *= 2) {
    grid.shapes.push_back(AttentionShape{"sweep_n" + std::to_string(n), 1, 12, n, 64});
  }

  // Serial reference pass, then the same grid on 8 worker threads with a
  // fresh runner (empty cache) so the timing comparison is honest.
  runner::SweepRunner serial(runner::SweepOptions{/*jobs=*/1, /*cache=*/true});
  const runner::SweepReport serial_report = serial.Run(grid);

  runner::SweepRunner threaded(runner::SweepOptions{/*jobs=*/8, /*cache=*/true});
  const runner::SweepReport threaded_report = threaded.Run(grid);

  std::cout << threaded_report.SpeedupTable().ToString() << "\n";
  std::cout << "All columns grow O(N^2); the MAS-vs-Layer-Wise gap widens with N (the C/P\n";
  std::cout << "round trips Layer-Wise pays scale with the score matrix), while MAS-vs-FLAT\n";
  std::cout << "stays near its Table-2 level until long sequences shrink the feasible strip\n";
  std::cout << "sizes and the proactive overwrite starts firing.\n\n";

  const bool identical = serial_report.ToJson() == threaded_report.ToJson();
  std::cout << "Runner: " << serial_report.stats.total_jobs << " jobs\n";
  std::cout << "  --jobs=1 wall-clock: " << FormatFixed(serial_report.stats.wall_seconds, 3)
            << " s\n";
  std::cout << "  --jobs=8 wall-clock: " << FormatFixed(threaded_report.stats.wall_seconds, 3)
            << " s  ("
            << FormatSpeedup(serial_report.stats.wall_seconds /
                             threaded_report.stats.wall_seconds)
            << " vs serial)\n";
  std::cout << "  aggregated JSON byte-identical across thread counts: "
            << (identical ? "yes" : "NO — DETERMINISM BUG") << "\n";
  return identical ? 0 : 1;
}
