// Regenerates paper §5.2.2: the end-to-end Stable Diffusion 1.5 reduced-UNet
// study. The UNet carries 15 attention units (largest: H=2, N=4096, E=64);
// the paper reports 29.4% runtime reduction on the largest unit vs
// Layer-Wise and ~6% end-to-end, the gap explained by the non-attention
// share of UNet inference (convolutions etc.), which schedulers do not
// touch.
//
// The non-attention remainder is modeled as a fixed cycle budget calibrated
// so attention is ~20% of Layer-Wise end-to-end inference, a typical share
// for SD-1.5 UNet on mobile-class accelerators.
#include <iostream>
#include <map>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "report/harness.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

int main() {
  using namespace mas;
  const sim::HardwareConfig hw = sim::DavinciNpuConfig();
  const sim::EnergyModel em;

  std::cout << "=== §5.2.2: SD-1.5 reduced UNet end-to-end on the NPU-class device ===\n\n";

  const auto units = SdUnetAttentionUnits();
  const std::vector<Method> methods = {Method::kLayerWise, Method::kSoftPipe, Method::kFlat,
                                       Method::kMas};

  // Per-unit cycles per method.
  TextTable per_unit({"Attention unit", "count", "Layer-Wise Mcyc", "Soft-Pipe Mcyc",
                      "FLAT Mcyc", "MAS Mcyc", "MAS vs Layer-Wise"});
  std::map<Method, double> totals;
  double largest_lw = 0.0, largest_mas = 0.0;
  for (const auto& unit : units) {
    std::vector<double> cycles;
    for (Method m : methods) {
      const auto sched = MakeScheduler(m);
      const TilingConfig tiling = search::AutoTile(*sched, unit.shape, hw, em);
      const double c = static_cast<double>(sched->Simulate(unit.shape, tiling, hw, em).cycles);
      cycles.push_back(c);
      totals[m] += c * unit.count;
    }
    const double reduction = 1.0 - cycles.back() / cycles.front();
    per_unit.AddRow({unit.shape.name, std::to_string(unit.count),
                     FormatFixed(cycles[0] / 1e6, 3), FormatFixed(cycles[1] / 1e6, 3),
                     FormatFixed(cycles[2] / 1e6, 3), FormatFixed(cycles[3] / 1e6, 3),
                     FormatPercent(reduction) + " faster"});
    if (unit.shape.seq_len == 4096) {
      largest_lw = cycles.front();
      largest_mas = cycles.back();
    }
  }
  std::cout << per_unit.ToString() << "\n";

  // End-to-end model: attention (Layer-Wise) is ~20% of UNet inference.
  const double attention_lw = totals[Method::kLayerWise];
  const double non_attention = attention_lw * 4.0;
  TextTable e2e({"Method", "attention Mcyc", "end-to-end Mcyc", "e2e reduction vs Layer-Wise"});
  for (Method m : methods) {
    const double att = totals[m];
    const double total = att + non_attention;
    e2e.AddRow({MethodName(m), FormatFixed(att / 1e6, 3), FormatFixed(total / 1e6, 3),
                FormatPercent(1.0 - total / (attention_lw + non_attention))});
  }
  std::cout << e2e.ToString() << "\n";

  std::cout << "Largest unit (H=2, N=4096, E=64): MAS reduces runtime by "
            << FormatPercent(1.0 - largest_mas / largest_lw)
            << " vs Layer-Wise (paper: 29.4%).\n";
  std::cout << "Paper end-to-end reduction: ~6% (attention is a minority of UNet time).\n";
  return 0;
}
