// Ablation (DESIGN.md): the multi-tiered tiling scheme.
// Sweeps N_Q (softmax row granularity) and N_KV (MatMul sub-matrix
// granularity) independently for MAS on BERT-Base, showing why the two
// workload classes need *different* granularities (§4.2): coarse N_KV
// amortizes MAC setup; moderate N_Q balances pipeline depth against L1.
#include <iostream>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

int main() {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  const AttentionShape shape = FindNetwork("BERT-Base & T5-Base").shape;
  const auto mas = MakeScheduler(Method::kMas);
  const TilingConfig tuned = search::AutoTile(*mas, shape, hw, em);

  std::cout << "=== Ablation: multi-tiered tiling (" << shape.ToString() << ") ===\n";
  std::cout << "Tuned baseline: " << tuned.ToString() << "\n\n";

  std::cout << "--- Sweep N_Q (pipeline/softmax row granularity), others tuned ---\n";
  TextTable nq_table({"N_Q", "row blocks", "Mcycles", "MAC util", "overwrites", "peak L1 KB"});
  for (std::int64_t nq : {8, 16, 32, 64, 128, 256, 512}) {
    TilingConfig t = tuned;
    t.nq = nq;
    if (!mas->Fits(shape, t, hw)) {
      nq_table.AddRow({std::to_string(nq), "-", "does not fit", "-", "-", "-"});
      continue;
    }
    const auto r = mas->Simulate(shape, t, hw, em);
    nq_table.AddRow({std::to_string(nq), std::to_string(t.RowBlocks(shape)),
                     FormatFixed(r.cycles / 1e6, 3), FormatPercent(r.MacUtilization()),
                     std::to_string(r.overwrite_events),
                     FormatFixed(r.peak_l1_bytes / 1024.0, 0)});
  }
  std::cout << nq_table.ToString() << "\n";

  std::cout << "--- Sweep N_KV (MatMul sub-matrix granularity), others tuned ---\n";
  TextTable nkv_table({"N_KV", "kv blocks", "Mcycles", "MAC util", "peak L1 KB"});
  for (std::int64_t nkv : {16, 32, 64, 128, 256, 512}) {
    TilingConfig t = tuned;
    t.nkv = nkv;
    if (!mas->Fits(shape, t, hw)) {
      nkv_table.AddRow({std::to_string(nkv), "-", "does not fit", "-", "-"});
      continue;
    }
    const auto r = mas->Simulate(shape, t, hw, em);
    nkv_table.AddRow({std::to_string(nkv), std::to_string(t.KvBlocks(shape)),
                      FormatFixed(r.cycles / 1e6, 3), FormatPercent(r.MacUtilization()),
                      FormatFixed(r.peak_l1_bytes / 1024.0, 0)});
  }
  std::cout << nkv_table.ToString() << "\n";

  std::cout << "--- Uniform tiling (N_Q = N_KV forced equal) vs multi-tiered ---\n";
  TextTable uni({"variant", "tiling", "Mcycles"});
  const auto tuned_r = mas->Simulate(shape, tuned, hw, em);
  uni.AddRow({"multi-tiered (tuned)", tuned.ToString(), FormatFixed(tuned_r.cycles / 1e6, 3)});
  double best_uniform = 1e300;
  TilingConfig best_uniform_t = tuned;
  for (std::int64_t n : {32, 64, 128, 256, 512}) {
    TilingConfig t = tuned;
    t.nq = n;
    t.nkv = n;
    if (!mas->Fits(shape, t, hw)) continue;
    const auto r = mas->Simulate(shape, t, hw, em);
    if (static_cast<double>(r.cycles) < best_uniform) {
      best_uniform = static_cast<double>(r.cycles);
      best_uniform_t = t;
    }
  }
  uni.AddRow({"best uniform", best_uniform_t.ToString(), FormatFixed(best_uniform / 1e6, 3)});
  std::cout << uni.ToString() << "\n";
  return 0;
}
