// Regenerates paper Fig. 7: execution cycles versus search iterations (both
// effectively log-scale) for the Genetic Algorithm and MCTS tiling searches,
// across the attention acceleration methods.
//
// As in the paper, FuseMax is excluded (it used manually selected tiling
// sizes). The printed series are the convergence traces: each line is one
// (method, algorithm) pair, sampled at its incumbent-improvement points.
#include <iostream>
#include <limits>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/strategy.h"
#include "sim/hardware_config.h"

int main(int argc, char** argv) {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  // Budget is configurable: the paper converges within ~10K iterations; the
  // default here is smaller so the whole bench suite stays quick.
  std::int64_t budget = 1500;
  if (argc > 1) budget = std::atoll(argv[1]);

  const AttentionShape shape = FindNetwork("BERT-Base & T5-Base").shape;
  std::cout << "=== Fig. 7: Search convergence (cycles vs evaluations), " << shape.ToString()
            << ", budget " << budget << " evaluations ===\n\n";

  const std::vector<Method> methods = {Method::kLayerWise, Method::kSoftPipe, Method::kFlat,
                                       Method::kTileFlow, Method::kMas};
  TextTable table({"Method", "Algorithm", "evals", "first feasible Mcyc", "final Mcyc",
                   "improvement"});
  for (Method m : methods) {
    const auto sched = MakeScheduler(m);
    // The GA and MCTS strategies through the registry surface, sharing one
    // SearchSpec template (common seed; per-strategy budget knobs).
    for (const char* alg : {"GA", "MCTS"}) {
      search::TilingProblem problem(*sched, shape, hw, em);
      search::SearchSpec spec;
      spec.seed = 7;
      // The bench's CLI budget drives generations/iterations below; disable
      // the spec's common cap so large CLI budgets are never truncated.
      spec.budget = std::numeric_limits<std::int64_t>::max();
      if (std::string(alg) == "GA") {
        spec.strategy = "ga";
        spec.population = 24;
        spec.generations = budget / spec.population;
      } else {
        spec.strategy = "mcts";
        spec.iterations = budget;
      }
      const search::SearchResult result = search::RunSearch(problem, spec);
      if (!result.found()) {
        table.AddRow({sched->name(), alg, std::to_string(result.evaluations), "-", "-", "-"});
        continue;
      }
      const double first = result.trace.front().best_cycles;
      const double final_c = result.best_cycles;
      table.AddRow({sched->name(), alg, std::to_string(result.evaluations),
                    FormatFixed(first / 1e6, 3), FormatFixed(final_c / 1e6, 3),
                    FormatSpeedup(first / final_c)});
      // Print the trace series (evaluation, Mcycles) for plotting.
      std::cout << sched->name() << " / " << alg << " trace:";
      for (const auto& pt : result.trace) {
        std::cout << " (" << pt.evaluation << ", " << FormatFixed(pt.best_cycles / 1e6, 3)
                  << ")";
      }
      std::cout << "\n";
    }
  }
  std::cout << "\n" << table.ToString() << "\n";
  std::cout << "Paper reference: every method converges within ~10K iterations; e.g.\n";
  std::cout << "BERT-Base MAS improves 64.5x from the first sampled tiling (50.33M -> "
               "0.78M cycles).\n";
  return 0;
}
