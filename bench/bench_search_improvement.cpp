// Regenerates paper §5.5: cycle improvement delivered by the tiling search —
// the ratio between the first sampled feasible tiling and the tuned result
// for MAS-Attention on every network (paper: 64.5x for BERT-Base/T5-Base,
// 16.1x for BERT-Large/Small classes, up to 66.2x for ViTs, 32.2x for XLM).
#include <iostream>
#include <limits>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/registry.h"
#include "search/strategy.h"
#include "sim/hardware_config.h"

int main(int argc, char** argv) {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  std::int64_t budget = 800;
  if (argc > 1) budget = std::atoll(argv[1]);

  std::cout << "=== §5.5: Impact of the tiling search (MAS-Attention, MCTS, budget "
            << budget << ") ===\n\n";
  TextTable table({"Network", "first feasible Mcyc", "tuned Mcyc", "improvement",
                   "tuned tiling"});
  // Registry surface: scheduler by name, MCTS strategy via one SearchSpec.
  const auto mas = SchedulerRegistry::Instance().Create("MAS-Attention");
  search::SearchSpec spec;
  spec.strategy = "mcts";
  spec.iterations = budget;
  spec.seed = 11;
  // The CLI budget is the iteration count; keep the common cap out of the way.
  spec.budget = std::numeric_limits<std::int64_t>::max();
  for (const auto& net : Table1Networks()) {
    search::TilingProblem problem(*mas, net.shape, hw, em);
    const auto result = search::RunSearch(problem, spec);
    if (!result.found()) {
      table.AddRow({net.name, "-", "-", "-", "-"});
      continue;
    }
    const double first = result.trace.front().best_cycles;
    table.AddRow({net.name, FormatFixed(first / 1e6, 3),
                  FormatFixed(result.best_cycles / 1e6, 3),
                  FormatSpeedup(first / result.best_cycles), result.best.ToString()});
  }
  std::cout << table.ToString() << "\n";
  std::cout << "Paper reference improvements: 64.5x (BERT-Base class), 16.1x (BERT-Large/\n";
  std::cout << "Small classes), 49.7x/24.5x/24.6x (ViT-B,L,H/14), 66.2x/32.2x/32.8x\n";
  std::cout << "(ViT-B,L,H/16), 32.2x (XLM). Magnitudes depend on how bad the first\n";
  std::cout << "sampled tiling is; the qualitative claim is convergence to >10x better.\n";
  return 0;
}
