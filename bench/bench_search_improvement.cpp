// Regenerates paper §5.5: cycle improvement delivered by the tiling search —
// the ratio between the first sampled feasible tiling and the tuned result
// for MAS-Attention on every network (paper: 64.5x for BERT-Base/T5-Base,
// 16.1x for BERT-Large/Small classes, up to 66.2x for ViTs, 32.2x for XLM).
#include <iostream>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

int main(int argc, char** argv) {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  std::int64_t budget = 800;
  if (argc > 1) budget = std::atoll(argv[1]);

  std::cout << "=== §5.5: Impact of the tiling search (MAS-Attention, MCTS, budget "
            << budget << ") ===\n\n";
  TextTable table({"Network", "first feasible Mcyc", "tuned Mcyc", "improvement",
                   "tuned tiling"});
  const auto mas = MakeScheduler(Method::kMas);
  for (const auto& net : Table1Networks()) {
    search::TilingProblem problem(*mas, net.shape, hw, em);
    search::MctsOptions opts;
    opts.iterations = budget;
    opts.seed = 11;
    const auto result = search::MctsSearch(problem, opts);
    if (!result.found()) {
      table.AddRow({net.name, "-", "-", "-", "-"});
      continue;
    }
    const double first = result.trace.front().best_cycles;
    table.AddRow({net.name, FormatFixed(first / 1e6, 3),
                  FormatFixed(result.best_cycles / 1e6, 3),
                  FormatSpeedup(first / result.best_cycles), result.best.ToString()});
  }
  std::cout << table.ToString() << "\n";
  std::cout << "Paper reference improvements: 64.5x (BERT-Base class), 16.1x (BERT-Large/\n";
  std::cout << "Small classes), 49.7x/24.5x/24.6x (ViT-B,L,H/14), 66.2x/32.2x/32.8x\n";
  std::cout << "(ViT-B,L,H/16), 32.2x (XLM). Magnitudes depend on how bad the first\n";
  std::cout << "sampled tiling is; the qualitative claim is convergence to >10x better.\n";
  return 0;
}
