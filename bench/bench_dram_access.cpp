// Regenerates paper §5.4: DRAM access analysis, MAS-Attention vs FLAT.
// Writes must be identical (both confine DRAM writes to O); reads match or
// exceed FLAT's for MAS, inflating to ~1.5x on networks where the proactive
// overwrite evicts and reloads K/V (paper: BERT-Base/Large and Llama3
// classes at 1.5x / 1.5x / 1.49x).
#include <iostream>

#include "report/harness.h"
#include "sim/hardware_config.h"

int main() {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;

  std::cout << "=== §5.4: DRAM access analysis (MAS vs FLAT) ===\n\n";
  const auto comparisons = report::RunComparison(Table1Networks(), hw, em);
  const TextTable table = report::BuildDramAccessTable(comparisons);
  std::cout << table.ToString() << "\n";

  bool writes_equal = true;
  for (const auto& cmp : comparisons) {
    writes_equal &= cmp.Run(Method::kMas).sim.dram_write_bytes ==
                    cmp.Run(Method::kFlat).sim.dram_write_bytes;
  }
  std::cout << "DRAM writes identical across MAS/FLAT for every network: "
            << (writes_equal ? "yes (matches §5.4.1)" : "NO — mismatch!") << "\n";
  std::cout << "Paper read inflation: 1.5x (BERT-Base/Large classes), 1.49x (Llama3 class), "
               "1.0x elsewhere.\n";
  return 0;
}
