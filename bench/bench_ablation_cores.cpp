// Ablation (DESIGN.md): sensitivity to the number of heterogeneous cores.
//
// The paper's simulated device has two cores (Fig. 4) and the NPU three
// (§5.1). This sweep scales the core count at fixed L1/bandwidth and asks
// two questions: does MAS's advantage over FLAT survive more parallelism
// (it should — the MAC/VEC overlap is per-core), and where does the shared
// DRAM bus become the limiter (the speedup-vs-cores curve flattens)?
#include <iostream>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

int main() {
  using namespace mas;
  const sim::EnergyModel em;
  const AttentionShape shape = FindNetwork("BERT-Base & T5-Base").shape;

  std::cout << "=== Ablation: core-count scaling (" << shape.ToString() << ") ===\n\n";
  TextTable table({"cores", "FLAT Mcyc", "MAS Mcyc", "MAS vs FLAT", "MAS scaling vs 1 core",
                   "MAS DMA busy %"});
  double mas_1core = 0.0;
  for (int cores : {1, 2, 4, 8}) {
    sim::HardwareConfig hw = sim::EdgeSimConfig();
    const sim::CoreConfig proto = hw.cores.front();
    hw.cores.assign(static_cast<std::size_t>(cores), proto);

    const auto flat = MakeScheduler(Method::kFlat);
    const auto mas = MakeScheduler(Method::kMas);
    const auto flat_r =
        flat->Simulate(shape, search::AutoTile(*flat, shape, hw, em), hw, em);
    const auto mas_r = mas->Simulate(shape, search::AutoTile(*mas, shape, hw, em), hw, em);
    if (cores == 1) mas_1core = static_cast<double>(mas_r.cycles);

    table.AddRow(
        {std::to_string(cores), FormatFixed(flat_r.cycles / 1e6, 3),
         FormatFixed(mas_r.cycles / 1e6, 3),
         FormatSpeedup(static_cast<double>(flat_r.cycles) / mas_r.cycles),
         FormatSpeedup(mas_1core / static_cast<double>(mas_r.cycles)),
         FormatFixed(100.0 * static_cast<double>(mas_r.BusyCycles(sim::ResourceKind::kDma)) /
                         static_cast<double>(mas_r.cycles),
                     0)});
  }
  std::cout << table.ToString() << "\n";
  std::cout << "MAS's per-core MAC/VEC overlap is orthogonal to multi-core sharding, so the\n";
  std::cout << "MAS-vs-FLAT gap persists at every core count; the scaling column flattens\n";
  std::cout << "once the shared 30 GB/s DRAM bus saturates (DMA busy % approaching 100).\n";
  return 0;
}
