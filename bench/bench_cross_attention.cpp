// Extension study (beyond the paper's square self-attention evaluation):
// rectangular attention — SD-UNet text-conditioning cross-attention
// (N_kv = 77 CLIP tokens) and autoregressive decode against a KV cache
// (N = 1 query row). Together with Table 2 these map out where the
// MAS stream pipeline pays off: compute-bound square/query-heavy shapes
// benefit fully, while K/V-light and single-row shapes degrade gracefully
// toward the fused-sequential baselines.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

namespace {

using namespace mas;

void RunSuite(const std::string& title, const std::vector<AttentionShape>& shapes,
              const sim::HardwareConfig& hw, const sim::EnergyModel& em) {
  std::cout << "--- " << title << " ---\n";
  TextTable table({"Shape", "Layer-Wise Mcyc", "FLAT Mcyc", "FuseMax Mcyc", "MAS Mcyc",
                   "MAS vs FLAT", "MAC util %", "DMA busy %"});
  for (const AttentionShape& shape : shapes) {
    double flat_cycles = 0.0;
    std::vector<std::string> row = {shape.ToString()};
    for (Method m : {Method::kLayerWise, Method::kFlat, Method::kFuseMax, Method::kMas}) {
      const auto sched = MakeScheduler(m);
      const TilingConfig tiling = search::AutoTile(*sched, shape, hw, em);
      const auto r = sched->Simulate(shape, tiling, hw, em);
      row.push_back(FormatFixed(r.cycles / 1e6, 3));
      if (m == Method::kFlat) flat_cycles = static_cast<double>(r.cycles);
      if (m == Method::kMas) {
        row.push_back(FormatSpeedup(flat_cycles / static_cast<double>(r.cycles)));
        row.push_back(FormatFixed(100.0 * r.MacUtilization(), 0));
        row.push_back(FormatFixed(100.0 *
                                      static_cast<double>(r.BusyCycles(sim::ResourceKind::kDma)) /
                                      static_cast<double>(r.cycles),
                                  0));
      }
    }
    table.AddRow(std::move(row));
  }
  std::cout << table.ToString() << "\n";
}

}  // namespace

int main() {
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;

  std::cout << "=== Cross-attention & decode extension study ===\n";
  std::cout << hw.Describe() << "\n";

  std::vector<AttentionShape> xattn;
  for (const auto& u : SdUnetCrossAttentionUnits()) xattn.push_back(u.shape);
  RunSuite("SD-1.5 UNet cross-attention (N_kv = 77 prompt tokens)", xattn, hw, em);

  std::vector<AttentionShape> decode;
  for (const auto& w : DecodeWorkloads({512, 2048, 8192})) decode.push_back(w.shape);
  RunSuite("Llama3-8B-class decode (N = 1 row vs KV cache)", decode, hw, em);

  std::cout << "Expected shape: cross-attention at high latent resolutions stays compute-\n";
  std::cout << "bound (query side dominates) and MAS keeps most of its Table-2 advantage;\n";
  std::cout << "decode is DMA-bound at every context length, so the fused methods converge\n";
  std::cout << "and only the unfused Layer-Wise baseline still loses (score round trips).\n";
  return 0;
}
