// Regenerates paper Table 2: execution cycles and MAS-Attention speedups
// across the twelve Table-1 networks on the simulated edge device (Fig. 4
// architecture), with offline-tuned tilings per (network, method).
//
// Expected shape vs the paper: MAS fastest everywhere; geomean speedups
// roughly 5.1x / 2.8x / 1.7x / 1.3x / 1.3x over Layer-Wise / Soft-Pipe /
// FLAT / TileFlow / FuseMax (absolute cycle counts depend on the simulator
// substitution, see DESIGN.md §2).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>

#include "report/harness.h"
#include "sim/hardware_config.h"

int main() {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;

  std::cout << "=== Table 2: Cycles and Speedup Comparisons Across Networks ===\n";
  std::cout << hw.Describe() << "\n";

  // The 12-network x 6-method grid runs on the SweepRunner, spread across the
  // machine's cores; results are identical to the serial evaluation.
  const int jobs = std::max(1u, std::thread::hardware_concurrency());
  const auto t0 = std::chrono::steady_clock::now();
  const auto comparisons = report::RunComparison(Table1Networks(), hw, em, jobs);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const TextTable table = report::BuildCycleTable(comparisons);
  std::cout << table.ToString() << "\n";
  std::cout << "(" << comparisons.size() << " networks x " << AllMethods().size()
            << " methods evaluated on " << jobs << " worker threads in "
            << FormatFixed(wall_s, 2) << " s)\n\n";

  std::cout << "Tuned tilings (B_b, H_h, N_Q, N_KV):\n";
  for (const auto& cmp : comparisons) {
    std::cout << "  " << cmp.network.name << ":";
    for (const auto& run : cmp.runs) {
      std::cout << "  " << MethodName(run.method) << "=" << run.tiling.ToString();
    }
    std::cout << "\n";
  }

  std::cout << "\nPaper reference geomeans: 5.09x (Layer-Wise), 2.78x (Soft-Pipe), "
               "1.70x (FLAT), 1.31x (TileFlow), 1.27x (FuseMax)\n";
  std::cout << "Measured geomeans:        "
            << FormatSpeedup(report::GeomeanSpeedup(comparisons, Method::kLayerWise))
            << " (Layer-Wise), "
            << FormatSpeedup(report::GeomeanSpeedup(comparisons, Method::kSoftPipe))
            << " (Soft-Pipe), "
            << FormatSpeedup(report::GeomeanSpeedup(comparisons, Method::kFlat)) << " (FLAT), "
            << FormatSpeedup(report::GeomeanSpeedup(comparisons, Method::kTileFlow))
            << " (TileFlow), "
            << FormatSpeedup(report::GeomeanSpeedup(comparisons, Method::kFuseMax))
            << " (FuseMax)\n";
  return 0;
}
