// Regenerates paper Fig. 5: normalized execution time on the DaVinci-NPU
// class device (Huawei MatePad Pro 13.2 stand-in; see DESIGN.md §2 for the
// substitution) for Layer-Wise, Soft-Pipe, FLAT and MAS-Attention.
// TileFlow is excluded, as in the paper (its implementation details were
// not deployable on the NPU); FuseMax likewise only appears in simulation.
//
// Tilings are found by exhaustive grid search, matching the paper's use of
// Grid Search on the DaVinci's structured memory model.
#include <iostream>

#include "report/harness.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

int main() {
  using namespace mas;
  const sim::HardwareConfig npu = sim::DavinciNpuConfig();
  const sim::EnergyModel em;

  std::cout << "=== Fig. 5: Normalized execution time on the DaVinci-class NPU ===\n";
  std::cout << npu.Describe() << "\n";

  const std::vector<Method> methods = {Method::kLayerWise, Method::kSoftPipe, Method::kFlat,
                                       Method::kMas};

  std::vector<report::NetworkComparison> comparisons;
  for (const auto& net : Table1Networks()) {
    report::NetworkComparison cmp;
    cmp.network = net;
    for (Method m : AllMethods()) {
      const auto sched = MakeScheduler(m);
      report::MethodRun run;
      run.method = m;
      // Grid search (coarse lattice), per the paper's NPU methodology.
      search::TilingProblem problem(*sched, net.shape, npu, em);
      search::GridOptions opts;
      opts.coarse = true;
      const auto result = search::GridSearch(problem, opts);
      run.tiling = result.best;
      run.sim = sched->Simulate(net.shape, run.tiling, npu, em);
      cmp.runs.push_back(std::move(run));
    }
    comparisons.push_back(std::move(cmp));
  }

  const TextTable table = report::BuildNormalizedTimeTable(comparisons, methods);
  std::cout << table.ToString() << "\n";

  std::cout << "Paper reference (real DaVinci NPU): speedups 1.94x-3.50x vs Layer-Wise,\n";
  std::cout << "1.35x-2.87x vs Soft-Pipe, 1.30x-1.76x vs FLAT; geomeans 2.33x / 1.73x / "
               "1.42x.\n";
  std::cout << "Measured geomeans: "
            << FormatSpeedup(report::GeomeanSpeedup(comparisons, Method::kLayerWise))
            << " / " << FormatSpeedup(report::GeomeanSpeedup(comparisons, Method::kSoftPipe))
            << " / " << FormatSpeedup(report::GeomeanSpeedup(comparisons, Method::kFlat))
            << "\n";
  return 0;
}
