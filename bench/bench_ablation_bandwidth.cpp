// Ablation (DESIGN.md): DRAM bandwidth sensitivity.
// Sweeps the DRAM bandwidth of the edge device and reports where each
// dataflow crosses from memory-bound to compute-bound. Layer-Wise/Soft-Pipe
// (which round-trip intermediates) should improve steeply with bandwidth;
// the fused methods should be flat once loads hide under compute — this is
// the regime where MAS's MAC/VEC overlap is the only remaining lever.
#include <iostream>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

int main() {
  using namespace mas;
  const sim::EnergyModel em;
  const AttentionShape shape = FindNetwork("BERT-Base & T5-Base").shape;

  std::cout << "=== Ablation: DRAM bandwidth sweep (" << shape.ToString() << ") ===\n\n";
  TextTable table({"BW GB/s", "Layer-Wise Mcyc", "Soft-Pipe Mcyc", "FLAT Mcyc", "MAS Mcyc",
                   "MAS vs FLAT", "MAS vs Layer-Wise"});
  for (double bw : {7.5, 15.0, 30.0, 60.0, 120.0}) {
    sim::HardwareConfig hw = sim::EdgeSimConfig();
    hw.dram_gb_per_s = bw;
    std::vector<double> cycles;
    for (Method m : {Method::kLayerWise, Method::kSoftPipe, Method::kFlat, Method::kMas}) {
      const auto sched = MakeScheduler(m);
      const TilingConfig tiling = search::AutoTile(*sched, shape, hw, em);
      cycles.push_back(static_cast<double>(sched->Simulate(shape, tiling, hw, em).cycles));
    }
    table.AddRow({FormatFixed(bw, 1), FormatFixed(cycles[0] / 1e6, 3),
                  FormatFixed(cycles[1] / 1e6, 3), FormatFixed(cycles[2] / 1e6, 3),
                  FormatFixed(cycles[3] / 1e6, 3), FormatSpeedup(cycles[2] / cycles[3]),
                  FormatSpeedup(cycles[0] / cycles[3])});
  }
  std::cout << table.ToString() << "\n";
  std::cout << "Fused methods saturate early (compute-bound); unfused baselines chase\n";
  std::cout << "bandwidth, so MAS's advantage over Layer-Wise shrinks as BW grows while\n";
  std::cout << "its advantage over FLAT (MAC/VEC overlap) persists at every bandwidth.\n";
  return 0;
}
