// Quickstart: schedule one attention layer with MAS-Attention, verify it
// against the exact reference, and compare its simulated latency/energy with
// the FLAT baseline.
//
//   $ ./quickstart
//
// Walks through the full public API: define a workload shape, batch-evaluate
// methods through the SweepRunner (which autotunes tilings and can fan work
// across threads), and run the functional golden check.
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "kernels/attention_kernels.h"
#include "runner/sweep_runner.h"
#include "schedulers/registry.h"
#include "sim/hardware_config.h"
#include "tensor/tensor.h"

int main() {
  using namespace mas;

  // 1. The hardware: the paper's simulated edge accelerator (Fig. 4) — two
  //    cores, each a 16x16 MAC mesh + 256-lane VEC unit, 5 MB shared L1.
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  std::cout << hw.Describe() << "\n";

  // 2. The workload: one BERT-Base attention layer (B=1, H=12, N=512, E=64).
  const AttentionShape shape{"bert_base_attention", 1, 12, 512, 64};
  std::cout << "Workload: " << shape.ToString() << " ("
            << FormatFixed(shape.TotalMacs() / 1e6, 0) << "M MACs)\n\n";

  // 3. Batch-evaluate MAS-Attention against the FLAT baseline through the
  //    SweepRunner: one declarative grid, autotuned tilings, two worker
  //    threads (results are identical for any thread count).
  runner::SweepGrid grid;
  grid.shapes = {shape};
  grid.methods = {Method::kMas, Method::kFlat};
  grid.hardware = {hw};

  runner::SweepRunner sweep(runner::SweepOptions{/*jobs=*/2, /*cache=*/true}, em);
  const runner::SweepReport report = sweep.Run(grid);
  const runner::JobResult* mas_run =
      report.Find(shape.name, Method::kMas, hw.name);
  const runner::JobResult* flat_run =
      report.Find(shape.name, Method::kFlat, hw.name);
  if (mas_run == nullptr || flat_run == nullptr) {
    std::cerr << "sweep failed\n";
    return 1;
  }
  std::cout << "Tuned tilings: MAS " << mas_run->tiling.ToString() << ", FLAT "
            << flat_run->tiling.ToString() << "\n\n";

  // 4. Compare the simulated schedules.
  std::cout << report.ToTable().ToString() << "\n";
  std::cout << "Speedup: "
            << FormatSpeedup(static_cast<double>(flat_run->sim.cycles) /
                             static_cast<double>(mas_run->sim.cycles))
            << " over FLAT\n\n";

  // 5. Golden-data check (paper §5.1): the functional twin must reproduce
  //    exact attention. Use a scaled-down shape so this runs instantly.
  const auto mas = SchedulerRegistry::Instance().Create("MAS-Attention");
  Rng rng(2024);
  const std::int64_t n = 64, e = 16;
  TensorF q(1, 4, n, e), k(1, 4, n, e), v(1, 4, n, e);
  FillUniform(q, rng);
  FillUniform(k, rng);
  FillUniform(v, rng);
  const TensorF o = mas->Execute(q, k, v, TilingConfig{1, 2, 16, 16});
  const double err = MaxAbsDiff(o, ReferenceAttention(q, k, v));
  std::cout << "Golden check max |error| vs exact attention: " << err
            << (err < 1e-4 ? "  (PASS)" : "  (FAIL)") << "\n";
  return err < 1e-4 ? 0 : 1;
}
