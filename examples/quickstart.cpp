// Quickstart: schedule one attention layer with MAS-Attention, verify it
// against the exact reference, and compare its simulated latency/energy with
// the FLAT baseline.
//
//   $ ./quickstart
//
// Walks through the full public API: define a workload shape, autotune the
// tiling, simulate on the edge device, and run the functional golden check.
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "kernels/attention_kernels.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"
#include "tensor/tensor.h"

int main() {
  using namespace mas;

  // 1. The hardware: the paper's simulated edge accelerator (Fig. 4) — two
  //    cores, each a 16x16 MAC mesh + 256-lane VEC unit, 5 MB shared L1.
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  std::cout << hw.Describe() << "\n";

  // 2. The workload: one BERT-Base attention layer (B=1, H=12, N=512, E=64).
  const AttentionShape shape{"bert_base_attention", 1, 12, 512, 64};
  std::cout << "Workload: " << shape.ToString() << " ("
            << FormatFixed(shape.TotalMacs() / 1e6, 0) << "M MACs)\n\n";

  // 3. Autotune a tiling for MAS-Attention and for the FLAT baseline.
  const auto mas = MakeScheduler(Method::kMas);
  const auto flat = MakeScheduler(Method::kFlat);
  const TilingConfig mas_tiling = search::AutoTile(*mas, shape, hw, em);
  const TilingConfig flat_tiling = search::AutoTile(*flat, shape, hw, em);
  std::cout << "Tuned tilings: MAS " << mas_tiling.ToString() << ", FLAT "
            << flat_tiling.ToString() << "\n\n";

  // 4. Simulate both schedules.
  const sim::SimResult mas_r = mas->Simulate(shape, mas_tiling, hw, em);
  const sim::SimResult flat_r = flat->Simulate(shape, flat_tiling, hw, em);
  TextTable table({"Method", "Mcycles", "latency ms", "energy GpJ", "MAC util",
                   "DRAM reads MB"});
  auto add = [&](const char* name, const sim::SimResult& r) {
    table.AddRow({name, FormatFixed(r.cycles / 1e6, 3),
                  FormatFixed(r.cycles / (hw.frequency_ghz * 1e6), 3),
                  FormatFixed(r.energy.total_pj() / 1e9, 3), FormatPercent(r.MacUtilization()),
                  FormatFixed(r.dram_read_bytes / (1024.0 * 1024.0), 2)});
  };
  add("MAS-Attention", mas_r);
  add("FLAT", flat_r);
  std::cout << table.ToString() << "\n";
  std::cout << "Speedup: "
            << FormatSpeedup(static_cast<double>(flat_r.cycles) /
                             static_cast<double>(mas_r.cycles))
            << " over FLAT\n\n";

  // 5. Golden-data check (paper §5.1): the functional twin must reproduce
  //    exact attention. Use a scaled-down shape so this runs instantly.
  Rng rng(2024);
  const std::int64_t n = 64, e = 16;
  TensorF q(1, 4, n, e), k(1, 4, n, e), v(1, 4, n, e);
  FillUniform(q, rng);
  FillUniform(k, rng);
  FillUniform(v, rng);
  const TensorF o = mas->Execute(q, k, v, TilingConfig{1, 2, 16, 16});
  const double err = MaxAbsDiff(o, ReferenceAttention(q, k, v));
  std::cout << "Golden check max |error| vs exact attention: " << err
            << (err < 1e-4 ? "  (PASS)" : "  (FAIL)") << "\n";
  return err < 1e-4 ? 0 : 1;
}
