// Autoregressive decode on the edge: one new token per step against a
// growing KV cache (N = 1 query row, N_kv = context length).
//
// Decode flips attention's balance: arithmetic intensity collapses to O(1)
// MACs per K/V byte, so every dataflow is DMA-bound and the MAC/VEC overlap
// that wins prefill (see llm_prefill) buys almost nothing. This example
// demonstrates the library's cross-shape support and shows *when* the
// MAS-Attention pipeline pays off — and when it cannot, which is exactly the
// scheduler-selection question an on-device runtime faces between the
// prefill and decode phases of the same model.
//
//   $ ./llm_decode [max_context]
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

int main(int argc, char** argv) {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  std::int64_t max_context = 8192;
  if (argc > 1) max_context = std::atoll(argv[1]);

  std::cout << "=== LLM decode attention (Llama3-8B-class layer, KV cache) ===\n";
  std::cout << hw.Describe() << "\n";

  std::vector<std::int64_t> contexts;
  for (std::int64_t ctx = 512; ctx <= max_context; ctx *= 2) contexts.push_back(ctx);

  const std::vector<Method> methods = {Method::kLayerWise, Method::kFlat, Method::kMas};
  TextTable table({"context", "Layer-Wise us", "FLAT us", "MAS us", "MAS vs FLAT",
                   "DMA-bound %", "KV bytes/step MB"});
  for (const NetworkWorkload& w : DecodeWorkloads(contexts)) {
    std::vector<double> us;
    double dma_frac = 0.0;
    for (Method m : methods) {
      const auto sched = MakeScheduler(m);
      const TilingConfig tiling = search::AutoTile(*sched, w.shape, hw, em);
      const auto r = sched->Simulate(w.shape, tiling, hw, em);
      us.push_back(r.cycles / (hw.frequency_ghz * 1e3));
      if (m == Method::kMas) {
        dma_frac = static_cast<double>(r.BusyCycles(sim::ResourceKind::kDma)) /
                   static_cast<double>(r.cycles);
      }
    }
    const double kv_mb =
        static_cast<double>(w.shape.KvOperandBytes(hw.element_bytes)) * 2 / (1024.0 * 1024.0);
    table.AddRow({std::to_string(w.shape.kv()), FormatFixed(us[0], 1), FormatFixed(us[1], 1),
                  FormatFixed(us[2], 1), FormatSpeedup(us[1] / us[2]),
                  FormatFixed(100.0 * dma_frac, 0), FormatFixed(kv_mb, 1)});
  }
  std::cout << table.ToString() << "\n";
  std::cout << "Decode is bandwidth-bound: the per-step latency tracks the KV-cache bytes\n";
  std::cout << "streamed from DRAM, and MAS's MAC/VEC pipelining gives only a marginal win\n";
  std::cout << "over FLAT (there is a single softmax row per head to hide). An on-device\n";
  std::cout << "runtime should pick MAS for prefill and any fused dataflow for decode —\n";
  std::cout << "the fusion (not the stream pipeline) is what eliminates the Layer-Wise\n";
  std::cout << "score-matrix round trips that dominate at long contexts.\n";
  return 0;
}
