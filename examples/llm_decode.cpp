// Autoregressive decode on the edge: one new token per step against a
// growing KV cache (N = 1 query row, N_kv = context length).
//
// Decode flips attention's balance: arithmetic intensity collapses to O(1)
// MACs per K/V byte, so every dataflow is DMA-bound and the MAC/VEC overlap
// that wins prefill (see llm_prefill) buys almost nothing. This example
// demonstrates the library's cross-shape support and shows *when* the
// MAS-Attention pipeline pays off — and when it cannot, which is exactly the
// scheduler-selection question the serve::ServeSession answers per phase
// when it plays whole request traces (see tools/mas_serve).
//
//   $ ./llm_decode [max_context]
#include <iostream>

#include "cli/args.h"
#include "common/table.h"
#include "dataflow/workloads.h"
#include "planner/planner.h"
#include "sim/hardware_config.h"

int main(int argc, char** argv) {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  std::int64_t max_context = 8192;
  try {
    if (argc > 1) {
      // Strict parse (errno/ERANGE): garbage or overflow fails loudly instead
      // of silently printing an empty table. 2^24 caps the geometric loop.
      max_context = cli::ParsePositiveInt64(argv[1], "max_context", std::int64_t{1} << 24);
    }

    std::cout << "=== LLM decode attention (Llama3-8B-class layer, KV cache) ===\n";
    std::cout << hw.Describe() << "\n";

    std::vector<std::int64_t> contexts;
    for (std::int64_t ctx = 512; ctx <= max_context;) {
      contexts.push_back(ctx);
      if (ctx > max_context / 2) break;  // overflow-safe geometric growth
      ctx *= 2;
    }

    const std::vector<std::string> methods = {"Layer-Wise", "FLAT", "MAS-Attention"};
    Planner planner;
    TextTable table({"context", "Layer-Wise us", "FLAT us", "MAS us", "MAS vs FLAT",
                     "DMA-bound %", "KV bytes/step MB"});
    for (const NetworkWorkload& w : DecodeWorkloads(contexts)) {
      std::vector<double> us;
      double dma_frac = 0.0;
      for (const std::string& m : methods) {
        const TuningPlan plan = planner.Plan(w.shape, m, hw);
        const auto r = planner.Simulate(plan, hw);
        us.push_back(r.cycles / (hw.frequency_ghz * 1e3));
        if (m == "MAS-Attention") {
          dma_frac = static_cast<double>(r.BusyCycles(sim::ResourceKind::kDma)) /
                     static_cast<double>(r.cycles);
        }
      }
      const double kv_mb =
          static_cast<double>(w.shape.KvOperandBytes(hw.element_bytes)) * 2 / (1024.0 * 1024.0);
      table.AddRow({std::to_string(w.shape.kv()), FormatFixed(us[0], 1), FormatFixed(us[1], 1),
                    FormatFixed(us[2], 1), FormatSpeedup(us[1] / us[2]),
                    FormatFixed(100.0 * dma_frac, 0), FormatFixed(kv_mb, 1)});
    }
    std::cout << table.ToString() << "\n";
    std::cout << "Decode is bandwidth-bound: the per-step latency tracks the KV-cache bytes\n";
    std::cout << "streamed from DRAM, and MAS's MAC/VEC pipelining gives only a marginal win\n";
    std::cout << "over FLAT (there is a single softmax row per head to hide). An on-device\n";
    std::cout << "runtime should pick MAS for prefill and any fused dataflow for decode —\n";
    std::cout << "which is exactly what the serving simulator does per phase: try\n";
    std::cout << "  mas_serve --trace=chat --decode-method=FLAT\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
