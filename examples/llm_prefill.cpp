// LLM prefill on the edge: schedules the attention layers of an on-device
// language model (Llama3-8B-class, per Table 1) across prefill lengths and
// reports how each dataflow scales — the paper's motivating AI-agent /
// LLM-on-smartphone scenario.
//
//   $ ./llm_prefill [max_seq]
//
// Uses the mas::Planner facade: methods are string keys into the scheduler
// registry, tilings resolve through the plan store (tuned once per shape,
// reused thereafter), and Simulate() plays the plan on the engine.
#include <iostream>

#include "cli/args.h"
#include "common/table.h"
#include "dataflow/workloads.h"
#include "planner/planner.h"
#include "sim/hardware_config.h"

int main(int argc, char** argv) try {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  std::int64_t max_seq = 2048;
  if (argc > 1) max_seq = cli::ParsePositiveInt64(argv[1], "max_seq", std::int64_t{1} << 24);

  std::cout << "=== LLM prefill attention scaling (Llama3-8B-class layer) ===\n";
  std::cout << hw.Describe() << "\n";

  const NetworkWorkload base = FindNetwork("Llama3-8B & T5-3B (T5-XL)");
  const std::vector<std::string> methods = {"Layer-Wise", "FLAT", "FuseMax",
                                            "MAS-Attention"};

  Planner planner;
  TextTable table({"prefill len", "Layer-Wise ms", "FLAT ms", "FuseMax ms", "MAS ms",
                   "MAS vs FLAT", "MAS overwrites"});
  for (std::int64_t seq = 256; seq <= max_seq;
       seq = seq > max_seq / 2 ? max_seq + 1 : seq * 2) {  // overflow-safe growth
    AttentionShape shape = base.shape;
    shape.name = "llama_prefill_" + std::to_string(seq);
    shape.seq_len = seq;
    std::vector<double> ms;
    std::int64_t overwrites = 0;
    for (const std::string& m : methods) {
      const TuningPlan plan = planner.Plan(shape, m, hw);
      const auto r = planner.Simulate(plan, hw);
      ms.push_back(r.cycles / (hw.frequency_ghz * 1e6));
      if (m == "MAS-Attention") overwrites = r.overwrite_events;
    }
    table.AddRow({std::to_string(seq), FormatFixed(ms[0], 3), FormatFixed(ms[1], 3),
                  FormatFixed(ms[2], 3), FormatFixed(ms[3], 3),
                  FormatSpeedup(ms[1] / ms[3]), std::to_string(overwrites)});
  }
  std::cout << table.ToString() << "\n";
  std::cout << "Quadratic growth in every column (attention is O(N^2)); the MAS-vs-FLAT\n";
  std::cout << "gap persists across prefill lengths, and longer prefills start exercising\n";
  std::cout << "the proactive overwrite as the score strips press on the 5 MB L1.\n";
  return 0;
} catch (const mas::Error& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
