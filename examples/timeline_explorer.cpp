// Schedule inspection end to end: simulate one (network, method) pair with a
// recorded timeline, print the terminal Gantt chart and per-resource summary,
// and export the schedule as Chrome-trace JSON + CSV for offline analysis in
// chrome://tracing / ui.perfetto.dev or a spreadsheet.
//
//   $ ./timeline_explorer [network] [method] [out_prefix]
//   $ ./timeline_explorer "BERT-Small" MAS-Attention /tmp/mas
//   -> /tmp/mas.trace.json, /tmp/mas.timeline.csv
#include <iostream>
#include <string>

#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"
#include "trace/trace.h"

int main(int argc, char** argv) {
  using namespace mas;
  const std::string network = argc > 1 ? argv[1] : "BERT-Small";
  const std::string method_name = argc > 2 ? argv[2] : "MAS-Attention";
  const std::string out_prefix = argc > 3 ? argv[3] : "";

  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  const NetworkWorkload net = FindNetwork(network);

  Method method = Method::kMas;
  bool found = false;
  for (Method m : AllMethods()) {
    if (method_name == MethodName(m)) {
      method = m;
      found = true;
    }
  }
  if (!found) {
    std::cerr << "unknown method '" << method_name << "'; options:";
    for (Method m : AllMethods()) std::cerr << " '" << MethodName(m) << "'";
    std::cerr << "\n";
    return 1;
  }

  const auto sched = MakeScheduler(method);
  const TilingConfig tiling = search::AutoTile(*sched, net.shape, hw, em);
  const auto result =
      sched->Simulate(net.shape, tiling, hw, em, /*record_timeline=*/true);

  std::cout << "=== " << sched->name() << " on " << net.shape.ToString() << " ===\n";
  std::cout << "tuned tiling: " << tiling.ToString() << "\n\n";

  trace::GanttOptions gantt;
  gantt.width = 100;
  std::cout << trace::AsciiGantt(result, gantt) << "\n";
  std::cout << trace::Summarize(result).ToString() << "\n";

  if (!out_prefix.empty()) {
    const std::string json_path = out_prefix + ".trace.json";
    const std::string csv_path = out_prefix + ".timeline.csv";
    trace::WriteFile(json_path, trace::ChromeTraceJson(result, hw.frequency_ghz));
    trace::WriteFile(csv_path, trace::TimelineCsv(result));
    std::cout << "wrote " << json_path << " (open in chrome://tracing) and " << csv_path
              << "\n";
  } else {
    std::cout << "pass an output prefix to export Chrome-trace JSON + CSV\n";
  }
  return 0;
}
