// Schedule inspection end to end: simulate one (network, method) pair with a
// recorded timeline, print the terminal Gantt chart and per-resource summary,
// and export the schedule as Chrome-trace JSON + CSV for offline analysis in
// chrome://tracing / ui.perfetto.dev or a spreadsheet.
//
// Methods are string keys into the SchedulerRegistry; the tiling resolves
// through the mas::Planner facade, and Simulate() replays the plan with
// timeline recording on.
//
//   $ ./timeline_explorer [network] [method] [out_prefix]
//   $ ./timeline_explorer "BERT-Small" MAS-Attention /tmp/mas
//   -> /tmp/mas.trace.json, /tmp/mas.timeline.csv
#include <iostream>
#include <string>

#include "dataflow/workloads.h"
#include "planner/planner.h"
#include "schedulers/registry.h"
#include "sim/hardware_config.h"
#include "trace/trace.h"

int main(int argc, char** argv) {
  using namespace mas;
  const std::string network = argc > 1 ? argv[1] : "BERT-Small";
  const std::string method = argc > 2 ? argv[2] : "MAS-Attention";
  const std::string out_prefix = argc > 3 ? argv[3] : "";

  try {
    const sim::HardwareConfig hw = sim::EdgeSimConfig();
    const NetworkWorkload net = FindNetwork(network);
    MAS_CHECK(SchedulerRegistry::Instance().Find(method) != nullptr)
        << "unknown method '" << method
        << "'; options: " << SchedulerRegistry::Instance().AvailableNames();

    Planner planner;
    const TuningPlan plan = planner.Plan(net.shape, method, hw);
    const auto result = planner.Simulate(plan, hw, /*record_timeline=*/true);

    std::cout << "=== " << method << " on " << net.shape.ToString() << " ===\n";
    std::cout << "tuned tiling: " << plan.tiling.ToString() << "\n\n";

    trace::GanttOptions gantt;
    gantt.width = 100;
    std::cout << trace::AsciiGantt(result, gantt) << "\n";
    std::cout << trace::Summarize(result).ToString() << "\n";

    if (!out_prefix.empty()) {
      const std::string json_path = out_prefix + ".trace.json";
      const std::string csv_path = out_prefix + ".timeline.csv";
      trace::WriteFile(json_path, trace::ChromeTraceJson(result, hw.frequency_ghz));
      trace::WriteFile(csv_path, trace::TimelineCsv(result));
      std::cout << "wrote " << json_path << " (open in chrome://tracing) and " << csv_path
                << "\n";
    } else {
      std::cout << "pass an output prefix to export Chrome-trace JSON + CSV\n";
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
