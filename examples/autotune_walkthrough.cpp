// Autotuning walkthrough: the offline search workflow of §4.2, end to end.
// Builds the tiling search space for one workload, runs Grid / GA / MCTS,
// prints their convergence, and cross-checks the winners on the simulator —
// the workflow a user follows to deploy MAS-Attention on a new attention
// shape or a new hardware configuration.
//
//   $ ./autotune_walkthrough [budget]
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

int main(int argc, char** argv) {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  std::int64_t budget = 600;
  if (argc > 1) budget = std::atoll(argv[1]);

  const AttentionShape shape = FindNetwork("XLM").shape;
  const auto mas = MakeScheduler(Method::kMas);

  std::cout << "=== Autotuning MAS-Attention for " << shape.ToString() << " ===\n\n";

  // The search space (§4.2: distinct spaces per factor).
  search::TilingProblem probe(*mas, shape, hw, em);
  std::cout << "Search space: |B_b|=" << probe.bb_candidates().size()
            << " x |H_h|=" << probe.hh_candidates().size()
            << " x |N_Q|=" << probe.nq_candidates().size()
            << " x |N_KV|=" << probe.nkv_candidates().size() << " = "
            << probe.bb_candidates().size() * probe.hh_candidates().size() *
                   probe.nq_candidates().size() * probe.nkv_candidates().size()
            << " tilings\n\n";

  TextTable table({"Algorithm", "evaluations", "best tiling", "best Mcycles"});
  // Exhaustive grid (what the paper uses on the DaVinci NPU).
  {
    search::TilingProblem problem(*mas, shape, hw, em);
    const auto r = search::GridSearch(problem);
    table.AddRow({"Grid (exhaustive)", std::to_string(r.evaluations), r.best.ToString(),
                  FormatFixed(r.best_cycles / 1e6, 3)});
  }
  // Genetic algorithm.
  {
    search::TilingProblem problem(*mas, shape, hw, em);
    search::GaOptions opts;
    opts.population = 20;
    opts.generations = budget / opts.population;
    opts.seed = 13;
    const auto r = search::GeneticSearch(problem, opts);
    table.AddRow({"Genetic Algorithm", std::to_string(r.evaluations), r.best.ToString(),
                  FormatFixed(r.best_cycles / 1e6, 3)});
  }
  // MCTS.
  {
    search::TilingProblem problem(*mas, shape, hw, em);
    search::MctsOptions opts;
    opts.iterations = budget;
    opts.seed = 13;
    const auto r = search::MctsSearch(problem, opts);
    table.AddRow({"MCTS", std::to_string(r.evaluations), r.best.ToString(),
                  FormatFixed(r.best_cycles / 1e6, 3)});
    std::cout << "MCTS convergence:";
    for (const auto& pt : r.trace) {
      std::cout << " (" << pt.evaluation << ", " << FormatFixed(pt.best_cycles / 1e6, 2)
                << "M)";
    }
    std::cout << "\n\n";
  }
  std::cout << table.ToString() << "\n";
  std::cout << "Heuristic searches reach (near-)grid-optimal tilings with a fraction of\n";
  std::cout << "the evaluations — the paper's offline auto-tuning story (Fig. 7).\n";
  return 0;
}
