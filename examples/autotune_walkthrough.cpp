// Autotuning walkthrough: the offline search workflow of §4.2, end to end.
// Builds the tiling search space for one workload, runs Grid / GA / MCTS,
// prints their convergence, and cross-checks the winners on the simulator —
// the workflow a user follows to deploy MAS-Attention on a new attention
// shape or a new hardware configuration.
//
//   $ ./autotune_walkthrough [budget]
//
// Uses the registry surface: strategies are selected by name through
// search::StrategyRegistry behind one SearchSpec (the facade mas::Planner
// drives on every plan-store miss).
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/registry.h"
#include "search/strategy.h"
#include "sim/hardware_config.h"

int main(int argc, char** argv) {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  std::int64_t budget = 600;
  if (argc > 1) budget = std::atoll(argv[1]);

  const AttentionShape shape = FindNetwork("XLM").shape;
  const auto mas = SchedulerRegistry::Instance().Create("MAS-Attention");

  std::cout << "=== Autotuning MAS-Attention for " << shape.ToString() << " ===\n\n";

  // The search space (§4.2: distinct spaces per factor).
  search::TilingProblem probe(*mas, shape, hw, em);
  std::cout << "Search space: |B_b|=" << probe.bb_candidates().size()
            << " x |H_h|=" << probe.hh_candidates().size()
            << " x |N_Q|=" << probe.nq_candidates().size()
            << " x |N_KV|=" << probe.nkv_candidates().size() << " = "
            << probe.bb_candidates().size() * probe.hh_candidates().size() *
                   probe.nq_candidates().size() * probe.nkv_candidates().size()
            << " tilings\n\n";

  // One spec per registered strategy; common fields (seed, budget) are set
  // once, per-strategy knobs where they matter.
  search::SearchSpec grid_spec;  // exhaustive grid (the paper's NPU search)
  grid_spec.strategy = "grid";
  search::SearchSpec ga_spec;
  ga_spec.strategy = "ga";
  ga_spec.population = 20;
  ga_spec.generations = budget / ga_spec.population;
  ga_spec.seed = 13;
  search::SearchSpec mcts_spec;
  mcts_spec.strategy = "mcts";
  mcts_spec.iterations = budget;
  mcts_spec.seed = 13;

  const std::vector<std::pair<const char*, const search::SearchSpec*>> runs = {
      {"Grid (exhaustive)", &grid_spec},
      {"Genetic Algorithm", &ga_spec},
      {"MCTS", &mcts_spec}};

  TextTable table({"Algorithm", "evaluations", "best tiling", "best Mcycles"});
  for (const auto& [label, spec_ptr] : runs) {
    const search::SearchSpec& spec = *spec_ptr;
    search::TilingProblem problem(*mas, shape, hw, em);
    const auto r = search::RunSearch(problem, spec);
    table.AddRow({label, std::to_string(r.evaluations), r.best.ToString(),
                  FormatFixed(r.best_cycles / 1e6, 3)});
    if (spec.strategy == "mcts") {
      std::cout << "MCTS convergence:";
      for (const auto& pt : r.trace) {
        std::cout << " (" << pt.evaluation << ", " << FormatFixed(pt.best_cycles / 1e6, 2)
                  << "M)";
      }
      std::cout << "\n\n";
    }
  }
  std::cout << table.ToString() << "\n";
  std::cout << "Heuristic searches reach (near-)grid-optimal tilings with a fraction of\n";
  std::cout << "the evaluations — the paper's offline auto-tuning story (Fig. 7).\n";
  return 0;
}
