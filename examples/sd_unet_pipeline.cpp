// Text-to-image on the edge: schedules all 15 attention units of the reduced
// Stable-Diffusion-1.5 UNet (paper §5.2.2) over a multi-step denoising loop
// and reports per-step and per-image attention latency under each dataflow —
// including the long-sequence 64x64 units that exercise the proactive
// overwrite.
//
//   $ ./sd_unet_pipeline [denoise_steps]
#include <cstdlib>
#include <iostream>
#include <map>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

int main(int argc, char** argv) {
  using namespace mas;
  const sim::HardwareConfig hw = sim::DavinciNpuConfig();
  const sim::EnergyModel em;
  int steps = 20;
  if (argc > 1) steps = std::atoi(argv[1]);

  std::cout << "=== SD-1.5 reduced UNet attention pipeline (" << steps
            << " denoising steps) ===\n";
  std::cout << hw.Describe() << "\n";

  const auto units = SdUnetAttentionUnits();
  const std::vector<Method> methods = {Method::kLayerWise, Method::kFlat, Method::kMas};

  TextTable per_unit({"Unit", "count", "N", "H", "Layer-Wise ms", "FLAT ms", "MAS ms",
                      "MAS overwrites"});
  std::map<Method, double> step_ms;
  for (const auto& unit : units) {
    std::vector<double> ms;
    std::int64_t overwrites = 0;
    for (Method m : methods) {
      const auto sched = MakeScheduler(m);
      const TilingConfig tiling = search::AutoTile(*sched, unit.shape, hw, em);
      const auto r = sched->Simulate(unit.shape, tiling, hw, em);
      const double t = r.cycles / (hw.frequency_ghz * 1e6);
      ms.push_back(t);
      step_ms[m] += t * unit.count;
      if (m == Method::kMas) overwrites = r.overwrite_events;
    }
    per_unit.AddRow({unit.shape.name, std::to_string(unit.count),
                     std::to_string(unit.shape.seq_len), std::to_string(unit.shape.heads),
                     FormatFixed(ms[0], 3), FormatFixed(ms[1], 3), FormatFixed(ms[2], 3),
                     std::to_string(overwrites)});
  }
  std::cout << per_unit.ToString() << "\n";

  TextTable totals({"Method", "attention ms/step", "attention ms/image",
                    "reduction vs Layer-Wise"});
  for (Method m : methods) {
    totals.AddRow({MethodName(m), FormatFixed(step_ms[m], 3),
                   FormatFixed(step_ms[m] * steps, 1),
                   FormatPercent(1.0 - step_ms[m] / step_ms[Method::kLayerWise])});
  }
  std::cout << totals.ToString() << "\n";
  std::cout << "The 64x64 (N=4096) units dominate: their score strips are megabytes, so\n";
  std::cout << "the scheduler leans on the proactive overwrite to keep the pipeline fed\n";
  std::cout << "(paper: 29.4% runtime cut on the largest unit, ~6% end-to-end).\n";
  return 0;
}
