// Text-to-image on the edge: schedules all 15 attention units of the reduced
// Stable-Diffusion-1.5 UNet (paper §5.2.2) over a multi-step denoising loop
// and reports per-step and per-image attention latency under each dataflow —
// including the long-sequence 64x64 units that exercise the proactive
// overwrite.
//
//   $ ./sd_unet_pipeline [denoise_steps]
#include <iostream>
#include <map>

#include "cli/args.h"
#include "common/table.h"
#include "dataflow/workloads.h"
#include "planner/planner.h"
#include "sim/hardware_config.h"

int main(int argc, char** argv) {
  using namespace mas;
  const sim::HardwareConfig hw = sim::DavinciNpuConfig();
  std::int64_t steps = 20;
  try {
    if (argc > 1) steps = cli::ParsePositiveInt64(argv[1], "denoise_steps", 100000);

    std::cout << "=== SD-1.5 reduced UNet attention pipeline (" << steps
              << " denoising steps) ===\n";
    std::cout << hw.Describe() << "\n";

    const auto units = SdUnetAttentionUnits();
    const std::vector<std::string> methods = {"Layer-Wise", "FLAT", "MAS-Attention"};

    Planner planner;
    TextTable per_unit({"Unit", "count", "N", "H", "Layer-Wise ms", "FLAT ms", "MAS ms",
                        "MAS overwrites"});
    std::map<std::string, double> step_ms;
    for (const auto& unit : units) {
      std::vector<double> ms;
      std::int64_t overwrites = 0;
      for (const std::string& m : methods) {
        const TuningPlan plan = planner.Plan(unit.shape, m, hw);
        const auto r = planner.Simulate(plan, hw);
        const double t = r.cycles / (hw.frequency_ghz * 1e6);
        ms.push_back(t);
        step_ms[m] += t * unit.count;
        if (m == "MAS-Attention") overwrites = r.overwrite_events;
      }
      per_unit.AddRow({unit.shape.name, std::to_string(unit.count),
                       std::to_string(unit.shape.seq_len), std::to_string(unit.shape.heads),
                       FormatFixed(ms[0], 3), FormatFixed(ms[1], 3), FormatFixed(ms[2], 3),
                       std::to_string(overwrites)});
    }
    std::cout << per_unit.ToString() << "\n";

    TextTable totals({"Method", "attention ms/step", "attention ms/image",
                      "reduction vs Layer-Wise"});
    for (const std::string& m : methods) {
      totals.AddRow({m, FormatFixed(step_ms[m], 3),
                     FormatFixed(step_ms[m] * static_cast<double>(steps), 1),
                     FormatPercent(1.0 - step_ms[m] / step_ms["Layer-Wise"])});
    }
    std::cout << totals.ToString() << "\n";
    std::cout << "The 64x64 (N=4096) units dominate: their score strips are megabytes, so\n";
    std::cout << "the scheduler leans on the proactive overwrite to keep the pipeline fed\n";
    std::cout << "(paper: 29.4% runtime cut on the largest unit, ~6% end-to-end).\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
