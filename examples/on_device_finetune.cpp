// On-device fine-tuning feasibility study: one training step of an
// attention layer (forward + backward) on the edge accelerator, across
// sequence lengths — the workload the paper's §6 future work targets.
//
// Forward uses the full MAS-Attention pipeline (tiling resolved through the
// mas::Planner facade); backward uses the stream-pipelined backward dataflow
// from the training extension. The example prints the per-step latency
// budget split and a tokens/second estimate for a BERT-Base-class layer
// stack.
//
//   $ ./on_device_finetune [layers]
#include <iostream>

#include "cli/args.h"
#include "common/table.h"
#include "dataflow/workloads.h"
#include "planner/planner.h"
#include "sim/hardware_config.h"
#include "training/backward_scheduler.h"

int main(int argc, char** argv) {
  using namespace mas;
  using training::BackwardMethod;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  std::int64_t layers = 12;  // BERT-Base depth
  try {
    if (argc > 1) layers = cli::ParsePositiveInt64(argv[1], "layers", 100000);

    std::cout << "=== On-device fine-tuning: attention fwd+bwd per training step ===\n";
    std::cout << hw.Describe() << "\n";
    std::cout << "Model: BERT-Base-class attention stack, " << layers << " layers\n\n";

    Planner planner;
    const auto bwd = training::MakeBackwardScheduler(BackwardMethod::kStream);

    TextTable table({"seq len", "fwd ms/layer", "bwd ms/layer", "step ms (stack)",
                     "bwd share", "tokens/s", "step energy mJ"});
    for (std::int64_t seq : {128, 256, 512, 1024}) {
      AttentionShape shape{"finetune", 1, 12, seq, 64};
      const TuningPlan fwd_plan = planner.Plan(shape, "MAS-Attention", hw);
      TilingConfig bwd_tiling = fwd_plan.tiling;
      while (!bwd->Fits(shape, bwd_tiling, hw) && bwd_tiling.nq > 1) bwd_tiling.nq /= 2;

      const auto fwd_r = planner.Simulate(fwd_plan, hw);
      const auto bwd_r = bwd->Simulate(shape, bwd_tiling, hw, em);
      const double fwd_ms = fwd_r.cycles / (hw.frequency_ghz * 1e6);
      const double bwd_ms = bwd_r.cycles / (hw.frequency_ghz * 1e6);
      const double step_ms = static_cast<double>(layers) * (fwd_ms + bwd_ms);
      const double step_mj =
          static_cast<double>(layers) * (fwd_r.energy.total_pj() + bwd_r.energy.total_pj()) /
          1e9;
      table.AddRow({std::to_string(seq), FormatFixed(fwd_ms, 3), FormatFixed(bwd_ms, 3),
                    FormatFixed(step_ms, 2), FormatPercent(bwd_ms / (fwd_ms + bwd_ms)),
                    FormatFixed(seq / (step_ms / 1e3), 0), FormatFixed(step_mj, 2)});
    }
    std::cout << table.ToString() << "\n";
    std::cout << "The backward pass dominates each step (~5 MatMuls vs forward's 2), which is\n";
    std::cout << "why the paper defers training support: even with stream pipelining, a\n";
    std::cout << "training step costs ~3-4x an inference pass of the same layer stack.\n";
    std::cout << "Attention-only accounting — projection/FFN GEMMs would add on top.\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
