// Vision-transformer inference on the edge: schedules every ViT variant of
// Table 1 and reports per-image attention latency and energy for FLAT vs
// MAS-Attention — the short-sequence regime (N = 196/256) where per-tile
// overheads, not DRAM bandwidth, dominate.
//
//   $ ./vision_transformer
//
// Uses the mas::Planner facade: one planner tunes (and caches) the tiling
// per (variant, method) and plays the plan on the engine.
#include <iostream>

#include "common/table.h"
#include "dataflow/workloads.h"
#include "planner/planner.h"
#include "sim/hardware_config.h"

int main() {
  using namespace mas;
  const sim::HardwareConfig hw = sim::EdgeSimConfig();

  std::cout << "=== ViT attention inference on the simulated edge device ===\n\n";

  // Transformer depth per variant (attention layers per forward pass).
  struct Variant {
    const char* table1_name;
    int depth;
  };
  const Variant variants[] = {
      {"ViT-B/14", 12}, {"ViT-L/14", 24}, {"ViT-H/14", 32},
      {"ViT-B/16", 12}, {"ViT-L/16", 24}, {"ViT-H/16", 32},
  };

  Planner planner;
  TextTable table({"Variant", "layers", "FLAT ms/img", "MAS ms/img", "speedup",
                   "FLAT uJ/img", "MAS uJ/img", "energy saved"});
  for (const Variant& var : variants) {
    const NetworkWorkload net = FindNetwork(var.table1_name);
    const auto flat_r = planner.Simulate(planner.Plan(net.shape, "FLAT", hw), hw);
    const auto mas_r = planner.Simulate(planner.Plan(net.shape, "MAS-Attention", hw), hw);
    const double flat_ms = var.depth * flat_r.cycles / (hw.frequency_ghz * 1e6);
    const double mas_ms = var.depth * mas_r.cycles / (hw.frequency_ghz * 1e6);
    const double flat_uj = var.depth * flat_r.energy.total_pj() / 1e6;
    const double mas_uj = var.depth * mas_r.energy.total_pj() / 1e6;
    table.AddRow({var.table1_name, std::to_string(var.depth), FormatFixed(flat_ms, 3),
                  FormatFixed(mas_ms, 3), FormatSpeedup(flat_ms / mas_ms),
                  FormatFixed(flat_uj, 1), FormatFixed(mas_uj, 1),
                  FormatPercent(1.0 - mas_uj / flat_uj)});
  }
  std::cout << table.ToString() << "\n";
  std::cout << "Short sequences leave the MAC array partially filled (N=196 is not a\n";
  std::cout << "multiple of 16), so tuned tilings and MAC/VEC overlap matter more than\n";
  std::cout << "bandwidth here — the regime where the paper reports up to 1.77x vs FLAT.\n";
  return 0;
}
