#include "report/harness.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/status.h"
#include "sim/hardware_config.h"

namespace mas::report {
namespace {

// Use a two-network subset so the full comparison stays fast in unit tests;
// the bench binaries run all twelve.
std::vector<NetworkWorkload> Subset() {
  return {FindNetwork("BERT-Small"), FindNetwork("ViT-B/16")};
}

class HarnessTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    hw_ = new sim::HardwareConfig(sim::EdgeSimConfig());
    em_ = new sim::EnergyModel();
    comparisons_ = new std::vector<NetworkComparison>(RunComparison(Subset(), *hw_, *em_));
  }
  static void TearDownTestSuite() {
    delete comparisons_;
    delete em_;
    delete hw_;
    comparisons_ = nullptr;
    em_ = nullptr;
    hw_ = nullptr;
  }
  static sim::HardwareConfig* hw_;
  static sim::EnergyModel* em_;
  static std::vector<NetworkComparison>* comparisons_;
};

sim::HardwareConfig* HarnessTest::hw_ = nullptr;
sim::EnergyModel* HarnessTest::em_ = nullptr;
std::vector<NetworkComparison>* HarnessTest::comparisons_ = nullptr;

TEST_F(HarnessTest, RunsAllMethodsPerNetwork) {
  ASSERT_EQ(comparisons_->size(), 2u);
  for (const auto& cmp : *comparisons_) {
    EXPECT_EQ(cmp.runs.size(), AllMethods().size());
    for (Method m : AllMethods()) {
      EXPECT_GT(cmp.Run(m).sim.cycles, 0u);
    }
  }
}

TEST_F(HarnessTest, RunLookupThrowsOnMissing) {
  NetworkComparison empty;
  empty.network = Subset()[0];
  EXPECT_THROW(empty.Run(Method::kMas), Error);
}

TEST_F(HarnessTest, CycleTableShape) {
  const TextTable t = BuildCycleTable(*comparisons_);
  // Header: network + 6 cycle columns + 5 speedup columns.
  EXPECT_EQ(t.num_cols(), 1u + 6u + 5u);
  // Rows: 2 networks + rule + geomean.
  EXPECT_EQ(t.num_rows(), 4u);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("BERT-Small"), std::string::npos);
  EXPECT_NE(s.find("Geometric Mean"), std::string::npos);
  EXPECT_NE(s.find("x"), std::string::npos);  // speedups formatted
}

TEST_F(HarnessTest, EnergyTableShape) {
  const TextTable t = BuildEnergyTable(*comparisons_);
  EXPECT_EQ(t.num_cols(), 1u + 6u + 5u);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("%"), std::string::npos);
}

TEST_F(HarnessTest, BreakdownComponentsSumToTotal) {
  const TextTable t = BuildEnergyBreakdownTable(*comparisons_);
  EXPECT_EQ(t.num_cols(), 8u);
  for (const auto& cmp : *comparisons_) {
    for (const auto& run : cmp.runs) {
      const auto& e = run.sim.energy;
      EXPECT_NEAR(e.total_pj(),
                  e.dram_pj + e.l1_pj + e.l0_pj + e.mac_pe_pj + e.vec_pe_pj, 1e-6);
    }
  }
}

TEST_F(HarnessTest, NormalizedTimeInUnitRange) {
  const std::vector<Method> methods = {Method::kLayerWise, Method::kSoftPipe, Method::kFlat,
                                       Method::kMas};
  const TextTable t = BuildNormalizedTimeTable(*comparisons_, methods);
  EXPECT_EQ(t.num_cols(), 1u + 4u + 3u);
  // MAS normalized value must be <= 1 (it never exceeds the slowest).
  for (const auto& cmp : *comparisons_) {
    double worst = 0.0;
    for (Method m : methods) {
      worst = std::max(worst, static_cast<double>(cmp.Run(m).sim.cycles));
    }
    EXPECT_LE(cmp.Run(Method::kMas).sim.cycles, worst);
  }
}

TEST_F(HarnessTest, DramAccessTableRatios) {
  const TextTable t = BuildDramAccessTable(*comparisons_);
  EXPECT_EQ(t.num_cols(), 9u);
  for (const auto& cmp : *comparisons_) {
    const auto& flat = cmp.Run(Method::kFlat).sim;
    const auto& mas = cmp.Run(Method::kMas).sim;
    EXPECT_EQ(mas.dram_write_bytes, flat.dram_write_bytes) << cmp.network.name;
  }
}

TEST_F(HarnessTest, GeomeanSpeedupAboveOne) {
  EXPECT_GT(GeomeanSpeedup(*comparisons_, Method::kLayerWise), 1.5);
  EXPECT_GT(GeomeanSpeedup(*comparisons_, Method::kFlat), 1.0);
}

TEST_F(HarnessTest, GeomeanSavingsSensible) {
  const double vs_layerwise = GeomeanSavings(*comparisons_, Method::kLayerWise);
  EXPECT_GT(vs_layerwise, 0.2);
  EXPECT_LT(vs_layerwise, 1.0);
}

}  // namespace
}  // namespace mas::report
