#include "dataflow/workloads.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "dataflow/attention_shape.h"

namespace mas {
namespace {

TEST(Workloads, TwelveTable1Rows) {
  EXPECT_EQ(Table1Networks().size(), 12u);
}

TEST(Workloads, Table1ValuesMatchPaper) {
  const auto nets = Table1Networks();
  // Spot-check each row against the paper's Table 1.
  struct Expect {
    const char* name;
    std::int64_t heads, seq, hidden, emb;
  };
  const Expect expects[] = {
      {"BERT-Base & T5-Base", 12, 512, 768, 64},
      {"BERT-Large & T5-Large", 16, 512, 1024, 64},
      {"BERT-Small", 8, 512, 512, 64},
      {"Llama3-8B & T5-3B (T5-XL)", 32, 512, 4096, 128},
      {"T5-Mini & T5-Small", 8, 512, 256, 32},
      {"ViT-B/14", 12, 196, 768, 64},
      {"ViT-L/14", 16, 196, 1024, 64},
      {"ViT-H/14", 16, 196, 1280, 80},
      {"ViT-B/16", 12, 256, 768, 64},
      {"ViT-L/16", 16, 256, 1024, 64},
      {"ViT-H/16", 16, 256, 1280, 80},
      {"XLM", 8, 512, 1024, 128},
  };
  ASSERT_EQ(nets.size(), std::size(expects));
  for (std::size_t i = 0; i < nets.size(); ++i) {
    EXPECT_EQ(nets[i].name, expects[i].name);
    EXPECT_EQ(nets[i].shape.heads, expects[i].heads) << nets[i].name;
    EXPECT_EQ(nets[i].shape.seq_len, expects[i].seq) << nets[i].name;
    EXPECT_EQ(nets[i].hidden, expects[i].hidden) << nets[i].name;
    EXPECT_EQ(nets[i].shape.embed, expects[i].emb) << nets[i].name;
    EXPECT_EQ(nets[i].shape.batch, 1) << nets[i].name;
  }
}

TEST(Workloads, FindNetwork) {
  EXPECT_EQ(FindNetwork("XLM").shape.heads, 8);
  EXPECT_THROW(FindNetwork("GPT-99"), Error);
}

TEST(Workloads, SdUnetHasFifteenUnits) {
  std::int64_t total = 0;
  for (const auto& unit : SdUnetAttentionUnits()) total += unit.count;
  EXPECT_EQ(total, 15);
}

TEST(Workloads, SdUnetLargestMatchesPaper) {
  // §5.2.2: largest attention layer has 2 heads, seq 4096, embed 64.
  const auto units = SdUnetAttentionUnits();
  const auto& largest = units.front();
  EXPECT_EQ(largest.shape.heads, 2);
  EXPECT_EQ(largest.shape.seq_len, 4096);
  EXPECT_EQ(largest.shape.embed, 64);
}

TEST(AttentionShape, TotalMacs) {
  // BERT-Base: 2 * 1 * 12 * 512^2 * 64.
  const AttentionShape s{"bert", 1, 12, 512, 64};
  EXPECT_EQ(s.TotalMacs(), 2LL * 12 * 512 * 512 * 64);
  EXPECT_EQ(s.ScoreElements(), 12LL * 512 * 512);
  EXPECT_EQ(s.OperandBytes(2), 12LL * 512 * 64 * 2);
}

TEST(AttentionShape, ValidateRejectsBadDims) {
  AttentionShape s{"bad", 0, 1, 1, 1};
  EXPECT_THROW(s.Validate(), Error);
}

TEST(TilingConfig, RowAndKvBlockCounts) {
  const AttentionShape s{"t", 1, 12, 512, 64};
  const TilingConfig t{1, 4, 128, 256};
  EXPECT_EQ(t.RowBlocks(s), 1 * 3 * 4);
  EXPECT_EQ(t.KvBlocks(s), 2);
}

TEST(TilingConfig, NonDivisorFactorsCeil) {
  const AttentionShape s{"t", 1, 12, 196, 64};
  const TilingConfig t{1, 8, 128, 128};
  EXPECT_EQ(t.RowBlocks(s), 2 * 2);  // ceil(12/8) * ceil(196/128)
  EXPECT_EQ(t.KvBlocks(s), 2);
}

TEST(TilingConfig, ValidateRange) {
  const AttentionShape s{"t", 1, 12, 512, 64};
  TilingConfig bad{1, 13, 128, 128};  // hh > heads
  EXPECT_THROW(bad.Validate(s), Error);
  TilingConfig bad2{1, 1, 0, 128};
  EXPECT_THROW(bad2.Validate(s), Error);
  TilingConfig bad3{1, 1, 128, 1024};  // nkv > seq
  EXPECT_THROW(bad3.Validate(s), Error);
  TilingConfig good{1, 12, 512, 512};
  EXPECT_NO_THROW(good.Validate(s));
}

}  // namespace
}  // namespace mas
