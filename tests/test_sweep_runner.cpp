#include "runner/sweep_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/status.h"
#include "dataflow/workloads.h"
#include "runner/thread_pool.h"
#include "schedulers/scheduler.h"
#include "sim/hardware_config.h"

namespace mas::runner {
namespace {

// Small shapes keep the autotune cheap; two of them exercise grouping.
std::vector<AttentionShape> TinyShapes() {
  return {AttentionShape{"tiny_a", 1, 2, 64, 16}, AttentionShape{"tiny_b", 1, 4, 32, 16}};
}

SweepGrid TinyGrid() {
  SweepGrid grid;
  grid.shapes = TinyShapes();
  grid.methods = AllMethods();
  grid.hardware = {sim::EdgeSimConfig()};
  return grid;
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> visits(257);
  for (auto& v : visits) v = 0;
  ParallelFor(visits.size(), 8, [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, PropagatesTheFirstExceptionByIndex) {
  try {
    ParallelFor(64, 4, [&](std::size_t i) {
      if (i == 7 || i == 60) throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 7");
  }
}

TEST(SweepGrid, ExpandsShapeMajorWithMethodsInnermost) {
  SweepGrid grid = TinyGrid();
  const std::vector<SweepJob> jobs = grid.Jobs();
  ASSERT_EQ(jobs.size(), grid.shapes.size() * grid.methods.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].shape.name, grid.shapes[i / grid.methods.size()].name);
    EXPECT_EQ(jobs[i].method, grid.methods[i % grid.methods.size()]);
  }
}

TEST(SweepGrid, RejectsEmptyDimensions) {
  SweepGrid grid;
  grid.methods = AllMethods();
  grid.hardware = {sim::EdgeSimConfig()};
  EXPECT_THROW(grid.Jobs(), Error);
}

TEST(SweepJob, CacheKeyIgnoresDisplayNameButNotParameters) {
  SweepJob a;
  a.shape = AttentionShape{"first", 1, 2, 64, 16};
  SweepJob b = a;
  b.shape.name = "second";
  EXPECT_EQ(a.CacheKey(), b.CacheKey());

  SweepJob other_method = a;
  other_method.method = Method::kFlat;
  EXPECT_NE(a.CacheKey(), other_method.CacheKey());

  SweepJob other_hw = a;
  other_hw.hw.l1_bytes /= 2;
  EXPECT_NE(a.CacheKey(), other_hw.CacheKey());

  SweepJob fixed = a;
  fixed.tiling = TilingConfig{1, 1, 16, 16};
  EXPECT_NE(a.CacheKey(), fixed.CacheKey());
}

TEST(SweepRunner, DeterministicAcrossThreadCounts) {
  const SweepGrid grid = TinyGrid();

  SweepRunner serial(SweepOptions{/*jobs=*/1, /*cache=*/true});
  SweepRunner threaded(SweepOptions{/*jobs=*/8, /*cache=*/true});
  const SweepReport a = serial.Run(grid);
  const SweepReport b = threaded.Run(grid);

  ASSERT_EQ(a.results.size(), b.results.size());
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_EQ(a.ToTable().ToString(), b.ToTable().ToString());
  EXPECT_EQ(a.SpeedupTable().ToString(), b.SpeedupTable().ToString());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].sim.cycles, b.results[i].sim.cycles) << "job " << i;
    EXPECT_EQ(a.results[i].tiling, b.results[i].tiling) << "job " << i;
  }
}

TEST(SweepRunner, DeduplicatesIdenticalJobsWithinOneRun) {
  SweepGrid grid = TinyGrid();
  std::vector<SweepJob> jobs = grid.Jobs();
  const std::size_t unique = jobs.size();
  // Append a full duplicate of the job list (with different display names,
  // which must not defeat deduplication).
  for (std::size_t i = 0; i < unique; ++i) {
    SweepJob dup = jobs[i];
    dup.shape.name += "_again";
    jobs.push_back(dup);
  }

  SweepRunner runner(SweepOptions{/*jobs=*/4, /*cache=*/true});
  const SweepReport report = runner.RunJobs(jobs);

  EXPECT_EQ(report.stats.total_jobs, static_cast<std::int64_t>(2 * unique));
  EXPECT_EQ(report.stats.simulated_jobs, static_cast<std::int64_t>(unique));
  EXPECT_EQ(report.stats.cache_hits, static_cast<std::int64_t>(unique));
  for (std::size_t i = 0; i < unique; ++i) {
    EXPECT_FALSE(report.results[i].from_cache);
    EXPECT_TRUE(report.results[unique + i].from_cache);
    EXPECT_EQ(report.results[i].sim.cycles, report.results[unique + i].sim.cycles);
  }
}

TEST(SweepRunner, CachePersistsAcrossRuns) {
  const SweepGrid grid = TinyGrid();
  SweepRunner runner(SweepOptions{/*jobs=*/2, /*cache=*/true});

  const SweepReport first = runner.Run(grid);
  EXPECT_EQ(first.stats.simulated_jobs, first.stats.total_jobs);
  EXPECT_EQ(runner.cache_size(), first.stats.total_jobs);

  const SweepReport second = runner.Run(grid);
  EXPECT_EQ(second.stats.simulated_jobs, 0);
  EXPECT_EQ(second.stats.cache_hits, second.stats.total_jobs);
  // Cached replay returns the same simulation outcomes (the cache/bookkeeping
  // fields are the only legitimate difference between the two reports).
  ASSERT_EQ(first.results.size(), second.results.size());
  for (std::size_t i = 0; i < first.results.size(); ++i) {
    EXPECT_EQ(first.results[i].sim.cycles, second.results[i].sim.cycles);
    EXPECT_EQ(first.results[i].tiling, second.results[i].tiling);
    EXPECT_TRUE(second.results[i].from_cache);
  }

  runner.ClearCache();
  EXPECT_EQ(runner.cache_size(), 0);
}

TEST(SweepRunner, CacheCanBeDisabled) {
  SweepGrid grid = TinyGrid();
  grid.shapes.resize(1);
  grid.methods = {Method::kMas, Method::kMas};

  SweepRunner runner(SweepOptions{/*jobs=*/2, /*cache=*/false});
  const SweepReport report = runner.Run(grid);
  EXPECT_EQ(report.stats.simulated_jobs, report.stats.total_jobs);
  EXPECT_EQ(report.stats.cache_hits, 0);
  EXPECT_EQ(runner.cache_size(), 0);
}

TEST(SweepRunner, InfeasibleFixedTilingFailsThatJobOnly) {
  SweepGrid grid;
  grid.shapes = {AttentionShape{"tiny", 1, 2, 64, 16}};
  grid.methods = {Method::kMas, Method::kFlat};
  grid.hardware = {sim::EdgeSimConfig()};
  // An L1 too small for any schedule makes the fixed tiling infeasible.
  grid.hardware[0].l1_bytes = 64;
  grid.tiling = TilingConfig{1, 2, 64, 64};

  SweepRunner runner(SweepOptions{/*jobs=*/2, /*cache=*/true});
  const SweepReport report = runner.Run(grid);
  EXPECT_EQ(report.stats.failed_jobs, report.stats.total_jobs);
  for (const JobResult& r : report.results) {
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("does not fit"), std::string::npos) << r.error;
  }
  // Failures surface in the aggregates rather than aborting them.
  EXPECT_NE(report.ToJson().find("\"error\""), std::string::npos);
  EXPECT_EQ(report.ToTable().num_rows(), report.results.size());
}

TEST(SweepRunner, FindLocatesResultsByNameMethodAndHardware) {
  const SweepGrid grid = TinyGrid();
  SweepRunner runner(SweepOptions{/*jobs=*/2, /*cache=*/true});
  const SweepReport report = runner.Run(grid);

  const JobResult* hit = report.Find("tiny_a", Method::kMas, "edge_sim");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->job.shape.name, "tiny_a");
  EXPECT_EQ(hit->job.method, Method::kMas);
  EXPECT_EQ(report.Find("tiny_a", Method::kMas, "no_such_hw"), nullptr);
  EXPECT_EQ(report.Find("no_such_shape", Method::kMas, "edge_sim"), nullptr);
}

// Cross-method invariant on the paper's default shapes (Table 1): the MAS
// stream pipeline never loses to FLAT's sequential rounds — its schedule
// overlaps the same MAC work with the softmax instead of serializing it.
TEST(SweepRunner, MasNeverSlowerThanFlatOnTable1Networks) {
  SweepGrid grid;
  for (const NetworkWorkload& net : Table1Networks()) grid.shapes.push_back(net.shape);
  grid.methods = {Method::kFlat, Method::kMas};
  grid.hardware = {sim::EdgeSimConfig()};
  grid.policy = TilingPolicy::kPaperProtocol;

  SweepRunner runner(SweepOptions{/*jobs=*/8, /*cache=*/true});
  const SweepReport report = runner.Run(grid);
  ASSERT_EQ(report.stats.failed_jobs, 0);

  for (const NetworkWorkload& net : Table1Networks()) {
    const JobResult* mas = report.Find(net.shape.name, Method::kMas, "edge_sim");
    const JobResult* flat = report.Find(net.shape.name, Method::kFlat, "edge_sim");
    ASSERT_NE(mas, nullptr) << net.name;
    ASSERT_NE(flat, nullptr) << net.name;
    EXPECT_LE(mas->sim.cycles, flat->sim.cycles) << net.name;
  }
  EXPECT_GE(report.GeomeanSpeedup(Method::kMas, Method::kFlat), 1.0);
}

}  // namespace
}  // namespace mas::runner
