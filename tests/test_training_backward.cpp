// Backward-pass attention: gradient correctness and schedule invariants.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernels/attention_kernels.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"
#include "training/backward_kernels.h"
#include "training/backward_scheduler.h"

namespace mas::training {
namespace {

sim::HardwareConfig Hw() { return sim::EdgeSimConfig(); }
sim::EnergyModel Em() { return sim::EnergyModel{}; }

struct Problem {
  TensorF q, k, v, dout;
  Problem(std::int64_t b, std::int64_t h, std::int64_t n, std::int64_t e,
          std::int64_t nkv = 0, std::uint64_t seed = 17)
      : q(b, h, n, e),
        k(b, h, nkv > 0 ? nkv : n, e),
        v(b, h, nkv > 0 ? nkv : n, e),
        dout(b, h, n, e) {
    Rng rng(seed);
    FillUniform(q, rng);
    FillUniform(k, rng);
    FillUniform(v, rng);
    FillUniform(dout, rng);
  }
};

TEST(SoftmaxBackward, ZeroGradientForUniformDp) {
  // softmax backward of a constant dP row is exactly zero (the Jacobian's
  // rows sum to zero): dC = P*(c - sum(c*P)) = P*(c - c) = 0.
  Rng rng(3);
  TensorF c(1, 1, 4, 8);
  FillUniform(c, rng);
  const TensorF p = SoftmaxRows(c);
  TensorF dp(1, 1, 4, 8);
  dp.Fill(0.7f);
  const TensorF dc = SoftmaxBackwardRows(p, dp);
  for (std::int64_t i = 0; i < dc.elements(); ++i) {
    EXPECT_NEAR(dc.data()[i], 0.0f, 1e-6f);
  }
}

TEST(SoftmaxBackward, RowsSumToZero) {
  // For any dP, the dC row sums to zero (softmax outputs are constrained to
  // the simplex, so gradients live in its tangent space).
  Rng rng(5);
  TensorF c(1, 2, 6, 10), dp(1, 2, 6, 10);
  FillUniform(c, rng);
  FillUniform(dp, rng);
  const TensorF dc = SoftmaxBackwardRows(SoftmaxRows(c), dp);
  for (std::int64_t h = 0; h < 2; ++h)
    for (std::int64_t m = 0; m < 6; ++m) {
      double row = 0.0;
      for (std::int64_t n = 0; n < 10; ++n) row += dc.at(0, h, m, n);
      EXPECT_NEAR(row, 0.0, 1e-5);
    }
}

TEST(ReferenceBackward, MatchesNumericalGradients) {
  // Central-difference check of a handful of elements in each input.
  Problem p(1, 2, 6, 4);
  const AttentionGrads grads = ReferenceAttentionBackward(p.q, p.k, p.v, p.dout);
  struct Probe {
    int which;
    std::int64_t h, n, e;
  };
  const Probe probes[] = {
      {0, 0, 0, 0}, {0, 1, 3, 2}, {1, 0, 5, 1}, {1, 1, 2, 3}, {2, 0, 4, 0}, {2, 1, 1, 2},
  };
  for (const Probe& probe : probes) {
    const double numeric =
        NumericalGradient(p.q, p.k, p.v, p.dout, probe.which, 0, probe.h, probe.n, probe.e);
    const TensorF& g = probe.which == 0 ? grads.dq : probe.which == 1 ? grads.dk : grads.dv;
    EXPECT_NEAR(g.at(0, probe.h, probe.n, probe.e), numeric, 5e-3)
        << "which=" << probe.which << " h=" << probe.h << " n=" << probe.n
        << " e=" << probe.e;
  }
}

TEST(TiledBackward, MatchesReferenceAcrossTilings) {
  Problem p(1, 2, 24, 8);
  const AttentionGrads ref = ReferenceAttentionBackward(p.q, p.k, p.v, p.dout);
  for (const auto& [nq, nkv] : std::vector<std::pair<std::int64_t, std::int64_t>>{
           {24, 24}, {8, 8}, {5, 7}, {1, 24}, {24, 1}}) {
    const AttentionGrads tiled = TiledAttentionBackward(p.q, p.k, p.v, p.dout, nq, nkv);
    EXPECT_LT(MaxAbsDiff(tiled.dq, ref.dq), 1e-4) << nq << "," << nkv;
    EXPECT_LT(MaxAbsDiff(tiled.dk, ref.dk), 1e-4) << nq << "," << nkv;
    EXPECT_LT(MaxAbsDiff(tiled.dv, ref.dv), 1e-4) << nq << "," << nkv;
  }
}

TEST(TiledBackward, CrossAttentionShapes) {
  Problem p(1, 2, 20, 8, /*nkv=*/12);
  const AttentionGrads ref = ReferenceAttentionBackward(p.q, p.k, p.v, p.dout);
  const AttentionGrads tiled = TiledAttentionBackward(p.q, p.k, p.v, p.dout, 8, 5);
  EXPECT_LT(MaxAbsDiff(tiled.dq, ref.dq), 1e-4);
  EXPECT_LT(MaxAbsDiff(tiled.dk, ref.dk), 1e-4);
  EXPECT_LT(MaxAbsDiff(tiled.dv, ref.dv), 1e-4);
  EXPECT_EQ(tiled.dk.shape().n, 12);
  EXPECT_EQ(tiled.dq.shape().n, 20);
}

TEST(BackwardSchedulers, ExecuteGoldenCheck) {
  Problem p(1, 3, 32, 8);
  const AttentionGrads ref = ReferenceAttentionBackward(p.q, p.k, p.v, p.dout);
  for (BackwardMethod m : {BackwardMethod::kSequential, BackwardMethod::kStream}) {
    const auto sched = MakeBackwardScheduler(m);
    const AttentionGrads got = sched->Execute(p.q, p.k, p.v, p.dout, TilingConfig{1, 1, 8, 16});
    EXPECT_LT(MaxAbsDiff(got.dq, ref.dq), 1e-4) << sched->name();
    EXPECT_LT(MaxAbsDiff(got.dk, ref.dk), 1e-4) << sched->name();
    EXPECT_LT(MaxAbsDiff(got.dv, ref.dv), 1e-4) << sched->name();
  }
}

TEST(BackwardSchedulers, SimulateProducesWork) {
  const AttentionShape shape{"bwd", 1, 8, 512, 64};
  const TilingConfig tiling{1, 1, 64, 512};
  for (BackwardMethod m : {BackwardMethod::kSequential, BackwardMethod::kStream}) {
    const auto sched = MakeBackwardScheduler(m);
    ASSERT_TRUE(sched->Fits(shape, tiling, Hw())) << sched->name();
    const auto r = sched->Simulate(shape, tiling, Hw(), Em());
    EXPECT_GT(r.cycles, 0u) << sched->name();
    EXPECT_GT(r.dram_read_bytes, 0) << sched->name();
    // Writes: dQ (N x E) + dK + dV (Nkv x E each) per head.
    const std::int64_t eb = Hw().element_bytes;
    EXPECT_EQ(r.dram_write_bytes,
              shape.OperandBytes(eb) + 2 * shape.KvOperandBytes(eb))
        << sched->name();
  }
}

TEST(BackwardSchedulers, StreamBeatsSequential) {
  // The headline of the extension: MAS-style pipelining helps backward too.
  const AttentionShape shape{"bwd", 1, 8, 512, 64};
  const TilingConfig tiling{1, 1, 64, 512};
  const auto seq = MakeBackwardScheduler(BackwardMethod::kSequential);
  const auto stream = MakeBackwardScheduler(BackwardMethod::kStream);
  const auto r_seq = seq->Simulate(shape, tiling, Hw(), Em());
  const auto r_stream = stream->Simulate(shape, tiling, Hw(), Em());
  EXPECT_LT(r_stream.cycles, r_seq.cycles);
}

TEST(BackwardSchedulers, BackwardCostsMoreThanForwardFloor) {
  // Five MatMuls per block vs forward's two: backward cycles must exceed
  // 2x the forward MAC floor.
  const AttentionShape shape{"bwd", 1, 8, 512, 64};
  const TilingConfig tiling{1, 1, 64, 512};
  const auto stream = MakeBackwardScheduler(BackwardMethod::kStream);
  const auto r = stream->Simulate(shape, tiling, Hw(), Em());
  const double fwd_floor = static_cast<double>(shape.TotalMacs()) /
                           static_cast<double>(Hw().TotalMacThroughput());
  EXPECT_GT(static_cast<double>(r.cycles), 2.0 * fwd_floor);
}

TEST(BackwardSchedulers, MacWorkIdenticalAcrossDataflows) {
  const AttentionShape shape{"bwd", 1, 4, 256, 64};
  const TilingConfig tiling{1, 1, 64, 256};
  const auto seq = MakeBackwardScheduler(BackwardMethod::kSequential);
  const auto stream = MakeBackwardScheduler(BackwardMethod::kStream);
  const auto r_seq = seq->Simulate(shape, tiling, Hw(), Em());
  const auto r_stream = stream->Simulate(shape, tiling, Hw(), Em());
  const double tol = r_seq.energy.mac_pe_pj * 1e-9;
  EXPECT_NEAR(r_stream.energy.mac_pe_pj, r_seq.energy.mac_pe_pj, tol);
  EXPECT_NEAR(r_stream.energy.vec_pe_pj, r_seq.energy.vec_pe_pj, tol);
}

TEST(BackwardSchedulers, InfeasibleTilingRejected) {
  const AttentionShape shape{"bwd", 1, 32, 4096, 128};
  const TilingConfig huge{1, 32, 4096, 4096};
  for (BackwardMethod m : {BackwardMethod::kSequential, BackwardMethod::kStream}) {
    const auto sched = MakeBackwardScheduler(m);
    EXPECT_FALSE(sched->Fits(shape, huge, Hw())) << sched->name();
    EXPECT_THROW(sched->Simulate(shape, huge, Hw(), Em()), Error) << sched->name();
  }
}

TEST(BackwardSchedulers, StreamNeedsMoreL1ThanSequential) {
  // The stream pipeline keeps two blocks in flight; on a budget sized
  // between the two footprints, only the sequential dataflow fits.
  const AttentionShape shape{"bwd", 1, 1, 2048, 64};
  const TilingConfig tiling{1, 1, 128, 256};
  sim::HardwareConfig hw = Hw();
  hw.cores.resize(1);
  const auto seq = MakeBackwardScheduler(BackwardMethod::kSequential);
  const auto stream = MakeBackwardScheduler(BackwardMethod::kStream);
  // Find a budget where they diverge.
  bool diverged = false;
  for (std::int64_t mb = 1; mb <= 8 && !diverged; ++mb) {
    hw.l1_bytes = mb * 1024 * 1024;
    diverged = seq->Fits(shape, tiling, hw) && !stream->Fits(shape, tiling, hw);
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace mas::training
