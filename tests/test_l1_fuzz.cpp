// Randomized alloc/free fuzzing of the L1 occupancy tracker: the tracker's
// accounting must stay exact against a shadow model under arbitrary
// interleavings, and its invariants (used <= capacity, peak monotone,
// used = sum of live sizes) must never break.
#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "sim/l1_tracker.h"

namespace mas::sim {
namespace {

class L1Fuzz : public testing::TestWithParam<int> {};

TEST_P(L1Fuzz, ShadowModelAgreesOverRandomOps) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const std::int64_t capacity = 64 * 1024;
  L1Tracker tracker(capacity);
  std::map<std::string, std::int64_t> shadow;
  std::int64_t shadow_used = 0;
  std::int64_t shadow_peak = 0;

  for (int step = 0; step < 2000; ++step) {
    const std::string name = "buf" + std::to_string(rng.NextBelow(24));
    const bool live = shadow.count(name) > 0;
    if (!live && rng.NextBool(0.6)) {
      const std::int64_t bytes = 1 + static_cast<std::int64_t>(rng.NextBelow(8 * 1024));
      if (shadow_used + bytes <= capacity) {
        ASSERT_TRUE(tracker.CanFit(bytes));
        tracker.Alloc(name, bytes);
        shadow[name] = bytes;
        shadow_used += bytes;
        shadow_peak = std::max(shadow_peak, shadow_used);
      } else {
        EXPECT_FALSE(tracker.CanFit(bytes));
        EXPECT_THROW(tracker.Alloc(name, bytes), Error);
      }
    } else if (live) {
      if (rng.NextBool()) {
        tracker.Free(name);
      } else {
        EXPECT_TRUE(tracker.FreeIfLive(name));
      }
      shadow_used -= shadow[name];
      shadow.erase(name);
    } else {
      // Free of a dead buffer must throw; FreeIfLive must be a no-op.
      EXPECT_THROW(tracker.Free(name), Error);
      EXPECT_FALSE(tracker.FreeIfLive(name));
    }

    // Invariants after every step.
    ASSERT_EQ(tracker.used(), shadow_used);
    ASSERT_EQ(tracker.peak(), shadow_peak);
    ASSERT_LE(tracker.used(), tracker.capacity());
    ASSERT_EQ(tracker.free_bytes(), capacity - shadow_used);
    std::int64_t live_sum = 0;
    for (const auto& buf : tracker.LiveBuffers()) {
      ASSERT_TRUE(shadow.count(buf));
      ASSERT_EQ(tracker.SizeOf(buf), shadow.at(buf));
      live_sum += tracker.SizeOf(buf);
    }
    ASSERT_EQ(live_sum, shadow_used);
    ASSERT_EQ(tracker.LiveBuffers().size(), shadow.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, L1Fuzz, testing::Range(1, 9));

}  // namespace
}  // namespace mas::sim
