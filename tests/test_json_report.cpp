#include "report/json_report.h"

#include <gtest/gtest.h>

#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

namespace mas::report {
namespace {

struct Fixture {
  AttentionShape shape{"tiny", 1, 2, 64, 16};
  sim::HardwareConfig hw = sim::EdgeSimConfig();
  sim::EnergyModel em;
  TilingConfig tiling{1, 1, 32, 32};

  NamedRun Run(Method m) const {
    const auto sched = MakeScheduler(m);
    return {m, tiling, sched->Simulate(shape, tiling, hw, em)};
  }
};

bool BalancedJson(const std::string& json) {
  std::int64_t depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TEST(RunJsonTest, ContainsAllSections) {
  Fixture f;
  const NamedRun run = f.Run(Method::kMas);
  const std::string json = RunJson(f.shape, run.method, run.tiling, f.hw, run.result);
  EXPECT_TRUE(BalancedJson(json)) << json;
  for (const char* key :
       {"\"shape\"", "\"hardware\"", "\"method\"", "\"tiling\"", "\"cycles\"",
        "\"latency_ms\"", "\"energy_pj\"", "\"dram_read_bytes\"", "\"mac_utilization\"",
        "\"overwrite_events\"", "\"resources\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"method\":\"MAS-Attention\""), std::string::npos);
}

TEST(RunJsonTest, ShapeFieldsCorrect) {
  Fixture f;
  const NamedRun run = f.Run(Method::kFlat);
  const std::string json = RunJson(f.shape, run.method, run.tiling, f.hw, run.result);
  EXPECT_NE(json.find("\"batch\":1"), std::string::npos);
  EXPECT_NE(json.find("\"heads\":2"), std::string::npos);
  EXPECT_NE(json.find("\"seq_len\":64"), std::string::npos);
  EXPECT_NE(json.find("\"embed\":16"), std::string::npos);
  EXPECT_NE(json.find("\"kv_len\":64"), std::string::npos);
}

TEST(RunsJsonTest, OneEntryPerRun) {
  Fixture f;
  std::vector<NamedRun> runs;
  for (Method m : {Method::kLayerWise, Method::kFlat, Method::kMas}) {
    runs.push_back(f.Run(m));
  }
  const std::string json = RunsJson(f.shape, f.hw, runs);
  EXPECT_TRUE(BalancedJson(json)) << json;
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"method\":", pos)) != std::string::npos) {
    ++count;
    pos += 9;
  }
  EXPECT_EQ(count, runs.size());
}

TEST(RunsJsonTest, CyclesMatchSimulation) {
  Fixture f;
  const NamedRun run = f.Run(Method::kMas);
  const std::string json = RunsJson(f.shape, f.hw, {run});
  EXPECT_NE(json.find("\"cycles\":" + std::to_string(run.result.cycles)),
            std::string::npos);
}

TEST(RunsJsonTest, CrossAttentionKvLenSerialized) {
  Fixture f;
  f.shape = AttentionShape{"xattn", 1, 2, 64, 16, 48};
  f.tiling = TilingConfig{1, 1, 32, 48};
  const NamedRun run = f.Run(Method::kMas);
  const std::string json = RunsJson(f.shape, f.hw, {run});
  EXPECT_NE(json.find("\"kv_len\":48"), std::string::npos);
}

}  // namespace
}  // namespace mas::report
