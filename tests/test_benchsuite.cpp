#include "benchsuite/suite.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/json_reader.h"
#include "common/json_writer.h"
#include "common/status.h"

namespace mas::bench {
namespace {

// Runs a suite the way the mas_bench driver does: inside the
// BENCH_<name>.json envelope object. Returns the document bytes.
std::string RunSuite(const BenchSuite& suite, SuiteContext& ctx) {
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("suite", suite.info().name);
  json.KeyValue("artifact", suite.info().artifact);
  suite.Run(ctx, json);
  json.EndObject();
  return json.Take();
}

TEST(SuiteRegistry, ListsEveryPortedBenchExactlyOnce) {
  const auto suites = SuiteRegistry::Instance().List();
  // One registered suite per ported bench binary (the two true microbenches
  // bench_engine_micro / bench_kernels_micro stay standalone).
  const std::vector<std::string> expected = {
      "table2",          "table3",         "fig5",
      "fig6",            "dram_access",    "fig1",
      "fig23",           "fig7",           "search_improvement",
      "ablation_tiling", "ablation_overwrite", "ablation_bandwidth",
      "ablation_cores",  "cross_attention",    "seq_sweep",
      "limits_maxseq",   "sd_unet_e2e",        "training_backward",
      "serve_llm_chat",  "serve_decode_heavy", "serve_mixed_sd",
      "serve_slo_sweep", "serve_resilience",   "serve_fleet",
      "serve_hetero_pareto"};
  ASSERT_EQ(suites.size(), expected.size());
  for (std::size_t i = 0; i < suites.size(); ++i) {
    EXPECT_EQ(suites[i].name, expected[i]);
    EXPECT_FALSE(suites[i].artifact.empty()) << suites[i].name;
    EXPECT_FALSE(suites[i].summary.empty()) << suites[i].name;
  }
}

TEST(SuiteRegistry, FindAndGetAgree) {
  const SuiteInfo* info = SuiteRegistry::Instance().Find("table2");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->artifact, "Table 2");
  EXPECT_EQ(SuiteRegistry::Instance().Get("table2").info().name, "table2");
  EXPECT_EQ(SuiteRegistry::Instance().Find("nope"), nullptr);
}

TEST(SuiteRegistry, UnknownNamesThrowListingTheCatalog) {
  try {
    SuiteRegistry::Instance().Get("bogus");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("'table2'"), std::string::npos);
    EXPECT_NE(what.find("'training_backward'"), std::string::npos);
  }
  EXPECT_THROW(SuiteRegistry::Instance().Resolve("table2,bogus"), Error);
  EXPECT_THROW(SuiteRegistry::Instance().Resolve(""), Error);
}

TEST(SuiteRegistry, ResolvePreservesOrderAndExpandsAll) {
  const auto picked = SuiteRegistry::Instance().Resolve("fig23,table2");
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0]->info().name, "fig23");
  EXPECT_EQ(picked[1]->info().name, "table2");

  const auto all = SuiteRegistry::Instance().Resolve("all");
  const auto listed = SuiteRegistry::Instance().List();
  ASSERT_EQ(all.size(), listed.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i]->info().name, listed[i].name);
  }
}

TEST(BenchSuite, LimitsMaxSeqEmitsValidDeterministicJson) {
  // The §5.6 suite is pure feasibility analysis (no search, no simulation) —
  // cheap enough to run end to end and pin the paper's 2x claim.
  std::ostringstream text;
  SuiteContext ctx(/*jobs=*/1, text);
  const BenchSuite& suite = SuiteRegistry::Instance().Get("limits_maxseq");
  const std::string doc = RunSuite(suite, ctx);

  const json::Value parsed = json::Parse(doc);  // throws if malformed
  EXPECT_EQ(parsed.Get("suite").AsString(), "limits_maxseq");
  const std::int64_t mas_max = parsed.Get("mas_max_seq").AsInt64();
  const std::int64_t flat_max = parsed.Get("flat_max_seq").AsInt64();
  EXPECT_GT(mas_max, 0);
  EXPECT_NEAR(parsed.Get("flat_over_mas_ratio").AsDouble(),
              static_cast<double>(flat_max) / static_cast<double>(mas_max), 1e-12);
  EXPECT_NEAR(static_cast<double>(flat_max) / static_cast<double>(mas_max), 2.0, 0.05);
  EXPECT_NE(text.str().find("Maximum sequence length"), std::string::npos);

  // Determinism: a fresh context reproduces the bytes.
  std::ostringstream text2;
  SuiteContext ctx2(/*jobs=*/1, text2);
  EXPECT_EQ(RunSuite(suite, ctx2), doc);
}

TEST(BenchSuite, Fig23WarmRerunDoesZeroSearchEvaluations) {
  // First run tunes the FLAT baselines (plan-store misses); a second run on
  // the same context must serve every plan from the store — zero new search
  // evaluations — and reproduce the JSON byte for byte. This is the
  // in-process twin of the mas_bench --plan-cache CI check.
  std::ostringstream text;
  SuiteContext ctx(/*jobs=*/2, text);
  const BenchSuite& suite = SuiteRegistry::Instance().Get("fig23");

  const std::string cold = RunSuite(suite, ctx);
  const std::int64_t evals_after_cold = ctx.planner().search_evaluations();
  EXPECT_GT(evals_after_cold, 0);
  EXPECT_GT(ctx.planner().plans_tuned(), 0);

  const std::string warm = RunSuite(suite, ctx);
  EXPECT_EQ(ctx.planner().search_evaluations(), evals_after_cold);
  EXPECT_EQ(warm, cold);

  // And through a serialized plan store (the --plan-cache path): a fresh
  // context warm-loaded from the first one's store also searches nothing.
  std::ostringstream text3;
  SuiteContext fresh(/*jobs=*/1, text3);
  fresh.planner().store() = PlanStore::FromJson(ctx.planner().store().ToJson());
  EXPECT_EQ(RunSuite(suite, fresh), cold);
  EXPECT_EQ(fresh.planner().search_evaluations(), 0);
  EXPECT_EQ(fresh.planner().plans_tuned(), 0);
}

TEST(BenchSuite, ComparisonGridDedupsAcrossSuites) {
  // table2 / table3 / fig6 / dram_access share one Table-1 grid through the
  // context runner; after the first suite evaluates it, the others must be
  // pure cache hits. Proven here on the cheap fig23 + ablation pair sharing
  // the planner instead (full Table-1 is too slow for a unit test): the
  // second PlanFixed/Plan for an identical request reuses the stored plan.
  std::ostringstream text;
  SuiteContext ctx(/*jobs=*/1, text);
  const AttentionShape shape{"dedup", 1, 1, 256, 64};
  const TuningPlan a = ctx.planner().Plan(shape, "FLAT", ctx.edge_hw());
  const std::int64_t evals = ctx.planner().search_evaluations();
  const TuningPlan b = ctx.planner().Plan(shape, "FLAT", ctx.edge_hw());
  EXPECT_EQ(ctx.planner().search_evaluations(), evals);
  EXPECT_EQ(a.tiling, b.tiling);
  EXPECT_EQ(ctx.planner().plans_reused(), 1);
}

}  // namespace
}  // namespace mas::bench
