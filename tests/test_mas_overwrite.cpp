// Tests for MAS-Attention's proactive buffer overwrite (§4.3, Figs. 2-3).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataflow/workloads.h"
#include "kernels/attention_kernels.h"
#include "schedulers/impls.h"
#include "tensor/tensor.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

namespace mas {
namespace {

sim::EnergyModel Em() { return sim::EnergyModel{}; }

// A configuration engineered to be L1-tight: one core (so the full L1 is one
// partition), long sequence, strips sized so two strips + resident K/V
// overflow but two strips + streamed tiles fit.
sim::HardwareConfig TightHw() {
  sim::HardwareConfig hw = sim::EdgeSimConfig();
  hw.cores.resize(1);
  hw.l1_bytes = 1 * 1024 * 1024;  // 1 MB
  return hw;
}

// Shape/tiling with strip = 1*256*2048*2 = 1 MB? too big; use 128 rows:
// strip = 128*2048*2 = 512 KB; 2 strips = 1 MB... leave margin below.
AttentionShape LongSeq() { return AttentionShape{"long", 1, 1, 2048, 64}; }

TEST(MasOverwrite, TriggersUnderMemoryPressure) {
  const sim::HardwareConfig hw = TightHw();
  const AttentionShape shape = LongSeq();
  // strip(nq=96) = 96*2048*2 = 384 KB; staging (2 Q + 2 O blocks) = 48 KB;
  // streamed K/V tile staging (nkv=256) = 4*32 KB = 128 KB. Two strips +
  // staging + stream buffers = 944 KB fits the 1 MB L1, so Fits() accepts.
  // But K/V group residency = 2*2048*64*2 = 512 KB: one strip + K/V + staging
  // (944 KB) fits, so the scheduler goes resident — and then the *second*
  // pipeline strip cannot be allocated: the proactive overwrite must fire.
  const TilingConfig tiling{1, 1, 96, 256};
  const auto mas = MakeScheduler(Method::kMas);
  ASSERT_TRUE(mas->Fits(shape, tiling, hw));
  const auto r = mas->Simulate(shape, tiling, hw, Em());
  EXPECT_GT(r.overwrite_events, 0);
  EXPECT_GT(r.reload_bytes, 0);
}

TEST(MasOverwrite, SilentWhenMemoryAmple) {
  const sim::HardwareConfig hw = sim::EdgeSimConfig();  // 5 MB shared
  const AttentionShape shape{"small", 1, 2, 256, 64};
  const TilingConfig tiling{1, 1, 64, 256};
  const auto mas = MakeScheduler(Method::kMas);
  const auto r = mas->Simulate(shape, tiling, hw, Em());
  EXPECT_EQ(r.overwrite_events, 0);
  EXPECT_EQ(r.reload_bytes, 0);
}

TEST(MasOverwrite, ExtraReadsOnlyNoExtraWrites) {
  // The overwrite mechanism reloads K/V (reads); it must never add DRAM
  // writes (§5.4.1).
  const sim::HardwareConfig hw = TightHw();
  const AttentionShape shape = LongSeq();
  const TilingConfig tiling{1, 1, 96, 256};
  const auto mas = MakeScheduler(Method::kMas);
  const auto flat = MakeScheduler(Method::kFlat);
  const TilingConfig flat_tiling = search::AutoTile(*flat, shape, hw, Em());
  const auto mas_r = mas->Simulate(shape, tiling, hw, Em());
  const auto flat_r = flat->Simulate(shape, flat_tiling, hw, Em());
  EXPECT_EQ(mas_r.dram_write_bytes, flat_r.dram_write_bytes);
  EXPECT_GT(mas_r.dram_read_bytes, flat_r.dram_read_bytes);
}

TEST(MasOverwrite, ProfileDistinguishesVictims) {
  const sim::HardwareConfig hw = TightHw();
  const AttentionShape shape = LongSeq();
  const TilingConfig tiling{1, 1, 96, 256};
  const auto profile = MasScheduler::ProfileOverwrites(shape, tiling, hw);
  EXPECT_GT(profile.v_overwrites + profile.k_overwrites, 0);
}

TEST(MasOverwrite, OverwriteCheaperThanNotFitting) {
  // With overwrite, MAS still finishes and remains faster than FLAT on the
  // same tight hardware (the paper's claim that the extra reads are
  // "unnoticeable" in latency).
  const sim::HardwareConfig hw = TightHw();
  const AttentionShape shape = LongSeq();
  const auto mas = MakeScheduler(Method::kMas);
  const auto flat = MakeScheduler(Method::kFlat);
  const TilingConfig mas_tiling = search::AutoTile(*mas, shape, hw, Em());
  const TilingConfig flat_tiling = search::AutoTile(*flat, shape, hw, Em());
  const auto mas_r = mas->Simulate(shape, mas_tiling, hw, Em());
  const auto flat_r = flat->Simulate(shape, flat_tiling, hw, Em());
  EXPECT_LT(mas_r.cycles, flat_r.cycles);
}

TEST(MasOverwrite, PipelineBoundHalvesMaxSequence) {
  // §5.6: MAS needs two strips on-chip where FLAT needs one, so FLAT fits
  // roughly twice the sequence length at row granularity.
  sim::HardwareConfig hw = sim::EdgeSimConfig();
  hw.cores.resize(1);  // single core owns the full 5 MB
  const auto mas = MakeScheduler(Method::kMas);
  const auto flat = MakeScheduler(Method::kFlat);
  auto max_seq = [&](const Scheduler& sched) {
    std::int64_t best = 0;
    for (std::int64_t n = 1 << 16; n <= (1 << 22); n *= 2) {
      const AttentionShape shape{"probe", 1, 1, n, 64};
      const TilingConfig tiling{1, 1, 1, 1024};  // one row at a time
      if (sched.Fits(shape, tiling, hw)) best = n;
    }
    return best;
  };
  const std::int64_t mas_max = max_seq(*mas);
  const std::int64_t flat_max = max_seq(*flat);
  EXPECT_EQ(flat_max, 2 * mas_max);
}

TEST(MasOverwrite, GoldenCheckStillPassesUnderPressure) {
  // Functional correctness is independent of the overwrite machinery, but
  // exercise the tight tiling through the functional twin for completeness.
  Rng rng(31);
  const std::int64_t n = 64, e = 8;
  TensorF q(1, 1, n, e), k(1, 1, n, e), v(1, 1, n, e);
  FillUniform(q, rng);
  FillUniform(k, rng);
  FillUniform(v, rng);
  const auto mas = MakeScheduler(Method::kMas);
  const TensorF o = mas->Execute(q, k, v, TilingConfig{1, 1, 3, 16});
  EXPECT_LT(MaxAbsDiff(o, ReferenceAttention(q, k, v)), 2e-5);
}

TEST(MasNoOverwrite, MatchesMasWhenMemoryAmple) {
  // Without pressure the two variants emit the identical pipeline.
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const AttentionShape shape{"small", 1, 2, 256, 64};
  const TilingConfig tiling{1, 1, 64, 256};
  const auto mas = MakeScheduler(Method::kMas);
  const auto ablated = MakeScheduler(Method::kMasNoOverwrite);
  const auto a = mas->Simulate(shape, tiling, hw, Em());
  const auto b = ablated->Simulate(shape, tiling, hw, Em());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes);
}

TEST(MasNoOverwrite, StallsUnderPressure) {
  // Under the engineered pressure the ablated variant must be slower than
  // full MAS (it loses the MAC/VEC overlap on pressured rounds) and must
  // report no overwrite activity.
  const sim::HardwareConfig hw = TightHw();
  const AttentionShape shape = LongSeq();
  const TilingConfig tiling{1, 1, 96, 256};
  const auto mas = MakeScheduler(Method::kMas);
  const auto ablated = MakeScheduler(Method::kMasNoOverwrite);
  const auto with = mas->Simulate(shape, tiling, hw, Em());
  const auto without = ablated->Simulate(shape, tiling, hw, Em());
  ASSERT_GT(with.overwrite_events, 0);
  EXPECT_EQ(without.overwrite_events, 0);
  EXPECT_EQ(without.reload_bytes, 0);
  EXPECT_LT(with.cycles, without.cycles);
}

TEST(MasNoOverwrite, GoldenCheckMatchesReference) {
  Rng rng(37);
  const std::int64_t n = 48, e = 8;
  TensorF q(1, 2, n, e), k(1, 2, n, e), v(1, 2, n, e);
  FillUniform(q, rng);
  FillUniform(k, rng);
  FillUniform(v, rng);
  const auto ablated = MakeScheduler(Method::kMasNoOverwrite);
  const TensorF o = ablated->Execute(q, k, v, TilingConfig{1, 1, 16, 16});
  EXPECT_LT(MaxAbsDiff(o, ReferenceAttention(q, k, v)), 2e-5);
}

TEST(MasNoOverwrite, NotInPaperMethodList) {
  for (Method m : AllMethods()) {
    EXPECT_NE(m, Method::kMasNoOverwrite);
  }
  EXPECT_STREQ(MethodName(Method::kMasNoOverwrite), "MAS (no overwrite)");
}

}  // namespace
}  // namespace mas
