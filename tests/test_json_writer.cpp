#include "common/json_writer.h"

#include <gtest/gtest.h>

namespace mas {
namespace {

TEST(JsonEscapeTest, PassesPlainText) {
  EXPECT_EQ(JsonEscape("hello world"), "hello world");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslash) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscapeTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter w;
  w.BeginObject().EndObject();
  EXPECT_EQ(w.Take(), "{}");
}

TEST(JsonWriterTest, EmptyArray) {
  JsonWriter w;
  w.BeginArray().EndArray();
  EXPECT_EQ(w.Take(), "[]");
}

TEST(JsonWriterTest, KeyValuePairs) {
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("a", std::int64_t{1});
  w.KeyValue("b", "two");
  w.KeyValue("c", true);
  w.EndObject();
  EXPECT_EQ(w.Take(), R"({"a":1,"b":"two","c":true})");
}

TEST(JsonWriterTest, ArrayOfValues) {
  JsonWriter w;
  w.BeginArray();
  w.Value(std::int64_t{1}).Value(std::int64_t{2}).Value(std::int64_t{3});
  w.EndArray();
  EXPECT_EQ(w.Take(), "[1,2,3]");
}

TEST(JsonWriterTest, NestedContainers) {
  JsonWriter w;
  w.BeginObject();
  w.BeginArray("xs");
  w.BeginObject();
  w.KeyValue("k", std::int64_t{7});
  w.EndObject();
  w.EndArray();
  w.BeginObject("meta");
  w.KeyValue("ok", false);
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.Take(), R"({"xs":[{"k":7}],"meta":{"ok":false}})");
}

TEST(JsonWriterTest, DoubleFormatting) {
  JsonWriter w;
  w.BeginArray();
  w.Value(1.5);
  w.Value(0.0);
  w.EndArray();
  EXPECT_EQ(w.Take(), "[1.5,0]");
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  JsonWriter w;
  w.BeginArray();
  w.Value(std::numeric_limits<double>::infinity());
  w.Value(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(w.Take(), "[null,null]");
}

TEST(JsonWriterTest, EscapesKeysAndStringValues) {
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("ke\"y", "va\\lue");
  w.EndObject();
  EXPECT_EQ(w.Take(), R"({"ke\"y":"va\\lue"})");
}

TEST(JsonWriterTest, UnbalancedTakeThrows) {
  JsonWriter w;
  w.BeginObject();
  EXPECT_THROW(w.Take(), Error);
}

TEST(JsonWriterTest, MismatchedCloseThrows) {
  JsonWriter w;
  w.BeginObject();
  EXPECT_THROW(w.EndArray(), Error);
}

TEST(JsonWriterTest, KeyOutsideObjectThrows) {
  JsonWriter w;
  w.BeginArray();
  EXPECT_THROW(w.KeyValue("k", std::int64_t{1}), Error);
}

}  // namespace
}  // namespace mas
