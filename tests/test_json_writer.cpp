#include "common/json_writer.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <limits>

#include <gtest/gtest.h>

#include "common/json_reader.h"

namespace mas {
namespace {

// The awkward doubles the plan cache and bench JSON must never perturb:
// subnormal-adjacent tiny magnitudes, the classic shortest-vs-exact decimal
// cases, the 2^53 integer-precision boundary, extremes, and signed zero.
const double kAwkwardDoubles[] = {
    1e-300,
    0.1,
    9007199254740991.0,  // 2^53 - 1
    9007199254740992.0,  // 2^53
    9007199254740993.0,  // 2^53 + 1 (not representable; rounds to 2^53)
    -0.0,
    0.0,
    1.0 / 3.0,
    0.30000000000000004,           // 0.1 + 0.2
    6.02214076e23,
    -1.7976931348623157e308,       // -DBL_MAX
    std::numeric_limits<double>::max(),
    std::numeric_limits<double>::min(),          // smallest normal
    std::numeric_limits<double>::denorm_min(),   // 5e-324
    3.141592653589793,
    -2.5e-15,
    123456789.123456789,
};

TEST(JsonEscapeTest, PassesPlainText) {
  EXPECT_EQ(JsonEscape("hello world"), "hello world");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslash) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscapeTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter w;
  w.BeginObject().EndObject();
  EXPECT_EQ(w.Take(), "{}");
}

TEST(JsonWriterTest, EmptyArray) {
  JsonWriter w;
  w.BeginArray().EndArray();
  EXPECT_EQ(w.Take(), "[]");
}

TEST(JsonWriterTest, KeyValuePairs) {
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("a", std::int64_t{1});
  w.KeyValue("b", "two");
  w.KeyValue("c", true);
  w.EndObject();
  EXPECT_EQ(w.Take(), R"({"a":1,"b":"two","c":true})");
}

TEST(JsonWriterTest, ArrayOfValues) {
  JsonWriter w;
  w.BeginArray();
  w.Value(std::int64_t{1}).Value(std::int64_t{2}).Value(std::int64_t{3});
  w.EndArray();
  EXPECT_EQ(w.Take(), "[1,2,3]");
}

TEST(JsonWriterTest, NestedContainers) {
  JsonWriter w;
  w.BeginObject();
  w.BeginArray("xs");
  w.BeginObject();
  w.KeyValue("k", std::int64_t{7});
  w.EndObject();
  w.EndArray();
  w.BeginObject("meta");
  w.KeyValue("ok", false);
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.Take(), R"({"xs":[{"k":7}],"meta":{"ok":false}})");
}

TEST(JsonWriterTest, DoubleFormatting) {
  JsonWriter w;
  w.BeginArray();
  w.Value(1.5);
  w.Value(0.0);
  w.EndArray();
  EXPECT_EQ(w.Take(), "[1.5,0]");
}

TEST(JsonWriterTest, DoubleOutputRoundTripsThroughStrtod) {
  // %.12g merged adjacent doubles (a plan-cache read-modify-write could
  // silently change predicted cycles); the writer must emit the shortest
  // string strtod() parses back bit-exactly, signed zero included.
  for (double v : kAwkwardDoubles) {
    std::string text;
    AppendJsonDouble(text, v);
    const double parsed = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(std::memcmp(&parsed, &v, sizeof(double)), 0)
        << "value " << v << " serialized as '" << text << "'";
  }
}

TEST(JsonWriterTest, DoubleOutputIsShortestForm) {
  // Widening to 17 digits must only happen when needed: the common pretty
  // decimals stay pretty.
  std::string text;
  AppendJsonDouble(text, 0.1);
  EXPECT_EQ(text, "0.1");
  text.clear();
  AppendJsonDouble(text, -0.0);
  EXPECT_EQ(text, "-0");
  text.clear();
  AppendJsonDouble(text, 2.5);
  EXPECT_EQ(text, "2.5");
}

TEST(JsonWriterTest, WriterReaderDoubleRoundTripProperty) {
  // Full artifact cycle: JsonWriter document -> json::Parse -> AsDouble must
  // reproduce every value exactly. (Signed zero is compared by value: the
  // reader stores integral-looking numbers as int64, which cannot carry the
  // sign of zero — the emitted *string* "-0" does, per the strtod test.)
  JsonWriter w;
  w.BeginArray();
  for (double v : kAwkwardDoubles) w.Value(v);
  w.EndArray();
  const std::string doc = w.Take();

  const json::Value parsed = json::Parse(doc);
  const auto& items = parsed.AsArray();
  ASSERT_EQ(items.size(), std::size(kAwkwardDoubles));
  for (std::size_t i = 0; i < items.size(); ++i) {
    const double got = items[i].AsDouble();
    const double want = kAwkwardDoubles[i];
    if (want == 0.0) {
      EXPECT_EQ(got, want) << "index " << i;
    } else {
      EXPECT_EQ(std::memcmp(&got, &want, sizeof(double)), 0)
          << "index " << i << " value " << want << " in " << doc;
    }
  }

  // Re-serializing the parsed values must reproduce the document bytes —
  // the plan-cache stability guarantee. (Signed zero excepted, per above:
  // expect the re-serialization of what the reader actually preserved.)
  JsonWriter again, expected;
  again.BeginArray();
  expected.BeginArray();
  for (std::size_t i = 0; i < items.size(); ++i) {
    again.Value(items[i].AsDouble());
    const double v = kAwkwardDoubles[i];
    expected.Value(v == 0.0 ? std::fabs(v) : v);
  }
  again.EndArray();
  expected.EndArray();
  EXPECT_EQ(again.Take(), expected.Take());
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  JsonWriter w;
  w.BeginArray();
  w.Value(std::numeric_limits<double>::infinity());
  w.Value(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(w.Take(), "[null,null]");
}

TEST(JsonWriterTest, EscapesKeysAndStringValues) {
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("ke\"y", "va\\lue");
  w.EndObject();
  EXPECT_EQ(w.Take(), R"({"ke\"y":"va\\lue"})");
}

TEST(JsonWriterTest, UnbalancedTakeThrows) {
  JsonWriter w;
  w.BeginObject();
  EXPECT_THROW(w.Take(), Error);
}

TEST(JsonWriterTest, MismatchedCloseThrows) {
  JsonWriter w;
  w.BeginObject();
  EXPECT_THROW(w.EndArray(), Error);
}

TEST(JsonWriterTest, KeyOutsideObjectThrows) {
  JsonWriter w;
  w.BeginArray();
  EXPECT_THROW(w.KeyValue("k", std::int64_t{1}), Error);
}

}  // namespace
}  // namespace mas
