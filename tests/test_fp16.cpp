#include "common/fp16.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace mas {
namespace {

TEST(Fp16, ZeroRoundTrips) {
  EXPECT_EQ(Fp16(0.0f).bits(), 0u);
  EXPECT_EQ(Fp16(0.0f).ToFloat(), 0.0f);
  EXPECT_EQ(Fp16(-0.0f).bits(), 0x8000u);
  EXPECT_TRUE(std::signbit(Fp16(-0.0f).ToFloat()));
}

TEST(Fp16, SmallIntegersExact) {
  for (int i = -2048; i <= 2048; ++i) {
    // Integers up to 2^11 are exactly representable in binary16.
    EXPECT_EQ(Fp16(static_cast<float>(i)).ToFloat(), static_cast<float>(i)) << "i=" << i;
  }
}

TEST(Fp16, KnownBitPatterns) {
  EXPECT_EQ(Fp16(1.0f).bits(), 0x3C00u);
  EXPECT_EQ(Fp16(-2.0f).bits(), 0xC000u);
  EXPECT_EQ(Fp16(0.5f).bits(), 0x3800u);
  EXPECT_EQ(Fp16(65504.0f).bits(), 0x7BFFu);  // max finite half
}

TEST(Fp16, OverflowBecomesInf) {
  EXPECT_TRUE(Fp16(65520.0f).IsInf());  // rounds up past max finite
  EXPECT_TRUE(Fp16(1e10f).IsInf());
  EXPECT_TRUE(Fp16(-1e10f).IsInf());
  EXPECT_LT(Fp16(-1e10f).ToFloat(), 0.0f);
}

TEST(Fp16, InfAndNanPropagate) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(Fp16(inf).IsInf());
  EXPECT_FALSE(Fp16(inf).IsNan());
  EXPECT_TRUE(Fp16(std::nanf("")).IsNan());
  EXPECT_TRUE(std::isnan(Fp16(std::nanf("")).ToFloat()));
}

TEST(Fp16, SubnormalsRepresented) {
  // Smallest positive subnormal half = 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(Fp16(tiny).bits(), 0x0001u);
  EXPECT_EQ(Fp16(tiny).ToFloat(), tiny);
  // Halfway below the smallest subnormal underflows to zero (ties-to-even).
  EXPECT_EQ(Fp16(std::ldexp(1.0f, -26)).bits(), 0x0000u);
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half; ties go to
  // the even mantissa (1.0).
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(Fp16(halfway).bits(), 0x3C00u);
  // Slightly above the halfway point rounds up.
  const float above = 1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -18);
  EXPECT_EQ(Fp16(above).bits(), 0x3C01u);
}

TEST(Fp16, ArithmeticWidensToFloat) {
  const Fp16 a(1.5f), b(2.25f);
  EXPECT_EQ((a + b).ToFloat(), 3.75f);
  EXPECT_EQ((a * b).ToFloat(), 3.375f);
  EXPECT_EQ((b - a).ToFloat(), 0.75f);
  EXPECT_EQ((b / a).ToFloat(), 1.5f);
}

TEST(Fp16, ComparisonOperators) {
  EXPECT_TRUE(Fp16(1.0f) < Fp16(2.0f));
  EXPECT_TRUE(Fp16(1.0f) == Fp16(1.0f));
  EXPECT_TRUE(Fp16(1.0f) != Fp16(1.5f));
}

// Exhaustive property: every finite half round-trips bit-exactly through
// float and back.
TEST(Fp16, AllFiniteBitsRoundTrip) {
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const Fp16 h = Fp16::FromBits(static_cast<std::uint16_t>(bits));
    if (h.IsNan()) continue;
    const Fp16 back(h.ToFloat());
    EXPECT_EQ(back.bits(), h.bits()) << "bits=" << bits;
  }
}

}  // namespace
}  // namespace mas
