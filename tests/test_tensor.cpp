#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"

namespace mas {
namespace {

TEST(Tensor, DefaultIsScalarLike) {
  TensorF t;
  EXPECT_EQ(t.elements(), 1);
  EXPECT_EQ(t.at(0, 0, 0, 0), 0.0f);
}

TEST(Tensor, ShapeAndZeroInit) {
  TensorF t(2, 3, 4, 5);
  EXPECT_EQ(t.elements(), 120);
  for (std::int64_t i = 0; i < t.elements(); ++i) {
    EXPECT_EQ(t.data()[i], 0.0f);
  }
}

TEST(Tensor, RejectsInvalidShape) {
  EXPECT_THROW(TensorF(Shape4{0, 1, 1, 1}), Error);
  EXPECT_THROW(TensorF(Shape4{1, -1, 1, 1}), Error);
}

TEST(Tensor, RowMajorIndexing) {
  TensorF t(2, 2, 2, 2);
  float v = 0.0f;
  for (std::int64_t b = 0; b < 2; ++b)
    for (std::int64_t h = 0; h < 2; ++h)
      for (std::int64_t n = 0; n < 2; ++n)
        for (std::int64_t e = 0; e < 2; ++e) t.at(b, h, n, e) = v++;
  // Last dim is contiguous.
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(t.data()[i], static_cast<float>(i));
  }
}

TEST(Tensor, AtBoundsChecked) {
  TensorF t(1, 2, 3, 4);
  EXPECT_THROW(t.at(1, 0, 0, 0), Error);
  EXPECT_THROW(t.at(0, 2, 0, 0), Error);
  EXPECT_THROW(t.at(0, 0, 3, 0), Error);
  EXPECT_THROW(t.at(0, 0, 0, 4), Error);
  EXPECT_THROW(t.at(0, 0, 0, -1), Error);
}

TEST(Tensor, SlicePlaceRoundTrip) {
  Rng rng(5);
  TensorF t(2, 3, 8, 4);
  FillUniform(t, rng);
  const TensorF block = t.Slice(1, 1, 1, 2, 2, 4, 0, 4);
  EXPECT_EQ(block.shape(), (Shape4{1, 2, 4, 4}));
  for (std::int64_t h = 0; h < 2; ++h)
    for (std::int64_t n = 0; n < 4; ++n)
      for (std::int64_t e = 0; e < 4; ++e)
        EXPECT_EQ(block.at(0, h, n, e), t.at(1, 1 + h, 2 + n, e));

  TensorF copy(t.shape());
  copy.Place(block, 1, 1, 2, 0);
  for (std::int64_t h = 0; h < 2; ++h)
    for (std::int64_t n = 0; n < 4; ++n)
      for (std::int64_t e = 0; e < 4; ++e)
        EXPECT_EQ(copy.at(1, 1 + h, 2 + n, e), t.at(1, 1 + h, 2 + n, e));
}

TEST(Tensor, SliceRejectsOutOfBounds) {
  TensorF t(1, 1, 4, 4);
  EXPECT_THROW(t.Slice(0, 1, 0, 1, 2, 3, 0, 4), Error);  // rows 2..5 > 4
  EXPECT_THROW(t.Slice(0, 1, 0, 1, 0, 0, 0, 4), Error);  // empty extent
  EXPECT_THROW(t.Slice(0, 1, 0, 1, -1, 2, 0, 4), Error); // negative origin
}

TEST(Tensor, PlaceRejectsOverflow) {
  TensorF t(1, 1, 4, 4);
  TensorF block(1, 1, 3, 3);
  EXPECT_THROW(t.Place(block, 0, 0, 2, 0), Error);
}

TEST(Tensor, FillUniformWithinRange) {
  Rng rng(9);
  TensorF t(1, 2, 16, 16);
  FillUniform(t, rng, -2.0f, 3.0f);
  float lo = 1e9f, hi = -1e9f;
  for (std::int64_t i = 0; i < t.elements(); ++i) {
    lo = std::min(lo, t.data()[i]);
    hi = std::max(hi, t.data()[i]);
  }
  EXPECT_GE(lo, -2.0f);
  EXPECT_LT(hi, 3.0f);
  EXPECT_LT(lo, 0.0f);  // actually spans the range
  EXPECT_GT(hi, 1.0f);
}

TEST(Tensor, MaxAbsDiff) {
  TensorF a(1, 1, 2, 2), b(1, 1, 2, 2);
  a.at(0, 0, 1, 1) = 1.0f;
  b.at(0, 0, 1, 1) = 1.5f;
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 0.5);
  TensorF c(1, 1, 2, 3);
  EXPECT_THROW(MaxAbsDiff(a, c), Error);
}

TEST(Tensor, HalfPrecisionStorage) {
  TensorH t(1, 1, 2, 2);
  t.at(0, 0, 0, 0) = Fp16(1.5f);
  EXPECT_EQ(static_cast<float>(t.at(0, 0, 0, 0)), 1.5f);
  t.Fill(Fp16(2.0f));
  EXPECT_EQ(static_cast<float>(t.at(0, 0, 1, 1)), 2.0f);
}

}  // namespace
}  // namespace mas
